# Empty compiler generated dependencies file for csalt_sim.
# This may be replaced when dependencies are built.
