file(REMOVE_RECURSE
  "CMakeFiles/csalt_sim.dir/csalt_sim.cpp.o"
  "CMakeFiles/csalt_sim.dir/csalt_sim.cpp.o.d"
  "csalt-sim"
  "csalt-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csalt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
