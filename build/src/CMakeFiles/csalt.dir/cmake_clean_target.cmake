file(REMOVE_RECURSE
  "libcsalt.a"
)
