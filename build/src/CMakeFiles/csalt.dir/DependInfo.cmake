
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/csalt.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/csalt.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/dip.cc" "src/CMakeFiles/csalt.dir/cache/dip.cc.o" "gcc" "src/CMakeFiles/csalt.dir/cache/dip.cc.o.d"
  "/root/repo/src/cache/occupancy.cc" "src/CMakeFiles/csalt.dir/cache/occupancy.cc.o" "gcc" "src/CMakeFiles/csalt.dir/cache/occupancy.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/csalt.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/csalt.dir/cache/replacement.cc.o.d"
  "/root/repo/src/cache/rrip.cc" "src/CMakeFiles/csalt.dir/cache/rrip.cc.o" "gcc" "src/CMakeFiles/csalt.dir/cache/rrip.cc.o.d"
  "/root/repo/src/cache/stack_dist.cc" "src/CMakeFiles/csalt.dir/cache/stack_dist.cc.o" "gcc" "src/CMakeFiles/csalt.dir/cache/stack_dist.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/csalt.dir/common/config.cc.o" "gcc" "src/CMakeFiles/csalt.dir/common/config.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/csalt.dir/common/log.cc.o" "gcc" "src/CMakeFiles/csalt.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/csalt.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/csalt.dir/common/stats.cc.o.d"
  "/root/repo/src/core/criticality.cc" "src/CMakeFiles/csalt.dir/core/criticality.cc.o" "gcc" "src/CMakeFiles/csalt.dir/core/criticality.cc.o.d"
  "/root/repo/src/core/csalt_controller.cc" "src/CMakeFiles/csalt.dir/core/csalt_controller.cc.o" "gcc" "src/CMakeFiles/csalt.dir/core/csalt_controller.cc.o.d"
  "/root/repo/src/core/marginal_utility.cc" "src/CMakeFiles/csalt.dir/core/marginal_utility.cc.o" "gcc" "src/CMakeFiles/csalt.dir/core/marginal_utility.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/csalt.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/csalt.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_map.cc" "src/CMakeFiles/csalt.dir/mem/memory_map.cc.o" "gcc" "src/CMakeFiles/csalt.dir/mem/memory_map.cc.o.d"
  "/root/repo/src/mem/phys_alloc.cc" "src/CMakeFiles/csalt.dir/mem/phys_alloc.cc.o" "gcc" "src/CMakeFiles/csalt.dir/mem/phys_alloc.cc.o.d"
  "/root/repo/src/sim/context.cc" "src/CMakeFiles/csalt.dir/sim/context.cc.o" "gcc" "src/CMakeFiles/csalt.dir/sim/context.cc.o.d"
  "/root/repo/src/sim/core_model.cc" "src/CMakeFiles/csalt.dir/sim/core_model.cc.o" "gcc" "src/CMakeFiles/csalt.dir/sim/core_model.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/CMakeFiles/csalt.dir/sim/memory_system.cc.o" "gcc" "src/CMakeFiles/csalt.dir/sim/memory_system.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/csalt.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/csalt.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/metrics_io.cc" "src/CMakeFiles/csalt.dir/sim/metrics_io.cc.o" "gcc" "src/CMakeFiles/csalt.dir/sim/metrics_io.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/csalt.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/csalt.dir/sim/system.cc.o.d"
  "/root/repo/src/sim/system_builder.cc" "src/CMakeFiles/csalt.dir/sim/system_builder.cc.o" "gcc" "src/CMakeFiles/csalt.dir/sim/system_builder.cc.o.d"
  "/root/repo/src/tlb/pom_tlb.cc" "src/CMakeFiles/csalt.dir/tlb/pom_tlb.cc.o" "gcc" "src/CMakeFiles/csalt.dir/tlb/pom_tlb.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/CMakeFiles/csalt.dir/tlb/tlb.cc.o" "gcc" "src/CMakeFiles/csalt.dir/tlb/tlb.cc.o.d"
  "/root/repo/src/tlb/tlb_hierarchy.cc" "src/CMakeFiles/csalt.dir/tlb/tlb_hierarchy.cc.o" "gcc" "src/CMakeFiles/csalt.dir/tlb/tlb_hierarchy.cc.o.d"
  "/root/repo/src/tlb/tsb.cc" "src/CMakeFiles/csalt.dir/tlb/tsb.cc.o" "gcc" "src/CMakeFiles/csalt.dir/tlb/tsb.cc.o.d"
  "/root/repo/src/vm/address_space.cc" "src/CMakeFiles/csalt.dir/vm/address_space.cc.o" "gcc" "src/CMakeFiles/csalt.dir/vm/address_space.cc.o.d"
  "/root/repo/src/vm/mmu_cache.cc" "src/CMakeFiles/csalt.dir/vm/mmu_cache.cc.o" "gcc" "src/CMakeFiles/csalt.dir/vm/mmu_cache.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/CMakeFiles/csalt.dir/vm/page_table.cc.o" "gcc" "src/CMakeFiles/csalt.dir/vm/page_table.cc.o.d"
  "/root/repo/src/vm/page_walker.cc" "src/CMakeFiles/csalt.dir/vm/page_walker.cc.o" "gcc" "src/CMakeFiles/csalt.dir/vm/page_walker.cc.o.d"
  "/root/repo/src/workloads/canneal.cc" "src/CMakeFiles/csalt.dir/workloads/canneal.cc.o" "gcc" "src/CMakeFiles/csalt.dir/workloads/canneal.cc.o.d"
  "/root/repo/src/workloads/ccomp.cc" "src/CMakeFiles/csalt.dir/workloads/ccomp.cc.o" "gcc" "src/CMakeFiles/csalt.dir/workloads/ccomp.cc.o.d"
  "/root/repo/src/workloads/graph500.cc" "src/CMakeFiles/csalt.dir/workloads/graph500.cc.o" "gcc" "src/CMakeFiles/csalt.dir/workloads/graph500.cc.o.d"
  "/root/repo/src/workloads/gups.cc" "src/CMakeFiles/csalt.dir/workloads/gups.cc.o" "gcc" "src/CMakeFiles/csalt.dir/workloads/gups.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/CMakeFiles/csalt.dir/workloads/pagerank.cc.o" "gcc" "src/CMakeFiles/csalt.dir/workloads/pagerank.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/csalt.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/csalt.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/streamcluster.cc" "src/CMakeFiles/csalt.dir/workloads/streamcluster.cc.o" "gcc" "src/CMakeFiles/csalt.dir/workloads/streamcluster.cc.o.d"
  "/root/repo/src/workloads/trace_file.cc" "src/CMakeFiles/csalt.dir/workloads/trace_file.cc.o" "gcc" "src/CMakeFiles/csalt.dir/workloads/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
