# Empty compiler generated dependencies file for csalt.
# This may be replaced when dependencies are built.
