file(REMOVE_RECURSE
  "CMakeFiles/virtualized_context_switch.dir/virtualized_context_switch.cpp.o"
  "CMakeFiles/virtualized_context_switch.dir/virtualized_context_switch.cpp.o.d"
  "virtualized_context_switch"
  "virtualized_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtualized_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
