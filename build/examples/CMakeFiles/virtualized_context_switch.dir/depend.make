# Empty dependencies file for virtualized_context_switch.
# This may be replaced when dependencies are built.
