# Empty dependencies file for partition_visualizer.
# This may be replaced when dependencies are built.
