# Empty compiler generated dependencies file for partition_visualizer.
# This may be replaced when dependencies are built.
