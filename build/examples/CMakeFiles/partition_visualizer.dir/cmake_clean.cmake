file(REMOVE_RECURSE
  "CMakeFiles/partition_visualizer.dir/partition_visualizer.cpp.o"
  "CMakeFiles/partition_visualizer.dir/partition_visualizer.cpp.o.d"
  "partition_visualizer"
  "partition_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
