file(REMOVE_RECURSE
  "../bench/fig15_epoch_length"
  "../bench/fig15_epoch_length.pdb"
  "CMakeFiles/fig15_epoch_length.dir/fig15_epoch_length.cpp.o"
  "CMakeFiles/fig15_epoch_length.dir/fig15_epoch_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_epoch_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
