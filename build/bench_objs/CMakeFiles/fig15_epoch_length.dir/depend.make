# Empty dependencies file for fig15_epoch_length.
# This may be replaced when dependencies are built.
