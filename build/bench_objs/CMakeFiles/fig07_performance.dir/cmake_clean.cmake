file(REMOVE_RECURSE
  "../bench/fig07_performance"
  "../bench/fig07_performance.pdb"
  "CMakeFiles/fig07_performance.dir/fig07_performance.cpp.o"
  "CMakeFiles/fig07_performance.dir/fig07_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
