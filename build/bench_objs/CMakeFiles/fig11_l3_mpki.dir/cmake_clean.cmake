file(REMOVE_RECURSE
  "../bench/fig11_l3_mpki"
  "../bench/fig11_l3_mpki.pdb"
  "CMakeFiles/fig11_l3_mpki.dir/fig11_l3_mpki.cpp.o"
  "CMakeFiles/fig11_l3_mpki.dir/fig11_l3_mpki.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_l3_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
