# Empty compiler generated dependencies file for fig11_l3_mpki.
# This may be replaced when dependencies are built.
