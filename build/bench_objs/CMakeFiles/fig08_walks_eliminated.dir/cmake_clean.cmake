file(REMOVE_RECURSE
  "../bench/fig08_walks_eliminated"
  "../bench/fig08_walks_eliminated.pdb"
  "CMakeFiles/fig08_walks_eliminated.dir/fig08_walks_eliminated.cpp.o"
  "CMakeFiles/fig08_walks_eliminated.dir/fig08_walks_eliminated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_walks_eliminated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
