# Empty dependencies file for fig08_walks_eliminated.
# This may be replaced when dependencies are built.
