# Empty dependencies file for fig12_native.
# This may be replaced when dependencies are built.
