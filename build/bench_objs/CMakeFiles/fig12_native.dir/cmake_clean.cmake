file(REMOVE_RECURSE
  "../bench/fig12_native"
  "../bench/fig12_native.pdb"
  "CMakeFiles/fig12_native.dir/fig12_native.cpp.o"
  "CMakeFiles/fig12_native.dir/fig12_native.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
