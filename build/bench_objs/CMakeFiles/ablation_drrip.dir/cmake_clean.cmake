file(REMOVE_RECURSE
  "../bench/ablation_drrip"
  "../bench/ablation_drrip.pdb"
  "CMakeFiles/ablation_drrip.dir/ablation_drrip.cpp.o"
  "CMakeFiles/ablation_drrip.dir/ablation_drrip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
