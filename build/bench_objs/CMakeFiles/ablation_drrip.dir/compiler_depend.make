# Empty compiler generated dependencies file for ablation_drrip.
# This may be replaced when dependencies are built.
