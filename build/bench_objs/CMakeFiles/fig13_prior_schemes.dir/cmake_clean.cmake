file(REMOVE_RECURSE
  "../bench/fig13_prior_schemes"
  "../bench/fig13_prior_schemes.pdb"
  "CMakeFiles/fig13_prior_schemes.dir/fig13_prior_schemes.cpp.o"
  "CMakeFiles/fig13_prior_schemes.dir/fig13_prior_schemes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_prior_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
