# Empty dependencies file for fig13_prior_schemes.
# This may be replaced when dependencies are built.
