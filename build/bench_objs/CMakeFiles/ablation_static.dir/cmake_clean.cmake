file(REMOVE_RECURSE
  "../bench/ablation_static"
  "../bench/ablation_static.pdb"
  "CMakeFiles/ablation_static.dir/ablation_static.cpp.o"
  "CMakeFiles/ablation_static.dir/ablation_static.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
