# Empty compiler generated dependencies file for fig09_partition_trace.
# This may be replaced when dependencies are built.
