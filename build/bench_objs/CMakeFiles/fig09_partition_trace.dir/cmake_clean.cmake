file(REMOVE_RECURSE
  "../bench/fig09_partition_trace"
  "../bench/fig09_partition_trace.pdb"
  "CMakeFiles/fig09_partition_trace.dir/fig09_partition_trace.cpp.o"
  "CMakeFiles/fig09_partition_trace.dir/fig09_partition_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_partition_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
