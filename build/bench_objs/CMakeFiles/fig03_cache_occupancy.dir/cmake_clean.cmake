file(REMOVE_RECURSE
  "../bench/fig03_cache_occupancy"
  "../bench/fig03_cache_occupancy.pdb"
  "CMakeFiles/fig03_cache_occupancy.dir/fig03_cache_occupancy.cpp.o"
  "CMakeFiles/fig03_cache_occupancy.dir/fig03_cache_occupancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cache_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
