# Empty dependencies file for fig03_cache_occupancy.
# This may be replaced when dependencies are built.
