# Empty dependencies file for fig01_tlb_mpki_ratio.
# This may be replaced when dependencies are built.
