file(REMOVE_RECURSE
  "../bench/fig01_tlb_mpki_ratio"
  "../bench/fig01_tlb_mpki_ratio.pdb"
  "CMakeFiles/fig01_tlb_mpki_ratio.dir/fig01_tlb_mpki_ratio.cpp.o"
  "CMakeFiles/fig01_tlb_mpki_ratio.dir/fig01_tlb_mpki_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_tlb_mpki_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
