file(REMOVE_RECURSE
  "../bench/ablation_five_level"
  "../bench/ablation_five_level.pdb"
  "CMakeFiles/ablation_five_level.dir/ablation_five_level.cpp.o"
  "CMakeFiles/ablation_five_level.dir/ablation_five_level.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_five_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
