# Empty dependencies file for ablation_five_level.
# This may be replaced when dependencies are built.
