file(REMOVE_RECURSE
  "../bench/tab01_page_walk_cost"
  "../bench/tab01_page_walk_cost.pdb"
  "CMakeFiles/tab01_page_walk_cost.dir/tab01_page_walk_cost.cpp.o"
  "CMakeFiles/tab01_page_walk_cost.dir/tab01_page_walk_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_page_walk_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
