# Empty compiler generated dependencies file for tab01_page_walk_cost.
# This may be replaced when dependencies are built.
