file(REMOVE_RECURSE
  "../bench/fig14_contexts"
  "../bench/fig14_contexts.pdb"
  "CMakeFiles/fig14_contexts.dir/fig14_contexts.cpp.o"
  "CMakeFiles/fig14_contexts.dir/fig14_contexts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
