# Empty compiler generated dependencies file for fig14_contexts.
# This may be replaced when dependencies are built.
