# Empty dependencies file for fig10_l2_mpki.
# This may be replaced when dependencies are built.
