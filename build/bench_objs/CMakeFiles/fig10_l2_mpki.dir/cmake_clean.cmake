file(REMOVE_RECURSE
  "../bench/fig10_l2_mpki"
  "../bench/fig10_l2_mpki.pdb"
  "CMakeFiles/fig10_l2_mpki.dir/fig10_l2_mpki.cpp.o"
  "CMakeFiles/fig10_l2_mpki.dir/fig10_l2_mpki.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_l2_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
