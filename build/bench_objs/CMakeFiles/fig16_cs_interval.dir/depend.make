# Empty dependencies file for fig16_cs_interval.
# This may be replaced when dependencies are built.
