file(REMOVE_RECURSE
  "../bench/fig16_cs_interval"
  "../bench/fig16_cs_interval.pdb"
  "CMakeFiles/fig16_cs_interval.dir/fig16_cs_interval.cpp.o"
  "CMakeFiles/fig16_cs_interval.dir/fig16_cs_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cs_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
