file(REMOVE_RECURSE
  "CMakeFiles/test_marginal_utility.dir/test_marginal_utility.cpp.o"
  "CMakeFiles/test_marginal_utility.dir/test_marginal_utility.cpp.o.d"
  "test_marginal_utility"
  "test_marginal_utility.pdb"
  "test_marginal_utility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marginal_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
