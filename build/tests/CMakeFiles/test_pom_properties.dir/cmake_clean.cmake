file(REMOVE_RECURSE
  "CMakeFiles/test_pom_properties.dir/test_pom_properties.cpp.o"
  "CMakeFiles/test_pom_properties.dir/test_pom_properties.cpp.o.d"
  "test_pom_properties"
  "test_pom_properties.pdb"
  "test_pom_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pom_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
