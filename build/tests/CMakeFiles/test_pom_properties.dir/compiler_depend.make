# Empty compiler generated dependencies file for test_pom_properties.
# This may be replaced when dependencies are built.
