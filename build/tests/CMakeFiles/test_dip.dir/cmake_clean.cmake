file(REMOVE_RECURSE
  "CMakeFiles/test_dip.dir/test_dip.cpp.o"
  "CMakeFiles/test_dip.dir/test_dip.cpp.o.d"
  "test_dip"
  "test_dip.pdb"
  "test_dip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
