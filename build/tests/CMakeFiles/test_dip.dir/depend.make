# Empty dependencies file for test_dip.
# This may be replaced when dependencies are built.
