file(REMOVE_RECURSE
  "CMakeFiles/test_pom_tlb.dir/test_pom_tlb.cpp.o"
  "CMakeFiles/test_pom_tlb.dir/test_pom_tlb.cpp.o.d"
  "test_pom_tlb"
  "test_pom_tlb.pdb"
  "test_pom_tlb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pom_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
