# Empty compiler generated dependencies file for test_pom_tlb.
# This may be replaced when dependencies are built.
