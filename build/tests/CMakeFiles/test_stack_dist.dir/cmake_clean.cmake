file(REMOVE_RECURSE
  "CMakeFiles/test_stack_dist.dir/test_stack_dist.cpp.o"
  "CMakeFiles/test_stack_dist.dir/test_stack_dist.cpp.o.d"
  "test_stack_dist"
  "test_stack_dist.pdb"
  "test_stack_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
