# Empty dependencies file for test_criticality.
# This may be replaced when dependencies are built.
