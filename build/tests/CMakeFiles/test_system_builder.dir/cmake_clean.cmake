file(REMOVE_RECURSE
  "CMakeFiles/test_system_builder.dir/test_system_builder.cpp.o"
  "CMakeFiles/test_system_builder.dir/test_system_builder.cpp.o.d"
  "test_system_builder"
  "test_system_builder.pdb"
  "test_system_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
