# Empty compiler generated dependencies file for test_system_builder.
# This may be replaced when dependencies are built.
