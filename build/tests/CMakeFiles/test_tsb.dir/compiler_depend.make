# Empty compiler generated dependencies file for test_tsb.
# This may be replaced when dependencies are built.
