file(REMOVE_RECURSE
  "CMakeFiles/test_tsb.dir/test_tsb.cpp.o"
  "CMakeFiles/test_tsb.dir/test_tsb.cpp.o.d"
  "test_tsb"
  "test_tsb.pdb"
  "test_tsb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
