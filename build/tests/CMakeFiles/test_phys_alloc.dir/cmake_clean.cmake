file(REMOVE_RECURSE
  "CMakeFiles/test_phys_alloc.dir/test_phys_alloc.cpp.o"
  "CMakeFiles/test_phys_alloc.dir/test_phys_alloc.cpp.o.d"
  "test_phys_alloc"
  "test_phys_alloc.pdb"
  "test_phys_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
