file(REMOVE_RECURSE
  "CMakeFiles/test_tlb_reference.dir/test_tlb_reference.cpp.o"
  "CMakeFiles/test_tlb_reference.dir/test_tlb_reference.cpp.o.d"
  "test_tlb_reference"
  "test_tlb_reference.pdb"
  "test_tlb_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlb_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
