# Empty compiler generated dependencies file for test_tlb_reference.
# This may be replaced when dependencies are built.
