# Empty compiler generated dependencies file for test_metrics_io.
# This may be replaced when dependencies are built.
