file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_io.dir/test_metrics_io.cpp.o"
  "CMakeFiles/test_metrics_io.dir/test_metrics_io.cpp.o.d"
  "test_metrics_io"
  "test_metrics_io.pdb"
  "test_metrics_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
