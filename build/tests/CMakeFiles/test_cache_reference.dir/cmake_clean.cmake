file(REMOVE_RECURSE
  "CMakeFiles/test_cache_reference.dir/test_cache_reference.cpp.o"
  "CMakeFiles/test_cache_reference.dir/test_cache_reference.cpp.o.d"
  "test_cache_reference"
  "test_cache_reference.pdb"
  "test_cache_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
