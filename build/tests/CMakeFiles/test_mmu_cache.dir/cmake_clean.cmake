file(REMOVE_RECURSE
  "CMakeFiles/test_mmu_cache.dir/test_mmu_cache.cpp.o"
  "CMakeFiles/test_mmu_cache.dir/test_mmu_cache.cpp.o.d"
  "test_mmu_cache"
  "test_mmu_cache.pdb"
  "test_mmu_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmu_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
