/**
 * @file
 * Recorded-trace replay: synthesise a short trace, write it in the
 * `file:` format, and run it through two schemes — the workflow for
 * feeding real (e.g. Pin-derived) traces into the simulator.
 */

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "common/table.h"
#include "sim/metrics.h"
#include "sim/system_builder.h"
#include "workloads/trace_file.h"

using namespace csalt;

namespace
{

/** Synthesize a pointer-chasing trace with a hot region. */
std::string
makeDemoTrace()
{
    std::vector<TraceRecord> records;
    Rng rng(42);
    for (int i = 0; i < 200000; ++i) {
        TraceRecord rec;
        const bool hot = rng.chance(0.7);
        const Addr region = hot ? 0x10000000 : 0x40000000;
        const Addr span = hot ? (4ull << 20) : (512ull << 20);
        rec.vaddr = region + (rng.below(span) & ~7ull);
        rec.type = rng.chance(0.25) ? AccessType::write
                                    : AccessType::read;
        rec.icount = 3;
        records.push_back(rec);
    }
    return TraceFile::format(records);
}

RunMetrics
replay(const std::string &workload, void (*apply)(SystemParams &))
{
    BuildSpec spec;
    apply(spec.params);
    spec.vm_workloads = {workload, workload};
    auto system = buildSystem(spec);
    system->run(300'000);
    system->clearAllStats();
    system->run(600'000);
    return collectMetrics(*system);
}

} // namespace

int
main()
{
    const std::string path = "/tmp/csalt_demo_trace.txt";
    {
        std::ofstream out(path);
        out << makeDemoTrace();
    }
    const std::string workload = "file:" + path;
    std::printf("replaying recorded trace %s under two schemes\n\n",
                path.c_str());

    const RunMetrics conv = replay(workload, applyConventional);
    const RunMetrics cscd = replay(workload, applyCsaltCD);

    TextTable table({"scheme", "IPC", "L2TLB MPKI", "walks",
                     "walk cyc"});
    table.row()
        .add("conventional")
        .add(conv.ipc_geomean, 4)
        .add(conv.l2_tlb_mpki, 1)
        .add(conv.walks)
        .add(conv.avg_walk_cycles, 0);
    table.row()
        .add("CSALT-CD")
        .add(cscd.ipc_geomean, 4)
        .add(cscd.l2_tlb_mpki, 1)
        .add(cscd.walks)
        .add(cscd.avg_walk_cycles, 0);
    table.print();

    std::printf("\nspeedup: %.3f\n",
                conv.ipc_geomean > 0
                    ? cscd.ipc_geomean / conv.ipc_geomean
                    : 0.0);
    std::remove(path.c_str());
    return 0;
}
