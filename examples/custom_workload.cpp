/**
 * @file
 * Bring-your-own workload: define a TraceSource for a workload the
 * registry doesn't know (here, a key-value store: Zipf-popular GETs
 * over a large keyspace plus a sequential compaction scan) and wire
 * the system by hand with the lower-level API — System, VmContext and
 * SimContext — instead of buildSystem()'s name-based convenience.
 */

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "snapshot/state_io.h"
#include "workloads/trace_source.h"

using namespace csalt;

namespace
{

/** A toy key-value store thread: GET-heavy with periodic scans. */
class KvStoreTrace final : public TraceSource
{
  public:
    KvStoreTrace(std::uint64_t seed, unsigned thread)
        : TraceSource("kvstore"), rng_(seed * 31337 + thread)
    {
    }

    TraceRecord
    next() override
    {
        ++refs_;
        // Every ~64K requests, a compaction scan sweeps one shard.
        if (refs_ % 65536 == 0)
            scan_left_ = 16384;
        if (scan_left_ > 0) {
            --scan_left_;
            scan_addr_ += 8;
            if (scan_addr_ >= kShardBase + kShardBytes)
                scan_addr_ = kShardBase;
            return {scan_addr_, AccessType::read, 2};
        }

        // GET: hash-table probe (random page) + value read (Zipf).
        if (rng_.chance(0.5)) {
            const Addr bucket =
                kIndexBase +
                (rng_.below(kIndexPages * kPageSize) & ~7ull);
            return {bucket, AccessType::read, 3};
        }
        const std::uint64_t key = rng_.zipf(kValuePages * 8, 0.8);
        const Addr addr = kValueBase + key * 512;
        const bool put = rng_.chance(0.1);
        return {addr, put ? AccessType::write : AccessType::read, 3};
    }

    std::uint64_t footprintPages() const override
    {
        return kIndexPages + kValuePages + kShardBytes / kPageSize;
    }

    // Custom workloads opt into checkpointing by serializing their
    // generator state; see docs/robustness.md.
    void
    saveState(snapshot::StateSerializer &s) const override
    {
        rng_.saveState(s);
        s.putU64(refs_);
        s.putU64(scan_left_);
        s.putU64(scan_addr_);
    }

    void
    loadState(snapshot::StateDeserializer &d) override
    {
        rng_.loadState(d);
        refs_ = d.getU64();
        scan_left_ = d.getU64();
        scan_addr_ = d.getU64();
    }

  private:
    static constexpr Addr kIndexBase = Addr{1} << 40;
    static constexpr Addr kValueBase = Addr{1} << 41;
    static constexpr Addr kShardBase = Addr{1} << 42;
    static constexpr std::uint64_t kIndexPages = 20000;
    static constexpr std::uint64_t kValuePages = 16000;
    static constexpr std::uint64_t kShardBytes = 32ull << 20;

    Rng rng_;
    std::uint64_t refs_ = 0;
    std::uint64_t scan_left_ = 0;
    Addr scan_addr_ = kShardBase;
};

RunMetrics
runKvStore(PartitionPolicy policy)
{
    SystemParams params = defaultParams();
    params.translation = TranslationKind::pomTlb;
    params.l2_partition.policy = policy;
    params.l3_partition.policy = policy;

    auto system = std::make_unique<System>(params);

    // One VM ("the database") per context slot, two tenants total.
    std::vector<VmContext *> vms;
    for (Asid asid = 1; asid <= 2; ++asid) {
        VmContext::Params vp;
        vp.asid = asid;
        vp.virtualized = true;
        vp.huge_fraction = 0.05; // sparse allocations: little THP
        vp.seed = 1000 + asid;
        vms.push_back(&system->addVm(std::make_unique<VmContext>(
            vp, system->mem().dataFrames(),
            system->mem().ptFrames())));
    }
    for (unsigned core = 0; core < params.num_cores; ++core) {
        std::vector<std::unique_ptr<SimContext>> rotation;
        for (unsigned i = 0; i < vms.size(); ++i) {
            rotation.push_back(std::make_unique<SimContext>(
                vms[i],
                std::make_unique<KvStoreTrace>(77 + i, core)));
        }
        system->setCoreContexts(core, std::move(rotation));
    }

    system->run(400'000);
    system->clearAllStats();
    system->run(1'000'000);
    return collectMetrics(*system);
}

} // namespace

int
main()
{
    std::printf("custom workload: two key-value-store VMs, context "
                "switching, POM-TLB substrate\n\n");

    const RunMetrics pom = runKvStore(PartitionPolicy::none);
    const RunMetrics cscd = runKvStore(PartitionPolicy::csaltCD);

    TextTable table({"scheme", "IPC", "L2TLB MPKI", "walks elim.",
                     "L3 tr-occupancy"});
    table.row()
        .add("POM-TLB")
        .add(pom.ipc_geomean, 4)
        .add(pom.l2_tlb_mpki, 1)
        .add(pom.walks_eliminated, 3)
        .add(pom.l3_translation_occupancy, 2);
    table.row()
        .add("CSALT-CD")
        .add(cscd.ipc_geomean, 4)
        .add(cscd.l2_tlb_mpki, 1)
        .add(cscd.walks_eliminated, 3)
        .add(cscd.l3_translation_occupancy, 2);
    table.print();

    std::printf("\nCSALT-CD / POM-TLB speedup: %.3f\n",
                pom.ipc_geomean > 0
                    ? cscd.ipc_geomean / pom.ipc_geomean
                    : 0.0);
    return 0;
}
