/**
 * @file
 * ASCII rendering of CSALT's epoch-by-epoch partition decisions (the
 * data behind paper Fig. 9): run connected component under CSALT-CD
 * and draw, per epoch bucket, how many L2/L3 ways the controllers
 * hand to translation entries as the workload's phases alternate.
 */

#include <cstdio>
#include <string>

#include "sim/system_builder.h"

using namespace csalt;

namespace
{

void
drawTrace(const char *name, const TimeSeries &trace, unsigned ways)
{
    std::printf("%s (%u ways; '#' = ways holding TLB entries)\n", name,
                ways);
    const TimeSeries small = trace.downsampled(40);
    const double t_end = small.points().empty()
                             ? 1.0
                             : small.points().back().time;
    for (const auto &point : small.points()) {
        const auto tlb_ways =
            ways - static_cast<unsigned>(point.value + 0.5);
        std::string bar(tlb_ways, '#');
        bar += std::string(ways - tlb_ways, '.');
        std::printf("  t=%4.2f  |%s|  %u/%u\n", point.time / t_end,
                    bar.c_str(), tlb_ways, ways);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    BuildSpec spec;
    applyCsaltCD(spec.params);
    spec.vm_workloads = {"ccomp", "ccomp"};
    auto system = buildSystem(spec);

    std::printf("connected component under CSALT-CD: watch the "
                "partition follow the expansion/compaction phases\n\n");
    system->run(300'000);
    system->mem().l2Controller(0).clearTrace();
    system->mem().l3Controller().clearTrace();
    system->run(2'000'000);

    drawTrace("L2 D$ (core 0)",
              system->mem().l2Controller(0).partitionTrace(),
              system->params().l2.ways);
    drawTrace("L3 D$ (shared)",
              system->mem().l3Controller().partitionTrace(),
              system->params().l3.ways);

    const auto w = system->mem().l3Controller().lastWeights();
    std::printf("last criticality weights: S_dat %.2f  S_tr %.2f\n",
                w.s_dat, w.s_tr);
    return 0;
}
