/**
 * @file
 * The paper's headline scenario end to end: an 8-core host switching
 * between two virtual machines (pagerank and connected component)
 * every 10 (scaled) milliseconds.
 *
 * Compares four machines — conventional L1-L2 TLBs, the POM-TLB, and
 * CSALT-D/CD on top of it — and prints both whole-system performance
 * and the per-VM L2 TLB damage that context switching causes.
 */

#include <cstdio>

#include "common/table.h"
#include "sim/metrics.h"
#include "sim/scheme.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

struct Row
{
    SchemeId scheme;
    RunMetrics metrics;
};

RunMetrics
run(SchemeId scheme, unsigned vms)
{
    BuildSpec spec;
    applyScheme(spec.params, scheme);
    spec.vm_workloads = {"pagerank"};
    if (vms > 1)
        spec.vm_workloads.push_back("ccomp");
    auto system = buildSystem(spec);
    system->run(400'000); // warm up caches, TLBs and the POM-TLB
    system->clearAllStats();
    system->run(800'000);
    return collectMetrics(*system);
}

} // namespace

int
main()
{
    std::printf("Two VMs (pagerank + connected component), 8 cores, "
                "context switch every 10 scaled ms\n\n");

    // First: what does context switching alone do to the L2 TLB?
    const RunMetrics alone = run(SchemeId::conventional, 1);
    const RunMetrics both = run(SchemeId::conventional, 2);
    std::printf("pagerank L2 TLB MPKI alone:          %.2f\n",
                alone.vms[0].l2_tlb_mpki);
    std::printf("pagerank L2 TLB MPKI context-switched: %.2f  (%.1fx)\n\n",
                both.vms[0].l2_tlb_mpki,
                alone.vms[0].l2_tlb_mpki > 0
                    ? both.vms[0].l2_tlb_mpki /
                          alone.vms[0].l2_tlb_mpki
                    : 0.0);

    // Then: how the four machines cope with it — each resolved
    // through the TranslationScheme registry (sim/scheme.h).
    const std::vector<Row> rows = {
        {SchemeId::conventional, run(SchemeId::conventional, 2)},
        {SchemeId::pom, run(SchemeId::pom, 2)},
        {SchemeId::csaltD, run(SchemeId::csaltD, 2)},
        {SchemeId::csaltCD, run(SchemeId::csaltCD, 2)},
    };
    const double conv_ipc = rows[0].metrics.ipc_geomean;

    TextTable table({"scheme", "IPC", "vs conventional", "L2TLB MPKI",
                     "walks", "walk cyc", "L3 tr-occupancy"});
    for (const auto &row : rows) {
        table.row()
            .add(schemeInfo(row.scheme).name)
            .add(row.metrics.ipc_geomean, 4)
            .add(conv_ipc > 0 ? row.metrics.ipc_geomean / conv_ipc
                              : 0.0,
                 3)
            .add(row.metrics.l2_tlb_mpki, 1)
            .add(row.metrics.walks)
            .add(row.metrics.avg_walk_cycles, 0)
            .add(row.metrics.l3_translation_occupancy, 2);
    }
    table.print();
    return 0;
}
