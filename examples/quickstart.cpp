/**
 * @file
 * Quickstart: build an 8-core virtualized system running two VMs
 * (canneal + connected component) under three translation schemes,
 * run a short slice, and print the headline metrics.
 *
 * This is the smallest end-to-end use of the public API:
 *   BuildSpec -> buildSystem() -> run() -> collectMetrics(),
 * with the scheme resolved through the TranslationScheme registry
 * (sim/scheme.h) — the same table every tool dispatches on.
 */

#include <array>
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "sim/metrics.h"
#include "sim/scheme.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

RunMetrics
runScheme(SchemeId id, std::uint64_t instructions)
{
    BuildSpec spec;
    applyScheme(spec.params, id);
    spec.vm_workloads = {"canneal", "ccomp"};
    auto system = buildSystem(spec);
    // Warm the TLBs/caches/POM-TLB past the compulsory misses, then
    // measure a steady-state slice.
    system->run(instructions / 2);
    system->clearAllStats();
    system->run(instructions);
    std::printf("  [%s] done\n", schemeInfo(id).name);
    return collectMetrics(*system);
}

} // namespace

int
main()
{
    constexpr std::uint64_t kInstructions = 1'000'000;

    std::printf("csalt quickstart: canneal+ccomp, 8 cores, 2 VMs\n");
    const std::array<SchemeId, 3> schemes = {
        SchemeId::conventional, SchemeId::pom, SchemeId::csaltCD};
    std::vector<RunMetrics> results;
    for (SchemeId id : schemes)
        results.push_back(runScheme(id, kInstructions));
    const RunMetrics &conv = results[0];

    TextTable table({"scheme", "IPC(gmean)", "L2TLB MPKI", "walks",
                     "walk cyc", "L3 tr-occ", "speedup vs conv"});
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const RunMetrics &m = results[i];
        table.row()
            .add(schemeInfo(schemes[i]).name)
            .add(m.ipc_geomean)
            .add(m.l2_tlb_mpki)
            .add(m.walks)
            .add(m.avg_walk_cycles, 1)
            .add(m.l3_translation_occupancy)
            .add(m.ipc_geomean / conv.ipc_geomean, 3);
    }
    table.print();
    return 0;
}
