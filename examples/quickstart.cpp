/**
 * @file
 * Quickstart: build an 8-core virtualized system running two VMs
 * (canneal + connected component) under three translation schemes,
 * run a short slice, and print the headline metrics.
 *
 * This is the smallest end-to-end use of the public API:
 *   BuildSpec -> buildSystem() -> run() -> collectMetrics().
 */

#include <cstdio>

#include "common/table.h"
#include "sim/metrics.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

RunMetrics
runScheme(const char *label, void (*apply)(SystemParams &),
          std::uint64_t instructions)
{
    BuildSpec spec;
    apply(spec.params);
    spec.vm_workloads = {"canneal", "ccomp"};
    auto system = buildSystem(spec);
    // Warm the TLBs/caches/POM-TLB past the compulsory misses, then
    // measure a steady-state slice.
    system->run(instructions / 2);
    system->clearAllStats();
    system->run(instructions);
    std::printf("  [%s] done\n", label);
    return collectMetrics(*system);
}

} // namespace

int
main()
{
    constexpr std::uint64_t kInstructions = 1'000'000;

    std::printf("csalt quickstart: canneal+ccomp, 8 cores, 2 VMs\n");
    const RunMetrics conv =
        runScheme("conventional", applyConventional, kInstructions);
    const RunMetrics pom =
        runScheme("POM-TLB", applyPomTlb, kInstructions);
    const RunMetrics csalt_cd =
        runScheme("CSALT-CD", applyCsaltCD, kInstructions);

    TextTable table({"scheme", "IPC(gmean)", "L2TLB MPKI", "walks",
                     "walk cyc", "L3 tr-occ", "speedup vs conv"});
    const auto add = [&](const char *name, const RunMetrics &m) {
        table.row()
            .add(name)
            .add(m.ipc_geomean)
            .add(m.l2_tlb_mpki)
            .add(m.walks)
            .add(m.avg_walk_cycles, 1)
            .add(m.l3_translation_occupancy)
            .add(m.ipc_geomean / conv.ipc_geomean, 3);
    };
    add("conventional", conv);
    add("POM-TLB", pom);
    add("CSALT-CD", csalt_cd);
    table.print();
    return 0;
}
