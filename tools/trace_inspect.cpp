/**
 * @file
 * trace_inspect: reader for csalt-sim telemetry — offline JSONL
 * traces (--trace-out files; schema in docs/observability.md) and
 * live attach against a *running* simulation.
 *
 *   trace_inspect run.jsonl                # tables on stdout
 *   trace_inspect --top 10 run.jsonl       # widen the worst-epoch list
 *   trace_inspect --label ctrl.l3 run.jsonl
 *   trace_inspect --cpi run.jsonl          # CPI stacks over time
 *   trace_inspect --chrome out.json run.jsonl
 *
 *   trace_inspect --attach <pid|path>      # follow a live sim
 *   trace_inspect --attach <pid> --follow-json   # NDJSON stream
 *   trace_inspect --attach <pid> --samples 5 --interval-ms 100
 *   trace_inspect --attach <pid> --stale-after 2000  # die if frozen
 *
 *   trace_inspect --spans spans.bin        # access-span sidecars
 *   trace_inspect --spans --top 10 spans.bin     # slowest journeys
 *   trace_inspect --spans --folded spans.bin | flamegraph.pl
 *   trace_inspect --spans --chrome out.json spans.bin
 *   trace_inspect --spans a.bin b.bin      # cross-scheme table
 *
 *   trace_inspect --snapshot run.ckpt      # CSALTSNAP header dump
 *
 * Attach maps the sim's shared-memory live region (obs::LiveExport;
 * a PID resolves to the conventional /dev/shm path) read-only and
 * prints one row per new publish: heartbeat, simulated time, epoch,
 * instruction count, cumulative and per-window L2 TLB MPKI, and the
 * current partition state (every *.data_ways gauge), with a
 * worst-window summary on exit. --follow-json instead streams one
 * NDJSON object per publish ({"type":"live_sample",...,"values":
 * {...}}) for external consumers. Detaches when the sim publishes
 * its finished marker, after --samples N rows, or on ^C.
 *
 * Exit status: 0 clean; 1 on malformed input (any skipped trace
 * line, a corrupt live region, or a writer that died mid-publish);
 * 2 on usage errors. A trace with *no* valid record is always an
 * error — truncated or unreadable files no longer pass silently.
 *
 * Prints, per partition-controller label:
 *  - a per-epoch table (way split, criticality weights, and the L2
 *    TLB MPKI measured inside each epoch window from stat samples)
 *  - the top-K worst epochs by that MPKI
 *  - a partition-timeline summary (the Fig. 9 view: how many ways the
 *    data partition held over time)
 * --cpi adds, from the same stat samples, a per-sample-window CPI
 * stack table (the "core*.cpi.*" gauges differenced per window and
 * folded into component groups) and the evolution of the system-wide
 * walk-latency percentiles (the "walk.lat" histogram digest).
 * --chrome rewraps the events into the {"traceEvents":[...]} array
 * form chrome://tracing and Perfetto load directly.
 *
 * --spans switches to the binary access-span sidecars written by
 * `csalt-sim --span-trace` (obs/span_trace.h): per file it prints the
 * header, a per-kind critical-path table (self cycles — child time
 * subtracted from parents), a per-ASID attribution table, and the
 * top-K slowest sampled journeys as indented span trees. --folded
 * emits folded-stack lines ("access;walk;dram self_cycles") for
 * flamegraph tooling instead of tables; --chrome writes the spans as
 * Chrome "X" events (one track per core). Several sidecars at once
 * produce a cross-scheme comparison table keyed by each file's
 * embedded run label, with one self%% column per translation backend
 * (tlb/pom/tsb/victima/pcax) plus walk, cache and dram; a sidecar
 * with no sampled cycles shows an explicit "(no samples)" row
 * instead of an all-zero one.
 *
 * --stale-after MS makes --attach exit(1) with a diagnostic when the
 * writer's heartbeat (publish_count) stops advancing for MS
 * milliseconds — a frozen table means the sim is stalled or dead,
 * not idle.
 *
 * --snapshot FILE dumps a CSALTSNAP checkpoint (snapshot/snapshot.h):
 * format version, the run-identity meta block (scheme, VM workloads,
 * scale, seed, config signature, warmup/measured position) and the
 * component chunk table with per-chunk payload sizes, offsets and
 * CRC32 stamps. The file is fully CRC-verified while loading, so a
 * corrupt or truncated checkpoint exits 1 with the same typed
 * diagnostic `csalt-sim --restore` would print.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/error.h"
#include "common/log.h"
#include "common/table.h"
#include "obs/json.h"
#include "obs/live_export.h"
#include "obs/span_trace.h"
#include "snapshot/snapshot.h"

using namespace csalt;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--top K] [--label L] [--cpi] "
                 "[--chrome OUT] FILE.jsonl\n"
                 "       %s --spans [--top K] [--folded] "
                 "[--chrome OUT] SPANS.bin [SPANS.bin ...]\n"
                 "       %s --attach PID|PATH [--follow-json] "
                 "[--samples N] [--interval-ms N] "
                 "[--stale-after MS]\n"
                 "       %s --snapshot FILE.ckpt\n",
                 argv0, argv0, argv0, argv0);
    std::exit(2);
}

/** Printable CPI-stack groups (order matches kCpiGroupNames). */
constexpr std::size_t kNumCpiGroups = 8;
const char *const kCpiGroupNames[kNumCpiGroups] = {
    "compute", "cs", "data", "tlb", "pom", "tsb", "walk", "repart"};

/** Group index of a "core*.cpi.<component>" gauge, or -1. */
int
cpiGroupOf(const std::string &component)
{
    if (component == "compute")
        return 0;
    if (component == "cs_switch")
        return 1;
    if (component.rfind("data_", 0) == 0)
        return 2;
    if (component == "tlb_probe")
        return 3;
    if (component == "pom_access")
        return 4;
    if (component == "tsb_access")
        return 5;
    if (component == "walk_mmu" || component.rfind("walk_", 0) == 0)
        return 6;
    if (component == "repartition")
        return 7;
    return -1;
}

/** One stat sample, reduced to the aggregates the reports need. */
struct SampleRow
{
    double t = 0.0;
    std::uint64_t step = 0;
    double instructions = 0.0; //!< sum of core*.instructions
    double l2tlb_misses = 0.0; //!< sum of core*.l2tlb.misses
    double walks = 0.0;        //!< sum of core*.walk.walks
    double cpi[kNumCpiGroups] = {}; //!< summed core*.cpi.* gauges
    bool has_walk_hist = false;     //!< "walk.lat" digest present
    double wl_count = 0.0, wl_p50 = 0.0, wl_p90 = 0.0,
           wl_p99 = 0.0, wl_p999 = 0.0, wl_max = 0.0;
};

/** One "repartition" epoch event. */
struct EpochRow
{
    std::string label;
    double t = 0.0;
    std::uint64_t epoch = 0;
    unsigned before_ways = 0;
    unsigned data_ways = 0;
    unsigned total_ways = 0;
    double w_data = 0.0;
    double w_tlb = 0.0;
    double mpki = 0.0; //!< L2 TLB MPKI inside this epoch window
    double instr = 0.0;
};

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Re-serialize a parsed value (used by --chrome). */
void
writeValue(std::ostream &os, const obs::JsonValue &v)
{
    using Kind = obs::JsonValue::Kind;
    switch (v.kind) {
      case Kind::null:
        os << "null";
        return;
      case Kind::boolean:
        os << (v.bool_v ? "true" : "false");
        return;
      case Kind::number:
        obs::writeJsonNumber(os, v.num_v);
        return;
      case Kind::string:
        os << '"' << obs::escapeJson(v.str_v) << '"';
        return;
      case Kind::array:
        os << '[';
        for (std::size_t i = 0; i < v.arr.size(); ++i) {
            if (i)
                os << ',';
            writeValue(os, v.arr[i]);
        }
        os << ']';
        return;
      case Kind::object:
        os << '{';
        for (std::size_t i = 0; i < v.obj.size(); ++i) {
            if (i)
                os << ',';
            os << '"' << obs::escapeJson(v.obj[i].first) << "\":";
            writeValue(os, v.obj[i].second);
        }
        os << '}';
        return;
    }
}

/**
 * Cumulative (instructions, misses) at time @p at, linearly
 * interpolated between the bracketing samples — epoch windows are
 * usually shorter than the sample interval, so stepping to the last
 * sample would collapse most windows to zero. Counters are monotone,
 * which keeps the interpolation meaningful. Before the first sample
 * the baseline is zero (the trace opens right after stats clear).
 */
std::pair<double, double>
cumulativeAt(const std::vector<SampleRow> &samples, double at)
{
    if (samples.empty() || at <= 0.0)
        return {0.0, 0.0};
    const SampleRow *lo = nullptr;
    for (const SampleRow &s : samples) {
        if (s.t >= at) {
            const double t0 = lo ? lo->t : 0.0;
            const double i0 = lo ? lo->instructions : 0.0;
            const double m0 = lo ? lo->l2tlb_misses : 0.0;
            const double f =
                s.t > t0 ? (at - t0) / (s.t - t0) : 1.0;
            return {i0 + f * (s.instructions - i0),
                    m0 + f * (s.l2tlb_misses - m0)};
        }
        lo = &s;
    }
    return {lo->instructions, lo->l2tlb_misses};
}

// ------------------------------------------------- span sidecars

/** "hit,trans,evicted-data" style rendering of span flags. */
std::string
spanFlagStr(const obs::Span &s)
{
    std::string out;
    const auto add = [&](const char *tag) {
        if (!out.empty())
            out += ',';
        out += tag;
    };
    if (s.flags & obs::kSpanFlagHit)
        add("hit");
    if (s.flags & obs::kSpanFlagTranslation)
        add("trans");
    if (s.flags & obs::kSpanFlagEvictedData)
        add("evicted-data");
    if (s.flags & obs::kSpanFlagVirtualized)
        add("virt");
    if (s.flags & obs::kSpanFlagSecondProbe)
        add("2nd-probe");
    return out.empty() ? "-" : out;
}

/** Span display name: kind, plus the walk/TLB level when set. */
std::string
spanName(const obs::Span &s)
{
    std::string name = obs::spanKindName(s.kindOf());
    if (s.level)
        name += ".L" + std::to_string(s.level);
    return name;
}

/** Depth of every span (parents always precede children). */
std::vector<int>
spanDepths(const obs::SpanJourney &j)
{
    std::vector<int> depth(j.spans.size(), 0);
    for (std::size_t i = 1; i < j.spans.size(); ++i)
        depth[i] = depth[static_cast<std::size_t>(j.spans[i].parent)] + 1;
    return depth;
}

/** Folded flamegraph stack ("access;walk;dram") for span @p i. */
std::string
foldedStack(const obs::SpanJourney &j, std::size_t i)
{
    std::vector<std::string> frames;
    for (int at = static_cast<int>(i); at >= 0;
         at = j.spans[static_cast<std::size_t>(at)].parent)
        frames.push_back(spanName(j.spans[static_cast<std::size_t>(at)]));
    std::string out;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
        if (!out.empty())
            out += ';';
        out += *it;
    }
    return out;
}

/** Per-file aggregates the span reports need. */
struct SpanFileReport
{
    std::string path;
    obs::SpanFile file;
    std::uint64_t journey_cycles = 0; //!< sum of root totals (ring)
    std::uint64_t kind_count[obs::kNumSpanKinds] = {};
    std::uint64_t kind_cycles[obs::kNumSpanKinds] = {};
    std::uint64_t kind_self[obs::kNumSpanKinds] = {};
};

/** Inspect binary span sidecars (`csalt-sim --span-trace`). */
int
runSpans(const std::vector<std::string> &paths, int top_k,
         bool folded, const std::string &chrome_out)
{
    std::vector<SpanFileReport> reports;
    for (const std::string &p : paths) {
        Expected<obs::SpanFile> file = obs::readSpanFile(p);
        if (!file.ok())
            fatal(makeError(file.error().kind,
                            "cannot read span sidecar: " +
                                file.error().message,
                            p,
                            "pass the --span-trace file written by "
                            "csalt-sim"));
        SpanFileReport rep;
        rep.path = p;
        rep.file = std::move(file).valueOrRaise();
        for (const obs::SpanJourney &j : rep.file.journeys) {
            rep.journey_cycles += j.total;
            const std::vector<std::uint64_t> self =
                obs::spanSelfCycles(j);
            for (std::size_t i = 0; i < j.spans.size(); ++i) {
                const auto k = static_cast<std::size_t>(j.spans[i].kind);
                ++rep.kind_count[k];
                rep.kind_cycles[k] += j.spans[i].dur;
                rep.kind_self[k] += self[i];
            }
        }
        reports.push_back(std::move(rep));
    }

    // ---------------------------------------------------- folded
    // Pure folded-stack output (pipe straight into flamegraph.pl):
    // one "stack weight" line per distinct path, weight = self
    // cycles. Multiple files are distinguished by a label root frame.
    if (folded) {
        std::map<std::string, std::uint64_t> stacks;
        for (const SpanFileReport &rep : reports) {
            for (const obs::SpanJourney &j : rep.file.journeys) {
                const std::vector<std::uint64_t> self =
                    obs::spanSelfCycles(j);
                for (std::size_t i = 0; i < j.spans.size(); ++i) {
                    if (!self[i])
                        continue;
                    std::string stack = foldedStack(j, i);
                    if (reports.size() > 1)
                        stack = rep.file.label + ";" + stack;
                    stacks[stack] += self[i];
                }
            }
        }
        for (const auto &[stack, cycles] : stacks)
            std::printf("%s %llu\n", stack.c_str(),
                        static_cast<unsigned long long>(cycles));
        return 0;
    }

    // ---------------------------------------------------- chrome
    if (!chrome_out.empty()) {
        std::ofstream out(chrome_out);
        if (!out)
            fatal("cannot open '" + chrome_out + "'");
        out << "{\"traceEvents\":[";
        bool first = true;
        for (std::size_t f = 0; f < reports.size(); ++f) {
            const SpanFileReport &rep = reports[f];
            for (const obs::SpanJourney &j : rep.file.journeys) {
                for (const obs::Span &s : j.spans) {
                    if (!first)
                        out << ",\n";
                    first = false;
                    out << "{\"name\":\"" << spanName(s)
                        << "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":"
                        << static_cast<double>(j.start_cycle) + s.start
                        << ",\"dur\":" << s.dur << ",\"pid\":" << f + 1
                        << ",\"tid\":" << j.core << ",\"args\":{"
                        << "\"asid\":" << j.asid << ",\"epoch\":"
                        << j.epoch << ",\"flags\":\""
                        << spanFlagStr(s) << "\"}}";
                }
            }
        }
        out << "]}\n";
        std::printf("wrote span events to %s\n", chrome_out.c_str());
    }

    // ------------------------------------------------ per-file view
    for (const SpanFileReport &rep : reports) {
        const obs::SpanFile &sf = rep.file;
        std::printf("== span sidecar: %s ==\n", rep.path.c_str());
        TextTable head({"field", "value"});
        head.row().add("label").add(sf.label);
        head.row().add("cores").add(
            static_cast<std::uint64_t>(sf.num_cores));
        head.row().add("sample rate").add(
            "1/" + std::to_string(sf.rate));
        head.row().add("seed").add(sf.seed);
        head.row().add("journeys sampled").add(sf.sampled);
        head.row().add("journeys retained").add(
            static_cast<std::uint64_t>(sf.journeys.size()));
        head.row().add("ring drops").add(sf.dropped);
        head.print();
        std::printf("\n");

        if (rep.file.journeys.empty()) {
            std::printf("(no journeys retained — empty run?)\n\n");
            continue;
        }
        if (rep.journey_cycles == 0) {
            // Percentages below divide by the sampled journey
            // cycles; with none, say so instead of printing 0-for-0
            // as if it were a measurement.
            std::printf("(no samples — every retained journey has "
                        "zero length)\n\n");
            continue;
        }

        // Critical path: self cycles per kind, as a share of total
        // sampled journey cycles. "cycles" is inclusive (children
        // counted in parents), "self" is exclusive.
        std::printf("== critical path by span kind: %s ==\n",
                    sf.label.c_str());
        TextTable kinds({"kind", "count", "cycles", "self", "self%"});
        for (std::size_t k = 0; k < obs::kNumSpanKinds; ++k) {
            if (!rep.kind_count[k])
                continue;
            kinds.row()
                .add(obs::spanKindName(
                    static_cast<obs::SpanKind>(k)))
                .add(rep.kind_count[k])
                .add(rep.kind_cycles[k])
                .add(rep.kind_self[k])
                .add(rep.journey_cycles
                         ? 100.0 *
                               static_cast<double>(rep.kind_self[k]) /
                               static_cast<double>(rep.journey_cycles)
                         : 0.0,
                     1);
        }
        kinds.print();
        std::printf("\n");

        // Per-ASID attribution: which VM pays the translation tax.
        struct AsidRow
        {
            std::uint64_t journeys = 0;
            std::uint64_t cycles = 0;
            std::uint64_t trans_self = 0;
        };
        std::map<Asid, AsidRow> per_asid;
        for (const obs::SpanJourney &j : sf.journeys) {
            AsidRow &row = per_asid[j.asid];
            ++row.journeys;
            row.cycles += j.total;
            const std::vector<std::uint64_t> self =
                obs::spanSelfCycles(j);
            for (std::size_t i = 0; i < j.spans.size(); ++i)
                if (obs::spanIsTranslation(j.spans[i]))
                    row.trans_self += self[i];
        }
        std::printf("== per-ASID critical path: %s ==\n",
                    sf.label.c_str());
        TextTable asids({"asid", "journeys", "cycles", "avg",
                         "translation%"});
        for (const auto &[asid, row] : per_asid)
            asids.row()
                .add(static_cast<std::uint64_t>(asid))
                .add(row.journeys)
                .add(row.cycles)
                .add(row.journeys ? static_cast<double>(row.cycles) /
                                        static_cast<double>(
                                            row.journeys)
                                  : 0.0,
                     1)
                .add(row.cycles ? 100.0 *
                                      static_cast<double>(
                                          row.trans_self) /
                                      static_cast<double>(row.cycles)
                                : 0.0,
                     1);
        asids.print();
        std::printf("\n");

        // Top-K slowest journeys, each as an indented span tree.
        std::vector<const obs::SpanJourney *> slow;
        for (const obs::SpanJourney &j : sf.journeys)
            slow.push_back(&j);
        std::sort(slow.begin(), slow.end(),
                  [](const obs::SpanJourney *a,
                     const obs::SpanJourney *b) {
                      return a->total > b->total;
                  });
        if (slow.size() > static_cast<std::size_t>(top_k))
            slow.resize(static_cast<std::size_t>(top_k));
        std::printf("== top-%d slowest journeys: %s ==\n", top_k,
                    sf.label.c_str());
        for (std::size_t n = 0; n < slow.size(); ++n) {
            const obs::SpanJourney &j = *slow[n];
            std::printf("#%zu  core=%u asid=%u epoch=%u "
                        "vaddr=0x%llx access#%llu  total=%u cycles "
                        "(charged %u)\n",
                        n + 1, j.core, j.asid, j.epoch,
                        static_cast<unsigned long long>(j.vaddr),
                        static_cast<unsigned long long>(
                            j.access_index),
                        j.total, j.charged);
            const std::vector<int> depth = spanDepths(j);
            const std::vector<std::uint64_t> self =
                obs::spanSelfCycles(j);
            for (std::size_t i = 0; i < j.spans.size(); ++i) {
                const obs::Span &s = j.spans[i];
                std::printf("  %*s%-*s [%6u..%6u] dur=%-6u self=%-6llu"
                            " %s\n",
                            depth[i] * 2, "",
                            std::max(2, 24 - depth[i] * 2),
                            spanName(s).c_str(), s.start, s.end(),
                            s.dur,
                            static_cast<unsigned long long>(self[i]),
                            spanFlagStr(s).c_str());
            }
        }
        std::printf("\n");
    }

    // --------------------------------- cross-scheme comparison table
    if (reports.size() > 1) {
        std::printf("== cross-scheme critical path (self%% of "
                    "journey cycles) ==\n");
        TextTable table({"label", "journeys", "avg cycles", "tlb%",
                         "pom%", "tsb%", "victima%", "pcax%", "walk%",
                         "cache%", "dram%"});
        const auto share = [](const SpanFileReport &r,
                              std::initializer_list<obs::SpanKind> ks) {
            std::uint64_t self = 0;
            for (obs::SpanKind k : ks)
                self += r.kind_self[static_cast<std::size_t>(k)];
            return 100.0 * static_cast<double>(self) /
                   static_cast<double>(r.journey_cycles);
        };
        for (const SpanFileReport &rep : reports) {
            const std::size_t n = rep.file.journeys.size();
            // An empty sidecar (or one whose journeys are all
            // zero-length) has no denominator: an all-zero row would
            // read as "this scheme spends nothing anywhere", so say
            // explicitly that there is nothing to attribute.
            if (n == 0 || rep.journey_cycles == 0) {
                auto &row = table.row();
                row.add(rep.file.label)
                    .add(static_cast<std::uint64_t>(n))
                    .add("(no samples)");
                for (int c = 0; c < 8; ++c)
                    row.add("-");
                continue;
            }
            table.row()
                .add(rep.file.label)
                .add(static_cast<std::uint64_t>(n))
                .add(static_cast<double>(rep.journey_cycles) /
                         static_cast<double>(n),
                     1)
                .add(share(rep, {obs::SpanKind::tlb_l1,
                                 obs::SpanKind::tlb_l2}),
                     1)
                .add(share(rep, {obs::SpanKind::pom_lookup}), 1)
                .add(share(rep, {obs::SpanKind::tsb_lookup}), 1)
                .add(share(rep, {obs::SpanKind::victima_lookup}), 1)
                .add(share(rep, {obs::SpanKind::pcax_lookup}), 1)
                .add(share(rep, {obs::SpanKind::walk,
                                 obs::SpanKind::walk_guest_ref,
                                 obs::SpanKind::walk_host_ref,
                                 obs::SpanKind::mmu_cache}),
                     1)
                .add(share(rep, {obs::SpanKind::cache_l1d,
                                 obs::SpanKind::cache_l2,
                                 obs::SpanKind::cache_l3}),
                     1)
                .add(share(rep, {obs::SpanKind::dram,
                                 obs::SpanKind::dram_queue,
                                 obs::SpanKind::dram_service}),
                     1);
        }
        table.print();
    }
    return 0;
}

// ------------------------------------------------------ live attach

/** Sum of the values at @p idxs in a snapshot. */
double
sumAt(const std::vector<double> &values,
      const std::vector<std::size_t> &idxs)
{
    double sum = 0.0;
    for (std::size_t i : idxs)
        sum += values[i];
    return sum;
}

/**
 * Follow a live region until the sim finishes (or @p max_samples
 * rows). Returns the process exit code.
 */
int
runAttach(const std::string &target, bool follow_json,
          unsigned interval_ms, std::uint64_t max_samples,
          unsigned stale_after_ms)
{
    // NDJSON consumers read us through a pipe: line-buffer stdout so
    // every sample is visible the moment its newline lands, even
    // when the default full-buffering of a non-tty would hold it.
    if (follow_json)
        std::setvbuf(stdout, nullptr, _IOLBF, 0);

    // A bare PID names the conventional region of that process.
    std::string path = target;
    if (!target.empty() &&
        target.find_first_not_of("0123456789") == std::string::npos)
        path = obs::LiveExport::defaultPathFor(std::atoi(target.c_str()));

    // The writer creates the region a moment after startup; retry
    // briefly so `csalt-sim ... & trace_inspect --attach $!` works.
    Expected<obs::LiveReader> reader =
        makeError(ErrorKind::io, "unreachable");
    for (int tries = 0; tries < 50; ++tries) {
        reader = obs::LiveReader::open(path);
        if (reader.ok())
            break;
        usleep(100'000);
    }
    if (!reader.ok())
        fatal(makeError(reader.error().kind,
                        "cannot attach to live region: " +
                            reader.error().message,
                        path,
                        "is the sim running with --live (or "
                        "CSALT_LIVE_EXPORT=1)?"));
    obs::LiveReader live = reader.take();

    // Index the stat names once: they are frozen for the region's
    // lifetime.
    std::vector<std::size_t> instr_idx, miss_idx, ways_idx;
    std::vector<std::string> ways_names;
    const std::vector<std::string> &names = live.names();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &n = names[i];
        if (startsWith(n, "core") && endsWith(n, ".instructions") &&
            n.find(".vm") == std::string::npos)
            instr_idx.push_back(i);
        else if (startsWith(n, "core") && endsWith(n, ".l2tlb.misses"))
            miss_idx.push_back(i);
        else if (endsWith(n, ".data_ways")) {
            ways_idx.push_back(i);
            ways_names.push_back(n.substr(0, n.size() -
                                                 strlen(".data_ways")));
        }
    }

    if (!follow_json) {
        std::printf("attached: %s (%zu stats", path.c_str(),
                    names.size());
        for (std::size_t k = 0; k < ways_names.size(); ++k)
            std::printf("%s%s", k ? ", " : "; partitions: ",
                        ways_names[k].c_str());
        std::printf(")\n%10s %14s %14s %7s %12s %10s %10s  %s\n",
                    "hb", "t", "step", "epoch", "Minstr",
                    "mpki_cum", "mpki_win", "data_ways");
    }

    std::uint64_t last_pc = 0, printed = 0, stuck = 0;
    double prev_instr = 0.0, prev_miss = 0.0;
    bool have_prev = false;
    double worst_win = -1.0, worst_t = 0.0;
    std::uint64_t worst_epoch = 0;

    // Staleness watchdog (--stale-after): wall time since the
    // heartbeat last advanced. A live-but-idle sim still publishes
    // (the run loop heartbeats every 4096 steps), so a frozen
    // publish_count really does mean stalled or dead.
    using Clock = std::chrono::steady_clock;
    Clock::time_point last_advance = Clock::now();
    const auto frozenMs = [&] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - last_advance)
                .count());
    };

    for (;;) {
        if (stale_after_ms && frozenMs() >= stale_after_ms) {
            warn(msgOf("sim appears stalled or dead: heartbeat "
                       "(publish_count=", last_pc,
                       ") has not advanced in ", frozenMs(),
                       " ms (--stale-after ", stale_after_ms, ")"));
            return 1;
        }
        auto snap = live.read();
        if (!snap.ok()) {
            if (snap.error().kind == ErrorKind::cancelled) {
                // Writer mid-publish; transient unless it died there.
                if (++stuck >= 100) {
                    warn("live region stuck mid-publish (writer "
                         "died?): " + snap.error().message);
                    return 1;
                }
                usleep(interval_ms * 1000);
                continue;
            }
            fatal(makeError(snap.error().kind,
                            "live region unreadable: " +
                                snap.error().message,
                            path));
        }
        stuck = 0;
        const obs::LiveSnapshot &s = snap.value();
        if (printed != 0 && s.publish_count == last_pc) {
            if (s.finished)
                break; // saw the final publish already
            usleep(interval_ms * 1000);
            continue;
        }
        last_pc = s.publish_count;
        last_advance = Clock::now();

        const double instr = sumAt(s.values, instr_idx);
        const double miss = sumAt(s.values, miss_idx);
        const double mpki_cum =
            instr > 0.0 ? miss / (instr / 1000.0) : 0.0;
        const double d_instr = have_prev ? instr - prev_instr : instr;
        const double d_miss = have_prev ? miss - prev_miss : miss;
        const double mpki_win =
            d_instr > 0.0 ? d_miss / (d_instr / 1000.0) : 0.0;
        if (have_prev && d_instr > 0.0 && mpki_win > worst_win) {
            worst_win = mpki_win;
            worst_t = s.t;
            worst_epoch = s.epoch;
        }
        prev_instr = instr;
        prev_miss = miss;
        have_prev = true;

        if (follow_json) {
            std::ostringstream os;
            os << "{\"type\":\"live_sample\",\"t\":";
            obs::writeJsonNumber(os, s.t);
            os << ",\"step\":" << s.step << ",\"epoch\":" << s.epoch
               << ",\"publish_count\":" << s.publish_count
               << ",\"pid\":" << s.pid << ",\"finished\":"
               << (s.finished ? "true" : "false") << ",\"values\":{";
            for (std::size_t i = 0; i < names.size(); ++i) {
                if (i)
                    os << ',';
                os << '"' << obs::escapeJson(names[i]) << "\":";
                obs::writeJsonNumber(os, s.values[i]);
            }
            os << "}}";
            std::printf("%s\n", os.str().c_str());
        } else {
            std::string ways;
            for (std::size_t k = 0; k < ways_idx.size(); ++k) {
                if (k)
                    ways += ',';
                ways += std::to_string(static_cast<unsigned>(
                    s.values[ways_idx[k]]));
            }
            std::printf("%10llu %14.0f %14llu %7llu %12.2f %10.3f "
                        "%10.3f  %s%s\n",
                        static_cast<unsigned long long>(
                            s.publish_count),
                        s.t,
                        static_cast<unsigned long long>(s.step),
                        static_cast<unsigned long long>(s.epoch),
                        instr / 1e6, mpki_cum, mpki_win,
                        ways.empty() ? "-" : ways.c_str(),
                        s.finished ? "  [finished]" : "");
        }
        std::fflush(stdout);
        ++printed;
        if (s.finished || (max_samples && printed >= max_samples))
            break;
        usleep(interval_ms * 1000);
    }

    if (!follow_json && worst_win >= 0.0)
        std::printf("worst window: %.3f L2 TLB MPKI at t=%.0f "
                    "(epoch %llu) over %llu publish(es)\n",
                    worst_win, worst_t,
                    static_cast<unsigned long long>(worst_epoch),
                    static_cast<unsigned long long>(printed));
    return 0;
}

/**
 * --snapshot: CSALTSNAP header + chunk-table dump. Loading fully
 * CRC-verifies the image, so this doubles as an offline integrity
 * check: a corrupt checkpoint makes load() raise and we exit 1 with
 * the chunk + byte-offset diagnostic.
 */
int
runSnapshot(const std::string &path)
try {
    const snapshot::SnapshotReader reader =
        snapshot::SnapshotReader::load(path);
    const snapshot::SnapshotMeta &meta = reader.meta();

    std::string vms;
    for (const auto &vm : meta.vms) {
        if (!vms.empty())
            vms += ", ";
        vms += vm;
    }

    std::printf("snapshot: %s\n", path.c_str());
    TextTable info({"field", "value"});
    info.row().add("format version").add(
        std::uint64_t(snapshot::kSnapshotVersion));
    char crc_buf[16];
    std::snprintf(crc_buf, sizeof crc_buf, "0x%08x",
                  meta.config_crc);
    info.row().add("config signature").add(std::string(crc_buf));
    info.row().add("scheme").add(meta.scheme);
    info.row().add("vm workloads").add(vms.empty() ? "-" : vms);
    info.row().add("scale").add(meta.scale, 3);
    info.row().add("seed").add(meta.seed);
    info.row().add("phase").add(std::string(
        meta.phase == 0 ? "0 (warmup)" : "1 (measured)"));
    info.row().add("warmup quota/core").add(meta.warmup);
    info.row().add("measured quota/core").add(meta.quota);
    info.row().add("scheduler steps").add(meta.steps);
    info.row().add("occupancy epoch").add(meta.epoch);
    info.row().add("instructions retired").add(meta.instructions);
    info.print();

    std::printf("\ncomponent chunks (CRC-verified)\n");
    TextTable chunks({"chunk", "payload bytes", "offset", "crc32"});
    std::uint64_t payload_total = 0;
    for (const auto &c : reader.chunks()) {
        std::snprintf(crc_buf, sizeof crc_buf, "0x%08x", c.crc);
        chunks.row()
            .add(c.name)
            .add(c.payload_size)
            .add(c.payload_offset)
            .add(std::string(crc_buf));
        payload_total += c.payload_size;
    }
    chunks.row().add("total").add(payload_total).add("").add("");
    chunks.print();
    return 0;
} catch (const CsaltError &e) {
    std::fprintf(stderr, "%s\n", describe(e.error()).c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    int top_k = 5;
    std::string only_label;
    std::string chrome_out;
    std::vector<std::string> paths;
    std::string attach_target;
    std::string snapshot_path;
    bool cpi_mode = false;
    bool follow_json = false;
    bool spans_mode = false;
    bool folded = false;
    std::uint64_t max_samples = 0;
    unsigned interval_ms = 200;
    unsigned stale_after_ms = 0;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top")
            top_k = std::atoi(next_arg(i));
        else if (arg == "--label")
            only_label = next_arg(i);
        else if (arg == "--chrome")
            chrome_out = next_arg(i);
        else if (arg == "--cpi")
            cpi_mode = true;
        else if (arg == "--spans")
            spans_mode = true;
        else if (arg == "--folded")
            folded = true;
        else if (arg == "--attach")
            attach_target = next_arg(i);
        else if (arg == "--snapshot")
            snapshot_path = next_arg(i);
        else if (arg == "--follow-json")
            follow_json = true;
        else if (arg == "--stale-after")
            stale_after_ms = static_cast<unsigned>(
                std::atoi(next_arg(i)));
        else if (arg == "--samples")
            max_samples = static_cast<std::uint64_t>(
                std::atoll(next_arg(i)));
        else if (arg == "--interval-ms")
            interval_ms = static_cast<unsigned>(
                std::atoi(next_arg(i)));
        else if (arg == "--help" || arg == "-h")
            usage(argv[0]);
        else if (!arg.empty() && arg[0] == '-')
            usage(argv[0]);
        else
            paths.push_back(arg);
    }
    if (!snapshot_path.empty()) {
        // Snapshot dump is its own mode: no trace files, no spans,
        // no live attach.
        if (!paths.empty() || spans_mode || !attach_target.empty())
            usage(argv[0]);
        return runSnapshot(snapshot_path);
    }
    if (!attach_target.empty()) {
        if (!paths.empty() || spans_mode)
            usage(argv[0]); // offline files + live attach don't mix
        return runAttach(attach_target, follow_json,
                         std::max(1u, interval_ms), max_samples,
                         stale_after_ms);
    }
    if (follow_json || stale_after_ms)
        usage(argv[0]); // only meaningful with --attach
    if (spans_mode) {
        if (paths.empty())
            usage(argv[0]);
        return runSpans(paths, std::max(1, top_k), folded,
                        chrome_out);
    }
    if (folded)
        usage(argv[0]); // only meaningful with --spans
    if (paths.size() != 1)
        usage(argv[0]); // JSONL mode reads exactly one trace
    const std::string path = paths.front();

    std::ifstream in(path);
    if (!in) {
        fatal(makeError(ErrorKind::io, "cannot open trace", path,
                        "pass the --trace-out file written by "
                        "csalt-sim"));
    }

    std::vector<SampleRow> samples;
    std::vector<EpochRow> epochs;
    std::map<std::string, std::uint64_t> event_counts; //!< by cat
    std::vector<obs::JsonValue> chrome_events;
    std::uint64_t walk_spans = 0;
    double walk_cycles = 0.0, walk_refs = 0.0;
    std::uint64_t bad_lines = 0, line_no = 0;
    double t_min = 0.0, t_max = 0.0;
    bool have_t = false;

    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::string err;
        const auto doc = obs::parseJson(line, &err);
        if (!doc || !doc->isObject()) {
            if (++bad_lines <= 3)
                warn(msgOf(path, ":", line_no, ": skipping bad line (",
                           err, ")"));
            continue;
        }
        const std::string type = doc->stringOr("type", "");
        if (type == "sample") {
            SampleRow row;
            row.t = doc->numberOr("t", 0.0);
            row.step =
                static_cast<std::uint64_t>(doc->numberOr("step", 0.0));
            if (const obs::JsonValue *vals = doc->find("values")) {
                for (const auto &[key, v] : vals->obj) {
                    if (!v.isNumber() || !startsWith(key, "core"))
                        continue;
                    if (endsWith(key, ".instructions") &&
                        key.find(".vm") == std::string::npos)
                        row.instructions += v.num_v;
                    else if (endsWith(key, ".l2tlb.misses"))
                        row.l2tlb_misses += v.num_v;
                    else if (endsWith(key, ".walk.walks"))
                        row.walks += v.num_v;
                    const std::size_t cpi_at = key.find(".cpi.");
                    if (cpi_at != std::string::npos) {
                        const int g =
                            cpiGroupOf(key.substr(cpi_at + 5));
                        if (g >= 0)
                            row.cpi[g] += v.num_v;
                    }
                }
            }
            if (const obs::JsonValue *hists = doc->find("hists")) {
                if (const obs::JsonValue *wl =
                        hists->find("walk.lat")) {
                    row.has_walk_hist = true;
                    row.wl_count = wl->numberOr("count", 0.0);
                    row.wl_p50 = wl->numberOr("p50", 0.0);
                    row.wl_p90 = wl->numberOr("p90", 0.0);
                    row.wl_p99 = wl->numberOr("p99", 0.0);
                    row.wl_p999 = wl->numberOr("p999", 0.0);
                    row.wl_max = wl->numberOr("max", 0.0);
                }
            }
            samples.push_back(row);
        } else if (type == "event") {
            const double ts = doc->numberOr("ts", 0.0);
            if (!have_t || ts < t_min)
                t_min = ts;
            if (!have_t || ts > t_max)
                t_max = ts;
            have_t = true;
            ++event_counts[doc->stringOr("cat", "?")];
            if (!chrome_out.empty())
                chrome_events.push_back(*doc);
            const std::string name = doc->stringOr("name", "");
            const obs::JsonValue *args = doc->find("args");
            if (name == "repartition" && args) {
                EpochRow row;
                row.label = args->stringOr("label", "?");
                row.t = ts;
                row.epoch = static_cast<std::uint64_t>(
                    args->numberOr("epoch", 0.0));
                row.before_ways = static_cast<unsigned>(
                    args->numberOr("before_data_ways", 0.0));
                row.data_ways = static_cast<unsigned>(
                    args->numberOr("data_ways", 0.0));
                row.total_ways = static_cast<unsigned>(
                    args->numberOr("total_ways", 0.0));
                row.w_data = args->numberOr("w_data", 0.0);
                row.w_tlb = args->numberOr("w_tlb", 0.0);
                epochs.push_back(row);
            } else if (startsWith(name, "walk_")) {
                ++walk_spans;
                walk_cycles += doc->numberOr("dur", 0.0);
                if (args)
                    walk_refs += args->numberOr("refs", 0.0);
            }
        } else {
            if (++bad_lines <= 3)
                warn(msgOf(path, ":", line_no,
                           ": unknown record type '", type, "'"));
        }
    }
    if (bad_lines > 3)
        warn(msgOf(bad_lines, " bad/unknown lines total"));
    if (samples.empty() && !have_t && event_counts.empty()) {
        fatal(makeError(
            ErrorKind::parse, "no valid trace records", path,
            line_no == 0
                ? "the file is empty — did the sim run with "
                  "--trace-out?"
                : "every line is malformed; this is not a csalt-sim "
                  "telemetry trace (or it was truncated at birth)"));
    }

    // ---------------------------------------------------------- chrome
    if (!chrome_out.empty()) {
        std::ofstream out(chrome_out);
        if (!out)
            fatal("cannot open '" + chrome_out + "'");
        out << "{\"traceEvents\":[";
        for (std::size_t i = 0; i < chrome_events.size(); ++i) {
            if (i)
                out << ",\n";
            // Re-emit every field except our JSONL "type" tag.
            const obs::JsonValue &ev = chrome_events[i];
            out << '{';
            bool first = true;
            for (const auto &[key, v] : ev.obj) {
                if (key == "type")
                    continue;
                if (!first)
                    out << ',';
                first = false;
                out << '"' << obs::escapeJson(key) << "\":";
                writeValue(out, v);
            }
            out << '}';
        }
        out << "]}\n";
        std::printf("wrote %zu events to %s\n", chrome_events.size(),
                    chrome_out.c_str());
    }

    // --------------------------------------------------------- summary
    {
        TextTable table({"trace", "value"});
        table.row().add("file").add(path);
        table.row().add("samples").add(
            static_cast<std::uint64_t>(samples.size()));
        for (const auto &[cat, n] : event_counts)
            table.row().add("events[" + cat + "]").add(n);
        if (have_t) {
            table.row().add("first event ts").add(t_min, 0);
            table.row().add("last event ts").add(t_max, 0);
        }
        if (walk_spans) {
            table.row().add("walk spans").add(walk_spans);
            table.row()
                .add("avg walk cycles")
                .add(walk_cycles / static_cast<double>(walk_spans), 1);
            table.row()
                .add("avg walk refs")
                .add(walk_refs / static_cast<double>(walk_spans), 2);
        }
        table.print();
        std::printf("\n");
    }

    std::sort(samples.begin(), samples.end(),
              [](const SampleRow &a, const SampleRow &b) {
                  return a.t < b.t;
              });

    // --------------------------------------------- CPI stacks (--cpi)
    if (cpi_mode) {
        // The cpi gauges are cumulative: difference consecutive
        // samples to get each window's stack (the sampler fires on
        // epoch boundaries, so windows are epoch-resolution).
        bool any_cpi = false;
        for (const SampleRow &s : samples)
            for (double v : s.cpi)
                any_cpi = any_cpi || v != 0.0;
        if (!any_cpi) {
            std::printf("(no core*.cpi.* gauges in trace — re-run "
                        "csalt-sim with --trace-out against this "
                        "build)\n\n");
        } else {
            std::printf("== CPI stack per sample window "
                        "(%% of window cycles) ==\n");
            std::vector<std::string> headers = {"t", "cycles"};
            for (const char *g : kCpiGroupNames)
                headers.push_back(std::string(g) + "%");
            TextTable table(headers);
            SampleRow prev; // zero baseline: trace opens post-clear
            for (const SampleRow &s : samples) {
                double window[kNumCpiGroups];
                double total = 0.0;
                for (std::size_t g = 0; g < kNumCpiGroups; ++g) {
                    window[g] = s.cpi[g] - prev.cpi[g];
                    total += window[g];
                }
                auto &row = table.row().add(s.t, 0).add(total, 0);
                for (std::size_t g = 0; g < kNumCpiGroups; ++g)
                    row.add(total > 0.0 ? 100.0 * window[g] / total
                                        : 0.0,
                            1);
                prev = s;
            }
            table.print();
            std::printf("\n");
        }

        bool any_hist = false;
        for (const SampleRow &s : samples)
            any_hist = any_hist || s.has_walk_hist;
        if (!any_hist) {
            std::printf("(no walk.lat histogram digests in trace)\n\n");
        } else {
            std::printf("== walk-latency percentiles over time "
                        "(cumulative digests, cycles) ==\n");
            TextTable table({"t", "walks", "p50", "p90", "p99",
                             "p99.9", "max"});
            for (const SampleRow &s : samples) {
                if (!s.has_walk_hist)
                    continue;
                table.row()
                    .add(s.t, 0)
                    .add(s.wl_count, 0)
                    .add(s.wl_p50, 0)
                    .add(s.wl_p90, 0)
                    .add(s.wl_p99, 0)
                    .add(s.wl_p999, 0)
                    .add(s.wl_max, 0);
            }
            table.print();
            std::printf("\n");
        }
    }

    // ------------------------------------------- per-epoch MPKI windows
    std::map<std::string, double> last_epoch_t; //!< per label
    std::sort(epochs.begin(), epochs.end(),
              [](const EpochRow &a, const EpochRow &b) {
                  return a.t < b.t;
              });
    for (EpochRow &e : epochs) {
        const double t0 =
            last_epoch_t.count(e.label) ? last_epoch_t[e.label] : 0.0;
        last_epoch_t[e.label] = e.t;
        const auto [i0, m0] = cumulativeAt(samples, t0);
        const auto [i1, m1] = cumulativeAt(samples, e.t);
        e.instr = std::max(0.0, i1 - i0);
        e.mpki = e.instr > 0.0
                     ? std::max(0.0, m1 - m0) / (e.instr / 1000.0)
                     : 0.0;
    }

    std::vector<std::string> labels;
    for (const EpochRow &e : epochs)
        if (std::find(labels.begin(), labels.end(), e.label) ==
            labels.end())
            labels.push_back(e.label);
    if (!only_label.empty()) {
        if (std::find(labels.begin(), labels.end(), only_label) ==
            labels.end())
            warn("no epoch events for label '" + only_label + "'");
        labels = {only_label};
    }

    // ------------------------------------------------ per-epoch tables
    for (const std::string &label : labels) {
        std::printf("== per-epoch table: %s ==\n", label.c_str());
        TextTable table({"epoch", "t", "ways", "w_data", "w_tlb",
                         "instr", "L2TLB MPKI"});
        for (const EpochRow &e : epochs) {
            if (e.label != label)
                continue;
            table.row()
                .add(e.epoch)
                .add(e.t, 0)
                .add(msgOf(e.before_ways, "->", e.data_ways, "/",
                           e.total_ways))
                .add(e.w_data, 3)
                .add(e.w_tlb, 3)
                .add(e.instr, 0)
                .add(samples.empty() ? std::string("-")
                                     : msgOf(e.mpki));
        }
        table.print();
        std::printf("\n");
    }

    // --------------------------------------------- top-K worst epochs
    if (!epochs.empty() && !samples.empty()) {
        std::vector<EpochRow> worst;
        for (const EpochRow &e : epochs)
            if (only_label.empty() || e.label == only_label)
                worst.push_back(e);
        std::sort(worst.begin(), worst.end(),
                  [](const EpochRow &a, const EpochRow &b) {
                      return a.mpki > b.mpki;
                  });
        if (worst.size() > static_cast<std::size_t>(top_k))
            worst.resize(static_cast<std::size_t>(top_k));
        std::printf("== top-%d worst epochs by L2 TLB MPKI ==\n",
                    top_k);
        TextTable table(
            {"label", "epoch", "t", "ways", "L2TLB MPKI"});
        for (const EpochRow &e : worst)
            table.row()
                .add(e.label)
                .add(e.epoch)
                .add(e.t, 0)
                .add(msgOf(e.data_ways, "/", e.total_ways))
                .add(e.mpki, 2);
        table.print();
        std::printf("\n");
    }

    // ------------------------------------- partition-timeline summary
    if (!epochs.empty()) {
        std::printf("== partition timeline (data ways) ==\n");
        TextTable table({"label", "epochs", "min", "avg", "max",
                         "changes", "final"});
        for (const std::string &label : labels) {
            unsigned mn = ~0u, mx = 0, final_ways = 0, changes = 0;
            double sum = 0.0;
            std::uint64_t n = 0;
            for (const EpochRow &e : epochs) {
                if (e.label != label)
                    continue;
                mn = std::min(mn, e.data_ways);
                mx = std::max(mx, e.data_ways);
                if (e.data_ways != e.before_ways)
                    ++changes;
                sum += e.data_ways;
                final_ways = e.data_ways;
                ++n;
            }
            if (!n)
                continue;
            table.row()
                .add(label)
                .add(static_cast<std::uint64_t>(n))
                .add(static_cast<std::uint64_t>(mn))
                .add(sum / static_cast<double>(n), 2)
                .add(static_cast<std::uint64_t>(mx))
                .add(static_cast<std::uint64_t>(changes))
                .add(static_cast<std::uint64_t>(final_ways));
        }
        table.print();
    } else {
        std::printf("(no repartition events in trace — run with "
                    "--scheme csalt-d/csalt-cd and --trace-events "
                    "epoch)\n");
    }
    if (bad_lines) {
        warn(msgOf("trace had ", bad_lines,
                   " malformed/unknown line(s); reporting partial "
                   "data and exiting non-zero"));
        return 1;
    }
    return 0;
}
