/**
 * @file
 * Developer harness: static-partition sweep for one workload pair —
 * establishes the headroom the dynamic controller should find.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/metrics.h"
#include "sim/system_builder.h"
#include "workloads/registry.h"

using namespace csalt;

namespace
{

double
run(const std::string &label, unsigned l2_data, unsigned l3_data,
    std::uint64_t warmup, std::uint64_t quota)
{
    BuildSpec spec;
    applyPomTlb(spec.params);
    if (l3_data) {
        spec.params.l2_partition.policy = PartitionPolicy::staticHalf;
        spec.params.l2_partition.static_data_ways = l2_data;
        spec.params.l3_partition.policy = PartitionPolicy::staticHalf;
        spec.params.l3_partition.static_data_ways = l3_data;
    }
    const PairSpec pair = resolvePair(label);
    spec.vm_workloads = {pair.vm1, pair.vm2};
    auto system = buildSystem(spec);
    system->run(warmup);
    system->clearAllStats();
    system->run(quota);
    return collectMetrics(*system).ipc_geomean;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string label = argc > 1 ? argv[1] : "ccomp";
    const std::uint64_t quota = 1'000'000;
    const std::uint64_t warmup = 800'000;

    const double base = run(label, 0, 0, warmup, quota);
    std::printf("%s unpartitioned IPC %.4f\n", label.c_str(), base);
    for (unsigned l2d = 1; l2d <= 3; ++l2d) {
        for (unsigned l3d : {2u, 4u, 6u, 8u, 10u, 12u, 14u}) {
            const double ipc = run(label, l2d, l3d, warmup, quota);
            std::printf("  L2d=%u L3d=%-2u  ipc %.4f  vs_pom %.3f\n",
                        l2d, l3d, ipc, ipc / base);
            std::fflush(stdout);
        }
    }
    return 0;
}
