/**
 * @file
 * Developer harness: static-partition sweep for one workload pair —
 * establishes the headroom the dynamic controller should find.
 *
 *   sweep [label] [--jobs N] [--json results.json]
 *         [--resume | --fresh] [--retries N] [--job-timeout S]
 *         [--stall-timeout S]
 *   sweep --schemes all|S1,S2,... [label] [--jobs N] [--json F]
 *
 * --schemes switches to the translation-scheme shoot-out: every
 * requested scheme (from the sim/scheme.h registry; "all" = every
 * registered one) runs on every paper workload pair (or just [label]
 * when given), and the table reports per-workload IPC speedup
 * normalized to the conventional scheme plus a per-scheme geomean
 * row. Results are collected before anything prints, so the table is
 * byte-identical at any --jobs count.
 *
 * The (L2 ways × L3 ways) grid runs through the parallel job runner
 * ($CSALT_JOBS or --jobs; default sequential); rows stream in grid
 * order regardless of completion order, so output is identical at
 * any job count. --json writes the merged per-cell RunMetrics and
 * maintains a crash-safe journal beside it
 * (results.json.journal.jsonl): kill the sweep at any point and
 * --resume replays the finished cells instead of re-simulating, with
 * byte-identical stdout. Cells that were *in flight* when the sweep
 * died additionally leave a per-cell CSALTSNAP checkpoint beside the
 * results file (KEY.ckpt, refreshed every few occupancy epochs);
 * --resume restores those mid-run instead of restarting them from
 * scratch, and a finished cell deletes its checkpoint. Failed cells
 * are reported in a table and counted in the exit code instead of
 * aborting the grid.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "harness/job_runner.h"
#include "harness/results.h"
#include "sim/metrics.h"
#include "sim/scheme.h"
#include "sim/system_builder.h"
#include "snapshot/checkpoint.h"
#include "workloads/registry.h"

using namespace csalt;

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    if (const char *s = std::getenv(name))
        return std::strtoull(s, nullptr, 10);
    return fallback;
}

/** Occupancy epochs between per-cell checkpoint refreshes. */
constexpr std::uint64_t kCellCheckpointEpochs = 4;

/**
 * Warmup + measured run with per-cell checkpointing. When @p ckpt is
 * non-empty the run snapshots itself every kCellCheckpointEpochs
 * occupancy epochs; on @p resume a cell that was in flight when the
 * previous sweep died restores from that checkpoint and continues
 * mid-run instead of restarting from scratch (finished cells never
 * get here — the journal replays them without calling the job body).
 * The checkpoint is deleted once the cell completes, so only
 * interrupted cells leave one behind. Checkpointing never changes
 * the cell's metrics: restore-and-finish equals run-uninterrupted
 * byte for byte (pinned by tests/test_snapshot.cpp).
 */
RunMetrics
runCell(const BuildSpec &spec, std::uint64_t warmup,
        std::uint64_t quota, const std::string &ckpt, bool resume)
{
    auto system = buildSystem(spec);
    std::uint8_t phase = 0; //!< 0 = warmup, 1 = measured
    if (!ckpt.empty()) {
        const std::uint32_t crc = snapshot::configSignature(
            spec.params, spec.vm_workloads, spec.workload_scale);
        if (resume && std::ifstream(ckpt).good()) {
            try {
                const snapshot::SnapshotReader reader =
                    snapshot::SnapshotReader::load(ckpt);
                if (reader.meta().warmup != warmup ||
                    reader.meta().quota != quota) {
                    raise(makeError(
                        ErrorKind::config,
                        "checkpoint was taken with different run "
                        "quotas",
                        ckpt));
                }
                snapshot::restoreSystem(*system, reader, crc);
                phase = reader.meta().phase;
            } catch (const CsaltError &e) {
                // A stale or corrupt per-cell checkpoint must not
                // fail the cell: rebuild and run it from scratch.
                warn(msgOf("ignoring per-cell checkpoint '", ckpt,
                           "': ", oneLine(e.error())));
                system = buildSystem(spec);
                phase = 0;
            }
        }
        System *sys = system.get();
        system->setCheckpointHook(
            [sys, crc, &spec, warmup, quota, ckpt, &phase,
             last_epoch = sys->liveEpoch()]() mutable {
                if (sys->liveEpoch() <
                    last_epoch + kCellCheckpointEpochs)
                    return;
                snapshot::SnapshotMeta meta;
                meta.config_crc = crc;
                meta.scheme = "sweep-cell";
                meta.vms = spec.vm_workloads;
                meta.scale = spec.workload_scale;
                meta.seed = spec.params.seed;
                meta.warmup = warmup;
                meta.quota = quota;
                meta.phase = phase;
                meta.steps = sys->steps();
                meta.epoch = sys->liveEpoch();
                for (unsigned c = 0; c < sys->numCores(); ++c)
                    meta.instructions +=
                        sys->core(c).instructions();
                if (Status st = snapshot::writeSnapshotRotating(
                        ckpt,
                        snapshot::serializeSystem(*sys, meta),
                        /*keep=*/1);
                    !st.ok()) {
                    // Checkpointing is a convenience; the cell's
                    // result must not depend on writable disk.
                    warn("cell checkpoint not written: " +
                         oneLine(st.error()));
                }
                last_epoch = sys->liveEpoch();
            });
    }
    if (phase == 0) {
        system->run(warmup);
        system->clearAllStats();
    }
    phase = 1;
    system->run(quota);
    if (!ckpt.empty())
        std::remove(ckpt.c_str()); // finished: the journal owns it now
    return collectMetrics(*system);
}

RunMetrics
run(const std::string &label, unsigned l2_data, unsigned l3_data,
    std::uint64_t warmup, std::uint64_t quota,
    const std::string &ckpt, bool resume)
{
    BuildSpec spec;
    applyPomTlb(spec.params);
    // The two levels partition independently: an L2-only split
    // (l3_data == 0) must not silently run unpartitioned, and an
    // L3-only split must not drag the L2 along.
    if (l2_data) {
        spec.params.l2_partition.policy = PartitionPolicy::staticHalf;
        spec.params.l2_partition.static_data_ways = l2_data;
    }
    if (l3_data) {
        spec.params.l3_partition.policy = PartitionPolicy::staticHalf;
        spec.params.l3_partition.static_data_ways = l3_data;
    }
    const PairSpec pair = resolvePair(label);
    spec.vm_workloads = {pair.vm1, pair.vm2};
    return runCell(spec, warmup, quota, ckpt, resume);
}

RunMetrics
runScheme(const std::string &label, SchemeId scheme,
          std::uint64_t warmup, std::uint64_t quota,
          const std::string &ckpt, bool resume)
{
    BuildSpec spec;
    applyScheme(spec.params, scheme);
    const PairSpec pair = resolvePair(label);
    spec.vm_workloads = {pair.vm1, pair.vm2};
    return runCell(spec, warmup, quota, ckpt, resume);
}

/**
 * KEY.ckpt beside the results file ("/" and friends flattened so the
 * key stays one path component); empty when there is no --json to
 * anchor it.
 */
std::string
cellCheckpointPath(const std::string &json_path,
                   const std::string &key)
{
    if (json_path.empty())
        return {};
    std::string flat = key;
    for (char &ch : flat) {
        if (ch == '/' || ch == ',' || ch == '=')
            ch = '_';
    }
    return json_path + "." + flat + ".ckpt";
}

int
schemesMain(const harness::RunnerOptions &opts,
            const std::string &schemes_arg, const std::string &label,
            const std::string &json_path)
{
    const std::uint64_t quota = envU64("CSALT_QUOTA", 1'000'000);
    const std::uint64_t warmup = envU64("CSALT_WARMUP", quota * 4 / 5);

    std::vector<SchemeId> schemes;
    if (schemes_arg == "all") {
        for (const SchemeInfo &info : allSchemes())
            schemes.push_back(info.id);
    } else {
        std::stringstream ss(schemes_arg);
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                schemes.push_back(
                    schemeFromName(item).valueOrRaise());
    }
    // The table normalizes to conventional, so it always runs.
    if (std::find(schemes.begin(), schemes.end(),
                  SchemeId::conventional) == schemes.end())
        schemes.insert(schemes.begin(), SchemeId::conventional);
    const std::size_t conv_i = static_cast<std::size_t>(
        std::find(schemes.begin(), schemes.end(),
                  SchemeId::conventional) -
        schemes.begin());

    const std::vector<std::string> labels =
        label.empty() ? paperPairLabels()
                      : std::vector<std::string>{label};

    harness::JobRunner<RunMetrics> runner(opts);
    std::unique_ptr<harness::Journal> journal;
    if (!json_path.empty()) {
        journal = harness::Journal::open(
                      json_path + ".journal.jsonl",
                      msgOf("shootout:quota=", quota,
                            ":warmup=", warmup),
                      !opts.resume)
                      .valueOrRaise();
        runner.attachJournal(journal.get(),
                             harness::metricsJournalCodec());
    } else if (opts.resume) {
        fatal(makeError(ErrorKind::usage,
                        "--resume needs --json: the journal lives "
                        "beside the results file",
                        "--resume"));
    }

    for (const std::string &wl : labels)
        for (SchemeId s : schemes) {
            const std::string key = wl + "/" + schemeInfo(s).cli;
            const std::string ckpt =
                cellCheckpointPath(json_path, key);
            runner.add(key, [=] {
                return runScheme(wl, s, warmup, quota, ckpt,
                                 opts.resume);
            });
        }

    // Collect everything before printing: every row needs its
    // conventional cell for normalization, so the table prints only
    // after the grid completes — byte-identical at any --jobs count.
    const auto outcomes = runner.run(
        opts.jobs > 1 ? harness::stderrProgress()
                      : harness::ProgressFn{});
    const auto cell =
        [&](std::size_t w,
            std::size_t s) -> const harness::JobOutcome<RunMetrics> & {
        return outcomes[w * schemes.size() + s];
    };

    std::printf("scheme shoot-out: IPC speedup vs conventional "
                "(quota %llu)\n",
                static_cast<unsigned long long>(quota));
    std::printf("%-16s", "workload");
    for (SchemeId s : schemes)
        std::printf(" %12s", schemeInfo(s).cli);
    std::printf("\n");

    std::vector<double> log_sum(schemes.size(), 0.0);
    std::vector<std::size_t> log_n(schemes.size(), 0);
    for (std::size_t w = 0; w < labels.size(); ++w) {
        std::printf("%-16s", labels[w].c_str());
        const auto &base = cell(w, conv_i);
        const double base_ipc =
            base.ok ? base.value->ipc_geomean : 0.0;
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const auto &o = cell(w, s);
            if (!o.ok || base_ipc <= 0.0) {
                std::printf(" %12s", "FAILED");
                continue;
            }
            const double speedup = o.value->ipc_geomean / base_ipc;
            std::printf(" %12.3f", speedup);
            if (speedup > 0.0) {
                log_sum[s] += std::log(speedup);
                ++log_n[s];
            }
        }
        std::printf("\n");
    }
    // A geomean over a row subset would silently reward failure, so
    // any hole in a column turns its geomean into a visible "n/a".
    std::printf("%-16s", "geomean");
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        if (log_n[s] == labels.size())
            std::printf(" %12.3f",
                        std::exp(log_sum[s] /
                                 static_cast<double>(log_n[s])));
        else
            std::printf(" %12s", "n/a");
    }
    std::printf("\n");
    std::fflush(stdout);

    if (!json_path.empty()) {
        if (!harness::writeJobsJson(json_path, outcomes))
            fatal("cannot write sweep results to '" + json_path +
                  "'");
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    harness::printFailureTable(outcomes);
    const std::size_t failed = harness::countFailures(outcomes);
    return static_cast<int>(std::min<std::size_t>(failed, 125));
}

int
sweepMain(const harness::RunnerOptions &opts, const std::string &label,
          const std::string &json_path)
{
    const std::uint64_t quota = envU64("CSALT_QUOTA", 1'000'000);
    const std::uint64_t warmup = envU64("CSALT_WARMUP", quota * 4 / 5);

    struct Cell
    {
        unsigned l2d;
        unsigned l3d;
    };
    std::vector<Cell> grid = {{0, 0}}; // [0] is the unpartitioned base
    for (unsigned l2d = 1; l2d <= 3; ++l2d)
        for (unsigned l3d : {0u, 2u, 4u, 6u, 8u, 10u, 12u, 14u})
            grid.push_back({l2d, l3d});

    harness::JobRunner<RunMetrics> runner(opts);
    std::unique_ptr<harness::Journal> journal;
    if (!json_path.empty()) {
        journal = harness::Journal::open(
                      json_path + ".journal.jsonl",
                      msgOf("sweep:", label, ":quota=", quota,
                            ":warmup=", warmup),
                      !opts.resume)
                      .valueOrRaise();
        runner.attachJournal(journal.get(),
                             harness::metricsJournalCodec());
    } else if (opts.resume) {
        fatal(makeError(ErrorKind::usage,
                        "--resume needs --json: the journal lives "
                        "beside the results file",
                        "--resume"));
    }

    for (const Cell &cell : grid) {
        const std::string key =
            cell.l2d == 0 && cell.l3d == 0
                ? label + "/unpartitioned"
                : label + "/L2d=" + std::to_string(cell.l2d) +
                      ",L3d=" + std::to_string(cell.l3d);
        const std::string ckpt = cellCheckpointPath(json_path, key);
        runner.add(key, [=] {
            return run(label, cell.l2d, cell.l3d, warmup, quota,
                       ckpt, opts.resume);
        });
    }

    // Rows stream in grid order; the base IPC is ready before any
    // grid row because the ordered callback fires index 0 first.
    double base = 0.0;
    runner.setOrderedCallback(
        [&](std::size_t i, const harness::JobOutcome<RunMetrics> &o) {
            if (!o.ok) {
                // The failure table carries the details; the row just
                // keeps the grid shape readable.
                if (i == 0)
                    std::printf("%s unpartitioned FAILED [%s]\n",
                                label.c_str(), o.error_kind.c_str());
                else
                    std::printf("  L2d=%u L3d=%-2u  FAILED [%s]\n",
                                grid[i].l2d, grid[i].l3d,
                                o.error_kind.c_str());
            } else if (i == 0) {
                base = o.value->ipc_geomean;
                std::printf("%s unpartitioned IPC %.4f\n",
                            label.c_str(), base);
            } else {
                const double ipc = o.value->ipc_geomean;
                std::printf(
                    "  L2d=%u L3d=%-2u  ipc %.4f  vs_pom %.3f\n",
                    grid[i].l2d, grid[i].l3d, ipc,
                    base > 0 ? ipc / base : 0.0);
            }
            std::fflush(stdout);
        });
    const auto outcomes = runner.run(
        opts.jobs > 1 ? harness::stderrProgress()
                      : harness::ProgressFn{});

    if (!json_path.empty()) {
        if (!harness::writeJobsJson(json_path, outcomes))
            fatal("cannot write sweep results to '" + json_path + "'");
        // stderr, like all non-result chatter: keeps stdout identical
        // across runs that write to different --json paths.
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    harness::printFailureTable(outcomes);
    const std::size_t failed = harness::countFailures(outcomes);
    return static_cast<int>(std::min<std::size_t>(failed, 125));
}

} // namespace

int
main(int argc, char **argv)
{
    const harness::RunnerOptions opts =
        harness::parseRunnerFlags(argc, argv);
    std::string label;
    std::string json_path;
    std::string schemes;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc)
                fatal("--json needs a path");
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--schemes") == 0) {
            if (i + 1 >= argc)
                fatal("--schemes needs 'all' or a comma list (" +
                      schemeCliNames() + ")");
            schemes = argv[++i];
        } else {
            label = argv[i];
        }
    }
    try {
        if (!schemes.empty())
            return schemesMain(opts, schemes, label, json_path);
        return sweepMain(opts, label.empty() ? "ccomp" : label,
                         json_path);
    } catch (const CsaltError &e) {
        fatal(e.error()); // structured diagnostic + exit(1)
    }
}
