/**
 * @file
 * Developer tuning harness (not an experiment binary): prints, per
 * paper workload pair, the calibration quantities the generators are
 * tuned against — L2 TLB MPKI with/without context switching, walk
 * costs, translation occupancy, per-scheme cache behaviour and IPCs.
 * See bench/ for the per-figure reproduction binaries.
 *
 *   tune [--jobs N] [--journal out.jsonl] [--resume | --fresh]
 *        [--retries N] [--job-timeout S] [label ...]
 *
 * The (label × scheme) grid runs through the parallel job runner
 * ($CSALT_JOBS or --jobs; default sequential); tables print in label
 * order either way, so output is identical at any job count.
 * --journal keeps a crash-safe record of finished runs so --resume
 * replays them after a kill; a label with any failed run prints a
 * SKIPPED banner and the failures are tabulated at the end, counted
 * in the exit code.
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "harness/job_runner.h"
#include "obs/json.h"
#include "sim/metrics_io.h"
#include "sim/metrics.h"
#include "sim/scheme.h"
#include "sim/system_builder.h"
#include "workloads/registry.h"

using namespace csalt;

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    if (const char *s = std::getenv(name))
        return std::strtoull(s, nullptr, 10);
    return fallback;
}

struct RunOutput
{
    RunMetrics metrics;
    double l2_tr_hit = 0.0;
    double l3_tr_hit = 0.0;
    double l2_data_hit = 0.0;
    double l3_data_hit = 0.0;
    double l2_traffic_ratio = 0.0; //!< translation : data accesses
    double trans_cyc_per_miss = 0.0;
    double l2_data_ways = 0.0;
    double l3_data_ways = 0.0;
    double trans_per_instr = 0.0;
    double data_per_instr = 0.0;
    double ddr_avg = 0.0;
    double stk_avg = 0.0;
    double ddr_apki = 0.0; //!< DDR accesses per kilo-instruction
    double stk_apki = 0.0;
};

RunOutput
runOne(const std::string &label, SchemeId scheme,
       bool context_switch, std::uint64_t warmup, std::uint64_t quota)
{
    BuildSpec spec;
    applyScheme(spec.params, scheme);
    const PairSpec pair = resolvePair(label);
    spec.vm_workloads = {pair.vm1};
    if (context_switch)
        spec.vm_workloads.push_back(pair.vm2);
    auto system = buildSystem(spec);
    if (warmup) {
        system->run(warmup);
        system->clearAllStats(); // resets instruction counters too
    }
    system->run(quota);

    RunOutput out;
    out.metrics = collectMetrics(*system);

    auto &mem = system->mem();
    std::uint64_t tr_h = 0, tr_m = 0, d_h = 0, d_m = 0;
    std::uint64_t trans_cycles = 0, tlb_misses = 0;
    for (unsigned c = 0; c < system->numCores(); ++c) {
        const auto &s = mem.l2(c).stats();
        tr_h += s.hitsOf(LineType::translation);
        tr_m += s.missesOf(LineType::translation);
        d_h += s.hitsOf(LineType::data);
        d_m += s.missesOf(LineType::data);
        trans_cycles += system->core(c).stats().translation_cycles;
        tlb_misses += system->core(c).tlbs().l2().stats().misses;
        out.l2_data_ways +=
            mem.l2Controller(c).partitionTrace().meanValue();
    }
    out.l2_tr_hit = hitRate(tr_h, tr_m);
    out.l2_data_hit = hitRate(d_h, d_m);
    out.l2_traffic_ratio =
        (d_h + d_m) ? static_cast<double>(tr_h + tr_m) / (d_h + d_m)
                    : 0.0;
    out.trans_cyc_per_miss =
        tlb_misses ? static_cast<double>(trans_cycles) / tlb_misses
                   : 0.0;
    out.l2_data_ways /= system->numCores();

    std::uint64_t tcy = 0, dcy = 0;
    for (unsigned c = 0; c < system->numCores(); ++c) {
        tcy += system->core(c).stats().translation_cycles;
        dcy += system->core(c).stats().data_cycles;
    }
    const double instr =
        static_cast<double>(out.metrics.total_instructions);
    out.trans_per_instr = tcy / instr;
    out.data_per_instr = dcy / instr;
    out.ddr_avg = mem.ddr().stats().avgLatency();
    out.stk_avg = mem.stacked().stats().avgLatency();
    out.ddr_apki = 1000.0 * mem.ddr().stats().accesses / instr;
    out.stk_apki = 1000.0 * mem.stacked().stats().accesses / instr;

    const auto &s3 = mem.l3().stats();
    out.l3_tr_hit = hitRate(s3.hitsOf(LineType::translation),
                            s3.missesOf(LineType::translation));
    out.l3_data_hit = hitRate(s3.hitsOf(LineType::data),
                              s3.missesOf(LineType::data));
    out.l3_data_ways = mem.l3Controller().partitionTrace().meanValue();
    return out;
}

/** The calibration extras, in a fixed serialisation order. */
std::array<double *, 14>
extraFields(RunOutput &r)
{
    return {&r.l2_tr_hit,       &r.l3_tr_hit,
            &r.l2_data_hit,     &r.l3_data_hit,
            &r.l2_traffic_ratio, &r.trans_cyc_per_miss,
            &r.l2_data_ways,    &r.l3_data_ways,
            &r.trans_per_instr, &r.data_per_instr,
            &r.ddr_avg,         &r.stk_avg,
            &r.ddr_apki,        &r.stk_apki};
}

/**
 * Resume codec: the embedded metrics object reuses the full-fidelity
 * RunMetrics journal form; the calibration extras ride behind it as a
 * fixed-order number array. "extra" is the last member, so the
 * metrics text slices back out via the rfind marker.
 */
harness::JournalCodec<RunOutput>
runOutputCodec()
{
    harness::JournalCodec<RunOutput> codec;
    codec.encode = [](const RunOutput &r) {
        std::ostringstream os;
        os << "{\"metrics\":" << metricsJournalJson(r.metrics)
           << ",\"extra\":[";
        auto fields = extraFields(const_cast<RunOutput &>(r));
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i)
                os << ',';
            obs::writeJsonNumber(os, *fields[i]);
        }
        os << "]}";
        return os.str();
    };
    codec.decode = [](std::string_view text) -> Expected<RunOutput> {
        constexpr std::string_view kPrefix = "{\"metrics\":";
        constexpr std::string_view kMarker = ",\"extra\":[";
        const auto marker = text.rfind(kMarker);
        if (text.substr(0, kPrefix.size()) != kPrefix ||
            marker == std::string_view::npos) {
            return makeError(ErrorKind::parse,
                             "malformed tune journal value", "journal",
                             "re-run with --fresh");
        }
        RunOutput out;
        Expected<RunMetrics> metrics = metricsFromJournal(
            text.substr(kPrefix.size(), marker - kPrefix.size()));
        if (!metrics)
            return metrics.error();
        out.metrics = std::move(metrics).take();
        const auto parsed =
            obs::parseJson(text.substr(marker + kMarker.size() - 1,
                                       text.size() - 1 -
                                           (marker + kMarker.size() - 1)));
        if (!parsed || !parsed->isArray() ||
            parsed->arr.size() != extraFields(out).size()) {
            return makeError(ErrorKind::parse,
                             "malformed tune journal extras",
                             "journal", "re-run with --fresh");
        }
        auto fields = extraFields(out);
        for (std::size_t i = 0; i < fields.size(); ++i)
            *fields[i] = parsed->arr[i].num_v;
        return out;
    };
    return codec;
}

} // namespace

namespace
{

int
tuneMain(const harness::RunnerOptions &opts,
         const std::string &journal_path,
         const std::vector<std::string> &labels, std::uint64_t warmup,
         std::uint64_t quota)
{

    // Short column labels over registry schemes (sim/scheme.h); the
    // conv-noCS calibration point reuses conventional without the
    // second VM.
    struct Variant
    {
        const char *name;
        SchemeId scheme;
        bool context_switch;
    };
    const std::vector<Variant> variants = {
        {"conv-noCS", SchemeId::conventional, false},
        {"conv", SchemeId::conventional, true},
        {"pom", SchemeId::pom, true},
        {"csD", SchemeId::csaltD, true},
        {"csCD", SchemeId::csaltCD, true},
    };

    harness::JobRunner<RunOutput> runner(opts);
    std::unique_ptr<harness::Journal> journal;
    if (!journal_path.empty()) {
        journal = harness::Journal::open(
                      journal_path,
                      msgOf("tune:quota=", quota, ":warmup=", warmup),
                      !opts.resume)
                      .valueOrRaise();
        runner.attachJournal(journal.get(), runOutputCodec());
    } else if (opts.resume) {
        fatal(makeError(ErrorKind::usage,
                        "--resume needs --journal", "--resume"));
    }

    for (const auto &label : labels) {
        for (const auto &v : variants) {
            runner.add(label + "/" + v.name, [=] {
                return runOne(label, v.scheme, v.context_switch,
                              warmup, quota);
            });
        }
    }
    const auto outcomes = runner.run(
        opts.jobs > 1 ? harness::stderrProgress()
                      : harness::ProgressFn{});

    for (std::size_t l = 0; l < labels.size(); ++l) {
        const auto &label = labels[l];
        std::size_t label_failed = 0;
        for (std::size_t v = 0; v < variants.size(); ++v)
            label_failed += !outcomes[l * variants.size() + v].ok;
        if (label_failed) {
            std::printf("=== %s  SKIPPED (%zu of %zu runs failed)\n",
                        label.c_str(), label_failed, variants.size());
            std::fflush(stdout);
            continue;
        }
        const auto slot = [&](std::size_t v) -> const RunOutput & {
            return *outcomes[l * variants.size() + v].value;
        };
        const auto &conv_nocs = slot(0);
        const auto &conv = slot(1);
        const auto &pom = slot(2);
        const auto &csd = slot(3);
        const auto &cscd = slot(4);

        std::printf("=== %s  (MPKI noCS %.2f | CS %.2f | ratio %.2f | "
                    "conv walk %.0f cyc | POM elim %.3f)\n",
                    label.c_str(), conv_nocs.metrics.l2_tlb_mpki,
                    conv.metrics.l2_tlb_mpki,
                    conv_nocs.metrics.l2_tlb_mpki > 0
                        ? conv.metrics.l2_tlb_mpki /
                              conv_nocs.metrics.l2_tlb_mpki
                        : 0.0,
                    conv.metrics.avg_walk_cycles,
                    pom.metrics.walks_eliminated);

        TextTable t({"scheme", "ipc", "vs_pom", "tlbMPKI", "tcyc/miss",
                     "L2tr_hit", "L3tr_hit", "L2d_hit", "L3d_hit",
                     "trf_L2", "occL2", "occL3", "dwaysL2", "dwaysL3",
                     "t/ins", "d/ins", "ddrAvg", "stkAvg", "ddrAPKI",
                     "stkAPKI"});
        const auto add = [&](const char *name, const RunOutput &r) {
            t.row()
                .add(name)
                .add(r.metrics.ipc_geomean, 4)
                .add(pom.metrics.ipc_geomean > 0
                         ? r.metrics.ipc_geomean /
                               pom.metrics.ipc_geomean
                         : 0.0,
                     3)
                .add(r.metrics.l2_tlb_mpki, 1)
                .add(r.trans_cyc_per_miss, 0)
                .add(r.l2_tr_hit, 2)
                .add(r.l3_tr_hit, 2)
                .add(r.l2_data_hit, 2)
                .add(r.l3_data_hit, 2)
                .add(r.l2_traffic_ratio, 2)
                .add(r.metrics.l2_translation_occupancy, 2)
                .add(r.metrics.l3_translation_occupancy, 2)
                .add(r.l2_data_ways, 1)
                .add(r.l3_data_ways, 1)
                .add(r.trans_per_instr, 1)
                .add(r.data_per_instr, 1)
                .add(r.ddr_avg, 0)
                .add(r.stk_avg, 0)
                .add(r.ddr_apki, 0)
                .add(r.stk_apki, 0);
        };
        add("conv", conv);
        add("pom", pom);
        add("csD", csd);
        add("csCD", cscd);
        t.print();
        std::fflush(stdout);
    }
    harness::printFailureTable(outcomes);
    const std::size_t failed = harness::countFailures(outcomes);
    return static_cast<int>(std::min<std::size_t>(failed, 125));
}

} // namespace

int
main(int argc, char **argv)
{
    const harness::RunnerOptions opts =
        harness::parseRunnerFlags(argc, argv);
    const std::uint64_t quota = envU64("CSALT_QUOTA", 2'000'000);
    const std::uint64_t warmup = envU64("CSALT_WARMUP", quota / 2);
    std::string journal_path;
    std::vector<std::string> labels;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--journal") == 0) {
            if (i + 1 >= argc)
                fatal("--journal needs a path");
            journal_path = argv[++i];
        } else {
            labels.emplace_back(argv[i]);
        }
    }
    if (labels.empty())
        labels = paperPairLabels();
    try {
        return tuneMain(opts, journal_path, labels, warmup, quota);
    } catch (const CsaltError &e) {
        fatal(e.error());
    }
}
