/**
 * @file
 * csalt-sim: command-line front end to the simulator, so experiments
 * can be scripted without writing C++.
 *
 *   csalt-sim --vm pagerank --vm ccomp --scheme csalt-cd \
 *             --quota 2000000 --warmup 500000 --format csv
 *
 * Options:
 *   --vm NAME            add a VM (repeatable; also "file:<path>")
 *   --pair LABEL         add both VMs of a paper pair label
 *   --scheme S           any registered scheme (sim/scheme.h):
 *                        conventional | pom | csalt-d | csalt-cd |
 *                        tsb | dip | victima | pcax
 *                        (default: csalt-cd)
 *   --quota N            measured instructions per core (default 1M)
 *   --warmup N           warmup instructions per core (default 500K)
 *   --cores N            core count (default 8)
 *   --cs-interval-ms N   context-switch interval in paper-ms
 *   --native             disable virtualization (1-D walks)
 *   --five-level         LA57-style 5-level page tables
 *   --scale F            workload footprint multiplier
 *   --seed N             RNG seed
 *   --format F           table | csv | json    (default: table)
 *   --cpi-stack          print CPI stacks: where every simulated
 *                        cycle went (normalized component table,
 *                        plus per-core and per-VM breakdowns)
 *   --histograms         print percentile digests of every latency
 *                        histogram that saw traffic
 *   --trace-out FILE     stream telemetry (JSONL samples + Chrome
 *                        trace events) to FILE; see
 *                        docs/observability.md
 *   --sample-interval N  scheduler steps between stat samples
 *                        (default 8192 when tracing, else off)
 *   --trace-events LIST  comma list of event categories to record:
 *                        cs,epoch,walk | all | none  (default: all)
 *   --live               publish live snapshots to the conventional
 *                        per-pid region under /dev/shm; attach with
 *                        `trace_inspect --attach <pid|path>` (also
 *                        enabled by CSALT_LIVE_EXPORT=1|PATH)
 *   --live-out PATH      like --live, to an explicit region path
 *   --profile            arm the in-sim phase profiler (host-time
 *                        RAII scopes; also CSALT_SELF_PROFILE=1) and
 *                        print the self-profile summary table; the
 *                        digests also land in --format json as the
 *                        "self_profile" section
 *   --paranoid           run the invariant self-checks at every
 *                        occupancy epoch and at end of run (also
 *                        enabled by CSALT_PARANOID=1); any violation
 *                        is a structured kind=invariant error
 *   --inject FAULT       corrupt one internal structure mid-run
 *                        (fault-injection self-test; implies
 *                        --paranoid, so the run must FAIL with a
 *                        checker diagnostic — see docs/robustness.md)
 *   --inject-seed N      which set/entry the fault lands in
 *   --span-trace FILE    record sampled per-access journey trees
 *                        (obs/span_trace.h) into binary sidecar
 *                        FILE; inspect with `trace_inspect --spans`.
 *                        Adds a "span_summary" section to --format
 *                        json and a critical-path table otherwise.
 *                        Behavior-neutral (golden-stats gated).
 *   --span-rate N        sample 1 in N accesses (default 256;
 *                        deterministic hash of the per-core access
 *                        index — bit-exact across --jobs)
 *   --checkpoint-out F   write CSALTSNAP checkpoints to F; SIGTERM /
 *                        SIGINT then write a final checkpoint and
 *                        exit 75 (resumable) instead of dying dirty
 *   --checkpoint-every N checkpoint every N occupancy epochs
 *                        (requires --checkpoint-out; snapshots land
 *                        at epoch boundaries only)
 *   --checkpoint-keep K  rotation depth: F, F.1, ... F.(K-1)
 *                        (default 3)
 *   --restore F          resume a checkpointed run; the scheme /
 *                        VMs / scale / seed / quotas must match the
 *                        ones the checkpoint was taken with, and the
 *                        completed run's metrics are byte-identical
 *                        to the uninterrupted run's
 *
 * The trace sink is attached after warmup so the telemetry covers
 * exactly the measured region (and the epoch events line up with the
 * controller partition trace, which is also cleared post-warmup).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "check/fault_injector.h"
#include "common/error.h"
#include "common/log.h"
#include "common/table.h"
#include "obs/live_export.h"
#include "obs/phase_profiler.h"
#include "obs/trace_event.h"
#include "sim/metrics_io.h"
#include "sim/system_builder.h"
#include "snapshot/checkpoint.h"
#include "workloads/registry.h"

using namespace csalt;

namespace
{

/**
 * Which checkpoint signal arrived, if any. The handler only sets the
 * flag; System::run()'s checkpoint hook polls it at the next event
 * boundary, writes the final snapshot, and unwinds with
 * kind=cancelled so main can exit 75 (resumable interruption).
 */
volatile std::sig_atomic_t g_signal = 0;

void
onCheckpointSignal(int sig)
{
    g_signal = sig;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--vm NAME]... [--pair LABEL] "
                 "[--scheme S] [--quota N] [--warmup N] [--cores N] "
                 "[--cs-interval-ms N] [--native] [--five-level] "
                 "[--scale F] [--seed N] [--format table|csv|json] "
                 "[--cpi-stack] [--histograms] "
                 "[--trace-out FILE] [--sample-interval N] "
                 "[--trace-events cs,epoch,walk|all|none] "
                 "[--live] [--live-out PATH] [--profile] "
                 "[--paranoid] [--inject FAULT] [--inject-seed N] "
                 "[--span-trace FILE] [--span-rate N] "
                 "[--checkpoint-out FILE] [--checkpoint-every N] "
                 "[--checkpoint-keep K] [--restore FILE]\n",
                 argv0);
    std::fprintf(stderr, "schemes: %s\n", schemeCliNames().c_str());
    std::exit(2);
}

/** Fold the 20+ fine-grained components into printable groups. */
struct CpiGroups
{
    double compute = 0.0;
    double cs = 0.0;
    double data = 0.0;
    double tlb = 0.0;
    double pom = 0.0;
    double tsb = 0.0;
    double walk = 0.0;
    double repart = 0.0;

    explicit CpiGroups(const obs::CpiStack &s)
        : compute(s.of(obs::CpiComponent::compute)),
          cs(s.of(obs::CpiComponent::csSwitch)),
          data(s.of(obs::CpiComponent::dataL1d) +
               s.of(obs::CpiComponent::dataL2) +
               s.of(obs::CpiComponent::dataL3) +
               s.of(obs::CpiComponent::dataDram)),
          tlb(s.of(obs::CpiComponent::tlbProbe)),
          pom(s.of(obs::CpiComponent::pomAccess)),
          tsb(s.of(obs::CpiComponent::tsbAccess)),
          walk(s.walkTotal()),
          repart(s.of(obs::CpiComponent::repartition))
    {
    }
};

void
addGroupRow(TextTable &table, const std::string &label,
            const obs::CpiStack &stack)
{
    const CpiGroups g(stack);
    const double total = stack.total();
    auto pct = [&](double v) {
        return total > 0.0 ? 100.0 * v / total : 0.0;
    };
    table.row()
        .add(label)
        .add(total, 0)
        .add(pct(g.compute), 1)
        .add(pct(g.cs), 1)
        .add(pct(g.data), 1)
        .add(pct(g.tlb), 1)
        .add(pct(g.pom), 1)
        .add(pct(g.tsb), 1)
        .add(pct(g.walk), 1)
        .add(pct(g.repart), 1);
}

void
printCpiStack(const RunMetrics &m)
{
    std::printf("\nCPI stack (cycles by component)\n");
    TextTable detail({"component", "cycles", "share"});
    const double total = m.cpi_total.total();
    for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
        const auto comp = static_cast<obs::CpiComponent>(i);
        const double v = m.cpi_total.of(comp);
        if (v == 0.0)
            continue;
        detail.row()
            .add(obs::cpiComponentName(comp))
            .add(v, 0)
            .add(total > 0.0 ? 100.0 * v / total : 0.0, 2);
    }
    detail.row().add("total (stack)").add(total, 0).add(100.0, 2);
    detail.row()
        .add("simulated cycles")
        .add(m.total_cycles, 0)
        .add(total > 0.0 ? 100.0 * m.total_cycles / total : 0.0, 2);
    detail.row()
        .add("residual")
        .add(m.total_cycles - total, 3)
        .add("");
    detail.print();

    const std::vector<std::string> group_headers = {
        "",        "cycles", "compute%", "cs%",  "data%",
        "tlb%",    "pom%",   "tsb%",     "walk%", "repart%"};

    std::printf("\nPer-core CPI stacks (%% of core cycles)\n");
    TextTable cores(group_headers);
    for (std::size_t i = 0; i < m.core_cpi.size(); ++i)
        addGroupRow(cores, "core" + std::to_string(i), m.core_cpi[i]);
    cores.print();

    if (m.vm_cpi.size() > 1) {
        std::printf("\nPer-VM CPI stacks (%% of VM cycles, "
                    "summed across cores)\n");
        TextTable vms(group_headers);
        for (std::size_t i = 0; i < m.vm_cpi.size(); ++i)
            addGroupRow(vms, "vm" + std::to_string(i), m.vm_cpi[i]);
        vms.print();
    }
}

void
printHistograms(const RunMetrics &m)
{
    std::printf("\nLatency histograms (cycles)\n");
    TextTable table({"histogram", "count", "mean", "p50", "p90",
                     "p99", "p99.9", "max"});
    for (const auto &h : m.histograms) {
        table.row()
            .add(h.name)
            .add(h.digest.count)
            .add(h.digest.mean, 1)
            .add(h.digest.p50)
            .add(h.digest.p90)
            .add(h.digest.p99)
            .add(h.digest.p999)
            .add(h.digest.max);
    }
    table.print();
}

/** The --profile summary: host ns per instrumented phase. */
void
printSelfProfile(const RunMetrics &m)
{
    std::printf("\nSelf-profile (host time per simulator phase)\n");
    if (m.self_profile.empty()) {
        std::printf("(no scopes recorded — profiler disarmed or "
                    "phases never ran)\n");
        return;
    }
    double total_ns = 0.0;
    for (const auto &p : m.self_profile)
        total_ns += p.digest.sum;
    TextTable table({"phase", "scopes", "total ms", "share%",
                     "mean ns", "p50", "p99", "max"});
    for (const auto &p : m.self_profile) {
        const auto &d = p.digest;
        table.row()
            .add(p.name)
            .add(d.count)
            .add(d.sum / 1e6, 2)
            .add(total_ns > 0.0 ? 100.0 * d.sum / total_ns : 0.0, 1)
            .add(d.mean, 0)
            .add(d.p50)
            .add(d.p99)
            .add(d.max);
    }
    table.print();
    std::printf("(phases nest: cache_access includes dram, "
                "page_walk includes its memory refs)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    BuildSpec spec;
    std::string scheme = "csalt-cd";
    std::string format = "table";
    std::uint64_t quota = 1'000'000;
    std::uint64_t warmup = 500'000;
    std::string trace_out;
    std::uint64_t sample_interval = 0;
    bool sample_interval_set = false;
    unsigned trace_cats = obs::kCatAll;
    bool show_cpi_stack = false;
    bool show_histograms = false;
    bool paranoid = false;
    bool live = false;
    std::string live_out;
    bool profile = false;
    std::string inject_name;
    std::uint64_t inject_seed = 1;
    std::string span_trace_out;
    std::uint64_t span_rate = 256;
    std::string checkpoint_out;
    std::uint64_t checkpoint_every = 0;
    unsigned checkpoint_keep = 3;
    std::string restore_path;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--vm") {
            spec.vm_workloads.emplace_back(next_arg(i));
        } else if (arg == "--pair") {
            const PairSpec pair = resolvePair(next_arg(i));
            spec.vm_workloads.push_back(pair.vm1);
            spec.vm_workloads.push_back(pair.vm2);
        } else if (arg == "--scheme") {
            scheme = next_arg(i);
        } else if (arg == "--quota") {
            quota = std::strtoull(next_arg(i), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next_arg(i), nullptr, 10);
        } else if (arg == "--cores") {
            spec.params.num_cores = static_cast<unsigned>(
                std::strtoul(next_arg(i), nullptr, 10));
        } else if (arg == "--cs-interval-ms") {
            spec.params.cs_interval =
                std::strtoull(next_arg(i), nullptr, 10) *
                kCyclesPerPaperMs;
        } else if (arg == "--native") {
            spec.params.virtualized = false;
        } else if (arg == "--five-level") {
            spec.params.page_table_levels = 5;
        } else if (arg == "--scale") {
            spec.workload_scale = std::strtod(next_arg(i), nullptr);
        } else if (arg == "--seed") {
            spec.params.seed =
                std::strtoull(next_arg(i), nullptr, 10);
        } else if (arg == "--format") {
            format = next_arg(i);
        } else if (arg == "--cpi-stack") {
            show_cpi_stack = true;
        } else if (arg == "--histograms") {
            show_histograms = true;
        } else if (arg == "--trace-out") {
            trace_out = next_arg(i);
        } else if (arg == "--sample-interval") {
            sample_interval =
                std::strtoull(next_arg(i), nullptr, 10);
            sample_interval_set = true;
        } else if (arg == "--trace-events") {
            trace_cats = obs::parseEventCats(next_arg(i));
        } else if (arg == "--live") {
            live = true;
        } else if (arg == "--live-out") {
            live_out = next_arg(i);
            live = true;
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg == "--paranoid") {
            paranoid = true;
        } else if (arg == "--inject") {
            inject_name = next_arg(i);
        } else if (arg == "--inject-seed") {
            inject_seed = std::strtoull(next_arg(i), nullptr, 10);
        } else if (arg == "--span-trace") {
            span_trace_out = next_arg(i);
        } else if (arg == "--span-rate") {
            span_rate = std::strtoull(next_arg(i), nullptr, 10);
            if (span_rate == 0)
                span_rate = 1;
        } else if (arg == "--checkpoint-out") {
            checkpoint_out = next_arg(i);
        } else if (arg == "--checkpoint-every") {
            checkpoint_every =
                std::strtoull(next_arg(i), nullptr, 10);
        } else if (arg == "--checkpoint-keep") {
            checkpoint_keep = static_cast<unsigned>(
                std::strtoul(next_arg(i), nullptr, 10));
            if (checkpoint_keep == 0)
                checkpoint_keep = 1;
        } else if (arg == "--restore") {
            restore_path = next_arg(i);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        }
    }
    if (spec.vm_workloads.empty())
        spec.vm_workloads = {"pagerank", "ccomp"};

    std::string label = scheme;
    for (const auto &vm : spec.vm_workloads)
        label += ":" + vm;

    RunMetrics m;
    try {
        applyScheme(spec.params,
                    schemeFromName(scheme).valueOrRaise());
        if (!trace_out.empty() && !sample_interval_set)
            sample_interval = 8192;
        spec.stat_sample_interval = sample_interval;

        if (checkpoint_every && checkpoint_out.empty()) {
            raise(makeError(ErrorKind::usage,
                            "--checkpoint-every requires "
                            "--checkpoint-out",
                            "--checkpoint-every",
                            "pass a snapshot path to write to"));
        }

        auto system = buildSystem(spec);
        if (paranoid || !inject_name.empty())
            system->setParanoid(true);

        const std::uint32_t config_crc = snapshot::configSignature(
            spec.params, spec.vm_workloads, spec.workload_scale);

        // Which run() we are inside (0 = warmup, 1 = measured); the
        // checkpoint hook stamps it into the meta so a restore knows
        // whether warmup still needs finishing.
        std::uint8_t phase = 0;

        if (!restore_path.empty()) {
            const snapshot::SnapshotReader reader =
                snapshot::SnapshotReader::load(restore_path);
            // The config signature guards the machine's structure;
            // the run quotas additionally pin where warmup ends and
            // the measured region stops, so they must match too for
            // the resumed run to equal the uninterrupted one.
            if (reader.meta().warmup != warmup ||
                reader.meta().quota != quota) {
                raise(makeError(
                    ErrorKind::config,
                    msgOf("snapshot was taken with --warmup ",
                          reader.meta().warmup, " --quota ",
                          reader.meta().quota, ", this run asks for ",
                          warmup, " / ", quota),
                    restore_path,
                    "pass the same --warmup/--quota as the "
                    "checkpointed run"));
            }
            snapshot::restoreSystem(*system, reader, config_crc);
            phase = reader.meta().phase;
            std::fprintf(
                stderr,
                "restored %s: %s phase, step %llu, epoch %llu\n",
                restore_path.c_str(),
                phase == 0 ? "warmup" : "measured",
                static_cast<unsigned long long>(system->steps()),
                static_cast<unsigned long long>(
                    system->liveEpoch()));
        }

        if (!checkpoint_out.empty()) {
            std::signal(SIGTERM, onCheckpointSignal);
            std::signal(SIGINT, onCheckpointSignal);
            System *sys = system.get();
            system->setCheckpointHook([&, sys,
                                       last_epoch =
                                           sys->liveEpoch()]() mutable {
                const bool signaled = g_signal != 0;
                const bool periodic =
                    checkpoint_every &&
                    sys->liveEpoch() >= last_epoch + checkpoint_every;
                if (!signaled && !periodic)
                    return;
                snapshot::SnapshotMeta meta;
                meta.config_crc = config_crc;
                meta.scheme = scheme;
                meta.vms = spec.vm_workloads;
                meta.scale = spec.workload_scale;
                meta.seed = spec.params.seed;
                meta.warmup = warmup;
                meta.quota = quota;
                meta.phase = phase;
                meta.steps = sys->steps();
                meta.epoch = sys->liveEpoch();
                for (unsigned c = 0; c < sys->numCores(); ++c)
                    meta.instructions +=
                        sys->core(c).instructions();
                snapshot::writeSnapshotRotating(
                    checkpoint_out,
                    snapshot::serializeSystem(*sys, meta),
                    checkpoint_keep)
                    .okOrRaise();
                last_epoch = sys->liveEpoch();
                if (signaled) {
                    raise(makeError(
                        ErrorKind::cancelled,
                        msgOf("caught ",
                              g_signal == SIGINT ? "SIGINT"
                                                 : "SIGTERM",
                              "; final checkpoint written"),
                        checkpoint_out,
                        "resume with --restore " + checkpoint_out));
                }
            });
        }
        if (profile)
            obs::PhaseProfiler::setEnabled(true);
        obs::PhaseProfiler::enableFromEnv();
        if (live) {
            system->enableLiveExport(live_out);
            std::fprintf(
                stderr, "live region: %s\n",
                live_out.empty()
                    ? obs::LiveExport::defaultPathFor(
                          static_cast<std::uint64_t>(::getpid()))
                          .c_str()
                    : live_out.c_str());
        }
        if (!span_trace_out.empty()) {
            obs::SpanTraceConfig span_cfg;
            span_cfg.rate = span_rate;
            span_cfg.seed = spec.params.seed;
            system->enableSpanTrace(span_cfg);
        }
        if (phase == 0 && warmup) {
            system->run(warmup);
            system->clearAllStats();
        }
        phase = 1;
        // Attach telemetry only now: the stream then covers exactly
        // the measured region, so trace_inspect's reconstructed
        // partition timeline matches the controllers' (also cleared)
        // decision trace.
        if (!trace_out.empty() &&
            !system->openTrace(trace_out, trace_cats)) {
            fatal("cannot open trace file '" + trace_out + "'");
        }
        if (!inject_name.empty()) {
            // Mid-run injection: the target structures only hold
            // corruptible state once the simulation has warmed up.
            const check::Fault fault =
                check::faultFromName(inject_name).valueOrRaise();
            system->run(quota / 2);
            check::injectFault(*system, fault, inject_seed);
            std::fprintf(stderr,
                         "injected fault '%s' at mid-run; the "
                         "invariant checks must now fail\n",
                         check::faultName(fault));
            system->run(quota - quota / 2);
        } else {
            system->run(quota);
        }
        system->closeTrace();
        m = collectMetrics(*system);
        if (!span_trace_out.empty()) {
            system->writeSpanSidecar(span_trace_out, label)
                .okOrRaise();
            const obs::SpanSummary summary =
                system->spanTrace()->summary();
            std::fprintf(stderr,
                         "span sidecar: %s (%llu journeys sampled, "
                         "%llu dropped from rings)\n",
                         span_trace_out.c_str(),
                         static_cast<unsigned long long>(
                             summary.sampled),
                         static_cast<unsigned long long>(
                             summary.dropped));
        }
    } catch (const CsaltError &e) {
        if (g_signal != 0 && e.error().kind == ErrorKind::cancelled) {
            // Interrupted but resumable: the final checkpoint is on
            // disk. 75 (EX_TEMPFAIL) tells wrappers to --restore.
            std::fprintf(stderr, "%s\n",
                         describe(e.error()).c_str());
            return 75;
        }
        fatal(e.error()); // structured diagnostic + exit(1)
    }

    if (format == "csv") {
        std::printf("%s\n%s\n", metricsCsvHeader().c_str(),
                    metricsCsvRow(label, m).c_str());
    } else if (format == "json") {
        std::printf("%s\n", metricsJson(label, m).c_str());
    } else if (format == "table") {
        TextTable table({"metric", "value"});
        table.row().add("scheme").add(scheme);
        table.row().add("IPC (geomean)").add(m.ipc_geomean, 4);
        table.row().add("instructions").add(m.total_instructions);
        table.row().add("L1 TLB MPKI").add(m.l1_tlb_mpki, 2);
        table.row().add("L2 TLB MPKI").add(m.l2_tlb_mpki, 2);
        table.row().add("L2 D$ MPKI").add(m.l2_mpki_total, 2);
        table.row().add("L3 D$ MPKI").add(m.l3_mpki_total, 2);
        table.row().add("page walks").add(m.walks);
        table.row().add("walks eliminated").add(m.walks_eliminated, 3);
        table.row().add("avg walk cycles").add(m.avg_walk_cycles, 0);
        table.row()
            .add("L2 translation occupancy")
            .add(m.l2_translation_occupancy, 2);
        table.row()
            .add("L3 translation occupancy")
            .add(m.l3_translation_occupancy, 2);
        table.row().add("POM-TLB hit rate").add(m.pom_hit_rate, 3);
        table.print();
    } else {
        fatal("unknown format '" + format + "'");
    }

    if (show_cpi_stack)
        printCpiStack(m);
    if (show_histograms)
        printHistograms(m);
    if (profile && format != "json")
        printSelfProfile(m);
    return 0;
}
