/**
 * @file
 * bench_report: the perf-trajectory regression gate.
 *
 * Compares a fresh bench results file (the ResultsJson schema that
 * perf_throughput and the fig benches write) against the committed
 * baseline and prints per-config deltas:
 *
 *   bench_report fresh.json                      # vs BENCH_results.json
 *   bench_report --baseline old.json fresh.json
 *   bench_report --threshold 25% fresh.json      # gate at -25%
 *
 * The metric is treated as higher-is-better (MAPS, IPC, hit rates —
 * everything the benches emit); pass --lower-is-better for latency
 * metrics. Wall-time value keys ("seconds", "wall_*", "time") are
 * always gated lower-is-better regardless: a faster run must never
 * read as a regression because its elapsed time dropped alongside a
 * rising rate metric. Exit status: 0 when every shared config is within the
 * threshold, 1 when any config regressed past it (the gate), and the
 * usual fatal() path (exit 1, typed diagnostics) for unreadable or
 * malformed inputs. Configs present on only one side are reported but
 * never gate — a new scheme must not fail the check that would let it
 * land.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/table.h"
#include "obs/json.h"

using namespace csalt;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--baseline FILE] [--threshold PCT[%%]] "
                 "[--lower-is-better] FRESH.json\n"
                 "  compares FRESH.json (ResultsJson schema) against "
                 "the committed baseline\n"
                 "  (default BENCH_results.json) and exits 1 when any "
                 "shared config regressed\n"
                 "  more than PCT%% (default 10)\n",
                 argv0);
    std::exit(2);
}

/** One flattened (row label, scheme) cell. */
struct Cell
{
    std::string config; //!< "<label>/<scheme>" or "geomean/<scheme>"
    double value = 0.0;
};

struct Results
{
    std::string figure;
    std::string metric;
    double schema_version = 0.0;
    std::vector<Cell> cells;
};

Results
loadResults(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        fatal(makeError(ErrorKind::io, "cannot open results file",
                        path,
                        "run the bench first, or pass --baseline"));
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::string err;
    const auto doc = obs::parseJson(text, &err);
    if (!doc || !doc->isObject()) {
        fatal(makeError(ErrorKind::parse,
                        "not a bench results object: " + err, path,
                        "expected the ResultsJson schema written by "
                        "the bench binaries"));
    }
    Results r;
    r.figure = doc->stringOr("figure", "");
    r.metric = doc->stringOr("metric", "");
    r.schema_version = doc->numberOr("schema_version", 1.0);

    const obs::JsonValue *rows = doc->find("rows");
    if (!rows || !rows->isArray()) {
        fatal(makeError(ErrorKind::parse,
                        "results object has no rows array", path,
                        "file truncated or from an incompatible "
                        "bench build"));
    }
    for (const auto &row : rows->arr) {
        const std::string label = row.stringOr("label", "?");
        const obs::JsonValue *values = row.find("values");
        if (!values || !values->isObject())
            continue;
        for (const auto &[scheme, v] : values->obj)
            if (v.isNumber())
                r.cells.push_back({label + "/" + scheme, v.num_v});
    }
    if (const obs::JsonValue *gm = doc->find("geomean");
        gm && gm->isObject()) {
        for (const auto &[scheme, v] : gm->obj)
            if (v.isNumber())
                r.cells.push_back({"geomean/" + scheme, v.num_v});
    }
    if (r.cells.empty()) {
        fatal(makeError(ErrorKind::parse,
                        "results object has no numeric cells", path,
                        "file truncated or from an incompatible "
                        "bench build"));
    }
    return r;
}

const Cell *
findCell(const Results &r, const std::string &config)
{
    for (const Cell &c : r.cells)
        if (c.config == config)
            return &c;
    return nullptr;
}

/**
 * Wall-time cells ("<label>/seconds", ".../wall_clock_s") measure
 * elapsed time, so less is ALWAYS better — even in a
 * higher-is-better figure, where they move inversely to the rate
 * metric being gated.
 */
bool
cellIsWallTime(const std::string &config)
{
    const std::size_t slash = config.rfind('/');
    const std::string key =
        slash == std::string::npos ? config : config.substr(slash + 1);
    return key == "seconds" || key == "time" ||
           key.rfind("wall", 0) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path = "BENCH_results.json";
    std::string fresh_path;
    double threshold_pct = 10.0;
    bool lower_is_better = false;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--baseline")
            baseline_path = next_arg(i);
        else if (arg == "--threshold") {
            std::string pct = next_arg(i);
            if (!pct.empty() && pct.back() == '%')
                pct.pop_back();
            char *end = nullptr;
            threshold_pct = std::strtod(pct.c_str(), &end);
            if (!end || *end || threshold_pct < 0.0) {
                fatal(makeError(ErrorKind::usage,
                                "bad --threshold value", pct,
                                "pass a percentage like 10 or 25%"));
            }
        } else if (arg == "--lower-is-better")
            lower_is_better = true;
        else if (arg == "--help" || arg == "-h")
            usage(argv[0]);
        else if (!arg.empty() && arg[0] == '-')
            usage(argv[0]);
        else if (fresh_path.empty())
            fresh_path = arg;
        else
            usage(argv[0]);
    }
    if (fresh_path.empty())
        usage(argv[0]);

    const Results base = loadResults(baseline_path);
    const Results fresh = loadResults(fresh_path);

    if (base.figure != fresh.figure || base.metric != fresh.metric) {
        fatal(makeError(
            ErrorKind::usage,
            "baseline is " + base.figure + "/" + base.metric +
                " but fresh run is " + fresh.figure + "/" +
                fresh.metric,
            fresh_path,
            "compare results files from the same bench binary"));
    }

    std::printf("== bench_report: %s (%s, %s-is-better, "
                "threshold %.3g%%) ==\n",
                base.figure.c_str(), base.metric.c_str(),
                lower_is_better ? "lower" : "higher", threshold_pct);
    std::printf("baseline %s (schema v%g)  vs  fresh %s (schema "
                "v%g)\n\n",
                baseline_path.c_str(), base.schema_version,
                fresh_path.c_str(), fresh.schema_version);

    TextTable table(
        {"config", "baseline", "fresh", "delta%", "status"});
    std::vector<std::string> regressed;
    std::size_t compared = 0, only_base = 0, only_fresh = 0;

    for (const Cell &b : base.cells) {
        const Cell *f = findCell(fresh, b.config);
        if (!f) {
            table.row()
                .add(b.config)
                .add(b.value, 3)
                .add("-")
                .add("-")
                .add("baseline-only");
            ++only_base;
            continue;
        }
        ++compared;
        const double delta_pct =
            b.value != 0.0
                ? 100.0 * (f->value - b.value) / std::fabs(b.value)
                : (f->value == 0.0 ? 0.0 : 100.0);
        const bool cell_lower =
            cellIsWallTime(b.config) || lower_is_better;
        const double harm = cell_lower ? delta_pct : -delta_pct;
        const bool bad = harm > threshold_pct;
        if (bad)
            regressed.push_back(b.config);
        table.row()
            .add(b.config)
            .add(b.value, 3)
            .add(f->value, 3)
            .add(delta_pct, 2)
            .add(bad ? "REGRESSED"
                     : (harm < -threshold_pct ? "improved" : "ok"));
    }
    for (const Cell &f : fresh.cells) {
        if (findCell(base, f.config))
            continue;
        table.row()
            .add(f.config)
            .add("-")
            .add(f.value, 3)
            .add("-")
            .add("new");
        ++only_fresh;
    }
    table.print();

    std::printf("\n%zu configs compared, %zu baseline-only, %zu "
                "new\n",
                compared, only_base, only_fresh);
    if (compared == 0) {
        fatal(makeError(ErrorKind::config,
                        "baseline and fresh run share no configs",
                        fresh_path,
                        "regenerate the baseline from this bench"));
    }
    if (!regressed.empty()) {
        std::printf("REGRESSION: %zu config(s) worse than the "
                    "baseline by more than %.3g%%:\n",
                    regressed.size(), threshold_pct);
        for (const std::string &config : regressed)
            std::printf("  %s\n", config.c_str());
        return 1;
    }
    std::printf("within threshold: no perf regression detected\n");
    return 0;
}
