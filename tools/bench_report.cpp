/**
 * @file
 * bench_report: the perf-trajectory regression gate.
 *
 * Compares a fresh bench results file (the ResultsJson schema that
 * perf_throughput and the fig benches write) against the committed
 * baseline and prints per-config deltas:
 *
 *   bench_report fresh.json                      # vs BENCH_results.json
 *   bench_report --baseline old.json fresh.json
 *   bench_report --threshold 25% fresh.json      # gate at -25%
 *
 * The metric is treated as higher-is-better (MAPS, IPC, hit rates —
 * everything the benches emit); pass --lower-is-better for latency
 * metrics. Wall-time value keys ("seconds", "wall_*", "time") are
 * always gated lower-is-better regardless: a faster run must never
 * read as a regression because its elapsed time dropped alongside a
 * rising rate metric. Because such cells move as the reciprocal of
 * the rate being gated, they use the reciprocal-equivalent threshold
 * (t -> 100t/(100-t)): one slowdown trips the rate cell and its
 * wall-time mirror together or neither. Exit status: 0 when every shared config is within the
 * threshold, 1 when any config regressed past it (the gate), and the
 * usual fatal() path (exit 1, typed diagnostics) for unreadable or
 * malformed inputs.
 *
 * The files' own "geomean" objects are never compared against each
 * other: each side computes its geomean over ITS row set, so when the
 * config sets drift (a scheme added or retired) the naive delta mixes
 * incomparable aggregates. Instead the report recomputes both
 * geomeans over the config intersection and gates on that.
 *
 * Configs only in the fresh file are reported as "new" and never gate
 * — a new scheme must not fail the check that would let it land. A
 * config that VANISHED from the fresh run is a hard failure (a silent
 * coverage hole looks exactly like a clean pass); retire one
 * deliberately with --allow-retired CFG.
 *
 * Comparing runs of different lengths is refused outright (typed
 * usage error): volume cells scale with the quota and rate cells are
 * depressed by cold-start effects on short slices, so every delta
 * would be an artifact of the mismatch.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/table.h"
#include "obs/json.h"

using namespace csalt;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--baseline FILE] [--threshold PCT[%%]] "
                 "[--lower-is-better] [--allow-retired CFG]... "
                 "FRESH.json\n"
                 "  compares FRESH.json (ResultsJson schema) against "
                 "the committed baseline\n"
                 "  (default BENCH_results.json) and exits 1 when any "
                 "shared config regressed\n"
                 "  more than PCT%% (default 10); geomeans are "
                 "recomputed over the config\n"
                 "  intersection. A baseline config missing from "
                 "FRESH fails hard unless\n"
                 "  named by --allow-retired\n",
                 argv0);
    std::exit(2);
}

/** One flattened (row label, scheme) cell. */
struct Cell
{
    std::string config; //!< "<label>/<scheme>" or "geomean/<scheme>"
    double value = 0.0;
};

struct Results
{
    std::string figure;
    std::string metric;
    double schema_version = 0.0;
    double quota = -1.0;  //!< measured instructions per core
    double warmup = -1.0; //!< warmup instructions per core
    std::vector<Cell> cells; //!< row cells only, no geomeans
    /** The file's own geomean keys ("CSALT-D", "MAPS", ...). The
     *  values are deliberately dropped: each file aggregates over its
     *  own row set, so they are only comparable after recomputation
     *  over the config intersection. */
    std::vector<std::string> geomean_keys;
};

Results
loadResults(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        fatal(makeError(ErrorKind::io, "cannot open results file",
                        path,
                        "run the bench first, or pass --baseline"));
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::string err;
    const auto doc = obs::parseJson(text, &err);
    if (!doc || !doc->isObject()) {
        fatal(makeError(ErrorKind::parse,
                        "not a bench results object: " + err, path,
                        "expected the ResultsJson schema written by "
                        "the bench binaries"));
    }
    Results r;
    r.figure = doc->stringOr("figure", "");
    r.metric = doc->stringOr("metric", "");
    r.schema_version = doc->numberOr("schema_version", 1.0);
    r.quota = doc->numberOr("quota", -1.0);
    r.warmup = doc->numberOr("warmup", -1.0);

    const obs::JsonValue *rows = doc->find("rows");
    if (!rows || !rows->isArray()) {
        fatal(makeError(ErrorKind::parse,
                        "results object has no rows array", path,
                        "file truncated or from an incompatible "
                        "bench build"));
    }
    for (const auto &row : rows->arr) {
        const std::string label = row.stringOr("label", "?");
        const obs::JsonValue *values = row.find("values");
        if (!values || !values->isObject())
            continue;
        for (const auto &[scheme, v] : values->obj)
            if (v.isNumber())
                r.cells.push_back({label + "/" + scheme, v.num_v});
    }
    if (const obs::JsonValue *gm = doc->find("geomean");
        gm && gm->isObject()) {
        for (const auto &[scheme, v] : gm->obj)
            if (v.isNumber())
                r.geomean_keys.push_back(scheme);
    }
    if (r.cells.empty()) {
        fatal(makeError(ErrorKind::parse,
                        "results object has no numeric cells", path,
                        "file truncated or from an incompatible "
                        "bench build"));
    }
    return r;
}

const Cell *
findCell(const Results &r, const std::string &config)
{
    for (const Cell &c : r.cells)
        if (c.config == config)
            return &c;
    return nullptr;
}

/**
 * Wall-time cells ("<label>/seconds", ".../wall_clock_s") measure
 * elapsed time, so less is ALWAYS better — even in a
 * higher-is-better figure, where they move inversely to the rate
 * metric being gated.
 */
bool
cellIsWallTime(const std::string &config)
{
    const std::size_t slash = config.rfind('/');
    const std::string key =
        slash == std::string::npos ? config : config.substr(slash + 1);
    return key == "seconds" || key == "time" ||
           key.rfind("wall", 0) == 0;
}

/** The value key of a "<label>/<key>" config. */
std::string
cellKey(const std::string &config)
{
    const std::size_t slash = config.rfind('/');
    return slash == std::string::npos ? config
                                      : config.substr(slash + 1);
}

/**
 * Geomean of one side's @p key cells over the config intersection —
 * the only aggregation in which baseline and fresh are comparable.
 * Returns 0 with *n == 0 when no positive shared cell exists.
 */
double
intersectionGeomean(const Results &self, const Results &other,
                    const std::string &key, std::size_t *n)
{
    double log_sum = 0.0;
    *n = 0;
    for (const Cell &c : self.cells) {
        if (cellKey(c.config) != key || c.value <= 0.0)
            continue;
        const Cell *o = findCell(other, c.config);
        if (!o || o->value <= 0.0)
            continue;
        log_sum += std::log(c.value);
        ++*n;
    }
    return *n ? std::exp(log_sum / static_cast<double>(*n)) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path = "BENCH_results.json";
    std::string fresh_path;
    double threshold_pct = 10.0;
    bool lower_is_better = false;
    std::vector<std::string> allow_retired;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--baseline")
            baseline_path = next_arg(i);
        else if (arg == "--threshold") {
            std::string pct = next_arg(i);
            if (!pct.empty() && pct.back() == '%')
                pct.pop_back();
            char *end = nullptr;
            threshold_pct = std::strtod(pct.c_str(), &end);
            if (!end || *end || threshold_pct < 0.0) {
                fatal(makeError(ErrorKind::usage,
                                "bad --threshold value", pct,
                                "pass a percentage like 10 or 25%"));
            }
        } else if (arg == "--lower-is-better")
            lower_is_better = true;
        else if (arg == "--allow-retired")
            allow_retired.emplace_back(next_arg(i));
        else if (arg == "--help" || arg == "-h")
            usage(argv[0]);
        else if (!arg.empty() && arg[0] == '-')
            usage(argv[0]);
        else if (fresh_path.empty())
            fresh_path = arg;
        else
            usage(argv[0]);
    }
    if (fresh_path.empty())
        usage(argv[0]);

    const Results base = loadResults(baseline_path);
    const Results fresh = loadResults(fresh_path);

    if (base.figure != fresh.figure || base.metric != fresh.metric) {
        fatal(makeError(
            ErrorKind::usage,
            "baseline is " + base.figure + "/" + base.metric +
                " but fresh run is " + fresh.figure + "/" +
                fresh.metric,
            fresh_path,
            "compare results files from the same bench binary"));
    }
    // Different run lengths make every delta meaningless: volume
    // cells (accesses) scale with the quota by construction, and rate
    // cells (MAPS) are depressed by cold-start effects on short
    // slices — a quota mismatch once made this gate read "-88%
    // REGRESSED" against a healthy build.
    if (base.quota != fresh.quota || base.warmup != fresh.warmup) {
        fatal(makeError(
            ErrorKind::usage,
            "baseline ran quota=" + std::to_string(base.quota) +
                " warmup=" + std::to_string(base.warmup) +
                " but fresh ran quota=" + std::to_string(fresh.quota) +
                " warmup=" + std::to_string(fresh.warmup),
            fresh_path,
            "re-run the bench at the baseline's run lengths, or "
            "regenerate the baseline"));
    }

    std::printf("== bench_report: %s (%s, %s-is-better, "
                "threshold %.3g%%) ==\n",
                base.figure.c_str(), base.metric.c_str(),
                lower_is_better ? "lower" : "higher", threshold_pct);
    std::printf("baseline %s (schema v%g)  vs  fresh %s (schema "
                "v%g)\n\n",
                baseline_path.c_str(), base.schema_version,
                fresh_path.c_str(), fresh.schema_version);

    TextTable table(
        {"config", "baseline", "fresh", "delta%", "status"});
    std::vector<std::string> regressed;
    std::vector<std::string> retired;
    std::size_t compared = 0, only_base = 0, only_fresh = 0;

    for (const Cell &b : base.cells) {
        const Cell *f = findCell(fresh, b.config);
        if (!f) {
            // A config that vanished is a coverage hole, not a pass:
            // it gates unless the retirement was named explicitly.
            const bool allowed =
                std::find(allow_retired.begin(), allow_retired.end(),
                          b.config) != allow_retired.end();
            if (!allowed)
                retired.push_back(b.config);
            table.row()
                .add(b.config)
                .add(b.value, 3)
                .add("-")
                .add("-")
                .add(allowed ? "retired" : "VANISHED");
            ++only_base;
            continue;
        }
        ++compared;
        const double delta_pct =
            b.value != 0.0
                ? 100.0 * (f->value - b.value) / std::fabs(b.value)
                : (f->value == 0.0 ? 0.0 : 100.0);
        const bool cell_lower =
            cellIsWallTime(b.config) || lower_is_better;
        // Wall-time cells in a higher-is-better figure move as the
        // RECIPROCAL of the rate metric, and a percentage threshold
        // is not symmetric under inversion: -33% rate == +50% time.
        // Gate them at the reciprocal-equivalent threshold so the
        // same slowdown trips both cells together or neither.
        const bool inverted = cell_lower != lower_is_better;
        const double cell_threshold =
            inverted ? (threshold_pct < 100.0
                            ? 100.0 * threshold_pct /
                                  (100.0 - threshold_pct)
                            : std::numeric_limits<double>::infinity())
                     : threshold_pct;
        const double harm = cell_lower ? delta_pct : -delta_pct;
        const bool bad = harm > cell_threshold;
        if (bad)
            regressed.push_back(b.config);
        table.row()
            .add(b.config)
            .add(b.value, 3)
            .add(f->value, 3)
            .add(delta_pct, 2)
            .add(bad ? "REGRESSED"
                     : (harm < -cell_threshold ? "improved" : "ok"));
    }
    for (const Cell &f : fresh.cells) {
        if (findCell(base, f.config))
            continue;
        table.row()
            .add(f.config)
            .add("-")
            .add(f.value, 3)
            .add("-")
            .add("new");
        ++only_fresh;
    }

    // Geomean rows, recomputed over the config intersection so both
    // sides aggregate the SAME set — the files' own geomean objects
    // cover whatever rows each run happened to have.
    for (const std::string &key : base.geomean_keys) {
        if (std::find(fresh.geomean_keys.begin(),
                      fresh.geomean_keys.end(),
                      key) == fresh.geomean_keys.end())
            continue;
        std::size_t bn = 0, fn = 0;
        const double bg = intersectionGeomean(base, fresh, key, &bn);
        const double fg = intersectionGeomean(fresh, base, key, &fn);
        if (bn == 0 || fn == 0)
            continue;
        const std::string config =
            "geomean/" + key + " (" + std::to_string(bn) + " cfgs)";
        const double delta_pct =
            100.0 * (fg - bg) / std::fabs(bg);
        const bool cell_lower =
            cellIsWallTime("geomean/" + key) || lower_is_better;
        // Same reciprocal-equivalent threshold as the per-config
        // cells for direction-flipped (wall-time) keys.
        const bool inverted = cell_lower != lower_is_better;
        const double cell_threshold =
            inverted ? (threshold_pct < 100.0
                            ? 100.0 * threshold_pct /
                                  (100.0 - threshold_pct)
                            : std::numeric_limits<double>::infinity())
                     : threshold_pct;
        const double harm = cell_lower ? delta_pct : -delta_pct;
        const bool bad = harm > cell_threshold;
        if (bad)
            regressed.push_back(config);
        table.row()
            .add(config)
            .add(bg, 3)
            .add(fg, 3)
            .add(delta_pct, 2)
            .add(bad ? "REGRESSED"
                     : (harm < -cell_threshold ? "improved" : "ok"));
    }
    table.print();

    std::printf("\n%zu configs compared, %zu baseline-only, %zu "
                "new\n",
                compared, only_base, only_fresh);
    if (compared == 0) {
        fatal(makeError(ErrorKind::config,
                        "baseline and fresh run share no configs",
                        fresh_path,
                        "regenerate the baseline from this bench"));
    }
    if (!retired.empty()) {
        std::printf("VANISHED: %zu baseline config(s) missing from "
                    "the fresh run:\n",
                    retired.size());
        for (const std::string &config : retired)
            std::printf("  %s\n", config.c_str());
        std::printf("retire deliberately with --allow-retired CFG, "
                    "or fix the fresh run's coverage\n");
        return 1;
    }
    if (!regressed.empty()) {
        std::printf("REGRESSION: %zu config(s) worse than the "
                    "baseline by more than %.3g%%:\n",
                    regressed.size(), threshold_pct);
        for (const std::string &config : regressed)
            std::printf("  %s\n", config.c_str());
        return 1;
    }
    std::printf("within threshold: no perf regression detected\n");
    return 0;
}
