#!/usr/bin/env bash
# Bench-harness smoke test: run a reduced-size Figure 7 sweep both
# sequentially and through the parallel job runner (--jobs 4), check
# the two runs are deterministic (identical stdout tables and
# identical BENCH_results.json apart from wall_clock_s), and validate
# the machine-readable JSON schema.
#
#   scripts/bench_smoke.sh              # uses ./build (configures if absent)
#   BUILD_DIR=/tmp/b scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j "$JOBS" --target fig07_performance

json_seq="$(mktemp /tmp/csalt-bench-seq-XXXXXX.json)"
json_par="$(mktemp /tmp/csalt-bench-par-XXXXXX.json)"
out_seq="$(mktemp /tmp/csalt-bench-seq-XXXXXX.out)"
out_par="$(mktemp /tmp/csalt-bench-par-XXXXXX.out)"
trap 'rm -f "$json_seq" "$json_par" "$out_seq" "$out_par"' EXIT

echo "== reduced fig07, --jobs 1 =="
CSALT_QUOTA=60000 CSALT_WARMUP=20000 CSALT_BENCH_JSON="$json_seq" \
    "$BUILD_DIR/bench/fig07_performance" --jobs 1 | tee "$out_seq"

echo "== reduced fig07, --jobs 4 =="
CSALT_QUOTA=60000 CSALT_WARMUP=20000 CSALT_BENCH_JSON="$json_par" \
    "$BUILD_DIR/bench/fig07_performance" --jobs 4 | tee "$out_par"

echo "== determinism: stdout tables must be byte-identical =="
diff "$out_seq" "$out_par" \
    || { echo "FAIL: --jobs 1 and --jobs 4 stdout differ"; exit 1; }

echo "== determinism: JSON identical apart from wall_clock_s =="
python3 - "$json_seq" "$json_par" <<'EOF'
import json
import sys

docs = []
for path in sys.argv[1:3]:
    with open(path) as f:
        doc = json.load(f)
    doc.pop("wall_clock_s")
    docs.append(doc)
assert docs[0] == docs[1], "metrics diverge between --jobs 1 and 4"
print("ok: per-config metrics byte-identical across job counts")
EOF

echo "== validate $json_par =="
python3 - "$json_par" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for key in ("figure", "metric", "quota", "warmup", "rows", "geomean",
            "wall_clock_s"):
    assert key in doc, f"missing key: {key}"

assert doc["figure"] == "fig07", doc["figure"]
assert isinstance(doc["quota"], int) and doc["quota"] > 0
assert isinstance(doc["warmup"], int) and doc["warmup"] >= 0
assert isinstance(doc["wall_clock_s"], (int, float))
assert doc["wall_clock_s"] > 0, "wall clock must be positive"

rows = doc["rows"]
assert isinstance(rows, list) and rows, "rows must be non-empty"
for row in rows:
    assert isinstance(row["label"], str) and row["label"]
    values = row["values"]
    assert isinstance(values, dict) and values, "empty row values"
    for scheme, v in values.items():
        assert isinstance(v, (int, float)), f"{scheme}: {v!r}"

geomean = doc["geomean"]
assert isinstance(geomean, dict) and geomean, "empty geomean"
assert set(geomean) == set(rows[0]["values"]), "scheme set mismatch"
for scheme, v in geomean.items():
    assert isinstance(v, (int, float)) and v > 0, f"{scheme}: {v!r}"

print(f"ok: {len(rows)} rows, schemes: {sorted(geomean)}, "
      f"wall_clock_s={doc['wall_clock_s']:.2f}")
EOF

echo "== OK =="
