#!/usr/bin/env bash
# Bench-harness smoke test: run a reduced-size Figure 7 sweep and
# validate the machine-readable BENCH_results.json it emits.
#
#   scripts/bench_smoke.sh              # uses ./build (configures if absent)
#   BUILD_DIR=/tmp/b scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j "$JOBS" --target fig07_performance

json="$(mktemp /tmp/csalt-bench-XXXXXX.json)"
trap 'rm -f "$json"' EXIT

echo "== reduced fig07 run =="
CSALT_QUOTA=60000 CSALT_WARMUP=20000 CSALT_BENCH_JSON="$json" \
    "$BUILD_DIR/bench/fig07_performance"

echo "== validate $json =="
python3 - "$json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for key in ("figure", "metric", "quota", "warmup", "rows", "geomean",
            "wall_clock_s"):
    assert key in doc, f"missing key: {key}"

assert doc["figure"] == "fig07", doc["figure"]
assert isinstance(doc["quota"], int) and doc["quota"] > 0
assert isinstance(doc["warmup"], int) and doc["warmup"] >= 0
assert isinstance(doc["wall_clock_s"], (int, float))
assert doc["wall_clock_s"] > 0, "wall clock must be positive"

rows = doc["rows"]
assert isinstance(rows, list) and rows, "rows must be non-empty"
for row in rows:
    assert isinstance(row["label"], str) and row["label"]
    values = row["values"]
    assert isinstance(values, dict) and values, "empty row values"
    for scheme, v in values.items():
        assert isinstance(v, (int, float)), f"{scheme}: {v!r}"

geomean = doc["geomean"]
assert isinstance(geomean, dict) and geomean, "empty geomean"
assert set(geomean) == set(rows[0]["values"]), "scheme set mismatch"
for scheme, v in geomean.items():
    assert isinstance(v, (int, float)) and v > 0, f"{scheme}: {v!r}"

print(f"ok: {len(rows)} rows, schemes: {sorted(geomean)}, "
      f"wall_clock_s={doc['wall_clock_s']:.2f}")
EOF

echo "== OK =="
