#!/usr/bin/env python3
"""Paste a recorded bench_output.txt into EXPERIMENTS.md.

Replaces the <!-- RESULTS --> marker with the full bench output
wrapped in a fenced block. Run after:
    for b in build/bench/*; do $b; done 2>&1 | tee bench_output.txt
"""
import re
import sys

bench_path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
exp_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"

with open(bench_path) as f:
    bench = f.read()
bench = bench.replace("FINAL_DONE", "").rstrip() + "\n"

block = "## Recorded run\n\n```text\n" + bench + "```\n"

with open(exp_path) as f:
    doc = f.read()
doc = re.sub(r"<!-- RESULTS -->", block, doc, count=1)
with open(exp_path, "w") as f:
    f.write(doc)
print(f"inserted {len(bench.splitlines())} lines into {exp_path}")
