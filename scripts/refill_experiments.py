#!/usr/bin/env python3
"""Replace the '## Recorded run' block of EXPERIMENTS.md with a new
bench output (used when re-recording the evaluation)."""
import re
import sys

bench_path = sys.argv[1]
exp_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"

with open(bench_path) as f:
    bench = f.read().replace("FINAL_DONE", "").rstrip() + "\n"
block = "## Recorded run\n\n```text\n" + bench + "```\n"

with open(exp_path) as f:
    doc = f.read()
doc = re.sub(r"## Recorded run\n\n```text\n.*?```\n", block, doc,
             count=1, flags=re.S)
with open(exp_path, "w") as f:
    f.write(doc)
print("replaced recorded run block")
