#!/usr/bin/env bash
# Full pre-merge gate: pristine configure with warnings-as-errors,
# the whole test suite, the obs suite under ASan+UBSan, the harness
# (thread-pool job runner) suite under ThreadSanitizer, and an
# end-to-end telemetry smoke test (csalt-sim --trace-out piped
# through trace_inspect).
#
#   scripts/check.sh             # build into ./build-check
#   BUILD_DIR=/tmp/b scripts/check.sh
#   KEEP_BUILD=1 scripts/check.sh   # skip the rm -rf (incremental)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ "${KEEP_BUILD:-0}" != 1 ]]; then
    rm -rf "$BUILD_DIR"
fi

echo "== configure ($BUILD_DIR, -Wall -Wextra -Werror) =="
cmake -B "$BUILD_DIR" -S . -DCSALT_WERROR=ON

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== obs suite under ASan+UBSan =="
ASAN_DIR="${BUILD_DIR}-asan"
if [[ "${KEEP_BUILD:-0}" != 1 ]]; then
    rm -rf "$ASAN_DIR"
fi
cmake -B "$ASAN_DIR" -S . -DCSALT_SANITIZE=ON
cmake --build "$ASAN_DIR" -j "$JOBS" --target \
    test_histogram test_cpi_stack test_stat_registry test_trace_events
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS" -L obs

echo "== harness suite under TSan =="
TSAN_DIR="${BUILD_DIR}-tsan"
if [[ "${KEEP_BUILD:-0}" != 1 ]]; then
    rm -rf "$TSAN_DIR"
fi
cmake -B "$TSAN_DIR" -S . -DCSALT_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" --target test_job_runner
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" -L harness

echo "== telemetry smoke test =="
trace="$(mktemp /tmp/csalt-check-XXXXXX.jsonl)"
chrome="${trace%.jsonl}.chrome.json"
trap 'rm -f "$trace" "$chrome"' EXIT
"$BUILD_DIR/tools/csalt-sim" --vm gups --quota 100000 \
    --warmup 20000 --trace-out "$trace" --format csv > /dev/null
test -s "$trace" || { echo "empty trace"; exit 1; }
"$BUILD_DIR/tools/trace_inspect" --chrome "$chrome" "$trace" \
    > /dev/null
test -s "$chrome" || { echo "empty chrome conversion"; exit 1; }

echo "== OK =="
