#!/usr/bin/env bash
# Full pre-merge gate: pristine configure with warnings-as-errors,
# the whole test suite (twice: plain, then under CSALT_PARANOID=1 so
# every simulation self-checks its invariants), the obs and snapshot
# suites under ASan+UBSan, the harness (thread-pool job runner) suite
# under ThreadSanitizer, a fault-injection smoke (a corrupted
# simulator must fail loudly), a SIGKILL+resume smoke (an interrupted
# sweep resumed with --resume must match the uninterrupted run), a
# SIGKILL+restore smoke (csalt-sim killed -9 mid-run and resumed from
# its periodic checkpoint must reproduce the uninterrupted metrics
# JSON byte for byte, for two translation schemes), a
# scheme shoot-out smoke (`sweep --schemes all` must fill every cell
# for every registered translation scheme), and an end-to-end
# telemetry smoke test (csalt-sim --trace-out piped through
# trace_inspect).
#
#   scripts/check.sh             # build into ./build-check
#   BUILD_DIR=/tmp/b scripts/check.sh
#   KEEP_BUILD=1 scripts/check.sh   # skip the rm -rf (incremental)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ "${KEEP_BUILD:-0}" != 1 ]]; then
    rm -rf "$BUILD_DIR"
fi

echo "== configure ($BUILD_DIR, -Wall -Wextra -Werror) =="
cmake -B "$BUILD_DIR" -S . -DCSALT_WERROR=ON

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== tests again, paranoid (every run self-checks invariants) =="
CSALT_PARANOID=1 ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -j "$JOBS"

echo "== obs + snapshot suites under ASan+UBSan =="
ASAN_DIR="${BUILD_DIR}-asan"
if [[ "${KEEP_BUILD:-0}" != 1 ]]; then
    rm -rf "$ASAN_DIR"
fi
cmake -B "$ASAN_DIR" -S . -DCSALT_SANITIZE=ON
cmake --build "$ASAN_DIR" -j "$JOBS" --target \
    test_histogram test_cpi_stack test_stat_registry \
    test_trace_events test_snapshot
# -L is a REGEX: anchored, or `obs` would also select obs_live,
# obs_span and the tools suite — none of which are built here.
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS" -L '^obs$'
# The serializers walk every byte of every component's state — the
# exact place a stale pointer or over-read would hide.
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS" \
    -L '^snapshot$'

echo "== harness suite + live writer/reader pair under TSan =="
TSAN_DIR="${BUILD_DIR}-tsan"
if [[ "${KEEP_BUILD:-0}" != 1 ]]; then
    rm -rf "$TSAN_DIR"
fi
cmake -B "$TSAN_DIR" -S . -DCSALT_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" --target test_job_runner \
    test_live_export
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
    -L '^harness'
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
    -L '^obs_live$'

echo "== fault-injection smoke: a corrupted run must fail loudly =="
inject_log="$(mktemp /tmp/csalt-inject-XXXXXX.log)"
if "$BUILD_DIR/tools/csalt-sim" --pair ccomp --scheme csalt-cd \
    --quota 60000 --warmup 0 --inject partition-state \
    > /dev/null 2> "$inject_log"; then
    echo "FAIL: injected run exited 0"; cat "$inject_log"; exit 1
fi
grep -q 'error\[invariant\]' "$inject_log" \
    || { echo "FAIL: no invariant diagnostic"; cat "$inject_log"; \
         exit 1; }
grep -q 'partition.way-sum' "$inject_log" \
    || { echo "FAIL: wrong checker fired"; cat "$inject_log"; \
         exit 1; }
rm -f "$inject_log"

echo "== SIGKILL + resume smoke: sweep must resume byte-identical =="
sweep_dir="$(mktemp -d /tmp/csalt-resume-XXXXXX)"
export CSALT_QUOTA=60000 CSALT_WARMUP=20000
"$BUILD_DIR/tools/sweep" ccomp --jobs 2 \
    --json "$sweep_dir/ref.json" > "$sweep_dir/ref.out"
"$BUILD_DIR/tools/sweep" ccomp --jobs 2 \
    --json "$sweep_dir/res.json" > "$sweep_dir/killed.out" &
sweep_pid=$!
sleep 2
kill -KILL "$sweep_pid" 2>/dev/null || true
wait "$sweep_pid" 2>/dev/null || true
"$BUILD_DIR/tools/sweep" ccomp --jobs 2 --resume \
    --json "$sweep_dir/res.json" > "$sweep_dir/res.out"
unset CSALT_QUOTA CSALT_WARMUP
diff "$sweep_dir/ref.out" "$sweep_dir/res.out" \
    || { echo "FAIL: resumed sweep stdout differs"; exit 1; }
python3 - "$sweep_dir/ref.json" "$sweep_dir/res.json" <<'EOF'
import json, sys

def strip_wall(doc):
    for job in doc["jobs"]:
        job.pop("wall_s", None)
    return doc

a, b = (strip_wall(json.load(open(p))) for p in sys.argv[1:3])
assert a == b, "resumed results differ from the uninterrupted run"
print("ok: resumed sweep identical (minus wall clock)")
EOF
rm -rf "$sweep_dir"

echo "== SIGKILL + restore smoke: checkpointed sim must resume =="
ckpt_dir="$(mktemp -d /tmp/csalt-ckpt-XXXXXX)"
for scheme in csalt-d victima; do
    args=(--pair ccomp --scheme "$scheme" --quota 3000000
          --warmup 20000 --seed 7 --format json)
    "$BUILD_DIR/tools/csalt-sim" "${args[@]}" \
        > "$ckpt_dir/$scheme.ref.json"
    "$BUILD_DIR/tools/csalt-sim" "${args[@]}" \
        --checkpoint-out "$ckpt_dir/$scheme.ckpt" \
        --checkpoint-every 1 > "$ckpt_dir/$scheme.killed.json" &
    sim_pid=$!
    sleep 2
    kill -KILL "$sim_pid" 2>/dev/null || true
    wait "$sim_pid" 2>/dev/null || true
    test -s "$ckpt_dir/$scheme.ckpt" \
        || { echo "FAIL: $scheme left no checkpoint"; exit 1; }
    "$BUILD_DIR/tools/csalt-sim" "${args[@]}" \
        --restore "$ckpt_dir/$scheme.ckpt" \
        > "$ckpt_dir/$scheme.res.json"
    cmp -s "$ckpt_dir/$scheme.ref.json" "$ckpt_dir/$scheme.res.json" \
        || { echo "FAIL: $scheme restore diverged"; \
             diff "$ckpt_dir/$scheme.ref.json" \
                  "$ckpt_dir/$scheme.res.json" | head; exit 1; }
    echo "ok: $scheme killed -9 and restored byte-identical"
done
rm -rf "$ckpt_dir"

echo "== scheme shoot-out smoke: every registered backend must run =="
shoot_dir="$(mktemp -d /tmp/csalt-shootout-XXXXXX)"
CSALT_QUOTA=30000 CSALT_WARMUP=10000 \
    "$BUILD_DIR/tools/sweep" --schemes all ccomp --jobs "$JOBS" \
    > "$shoot_dir/out" \
    || { echo "FAIL: shoot-out exited nonzero (failed cells?)"; \
         cat "$shoot_dir/out"; exit 1; }
# No holes allowed: a FAILED cell or an n/a geomean means one of the
# registered schemes cannot build or run — the registry contract the
# shoot-out table exists to demonstrate.
if grep -qE 'FAILED|n/a' "$shoot_dir/out"; then
    echo "FAIL: shoot-out table has holes"; cat "$shoot_dir/out"
    exit 1
fi
for s in conventional pom csalt-d csalt-cd tsb dip victima pcax; do
    grep -q "$s" "$shoot_dir/out" \
        || { echo "FAIL: scheme column missing: $s"; \
             cat "$shoot_dir/out"; exit 1; }
done
rm -rf "$shoot_dir"
echo "ok: shoot-out table complete across all schemes"

echo "== perf smoke: Release throughput bench + results schema =="
PERF_DIR="${BUILD_DIR}-perf"
if [[ "${KEEP_BUILD:-0}" != 1 ]]; then
    rm -rf "$PERF_DIR"
fi
cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$PERF_DIR" -j "$JOBS" --target perf_throughput \
    bench_report
perf_json="$(mktemp /tmp/csalt-perf-XXXXXX.json)"
# Full default run lengths — the committed baseline's. bench_report
# refuses mismatched lengths (volume cells scale with the quota, and
# short slices are cold-cache slow), so a reduced smoke here can
# never gate against the full-quota baseline.
CSALT_BENCH_JSON="$perf_json" \
    "$PERF_DIR/bench/perf_throughput" --jobs 1
python3 - "$perf_json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for key in ("figure", "metric", "quota", "warmup", "rows", "geomean",
            "wall_clock_s"):
    assert key in doc, f"missing key: {key}"
assert doc["figure"] == "perf_throughput", doc["figure"]
assert doc["metric"] == "maps", doc["metric"]

rows = doc["rows"]
assert isinstance(rows, list) and rows, "rows must be non-empty"
schemes = {row["label"] for row in rows}
assert {"POM-TLB", "CSALT-D", "CSALT-CD", "DIP",
        "Victima", "PCAX"} <= schemes, schemes
for row in rows:
    values = row["values"]
    for key in ("MAPS", "MIPS", "accesses", "seconds"):
        assert key in values, f"{row['label']}: missing {key}"
    assert values["MAPS"] > 0, f"{row['label']}: MAPS not positive"
    assert values["MIPS"] > 0, f"{row['label']}: MIPS not positive"
assert doc["geomean"]["MAPS"] > 0

print(f"ok: {len(rows)} schemes, geomean "
      f"{doc['geomean']['MAPS']:.1f} MAPS")
EOF

echo "== perf-trajectory gate vs committed BENCH_results.json =="
# Same run lengths as the committed baseline, but whatever CI
# machine we got — the container is single-CPU and timing-noisy, so
# gate loosely: 50% catches real collapses (an accidental O(n) scan,
# a debug build) without flaking on host drift.
if [[ -f BENCH_results.json ]]; then
    "$PERF_DIR/tools/bench_report" --baseline BENCH_results.json \
        --threshold 50% "$perf_json"
else
    echo "SKIP: no committed BENCH_results.json baseline"
fi
rm -f "$perf_json"

echo "== telemetry smoke test =="
trace="$(mktemp /tmp/csalt-check-XXXXXX.jsonl)"
chrome="${trace%.jsonl}.chrome.json"
spans="${trace%.jsonl}.spans.bin"
trap 'rm -f "$trace" "$chrome" "$spans"' EXIT
"$BUILD_DIR/tools/csalt-sim" --vm gups --quota 100000 \
    --warmup 20000 --trace-out "$trace" --format csv > /dev/null
test -s "$trace" || { echo "empty trace"; exit 1; }
"$BUILD_DIR/tools/trace_inspect" --chrome "$chrome" "$trace" \
    > /dev/null
test -s "$chrome" || { echo "empty chrome conversion"; exit 1; }

echo "== span-trace smoke: sidecar + trees + folded stacks =="
"$BUILD_DIR/tools/csalt-sim" --pair ccomp --scheme csalt-cd \
    --quota 100000 --warmup 20000 --span-trace "$spans" \
    --span-rate 64 --format csv > /dev/null 2>&1
test -s "$spans" || { echo "empty span sidecar"; exit 1; }
"$BUILD_DIR/tools/trace_inspect" --spans "$spans" > /dev/null
"$BUILD_DIR/tools/trace_inspect" --spans --folded "$spans" \
    | grep -q '^access' \
    || { echo "FAIL: no folded span stacks"; exit 1; }
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
    -L '^obs_span$'

echo "== OK =="
