#include "snapshot/checkpoint.h"

#include "common/config.h"
#include "common/error.h"
#include "harness/journal.h"
#include "sim/system.h"

namespace csalt::snapshot
{

namespace
{

void
putCache(StateSerializer &s, const CacheParams &p)
{
    s.putString(p.name);
    s.putU64(p.size_bytes);
    s.putU32(p.ways);
    s.putU64(p.latency);
    s.putU8(static_cast<std::uint8_t>(p.repl));
    s.putU8(static_cast<std::uint8_t>(p.insertion));
}

void
putTlb(StateSerializer &s, const TlbParams &p)
{
    s.putU32(p.entries);
    s.putU32(p.ways);
    s.putU64(p.latency);
}

void
putDram(StateSerializer &s, const DramParams &p)
{
    s.putString(p.name);
    s.putU32(p.banks);
    s.putU64(p.row_bytes);
    s.putU64(p.tcas);
    s.putU64(p.trcd);
    s.putU64(p.trp);
    s.putU64(p.burst);
    s.putU64(p.overhead);
}

void
putPartition(StateSerializer &s, const PartitionParams &p)
{
    s.putU8(static_cast<std::uint8_t>(p.policy));
    s.putU64(p.epoch_accesses);
    s.putU32(p.min_ways_per_type);
    s.putU32(p.static_data_ways);
}

} // namespace

std::uint32_t
configSignature(const SystemParams &params,
                const std::vector<std::string> &vm_workloads,
                double scale)
{
    std::string bytes;
    StateSerializer s(bytes);
    s.putU32(params.num_cores);
    s.putU32(params.contexts_per_core);
    s.putU64(params.cs_interval);
    s.putBool(params.virtualized);
    s.putU8(static_cast<std::uint8_t>(params.translation));
    putCache(s, params.l1d);
    putCache(s, params.l2);
    putCache(s, params.l3);
    putTlb(s, params.l1tlb_4k);
    putTlb(s, params.l1tlb_2m);
    putTlb(s, params.l2tlb);
    s.putU32(params.psc.pml4e_entries);
    s.putU32(params.psc.pdpe_entries);
    s.putU32(params.psc.pde_entries);
    s.putU64(params.psc.latency);
    s.putU32(params.psc.nested_entries);
    putDram(s, params.ddr);
    putDram(s, params.stacked);
    s.putU64(params.pom.size_bytes);
    s.putU32(params.pom.ways);
    s.putU64(params.pom.entry_bytes);
    s.putU64(params.tsb.entries_per_context);
    s.putU32(params.tsb.lookups);
    s.putU64(params.victima.size_bytes);
    s.putU32(params.victima.ways);
    s.putU64(params.victima.entry_bytes);
    s.putDouble(params.victima.max_translation_occupancy);
    s.putU32(params.pcax.entries);
    s.putU64(params.pcax.latency);
    putPartition(s, params.l2_partition);
    putPartition(s, params.l3_partition);
    s.putDouble(params.core.base_cpi);
    s.putDouble(params.core.mlp);
    s.putU64(params.core.cs_penalty);
    s.putU64(params.ranges.data_bytes);
    s.putU64(params.ranges.pt_bytes);
    s.putU32(params.max_asids);
    s.putDouble(params.huge_page_fraction);
    s.putU32(static_cast<std::uint32_t>(params.page_table_levels));
    s.putU64(params.seed);
    s.putU64(vm_workloads.size());
    for (const std::string &name : vm_workloads)
        s.putString(name);
    s.putDouble(scale);
    return harness::crc32(bytes);
}

std::string
serializeSystem(const System &sys, const SnapshotMeta &meta)
{
    SnapshotWriter writer(meta);

    std::string payload;
    {
        StateSerializer s(payload);
        sys.saveRunState(s);
    }
    writer.addChunk("system", std::move(payload));

    payload.clear();
    {
        StateSerializer s(payload);
        sys.mem().saveState(s);
    }
    writer.addChunk("mem", std::move(payload));

    for (unsigned c = 0; c < sys.numCores(); ++c) {
        payload.clear();
        StateSerializer s(payload);
        sys.core(c).saveState(s);
        writer.addChunk("core." + std::to_string(c),
                        std::move(payload));
    }
    for (unsigned v = 0; v < sys.numVms(); ++v) {
        payload.clear();
        StateSerializer s(payload);
        sys.vm(v).saveState(s);
        writer.addChunk("vm." + std::to_string(v), std::move(payload));
    }
    return writer.serialize();
}

void
restoreSystem(System &sys, const SnapshotReader &reader,
              std::uint32_t expected_crc)
{
    if (reader.meta().config_crc != expected_crc) {
        raise(makeError(
            ErrorKind::config,
            msgOf("snapshot was taken under a different configuration "
                  "(signature ",
                  reader.meta().config_crc, ", this build computes ",
                  expected_crc, ")"),
            "snapshot restore",
            "restore with the exact scheme/workloads/scale/seed the "
            "checkpoint was written with"));
    }

    std::vector<std::string> wanted = {"system", "mem"};
    for (unsigned c = 0; c < sys.numCores(); ++c)
        wanted.push_back("core." + std::to_string(c));
    for (unsigned v = 0; v < sys.numVms(); ++v)
        wanted.push_back("vm." + std::to_string(v));
    reader.requireChunks(wanted);

    {
        StateDeserializer d = reader.open("system");
        sys.loadRunState(d);
        d.finish();
    }
    {
        StateDeserializer d = reader.open("mem");
        sys.mem().loadState(d);
        d.finish();
    }
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        StateDeserializer d =
            reader.open("core." + std::to_string(c));
        sys.core(c).loadState(d);
        d.finish();
    }
    for (unsigned v = 0; v < sys.numVms(); ++v) {
        StateDeserializer d = reader.open("vm." + std::to_string(v));
        sys.vm(v).loadState(d);
        d.finish();
    }
}

} // namespace csalt::snapshot
