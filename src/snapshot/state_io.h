/**
 * @file
 * Byte-level visitor pair every stateful component implements its
 * saveState/loadState against.
 *
 * StateSerializer appends fixed-width little-endian fields to a
 * payload string; StateDeserializer reads them back with bounds
 * checking. Every decode failure raises a typed kind=parse CsaltError
 * naming the component chunk and the byte offset of the bad field, so
 * a corrupted snapshot is rejected with a pinpointed diagnostic — and
 * because the container validates every chunk CRC before any
 * component's loadState runs, a restore either completes fully or
 * mutates nothing.
 *
 * Padded structs are serialized field-wise (never raw memcpy) and
 * doubles travel as their IEEE-754 bit pattern, so save → load → save
 * is byte-equal on every component (pinned by tests/test_snapshot).
 */

#ifndef CSALT_SNAPSHOT_STATE_IO_H
#define CSALT_SNAPSHOT_STATE_IO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/error.h"
#include "common/log.h"

namespace csalt::snapshot
{

/** Appends fields to one component chunk's payload. */
class StateSerializer
{
  public:
    explicit StateSerializer(std::string &out) : out_(out) {}

    void putU8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
    void putBool(bool v) { putU8(v ? 1 : 0); }

    void putU32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void putU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void putI64(std::int64_t v)
    {
        putU64(static_cast<std::uint64_t>(v));
    }

    /** Bit pattern, not a decimal round-trip: byte-exact. */
    void putDouble(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        putU64(bits);
    }

    void putString(std::string_view s)
    {
        putU64(s.size());
        out_.append(s.data(), s.size());
    }

    std::size_t size() const { return out_.size(); }

  private:
    std::string &out_;
};

/** Bounds-checked reader over one component chunk's payload. */
class StateDeserializer
{
  public:
    StateDeserializer(std::string_view payload, std::string chunk)
        : data_(payload), chunk_(std::move(chunk))
    {
    }

    std::uint8_t getU8()
    {
        need(1, "u8");
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    bool getBool()
    {
        const std::uint8_t v = getU8();
        if (v > 1)
            fail(msgOf("bool field holds ", unsigned(v)));
        return v != 0;
    }

    std::uint32_t getU32()
    {
        need(4, "u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(std::uint8_t(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t getU64()
    {
        need(8, "u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t getI64()
    {
        return static_cast<std::int64_t>(getU64());
    }

    double getDouble()
    {
        const std::uint64_t bits = getU64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string getString()
    {
        const std::uint64_t n = getU64();
        need(n, "string body");
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    std::size_t offset() const { return pos_; }
    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    /** Component payloads must be consumed exactly. */
    void finish()
    {
        if (!atEnd())
            fail(msgOf(remaining(), " unconsumed trailing bytes"));
    }

    /**
     * Component-level validation failure (geometry mismatch, value
     * out of range, ...): typed parse error naming chunk + offset.
     */
    [[noreturn]] void fail(const std::string &msg) const
    {
        raise(makeError(
            ErrorKind::parse, msg,
            msgOf("snapshot chunk '", chunk_, "' at byte ", pos_),
            "the snapshot is corrupt or from an incompatible build; "
            "re-checkpoint or rerun from scratch"));
    }

    const std::string &chunk() const { return chunk_; }

  private:
    void need(std::uint64_t n, const char *what)
    {
        if (pos_ + n > data_.size()) {
            fail(msgOf("truncated payload: need ", n, " bytes for ",
                       what, ", have ", remaining()));
        }
    }

    std::string_view data_;
    std::string chunk_;
    std::size_t pos_ = 0;
};

} // namespace csalt::snapshot

#endif // CSALT_SNAPSHOT_STATE_IO_H
