/**
 * @file
 * Whole-system checkpoint/restore orchestration over the CSALTSNAP
 * container (snapshot.h): one chunk per component ("system", "mem",
 * "core.N", "vm.N"), a config-signature guard, and the shared
 * periodic/signal checkpoint hook csalt_sim and the sweep runner
 * both install.
 *
 * Guarantee (pinned by tests/test_snapshot and the check.sh smoke):
 * checkpoint at access K, restore in a fresh process, run to
 * completion => metrics byte-identical to the uninterrupted run.
 */

#ifndef CSALT_SNAPSHOT_CHECKPOINT_H
#define CSALT_SNAPSHOT_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/snapshot.h"

namespace csalt
{

class System;
struct SystemParams;

namespace snapshot
{

/**
 * CRC32 over the field-wise-serialized build configuration: every
 * SystemParams field plus the VM workload names and the footprint
 * scale. Two runs with equal signatures build structurally identical
 * systems, so restore refuses a snapshot whose signature differs
 * (kind=config) instead of tripping geometry checks one by one.
 */
std::uint32_t configSignature(const SystemParams &params,
                              const std::vector<std::string> &vm_workloads,
                              double scale);

/**
 * Serialize the complete simulated machine into a CSALTSNAP byte
 * string: @p meta, then "system" (run position), "mem", one "core.N"
 * per core and one "vm.N" per address space.
 */
std::string serializeSystem(const System &sys, const SnapshotMeta &meta);

/**
 * Restore @p sys (freshly built with the same configuration) from a
 * parsed snapshot. Validates the config signature and the presence
 * of every component chunk BEFORE mutating anything, then loads each
 * component and rejects trailing bytes per chunk — a failed restore
 * raises a typed CsaltError and never leaves the system half-loaded
 * silently. After a successful restore the next System::run()
 * continues the interrupted one.
 *
 * @param expected_crc configSignature() of the current build
 */
void restoreSystem(System &sys, const SnapshotReader &reader,
                   std::uint32_t expected_crc);

} // namespace snapshot
} // namespace csalt

#endif // CSALT_SNAPSHOT_CHECKPOINT_H
