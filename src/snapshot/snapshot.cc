#include "snapshot/snapshot.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/atomic_io.h"
#include "common/log.h"
#include "common/progress.h"
#include "harness/journal.h" // crc32

namespace csalt::snapshot
{

namespace
{

[[noreturn]] void
parseFail(const std::string &origin, std::uint64_t offset,
          const std::string &chunk, const std::string &msg)
{
    std::string where = msgOf(origin, " at byte ", offset);
    if (!chunk.empty())
        where += msgOf(", chunk '", chunk, "'");
    raise(makeError(ErrorKind::parse, msg, where,
                    "the snapshot is truncated or corrupt; restore "
                    "refuses to load partial state — rerun from "
                    "scratch or use an older rotation (FILE.1, ...)"));
}

} // namespace

std::string
encodeMeta(const SnapshotMeta &meta)
{
    std::string payload;
    StateSerializer s(payload);
    s.putU32(meta.config_crc);
    s.putString(meta.scheme);
    s.putU64(meta.vms.size());
    for (const auto &vm : meta.vms)
        s.putString(vm);
    s.putDouble(meta.scale);
    s.putU64(meta.seed);
    s.putU64(meta.warmup);
    s.putU64(meta.quota);
    s.putU8(meta.phase);
    s.putU64(meta.steps);
    s.putU64(meta.epoch);
    s.putU64(meta.instructions);
    return payload;
}

namespace
{

SnapshotMeta
decodeMeta(StateDeserializer d)
{
    SnapshotMeta meta;
    meta.config_crc = d.getU32();
    meta.scheme = d.getString();
    const std::uint64_t n = d.getU64();
    if (n > 100000)
        d.fail(msgOf("implausible VM count ", n));
    for (std::uint64_t i = 0; i < n; ++i)
        meta.vms.push_back(d.getString());
    meta.scale = d.getDouble();
    meta.seed = d.getU64();
    meta.warmup = d.getU64();
    meta.quota = d.getU64();
    meta.phase = d.getU8();
    if (meta.phase > 1)
        d.fail(msgOf("phase must be 0 or 1, got ",
                     unsigned(meta.phase)));
    meta.steps = d.getU64();
    meta.epoch = d.getU64();
    meta.instructions = d.getU64();
    d.finish();
    return meta;
}

void
appendChunk(std::string &out, const std::string &name,
            const std::string &payload)
{
    StateSerializer s(out);
    s.putU32(static_cast<std::uint32_t>(name.size()));
    out.append(name);
    s.putU64(payload.size());
    s.putU32(harness::crc32(payload));
    out.append(payload);
}

} // namespace

void
SnapshotWriter::addChunk(std::string name, std::string payload)
{
    chunks_.emplace_back(std::move(name), std::move(payload));
}

std::string
SnapshotWriter::serialize() const
{
    std::string out;
    out.append(kSnapshotMagic, kSnapshotMagicLen);
    {
        StateSerializer s(out);
        s.putU32(kSnapshotVersion);
    }
    appendChunk(out, "meta", encodeMeta(meta_));
    for (const auto &[name, payload] : chunks_)
        appendChunk(out, name, payload);
    appendChunk(out, "END", "");
    return out;
}

SnapshotReader
SnapshotReader::parse(std::string bytes, const std::string &origin)
{
    SnapshotReader r;
    r.bytes_ = std::move(bytes);
    r.origin_ = origin;
    const std::string &b = r.bytes_;

    std::uint64_t pos = 0;
    auto need = [&](std::uint64_t n, const std::string &chunk,
                    const std::string &what) {
        if (pos + n > b.size()) {
            parseFail(origin, pos, chunk,
                      msgOf("unexpected end of snapshot: need ", n,
                            " bytes for ", what, ", have ",
                            b.size() - pos));
        }
    };
    auto getU32 = [&](const std::string &chunk,
                      const std::string &what) {
        need(4, chunk, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(std::uint8_t(b[pos + i])) << (8 * i);
        pos += 4;
        return v;
    };
    auto getU64 = [&](const std::string &chunk,
                      const std::string &what) {
        need(8, chunk, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(b[pos + i])) << (8 * i);
        pos += 8;
        return v;
    };

    need(kSnapshotMagicLen, "", "magic");
    if (b.compare(0, kSnapshotMagicLen, kSnapshotMagic,
                  kSnapshotMagicLen) != 0) {
        parseFail(origin, 0, "",
                  "bad magic: not a CSALTSNAP snapshot");
    }
    pos = kSnapshotMagicLen;
    const std::uint32_t version = getU32("", "format version");
    if (version != kSnapshotVersion) {
        parseFail(origin, kSnapshotMagicLen, "",
                  msgOf("unsupported snapshot version ", version,
                        " (this build reads version ",
                        kSnapshotVersion, ")"));
    }

    bool saw_end = false;
    while (!saw_end) {
        ChunkInfo info;
        info.header_offset = pos;
        const std::uint32_t name_len = getU32("", "chunk name length");
        if (name_len > 4096) {
            parseFail(origin, info.header_offset, "",
                      msgOf("implausible chunk name length ",
                            name_len));
        }
        need(name_len, "", "chunk name");
        info.name = b.substr(pos, name_len);
        pos += name_len;
        info.payload_size = getU64(info.name, "payload length");
        info.crc = getU32(info.name, "payload CRC stamp");
        info.payload_offset = pos;
        need(info.payload_size, info.name, "chunk payload");
        const std::uint32_t actual = harness::crc32(
            std::string_view(b).substr(pos, info.payload_size));
        if (actual != info.crc) {
            parseFail(
                origin, info.payload_offset, info.name,
                msgOf("payload CRC mismatch: stored ",
                      info.crc, ", computed ", actual, " over ",
                      info.payload_size, " bytes"));
        }
        pos += info.payload_size;
        if (info.name == "END") {
            if (info.payload_size != 0) {
                parseFail(origin, info.payload_offset, "END",
                          "END sentinel must have an empty payload");
            }
            saw_end = true;
        } else {
            for (const auto &prev : r.chunks_) {
                if (prev.name == info.name) {
                    parseFail(origin, info.header_offset, info.name,
                              "duplicate chunk");
                }
            }
            r.chunks_.push_back(std::move(info));
        }
    }
    if (pos != b.size()) {
        parseFail(origin, pos, "",
                  msgOf(b.size() - pos,
                        " trailing bytes after the END sentinel"));
    }

    const ChunkInfo *meta = r.find("meta");
    if (!meta || meta->header_offset != kSnapshotMagicLen + 4) {
        parseFail(origin, kSnapshotMagicLen + 4, "meta",
                  "first chunk must be 'meta'");
    }
    r.meta_ = decodeMeta(r.open("meta"));
    return r;
}

SnapshotReader
SnapshotReader::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        raise(makeError(ErrorKind::io,
                        msgOf("cannot open snapshot '", path, "'"),
                        "SnapshotReader::load",
                        "check the path passed to --restore / "
                        "--snapshot"));
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
        raise(makeError(ErrorKind::io,
                        msgOf("error reading snapshot '", path, "'"),
                        "SnapshotReader::load"));
    }
    return parse(buf.str(), path);
}

const ChunkInfo *
SnapshotReader::find(const std::string &name) const
{
    for (const auto &c : chunks_)
        if (c.name == name)
            return &c;
    return nullptr;
}

bool
SnapshotReader::hasChunk(const std::string &name) const
{
    return find(name) != nullptr;
}

StateDeserializer
SnapshotReader::open(const std::string &name) const
{
    const ChunkInfo *c = find(name);
    if (!c) {
        parseFail(origin_, bytes_.size(), name,
                  msgOf("required chunk '", name,
                        "' is missing from the snapshot"));
    }
    return StateDeserializer(
        std::string_view(bytes_).substr(c->payload_offset,
                                        c->payload_size),
        name);
}

void
SnapshotReader::requireChunks(
    const std::vector<std::string> &names) const
{
    std::string missing;
    for (const auto &name : names) {
        if (!hasChunk(name)) {
            if (!missing.empty())
                missing += ", ";
            missing += "'" + name + "'";
        }
    }
    if (!missing.empty()) {
        parseFail(origin_, bytes_.size(), "",
                  msgOf("missing component chunk(s): ", missing,
                        " — snapshot topology does not match this "
                        "configuration"));
    }
}

Status
writeSnapshotRotating(const std::string &path,
                      const std::string &bytes, unsigned keep)
{
    // A multi-hundred-MB serialization + fsync can exceed the
    // watchdog's --stall-timeout; heartbeat around the I/O so a
    // checkpointing job is never mistaken for a hung one.
    progressTick();
    if (keep > 1) {
        // path.(keep-2) -> path.(keep-1), ...: the numbered backups
        // shift by rename (a missing source simply leaves the
        // destination absent). But path -> path.1 is a COPY: a
        // rename would open a crash window in which no primary
        // checkpoint exists at all, and a kill mid-copy only tears
        // the backup (caught by its CRC), never the primary.
        for (unsigned i = keep - 1; i >= 2; --i) {
            const std::string dst = path + "." + std::to_string(i);
            const std::string src = path + "." + std::to_string(i - 1);
            std::remove(dst.c_str());
            std::rename(src.c_str(), dst.c_str());
        }
        std::ifstream prev(path, std::ios::binary);
        if (prev) {
            const std::string old(
                (std::istreambuf_iterator<char>(prev)),
                std::istreambuf_iterator<char>());
            // Backup rotation is best-effort; the primary write
            // below decides success.
            (void)!writeFileAtomic(path + ".1", old).ok();
        }
    }
    Status st = writeFileAtomic(path, bytes);
    progressTick();
    return st;
}

} // namespace csalt::snapshot
