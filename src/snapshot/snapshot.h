/**
 * @file
 * CSALTSNAP — the versioned, chunked, CRC32-guarded full-state
 * snapshot container (gem5-style checkpointing for week-long runs).
 *
 * Layout:
 *
 *   "CSALTSNAP"                     9-byte magic
 *   u32 version (= 1)
 *   chunk*                          in write order; first is "meta"
 *   end chunk                       name "END", empty payload
 *
 * where each chunk is
 *
 *   [u32 name_len][name][u64 payload_len][u32 crc32(payload)][payload]
 *
 * All integers little-endian. SnapshotReader::parse() walks and
 * CRC-verifies every chunk eagerly — truncation, bit flips (payload
 * or stamp), version skew and trailing garbage are all rejected with
 * typed kind=parse errors naming the chunk and byte offset BEFORE any
 * component state is touched, so a restore can never be partial.
 *
 * Component chunks ("system", "core.0", "mem", "vm.1", ...) each hold
 * one component's saveState() payload (state_io.h).
 */

#ifndef CSALT_SNAPSHOT_SNAPSHOT_H
#define CSALT_SNAPSHOT_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "snapshot/state_io.h"

namespace csalt::snapshot
{

inline constexpr char kSnapshotMagic[] = "CSALTSNAP";
inline constexpr std::size_t kSnapshotMagicLen = 9;
inline constexpr std::uint32_t kSnapshotVersion = 1;

/** Run position + identity carried in the mandatory "meta" chunk. */
struct SnapshotMeta
{
    /** CRC32 over the field-wise-serialized build configuration
     *  (SystemParams + VM workload names + scale); restore refuses a
     *  snapshot taken under a different configuration. */
    std::uint32_t config_crc = 0;
    std::string scheme;             //!< display label from the CLI
    std::vector<std::string> vms;   //!< workload names, VM order
    double scale = 1.0;
    std::uint64_t seed = 0;
    std::uint64_t warmup = 0;
    std::uint64_t quota = 0;
    std::uint8_t phase = 0;         //!< 0 = warmup, 1 = measured
    std::uint64_t steps = 0;        //!< lifetime scheduler steps
    std::uint64_t epoch = 0;        //!< occupancy epochs elapsed
    std::uint64_t instructions = 0; //!< total retired (display)
};

/** One entry of the parsed chunk table. */
struct ChunkInfo
{
    std::string name;
    std::uint64_t header_offset = 0;  //!< of the [name_len] field
    std::uint64_t payload_offset = 0; //!< first payload byte
    std::uint64_t payload_size = 0;
    std::uint32_t crc = 0;
};

/** Builds one snapshot byte string. */
class SnapshotWriter
{
  public:
    explicit SnapshotWriter(const SnapshotMeta &meta) : meta_(meta) {}

    /** Append one component chunk (insertion order is preserved). */
    void addChunk(std::string name, std::string payload);

    /** The complete container: magic + version + meta + chunks + END. */
    std::string serialize() const;

  private:
    SnapshotMeta meta_;
    std::vector<std::pair<std::string, std::string>> chunks_;
};

/** Parsed, fully-CRC-verified snapshot. */
class SnapshotReader
{
  public:
    /**
     * Parse and validate @p bytes (every chunk CRC checked eagerly).
     * Raises kind=parse naming the chunk and byte offset on any
     * corruption; @p origin labels the error context (a path).
     */
    static SnapshotReader parse(std::string bytes,
                                const std::string &origin = "snapshot");

    /** Read @p path (kind=io on failure) then parse(). */
    static SnapshotReader load(const std::string &path);

    const SnapshotMeta &meta() const { return meta_; }

    /** Every chunk except the END sentinel, in file order. */
    const std::vector<ChunkInfo> &chunks() const { return chunks_; }

    bool hasChunk(const std::string &name) const;

    /** Deserializer over @p name's payload; kind=parse when absent. */
    StateDeserializer open(const std::string &name) const;

    /**
     * Raise kind=parse listing every missing chunk of @p names.
     * Restore calls this before mutating any component, so a snapshot
     * from a mismatched topology is rejected up front.
     */
    void requireChunks(const std::vector<std::string> &names) const;

  private:
    SnapshotReader() = default;

    const ChunkInfo *find(const std::string &name) const;

    std::string bytes_;
    std::string origin_;
    SnapshotMeta meta_;
    std::vector<ChunkInfo> chunks_;
};

/** Serialize @p meta as the "meta" chunk payload (shared with tests). */
std::string encodeMeta(const SnapshotMeta &meta);

/**
 * Atomically write @p bytes to @p path, first rotating existing
 * snapshots (path -> path.1 -> ... -> path.(keep-1); older dropped).
 * @p keep counts total retained files including the new one; keep<=1
 * disables rotation. Beats the calling thread's ProgressToken before
 * and after the write so a large snapshot cannot trip the watchdog's
 * --stall-timeout.
 */
Status writeSnapshotRotating(const std::string &path,
                             const std::string &bytes, unsigned keep);

} // namespace csalt::snapshot

#endif // CSALT_SNAPSHOT_SNAPSHOT_H
