/**
 * @file
 * Paranoid-mode structural invariants of the simulated machine.
 *
 * The CSALT results hang off a handful of structural properties of
 * the cache-partitioning machinery; a silent violation would skew
 * every downstream figure with no signal. Paranoid mode
 * (CSALT_PARANOID=1 or --paranoid) validates them during run() at
 * every occupancy-epoch boundary (cheap, sampled) and once more
 * exhaustively when the run completes:
 *
 *   partition.way-sum      data + translation ways == associativity
 *   replacement.stack      every stack position < ways; true-LRU
 *                          ranks form a permutation
 *   profiler.conservation  Mattson counters sum to the access total
 *   cache.occupancy        exact per-type line counters match a full
 *                          line scan (full check only)
 *   tlb.coherence          every L2-TLB entry agrees with its VM's
 *                          functional page map
 *   pom.coherence          every POM-TLB entry agrees likewise
 *                          (sampled sets per epoch; the structure is
 *                          millions of entries)
 *   cpi.accounting         each core's CPI stack sums to its elapsed
 *                          cycles, and the per-context stacks sum to
 *                          the core stack
 *
 * Note the paper-level POM ⊇ L2-TLB *inclusion* property is NOT an
 * invariant of this model: POM set evictions do not back-invalidate
 * the on-chip TLBs (matching the POM-TLB hardware, which tolerates
 * stale upper levels). Coherence against the functional page maps is
 * the enforceable form — see docs/robustness.md.
 *
 * Every checker has a fault-injection test (tests/test_invariants)
 * proving it actually fires; see check/fault_injector.h.
 */

#ifndef CSALT_CHECK_INVARIANTS_H
#define CSALT_CHECK_INVARIANTS_H

#include <cstdint>
#include <string>
#include <vector>

namespace csalt
{

class Cache;
class CoreModel;
class PomTlb;
class StackDistProfiler;
class System;
class Tlb;
class VmContext;

namespace check
{

/** One detected invariant violation. */
struct Violation
{
    std::string invariant; //!< catalog name ("partition.way-sum")
    std::string where;     //!< component ("l3", "core0.l2tlb")
    std::string detail;
};

/** Scan depth of one checkSystem() pass. */
struct CheckOptions
{
    /** Per-epoch scan budget: sets examined per cache/TLB. */
    std::uint64_t sample_sets = 64;
    /** Exhaustive pass: every set, plus the occupancy line scan. */
    bool full = false;
};

/** CSALT_PARANOID set to anything but "" / "0"? */
bool paranoidFromEnv();

/** Run every checker against @p system; empty result = healthy. */
std::vector<Violation> checkSystem(const System &system,
                                   const CheckOptions &opts);

/**
 * Throw the violations as a CsaltError (kind=invariant) naming each
 * violated invariant. No-op when @p violations is empty.
 */
void raiseIfViolated(const std::vector<Violation> &violations,
                     const std::string &when);

// Individual checkers (targeted fault-injection tests drive these
// directly; checkSystem composes them).

void checkCache(const Cache &cache, const std::string &where,
                const CheckOptions &opts,
                std::vector<Violation> &out);

void checkProfiler(const StackDistProfiler &profiler,
                   const std::string &where,
                   std::vector<Violation> &out);

void checkTlbCoherence(const Tlb &tlb,
                       const std::vector<const VmContext *> &vms,
                       const std::string &where,
                       std::vector<Violation> &out);

void checkPomCoherence(const PomTlb &pom,
                       const std::vector<const VmContext *> &vms,
                       const std::string &where,
                       const CheckOptions &opts,
                       std::vector<Violation> &out);

void checkCpiAccounting(const CoreModel &core,
                        const std::string &where,
                        std::vector<Violation> &out);

} // namespace check
} // namespace csalt

#endif // CSALT_CHECK_INVARIANTS_H
