/**
 * @file
 * Seeded fault injection against a live System.
 *
 * Each Fault flips exactly one kind of internal state through the
 * model's `...ForTest` hooks, chosen so that exactly one invariant of
 * check/invariants.h must fire afterwards. The tests in
 * tests/test_invariants.cpp prove that pairing for every checker, and
 * `csalt-sim --inject FAULT` exposes it end-to-end so check.sh can
 * smoke-test that a corrupted simulator actually fails loudly.
 *
 * Injection happens mid-run (the tools run half the quota, inject,
 * then run the rest): the corruptible structures are only populated
 * once the simulation has warmed them up.
 */

#ifndef CSALT_CHECK_FAULT_INJECTOR_H
#define CSALT_CHECK_FAULT_INJECTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace csalt
{

class System;

namespace check
{

/** Which piece of model state to corrupt. */
enum class Fault : std::uint8_t
{
    cacheMetadata,    //!< L3 exact occupancy counter (cache.occupancy)
    replacementState, //!< L3 set-0 recency state (replacement.stack)
    partitionState,   //!< L3 partition way-sum (partition.way-sum)
    profilerCounters, //!< L3 data profiler (profiler.conservation)
    tlbEntry,         //!< core-0 L2-TLB frame bit (tlb.coherence)
    pomEntry,         //!< POM-TLB frame bit (pom.coherence)
    cpiStack,         //!< core-0 cycle ledger (cpi.accounting)
};

/** Stable name ("cache-metadata", "tlb-entry", ...). */
const char *faultName(Fault fault);

/** Parse a fault name; config error lists the valid names. */
Expected<Fault> faultFromName(const std::string &name);

/** Every injectable fault (test matrices iterate this). */
std::vector<Fault> allFaults();

/**
 * Corrupt @p system according to @p fault. The seed picks which
 * set/entry where the hook is seeded. Raises kind=config when the
 * fault's target does not exist under the current scheme (e.g.
 * partition/profiler faults on an unpartitioned baseline) and
 * kind=internal when the target structure is still empty (inject
 * later in the run).
 */
void injectFault(System &system, Fault fault, std::uint64_t seed = 1);

/**
 * Which part of a serialized CSALTSNAP image to corrupt. Each fault
 * must make SnapshotReader::parse() (or the restore that follows)
 * reject the image with a typed kind=parse error naming the chunk and
 * byte offset — a corrupted snapshot never restores partially. The
 * pairing is proven per fault in tests/test_snapshot.cpp.
 */
enum class SnapshotFault : std::uint8_t
{
    truncatedTail,  //!< drop the image's final bytes (torn write)
    payloadBitFlip, //!< flip one bit inside a component payload
    crcFlip,        //!< flip one bit of a stored CRC stamp
    versionSkew,    //!< bump the u32 format version field
    missingChunk,   //!< splice one component chunk out entirely
};

/** Stable name ("truncated-tail", "payload-bit-flip", ...). */
const char *snapshotFaultName(SnapshotFault fault);

/** Parse a snapshot-fault name; config error lists the valid names. */
Expected<SnapshotFault> snapshotFaultFromName(const std::string &name);

/** Every injectable snapshot fault (test matrices iterate this). */
std::vector<SnapshotFault> allSnapshotFaults();

/**
 * Return @p bytes corrupted per @p fault. @p bytes must be a valid
 * CSALTSNAP image — it is parsed first to locate chunk boundaries, so
 * the corruption lands on a real structural target (a component
 * payload byte, a CRC stamp, the version field) rather than a random
 * offset. @p seed picks which component chunk / byte is hit.
 */
std::string injectSnapshotFault(std::string bytes, SnapshotFault fault,
                                std::uint64_t seed = 1);

} // namespace check
} // namespace csalt

#endif // CSALT_CHECK_FAULT_INJECTOR_H
