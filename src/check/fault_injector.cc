#include "check/fault_injector.h"

#include "cache/cache.h"
#include "common/log.h"
#include "sim/core_model.h"
#include "sim/system.h"
#include "tlb/pom_tlb.h"
#include "tlb/tlb.h"

namespace csalt::check
{

namespace
{

struct FaultNameEntry
{
    Fault fault;
    const char *name;
};

constexpr FaultNameEntry kFaultNames[] = {
    {Fault::cacheMetadata, "cache-metadata"},
    {Fault::replacementState, "replacement-state"},
    {Fault::partitionState, "partition-state"},
    {Fault::profilerCounters, "profiler-counters"},
    {Fault::tlbEntry, "tlb-entry"},
    {Fault::pomEntry, "pom-entry"},
    {Fault::cpiStack, "cpi-stack"},
};

std::string
validNames()
{
    std::string names;
    for (const auto &e : kFaultNames) {
        if (!names.empty())
            names += ", ";
        names += e.name;
    }
    return names;
}

[[noreturn]] void
raiseEmptyTarget(const char *what)
{
    raise(makeError(ErrorKind::internal,
                    msgOf(what, " holds no valid entries to corrupt"),
                    "fault injection",
                    "inject after the simulation has run long enough "
                    "to populate the structure"));
}

} // namespace

const char *
faultName(Fault fault)
{
    for (const auto &e : kFaultNames)
        if (e.fault == fault)
            return e.name;
    panic("faultName: unknown fault");
}

Expected<Fault>
faultFromName(const std::string &name)
{
    for (const auto &e : kFaultNames)
        if (name == e.name)
            return e.fault;
    return makeError(ErrorKind::config,
                     msgOf("unknown fault '", name, "'"), "--inject",
                     "valid faults: " + validNames());
}

std::vector<Fault>
allFaults()
{
    std::vector<Fault> faults;
    for (const auto &e : kFaultNames)
        faults.push_back(e.fault);
    return faults;
}

void
injectFault(System &system, Fault fault, std::uint64_t seed)
{
    Cache &l3 = system.mem().l3();
    switch (fault) {
    case Fault::cacheMetadata:
        l3.corruptTypeCountForTest();
        return;
    case Fault::replacementState:
        l3.corruptReplacementForTest(seed);
        return;
    case Fault::partitionState:
        if (!l3.partitioned()) {
            raise(makeError(
                ErrorKind::config,
                "L3 is not partitioned under this scheme",
                msgOf("--inject ", faultName(fault)),
                "use a CSALT scheme (csalt-d / csalt-cd) so the "
                "partition exists"));
        }
        l3.corruptPartitionForTest();
        return;
    case Fault::profilerCounters:
        if (!l3.profiling()) {
            raise(makeError(
                ErrorKind::config,
                "L3 stack-distance profiling is not enabled",
                msgOf("--inject ", faultName(fault)),
                "use a CSALT scheme (csalt-d / csalt-cd) so the "
                "profilers exist"));
        }
        l3.dataProfiler().corruptForTest();
        return;
    case Fault::tlbEntry:
        if (!system.core(0).tlbs().l2().corruptEntryForTest(seed))
            raiseEmptyTarget("core-0 L2 TLB");
        return;
    case Fault::pomEntry:
        if (!system.mem().pom().corruptEntryForTest(seed))
            raiseEmptyTarget("POM-TLB");
        return;
    case Fault::cpiStack:
        system.core(0).corruptCpiForTest();
        return;
    }
    panic("injectFault: unknown fault");
}

} // namespace csalt::check
