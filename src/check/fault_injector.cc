#include "check/fault_injector.h"

#include "cache/cache.h"
#include "common/log.h"
#include "sim/core_model.h"
#include "sim/system.h"
#include "snapshot/snapshot.h"
#include "tlb/pom_tlb.h"
#include "tlb/tlb.h"

namespace csalt::check
{

namespace
{

struct FaultNameEntry
{
    Fault fault;
    const char *name;
};

constexpr FaultNameEntry kFaultNames[] = {
    {Fault::cacheMetadata, "cache-metadata"},
    {Fault::replacementState, "replacement-state"},
    {Fault::partitionState, "partition-state"},
    {Fault::profilerCounters, "profiler-counters"},
    {Fault::tlbEntry, "tlb-entry"},
    {Fault::pomEntry, "pom-entry"},
    {Fault::cpiStack, "cpi-stack"},
};

std::string
validNames()
{
    std::string names;
    for (const auto &e : kFaultNames) {
        if (!names.empty())
            names += ", ";
        names += e.name;
    }
    return names;
}

[[noreturn]] void
raiseEmptyTarget(const char *what)
{
    raise(makeError(ErrorKind::internal,
                    msgOf(what, " holds no valid entries to corrupt"),
                    "fault injection",
                    "inject after the simulation has run long enough "
                    "to populate the structure"));
}

} // namespace

const char *
faultName(Fault fault)
{
    for (const auto &e : kFaultNames)
        if (e.fault == fault)
            return e.name;
    panic("faultName: unknown fault");
}

Expected<Fault>
faultFromName(const std::string &name)
{
    for (const auto &e : kFaultNames)
        if (name == e.name)
            return e.fault;
    return makeError(ErrorKind::config,
                     msgOf("unknown fault '", name, "'"), "--inject",
                     "valid faults: " + validNames());
}

std::vector<Fault>
allFaults()
{
    std::vector<Fault> faults;
    for (const auto &e : kFaultNames)
        faults.push_back(e.fault);
    return faults;
}

void
injectFault(System &system, Fault fault, std::uint64_t seed)
{
    Cache &l3 = system.mem().l3();
    switch (fault) {
    case Fault::cacheMetadata:
        l3.corruptTypeCountForTest();
        return;
    case Fault::replacementState:
        l3.corruptReplacementForTest(seed);
        return;
    case Fault::partitionState:
        if (!l3.partitioned()) {
            raise(makeError(
                ErrorKind::config,
                "L3 is not partitioned under this scheme",
                msgOf("--inject ", faultName(fault)),
                "use a CSALT scheme (csalt-d / csalt-cd) so the "
                "partition exists"));
        }
        l3.corruptPartitionForTest();
        return;
    case Fault::profilerCounters:
        if (!l3.profiling()) {
            raise(makeError(
                ErrorKind::config,
                "L3 stack-distance profiling is not enabled",
                msgOf("--inject ", faultName(fault)),
                "use a CSALT scheme (csalt-d / csalt-cd) so the "
                "profilers exist"));
        }
        l3.dataProfiler().corruptForTest();
        return;
    case Fault::tlbEntry:
        if (!system.core(0).tlbs().l2().corruptEntryForTest(seed))
            raiseEmptyTarget("core-0 L2 TLB");
        return;
    case Fault::pomEntry:
        if (!system.mem().pom().corruptEntryForTest(seed))
            raiseEmptyTarget("POM-TLB");
        return;
    case Fault::cpiStack:
        system.core(0).corruptCpiForTest();
        return;
    }
    panic("injectFault: unknown fault");
}

namespace
{

struct SnapshotFaultNameEntry
{
    SnapshotFault fault;
    const char *name;
};

constexpr SnapshotFaultNameEntry kSnapshotFaultNames[] = {
    {SnapshotFault::truncatedTail, "truncated-tail"},
    {SnapshotFault::payloadBitFlip, "payload-bit-flip"},
    {SnapshotFault::crcFlip, "crc-flip"},
    {SnapshotFault::versionSkew, "version-skew"},
    {SnapshotFault::missingChunk, "missing-chunk"},
};

std::string
validSnapshotFaultNames()
{
    std::string names;
    for (const auto &e : kSnapshotFaultNames) {
        if (!names.empty())
            names += ", ";
        names += e.name;
    }
    return names;
}

/**
 * Seed-selected component chunk (meta excluded: the component-level
 * faults must hit model state, and missing-chunk on meta would trip
 * the unrelated first-chunk-must-be-meta check). When
 * @p need_payload, chunks with empty payloads are skipped.
 */
const snapshot::ChunkInfo &
pickComponentChunk(const std::vector<snapshot::ChunkInfo> &chunks,
                   std::uint64_t seed, bool need_payload)
{
    std::vector<const snapshot::ChunkInfo *> candidates;
    for (const auto &c : chunks) {
        if (c.name == "meta")
            continue;
        if (need_payload && c.payload_size == 0)
            continue;
        candidates.push_back(&c);
    }
    if (candidates.empty()) {
        raise(makeError(ErrorKind::usage,
                        "snapshot holds no component chunk to corrupt",
                        "snapshot fault injection",
                        "serialize a full system before injecting"));
    }
    return *candidates[seed % candidates.size()];
}

} // namespace

const char *
snapshotFaultName(SnapshotFault fault)
{
    for (const auto &e : kSnapshotFaultNames)
        if (e.fault == fault)
            return e.name;
    panic("snapshotFaultName: unknown fault");
}

Expected<SnapshotFault>
snapshotFaultFromName(const std::string &name)
{
    for (const auto &e : kSnapshotFaultNames)
        if (name == e.name)
            return e.fault;
    return makeError(ErrorKind::config,
                     msgOf("unknown snapshot fault '", name, "'"),
                     "snapshot fault injection",
                     "valid faults: " + validSnapshotFaultNames());
}

std::vector<SnapshotFault>
allSnapshotFaults()
{
    std::vector<SnapshotFault> faults;
    for (const auto &e : kSnapshotFaultNames)
        faults.push_back(e.fault);
    return faults;
}

std::string
injectSnapshotFault(std::string bytes, SnapshotFault fault,
                    std::uint64_t seed)
{
    // Parse first (validates the input is a real image) so every
    // corruption below lands on a known structural target.
    const snapshot::SnapshotReader reader =
        snapshot::SnapshotReader::parse(bytes, "fault-injection input");

    switch (fault) {
    case SnapshotFault::truncatedTail: {
        // Drop the END sentinel's tail plus up to 7 more bytes: the
        // torn tail a crashed non-atomic writer would leave.
        const std::size_t drop = 1 + seed % 8;
        bytes.resize(bytes.size() - std::min(drop, bytes.size()));
        return bytes;
    }
    case SnapshotFault::payloadBitFlip: {
        const snapshot::ChunkInfo &c = pickComponentChunk(
            reader.chunks(), seed, /*need_payload=*/true);
        const std::uint64_t at =
            c.payload_offset + seed % c.payload_size;
        bytes[at] ^= static_cast<char>(1u << (seed % 8));
        return bytes;
    }
    case SnapshotFault::crcFlip: {
        const snapshot::ChunkInfo &c = pickComponentChunk(
            reader.chunks(), seed, /*need_payload=*/false);
        // The u32 CRC stamp sits immediately before the payload.
        const std::uint64_t at = c.payload_offset - 4 + seed % 4;
        bytes[at] ^= static_cast<char>(1u << (seed % 8));
        return bytes;
    }
    case SnapshotFault::versionSkew: {
        // The u32 version follows the 9-byte magic; bump its low byte
        // so the image claims a format this build does not read.
        bytes[snapshot::kSnapshotMagicLen] =
            static_cast<char>(std::uint8_t(
                bytes[snapshot::kSnapshotMagicLen]) + 1);
        return bytes;
    }
    case SnapshotFault::missingChunk: {
        const snapshot::ChunkInfo &c = pickComponentChunk(
            reader.chunks(), seed, /*need_payload=*/false);
        bytes.erase(c.header_offset,
                    c.payload_offset + c.payload_size -
                        c.header_offset);
        return bytes;
    }
    }
    panic("injectSnapshotFault: unknown fault");
}

} // namespace csalt::check
