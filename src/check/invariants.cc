#include "check/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>

#include "cache/cache.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/phase_profiler.h"
#include "sim/core_model.h"
#include "sim/system.h"
#include "tlb/pom_tlb.h"
#include "tlb/tlb.h"
#include "vm/address_space.h"

namespace csalt::check
{

namespace
{

const char *
pageSizeName(PageSize ps)
{
    return ps == PageSize::size2M ? "2M" : "4K";
}

/** Relative tolerance for double-accumulated cycle ledgers. */
double
cycleTolerance(double a, double b)
{
    return std::max(0.01, 1e-8 * std::max(std::abs(a), std::abs(b)));
}

std::map<Asid, const VmContext *>
vmsByAsid(const std::vector<const VmContext *> &vms)
{
    std::map<Asid, const VmContext *> by_asid;
    for (const VmContext *vm : vms)
        by_asid.emplace(vm->asid(), vm);
    return by_asid;
}

/** One entry's coherence against the functional page maps. */
void
checkMappedEntry(const std::map<Asid, const VmContext *> &by_asid,
                 Asid asid, Vpn vpn, Addr frame, PageSize ps,
                 const char *invariant, const std::string &where,
                 std::vector<Violation> &out)
{
    const auto it = by_asid.find(asid);
    if (it == by_asid.end()) {
        out.push_back({invariant, where,
                       msgOf("entry for unknown asid ", asid)});
        return;
    }
    const auto mapping = it->second->peek(vpn, ps);
    if (!mapping) {
        out.push_back(
            {invariant, where,
             msgOf("asid ", asid, " vpn 0x", std::hex, vpn, std::dec,
                   " (", pageSizeName(ps),
                   "): no functional mapping exists")});
    } else if (mapping->frame != frame || mapping->ps != ps) {
        out.push_back(
            {invariant, where,
             msgOf("asid ", asid, " vpn 0x", std::hex, vpn,
                   ": frame 0x", frame, " != functional 0x",
                   mapping->frame, std::dec)});
    }
}

} // namespace

bool
paranoidFromEnv()
{
    const char *v = std::getenv("CSALT_PARANOID");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

void
checkCache(const Cache &cache, const std::string &where,
           const CheckOptions &opts, std::vector<Violation> &out)
{
    const unsigned ways = cache.ways();

    if (const auto &part = cache.partition()) {
        if (part->total_ways != ways || part->data_ways < 1 ||
            part->data_ways >= ways) {
            out.push_back(
                {"partition.way-sum", where,
                 msgOf("data_ways=", part->data_ways,
                       " tlb_ways=", part->total_ways - part->data_ways,
                       " vs associativity ", ways)});
        }
    }

    const std::uint64_t scan =
        opts.full ? cache.numSets()
                  : std::min<std::uint64_t>(opts.sample_sets,
                                            cache.numSets());
    for (std::uint64_t s = 0; s < scan; ++s) {
        bool set_bad = false;
        for (unsigned w = 0; w < ways; ++w) {
            const unsigned pos = cache.replStackPosOf(s, w);
            if (pos >= ways) {
                out.push_back(
                    {"replacement.stack", where,
                     msgOf("set ", s, " way ", w, ": stack position ",
                           pos, " >= associativity ", ways)});
                set_bad = true;
                break;
            }
        }
        if (set_bad)
            continue;
        // True LRU is exact: the positions must be a permutation of
        // 0..K-1 (estimating policies legitimately alias positions).
        if (cache.replKind() == ReplacementKind::trueLru) {
            std::vector<bool> seen(ways, false);
            for (unsigned w = 0; w < ways; ++w) {
                const unsigned pos = cache.replStackPosOf(s, w);
                if (seen[pos]) {
                    out.push_back(
                        {"replacement.stack", where,
                         msgOf("set ", s,
                               ": true-LRU ranks are not a "
                               "permutation (position ",
                               pos, " duplicated)")});
                    break;
                }
                seen[pos] = true;
            }
        }
    }

    if (const auto *p = cache.dataProfilerIfEnabled())
        checkProfiler(*p, where + ".data_profiler", out);
    if (const auto *p = cache.tlbProfilerIfEnabled())
        checkProfiler(*p, where + ".tlb_profiler", out);

    if (opts.full) {
        for (const LineType t : {LineType::data, LineType::translation}) {
            const std::uint64_t exact = cache.exactCountOf(t);
            const std::uint64_t scanned = cache.scanCountOf(t);
            if (exact != scanned) {
                out.push_back(
                    {"cache.occupancy", where,
                     msgOf(t == LineType::data ? "data" : "translation",
                           " lines: exact counter ", exact,
                           " != line scan ", scanned)});
            }
        }
    }
}

void
checkProfiler(const StackDistProfiler &profiler,
              const std::string &where, std::vector<Violation> &out)
{
    std::uint64_t sum = 0;
    for (unsigned pos = 0; pos <= profiler.ways(); ++pos)
        sum += profiler.counter(pos);
    if (sum != profiler.total()) {
        out.push_back({"profiler.conservation", where,
                       msgOf("counters sum to ", sum,
                             " but total() is ", profiler.total())});
    }
}

void
checkTlbCoherence(const Tlb &tlb,
                  const std::vector<const VmContext *> &vms,
                  const std::string &where, std::vector<Violation> &out)
{
    const auto by_asid = vmsByAsid(vms);
    tlb.forEachEntry([&](const TlbEntry &e) {
        checkMappedEntry(by_asid, e.asid, e.vpn, e.frame, e.ps,
                         "tlb.coherence", where, out);
    });
}

void
checkPomCoherence(const PomTlb &pom,
                  const std::vector<const VmContext *> &vms,
                  const std::string &where, const CheckOptions &opts,
                  std::vector<Violation> &out)
{
    const auto by_asid = vmsByAsid(vms);
    pom.forEachEntry(
        [&](Asid asid, Vpn vpn, Addr frame, PageSize ps) {
            checkMappedEntry(by_asid, asid, vpn, frame, ps,
                             "pom.coherence", where, out);
        },
        opts.full ? 0 : opts.sample_sets);
}

void
checkCpiAccounting(const CoreModel &core, const std::string &where,
                   std::vector<Violation> &out)
{
    const double elapsed = core.cyclesSinceClearExact();
    const double stacked = core.cpiStack().total();
    if (std::abs(stacked - elapsed) >
        cycleTolerance(stacked, elapsed)) {
        out.push_back({"cpi.accounting", where,
                       msgOf("CPI stack sums to ", stacked,
                             " cycles but ", elapsed, " elapsed")});
    }

    obs::CpiStack ctx_sum;
    for (const obs::CpiStack &stack : core.contextCpiStacks())
        ctx_sum += stack;
    for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
        const double core_v = core.cpiStack().values()[i];
        const double ctx_v = ctx_sum.values()[i];
        if (std::abs(core_v - ctx_v) > cycleTolerance(core_v, ctx_v)) {
            out.push_back(
                {"cpi.accounting", where,
                 msgOf("context stacks sum to ", ctx_v, " for ",
                       obs::cpiComponentName(
                           static_cast<obs::CpiComponent>(i)),
                       " but the core stack holds ", core_v)});
            break;
        }
    }
}

std::vector<Violation>
checkSystem(const System &system, const CheckOptions &opts)
{
    CSALT_PROFILE_SCOPE(checker);
    std::vector<Violation> out;
    const MemorySystem &mem = system.mem();

    for (unsigned c = 0; c < system.numCores(); ++c) {
        checkCache(mem.l1d(c), msgOf("core", c, ".l1d"), opts, out);
        checkCache(mem.l2(c), msgOf("core", c, ".l2"), opts, out);
    }
    checkCache(mem.l3(), "l3", opts, out);

    std::vector<const VmContext *> vms;
    vms.reserve(system.numVms());
    for (unsigned v = 0; v < system.numVms(); ++v)
        vms.push_back(&system.vm(v));

    for (unsigned c = 0; c < system.numCores(); ++c) {
        const TlbHierarchy &tlbs = system.core(c).tlbs();
        checkTlbCoherence(tlbs.l1For(PageSize::size4K), vms,
                          msgOf("core", c, ".l1tlb_4k"), out);
        checkTlbCoherence(tlbs.l1For(PageSize::size2M), vms,
                          msgOf("core", c, ".l1tlb_2m"), out);
        checkTlbCoherence(tlbs.l2(), vms, msgOf("core", c, ".l2tlb"),
                          out);
        checkCpiAccounting(system.core(c), msgOf("core", c), out);
    }

    checkPomCoherence(mem.pom(), vms, "pom", opts, out);
    return out;
}

void
raiseIfViolated(const std::vector<Violation> &violations,
                const std::string &when)
{
    if (violations.empty())
        return;
    for (const Violation &v : violations)
        warn(msgOf("invariant ", v.invariant, " violated in ", v.where,
                   ": ", v.detail));
    const Violation &first = violations.front();
    std::string msg = msgOf(first.invariant, " violated in ",
                            first.where, ": ", first.detail);
    if (violations.size() > 1)
        msg += msgOf(" (+", violations.size() - 1, " more)");
    raise(makeError(
        ErrorKind::invariant, std::move(msg), when,
        "simulator self-check failed: the model state is corrupt "
        "(bug or injected fault); discard this run's results"));
}

} // namespace csalt::check
