/**
 * @file
 * POM-TLB: the very large memory-resident L3 TLB (Ryoo et al., ISCA
 * 2017) that CSALT builds on.
 *
 * The TLB occupies a dedicated physical range in die-stacked DRAM.
 * Each 64B line holds one 4-entry set; a lookup computes the set's
 * line address from the VPN and issues a *cacheable* access to it, so
 * hot translation sets live in the L2/L3 data caches — creating the
 * data-vs-translation contention CSALT partitions against.
 *
 * Both page sizes share the structure: the page size is part of the
 * set hash and the entry tag. A per-core page-size predictor guesses
 * which size to probe first; a misprediction costs a second probe
 * (the POM-TLB paper's prediction mechanism, simplified).
 */

#ifndef CSALT_TLB_POM_TLB_H
#define CSALT_TLB_POM_TLB_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "vm/address_space.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

/** Counters for the POM-TLB. */
struct PomTlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t set_evictions = 0;
};

/** Functional contents + address geometry of the in-memory L3 TLB. */
class PomTlb
{
  public:
    /**
     * @param params geometry (16MB, 4 entries per line-set)
     * @param base_addr physical base of the TLB range
     */
    PomTlb(const PomTlbParams &params, Addr base_addr);

    /** Result of a functional probe of one set. */
    struct Probe
    {
        bool hit = false;
        Mapping mapping;
        Addr line_addr = kInvalidAddr; //!< the set's cacheable address
    };

    /**
     * Probe the set for (asid, gva) at page size @p ps. Promotes the
     * entry within its set on hit. The caller issues the memory
     * access to probe.line_addr itself.
     */
    Probe probe(Asid asid, Addr gva, PageSize ps);

    /** Line address of the set that (asid, gva, ps) maps to. */
    Addr lineAddrOf(Asid asid, Addr gva, PageSize ps) const;

    /** Install a translation (set-local LRU replacement). */
    void insert(Asid asid, Addr gva, const Mapping &mapping);

    const PomTlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = PomTlbStats{}; }

    /** Register functional counters under "<prefix>.*". */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    std::uint64_t numSets() const { return sets_.size(); }
    Addr base() const { return base_; }
    unsigned ways() const { return ways_; }

    /**
     * Visit valid entries as (asid, vpn, frame, ps). @p max_sets
     * limits the scan to the first sets (epoch-boundary sampling —
     * the full structure is millions of entries); 0 scans all.
     */
    template <typename Fn>
    void
    forEachEntry(Fn fn, std::uint64_t max_sets = 0) const
    {
        const std::uint64_t n =
            max_sets && max_sets < sets_.size() ? max_sets
                                                : sets_.size();
        for (std::uint64_t s = 0; s < n; ++s)
            for (const auto &entry : sets_[s].entries)
                if (entry.valid)
                    fn(entry.asid, entry.vpn, entry.frame, entry.ps);
    }

    /**
     * Fault-injection hook: flip a frame bit of one valid entry so
     * the POM-coherence invariant fires. @return false when empty.
     */
    bool corruptEntryForTest(std::uint64_t seed);

  private:
    struct Entry
    {
        Asid asid = 0;
        Vpn vpn = 0;
        Addr frame = kInvalidAddr;
        PageSize ps = PageSize::size4K;
        bool valid = false;
        std::uint8_t age = 0; //!< set-local recency (0 = MRU)
    };

    struct Set
    {
        std::vector<Entry> entries;
    };

    std::uint64_t setIndexOf(Asid asid, Vpn vpn, PageSize ps) const;
    void promote(Set &set, std::size_t way);

    Addr base_;
    unsigned ways_;
    std::vector<Set> sets_;
    PomTlbStats stats_;
};

/**
 * Per-core 2-bit page-size predictor indexed by a hash of the 2MB
 * region. Decides which POM-TLB set (4K or 2M) to probe first.
 */
class PageSizePredictor
{
  public:
    explicit PageSizePredictor(unsigned index_bits = 14);

    /** Predicted page size for @p gva. */
    PageSize predict(Addr gva) const;

    /** Train with the resolved page size. */
    void update(Addr gva, PageSize actual);

    std::uint64_t mispredicts() const { return mispredicts_; }
    std::uint64_t predictions() const { return predictions_; }

  private:
    std::size_t indexOf(Addr gva) const;

    std::vector<std::uint8_t> counters_; //!< >=2 predicts 2M
    std::uint64_t mispredicts_ = 0;
    std::uint64_t predictions_ = 0;
};

} // namespace csalt

#endif // CSALT_TLB_POM_TLB_H
