/**
 * @file
 * POM-TLB: the very large memory-resident L3 TLB (Ryoo et al., ISCA
 * 2017) that CSALT builds on.
 *
 * The TLB occupies a dedicated physical range in die-stacked DRAM.
 * Each 64B line holds one 4-entry set; a lookup computes the set's
 * line address from the VPN and issues a *cacheable* access to it, so
 * hot translation sets live in the L2/L3 data caches — creating the
 * data-vs-translation contention CSALT partitions against.
 *
 * Both page sizes share the structure: the page size is part of the
 * set hash and the entry tag. A per-core page-size predictor guesses
 * which size to probe first; a misprediction costs a second probe
 * (the POM-TLB paper's prediction mechanism, simplified).
 */

#ifndef CSALT_TLB_POM_TLB_H
#define CSALT_TLB_POM_TLB_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "vm/address_space.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/** Counters for the POM-TLB. */
struct PomTlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t set_evictions = 0;
};

/** Functional contents + address geometry of the in-memory L3 TLB. */
class PomTlb
{
  public:
    /**
     * @param params geometry (16MB, 4 entries per line-set)
     * @param base_addr physical base of the TLB range
     */
    PomTlb(const PomTlbParams &params, Addr base_addr);

    /** Result of a functional probe of one set. */
    struct Probe
    {
        bool hit = false;
        Mapping mapping;
        Addr line_addr = kInvalidAddr; //!< the set's cacheable address
    };

    /**
     * Probe the set for (asid, gva) at page size @p ps. Promotes the
     * entry within its set on hit. The caller issues the memory
     * access to probe.line_addr itself.
     */
    Probe probe(Asid asid, Addr gva, PageSize ps);

    /** Line address of the set that (asid, gva, ps) maps to. */
    Addr lineAddrOf(Asid asid, Addr gva, PageSize ps) const;

    /** Install a translation (set-local LRU replacement). */
    void insert(Asid asid, Addr gva, const Mapping &mapping);

    const PomTlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = PomTlbStats{}; }

    /** Register functional counters under "<prefix>.*". */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    std::uint64_t numSets() const { return num_sets_; }
    Addr base() const { return base_; }
    unsigned ways() const { return ways_; }

    /**
     * Visit valid entries as (asid, vpn, frame, ps). @p max_sets
     * limits the scan to the first sets (epoch-boundary sampling —
     * the full structure is millions of entries); 0 scans all.
     */
    template <typename Fn>
    void
    forEachEntry(Fn fn, std::uint64_t max_sets = 0) const
    {
        const std::uint64_t n =
            max_sets && max_sets < num_sets_ ? max_sets : num_sets_;
        for (std::uint64_t i = 0; i < n * ways_; ++i) {
            const Entry &entry = entries_[i];
            if (entry.key & kValidBit)
                fn(asidOf(entry.key), vpnOf(entry.key),
                   entry.data & kFrameMask, psOf(entry.key));
        }
    }

    /**
     * Fault-injection hook: flip a frame bit of one valid entry so
     * the POM-coherence invariant fires. @return false when empty.
     */
    bool corruptEntryForTest(std::uint64_t seed);

    /**
     * Checkpoint: sparse encoding — only occupied entries travel
     * (the structure is millions of mostly-empty packed slots).
     */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    /**
     * 16-byte packed entry so a 4-way set is exactly one 64B host
     * cache line: the structure is tens of MB and every probe is a
     * random access, so lines touched per scan dominate probe cost.
     *
     *   key  = vpn[43:0] | asid << 44 | ps << 60 | valid << 61
     *   data = frame[55:0] | age << 56
     *
     * A probe compares one u64 against the (valid-tagged) wanted
     * key. key == 0 (zero-init) is an invalid entry.
     */
    struct Entry
    {
        std::uint64_t key = 0;
        std::uint64_t data = 0;
    };

    static constexpr std::uint64_t kVpnMask =
        (std::uint64_t{1} << 44) - 1;
    static constexpr std::uint64_t kPsBit = std::uint64_t{1} << 60;
    static constexpr std::uint64_t kValidBit = std::uint64_t{1} << 61;
    static constexpr std::uint64_t kFrameMask =
        (std::uint64_t{1} << 56) - 1;

    static std::uint64_t
    keyOf(Asid asid, Vpn vpn, PageSize ps)
    {
        return (vpn & kVpnMask) | (std::uint64_t{asid} << 44) |
               (ps == PageSize::size2M ? kPsBit : 0) | kValidBit;
    }

    static Asid
    asidOf(std::uint64_t key)
    {
        return static_cast<Asid>(key >> 44);
    }

    static Vpn vpnOf(std::uint64_t key) { return key & kVpnMask; }

    static PageSize
    psOf(std::uint64_t key)
    {
        return (key & kPsBit) ? PageSize::size2M : PageSize::size4K;
    }

    static std::uint8_t
    ageOf(const Entry &e)
    {
        return static_cast<std::uint8_t>(e.data >> 56);
    }

    static void
    setAge(Entry &e, std::uint8_t age)
    {
        e.data = (e.data & kFrameMask) | (std::uint64_t{age} << 56);
    }

    std::uint64_t setIndexOf(Asid asid, Vpn vpn, PageSize ps) const;
    void promote(Entry *set, std::size_t way);

    Addr base_;
    unsigned ways_;
    std::uint64_t num_sets_ = 0;
    /** Flat entry storage indexed by set*ways + way (hot path —
     *  see docs/performance.md). */
    std::vector<Entry> entries_;
    PomTlbStats stats_;
};

/**
 * Per-core 2-bit page-size predictor indexed by a hash of the 2MB
 * region. Decides which POM-TLB set (4K or 2M) to probe first.
 */
class PageSizePredictor
{
  public:
    explicit PageSizePredictor(unsigned index_bits = 14);

    /** Predicted page size for @p gva. */
    PageSize predict(Addr gva) const;

    /** Train with the resolved page size. */
    void update(Addr gva, PageSize actual);

    std::uint64_t mispredicts() const { return mispredicts_; }
    std::uint64_t predictions() const { return predictions_; }

    /** Checkpoint support (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU64(counters_.size());
        for (const std::uint8_t c : counters_)
            s.putU8(c);
        s.putU64(mispredicts_);
        s.putU64(predictions_);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        if (d.getU64() != counters_.size())
            d.fail("PageSizePredictor table-size mismatch");
        for (auto &c : counters_)
            c = d.getU8();
        mispredicts_ = d.getU64();
        predictions_ = d.getU64();
    }

  private:
    std::size_t indexOf(Addr gva) const;

    std::vector<std::uint8_t> counters_; //!< >=2 predicts 2M
    std::uint64_t mispredicts_ = 0;
    std::uint64_t predictions_ = 0;
};

} // namespace csalt

#endif // CSALT_TLB_POM_TLB_H
