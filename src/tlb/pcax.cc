#include "tlb/pcax.h"

#include "obs/stat_registry.h"

namespace csalt
{

namespace
{

/** SplitMix64 finalizer: table index spread for clustered PCs. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

PcaxPredictor::PcaxPredictor(const PcaxParams &params)
    : table_(params.entries)
{
}

std::size_t
PcaxPredictor::indexOf(Asid asid, Addr pc) const
{
    return static_cast<std::size_t>(
        mix64(pc ^ (std::uint64_t{asid} << 48)) &
        (table_.size() - 1));
}

PcaxPredictor::Prediction
PcaxPredictor::predict(Asid asid, Addr pc, Addr gva)
{
    ++stats_.probes;
    const Entry &e = table_[indexOf(asid, pc)];
    if (e.valid && e.asid == asid && e.pc == pc &&
        (gva & ~(pageBytes(e.mapping.ps) - 1)) == e.page_base) {
        ++stats_.hits;
        return {true, e.mapping};
    }
    return {};
}

void
PcaxPredictor::update(Asid asid, Addr pc, Addr gva,
                      const Mapping &mapping)
{
    ++stats_.updates;
    Entry &e = table_[indexOf(asid, pc)];
    e.valid = true;
    e.asid = asid;
    e.pc = pc;
    e.page_base = gva & ~(pageBytes(mapping.ps) - 1);
    e.mapping = mapping;
}

void
PcaxPredictor::registerStats(obs::StatRegistry &reg,
                             const std::string &prefix) const
{
    reg.addCounter(prefix + ".probes", &stats_.probes);
    reg.addCounter(prefix + ".hits", &stats_.hits);
    reg.addCounter(prefix + ".updates", &stats_.updates);
    reg.addGauge(prefix + ".hit_rate",
                 [this] { return stats_.hitRate(); });
}

} // namespace csalt
