#include "tlb/pcax.h"

#include "obs/stat_registry.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

/** SplitMix64 finalizer: table index spread for clustered PCs. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

PcaxPredictor::PcaxPredictor(const PcaxParams &params)
    : table_(params.entries)
{
}

std::size_t
PcaxPredictor::indexOf(Asid asid, Addr pc) const
{
    return static_cast<std::size_t>(
        mix64(pc ^ (std::uint64_t{asid} << 48)) &
        (table_.size() - 1));
}

PcaxPredictor::Prediction
PcaxPredictor::predict(Asid asid, Addr pc, Addr gva)
{
    ++stats_.probes;
    const Entry &e = table_[indexOf(asid, pc)];
    if (e.valid && e.asid == asid && e.pc == pc &&
        (gva & ~(pageBytes(e.mapping.ps) - 1)) == e.page_base) {
        ++stats_.hits;
        return {true, e.mapping};
    }
    return {};
}

void
PcaxPredictor::update(Asid asid, Addr pc, Addr gva,
                      const Mapping &mapping)
{
    ++stats_.updates;
    Entry &e = table_[indexOf(asid, pc)];
    e.valid = true;
    e.asid = asid;
    e.pc = pc;
    e.page_base = gva & ~(pageBytes(mapping.ps) - 1);
    e.mapping = mapping;
}

void
PcaxPredictor::registerStats(obs::StatRegistry &reg,
                             const std::string &prefix) const
{
    reg.addCounter(prefix + ".probes", &stats_.probes);
    reg.addCounter(prefix + ".hits", &stats_.hits);
    reg.addCounter(prefix + ".updates", &stats_.updates);
    reg.addGauge(prefix + ".hit_rate",
                 [this] { return stats_.hitRate(); });
}


void
PcaxPredictor::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(table_.size());
    for (const Entry &e : table_) {
        s.putBool(e.valid);
        s.putU32(e.asid);
        s.putU64(e.pc);
        s.putU64(e.page_base);
        s.putU64(e.mapping.frame);
        s.putU8(static_cast<std::uint8_t>(e.mapping.ps));
    }
    s.putU64(stats_.probes);
    s.putU64(stats_.hits);
    s.putU64(stats_.updates);
}

void
PcaxPredictor::loadState(snapshot::StateDeserializer &d)
{
    if (d.getU64() != table_.size())
        d.fail("PCAX table-size mismatch");
    for (Entry &e : table_) {
        e.valid = d.getBool();
        const std::uint32_t asid = d.getU32();
        if (asid > 0xffff)
            d.fail("PCAX entry ASID out of range");
        e.asid = static_cast<Asid>(asid);
        e.pc = d.getU64();
        e.page_base = d.getU64();
        e.mapping.frame = d.getU64();
        const std::uint8_t ps = d.getU8();
        if (ps > 1)
            d.fail("PCAX entry has invalid page-size code");
        e.mapping.ps = static_cast<PageSize>(ps);
    }
    stats_.probes = d.getU64();
    stats_.hits = d.getU64();
    stats_.updates = d.getU64();
}

} // namespace csalt
