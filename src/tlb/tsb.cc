#include "tlb/tsb.h"

#include <algorithm>

#include "common/log.h"
#include "obs/stat_registry.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{
constexpr std::uint64_t kSlotBytes = 16;
} // namespace

Tsb::Tsb(const TsbParams &params, Addr base_addr, unsigned max_asids)
    : params_(params), base_(base_addr), max_asids_(max_asids)
{
    const auto n = params_.entries_per_context;
    if (n == 0 || (n & (n - 1)) != 0)
        fatal("TSB entries_per_context must be a nonzero power of two");
}

std::uint64_t
Tsb::bytesPerAsid(const TsbParams &params)
{
    return 2 * params.entries_per_context * kSlotBytes;
}

Tsb::ContextArrays &
Tsb::arraysOf(Asid asid)
{
    if (asid >= max_asids_)
        panic(msgOf("TSB: asid ", asid, " beyond reserved arrays"));
    auto it = contexts_.find(asid);
    if (it == contexts_.end()) {
        ContextArrays arrays;
        arrays.guest.resize(params_.entries_per_context);
        arrays.host.resize(params_.entries_per_context);
        it = contexts_.emplace(asid, std::move(arrays)).first;
    }
    return it->second;
}

Addr
Tsb::guestBase(Asid asid) const
{
    return base_ + asid * bytesPerAsid(params_);
}

Addr
Tsb::hostBase(Asid asid) const
{
    return guestBase(asid) + params_.entries_per_context * kSlotBytes;
}

Tsb::LookupPlan
Tsb::lookup(VmContext &ctx, Addr gva)
{
    ContextArrays &arrays = arraysOf(ctx.asid());
    const std::uint64_t mask = params_.entries_per_context - 1;
    const Vpn vpn = gva >> kPageShift;
    const std::uint64_t gidx = vpn & mask;

    LookupPlan plan;
    plan.probe_addrs[0] = guestBase(ctx.asid()) + gidx * kSlotBytes;
    plan.num_probes = 1;
    ++stats_.probes;

    const Slot &g = arrays.guest[gidx];
    if (!g.valid || g.tag != vpn) {
        ++stats_.misses;
        return plan;
    }

    if (!ctx.virtualized()) {
        // Native: the guest dimension already holds the final frame.
        plan.hit = true;
        plan.mapping = {g.value, g.ps};
        ++stats_.hits;
        return plan;
    }

    // Virtualized: chase the guest-physical address through the host
    // TSB (second dependent cacheable probe).
    const Vpn gpa_vpn = g.value >> kPageShift;
    const std::uint64_t hidx = gpa_vpn & mask;
    plan.probe_addrs[1] = hostBase(ctx.asid()) + hidx * kSlotBytes;
    plan.num_probes = 2;
    ++stats_.probes;

    const Slot &h = arrays.host[hidx];
    if (!h.valid || h.tag != gpa_vpn) {
        ++stats_.misses;
        return plan;
    }

    plan.hit = true;
    plan.mapping = {h.value, h.ps};
    ++stats_.hits;
    return plan;
}

void
Tsb::insert(VmContext &ctx, Addr gva, const Mapping &mapping)
{
    ContextArrays &arrays = arraysOf(ctx.asid());
    const std::uint64_t mask = params_.entries_per_context - 1;
    const Vpn vpn = gva >> kPageShift;

    if (!ctx.virtualized()) {
        // Store the true page frame base + size: the returned Mapping
        // must be usable for any offset within the (possibly 2MB)
        // page.
        Slot &g = arrays.guest[vpn & mask];
        g = {vpn, true, mapping.frame, mapping.ps};
        return;
    }

    const Addr gpa_page = ctx.guestPhysOf(gva & ~(kPageSize - 1));
    Slot &g = arrays.guest[vpn & mask];
    g = {vpn, true, gpa_page, mapping.ps};

    const Vpn gpa_vpn = gpa_page >> kPageShift;
    Slot &h = arrays.host[gpa_vpn & mask];
    h = {gpa_vpn, true, mapping.frame, mapping.ps};
}

void
Tsb::registerStats(obs::StatRegistry &reg,
                   const std::string &prefix) const
{
    reg.addCounter(prefix + ".hits", &stats_.hits);
    reg.addCounter(prefix + ".misses", &stats_.misses);
    reg.addCounter(prefix + ".probes", &stats_.probes);
}


void
Tsb::saveState(snapshot::StateSerializer &s) const
{
    std::vector<Asid> asids;
    asids.reserve(contexts_.size());
    for (const auto &kv : contexts_)
        asids.push_back(kv.first);
    std::sort(asids.begin(), asids.end());

    const auto putArray = [&s](const std::vector<Slot> &arr) {
        s.putU64(arr.size());
        for (const Slot &slot : arr) {
            s.putU64(slot.tag);
            s.putBool(slot.valid);
            s.putU64(slot.value);
            s.putU8(static_cast<std::uint8_t>(slot.ps));
        }
    };

    s.putU64(asids.size());
    for (const Asid asid : asids) {
        const ContextArrays &arrays = contexts_.at(asid);
        s.putU32(asid);
        putArray(arrays.guest);
        putArray(arrays.host);
    }
    s.putU64(stats_.hits);
    s.putU64(stats_.misses);
    s.putU64(stats_.probes);
}

void
Tsb::loadState(snapshot::StateDeserializer &d)
{
    const auto getArray = [&d, this](std::vector<Slot> &arr) {
        const std::uint64_t n = d.getU64();
        if (n != params_.entries_per_context)
            d.fail("TSB context array size mismatch");
        arr.resize(n);
        for (Slot &slot : arr) {
            slot.tag = d.getU64();
            slot.valid = d.getBool();
            slot.value = d.getU64();
            const std::uint8_t ps = d.getU8();
            if (ps > 1)
                d.fail("TSB slot has invalid page-size code");
            slot.ps = static_cast<PageSize>(ps);
        }
    };

    contexts_.clear();
    const std::uint64_t num_contexts = d.getU64();
    if (num_contexts > max_asids_)
        d.fail("TSB context count exceeds max_asids");
    for (std::uint64_t i = 0; i < num_contexts; ++i) {
        const std::uint32_t asid = d.getU32();
        if (asid > 0xffff)
            d.fail("TSB context ASID out of range");
        ContextArrays &arrays = contexts_[static_cast<Asid>(asid)];
        getArray(arrays.guest);
        getArray(arrays.host);
    }
    stats_.hits = d.getU64();
    stats_.misses = d.getU64();
    stats_.probes = d.getU64();
}

} // namespace csalt
