/**
 * @file
 * PCAX: a PC-indexed translation predictor probed alongside the L2
 * TLB (PC-based address-translation prediction; cf. PCAX related
 * work in PAPERS.md).
 *
 * Observation: the static memory instruction is a strong predictor
 * of the page it touches next — pointer-chasing sites revisit the
 * same structures, streaming sites walk a region. A small
 * direct-mapped table keyed by a hash of the access PC remembers the
 * last translation each site produced; on an L2 TLB miss the table
 * is probed in parallel with the miss handling, and a correct
 * prediction bypasses the POM-TLB/walk machinery at a fixed small
 * cost.
 *
 * The model is conservative and never mis-translates: a prediction
 * only counts as a hit when the stored (asid, page) exactly covers
 * the accessed address, and mappings are immutable in this
 * simulator, so a covering entry is always correct. A wrong or
 * missing prediction falls through to the conventional walk path and
 * trains the table with the walk result.
 */

#ifndef CSALT_TLB_PCAX_H
#define CSALT_TLB_PCAX_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "vm/address_space.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/** Counters for one PCAX predictor (one per core). */
struct PcaxStats
{
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    std::uint64_t updates = 0;

    double
    hitRate() const
    {
        return probes ? static_cast<double>(hits) / probes : 0.0;
    }
};

/** Direct-mapped PC -> last-translation prediction table. */
class PcaxPredictor
{
  public:
    explicit PcaxPredictor(const PcaxParams &params);

    /** Result of one prediction probe. */
    struct Prediction
    {
        bool hit = false;
        Mapping mapping;
    };

    /**
     * Probe the slot hashed from (@p asid, @p pc). Hits only when
     * the stored page covers @p gva for the same address space.
     */
    Prediction predict(Asid asid, Addr pc, Addr gva);

    /** Train the slot with a resolved translation. */
    void update(Asid asid, Addr pc, Addr gva, const Mapping &mapping);

    const PcaxStats &stats() const { return stats_; }
    void clearStats() { stats_ = PcaxStats{}; }

    /** Register counters under "<prefix>.*". */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint: full table (field-wise) plus counters. */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    struct Entry
    {
        bool valid = false;
        Asid asid = 0;
        Addr pc = 0;        //!< full PC as the tag
        Addr page_base = 0; //!< gva base of the covered page
        Mapping mapping;
    };

    std::size_t indexOf(Asid asid, Addr pc) const;

    std::vector<Entry> table_;
    PcaxStats stats_;
};

} // namespace csalt

#endif // CSALT_TLB_PCAX_H
