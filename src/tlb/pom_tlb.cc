#include "tlb/pom_tlb.h"

#include "common/log.h"
#include "obs/stat_registry.h"

namespace csalt
{

PomTlb::PomTlb(const PomTlbParams &params, Addr base_addr)
    : base_(base_addr), ways_(params.ways)
{
    const std::uint64_t nsets = params.size_bytes / kLineSize;
    if (nsets == 0 || (nsets & (nsets - 1)) != 0)
        fatal("POM-TLB set count must be a nonzero power of two");
    sets_.resize(nsets);
    for (auto &set : sets_)
        set.entries.resize(ways_);
}

std::uint64_t
PomTlb::setIndexOf(Asid asid, Vpn vpn, PageSize ps) const
{
    // Keep VPN-sequential sets adjacent so walks over contiguous
    // pages enjoy DRAM row-buffer locality; offset by ASID and page
    // size so streams do not collide set-for-set.
    const std::uint64_t salt =
        std::uint64_t{asid} * 0x2545f491'4f6cdd1dULL +
        (ps == PageSize::size2M ? 0x9e3779b9'7f4a7c15ULL : 0);
    return (vpn + salt) & (sets_.size() - 1);
}

Addr
PomTlb::lineAddrOf(Asid asid, Addr gva, PageSize ps) const
{
    const Vpn vpn = gva >> pageShift(ps);
    return base_ + setIndexOf(asid, vpn, ps) * kLineSize;
}

void
PomTlb::promote(Set &set, std::size_t way)
{
    // Fresh fills enter with age 255 (see insert) so every resident
    // entry ages; ages are capped at ways-1 to keep the recency
    // ordering stable under saturation.
    const std::uint8_t old = set.entries[way].age;
    const auto cap = static_cast<std::uint8_t>(ways_ - 1);
    for (auto &e : set.entries)
        if (e.valid && e.age < old && e.age < cap)
            ++e.age;
    set.entries[way].age = 0;
}

PomTlb::Probe
PomTlb::probe(Asid asid, Addr gva, PageSize ps)
{
    const Vpn vpn = gva >> pageShift(ps);
    Set &set = sets_[setIndexOf(asid, vpn, ps)];

    Probe res;
    res.line_addr = lineAddrOf(asid, gva, ps);
    for (std::size_t w = 0; w < set.entries.size(); ++w) {
        const Entry &e = set.entries[w];
        if (e.valid && e.asid == asid && e.vpn == vpn && e.ps == ps) {
            res.hit = true;
            res.mapping = {e.frame, e.ps};
            promote(set, w);
            ++stats_.hits;
            return res;
        }
    }
    ++stats_.misses;
    return res;
}

void
PomTlb::insert(Asid asid, Addr gva, const Mapping &mapping)
{
    const Vpn vpn = gva >> pageShift(mapping.ps);
    Set &set = sets_[setIndexOf(asid, vpn, mapping.ps)];
    ++stats_.inserts;

    // Update in place if present.
    for (std::size_t w = 0; w < set.entries.size(); ++w) {
        Entry &e = set.entries[w];
        if (e.valid && e.asid == asid && e.vpn == vpn &&
            e.ps == mapping.ps) {
            e.frame = mapping.frame;
            promote(set, w);
            return;
        }
    }

    // Invalid way first, else evict the set-local LRU.
    std::size_t victim = set.entries.size();
    for (std::size_t w = 0; w < set.entries.size(); ++w) {
        if (!set.entries[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim == set.entries.size()) {
        std::uint8_t oldest = 0;
        victim = 0;
        for (std::size_t w = 0; w < set.entries.size(); ++w) {
            if (set.entries[w].age >= oldest) {
                oldest = set.entries[w].age;
                victim = w;
            }
        }
        ++stats_.set_evictions;
    }

    Entry &e = set.entries[victim];
    e.asid = asid;
    e.vpn = vpn;
    e.frame = mapping.frame;
    e.ps = mapping.ps;
    e.valid = true;
    e.age = 255; // enters from "infinitely old": ages the residents
    promote(set, victim);
}

PageSizePredictor::PageSizePredictor(unsigned index_bits)
    : counters_(std::size_t{1} << index_bits, 0)
{
}

std::size_t
PageSizePredictor::indexOf(Addr gva) const
{
    std::uint64_t x = gva >> kHugePageShift;
    x ^= x >> 17;
    x *= 0xed5ad4bbU;
    x ^= x >> 11;
    return x & (counters_.size() - 1);
}

PageSize
PageSizePredictor::predict(Addr gva) const
{
    return counters_[indexOf(gva)] >= 2 ? PageSize::size2M
                                        : PageSize::size4K;
}

void
PageSizePredictor::update(Addr gva, PageSize actual)
{
    ++predictions_;
    if (predict(gva) != actual)
        ++mispredicts_;
    auto &c = counters_[indexOf(gva)];
    if (actual == PageSize::size2M) {
        if (c < 3)
            ++c;
    } else if (c > 0) {
        --c;
    }
}

bool
PomTlb::corruptEntryForTest(std::uint64_t seed)
{
    const std::uint64_t start = seed % sets_.size();
    for (std::uint64_t i = 0; i < sets_.size(); ++i) {
        auto &set = sets_[(start + i) % sets_.size()];
        for (auto &e : set.entries) {
            if (!e.valid)
                continue;
            e.frame ^= Addr{1} << (12 + seed % 8);
            return true;
        }
    }
    return false;
}

void
PomTlb::registerStats(obs::StatRegistry &reg,
                      const std::string &prefix) const
{
    reg.addCounter(prefix + ".hits", &stats_.hits);
    reg.addCounter(prefix + ".misses", &stats_.misses);
    reg.addCounter(prefix + ".inserts", &stats_.inserts);
    reg.addCounter(prefix + ".set_evictions", &stats_.set_evictions);
}

} // namespace csalt
