#include "tlb/pom_tlb.h"

#include <algorithm>

#include "snapshot/state_io.h"

#include "common/log.h"
#include "obs/stat_registry.h"

namespace csalt
{

PomTlb::PomTlb(const PomTlbParams &params, Addr base_addr)
    : base_(base_addr), ways_(params.ways)
{
    const std::uint64_t nsets = params.size_bytes / kLineSize;
    if (nsets == 0 || (nsets & (nsets - 1)) != 0)
        fatal("POM-TLB set count must be a nonzero power of two");
    num_sets_ = nsets;
    entries_.resize(nsets * ways_);
}

std::uint64_t
PomTlb::setIndexOf(Asid asid, Vpn vpn, PageSize ps) const
{
    // Keep VPN-sequential sets adjacent so walks over contiguous
    // pages enjoy DRAM row-buffer locality; offset by ASID and page
    // size so streams do not collide set-for-set.
    const std::uint64_t salt =
        std::uint64_t{asid} * 0x2545f491'4f6cdd1dULL +
        (ps == PageSize::size2M ? 0x9e3779b9'7f4a7c15ULL : 0);
    return (vpn + salt) & (num_sets_ - 1);
}

Addr
PomTlb::lineAddrOf(Asid asid, Addr gva, PageSize ps) const
{
    const Vpn vpn = gva >> pageShift(ps);
    return base_ + setIndexOf(asid, vpn, ps) * kLineSize;
}

void
PomTlb::promote(Entry *set, std::size_t way)
{
    // Fresh fills enter with age 255 (see insert) so every resident
    // entry ages; ages are capped at ways-1 to keep the recency
    // ordering stable under saturation.
    const std::uint8_t old = ageOf(set[way]);
    const auto cap = static_cast<std::uint8_t>(ways_ - 1);
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = set[w];
        const std::uint8_t age = ageOf(e);
        if ((e.key & kValidBit) && age < old && age < cap)
            setAge(e, static_cast<std::uint8_t>(age + 1));
    }
    setAge(set[way], 0);
}

PomTlb::Probe
PomTlb::probe(Asid asid, Addr gva, PageSize ps)
{
    const Vpn vpn = gva >> pageShift(ps);
    Entry *set = &entries_[setIndexOf(asid, vpn, ps) * ways_];
    const std::uint64_t want = keyOf(asid, vpn, ps);

    Probe res;
    res.line_addr = lineAddrOf(asid, gva, ps);
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].key == want) {
            res.hit = true;
            res.mapping = {set[w].data & kFrameMask, ps};
            promote(set, w);
            ++stats_.hits;
            return res;
        }
    }
    ++stats_.misses;
    return res;
}

void
PomTlb::insert(Asid asid, Addr gva, const Mapping &mapping)
{
    const Vpn vpn = gva >> pageShift(mapping.ps);
    Entry *set = &entries_[setIndexOf(asid, vpn, mapping.ps) * ways_];
    const std::uint64_t want = keyOf(asid, vpn, mapping.ps);
    ++stats_.inserts;

    // Update in place if present.
    for (std::size_t w = 0; w < ways_; ++w) {
        Entry &e = set[w];
        if (e.key == want) {
            e.data = (mapping.frame & kFrameMask) |
                     (e.data & ~kFrameMask);
            promote(set, w);
            return;
        }
    }

    // Invalid way first, else evict the set-local LRU.
    std::size_t victim = ways_;
    for (std::size_t w = 0; w < ways_; ++w) {
        if (!(set[w].key & kValidBit)) {
            victim = w;
            break;
        }
    }
    if (victim == ways_) {
        std::uint8_t oldest = 0;
        victim = 0;
        for (std::size_t w = 0; w < ways_; ++w) {
            if (ageOf(set[w]) >= oldest) {
                oldest = ageOf(set[w]);
                victim = w;
            }
        }
        ++stats_.set_evictions;
    }

    Entry &e = set[victim];
    e.key = want;
    // Enters from "infinitely old" (255): ages the residents.
    e.data = (mapping.frame & kFrameMask) | (std::uint64_t{255} << 56);
    promote(set, victim);
}

PageSizePredictor::PageSizePredictor(unsigned index_bits)
    : counters_(std::size_t{1} << index_bits, 0)
{
}

std::size_t
PageSizePredictor::indexOf(Addr gva) const
{
    std::uint64_t x = gva >> kHugePageShift;
    x ^= x >> 17;
    x *= 0xed5ad4bbU;
    x ^= x >> 11;
    return x & (counters_.size() - 1);
}

PageSize
PageSizePredictor::predict(Addr gva) const
{
    return counters_[indexOf(gva)] >= 2 ? PageSize::size2M
                                        : PageSize::size4K;
}

void
PageSizePredictor::update(Addr gva, PageSize actual)
{
    ++predictions_;
    if (predict(gva) != actual)
        ++mispredicts_;
    auto &c = counters_[indexOf(gva)];
    if (actual == PageSize::size2M) {
        if (c < 3)
            ++c;
    } else if (c > 0) {
        --c;
    }
}

bool
PomTlb::corruptEntryForTest(std::uint64_t seed)
{
    const std::uint64_t start = seed % num_sets_;
    for (std::uint64_t i = 0; i < num_sets_; ++i) {
        const std::uint64_t si = (start + i) % num_sets_;
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[si * ways_ + w];
            if (!(e.key & kValidBit))
                continue;
            e.data ^= Addr{1} << (12 + seed % 8);
            return true;
        }
    }
    return false;
}

void
PomTlb::registerStats(obs::StatRegistry &reg,
                      const std::string &prefix) const
{
    reg.addCounter(prefix + ".hits", &stats_.hits);
    reg.addCounter(prefix + ".misses", &stats_.misses);
    reg.addCounter(prefix + ".inserts", &stats_.inserts);
    reg.addCounter(prefix + ".set_evictions", &stats_.set_evictions);
}

void
PomTlb::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(num_sets_);
    s.putU32(ways_);
    std::uint64_t occupied = 0;
    for (const Entry &e : entries_)
        occupied += e.key != 0;
    s.putU64(occupied);
    for (std::uint64_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].key) {
            s.putU64(i);
            s.putU64(entries_[i].key);
            s.putU64(entries_[i].data);
        }
    }
    s.putU64(stats_.hits);
    s.putU64(stats_.misses);
    s.putU64(stats_.inserts);
    s.putU64(stats_.set_evictions);
}

void
PomTlb::loadState(snapshot::StateDeserializer &d)
{
    if (d.getU64() != num_sets_ || d.getU32() != ways_)
        d.fail("POM-TLB geometry mismatch");
    std::fill(entries_.begin(), entries_.end(), Entry{});
    const std::uint64_t occupied = d.getU64();
    for (std::uint64_t i = 0; i < occupied; ++i) {
        const std::uint64_t idx = d.getU64();
        if (idx >= entries_.size())
            d.fail("POM-TLB entry index out of range");
        entries_[idx].key = d.getU64();
        entries_[idx].data = d.getU64();
    }
    stats_.hits = d.getU64();
    stats_.misses = d.getU64();
    stats_.inserts = d.getU64();
    stats_.set_evictions = d.getU64();
}

} // namespace csalt
