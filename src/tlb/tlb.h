/**
 * @file
 * Set-associative, ASID-tagged TLB.
 *
 * Entries survive context switches (no flush); the switched-in
 * context simply competes for capacity, which is the pressure the
 * paper quantifies in Fig. 1. One structure serves either a single
 * page size (L1 TLBs) or both sizes (unified L2 TLB) — entries are
 * tagged with their page size and indexed by the VPN of that size.
 */

#ifndef CSALT_TLB_TLB_H
#define CSALT_TLB_TLB_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/repl_flat.h"
#include "common/config.h"
#include "common/types.h"
#include "vm/address_space.h"

namespace csalt
{

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/** One TLB entry: (asid, vpn, page size) -> host frame. */
struct TlbEntry
{
    Asid asid = 0;
    Vpn vpn = 0;
    Addr frame = kInvalidAddr;
    PageSize ps = PageSize::size4K;
    bool valid = false;
};

/** Hit/miss counters of one TLB. */
struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }
};

/** A single TLB level. */
class Tlb
{
  public:
    Tlb(std::string name, const TlbParams &params);

    /**
     * Probe for (asid, vpn, ps); promotes on hit. Counts one access.
     */
    std::optional<TlbEntry> lookup(Asid asid, Vpn vpn, PageSize ps);

    /** Probe without stats or promotion (used for double probes). */
    bool contains(Asid asid, Vpn vpn, PageSize ps) const;

    /**
     * Single-scan probe: promotes and counts a hit exactly like
     * lookup(), but records nothing on a miss — the hierarchy
     * accounts misses once per architectural access across its
     * split/dual-size probes (see countMiss). Equivalent to
     * contains() followed by lookup(), at one set scan instead of
     * two. The pointer is invalidated by the next insert or flush.
     */
    const TlbEntry *
    findAndTouch(Asid asid, Vpn vpn, PageSize ps)
    {
        const std::uint64_t si = setIndexOf(vpn);
        TlbEntry *set = &entries_[si * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            const TlbEntry &e = set[w];
            if (e.valid && e.asid == asid && e.vpn == vpn &&
                e.ps == ps) {
                repl_.touch(si, w);
                ++stats_.hits;
                return &set[w];
            }
        }
        return nullptr;
    }

    /**
     * Record one miss. Dual-size probes use contains() + lookup() so
     * a single architectural access never counts two misses; the
     * hierarchy calls this exactly once when both probes fail.
     */
    void countMiss() { ++stats_.misses; }

    /** Insert (LRU replacement within the set). */
    void insert(const TlbEntry &entry);

    /** Drop all entries of one address space. */
    void flushAsid(Asid asid);

    /** Drop everything. */
    void flushAll();

    const TlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = TlbStats{}; }

    Cycles latency() const { return latency_; }
    unsigned ways() const { return ways_; }
    std::uint64_t numSets() const { return num_sets_; }
    const std::string &name() const { return name_; }

    /** Visit every valid entry (paranoid-mode coherence checks). */
    template <typename Fn>
    void
    forEachEntry(Fn fn) const
    {
        for (const TlbEntry &entry : entries_)
            if (entry.valid)
                fn(entry);
    }

    /**
     * Fault-injection hook: flip a frame bit of one valid entry (the
     * seed picks which), desyncing it from its address space so the
     * TLB-coherence invariant fires. @return false when empty.
     */
    bool corruptEntryForTest(std::uint64_t seed);

    /** Checkpoint: entry array (field-wise), recency bytes, stats. */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    std::uint64_t setIndexOf(Vpn vpn) const
    {
        return vpn & (num_sets_ - 1);
    }

    std::string name_;
    unsigned ways_;
    Cycles latency_;
    std::uint64_t num_sets_ = 0;
    /** Flat entry storage indexed by set*ways + way (hot path —
     *  see docs/performance.md). */
    std::vector<TlbEntry> entries_;
    ReplBlock repl_; //!< always trueLru
    TlbStats stats_;
};

} // namespace csalt

#endif // CSALT_TLB_TLB_H
