/**
 * @file
 * Translation Storage Buffer baseline (Oracle/Sun UltraSPARC; paper
 * §5.2 / Fig. 13).
 *
 * A TSB is a software-managed, memory-resident, direct-mapped
 * translation array whose entries are cacheable. In a virtualized
 * system resolving gVA -> hPA requires *two dependent* lookups: the
 * guest TSB (gVA -> gPA) then the host TSB (gPA -> hPA) — this extra
 * cacheable traffic, with no TLB-aware cache management, is why the
 * TSB underperforms POM-TLB/CSALT in the paper.
 *
 * Simplification vs. Solaris: one unified array per dimension indexed
 * by the 4KB VPN (real TSBs are split per page size); 2MB pages
 * occupy one slot per touched 4KB chunk.
 */

#ifndef CSALT_TLB_TSB_H
#define CSALT_TLB_TSB_H

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "vm/address_space.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/** Counters for the TSB. */
struct TsbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t probes = 0; //!< memory accesses issued
};

/** The memory-resident translation arrays for all contexts. */
class Tsb
{
  public:
    /**
     * @param params capacity per context
     * @param base_addr physical base of the TSB arrays; the caller
     *        reserves max_asids * bytesPerAsid(params) bytes
     * @param max_asids number of address spaces with arrays
     */
    Tsb(const TsbParams &params, Addr base_addr, unsigned max_asids);

    /** Bytes of TSB storage one ASID needs (both dimensions). */
    static std::uint64_t bytesPerAsid(const TsbParams &params);

    /** Functional outcome + the cacheable probe addresses to issue. */
    struct LookupPlan
    {
        bool hit = false;
        Mapping mapping;
        unsigned num_probes = 0;
        std::array<Addr, 2> probe_addrs = {kInvalidAddr, kInvalidAddr};
    };

    /**
     * Plan the TSB lookup for @p gva: guest probe, then (virtualized,
     * guest hit) host probe. The caller issues the memory accesses.
     */
    LookupPlan lookup(VmContext &ctx, Addr gva);

    /** Fill both dimensions after a page walk resolved @p gva. */
    void insert(VmContext &ctx, Addr gva, const Mapping &mapping);

    const TsbStats &stats() const { return stats_; }
    void clearStats() { stats_ = TsbStats{}; }

    /** Register probe/hit counters under "<prefix>.*". */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Checkpoint: per-context arrays serialized in ascending-ASID
     * order so the byte stream is independent of unordered_map
     * iteration order.
     */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    struct Slot
    {
        Vpn tag = 0;
        bool valid = false;
        Addr value = kInvalidAddr; //!< gPA (guest dim) or frame (host)
        PageSize ps = PageSize::size4K;
    };

    struct ContextArrays
    {
        std::vector<Slot> guest;
        std::vector<Slot> host;
    };

    ContextArrays &arraysOf(Asid asid);
    Addr guestBase(Asid asid) const;
    Addr hostBase(Asid asid) const;

    TsbParams params_;
    Addr base_;
    unsigned max_asids_;
    std::unordered_map<Asid, ContextArrays> contexts_;
    TsbStats stats_;
};

} // namespace csalt

#endif // CSALT_TLB_TSB_H
