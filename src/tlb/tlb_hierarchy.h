/**
 * @file
 * Per-core L1 (split 4K/2M) + unified L2 TLB datapath.
 *
 * Latency model: an L1 TLB hit is fully pipelined (0 added cycles);
 * an L1 miss that hits the L2 TLB charges the L2 latency; a full miss
 * charges the L2 latency and hands off to the translation backend
 * (POM-TLB / TSB / page walker).
 */

#ifndef CSALT_TLB_TLB_HIERARCHY_H
#define CSALT_TLB_TLB_HIERARCHY_H

#include <optional>

#include "common/config.h"
#include "tlb/tlb.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

/** Outcome of the on-chip TLB lookup for one reference. */
struct TlbLookupResult
{
    bool l1_hit = false;
    bool l2_hit = false;
    Cycles latency = 0;
    Mapping mapping; //!< valid when l1_hit || l2_hit
};

/** One core's TLB hierarchy. */
class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const SystemParams &params);

    /**
     * Probe L1 then L2 for @p gva in address space @p asid.
     * Page size is unknown a priori, so both sizes are probed.
     */
    /** @p now: requestor time, used only to stamp sampled spans. */
    TlbLookupResult lookup(Asid asid, Addr gva, Cycles now = 0);

    /** Install a resolved translation into L2 and the right L1. */
    void fill(Asid asid, Addr gva, const Mapping &mapping);

    Tlb &l1For(PageSize ps)
    {
        return ps == PageSize::size4K ? l1_4k_ : l1_2m_;
    }
    const Tlb &l1For(PageSize ps) const
    {
        return ps == PageSize::size4K ? l1_4k_ : l1_2m_;
    }
    Tlb &l2() { return l2_; }
    const Tlb &l2() const { return l2_; }

    /** Sum of L1 stats across both page sizes. */
    TlbStats l1Stats() const;

    void clearStats();

    /**
     * Register hit/miss counters of every level under
     * "<prefix>.l1tlb_4k.*", ".l1tlb_2m.*" and ".l2tlb.*".
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint: delegate to all three levels. */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    Tlb l1_4k_;
    Tlb l1_2m_;
    Tlb l2_;
};

} // namespace csalt

#endif // CSALT_TLB_TLB_HIERARCHY_H
