#include "tlb/tlb.h"

#include "common/log.h"
#include "snapshot/state_io.h"

namespace csalt
{

Tlb::Tlb(std::string name, const TlbParams &params)
    : name_(std::move(name)), ways_(params.ways),
      latency_(params.latency)
{
    const std::uint64_t nsets = params.entries / params.ways;
    if (nsets == 0 || (nsets & (nsets - 1)) != 0)
        fatal(msgOf(name_, ": TLB sets must be a nonzero power of two"));
    num_sets_ = nsets;
    entries_.resize(nsets * ways_);
    repl_ = ReplBlock(ReplacementKind::trueLru, nsets, ways_);
}

std::optional<TlbEntry>
Tlb::lookup(Asid asid, Vpn vpn, PageSize ps)
{
    const std::uint64_t si = setIndexOf(vpn);
    TlbEntry *set = &entries_[si * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        const TlbEntry &e = set[w];
        if (e.valid && e.asid == asid && e.vpn == vpn && e.ps == ps) {
            repl_.touch(si, w);
            ++stats_.hits;
            return e;
        }
    }
    ++stats_.misses;
    return std::nullopt;
}

bool
Tlb::contains(Asid asid, Vpn vpn, PageSize ps) const
{
    const TlbEntry *set = &entries_[setIndexOf(vpn) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        const TlbEntry &e = set[w];
        if (e.valid && e.asid == asid && e.vpn == vpn && e.ps == ps)
            return true;
    }
    return false;
}

void
Tlb::insert(const TlbEntry &entry)
{
    const std::uint64_t si = setIndexOf(entry.vpn);
    TlbEntry *set = &entries_[si * ways_];

    // Update in place when already present (e.g. refilled by another
    // core's thread of the same VM).
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry &e = set[w];
        if (e.valid && e.asid == entry.asid && e.vpn == entry.vpn &&
            e.ps == entry.ps) {
            e = entry;
            e.valid = true;
            repl_.touch(si, w);
            return;
        }
    }

    unsigned victim = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim == ways_)
        victim = repl_.victimIn(si, 0, ways_ - 1);
    set[victim] = entry;
    set[victim].valid = true;
    repl_.touch(si, victim);
}

void
Tlb::flushAsid(Asid asid)
{
    for (TlbEntry &e : entries_)
        if (e.valid && e.asid == asid)
            e.valid = false;
}

void
Tlb::flushAll()
{
    for (TlbEntry &e : entries_)
        e.valid = false;
}

bool
Tlb::corruptEntryForTest(std::uint64_t seed)
{
    const std::uint64_t start = seed % num_sets_;
    for (std::uint64_t i = 0; i < num_sets_; ++i) {
        const std::uint64_t si = (start + i) % num_sets_;
        for (unsigned w = 0; w < ways_; ++w) {
            TlbEntry &e = entries_[si * ways_ + w];
            if (!e.valid)
                continue;
            // Flip one frame bit above the page offset: the entry
            // still looks structurally fine but disagrees with the
            // address space's functional map.
            e.frame ^= Addr{1} << (12 + seed % 8);
            return true;
        }
    }
    return false;
}

void
Tlb::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(num_sets_);
    s.putU32(ways_);
    for (const TlbEntry &e : entries_) {
        s.putU32(e.asid);
        s.putU64(e.vpn);
        s.putU64(e.frame);
        s.putU8(static_cast<std::uint8_t>(e.ps));
        s.putBool(e.valid);
    }
    repl_.saveState(s);
    s.putU64(stats_.hits);
    s.putU64(stats_.misses);
}

void
Tlb::loadState(snapshot::StateDeserializer &d)
{
    if (d.getU64() != num_sets_ || d.getU32() != ways_)
        d.fail(msgOf("TLB '", name_, "' geometry mismatch"));
    for (TlbEntry &e : entries_) {
        const std::uint32_t asid = d.getU32();
        if (asid > 0xffff)
            d.fail(msgOf("TLB '", name_, "' ASID out of range"));
        e.asid = static_cast<Asid>(asid);
        e.vpn = d.getU64();
        e.frame = d.getU64();
        const std::uint8_t ps = d.getU8();
        if (ps > 1)
            d.fail(msgOf("TLB '", name_, "' bad page-size tag"));
        e.ps = static_cast<PageSize>(ps);
        e.valid = d.getBool();
    }
    repl_.loadState(d);
    stats_.hits = d.getU64();
    stats_.misses = d.getU64();
}

} // namespace csalt
