#include "tlb/tlb.h"

#include "common/log.h"

namespace csalt
{

Tlb::Tlb(std::string name, const TlbParams &params)
    : name_(std::move(name)), ways_(params.ways),
      latency_(params.latency)
{
    const std::uint64_t nsets = params.entries / params.ways;
    if (nsets == 0 || (nsets & (nsets - 1)) != 0)
        fatal(msgOf(name_, ": TLB sets must be a nonzero power of two"));
    sets_.resize(nsets);
    for (auto &set : sets_) {
        set.entries.resize(ways_);
        set.repl = makeSetReplacement(ReplacementKind::trueLru, ways_);
    }
}

std::optional<TlbEntry>
Tlb::lookup(Asid asid, Vpn vpn, PageSize ps)
{
    Set &set = sets_[setIndexOf(vpn)];
    for (unsigned w = 0; w < ways_; ++w) {
        const TlbEntry &e = set.entries[w];
        if (e.valid && e.asid == asid && e.vpn == vpn && e.ps == ps) {
            set.repl->touch(w);
            ++stats_.hits;
            return e;
        }
    }
    ++stats_.misses;
    return std::nullopt;
}

bool
Tlb::contains(Asid asid, Vpn vpn, PageSize ps) const
{
    const Set &set = sets_[setIndexOf(vpn)];
    for (const TlbEntry &e : set.entries)
        if (e.valid && e.asid == asid && e.vpn == vpn && e.ps == ps)
            return true;
    return false;
}

void
Tlb::insert(const TlbEntry &entry)
{
    Set &set = sets_[setIndexOf(entry.vpn)];

    // Update in place when already present (e.g. refilled by another
    // core's thread of the same VM).
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry &e = set.entries[w];
        if (e.valid && e.asid == entry.asid && e.vpn == entry.vpn &&
            e.ps == entry.ps) {
            e = entry;
            e.valid = true;
            set.repl->touch(w);
            return;
        }
    }

    unsigned victim = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!set.entries[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim == ways_)
        victim = set.repl->victimIn(0, ways_ - 1);
    set.entries[victim] = entry;
    set.entries[victim].valid = true;
    set.repl->touch(victim);
}

void
Tlb::flushAsid(Asid asid)
{
    for (auto &set : sets_)
        for (auto &e : set.entries)
            if (e.valid && e.asid == asid)
                e.valid = false;
}

void
Tlb::flushAll()
{
    for (auto &set : sets_)
        for (auto &e : set.entries)
            e.valid = false;
}

bool
Tlb::corruptEntryForTest(std::uint64_t seed)
{
    const std::uint64_t start = seed % sets_.size();
    for (std::uint64_t i = 0; i < sets_.size(); ++i) {
        auto &set = sets_[(start + i) % sets_.size()];
        for (auto &e : set.entries) {
            if (!e.valid)
                continue;
            // Flip one frame bit above the page offset: the entry
            // still looks structurally fine but disagrees with the
            // address space's functional map.
            e.frame ^= Addr{1} << (12 + seed % 8);
            return true;
        }
    }
    return false;
}

} // namespace csalt
