#include "tlb/tlb_hierarchy.h"

#include "snapshot/state_io.h"

#include "obs/phase_profiler.h"
#include "obs/span_trace.h"
#include "obs/stat_registry.h"

namespace csalt
{

TlbHierarchy::TlbHierarchy(const SystemParams &params)
    : l1_4k_("L1TLB-4K", params.l1tlb_4k),
      l1_2m_("L1TLB-2M", params.l1tlb_2m), l2_("L2TLB", params.l2tlb)
{
}

TlbLookupResult
TlbHierarchy::lookup(Asid asid, Addr gva, Cycles now)
{
    CSALT_PROFILE_SCOPE(tlb_probe);
    obs::SpanBuilder *sb = obs::spanBuilder();
    TlbLookupResult res;
    const Vpn vpn4k = gva >> kPageShift;
    const Vpn vpn2m = gva >> kHugePageShift;

    // Split L1s are probed in parallel on real hardware; model a
    // single pipelined L1 access (hit = no added latency). The
    // findAndTouch() pattern ensures exactly one hit or one miss
    // is recorded per architectural access.
    const int s1 =
        sb ? sb->open(obs::SpanKind::tlb_l1, now, 1) : -1;
    if (const TlbEntry *e =
            l1_4k_.findAndTouch(asid, vpn4k, PageSize::size4K)) {
        res.l1_hit = true;
        res.mapping = {e->frame, e->ps};
        if (sb)
            sb->close(s1, now, obs::kSpanFlagHit);
        return res;
    }
    if (const TlbEntry *e =
            l1_2m_.findAndTouch(asid, vpn2m, PageSize::size2M)) {
        res.l1_hit = true;
        res.mapping = {e->frame, e->ps};
        if (sb)
            sb->close(s1, now, obs::kSpanFlagHit);
        return res;
    }
    l1_4k_.countMiss();
    if (sb)
        sb->close(s1, now); // pipelined probe: 0-cycle miss

    // Unified L2: one access latency covers the (parallel) dual-size
    // probe; exactly one miss is recorded when both sizes fail.
    res.latency += l2_.latency();
    const int s2 =
        sb ? sb->open(obs::SpanKind::tlb_l2, now, 2) : -1;
    if (const TlbEntry *e =
            l2_.findAndTouch(asid, vpn4k, PageSize::size4K)) {
        res.l2_hit = true;
        res.mapping = {e->frame, e->ps};
        fill(asid, gva, res.mapping); // refill L1
        if (sb)
            sb->close(s2, now + res.latency, obs::kSpanFlagHit);
        return res;
    }
    if (const TlbEntry *e =
            l2_.findAndTouch(asid, vpn2m, PageSize::size2M)) {
        res.l2_hit = true;
        res.mapping = {e->frame, e->ps};
        fill(asid, gva, res.mapping);
        if (sb)
            sb->close(s2, now + res.latency, obs::kSpanFlagHit);
        return res;
    }
    l2_.countMiss();
    if (sb)
        sb->close(s2, now + res.latency);
    return res;
}

void
TlbHierarchy::fill(Asid asid, Addr gva, const Mapping &mapping)
{
    TlbEntry entry;
    entry.asid = asid;
    entry.frame = mapping.frame;
    entry.ps = mapping.ps;
    entry.valid = true;
    entry.vpn = gva >> pageShift(mapping.ps);

    l1For(mapping.ps).insert(entry);
    l2_.insert(entry);
}

TlbStats
TlbHierarchy::l1Stats() const
{
    TlbStats s;
    s.hits = l1_4k_.stats().hits + l1_2m_.stats().hits;
    s.misses = l1_4k_.stats().misses + l1_2m_.stats().misses;
    return s;
}

void
TlbHierarchy::clearStats()
{
    l1_4k_.clearStats();
    l1_2m_.clearStats();
    l2_.clearStats();
}

void
TlbHierarchy::registerStats(obs::StatRegistry &reg,
                            const std::string &prefix) const
{
    const auto level = [&reg](const std::string &p, const Tlb &tlb) {
        reg.addCounter(p + ".hits", &tlb.stats().hits);
        reg.addCounter(p + ".misses", &tlb.stats().misses);
    };
    level(prefix + ".l1tlb_4k", l1_4k_);
    level(prefix + ".l1tlb_2m", l1_2m_);
    level(prefix + ".l2tlb", l2_);
}

void
TlbHierarchy::saveState(snapshot::StateSerializer &s) const
{
    l1_4k_.saveState(s);
    l1_2m_.saveState(s);
    l2_.saveState(s);
}

void
TlbHierarchy::loadState(snapshot::StateDeserializer &d)
{
    l1_4k_.loadState(d);
    l1_2m_.loadState(d);
    l2_.loadState(d);
}

} // namespace csalt
