#include "cache/stack_dist.h"

#include "common/log.h"

namespace csalt
{

StackDistProfiler::StackDistProfiler(unsigned ways)
    : counters_(ways + 1, 0)
{
    if (ways == 0)
        panic("StackDistProfiler needs ways > 0");
}

void
StackDistProfiler::recordHit(unsigned pos)
{
    if (pos >= ways())
        panic(msgOf("stack position ", pos, " out of range"));
    ++counters_[pos];
    ++total_;
}

void
StackDistProfiler::recordMiss()
{
    ++counters_[ways()];
    ++total_;
}

std::uint64_t
StackDistProfiler::hitsUpTo(unsigned n) const
{
    std::uint64_t sum = 0;
    const unsigned limit = n < ways() ? n : ways();
    for (unsigned i = 0; i < limit; ++i)
        sum += counters_[i];
    return sum;
}

void
StackDistProfiler::reset()
{
    std::fill(counters_.begin(), counters_.end(), 0);
    total_ = 0;
}

void
StackDistProfiler::decay()
{
    total_ = 0;
    for (auto &c : counters_) {
        c >>= 1;
        total_ += c;
    }
}

void
StackDistProfiler::setCounters(const std::vector<std::uint64_t> &values)
{
    if (values.size() != counters_.size())
        panic("setCounters: size mismatch");
    counters_ = values;
    total_ = 0;
    for (auto c : counters_)
        total_ += c;
}

ShadowTagArray::ShadowTagArray(std::uint64_t sets, unsigned ways,
                               ReplacementKind kind, unsigned sample_shift)
    : ways_(ways), sample_mask_((std::uint64_t{1} << sample_shift) - 1),
      sample_shift_(sample_shift), profiler_(ways)
{
    const std::uint64_t sampled_sets =
        (sets + sample_mask_) >> sample_shift;
    tags_.assign(sampled_sets * ways, kInvalidAddr);
    repl_ = ReplBlock(kind, sampled_sets, ways);
}

void
ShadowTagArray::access(std::uint64_t set, Addr tag)
{
    if (!sampled(set))
        return;
    const std::uint64_t si = sampledIndexOf(set);
    Addr *tags = &tags_[si * ways_];

    // Look for the tag; note its estimated stack position on hit.
    unsigned hit_way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == tag) {
            hit_way = w;
            break;
        }
    }

    if (hit_way != ways_) {
        profiler_.recordHit(repl_.stackPosOf(si, hit_way));
        repl_.touch(si, hit_way);
        return;
    }

    profiler_.recordMiss();
    // Fill: prefer an invalid way, else the policy's victim.
    unsigned fill_way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == kInvalidAddr) {
            fill_way = w;
            break;
        }
    }
    if (fill_way == ways_)
        fill_way = repl_.victimIn(si, 0, ways_ - 1);
    tags[fill_way] = tag;
    repl_.touch(si, fill_way);
}

} // namespace csalt
