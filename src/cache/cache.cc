#include "cache/cache.h"

#include "common/log.h"
#include "obs/stat_registry.h"
#include "snapshot/state_io.h"

namespace csalt
{

Cache::Cache(const CacheParams &params)
    : name_(params.name), ways_(params.ways), latency_(params.latency),
      repl_kind_(params.repl)
{
    const std::uint64_t nsets = params.numSets();
    if (nsets == 0 || (nsets & (nsets - 1)) != 0)
        fatal(msgOf(name_, ": set count must be a nonzero power of two"));
    num_sets_ = nsets;
    tags_.assign(nsets * ways_, kInvalidAddr);
    meta_.assign(nsets * ways_, 0);
    repl_ = ReplBlock(params.repl, nsets, ways_);
    if (params.insertion == InsertionKind::dip)
        enableDip();
    if (params.repl == ReplacementKind::rrip)
        drrip_ = std::make_unique<DrripController>(nsets);
}

CacheAccessResult
Cache::access(Addr addr, AccessType type, LineType ltype)
{
    const Addr line_addr = addr >> kLineShift;
    const std::uint64_t si = setIndexOf(line_addr);
    const std::uint64_t base = si * ways_;

    // Shadow profilers observe every access of their type, regardless
    // of the current partition (they model "what if this type had the
    // whole cache").
    if (data_shadow_) {
        if (ltype == LineType::data)
            data_shadow_->access(si, line_addr);
        else
            tlb_shadow_->access(si, line_addr);
    }

    // Lookup scans all ways (partition affects replacement only).
    // Empty ways hold kInvalidAddr, which no real line address
    // equals, so the tag compare alone decides the hit.
    const Addr *tags = &tags_[base];
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == line_addr) {
            ++stats_.hits[static_cast<int>(ltype)];
            repl_.touch(si, w);
            if (type == AccessType::write)
                meta_[base + w] |= kDirtyBit;
            return {true, {}};
        }
    }

    ++stats_.misses[static_cast<int>(ltype)];
    if (dip_)
        dip_->onMiss(si);
    if (drrip_)
        drrip_->onMiss(si);

    // Fill path: pick a victim way.
    const unsigned w = chooseVictimWay(si, ltype);
    const std::uint64_t li = base + w;

    CacheAccessResult result;
    result.hit = false;
    if (meta_[li] & kValidBit) {
        result.victim = {true, tags_[li] << kLineShift,
                         (meta_[li] & kDirtyBit) != 0, typeOf(meta_[li])};
        ++stats_.evictions;
        if (meta_[li] & kDirtyBit)
            ++stats_.writebacks;
        --type_count_[static_cast<int>(typeOf(meta_[li]))];
    }

    tags_[li] = line_addr;
    meta_[li] = static_cast<std::uint8_t>(
        kValidBit | (type == AccessType::write ? kDirtyBit : 0) |
        (ltype == LineType::translation ? kTypeBit : 0));
    ++type_count_[static_cast<int>(ltype)];

    if (drrip_) {
        // RRIP fills set an insertion RRPV rather than promoting.
        repl_.insertAt(si, w, drrip_->insertLong(si));
    } else {
        const bool promote = dip_ ? dip_->insertAtMru(si) : true;
        if (promote)
            repl_.touch(si, w);
    }

    return result;
}

unsigned
Cache::chooseVictimWay(std::uint64_t set, LineType ltype)
{
    unsigned lo = 0;
    unsigned hi = ways_ - 1;
    if (partition_) {
        if (ltype == LineType::data) {
            lo = partition_->dataLo();
            hi = partition_->dataHi();
        } else {
            lo = partition_->tlbLo();
            hi = partition_->tlbHi();
        }
    }

    const Addr *tags = &tags_[set * ways_];
    for (unsigned w = lo; w <= hi; ++w)
        if (tags[w] == kInvalidAddr)
            return w;
    return repl_.victimIn(set, lo, hi);
}

bool
Cache::probe(Addr addr) const
{
    const Addr line_addr = addr >> kLineShift;
    const Addr *tags = &tags_[setIndexOf(line_addr) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (tags[w] == line_addr)
            return true;
    return false;
}

bool
Cache::touch(Addr addr, LineType ltype)
{
    const Addr line_addr = addr >> kLineShift;
    const std::uint64_t si = setIndexOf(line_addr);
    const Addr *tags = &tags_[si * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == line_addr) {
            ++stats_.hits[static_cast<int>(ltype)];
            repl_.touch(si, w);
            return true;
        }
    }
    ++stats_.misses[static_cast<int>(ltype)];
    return false;
}

bool
Cache::markDirtyIfPresent(Addr addr)
{
    const Addr line_addr = addr >> kLineShift;
    const std::uint64_t si = setIndexOf(line_addr);
    const std::uint64_t base = si * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags_[base + w] == line_addr) {
            meta_[base + w] |= kDirtyBit;
            repl_.touch(si, w);
            return true;
        }
    }
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr line_addr = addr >> kLineShift;
    const std::uint64_t base = setIndexOf(line_addr) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags_[base + w] == line_addr) {
            --type_count_[static_cast<int>(typeOf(meta_[base + w]))];
            tags_[base + w] = kInvalidAddr;
            meta_[base + w] = 0;
            return true;
        }
    }
    return false;
}

void
Cache::invalidateAll()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidAddr);
    std::fill(meta_.begin(), meta_.end(), std::uint8_t{0});
    repl_.reset();
    type_count_[0] = 0;
    type_count_[1] = 0;
}

void
Cache::enablePartitioning(unsigned data_ways)
{
    partition_ = WayPartition{ways_, data_ways};
    setDataWays(data_ways);
}

void
Cache::setDataWays(unsigned data_ways)
{
    if (!partition_)
        panic(msgOf(name_, ": setDataWays without partitioning"));
    if (data_ways == 0 || data_ways >= ways_)
        panic(msgOf(name_, ": data_ways ", data_ways,
                    " must leave >=1 way per type"));
    partition_->data_ways = data_ways;
}

unsigned
Cache::dataWays() const
{
    return partition_ ? partition_->data_ways : ways_;
}

void
Cache::enableProfiling(unsigned sample_shift)
{
    data_shadow_ = std::make_unique<ShadowTagArray>(
        numSets(), ways_, repl_kind_, sample_shift);
    tlb_shadow_ = std::make_unique<ShadowTagArray>(
        numSets(), ways_, repl_kind_, sample_shift);
}

StackDistProfiler &
Cache::dataProfiler()
{
    if (!data_shadow_)
        panic(msgOf(name_, ": profiling not enabled"));
    return data_shadow_->profiler();
}

StackDistProfiler &
Cache::tlbProfiler()
{
    if (!tlb_shadow_)
        panic(msgOf(name_, ": profiling not enabled"));
    return tlb_shadow_->profiler();
}

void
Cache::enableDip(std::uint64_t seed)
{
    dip_ = std::make_unique<DipController>(numSets(), seed);
}

double
Cache::occupancyOf(LineType t) const
{
    const double total =
        static_cast<double>(numSets()) * static_cast<double>(ways_);
    return static_cast<double>(type_count_[static_cast<int>(t)]) / total;
}

std::uint64_t
Cache::scanCountOf(LineType t) const
{
    std::uint64_t count = 0;
    for (const std::uint8_t m : meta_)
        if ((m & kValidBit) && typeOf(m) == t)
            ++count;
    return count;
}

void
Cache::registerStats(obs::StatRegistry &reg,
                     const std::string &prefix) const
{
    constexpr int kData = static_cast<int>(LineType::data);
    constexpr int kXlat = static_cast<int>(LineType::translation);
    reg.addCounter(prefix + ".hit_data", &stats_.hits[kData]);
    reg.addCounter(prefix + ".hit_xlat", &stats_.hits[kXlat]);
    reg.addCounter(prefix + ".miss_data", &stats_.misses[kData]);
    reg.addCounter(prefix + ".miss_xlat", &stats_.misses[kXlat]);
    reg.addCounter(prefix + ".evictions", &stats_.evictions);
    reg.addCounter(prefix + ".writebacks", &stats_.writebacks);
    reg.addGauge(prefix + ".xlat_occupancy", [this] {
        return occupancyOf(LineType::translation);
    });
}

void
Cache::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(num_sets_);
    s.putU32(ways_);
    s.putU64(tags_.size());
    for (const Addr tag : tags_)
        s.putU64(tag);
    for (const std::uint8_t m : meta_)
        s.putU8(m);
    repl_.saveState(s);

    s.putBool(partition_.has_value());
    if (partition_) {
        s.putU32(partition_->total_ways);
        s.putU32(partition_->data_ways);
    }
    s.putBool(data_shadow_ != nullptr);
    if (data_shadow_) {
        data_shadow_->saveState(s);
        tlb_shadow_->saveState(s);
    }
    s.putBool(dip_ != nullptr);
    if (dip_)
        dip_->saveState(s);
    s.putBool(drrip_ != nullptr);
    if (drrip_)
        drrip_->saveState(s);

    for (int t = 0; t < 2; ++t) {
        s.putU64(stats_.hits[t]);
        s.putU64(stats_.misses[t]);
    }
    s.putU64(stats_.evictions);
    s.putU64(stats_.writebacks);
    s.putU64(type_count_[0]);
    s.putU64(type_count_[1]);
}

void
Cache::loadState(snapshot::StateDeserializer &d)
{
    // Geometry and enabled features are derived from the (already
    // config-CRC-verified) scheme; a mismatch here means the snapshot
    // was taken under a different build and must not half-apply.
    if (d.getU64() != num_sets_ || d.getU32() != ways_)
        d.fail(msgOf("cache '", name_, "' geometry mismatch"));
    if (d.getU64() != tags_.size())
        d.fail(msgOf("cache '", name_, "' line-array size mismatch"));
    for (auto &tag : tags_)
        tag = d.getU64();
    for (auto &m : meta_)
        m = d.getU8();
    repl_.loadState(d);

    if (d.getBool() != partition_.has_value())
        d.fail(msgOf("cache '", name_, "' partition presence mismatch"));
    if (partition_) {
        partition_->total_ways = d.getU32();
        partition_->data_ways = d.getU32();
        if (partition_->total_ways != ways_ ||
            partition_->data_ways > ways_)
            d.fail(msgOf("cache '", name_, "' partition out of range"));
    }
    if (d.getBool() != (data_shadow_ != nullptr))
        d.fail(msgOf("cache '", name_, "' profiler presence mismatch"));
    if (data_shadow_) {
        data_shadow_->loadState(d);
        tlb_shadow_->loadState(d);
    }
    if (d.getBool() != (dip_ != nullptr))
        d.fail(msgOf("cache '", name_, "' DIP presence mismatch"));
    if (dip_)
        dip_->loadState(d);
    if (d.getBool() != (drrip_ != nullptr))
        d.fail(msgOf("cache '", name_, "' DRRIP presence mismatch"));
    if (drrip_)
        drrip_->loadState(d);

    for (int t = 0; t < 2; ++t) {
        stats_.hits[t] = d.getU64();
        stats_.misses[t] = d.getU64();
    }
    stats_.evictions = d.getU64();
    stats_.writebacks = d.getU64();
    type_count_[0] = d.getU64();
    type_count_[1] = d.getU64();
}

} // namespace csalt
