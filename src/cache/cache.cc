#include "cache/cache.h"

#include "common/log.h"
#include "obs/stat_registry.h"

namespace csalt
{

Cache::Cache(const CacheParams &params)
    : name_(params.name), ways_(params.ways), latency_(params.latency),
      repl_kind_(params.repl)
{
    const std::uint64_t nsets = params.numSets();
    if (nsets == 0 || (nsets & (nsets - 1)) != 0)
        fatal(msgOf(name_, ": set count must be a nonzero power of two"));
    sets_.resize(nsets);
    for (auto &set : sets_) {
        set.lines.resize(ways_);
        set.repl = makeSetReplacement(params.repl, ways_);
    }
    if (params.insertion == InsertionKind::dip)
        enableDip();
    if (params.repl == ReplacementKind::rrip)
        drrip_ = std::make_unique<DrripController>(nsets);
}

CacheAccessResult
Cache::access(Addr addr, AccessType type, LineType ltype)
{
    const Addr line_addr = addr >> kLineShift;
    const std::uint64_t si = setIndexOf(line_addr);
    Set &set = sets_[si];

    // Shadow profilers observe every access of their type, regardless
    // of the current partition (they model "what if this type had the
    // whole cache").
    if (data_shadow_) {
        if (ltype == LineType::data)
            data_shadow_->access(si, line_addr);
        else
            tlb_shadow_->access(si, line_addr);
    }

    // Lookup scans all ways (partition affects replacement only).
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = set.lines[w];
        if (line.valid && line.tag == line_addr) {
            ++stats_.hits[static_cast<int>(ltype)];
            set.repl->touch(w);
            if (type == AccessType::write)
                line.dirty = true;
            return {true, {}};
        }
    }

    ++stats_.misses[static_cast<int>(ltype)];
    if (dip_)
        dip_->onMiss(si);
    if (drrip_)
        drrip_->onMiss(si);

    // Fill path: pick a victim way.
    const unsigned w = chooseVictimWay(set, ltype);
    Line &line = set.lines[w];

    CacheAccessResult result;
    result.hit = false;
    if (line.valid) {
        result.victim = {true, line.tag << kLineShift, line.dirty,
                         line.type};
        ++stats_.evictions;
        if (line.dirty)
            ++stats_.writebacks;
        --type_count_[static_cast<int>(line.type)];
    }

    line.tag = line_addr;
    line.valid = true;
    line.dirty = (type == AccessType::write);
    line.type = ltype;
    ++type_count_[static_cast<int>(ltype)];

    if (drrip_) {
        // RRIP fills set an insertion RRPV rather than promoting.
        static_cast<RripSet &>(*set.repl).insertAt(
            w, drrip_->insertLong(si));
    } else {
        const bool promote = dip_ ? dip_->insertAtMru(si) : true;
        if (promote)
            set.repl->touch(w);
    }

    return result;
}

unsigned
Cache::chooseVictimWay(Set &set, LineType ltype) const
{
    unsigned lo = 0;
    unsigned hi = ways_ - 1;
    if (partition_) {
        if (ltype == LineType::data) {
            lo = partition_->dataLo();
            hi = partition_->dataHi();
        } else {
            lo = partition_->tlbLo();
            hi = partition_->tlbHi();
        }
    }

    for (unsigned w = lo; w <= hi; ++w)
        if (!set.lines[w].valid)
            return w;
    return set.repl->victimIn(lo, hi);
}

bool
Cache::probe(Addr addr) const
{
    const Addr line_addr = addr >> kLineShift;
    const Set &set = sets_[setIndexOf(line_addr)];
    for (const auto &line : set.lines)
        if (line.valid && line.tag == line_addr)
            return true;
    return false;
}

bool
Cache::markDirtyIfPresent(Addr addr)
{
    const Addr line_addr = addr >> kLineShift;
    Set &set = sets_[setIndexOf(line_addr)];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = set.lines[w];
        if (line.valid && line.tag == line_addr) {
            line.dirty = true;
            set.repl->touch(w);
            return true;
        }
    }
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr line_addr = addr >> kLineShift;
    Set &set = sets_[setIndexOf(line_addr)];
    for (auto &line : set.lines) {
        if (line.valid && line.tag == line_addr) {
            --type_count_[static_cast<int>(line.type)];
            line = Line{};
            return true;
        }
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (auto &set : sets_) {
        for (auto &line : set.lines)
            line = Line{};
        set.repl = makeSetReplacement(repl_kind_, ways_);
    }
    type_count_[0] = 0;
    type_count_[1] = 0;
}

void
Cache::enablePartitioning(unsigned data_ways)
{
    partition_ = WayPartition{ways_, data_ways};
    setDataWays(data_ways);
}

void
Cache::setDataWays(unsigned data_ways)
{
    if (!partition_)
        panic(msgOf(name_, ": setDataWays without partitioning"));
    if (data_ways == 0 || data_ways >= ways_)
        panic(msgOf(name_, ": data_ways ", data_ways,
                    " must leave >=1 way per type"));
    partition_->data_ways = data_ways;
}

unsigned
Cache::dataWays() const
{
    return partition_ ? partition_->data_ways : ways_;
}

void
Cache::enableProfiling(unsigned sample_shift)
{
    data_shadow_ = std::make_unique<ShadowTagArray>(
        numSets(), ways_, repl_kind_, sample_shift);
    tlb_shadow_ = std::make_unique<ShadowTagArray>(
        numSets(), ways_, repl_kind_, sample_shift);
}

StackDistProfiler &
Cache::dataProfiler()
{
    if (!data_shadow_)
        panic(msgOf(name_, ": profiling not enabled"));
    return data_shadow_->profiler();
}

StackDistProfiler &
Cache::tlbProfiler()
{
    if (!tlb_shadow_)
        panic(msgOf(name_, ": profiling not enabled"));
    return tlb_shadow_->profiler();
}

void
Cache::enableDip(std::uint64_t seed)
{
    dip_ = std::make_unique<DipController>(numSets(), seed);
}

double
Cache::occupancyOf(LineType t) const
{
    const double total =
        static_cast<double>(numSets()) * static_cast<double>(ways_);
    return static_cast<double>(type_count_[static_cast<int>(t)]) / total;
}

std::uint64_t
Cache::scanCountOf(LineType t) const
{
    std::uint64_t count = 0;
    for (const auto &set : sets_)
        for (const auto &line : set.lines)
            if (line.valid && line.type == t)
                ++count;
    return count;
}

void
Cache::registerStats(obs::StatRegistry &reg,
                     const std::string &prefix) const
{
    constexpr int kData = static_cast<int>(LineType::data);
    constexpr int kXlat = static_cast<int>(LineType::translation);
    reg.addCounter(prefix + ".hit_data", &stats_.hits[kData]);
    reg.addCounter(prefix + ".hit_xlat", &stats_.hits[kXlat]);
    reg.addCounter(prefix + ".miss_data", &stats_.misses[kData]);
    reg.addCounter(prefix + ".miss_xlat", &stats_.misses[kXlat]);
    reg.addCounter(prefix + ".evictions", &stats_.evictions);
    reg.addCounter(prefix + ".writebacks", &stats_.writebacks);
    reg.addGauge(prefix + ".xlat_occupancy", [this] {
        return occupancyOf(LineType::translation);
    });
}

} // namespace csalt
