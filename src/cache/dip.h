/**
 * @file
 * Dynamic Insertion Policy (Qureshi et al., ISCA 2007) — the prior-
 * work cache-management baseline of paper Fig. 13, implemented on top
 * of the POM-TLB exactly as the authors did for fairness.
 */

#ifndef CSALT_CACHE_DIP_H
#define CSALT_CACHE_DIP_H

#include <cstdint>

#include "common/rng.h"

namespace csalt
{

/**
 * Set-dueling DIP controller for one cache.
 *
 * A few leader sets always use MRU insertion (classic LRU), another
 * few always use bimodal insertion (BIP: insert at LRU, promote to
 * MRU with probability 1/32). A saturating PSEL counter, incremented
 * on LRU-leader misses and decremented on BIP-leader misses, selects
 * the policy followed by all other sets.
 */
class DipController
{
  public:
    /**
     * @param sets number of sets in the governed cache
     * @param seed RNG seed for the bimodal coin
     */
    explicit DipController(std::uint64_t sets, std::uint64_t seed = 7);

    /**
     * Decide the insertion position for a fill into @p set.
     * @return true to insert at MRU, false to insert at LRU.
     */
    bool insertAtMru(std::uint64_t set);

    /** Report a miss in @p set (updates PSEL for leader sets). */
    void onMiss(std::uint64_t set);

    /** Current PSEL value (for tests). */
    std::uint32_t psel() const { return psel_; }

    /** True when follower sets currently use BIP. */
    bool followersUseBip() const { return psel_ >= kPselThreshold; }

    /** Checkpoint: PSEL counter + the bimodal coin's RNG stream. */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU32(psel_);
        rng_.saveState(s);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        psel_ = d.getU32();
        if (psel_ > kPselMax)
            d.fail("DIP PSEL out of range");
        rng_.loadState(d);
    }

  private:
    enum class SetRole { lruLeader, bipLeader, follower };

    SetRole roleOf(std::uint64_t set) const;

    static constexpr std::uint32_t kPselMax = 1023;
    static constexpr std::uint32_t kPselThreshold = 512;
    static constexpr std::uint64_t kLeaderStride = 64;
    static constexpr double kBipEpsilon = 1.0 / 32.0;

    std::uint64_t sets_;
    std::uint32_t psel_ = kPselThreshold;
    Rng rng_;
};

} // namespace csalt

#endif // CSALT_CACHE_DIP_H
