/**
 * @file
 * Per-set replacement state: true LRU, NRU and binary-tree pseudo-LRU.
 *
 * CSALT needs two things from a replacement policy beyond victim
 * selection: (1) victim choice restricted to a *way range* so the
 * partition controller can confine data and translation entries to
 * their allocated ways (paper §3.1, "Cache Replacement"), and (2) an
 * estimated LRU *stack position* for every access so the Mattson
 * profilers keep working under pseudo-LRU policies (paper §3.4,
 * following Kedzierski et al., IPDPS 2010).
 */

#ifndef CSALT_CACHE_REPLACEMENT_H
#define CSALT_CACHE_REPLACEMENT_H

#include <memory>
#include <vector>

#include "common/config.h"

namespace csalt
{

/**
 * Replacement state for a single cache set.
 *
 * Way indices are 0..K-1. Victim selection considers only ways inside
 * [lo, hi] (inclusive); invalid ways are preferred by the cache before
 * this policy is consulted.
 */
class SetReplacement
{
  public:
    virtual ~SetReplacement() = default;

    /** Promote a way on hit or fill. */
    virtual void touch(unsigned way) = 0;

    /**
     * Pick the eviction victim among ways in [lo, hi].
     * @pre lo <= hi < K.
     */
    virtual unsigned victimIn(unsigned lo, unsigned hi) const = 0;

    /**
     * Estimated LRU stack position of a way (0 = MRU, K-1 = LRU).
     * Exact for true LRU; an estimate for NRU / BT-PLRU.
     */
    virtual unsigned stackPosOf(unsigned way) const = 0;

    /** Associativity this state covers. */
    virtual unsigned ways() const = 0;

    /**
     * Fault-injection hook: corrupt this set's metadata so the
     * paranoid-mode stack-integrity invariant fires (tests prove the
     * checker works). Default: no-op for policies without a
     * corruptible encoding.
     */
    virtual void corruptForTest() {}
};

/** Exact recency-ordered LRU. */
class TrueLruSet : public SetReplacement
{
  public:
    explicit TrueLruSet(unsigned ways);

    void touch(unsigned way) override;
    unsigned victimIn(unsigned lo, unsigned hi) const override;
    unsigned stackPosOf(unsigned way) const override;
    unsigned ways() const override
    {
        return static_cast<unsigned>(rank_.size());
    }

    /** Duplicate a rank: the permutation invariant must fire. */
    void corruptForTest() override;

  private:
    /** rank_[way] = current stack position (0 = MRU). */
    std::vector<unsigned> rank_;
};

/** Not-recently-used: one reference bit per way. */
class NruSet : public SetReplacement
{
  public:
    explicit NruSet(unsigned ways);

    void touch(unsigned way) override;
    unsigned victimIn(unsigned lo, unsigned hi) const override;
    unsigned stackPosOf(unsigned way) const override;
    unsigned ways() const override
    {
        return static_cast<unsigned>(ref_.size());
    }

  private:
    std::vector<bool> ref_;
};

/**
 * Binary-tree pseudo-LRU over a power-of-two associativity.
 *
 * Stack positions are estimated from the way's Identifier: the binary
 * number formed root-to-leaf by whether each tree bit points toward
 * (0) or away from (1) the way (Kedzierski et al.).
 */
class BtPlruSet : public SetReplacement
{
  public:
    explicit BtPlruSet(unsigned ways);

    void touch(unsigned way) override;
    unsigned victimIn(unsigned lo, unsigned hi) const override;
    unsigned stackPosOf(unsigned way) const override;
    unsigned ways() const override { return ways_; }

  private:
    unsigned ways_;
    unsigned levels_;
    /** Heap-indexed tree bits; bits_[1] is the root. bit=0 -> left. */
    std::vector<bool> bits_;
};

/** Factory for one set's replacement state. */
std::unique_ptr<SetReplacement> makeSetReplacement(ReplacementKind kind,
                                                   unsigned ways);

} // namespace csalt

#endif // CSALT_CACHE_REPLACEMENT_H
