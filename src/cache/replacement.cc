#include "cache/replacement.h"

#include <algorithm>
#include <numeric>

#include "cache/rrip.h"
#include "common/log.h"

namespace csalt
{

// ---------------------------------------------------------------- TrueLru

TrueLruSet::TrueLruSet(unsigned ways) : rank_(ways)
{
    std::iota(rank_.begin(), rank_.end(), 0u);
}

void
TrueLruSet::touch(unsigned way)
{
    const unsigned old = rank_[way];
    for (auto &r : rank_)
        if (r < old)
            ++r;
    rank_[way] = 0;
}

unsigned
TrueLruSet::victimIn(unsigned lo, unsigned hi) const
{
    unsigned victim = lo;
    unsigned worst = rank_[lo];
    for (unsigned w = lo + 1; w <= hi; ++w) {
        if (rank_[w] > worst) {
            worst = rank_[w];
            victim = w;
        }
    }
    return victim;
}

unsigned
TrueLruSet::stackPosOf(unsigned way) const
{
    return rank_[way];
}

void
TrueLruSet::corruptForTest()
{
    // Duplicate one rank: rank_ stops being a permutation, which the
    // stack-integrity checker rejects for true LRU.
    if (rank_.size() >= 2)
        rank_[0] = rank_[1];
}

// ------------------------------------------------------------------- NRU

NruSet::NruSet(unsigned ways) : ref_(ways, false) {}

void
NruSet::touch(unsigned way)
{
    ref_[way] = true;
    if (std::all_of(ref_.begin(), ref_.end(), [](bool b) { return b; })) {
        std::fill(ref_.begin(), ref_.end(), false);
        ref_[way] = true;
    }
}

unsigned
NruSet::victimIn(unsigned lo, unsigned hi) const
{
    for (unsigned w = lo; w <= hi; ++w)
        if (!ref_[w])
            return w;
    return lo;
}

unsigned
NruSet::stackPosOf(unsigned way) const
{
    // Coarse two-bucket estimate: referenced lines sit in the upper
    // (recent) half of the stack, unreferenced in the lower half.
    const unsigned k = ways();
    return ref_[way] ? (k - 1) / 4 : (3 * (k - 1)) / 4;
}

// --------------------------------------------------------------- BT-PLRU

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

BtPlruSet::BtPlruSet(unsigned ways) : ways_(ways), levels_(0),
    bits_(ways, false)
{
    if (!isPow2(ways))
        panic(msgOf("BT-PLRU requires power-of-two ways, got ", ways));
    for (unsigned v = ways; v > 1; v >>= 1)
        ++levels_;
}

void
BtPlruSet::touch(unsigned way)
{
    // Walk root->leaf; point every tree bit *away* from the way.
    unsigned node = 1;
    for (unsigned level = 0; level < levels_; ++level) {
        const bool right = (way >> (levels_ - 1 - level)) & 1u;
        bits_[node] = !right; // bit=false means "victim is left"
        node = 2 * node + (right ? 1 : 0);
    }
}

unsigned
BtPlruSet::victimIn(unsigned lo, unsigned hi) const
{
    // Follow the tree bits, but clamp the descent so the final leaf
    // lands inside [lo, hi]: at each node prefer the pointed-to child
    // unless its whole subtree lies outside the range.
    unsigned node = 1;
    unsigned first = 0;
    unsigned count = ways_;
    for (unsigned level = 0; level < levels_; ++level) {
        count /= 2;
        const unsigned left_first = first;
        const unsigned right_first = first + count;
        bool go_right = bits_[node];
        const bool left_ok =
            left_first + count > lo && left_first <= hi;
        const bool right_ok =
            right_first + count > lo && right_first <= hi;
        if (go_right && !right_ok)
            go_right = false;
        else if (!go_right && !left_ok)
            go_right = true;
        first = go_right ? right_first : left_first;
        node = 2 * node + (go_right ? 1 : 0);
    }
    return std::clamp(first, lo, hi);
}

unsigned
BtPlruSet::stackPosOf(unsigned way) const
{
    // Identifier estimate: accumulate, root to leaf, whether each bit
    // points toward the way (1) or away from it (0); a way every bit
    // points to is the PLRU victim and gets position K-1.
    unsigned node = 1;
    unsigned pos = 0;
    for (unsigned level = 0; level < levels_; ++level) {
        const bool right = (way >> (levels_ - 1 - level)) & 1u;
        const bool points_to_way = bits_[node] == right;
        pos = (pos << 1) | (points_to_way ? 1u : 0u);
        node = 2 * node + (right ? 1 : 0);
    }
    return pos;
}

// ---------------------------------------------------------------- factory

std::unique_ptr<SetReplacement>
makeSetReplacement(ReplacementKind kind, unsigned ways)
{
    switch (kind) {
      case ReplacementKind::trueLru:
        return std::make_unique<TrueLruSet>(ways);
      case ReplacementKind::nru:
        return std::make_unique<NruSet>(ways);
      case ReplacementKind::btPlru:
        return std::make_unique<BtPlruSet>(ways);
      case ReplacementKind::rrip:
        return std::make_unique<RripSet>(ways);
    }
    panic("unknown ReplacementKind");
}

} // namespace csalt
