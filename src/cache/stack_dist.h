/**
 * @file
 * Mattson stack-distance profiling (paper §3.1).
 *
 * Two pieces: StackDistProfiler holds the K+1 hit/miss counters of one
 * LRU stack; ShadowTagArray maintains, per sampled set and per line
 * type, a shadow tag store that behaves as if that type owned the
 * whole cache, and feeds hit positions into the profiler. This is the
 * UCP-style auxiliary tag directory the marginal-utility computation
 * of Eq. (1) requires: D_LRU(i) counts hits that need at least i+1
 * data ways, independent of how ways are currently split.
 */

#ifndef CSALT_CACHE_STACK_DIST_H
#define CSALT_CACHE_STACK_DIST_H

#include <cstdint>
#include <vector>

#include "cache/repl_flat.h"
#include "common/types.h"

namespace csalt
{

/**
 * K+1 counters over LRU stack positions; counter K counts misses.
 */
class StackDistProfiler
{
  public:
    explicit StackDistProfiler(unsigned ways);

    /** Record a hit at stack position pos (0 = MRU). */
    void recordHit(unsigned pos);

    /** Record a miss (counter K). */
    void recordMiss();

    /** Counter value at position pos (pos == ways() means misses). */
    std::uint64_t counter(unsigned pos) const { return counters_[pos]; }

    /** Sum of hit counters for positions [0, n). */
    std::uint64_t hitsUpTo(unsigned n) const;

    /** Total recorded accesses (hits at any position + misses). */
    std::uint64_t total() const { return total_; }

    unsigned ways() const
    {
        return static_cast<unsigned>(counters_.size()) - 1;
    }

    /** Zero all counters (start of a new epoch). */
    void reset();

    /** Halve all counters (exponential decay across epochs). */
    void decay();

    /** Directly set counters (unit tests of the paper's Fig. 5). */
    void setCounters(const std::vector<std::uint64_t> &values);

    /**
     * Fault-injection hook: bump one counter *without* total_, like a
     * dropped profiler update would — the conservation invariant
     * (sum of counters == total) must fire. setCounters() cannot
     * simulate this because it recomputes the total.
     */
    void corruptForTest() { counters_[0] += 7; }

    /** Checkpoint support (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU64(counters_.size());
        for (const std::uint64_t c : counters_)
            s.putU64(c);
        s.putU64(total_);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        if (d.getU64() != counters_.size())
            d.fail("StackDistProfiler counter-count mismatch");
        for (auto &c : counters_)
            c = d.getU64();
        total_ = d.getU64();
    }

  private:
    std::vector<std::uint64_t> counters_;
    std::uint64_t total_ = 0;
};

/**
 * Per-type shadow tag directory with set sampling.
 *
 * One instance profiles one line type in one cache. Only sets whose
 * index is a multiple of the sampling factor carry shadow tags, which
 * keeps the hardware analogue (and simulation cost) small; counter
 * magnitudes scale uniformly so marginal-utility comparisons are
 * unaffected.
 */
class ShadowTagArray
{
  public:
    /**
     * @param sets number of sets in the profiled cache
     * @param ways associativity of the profiled cache
     * @param kind replacement flavour to mirror (paper §3.4)
     * @param sample_shift profile sets where (set & (2^shift-1)) == 0
     */
    ShadowTagArray(std::uint64_t sets, unsigned ways, ReplacementKind kind,
                   unsigned sample_shift = 3);

    /**
     * Observe an access; updates the profiler when the set is sampled.
     * @param set cache set index of the access
     * @param tag full line address (used as shadow tag)
     */
    void access(std::uint64_t set, Addr tag);

    const StackDistProfiler &profiler() const { return profiler_; }
    StackDistProfiler &profiler() { return profiler_; }

    /** True when this set index carries shadow tags. */
    bool sampled(std::uint64_t set) const
    {
        return (set & sample_mask_) == 0;
    }

    /** Checkpoint: shadow tags + recency state + profiler counters. */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU64(tags_.size());
        for (const Addr tag : tags_)
            s.putU64(tag);
        repl_.saveState(s);
        profiler_.saveState(s);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        if (d.getU64() != tags_.size())
            d.fail("ShadowTagArray tag-count mismatch");
        for (auto &tag : tags_)
            tag = d.getU64();
        repl_.loadState(d);
        profiler_.loadState(d);
    }

  private:
    /** Index of @p set within the compacted sampled-set arrays. */
    std::uint64_t sampledIndexOf(std::uint64_t set) const
    {
        return set >> sample_shift_;
    }

    unsigned ways_;
    std::uint64_t sample_mask_;
    unsigned sample_shift_;
    /** Flat shadow tags over sampled sets only, indexed by
     *  sampledIndex*ways + way; kInvalidAddr when empty. */
    std::vector<Addr> tags_;
    ReplBlock repl_;
    StackDistProfiler profiler_;
};

} // namespace csalt

#endif // CSALT_CACHE_STACK_DIST_H
