/**
 * @file
 * Set-associative cache model with CSALT's partition hooks.
 *
 * The cache is functional (hit/miss + victim bookkeeping); latency
 * accumulation and miss propagation live in sim/memory_system. What
 * makes it CSALT-capable:
 *
 *  - every line carries a LineType (data vs translation), derived by
 *    the caller from the physical address range;
 *  - optional way partitioning: replacement victimises only inside
 *    the type's way range while lookup scans all ways (paper §3.1);
 *  - optional per-type shadow-tag stack-distance profilers feeding
 *    the marginal-utility controllers (paper Eq. 1/2);
 *  - optional DIP insertion (prior-work baseline, Fig. 13);
 *  - exact per-type occupancy counters (paper Fig. 3).
 *
 * Hot-path layout (see docs/performance.md): line state lives in two
 * structure-of-arrays blocks owned by the cache — `tags_` (full line
 * address, kInvalidAddr when empty) and `meta_` (valid/dirty/type
 * bits) indexed by set*ways + way — and replacement state lives in a
 * flattened, enum-dispatched ReplBlock. A lookup therefore touches
 * contiguous memory and executes no virtual calls.
 */

#ifndef CSALT_CACHE_CACHE_H
#define CSALT_CACHE_CACHE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/dip.h"
#include "cache/rrip.h"
#include "cache/partition.h"
#include "cache/repl_flat.h"
#include "cache/replacement.h"
#include "cache/stack_dist.h"
#include "common/config.h"
#include "common/types.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/** Raw event counters of one cache. */
struct CacheStats
{
    std::uint64_t hits[2] = {0, 0};   //!< indexed by LineType
    std::uint64_t misses[2] = {0, 0}; //!< indexed by LineType
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    std::uint64_t hitsOf(LineType t) const
    {
        return hits[static_cast<int>(t)];
    }
    std::uint64_t missesOf(LineType t) const
    {
        return misses[static_cast<int>(t)];
    }
    std::uint64_t totalHits() const { return hits[0] + hits[1]; }
    std::uint64_t totalMisses() const { return misses[0] + misses[1]; }
    std::uint64_t accesses() const
    {
        return totalHits() + totalMisses();
    }
};

/** Evicted-line descriptor returned from a fill. */
struct Victim
{
    bool valid = false;
    Addr line_addr = kInvalidAddr;
    bool dirty = false;
    LineType type = LineType::data;
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    Victim victim; //!< meaningful only on miss (fill path)
};

/**
 * One level of the data-cache hierarchy.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access (and on miss, fill) a line.
     *
     * @param addr byte address; aligned down to the line internally
     * @param type read or write (write marks the line dirty)
     * @param ltype data or translation classification of the address
     * @return hit flag plus any evicted victim
     */
    CacheAccessResult access(Addr addr, AccessType type, LineType ltype);

    /** Tag probe without any state change. */
    bool probe(Addr addr) const;

    /**
     * Non-filling demand probe: on hit, promote the line and count a
     * hit; on miss, count a miss but do NOT allocate (no victim, no
     * DIP/shadow updates). Victima lookups use this — whether its
     * entry line is still cache-resident IS the residency question,
     * so the probe must never fabricate residency by filling.
     * @return true on hit.
     */
    bool touch(Addr addr, LineType ltype);

    /**
     * Writeback landing: mark the line dirty if present (no fill, no
     * demand stats, no profiler update — absorbing a writeback saves
     * bandwidth, not load latency, so it must not bias the partition
     * toward data ways). @return true when the writeback was absorbed.
     */
    bool markDirtyIfPresent(Addr addr);

    /**
     * Invalidate a line if present (no writeback modelling).
     * @return true when the line was present.
     */
    bool invalidate(Addr addr);

    /** Drop all lines and reset partitions' lazy state. */
    void invalidateAll();

    // ------------------------------------------------ partition control

    /** Turn on way partitioning with an initial data-way count. */
    void enablePartitioning(unsigned data_ways);

    /** Adjust the partition (takes effect on subsequent fills). */
    void setDataWays(unsigned data_ways);

    bool partitioned() const { return partition_.has_value(); }
    unsigned dataWays() const;

    // ------------------------------------------------------- profiling

    /**
     * Attach per-type shadow-tag profilers.
     * @param sample_shift sample every 2^shift-th set
     */
    void enableProfiling(unsigned sample_shift = 3);

    bool profiling() const { return data_shadow_ != nullptr; }
    StackDistProfiler &dataProfiler();
    StackDistProfiler &tlbProfiler();

    // ------------------------------------------------------------- DIP

    /** Switch insertion to set-dueling DIP (baseline scheme). */
    void enableDip(std::uint64_t seed = 7);

    // ----------------------------------------------------------- stats

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    /**
     * Register this cache's counters and gauges under
     * "<prefix>.<stat>" (telemetry; see docs/observability.md).
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Fraction of lines (valid or not) currently holding @p t. */
    double occupancyOf(LineType t) const;

    /** Recount occupancy by scanning every line (test cross-check). */
    std::uint64_t scanCountOf(LineType t) const;

    // ------------------------------------------- invariant inspection

    /** Exact per-type valid-line counter (checked against
     *  scanCountOf() by the paranoid-mode occupancy invariant). */
    std::uint64_t
    exactCountOf(LineType t) const
    {
        return type_count_[static_cast<int>(t)];
    }

    /** The way partition, when partitioning is enabled. */
    const std::optional<WayPartition> &
    partition() const
    {
        return partition_;
    }

    /** Replacement flavour of every set (invariant checkers). */
    ReplacementKind replKind() const { return repl_.kind(); }

    /** Estimated LRU stack position of one way (checkers/tests). */
    unsigned
    replStackPosOf(std::uint64_t set, unsigned way) const
    {
        return repl_.stackPosOf(set, way);
    }

    /** Data/translation profiler, or nullptr when not profiling. */
    const StackDistProfiler *
    dataProfilerIfEnabled() const
    {
        return data_shadow_ ? &data_shadow_->profiler() : nullptr;
    }
    const StackDistProfiler *
    tlbProfilerIfEnabled() const
    {
        return tlb_shadow_ ? &tlb_shadow_->profiler() : nullptr;
    }

    // ------------------------------------------------ fault injection

    /** Desync the exact occupancy counter from the line array. */
    void corruptTypeCountForTest() { type_count_[0] += 7; }

    /** Corrupt one set's replacement metadata (seeded set pick). */
    void
    corruptReplacementForTest(std::uint64_t set)
    {
        repl_.corrupt(set % num_sets_);
    }

    /** Break the partition way-sum (data_ways beyond associativity). */
    void
    corruptPartitionForTest()
    {
        if (partition_)
            partition_->data_ways = ways_ + 3;
    }

    // ------------------------------------------------------ checkpoint

    /**
     * Serialize the full mutable state: SoA line arrays, replacement
     * bytes, partition split, shadow profilers, insertion-duel
     * counters and stats. Geometry and enabled features come from the
     * (config-CRC-matched) scheme; loadState verifies they agree.
     */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

    // -------------------------------------------------------- geometry

    unsigned ways() const { return ways_; }
    std::uint64_t numSets() const { return num_sets_; }
    Cycles latency() const { return latency_; }
    const std::string &name() const { return name_; }

  private:
    /** meta_ bit layout (one byte per line). */
    static constexpr std::uint8_t kValidBit = 1u << 0;
    static constexpr std::uint8_t kDirtyBit = 1u << 1;
    static constexpr std::uint8_t kTypeBit = 1u << 2; //!< translation

    static LineType
    typeOf(std::uint8_t meta)
    {
        return (meta & kTypeBit) ? LineType::translation
                                 : LineType::data;
    }

    std::uint64_t setIndexOf(Addr line_addr) const
    {
        return line_addr & (num_sets_ - 1);
    }

    /** Pick the fill way honouring partition + invalid-first rules. */
    unsigned chooseVictimWay(std::uint64_t set, LineType ltype);

    std::string name_;
    unsigned ways_;
    Cycles latency_;
    ReplacementKind repl_kind_;
    std::uint64_t num_sets_ = 0;
    /** SoA line state, indexed by set*ways + way. */
    std::vector<Addr> tags_; //!< kInvalidAddr marks an empty way
    std::vector<std::uint8_t> meta_;
    ReplBlock repl_;
    std::optional<WayPartition> partition_;
    std::unique_ptr<ShadowTagArray> data_shadow_;
    std::unique_ptr<ShadowTagArray> tlb_shadow_;
    std::unique_ptr<DipController> dip_;
    std::unique_ptr<DrripController> drrip_; //!< when repl == rrip
    CacheStats stats_;
    std::uint64_t type_count_[2] = {0, 0}; //!< valid lines per type
};

} // namespace csalt

#endif // CSALT_CACHE_CACHE_H
