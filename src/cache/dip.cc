#include "cache/dip.h"

namespace csalt
{

DipController::DipController(std::uint64_t sets, std::uint64_t seed)
    : sets_(sets), rng_(seed)
{
}

DipController::SetRole
DipController::roleOf(std::uint64_t set) const
{
    // Interleave leader sets through the index space: one LRU leader
    // and one BIP leader per kLeaderStride-set region.
    const std::uint64_t phase = set % kLeaderStride;
    if (phase == 0)
        return SetRole::lruLeader;
    if (phase == kLeaderStride / 2)
        return SetRole::bipLeader;
    return SetRole::follower;
}

bool
DipController::insertAtMru(std::uint64_t set)
{
    bool use_bip;
    switch (roleOf(set)) {
      case SetRole::lruLeader:
        use_bip = false;
        break;
      case SetRole::bipLeader:
        use_bip = true;
        break;
      case SetRole::follower:
      default:
        use_bip = followersUseBip();
        break;
    }
    if (!use_bip)
        return true;
    return rng_.chance(kBipEpsilon);
}

void
DipController::onMiss(std::uint64_t set)
{
    switch (roleOf(set)) {
      case SetRole::lruLeader:
        if (psel_ < kPselMax)
            ++psel_;
        break;
      case SetRole::bipLeader:
        if (psel_ > 0)
            --psel_;
        break;
      case SetRole::follower:
        break;
    }
}

} // namespace csalt
