#include "cache/rrip.h"

namespace csalt
{

RripSet::RripSet(unsigned ways) : rrpv_(ways, kMax) {}

void
RripSet::touch(unsigned way)
{
    rrpv_[way] = 0;
}

void
RripSet::insertAt(unsigned way, bool long_rrpv)
{
    rrpv_[way] = long_rrpv ? kMax : kMax - 1;
}

unsigned
RripSet::victimIn(unsigned lo, unsigned hi) const
{
    // Age until some way in range reaches kMax. Aging mutates the
    // (mutable) RRPV array; victimIn is called exactly once per fill,
    // so this matches the hardware sequence.
    for (;;) {
        for (unsigned w = lo; w <= hi; ++w)
            if (rrpv_[w] >= kMax)
                return w;
        for (unsigned w = lo; w <= hi; ++w)
            ++rrpv_[w];
    }
}

unsigned
RripSet::stackPosOf(unsigned way) const
{
    // Coarse estimate for the Mattson profilers: spread the four
    // RRPV buckets across the stack.
    const unsigned k = ways();
    return rrpv_[way] * (k - 1) / kMax;
}

void
RripSet::corruptForTest()
{
    // An RRPV beyond the 2-bit encoding: stackPosOf() now exceeds
    // ways()-1, which the stack-integrity checker rejects.
    rrpv_[0] = 7;
}

DrripController::DrripController(std::uint64_t sets, std::uint64_t seed)
    : sets_(sets), rng_(seed)
{
}

DrripController::Role
DrripController::roleOf(std::uint64_t set) const
{
    const std::uint64_t phase = set % kLeaderStride;
    if (phase == 0)
        return Role::srripLeader;
    if (phase == kLeaderStride / 2)
        return Role::brripLeader;
    return Role::follower;
}

bool
DrripController::insertLong(std::uint64_t set)
{
    bool brrip;
    switch (roleOf(set)) {
      case Role::srripLeader:
        brrip = false;
        break;
      case Role::brripLeader:
        brrip = true;
        break;
      case Role::follower:
      default:
        brrip = followersUseBrrip();
        break;
    }
    if (!brrip)
        return false; // SRRIP: distant (RRPV 2)
    return !rng_.chance(kBrripEpsilon); // BRRIP: mostly far (RRPV 3)
}

void
DrripController::onMiss(std::uint64_t set)
{
    switch (roleOf(set)) {
      case Role::srripLeader:
        if (psel_ < kPselMax)
            ++psel_;
        break;
      case Role::brripLeader:
        if (psel_ > 0)
            --psel_;
        break;
      case Role::follower:
        break;
    }
}

} // namespace csalt
