/**
 * @file
 * Way-partition descriptor shared by the cache and the controllers.
 */

#ifndef CSALT_CACHE_PARTITION_H
#define CSALT_CACHE_PARTITION_H

namespace csalt
{

/**
 * A split of a K-way set between data and translation entries:
 * data entries own ways [0, data_ways-1], translation entries own
 * [data_ways, total_ways-1] (paper §3.1). Enforced on replacement
 * only; lookup always scans all ways, so lines of the other type
 * stranded by a repartition drain lazily.
 */
struct WayPartition
{
    unsigned total_ways = 0;
    unsigned data_ways = 0;

    unsigned tlbWays() const { return total_ways - data_ways; }

    /** Victim search range for a data fill: [lo, hi]. */
    unsigned dataLo() const { return 0; }
    unsigned dataHi() const { return data_ways - 1; }

    /** Victim search range for a translation fill: [lo, hi]. */
    unsigned tlbLo() const { return data_ways; }
    unsigned tlbHi() const { return total_ways - 1; }
};

} // namespace csalt

#endif // CSALT_CACHE_PARTITION_H
