/**
 * @file
 * RRIP replacement (Jaleel et al., ISCA 2010) — SRRIP and the
 * set-dueling DRRIP the paper's related-work section contrasts CSALT
 * against (§6: content-oblivious replacement "not designed ... when
 * different types of data coexist").
 *
 * 2-bit re-reference prediction values (RRPV): hit -> 0, victim =
 * first way at RRPV 3 (aging every way until one exists). SRRIP
 * inserts at RRPV 2; BRRIP inserts at 3 with rare 2s; DRRIP duels.
 */

#ifndef CSALT_CACHE_RRIP_H
#define CSALT_CACHE_RRIP_H

#include <cstdint>
#include <vector>

#include "cache/replacement.h"
#include "common/rng.h"

namespace csalt
{

/** Per-set RRIP state implementing the SetReplacement interface. */
class RripSet : public SetReplacement
{
  public:
    explicit RripSet(unsigned ways);

    /** Promotion on hit: RRPV -> 0. */
    void touch(unsigned way) override;

    /**
     * Fill-time placement: distant (RRPV 2) or far (RRPV 3)
     * re-reference prediction; the cache's insertion controller
     * decides which (see insertAt()).
     */
    void insertAt(unsigned way, bool long_rrpv);

    unsigned victimIn(unsigned lo, unsigned hi) const override;
    unsigned stackPosOf(unsigned way) const override;
    unsigned ways() const override
    {
        return static_cast<unsigned>(rrpv_.size());
    }

    /** Out-of-range RRPV: the stack-position invariant must fire. */
    void corruptForTest() override;

  private:
    static constexpr std::uint8_t kMax = 3;

    /**
     * Aging happens logically at victim selection; victimIn() is
     * const, so the pending age amount is applied lazily on the next
     * mutation. Simpler: age eagerly in insertAt/touch via a stored
     * pending delta.
     */
    mutable std::vector<std::uint8_t> rrpv_;

    friend class RripDuelTest;
};

/**
 * DRRIP set-dueling controller: SRRIP leader sets vs BRRIP leader
 * sets, PSEL-selected followers (mirrors DipController's shape).
 */
class DrripController
{
  public:
    explicit DrripController(std::uint64_t sets,
                             std::uint64_t seed = 11);

    /** @return true when the fill should use the far (3) RRPV. */
    bool insertLong(std::uint64_t set);

    /** Report a demand miss in @p set. */
    void onMiss(std::uint64_t set);

    std::uint32_t psel() const { return psel_; }
    bool followersUseBrrip() const { return psel_ >= kThreshold; }

    /** Checkpoint: PSEL counter + the BRRIP coin's RNG stream. */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU32(psel_);
        rng_.saveState(s);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        psel_ = d.getU32();
        if (psel_ > kPselMax)
            d.fail("DRRIP PSEL out of range");
        rng_.loadState(d);
    }

  private:
    enum class Role
    {
        srripLeader,
        brripLeader,
        follower
    };

    Role roleOf(std::uint64_t set) const;

    static constexpr std::uint32_t kPselMax = 1023;
    static constexpr std::uint32_t kThreshold = 512;
    static constexpr std::uint64_t kLeaderStride = 64;
    static constexpr double kBrripEpsilon = 1.0 / 32.0;

    std::uint64_t sets_;
    std::uint32_t psel_ = kThreshold;
    Rng rng_;
};

} // namespace csalt

#endif // CSALT_CACHE_RRIP_H
