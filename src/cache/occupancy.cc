#include "cache/occupancy.h"

#include "cache/cache.h"

namespace csalt
{

void
OccupancySampler::sample(double time)
{
    const double frac = cache_.occupancyOf(LineType::translation);
    series_.push(time, frac);
    acc_.add(frac);
}

double
OccupancySampler::meanTranslationFraction() const
{
    return acc_.mean();
}

} // namespace csalt
