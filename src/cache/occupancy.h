/**
 * @file
 * Periodic sampler of per-type cache occupancy (paper Fig. 3 / §2.2
 * footnote 2: "periodically the simulator scanned the caches to
 * record the fraction of TLB entries held in them").
 */

#ifndef CSALT_CACHE_OCCUPANCY_H
#define CSALT_CACHE_OCCUPANCY_H

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"

namespace csalt
{

class Cache;

/**
 * Samples the translation-entry fraction of one cache on demand and
 * accumulates both the full time series and its running mean.
 */
class OccupancySampler
{
  public:
    explicit OccupancySampler(const Cache &cache) : cache_(cache) {}

    /** Record one sample at timestamp @p time (any monotone unit). */
    void sample(double time);

    /** Mean translation-entry fraction across all samples so far. */
    double meanTranslationFraction() const;

    /** Drop all samples (end of warmup). */
    void
    reset()
    {
        series_ = TimeSeries{};
        acc_ = Accumulator{};
    }

    const TimeSeries &series() const { return series_; }

    /** Checkpoint support (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        series_.saveState(s);
        acc_.saveState(s);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        series_.loadState(d);
        acc_.loadState(d);
    }

  private:
    const Cache &cache_;
    TimeSeries series_;
    Accumulator acc_;
};

} // namespace csalt

#endif // CSALT_CACHE_OCCUPANCY_H
