/**
 * @file
 * Flattened, devirtualized per-set replacement state.
 *
 * ReplBlock stores the replacement metadata of *every* set of one
 * structure (cache, TLB, shadow-tag array) as a single contiguous
 * byte array — one byte per way — and dispatches on a ReplacementKind
 * enum with fully inlined per-policy code. This replaces the previous
 * per-set `std::unique_ptr<SetReplacement>` objects, which cost one
 * heap allocation per set and a virtual call plus two dependent
 * pointer loads on every access.
 *
 * The per-policy algorithms are byte-for-byte transcriptions of the
 * polymorphic reference implementations in cache/replacement.h
 * (TrueLruSet, NruSet, BtPlruSet, RripSet), which remain in the tree
 * as the paranoid checkers' reference semantics and are pinned
 * against this engine by tests/test_repl_flat.cpp.
 *
 * Per-way byte encoding:
 *   trueLru  state[w] = exact stack position (0 = MRU .. K-1 = LRU)
 *   nru      state[w] = reference bit
 *   btPlru   state[1..K-1] = heap-indexed tree bits (root at 1);
 *            state[0] unused — identical to the reference layout
 *   rrip     state[w] = 2-bit RRPV (aged lazily in victimIn)
 */

#ifndef CSALT_CACHE_REPL_FLAT_H
#define CSALT_CACHE_REPL_FLAT_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/log.h"

namespace csalt
{

/** Flattened replacement state for all sets of one structure. */
class ReplBlock
{
  public:
    ReplBlock() = default;

    ReplBlock(ReplacementKind kind, std::uint64_t sets, unsigned ways)
        : kind_(kind), ways_(ways), sets_(sets)
    {
        if (ways == 0 || ways > 255)
            panic(msgOf("ReplBlock: unsupported associativity ", ways));
        if (kind == ReplacementKind::btPlru) {
            if ((ways & (ways - 1)) != 0)
                panic(msgOf("BT-PLRU requires power-of-two ways, got ",
                            ways));
            for (unsigned v = ways; v > 1; v >>= 1)
                ++levels_;
        }
        state_.resize(sets * ways);
        reset();
    }

    ReplacementKind kind() const { return kind_; }
    unsigned ways() const { return ways_; }
    std::uint64_t sets() const { return sets_; }

    /** Reinitialise every set (all-invalid structure). */
    void
    reset()
    {
        switch (kind_) {
          case ReplacementKind::trueLru:
            for (std::uint64_t s = 0; s < sets_; ++s)
                for (unsigned w = 0; w < ways_; ++w)
                    state_[s * ways_ + w] =
                        static_cast<std::uint8_t>(w);
            break;
          case ReplacementKind::nru:
          case ReplacementKind::btPlru:
            std::fill(state_.begin(), state_.end(),
                      std::uint8_t{0});
            break;
          case ReplacementKind::rrip:
            std::fill(state_.begin(), state_.end(), kRripMax);
            break;
        }
    }

    /** Promote a way on hit or fill. */
    void
    touch(std::uint64_t set, unsigned way)
    {
        std::uint8_t *s = &state_[set * ways_];
        switch (kind_) {
          case ReplacementKind::trueLru: {
            // Branchless so the compiler vectorizes the rank shift
            // (one SIMD op for a 16-way set): every rank below the
            // touched way's old rank moves down one stack position.
            const std::uint8_t old = s[way];
            for (unsigned w = 0; w < ways_; ++w)
                s[w] = static_cast<std::uint8_t>(s[w] + (s[w] < old));
            s[way] = 0;
            break;
          }
          case ReplacementKind::nru: {
            s[way] = 1;
            bool all = true;
            for (unsigned w = 0; w < ways_; ++w)
                all = all && s[w];
            if (all) {
                for (unsigned w = 0; w < ways_; ++w)
                    s[w] = 0;
                s[way] = 1;
            }
            break;
          }
          case ReplacementKind::btPlru: {
            unsigned node = 1;
            for (unsigned level = 0; level < levels_; ++level) {
                const bool right =
                    (way >> (levels_ - 1 - level)) & 1u;
                s[node] = right ? 0 : 1; // 0 -> victim is left
                node = 2 * node + (right ? 1 : 0);
            }
            break;
          }
          case ReplacementKind::rrip:
            s[way] = 0;
            break;
        }
    }

    /** RRIP fill-time placement (distant vs far RRPV). */
    void
    insertAt(std::uint64_t set, unsigned way, bool long_rrpv)
    {
        state_[set * ways_ + way] =
            long_rrpv ? kRripMax
                      : static_cast<std::uint8_t>(kRripMax - 1);
    }

    /**
     * Pick the eviction victim among ways in [lo, hi]. Non-const:
     * RRIP ages the set's RRPVs until a victim exists (exactly the
     * reference RripSet::victimIn sequence).
     */
    unsigned
    victimIn(std::uint64_t set, unsigned lo, unsigned hi)
    {
        std::uint8_t *s = &state_[set * ways_];
        switch (kind_) {
          case ReplacementKind::trueLru: {
            unsigned victim = lo;
            std::uint8_t worst = s[lo];
            for (unsigned w = lo + 1; w <= hi; ++w) {
                if (s[w] > worst) {
                    worst = s[w];
                    victim = w;
                }
            }
            return victim;
          }
          case ReplacementKind::nru: {
            for (unsigned w = lo; w <= hi; ++w)
                if (!s[w])
                    return w;
            return lo;
          }
          case ReplacementKind::btPlru: {
            unsigned node = 1;
            unsigned first = 0;
            unsigned count = ways_;
            for (unsigned level = 0; level < levels_; ++level) {
                count /= 2;
                const unsigned left_first = first;
                const unsigned right_first = first + count;
                bool go_right = s[node] != 0;
                const bool left_ok =
                    left_first + count > lo && left_first <= hi;
                const bool right_ok =
                    right_first + count > lo && right_first <= hi;
                if (go_right && !right_ok)
                    go_right = false;
                else if (!go_right && !left_ok)
                    go_right = true;
                first = go_right ? right_first : left_first;
                node = 2 * node + (go_right ? 1 : 0);
            }
            return std::clamp(first, lo, hi);
          }
          case ReplacementKind::rrip: {
            for (;;) {
                for (unsigned w = lo; w <= hi; ++w)
                    if (s[w] >= kRripMax)
                        return w;
                for (unsigned w = lo; w <= hi; ++w)
                    ++s[w];
            }
          }
        }
        panic("unknown ReplacementKind");
    }

    /** Estimated LRU stack position (0 = MRU .. K-1 = LRU). */
    unsigned
    stackPosOf(std::uint64_t set, unsigned way) const
    {
        const std::uint8_t *s = &state_[set * ways_];
        switch (kind_) {
          case ReplacementKind::trueLru:
            return s[way];
          case ReplacementKind::nru:
            return s[way] ? (ways_ - 1) / 4 : (3 * (ways_ - 1)) / 4;
          case ReplacementKind::btPlru: {
            unsigned node = 1;
            unsigned pos = 0;
            for (unsigned level = 0; level < levels_; ++level) {
                const bool right =
                    (way >> (levels_ - 1 - level)) & 1u;
                const bool points_to_way = (s[node] != 0) == right;
                pos = (pos << 1) | (points_to_way ? 1u : 0u);
                node = 2 * node + (right ? 1 : 0);
            }
            return pos;
          }
          case ReplacementKind::rrip:
            return s[way] * (ways_ - 1) / kRripMax;
        }
        panic("unknown ReplacementKind");
    }

    /**
     * Fault-injection hook mirroring SetReplacement::corruptForTest:
     * trueLru duplicates a rank (permutation invariant fires), RRIP
     * plants an out-of-range RRPV (stack-position invariant fires);
     * NRU / BT-PLRU have no corruptible encoding (no-op).
     */
    void
    corrupt(std::uint64_t set)
    {
        std::uint8_t *s = &state_[set * ways_];
        switch (kind_) {
          case ReplacementKind::trueLru:
            if (ways_ >= 2)
                s[0] = s[1];
            break;
          case ReplacementKind::rrip:
            s[0] = 7;
            break;
          case ReplacementKind::nru:
          case ReplacementKind::btPlru:
            break;
        }
    }

    /**
     * Checkpoint: geometry is ctor-derived (verified on load), the
     * per-way byte array is the only mutable state.
     */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU8(static_cast<std::uint8_t>(kind_));
        s.putU32(ways_);
        s.putU64(sets_);
        s.putU64(state_.size());
        for (const std::uint8_t b : state_)
            s.putU8(b);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        if (d.getU8() != static_cast<std::uint8_t>(kind_))
            d.fail("ReplBlock policy kind mismatch");
        if (d.getU32() != ways_ || d.getU64() != sets_)
            d.fail("ReplBlock geometry mismatch");
        if (d.getU64() != state_.size())
            d.fail("ReplBlock state size mismatch");
        for (auto &b : state_)
            b = d.getU8();
    }

  private:
    static constexpr std::uint8_t kRripMax = 3;

    ReplacementKind kind_ = ReplacementKind::trueLru;
    unsigned ways_ = 0;
    unsigned levels_ = 0; //!< btPlru tree depth
    std::uint64_t sets_ = 0;
    std::vector<std::uint8_t> state_;
};

} // namespace csalt

#endif // CSALT_CACHE_REPL_FLAT_H
