#include "sim/context.h"

#include "common/log.h"

namespace csalt
{

SimContext::SimContext(VmContext *vm, std::unique_ptr<TraceSource> trace)
    : vm_(vm), trace_(std::move(trace))
{
    if (!vm_ || !trace_)
        panic("SimContext requires a VM and a trace");
}

} // namespace csalt
