#include "sim/system_builder.h"

#include "common/error.h"
#include "common/log.h"
#include "workloads/registry.h"

namespace csalt
{

std::unique_ptr<System>
buildSystem(const BuildSpec &spec)
{
    if (spec.vm_workloads.empty()) {
        raise(makeError(ErrorKind::build,
                        "need at least one VM workload",
                        "buildSystem",
                        "pass --vms or a workload list"));
    }

    SystemParams params = spec.params;
    params.contexts_per_core =
        static_cast<unsigned>(spec.vm_workloads.size());
    if (params.contexts_per_core > params.max_asids) {
        raise(makeError(
            ErrorKind::build,
            msgOf(params.contexts_per_core,
                  " VMs exceed the reserved ASID space of ",
                  params.max_asids),
            "buildSystem", "reduce the VM count or raise max_asids"));
    }

    auto system = std::make_unique<System>(params);

    std::vector<VmContext *> vms;
    for (unsigned i = 0; i < spec.vm_workloads.size(); ++i) {
        const WorkloadDesc &desc = workloadDesc(spec.vm_workloads[i]);
        VmContext::Params vp;
        vp.asid = static_cast<Asid>(i + 1);
        vp.virtualized = params.virtualized;
        vp.huge_fraction = desc.huge_fraction;
        vp.seed = params.seed * 7919 + i * 104729;
        vp.page_levels = params.page_table_levels;
        auto vm = std::make_unique<VmContext>(
            vp, system->mem().dataFrames(), system->mem().ptFrames());
        vms.push_back(&system->addVm(std::move(vm)));
    }

    for (unsigned c = 0; c < params.num_cores; ++c) {
        std::vector<std::unique_ptr<SimContext>> rotation;
        for (unsigned i = 0; i < spec.vm_workloads.size(); ++i) {
            const WorkloadDesc &desc =
                workloadDesc(spec.vm_workloads[i]);
            auto trace = desc.make(params.seed + i * 7777, c,
                                   params.num_cores,
                                   spec.workload_scale);
            rotation.push_back(
                std::make_unique<SimContext>(vms[i], std::move(trace)));
        }
        system->setCoreContexts(c, std::move(rotation));
    }
    system->setStatSampleInterval(spec.stat_sample_interval);
    return system;
}

} // namespace csalt
