/**
 * @file
 * A schedulable context: one VM's thread on one core.
 *
 * All threads of a VM share a VmContext (address space, ASID); each
 * (VM, core) pair owns its trace stream. A core rotates through its
 * contexts on the context-switch interval.
 */

#ifndef CSALT_SIM_CONTEXT_H
#define CSALT_SIM_CONTEXT_H

#include <memory>

#include "vm/address_space.h"
#include "workloads/trace_source.h"

namespace csalt
{

/** One VM thread bound to one core. */
class SimContext
{
  public:
    /**
     * @param vm shared address space of the VM (not owned)
     * @param trace this thread's reference stream (owned)
     */
    SimContext(VmContext *vm, std::unique_ptr<TraceSource> trace);

    VmContext &vm() { return *vm_; }
    TraceSource &trace() { return *trace_; }
    Asid asid() const { return vm_->asid(); }

  private:
    VmContext *vm_;
    std::unique_ptr<TraceSource> trace_;
};

} // namespace csalt

#endif // CSALT_SIM_CONTEXT_H
