/**
 * @file
 * Top-level simulated machine: N cores over one MemorySystem, with a
 * min-clock interleaving scheduler so shared resources (L3, DRAM
 * channels, POM-TLB) observe a realistic cross-core access order.
 *
 * The system also owns the telemetry layer (src/obs): a StatRegistry
 * every component publishes its counters into, an epoch-aligned
 * Sampler that snapshots them into a ring + JSONL stream during
 * run(), and the structured EventTracer behind the CSALT_TRACE_*
 * macros. openTrace()/setTraceSink() activate both against one sink.
 */

#ifndef CSALT_SIM_SYSTEM_H
#define CSALT_SIM_SYSTEM_H

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "obs/live_export.h"
#include "obs/sampler.h"
#include "obs/span_trace.h"
#include "obs/stat_registry.h"
#include "obs/trace_event.h"
#include "sim/core_model.h"
#include "sim/memory_system.h"
#include "vm/address_space.h"

namespace csalt
{

/** The simulated machine. */
class System
{
  public:
    explicit System(const SystemParams &params);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Register a VM address space (owned by the system). */
    VmContext &addVm(std::unique_ptr<VmContext> vm);

    /** Give core @p core its context rotation. */
    void setCoreContexts(
        unsigned core,
        std::vector<std::unique_ptr<SimContext>> contexts);

    /**
     * Run until every core retired @p instructions_per_core.
     * Cores that reach the quota stop issuing; the rest continue.
     */
    void run(std::uint64_t instructions_per_core);

    CoreModel &core(unsigned i) { return *cores_[i]; }
    const CoreModel &core(unsigned i) const { return *cores_[i]; }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    MemorySystem &mem() { return *mem_; }
    const MemorySystem &mem() const { return *mem_; }

    const VmContext &vm(unsigned i) const { return *vms_[i]; }
    VmContext &vm(unsigned i) { return *vms_[i]; }
    unsigned numVms() const
    {
        return static_cast<unsigned>(vms_.size());
    }

    const SystemParams &params() const { return params_; }

    // ------------------------------------------------- paranoid mode

    /**
     * Enable/disable the invariant self-checks (src/check): sampled
     * checks at every occupancy-epoch boundary plus a full pass when
     * run() returns; any violation raises kind=invariant. Defaults to
     * the CSALT_PARANOID environment variable, read at construction,
     * so `CSALT_PARANOID=1 ctest` audits the whole suite unchanged.
     */
    void setParanoid(bool on) { paranoid_ = on; }
    bool paranoid() const { return paranoid_; }

    /**
     * Discard all statistics gathered so far (warmup): typical use is
     * run(warmup_quota); clearAllStats(); run(measured_quota).
     * Also drops buffered telemetry samples.
     */
    void clearAllStats();

    /** Steps between occupancy samples (0 disables sampling). */
    void setOccupancySampleInterval(std::uint64_t steps)
    {
        occupancy_interval_ = steps;
    }

    // ------------------------------------------------------ telemetry

    /**
     * Populate the stat registry from every component. Idempotent;
     * run() calls it automatically. Call explicitly only to inspect
     * the registry before the first run(); requires the core context
     * rotations to be set already.
     */
    void finalizeStats();

    obs::StatRegistry &statRegistry() { return registry_; }
    const obs::StatRegistry &statRegistry() const { return registry_; }
    obs::Sampler &sampler() { return sampler_; }
    obs::EventTracer &tracer() { return tracer_; }

    /** Steps between stat-registry samples (0 disables; default 0). */
    void setStatSampleInterval(std::uint64_t steps)
    {
        stat_sample_interval_ = steps;
    }

    /**
     * Open @p path and stream telemetry (samples + events filtered
     * by @p categories) to it as JSONL. Installs this system's
     * tracer as the process-wide active tracer.
     * @return false when the file cannot be opened
     */
    bool openTrace(const std::string &path,
                   unsigned categories = obs::kCatAll);

    /**
     * Stream telemetry to a caller-owned stream instead of a file
     * (tests). Null detaches, equivalent to closeTrace().
     */
    void setTraceSink(std::ostream *out,
                      unsigned categories = obs::kCatAll);

    /**
     * Flush and detach the trace sink; deactivates the tracer. A
     * file opened by openTrace() streams into a tmp sibling and is
     * committed (renamed onto the real path) here, so a crash never
     * leaves a torn trace. Test hook: @p crash_before_rename skips
     * the commit, simulating a kill after the final flush.
     */
    void closeTrace(bool crash_before_rename = false);

    // ---------------------------------------------------- live export

    /**
     * Publish live snapshots from run() into a shared-memory region
     * external tools attach to (trace_inspect --attach). Empty
     * @p path means the conventional per-pid region under /dev/shm.
     * Also enabled without this call by a harness thread override
     * (obs::setThreadLiveExportPath) or $CSALT_LIVE_EXPORT (=1 for
     * the default path, or =<path>). The region file outlives the
     * system for post-mortem attach.
     */
    void enableLiveExport(std::string path = {});

    /** The active live region (null until run() opens it). */
    const obs::LiveExport *liveExport() const
    {
        return live_export_.get();
    }

    // ---------------------------------------------------- span tracing

    /**
     * Arm causal access-span tracing (obs/span_trace.h): every core
     * gets a recorder that deterministically samples 1 in
     * cfg.rate accesses into journey trees. Behavior-neutral — the
     * golden-stats gate compares a traced run's metrics byte-for-byte
     * against an untraced one. clearAllStats() drops warmup journeys.
     */
    void enableSpanTrace(const obs::SpanTraceConfig &cfg);

    /** The span trace (null unless enableSpanTrace() was called). */
    obs::SpanTrace *spanTrace() { return span_trace_.get(); }
    const obs::SpanTrace *spanTrace() const
    {
        return span_trace_.get();
    }

    /** Atomically write the binary span sidecar to @p path. */
    Status writeSpanSidecar(const std::string &path,
                            const std::string &label) const;

    // --------------------------------------------------- checkpointing

    /**
     * Run-position state ("system" snapshot chunk): lifetime step
     * counter, occupancy epoch, and the pending occupancy/stat
     * sample offsets of the in-progress run() call. Restoring marks
     * the next run() as a resume so it continues those offsets
     * instead of re-basing them — that is what makes a resumed run
     * fire every event at the same step as the uninterrupted one.
     */
    void saveRunState(snapshot::StateSerializer &s) const;
    void loadRunState(snapshot::StateDeserializer &d);

    /** Lifetime scheduler steps (snapshot metadata). */
    std::uint64_t steps() const { return steps_; }

    /** Occupancy epochs sampled so far (snapshot metadata). */
    std::uint64_t liveEpoch() const { return live_epoch_; }

    /**
     * Install a hook run() invokes at every event-block boundary
     * (heartbeat/occupancy/stat steps, after all due samples are
     * taken and every pending offset is strictly in the future — so
     * a checkpoint written from the hook resumes without skipping or
     * replaying a sample). The hook may raise kind=cancelled to stop
     * the run (signal-triggered final checkpoint). Null clears it.
     */
    void setCheckpointHook(std::function<void()> hook)
    {
        checkpoint_hook_ = std::move(hook);
    }

  private:
    void maybeOpenLiveExport();
    void publishLive(double t, bool finished = false);

    SystemParams params_;
    obs::StatRegistry registry_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    std::vector<std::unique_ptr<VmContext>> vms_;
    std::uint64_t occupancy_interval_ = 8192;
    bool paranoid_ = false;

    obs::Sampler sampler_{registry_};
    obs::EventTracer tracer_;
    std::unique_ptr<std::ofstream> trace_file_; //!< owned file sink
    std::string trace_path_; //!< commit target; stream goes to tmp
    std::uint64_t stat_sample_interval_ = 0;
    std::uint64_t steps_ = 0; //!< lifetime scheduler steps
    bool stats_registered_ = false;

    /** Pending sample offsets of the in-progress run() (members so a
     *  checkpoint can freeze them and a resumed run() can continue
     *  them instead of re-basing). */
    std::uint64_t next_occ_ = 0;
    std::uint64_t next_stat_ = 0;
    bool resume_pending_ = false; //!< next run() continues next_*_
    std::function<void()> checkpoint_hook_;

    std::unique_ptr<obs::SpanTrace> span_trace_;
    std::unique_ptr<obs::LiveExport> live_export_;
    std::string live_export_path_;      //!< explicit override
    bool live_export_requested_ = false;
    bool live_export_failed_ = false;   //!< create failed; don't retry
    std::uint64_t live_epoch_ = 0;      //!< occupancy epochs published
};

} // namespace csalt

#endif // CSALT_SIM_SYSTEM_H
