/**
 * @file
 * Top-level simulated machine: N cores over one MemorySystem, with a
 * min-clock interleaving scheduler so shared resources (L3, DRAM
 * channels, POM-TLB) observe a realistic cross-core access order.
 */

#ifndef CSALT_SIM_SYSTEM_H
#define CSALT_SIM_SYSTEM_H

#include <memory>
#include <vector>

#include "common/config.h"
#include "sim/core_model.h"
#include "sim/memory_system.h"
#include "vm/address_space.h"

namespace csalt
{

/** The simulated machine. */
class System
{
  public:
    explicit System(const SystemParams &params);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Register a VM address space (owned by the system). */
    VmContext &addVm(std::unique_ptr<VmContext> vm);

    /** Give core @p core its context rotation. */
    void setCoreContexts(
        unsigned core,
        std::vector<std::unique_ptr<SimContext>> contexts);

    /**
     * Run until every core retired @p instructions_per_core.
     * Cores that reach the quota stop issuing; the rest continue.
     */
    void run(std::uint64_t instructions_per_core);

    CoreModel &core(unsigned i) { return *cores_[i]; }
    const CoreModel &core(unsigned i) const { return *cores_[i]; }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    MemorySystem &mem() { return *mem_; }
    const MemorySystem &mem() const { return *mem_; }

    const SystemParams &params() const { return params_; }

    /**
     * Discard all statistics gathered so far (warmup): typical use is
     * run(warmup_quota); clearAllStats(); run(measured_quota).
     */
    void clearAllStats();

    /** Steps between occupancy samples (0 disables sampling). */
    void setOccupancySampleInterval(std::uint64_t steps)
    {
        occupancy_interval_ = steps;
    }

  private:
    SystemParams params_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    std::vector<std::unique_ptr<VmContext>> vms_;
    std::uint64_t occupancy_interval_ = 8192;
};

} // namespace csalt

#endif // CSALT_SIM_SYSTEM_H
