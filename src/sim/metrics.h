/**
 * @file
 * Derived, per-run metrics — the quantities the paper's tables and
 * figures report, computed from the raw counters of a finished run.
 */

#ifndef CSALT_SIM_METRICS_H
#define CSALT_SIM_METRICS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/cpi_stack.h"
#include "obs/histogram.h"
#include "obs/span_trace.h"

namespace csalt
{

class System;

/** Per-core summary. */
struct CoreMetrics
{
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    double ipc = 0.0;
    std::uint64_t memrefs = 0;
    std::uint64_t l1_tlb_misses = 0;
    std::uint64_t l2_tlb_misses = 0;
    std::uint64_t walks = 0;
};

/** Per-VM (context-slot) attribution, summed across cores. */
struct VmMetrics
{
    std::uint64_t instructions = 0;
    std::uint64_t l2_tlb_misses = 0;
    double l2_tlb_mpki = 0.0;
};

/** A named latency-histogram digest (registry name + summary). */
struct HistogramMetrics
{
    std::string name;
    obs::Histogram::Summary digest;
};

/** Host-time digest of one self-profiler phase (ns per scope). */
struct PhaseMetrics
{
    std::string name; //!< obs::phaseName ("tlb_probe", ...)
    obs::Histogram::Summary digest;
};

/** Whole-run summary. */
struct RunMetrics
{
    std::vector<CoreMetrics> cores;

    /** Indexed by context slot (VM order of the BuildSpec). */
    std::vector<VmMetrics> vms;

    /** CPI stacks: per core, per VM slot (summed across cores), and
     *  the machine total. Components sum to the charged cycles. */
    std::vector<obs::CpiStack> core_cpi;
    std::vector<obs::CpiStack> vm_cpi;
    obs::CpiStack cpi_total;

    /** Sum of per-core cycles since the last stats clear (exact). */
    double total_cycles = 0.0;

    /** Digest of every registered, non-empty latency histogram. */
    std::vector<HistogramMetrics> histograms;

    /**
     * Host wall-clock attribution per simulator phase (the calling
     * thread's obs::PhaseProfiler state); empty unless the profiler
     * is enabled. Host-dependent, so excluded from the resume
     * journal and from golden comparisons.
     */
    std::vector<PhaseMetrics> self_profile;

    /**
     * Sampled access-span critical-path summary (obs/span_trace.h);
     * present only when span tracing was enabled. Derived from a
     * deterministic sample of simulated accesses, so it is stable
     * across hosts — but like self_profile it is an observability
     * layer, not a simulated metric: the resume journal and golden
     * comparisons exclude it.
     */
    std::optional<obs::SpanSummary> span_summary;

    /** Geometric-mean IPC across cores (paper §4.2 metric). */
    double ipc_geomean = 0.0;

    std::uint64_t total_instructions = 0;
    std::uint64_t total_memrefs = 0;

    double l1_tlb_mpki = 0.0;
    double l2_tlb_mpki = 0.0;

    /** Data-cache MPKIs: all traffic, and the data-only subset. */
    double l2_mpki_total = 0.0;
    double l2_mpki_data = 0.0;
    double l3_mpki_total = 0.0;
    double l3_mpki_data = 0.0;

    std::uint64_t l2_tlb_misses = 0;
    std::uint64_t walks = 0;
    /** 1 - walks / L2-TLB-misses (paper Fig. 8). */
    double walks_eliminated = 0.0;
    /** Average cycles per walk (paper Table 1). */
    double avg_walk_cycles = 0.0;

    /** Mean fraction of capacity holding translation lines (Fig. 3). */
    double l2_translation_occupancy = 0.0;
    double l3_translation_occupancy = 0.0;

    double pom_hit_rate = 0.0;
};

/** Gather all metrics from a finished System run. */
RunMetrics collectMetrics(const System &system);

} // namespace csalt

#endif // CSALT_SIM_METRICS_H
