#include "sim/metrics.h"

#include "common/stats.h"
#include "obs/phase_profiler.h"
#include "sim/system.h"

namespace csalt
{

RunMetrics
collectMetrics(const System &system)
{
    RunMetrics m;
    std::vector<double> ipcs;

    std::uint64_t l1_misses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t walks = 0;
    std::uint64_t walk_cycles = 0;

    for (unsigned c = 0; c < system.numCores(); ++c) {
        const CoreModel &core = system.core(c);
        CoreMetrics cm;
        cm.instructions = core.stats().instructions;
        cm.cycles = core.cyclesSinceClear();
        cm.ipc = cm.cycles
                     ? static_cast<double>(cm.instructions) /
                           static_cast<double>(cm.cycles)
                     : 0.0;
        cm.memrefs = core.stats().memrefs;
        cm.l1_tlb_misses = core.tlbs().l1Stats().misses;
        cm.l2_tlb_misses = core.tlbs().l2().stats().misses;
        cm.walks = core.stats().walks;

        m.total_instructions += cm.instructions;
        m.total_memrefs += cm.memrefs;
        l1_misses += cm.l1_tlb_misses;
        l2_misses += cm.l2_tlb_misses;
        walks += cm.walks;
        walk_cycles += core.stats().walk_cycles;
        if (cm.ipc > 0.0)
            ipcs.push_back(cm.ipc);
        m.cores.push_back(cm);

        m.core_cpi.push_back(core.cpiStack());
        m.cpi_total += core.cpiStack();
        m.total_cycles += core.cyclesSinceClearExact();

        const auto &ctx_stats = core.contextStats();
        if (m.vms.size() < ctx_stats.size())
            m.vms.resize(ctx_stats.size());
        for (std::size_t i = 0; i < ctx_stats.size(); ++i) {
            m.vms[i].instructions += ctx_stats[i].instructions;
            m.vms[i].l2_tlb_misses += ctx_stats[i].l2_tlb_misses;
        }
        const auto &ctx_cpi = core.contextCpiStacks();
        if (m.vm_cpi.size() < ctx_cpi.size())
            m.vm_cpi.resize(ctx_cpi.size());
        for (std::size_t i = 0; i < ctx_cpi.size(); ++i)
            m.vm_cpi[i] += ctx_cpi[i];
    }
    for (auto &vm : m.vms)
        vm.l2_tlb_mpki = mpki(vm.l2_tlb_misses, vm.instructions);

    m.ipc_geomean = geomean(ipcs);
    m.l1_tlb_mpki = mpki(l1_misses, m.total_instructions);
    m.l2_tlb_mpki = mpki(l2_misses, m.total_instructions);
    m.l2_tlb_misses = l2_misses;
    m.walks = walks;
    m.walks_eliminated =
        l2_misses ? 1.0 - static_cast<double>(walks) /
                              static_cast<double>(l2_misses)
                  : 0.0;
    m.avg_walk_cycles =
        walks ? static_cast<double>(walk_cycles) /
                    static_cast<double>(walks)
              : 0.0;

    const MemorySystem &mem = system.mem();

    std::uint64_t l2_cache_misses = 0;
    std::uint64_t l2_cache_data_misses = 0;
    double l2_occ = 0.0;
    for (unsigned c = 0; c < system.numCores(); ++c) {
        const auto &stats = mem.l2(c).stats();
        l2_cache_misses += stats.totalMisses();
        l2_cache_data_misses += stats.missesOf(LineType::data);
        l2_occ += mem.l2Occupancy(c).meanTranslationFraction();
    }
    m.l2_mpki_total = mpki(l2_cache_misses, m.total_instructions);
    m.l2_mpki_data = mpki(l2_cache_data_misses, m.total_instructions);
    m.l2_translation_occupancy =
        system.numCores() ? l2_occ / system.numCores() : 0.0;

    const auto &l3stats = mem.l3().stats();
    m.l3_mpki_total = mpki(l3stats.totalMisses(), m.total_instructions);
    m.l3_mpki_data =
        mpki(l3stats.missesOf(LineType::data), m.total_instructions);
    m.l3_translation_occupancy =
        mem.l3Occupancy().meanTranslationFraction();

    m.pom_hit_rate = mem.pomLookupStats().hitRate();

    // Digest every registered latency histogram that saw traffic
    // (registry is populated by run(); empty before finalizeStats()).
    for (const auto &he : system.statRegistry().histograms()) {
        if (he.hist->empty())
            continue;
        m.histograms.push_back(
            HistogramMetrics{he.name, he.hist->percentileSummary()});
    }

    if (const obs::SpanTrace *spans = system.spanTrace())
        m.span_summary = spans->summary();

    // The calling thread ran the simulation (bench cells are
    // shared-nothing), so its profiler state is this run's profile —
    // parallel jobs never bleed into each other's self_profile.
    if (obs::PhaseProfiler::enabled()) {
        const obs::PhaseReport report =
            obs::PhaseProfiler::threadReport();
        for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
            const auto &digest = report.phases[i].digest;
            if (!digest.count)
                continue;
            m.self_profile.push_back(PhaseMetrics{
                obs::phaseName(static_cast<obs::Phase>(i)),
                digest});
        }
    }
    return m;
}

} // namespace csalt
