/**
 * @file
 * Serialisation of RunMetrics for external tooling: a flat CSV row
 * (one line per run, stable column order) and a JSON object. The
 * bench harnesses print human tables; these formats feed plots.
 */

#ifndef CSALT_SIM_METRICS_IO_H
#define CSALT_SIM_METRICS_IO_H

#include <string>

#include "sim/metrics.h"

namespace csalt
{

/** Comma-separated header matching metricsCsvRow(). */
std::string metricsCsvHeader();

/** One CSV row; @p label tags the run (workload/scheme). */
std::string metricsCsvRow(const std::string &label,
                          const RunMetrics &metrics);

/** Pretty-printed JSON object with per-core and per-VM detail. */
std::string metricsJson(const std::string &label,
                        const RunMetrics &metrics);

} // namespace csalt

#endif // CSALT_SIM_METRICS_IO_H
