/**
 * @file
 * Serialisation of RunMetrics for external tooling: a flat CSV row
 * (one line per run, stable column order) and a JSON object. The
 * bench harnesses print human tables; these formats feed plots.
 */

#ifndef CSALT_SIM_METRICS_IO_H
#define CSALT_SIM_METRICS_IO_H

#include <string>
#include <string_view>

#include "common/error.h"
#include "sim/metrics.h"

namespace csalt
{

/**
 * Version stamped into metricsJson output ("schema_version").
 * History: 1 = implicit (no field, PRs 1-5); 2 = adds the field
 * itself and the optional "self_profile" section; 3 = adds the
 * optional "span_summary" section (--span-trace).
 */
constexpr int kMetricsSchemaVersion = 3;

/** Comma-separated header matching metricsCsvRow(). */
std::string metricsCsvHeader();

/** One CSV row; @p label tags the run (workload/scheme). */
std::string metricsCsvRow(const std::string &label,
                          const RunMetrics &metrics);

/** Pretty-printed JSON object with per-core and per-VM detail. */
std::string metricsJson(const std::string &label,
                        const RunMetrics &metrics);

/**
 * Full-fidelity single-line encoding for the resume journal. Unlike
 * metricsJson (pretty, 6 significant digits, reporting subset), this
 * covers *every* RunMetrics field with shortest-faithful numbers, so
 * metricsFromJournal() reconstructs a bit-identical RunMetrics — a
 * resumed grid re-serialises byte-identically through metricsJson.
 */
std::string metricsJournalJson(const RunMetrics &metrics);

/** Inverse of metricsJournalJson (kind=parse error on bad input). */
Expected<RunMetrics> metricsFromJournal(std::string_view json);

} // namespace csalt

#endif // CSALT_SIM_METRICS_IO_H
