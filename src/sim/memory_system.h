/**
 * @file
 * The full memory hierarchy: per-core L1D/L2, shared L3, two DRAM
 * channels, the POM-TLB, the TSB arrays, page-table/frame allocators,
 * and the CSALT partition controllers — wired per paper Fig. 4/6.
 *
 * Latency accumulates along the demand path. Writebacks are modelled
 * off the critical path: a dirty victim is absorbed by the next level
 * that holds the line, or occupies the DRAM channel.
 *
 * Two access flavours exist, matching the paper's flowchart:
 *  - dataAccess():  L1D -> L2 -> L3 -> off-chip DRAM
 *  - translationAccess(): L2 -> L3 -> backing DRAM (stacked for POM
 *    lines, off-chip for page-table lines); this is the path taken by
 *    POM-TLB set probes, TSB probes and page-walk PTE reads.
 */

#ifndef CSALT_SIM_MEMORY_SYSTEM_H
#define CSALT_SIM_MEMORY_SYSTEM_H

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "cache/occupancy.h"
#include "common/config.h"
#include "core/criticality.h"
#include "core/csalt_controller.h"
#include "mem/dram.h"
#include "mem/memory_map.h"
#include "mem/phys_alloc.h"
#include "obs/cpi_stack.h"
#include "obs/histogram.h"
#include "tlb/pom_tlb.h"
#include "tlb/tsb.h"
#include "vm/page_walker.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

/** Lookup-level POM-TLB counters (a lookup may probe two sets). */
struct PomLookupStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t second_probes = 0;

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) / lookups : 0.0;
    }
};

/** Lookup-level Victima counters. */
struct VictimaLookupStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t second_probes = 0;
    /** Functional entry found but its line left the caches. */
    std::uint64_t evicted_entries = 0;
    std::uint64_t inserts = 0;
    /** Inserts skipped by the underutilization gate. */
    std::uint64_t inserts_gated = 0;

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) / lookups : 0.0;
    }
};

/** The complete memory side of the simulated machine. */
class MemorySystem : public TranslationMemIf
{
  public:
    explicit MemorySystem(const SystemParams &params);
    ~MemorySystem() override;

    // ------------------------------------------------- demand paths

    /**
     * Core data reference (full hierarchy). @return latency.
     * @param bd when non-null, receives the raw (un-overlapped) cycle
     *        split of the returned latency: data_l1d for the L1D
     *        probe, then data_l2 / data_l3 / data_dram for each level
     *        the reference had to descend to. Stamped amounts sum to
     *        the return value exactly.
     */
    Cycles dataAccess(unsigned core, Addr hpa, AccessType type,
                      Cycles now, obs::LatencyBreakdown *bd = nullptr);

    /** Cacheable translation reference (POM/TSB/PTE). @return latency. */
    Cycles translationAccess(unsigned core, Addr hpa,
                             Cycles now) override;

    // --------------------------------------------------- POM-TLB path

    struct PomResult
    {
        bool hit = false;
        Mapping mapping;
        Cycles latency = 0;
    };

    /**
     * Full POM-TLB lookup: predict page size, probe (cacheably) the
     * predicted set, probe the other size on a functional miss.
     */
    PomResult pomLookup(unsigned core, Asid asid, Addr gva,
                        PageSizePredictor &predictor, Cycles now);

    /** Install a walk result into the POM-TLB (functional). */
    void pomInsert(Asid asid, Addr gva, const Mapping &mapping);

    // ------------------------------------------------------ TSB path

    struct TsbResult
    {
        bool hit = false;
        Mapping mapping;
        Cycles latency = 0;
    };

    /** TSB lookup: 1 (native) or up to 2 (virtualized) probes. */
    TsbResult tsbLookup(unsigned core, VmContext &ctx, Addr gva,
                        Cycles now);

    /** Fill the TSB arrays after a walk. */
    void tsbInsert(VmContext &ctx, Addr gva, const Mapping &mapping);

    // -------------------------------------------------- Victima path

    using VictimaResult = PomResult;

    /**
     * Victima lookup: probe the predicted-size entry set, then the
     * other size. An entry only hits while its 64B set line is still
     * resident in the L2/L3 data arrays — the probe is a non-filling
     * cache touch, so residency is decided by the ordinary
     * replacement/partition machinery and never fabricated.
     */
    VictimaResult victimaLookup(unsigned core, Asid asid, Addr gva,
                                PageSizePredictor &predictor,
                                Cycles now);

    /**
     * Install a walk result: functional insert plus an off-path fill
     * of the entry line into L2 and L3, gated by the translation-
     * occupancy ceiling (Victima only steals underutilized blocks).
     */
    void victimaInsert(unsigned core, Asid asid, Addr gva,
                       const Mapping &mapping, Cycles now);

    // -------------------------------------------------- walk feedback

    /** Record a completed page walk (criticality estimation). */
    void recordWalk(Cycles latency);

    // ------------------------------------------------------ sampling

    /** Sample translation occupancy of every cache (paper Fig. 3). */
    void sampleOccupancy(double time);

    /**
     * Register every memory-side stat: per-core caches, shared L3,
     * both DRAM channels, POM-TLB, TSB and the partition controllers
     * (telemetry; see docs/observability.md for the name scheme).
     */
    void registerStats(obs::StatRegistry &reg) const;

    /**
     * Zero every reporting counter (caches, DRAMs, POM/TSB, samplers,
     * partition traces) without touching simulated state — used to
     * discard warmup.
     */
    void clearAllStats();

    // ----------------------------------------------------- components

    Cache &l1d(unsigned core) { return *l1d_[core]; }
    const Cache &l1d(unsigned core) const { return *l1d_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    const Cache &l2(unsigned core) const { return *l2_[core]; }
    Cache &l3() { return *l3_; }
    const Cache &l3() const { return *l3_; }
    DramChannel &ddr() { return *ddr_; }
    DramChannel &stacked() { return *stacked_; }
    PomTlb &pom() { return *pom_; }
    const PomTlb &pom() const { return *pom_; }
    PomTlb &victima() { return *victima_; }
    const PomTlb &victima() const { return *victima_; }
    Tsb &tsb() { return *tsb_; }
    const MemoryMap &map() const { return map_; }
    FrameAllocator &dataFrames() { return *data_frames_; }
    FrameAllocator &ptFrames() { return *pt_frames_; }

    PartitionController &l2Controller(unsigned core)
    {
        return *l2_ctl_[core];
    }
    PartitionController &l3Controller() { return *l3_ctl_; }
    CriticalityEstimator &l2Criticality() { return *l2_crit_; }
    CriticalityEstimator &l3Criticality() { return *l3_crit_; }

    OccupancySampler &l2Occupancy(unsigned core)
    {
        return *l2_occ_[core];
    }
    const OccupancySampler &l2Occupancy(unsigned core) const
    {
        return *l2_occ_[core];
    }
    OccupancySampler &l3Occupancy() { return *l3_occ_; }
    const OccupancySampler &l3Occupancy() const { return *l3_occ_; }

    const PomLookupStats &pomLookupStats() const { return pom_stats_; }
    const VictimaLookupStats &victimaLookupStats() const
    {
        return victima_stats_;
    }

    /** System-wide walk-latency distribution (fed by recordWalk()). */
    const obs::Histogram &walkLatHist() const { return walk_hist_; }

    /** POM-TLB lookup latency distribution (both probes included). */
    const obs::Histogram &pomLatHist() const { return pom_lat_hist_; }

    unsigned numCores() const
    {
        return static_cast<unsigned>(l1d_.size());
    }

    /**
     * Checkpoint: every stateful memory-side component — frame
     * allocators, caches, DRAM channels, POM/Victima/TSB stores,
     * criticality estimators, partition controllers, occupancy
     * samplers, lookup counters and latency histograms. Optional
     * components travel behind presence flags validated against the
     * scheme-derived build.
     */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    /**
     * Route a dirty victim downward (off the critical path).
     * @param from_level level that evicted it (1 = L1D, 2 = L2, 3 = L3)
     */
    void writeback(unsigned core, const Victim &victim,
                   unsigned from_level, Cycles now);

    /** DRAM access for @p hpa on the right channel. */
    Cycles dramAccess(Addr hpa, Cycles now);

    /**
     * Non-filling residency touch of a translation line: L2, then L3
     * on an L2 miss. Never descends to DRAM — absence from both
     * arrays IS the Victima miss. @return probe latency.
     */
    Cycles touchTranslationLine(unsigned core, Addr hpa, Cycles now,
                                bool &resident);

    SystemParams params_;
    MemoryMap map_;
    std::unique_ptr<FrameAllocator> data_frames_;
    std::unique_ptr<FrameAllocator> pt_frames_;

    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;
    std::unique_ptr<DramChannel> ddr_;
    std::unique_ptr<DramChannel> stacked_;
    std::unique_ptr<PomTlb> pom_;
    std::unique_ptr<PomTlb> victima_; //!< cache-resident entry store
    std::unique_ptr<Tsb> tsb_;

    std::unique_ptr<CriticalityEstimator> l2_crit_;
    std::unique_ptr<CriticalityEstimator> l3_crit_;
    std::vector<std::unique_ptr<PartitionController>> l2_ctl_;
    std::unique_ptr<PartitionController> l3_ctl_;

    std::vector<std::unique_ptr<OccupancySampler>> l2_occ_;
    std::unique_ptr<OccupancySampler> l3_occ_;

    PomLookupStats pom_stats_;
    VictimaLookupStats victima_stats_;

    //!< Per-core demand-latency distributions ("coreN.mem.*_lat").
    std::vector<obs::Histogram> data_hist_;
    std::vector<obs::Histogram> trans_hist_;
    obs::Histogram pom_lat_hist_;     //!< "pom.lookup.lat"
    obs::Histogram victima_lat_hist_; //!< "victima.lookup.lat"
    obs::Histogram walk_hist_;        //!< "walk.lat" (recordWalk feed)
};

} // namespace csalt

#endif // CSALT_SIM_MEMORY_SYSTEM_H
