#include "sim/core_model.h"

#include "common/log.h"
#include "snapshot/state_io.h"
#include "obs/stat_registry.h"
#include "obs/trace_event.h"

namespace csalt
{

CoreModel::CoreModel(unsigned id, const SystemParams &params,
                     MemorySystem &mem)
    : id_(id), params_(params), mem_(mem), tlbs_(params),
      mmu_(params.psc), next_switch_(params.cs_interval)
{
    walker_ = std::make_unique<PageWalker>(id_, mmu_, mem_);
    if (params_.translation == TranslationKind::pcax)
        pcax_ = std::make_unique<PcaxPredictor>(params_.pcax);
}

CoreModel::~CoreModel() = default;

void
CoreModel::setContexts(std::vector<std::unique_ptr<SimContext>> contexts)
{
    if (contexts.empty())
        fatal("core needs at least one context");
    contexts_ = std::move(contexts);
    ctx_stats_.assign(contexts_.size(), ContextStats{});
    ctx_cpi_.assign(contexts_.size(), obs::CpiStack{});
    current_ = 0;
}

void
CoreModel::maybeContextSwitch()
{
    if (contexts_.size() < 2)
        return;
    if (clock() < next_switch_)
        return;
    const std::size_t from = current_;
    current_ = (current_ + 1) % contexts_.size();
    cycles_ += static_cast<double>(params_.core.cs_penalty);
    // The incoming context pays the direct switch cost: it is the one
    // that cannot retire until the switch completes.
    cpi_.add(obs::CpiComponent::csSwitch,
             static_cast<double>(params_.core.cs_penalty));
    ctx_cpi_[current_].add(obs::CpiComponent::csSwitch,
                           static_cast<double>(params_.core.cs_penalty));
    next_switch_ += params_.cs_interval;
    ++stats_.context_switches;

    CSALT_TRACE_INSTANT(
        obs::kCatContextSwitch, "context_switch", id_,
        static_cast<double>(clock()),
        obs::EventArgs()
            .add("core", id_)
            .add("from_slot", static_cast<std::uint64_t>(from))
            .add("to_slot", static_cast<std::uint64_t>(current_))
            .add("asid",
                 static_cast<unsigned>(contexts_[current_]->asid())));
}

Cycles
CoreModel::translate(SimContext &ctx, Addr gva, Addr pc, Mapping &out,
                     obs::LatencyBreakdown &bd)
{
    VmContext &vm = ctx.vm();

    // Demand-map before any simulated lookup so page tables exist.
    out = vm.mappingOf(gva);

    const Cycles now = clock();
    TlbLookupResult tlb = tlbs_.lookup(vm.asid(), gva, now);
    bd.add(obs::CpiComponent::tlbProbe,
           static_cast<double>(tlb.latency));
    if (tlb.l1_hit || tlb.l2_hit) {
        out = tlb.mapping;
        return tlb.latency;
    }
    ++ctx_stats_[current_].l2_tlb_misses;
    Cycles lat = tlb.latency; // the L2 TLB miss probe

    switch (params_.translation) {
      case TranslationKind::pomTlb: {
        const auto pom = mem_.pomLookup(id_, vm.asid(), gva,
                                        size_predictor_, now + lat);
        lat += pom.latency;
        bd.add(obs::CpiComponent::pomAccess,
               static_cast<double>(pom.latency));
        if (pom.hit) {
            out = pom.mapping;
            tlbs_.fill(vm.asid(), gva, out);
            return lat;
        }
        const auto walk = walker_->walk(vm, gva, now + lat, &bd);
        lat += walk.latency;
        ++stats_.walks;
        stats_.walk_cycles += walk.latency;
        mem_.recordWalk(walk.latency);
        out = walk.mapping;
        size_predictor_.update(gva, out.ps);
        mem_.pomInsert(vm.asid(), gva, out);
        tlbs_.fill(vm.asid(), gva, out);
        return lat;
      }
      case TranslationKind::tsb: {
        const auto tsb = mem_.tsbLookup(id_, vm, gva, now + lat);
        lat += tsb.latency;
        bd.add(obs::CpiComponent::tsbAccess,
               static_cast<double>(tsb.latency));
        if (tsb.hit) {
            out = tsb.mapping;
            tlbs_.fill(vm.asid(), gva, out);
            return lat;
        }
        const auto walk = walker_->walk(vm, gva, now + lat, &bd);
        lat += walk.latency;
        ++stats_.walks;
        stats_.walk_cycles += walk.latency;
        mem_.recordWalk(walk.latency);
        out = walk.mapping;
        mem_.tsbInsert(vm, gva, out);
        tlbs_.fill(vm.asid(), gva, out);
        return lat;
      }
      case TranslationKind::victima: {
        const auto vic = mem_.victimaLookup(id_, vm.asid(), gva,
                                            size_predictor_,
                                            now + lat);
        lat += vic.latency;
        // Victima probes ARE cache accesses to the entry line; like
        // the POM-TLB they land in the pomAccess component (no new
        // CPI component — the stack layout is pinned by goldens).
        bd.add(obs::CpiComponent::pomAccess,
               static_cast<double>(vic.latency));
        if (vic.hit) {
            out = vic.mapping;
            tlbs_.fill(vm.asid(), gva, out);
            return lat;
        }
        const auto walk = walker_->walk(vm, gva, now + lat, &bd);
        lat += walk.latency;
        ++stats_.walks;
        stats_.walk_cycles += walk.latency;
        mem_.recordWalk(walk.latency);
        out = walk.mapping;
        size_predictor_.update(gva, out.ps);
        mem_.victimaInsert(id_, vm.asid(), gva, out, now + lat);
        tlbs_.fill(vm.asid(), gva, out);
        return lat;
      }
      case TranslationKind::pcax: {
        // Probed alongside the L2 TLB: the prediction is only
        // consumed here, on an L2 miss, so charging its fixed cost
        // at this point is timing-equivalent to the parallel probe.
        obs::SpanBuilder *sb = obs::spanBuilder();
        const int sp = sb ? sb->open(obs::SpanKind::pcax_lookup,
                                     now + lat)
                          : -1;
        const Cycles plat = params_.pcax.latency;
        lat += plat;
        bd.add(obs::CpiComponent::tlbProbe,
               static_cast<double>(plat));
        const auto pred = pcax_->predict(vm.asid(), pc, gva);
        if (sb) {
            sb->close(sp, now + lat,
                      pred.hit ? obs::kSpanFlagHit : 0);
        }
        if (pred.hit) {
            out = pred.mapping;
            tlbs_.fill(vm.asid(), gva, out);
            return lat;
        }
        const auto walk = walker_->walk(vm, gva, now + lat, &bd);
        lat += walk.latency;
        ++stats_.walks;
        stats_.walk_cycles += walk.latency;
        mem_.recordWalk(walk.latency);
        out = walk.mapping;
        pcax_->update(vm.asid(), pc, gva, out);
        tlbs_.fill(vm.asid(), gva, out);
        return lat;
      }
      case TranslationKind::conventional:
      default: {
        const auto walk = walker_->walk(vm, gva, now + lat, &bd);
        lat += walk.latency;
        ++stats_.walks;
        stats_.walk_cycles += walk.latency;
        mem_.recordWalk(walk.latency);
        out = walk.mapping;
        tlbs_.fill(vm.asid(), gva, out);
        return lat;
      }
    }
}

void
CoreModel::step()
{
    maybeContextSwitch();

    SimContext &ctx = *contexts_[current_];
    const TraceRecord rec = ctx.trace().next();

    // Sampled journey? Decided purely by (core, memref ordinal,
    // seed), so the sample set is identical at --jobs 1 and N and no
    // RNG stream is perturbed. Root span opens at dispatch; every
    // component below records children through the thread-local
    // builder until end().
    const bool sampled =
        span_rec_ && span_rec_->shouldSample(stats_.memrefs);
    const double span_start = cycles_;
    if (sampled) {
        span_rec_->begin(stats_.memrefs, rec.vaddr, ctx.asid(),
                         clock());
    }

    // One ledger per reference: every cycle charged below is stamped
    // into exactly one component, then folded into the core and slot
    // CPI stacks, so the stacks always sum to the charged cycles.
    obs::LatencyBreakdown bd;

    const double compute = params_.core.base_cpi * rec.icount;
    cycles_ += compute;
    bd.add(obs::CpiComponent::compute, compute);
    stats_.instructions += rec.icount;
    ++stats_.memrefs;
    ctx_stats_[current_].instructions += rec.icount;
    ++ctx_stats_[current_].memrefs;

    Mapping mapping;
    const Cycles tlat =
        translate(ctx, rec.vaddr, rec.pc, mapping, bd);
    cycles_ += static_cast<double>(tlat);
    stats_.translation_cycles += tlat;

    const Addr hpa =
        mapping.frame + (rec.vaddr & (pageBytes(mapping.ps) - 1));
    // The data path stamps its raw level split into a side ledger;
    // only 1/mlp of it is charged, so rescale the split to the
    // charged amount before folding it in.
    obs::LatencyBreakdown data_bd;
    const Cycles dlat =
        mem_.dataAccess(id_, hpa, rec.type, clock(), &data_bd);
    const double charged =
        static_cast<double>(dlat) / params_.core.mlp;
    cycles_ += charged;
    bd.addScaled(data_bd, charged);
    stats_.data_cycles += static_cast<Cycles>(charged);

    if (sampled) {
        span_rec_->end(clock(), static_cast<std::uint32_t>(
                                    cycles_ - span_start));
    }

    cpi_ += bd;
    ctx_cpi_[current_] += bd;
}

void
CoreModel::registerStats(obs::StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + ".instructions", &stats_.instructions);
    reg.addCounter(prefix + ".memrefs", &stats_.memrefs);
    reg.addCounter(prefix + ".context_switches",
                   &stats_.context_switches);
    reg.addCounter(prefix + ".translation_cycles",
                   &stats_.translation_cycles);
    reg.addCounter(prefix + ".data_cycles", &stats_.data_cycles);
    reg.addCounter(prefix + ".walks", &stats_.walks);
    reg.addCounter(prefix + ".walk_cycles", &stats_.walk_cycles);
    reg.addGauge(prefix + ".ipc", [this] {
        const double cycles =
            static_cast<double>(cyclesSinceClear());
        return cycles > 0.0
                   ? static_cast<double>(stats_.instructions) / cycles
                   : 0.0;
    });

    // One gauge per CPI-stack component ("core0.cpi.compute", ...).
    // No ".cpi.total" gauge: consumers sum the components, which by
    // construction equal cyclesSinceClear().
    for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
        const auto comp = static_cast<obs::CpiComponent>(i);
        reg.addGauge(prefix + ".cpi." +
                         obs::cpiComponentName(comp),
                     [this, comp] { return cpi_.of(comp); });
    }

    tlbs_.registerStats(reg, prefix);
    walker_->registerStats(reg, prefix);
    if (pcax_)
        pcax_->registerStats(reg, prefix + ".pcax");

    // Per-context (= per-VM slot) attribution. ctx_stats_ is sized by
    // setContexts() and never reallocates afterwards, so the counter
    // addresses are stable.
    for (std::size_t i = 0; i < ctx_stats_.size(); ++i) {
        const std::string vm = prefix + ".vm" + std::to_string(i);
        reg.addCounter(vm + ".instructions",
                       &ctx_stats_[i].instructions);
        reg.addCounter(vm + ".memrefs", &ctx_stats_[i].memrefs);
        reg.addCounter(vm + ".l2_tlb_misses",
                       &ctx_stats_[i].l2_tlb_misses);
    }
}


void
CoreModel::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(current_);
    s.putDouble(cycles_);
    s.putDouble(cycle_baseline_);
    s.putU64(next_switch_);

    tlbs_.saveState(s);
    mmu_.saveState(s);
    walker_->saveState(s);
    size_predictor_.saveState(s);
    s.putBool(pcax_ != nullptr);
    if (pcax_)
        pcax_->saveState(s);

    s.putU64(stats_.instructions);
    s.putU64(stats_.memrefs);
    s.putU64(stats_.context_switches);
    s.putU64(stats_.translation_cycles);
    s.putU64(stats_.data_cycles);
    s.putU64(stats_.walks);
    s.putU64(stats_.walk_cycles);

    s.putU64(ctx_stats_.size());
    for (const ContextStats &cs : ctx_stats_) {
        s.putU64(cs.instructions);
        s.putU64(cs.memrefs);
        s.putU64(cs.l2_tlb_misses);
    }
    cpi_.saveState(s);
    s.putU64(ctx_cpi_.size());
    for (const obs::CpiStack &stack : ctx_cpi_)
        stack.saveState(s);

    s.putU64(contexts_.size());
    for (const auto &ctx : contexts_)
        ctx->trace().saveState(s);
}

void
CoreModel::loadState(snapshot::StateDeserializer &d)
{
    const std::uint64_t slot = d.getU64();
    if (slot >= contexts_.size())
        d.fail("core scheduler slot beyond the context rotation");
    current_ = static_cast<std::size_t>(slot);
    cycles_ = d.getDouble();
    cycle_baseline_ = d.getDouble();
    next_switch_ = d.getU64();

    tlbs_.loadState(d);
    mmu_.loadState(d);
    walker_->loadState(d);
    size_predictor_.loadState(d);
    if (d.getBool() != (pcax_ != nullptr))
        d.fail("core PCAX-predictor presence mismatch");
    if (pcax_)
        pcax_->loadState(d);

    stats_.instructions = d.getU64();
    stats_.memrefs = d.getU64();
    stats_.context_switches = d.getU64();
    stats_.translation_cycles = d.getU64();
    stats_.data_cycles = d.getU64();
    stats_.walks = d.getU64();
    stats_.walk_cycles = d.getU64();

    if (d.getU64() != ctx_stats_.size())
        d.fail("core per-context stats count mismatch");
    for (ContextStats &cs : ctx_stats_) {
        cs.instructions = d.getU64();
        cs.memrefs = d.getU64();
        cs.l2_tlb_misses = d.getU64();
    }
    cpi_.loadState(d);
    if (d.getU64() != ctx_cpi_.size())
        d.fail("core per-context CPI-stack count mismatch");
    for (obs::CpiStack &stack : ctx_cpi_)
        stack.loadState(d);

    if (d.getU64() != contexts_.size())
        d.fail("core context-rotation size mismatch");
    for (const auto &ctx : contexts_)
        ctx->trace().loadState(d);
}

} // namespace csalt
