#include "sim/memory_system.h"

#include "common/log.h"
#include "snapshot/state_io.h"
#include "obs/phase_profiler.h"
#include "obs/span_trace.h"
#include "obs/stat_registry.h"

namespace csalt
{

namespace
{

/** Span flags of one cache-probe outcome on a sampled journey. */
std::uint16_t
cacheSpanFlags(bool hit, LineType lt, const Victim &victim)
{
    std::uint16_t flags = hit ? obs::kSpanFlagHit : 0;
    if (lt == LineType::translation) {
        flags |= obs::kSpanFlagTranslation;
        // A translation fill that pushed out a data line: the
        // pollution CSALT's partitioning exists to stop.
        if (!hit && victim.valid && victim.type == LineType::data)
            flags |= obs::kSpanFlagEvictedData;
    }
    return flags;
}

} // namespace

MemorySystem::MemorySystem(const SystemParams &params)
    : params_(params),
      map_(params.ranges.data_bytes, params.ranges.pt_bytes,
           params.pom.size_bytes, params.victima.size_bytes)
{
    validate(params_);

    data_frames_ = std::make_unique<FrameAllocator>(
        map_.dataBase(), map_.dataLimit(), params_.seed * 31 + 1);

    // The TSB arrays are carved from the head of the page-table
    // range; table nodes are allocated behind them.
    const std::uint64_t tsb_reserve =
        params_.max_asids * Tsb::bytesPerAsid(params_.tsb);
    if (map_.ptBase() + tsb_reserve >= map_.ptLimit())
        fatal("page-table range too small for the TSB arrays");
    pt_frames_ = std::make_unique<FrameAllocator>(
        map_.ptBase() + tsb_reserve, map_.ptLimit(),
        params_.seed * 31 + 2, /*huge_share=*/0.0);
    tsb_ = std::make_unique<Tsb>(params_.tsb, map_.ptBase(),
                                 params_.max_asids);

    pom_ = std::make_unique<PomTlb>(params_.pom, map_.pomBase());

    // The Victima entry store reuses the PomTlb packing: one 64B line
    // per set, addressed in its own range so the caches classify it
    // as translation. Always built (it is only memory); only the
    // victima scheme probes it.
    const PomTlbParams victima_geom{params_.victima.size_bytes,
                                    params_.victima.ways,
                                    params_.victima.entry_bytes};
    victima_ =
        std::make_unique<PomTlb>(victima_geom, map_.victimaBase());

    for (unsigned c = 0; c < params_.num_cores; ++c) {
        l1d_.push_back(std::make_unique<Cache>(params_.l1d));
        l2_.push_back(std::make_unique<Cache>(params_.l2));
    }
    l3_ = std::make_unique<Cache>(params_.l3);

    ddr_ = std::make_unique<DramChannel>(params_.ddr);
    stacked_ = std::make_unique<DramChannel>(params_.stacked);

    l2_crit_ = std::make_unique<CriticalityEstimator>(
        params_.l2.latency, params_.core.mlp);
    l3_crit_ = std::make_unique<CriticalityEstimator>(
        params_.l3.latency, params_.core.mlp);

    for (unsigned c = 0; c < params_.num_cores; ++c) {
        l2_ctl_.push_back(std::make_unique<PartitionController>(
            *l2_[c], params_.l2_partition, l2_crit_.get(),
            "ctrl.core" + std::to_string(c) + ".l2"));
        l2_occ_.push_back(std::make_unique<OccupancySampler>(*l2_[c]));
    }
    l3_ctl_ = std::make_unique<PartitionController>(
        *l3_, params_.l3_partition, l3_crit_.get(), "ctrl.l3");
    l3_occ_ = std::make_unique<OccupancySampler>(*l3_);

    data_hist_.resize(params_.num_cores);
    trans_hist_.resize(params_.num_cores);
}

MemorySystem::~MemorySystem() = default;

Cycles
MemorySystem::dramAccess(Addr hpa, Cycles now)
{
    const bool is_stacked = map_.backingOf(hpa) == Backing::stacked;
    DramChannel &ch = is_stacked ? *stacked_ : *ddr_;
    obs::SpanBuilder *sb = obs::spanBuilder();
    if (!sb)
        return ch.access(hpa, now);

    const std::uint16_t trans_flag =
        map_.classify(hpa) == LineType::translation
            ? obs::kSpanFlagTranslation
            : 0;
    const int sd = sb->open(obs::SpanKind::dram, now,
                            is_stacked ? 1 : 0);
    DramAccessDetail det;
    const Cycles total = ch.access(hpa, now, &det);
    const int sq = sb->open(obs::SpanKind::dram_queue, now);
    sb->close(sq, now + det.queue, trans_flag);
    const int ss =
        sb->open(obs::SpanKind::dram_service, now + det.queue);
    sb->close(ss, now + det.queue + det.service,
              trans_flag |
                  (det.row_hit ? obs::kSpanFlagHit : 0));
    sb->close(sd, now + total,
              trans_flag | (det.row_hit ? obs::kSpanFlagHit : 0));
    return total;
}

void
MemorySystem::writeback(unsigned core, const Victim &victim,
                        unsigned from_level, Cycles now)
{
    // Writebacks happen at future timestamps off the demand path; a
    // sampled journey must not absorb their cache/DRAM spans.
    obs::SpanSuppressScope no_spans;
    if (from_level < 2 &&
        l2_[core]->markDirtyIfPresent(victim.line_addr)) {
        return;
    }
    if (from_level < 3 && l3_->markDirtyIfPresent(victim.line_addr))
        return;
    // Off the critical path: occupy the channel, charge nobody.
    dramAccess(victim.line_addr, now);
}

Cycles
MemorySystem::dataAccess(unsigned core, Addr hpa, AccessType type,
                         Cycles now, obs::LatencyBreakdown *bd)
{
    CSALT_PROFILE_SCOPE(cache_access);
    obs::SpanBuilder *sb = obs::spanBuilder();
    const LineType lt = map_.classify(hpa);

    Cycles lat = l1d_[core]->latency();
    if (bd)
        bd->add(obs::CpiComponent::dataL1d,
                static_cast<double>(lat));
    const auto r1 = l1d_[core]->access(hpa, type, lt);
    if (sb) {
        const int s = sb->open(obs::SpanKind::cache_l1d, now, 1);
        sb->close(s, now + lat, cacheSpanFlags(r1.hit, lt, r1.victim));
    }
    if (r1.hit) {
        data_hist_[core].record(lat);
        return lat;
    }
    if (r1.victim.valid && r1.victim.dirty)
        writeback(core, r1.victim, 1, now + lat);

    const Cycles t_l2 = now + lat;
    lat += l2_[core]->latency();
    if (bd)
        bd->add(obs::CpiComponent::dataL2,
                static_cast<double>(l2_[core]->latency()));
    l2_ctl_[core]->onAccess(now);
    const auto r2 = l2_[core]->access(hpa, AccessType::read, lt);
    if (sb) {
        const int s = sb->open(obs::SpanKind::cache_l2, t_l2, 2);
        sb->close(s, now + lat, cacheSpanFlags(r2.hit, lt, r2.victim));
    }
    if (r2.victim.valid && r2.victim.dirty)
        writeback(core, r2.victim, 2, now + lat);
    if (r2.hit) {
        data_hist_[core].record(lat);
        return lat;
    }
    const Cycles beyond_l2_base = lat;

    const Cycles t_l3 = now + lat;
    lat += l3_->latency();
    if (bd)
        bd->add(obs::CpiComponent::dataL3,
                static_cast<double>(l3_->latency()));
    l3_ctl_->onAccess(now);
    const auto r3 = l3_->access(hpa, AccessType::read, lt);
    if (sb) {
        const int s = sb->open(obs::SpanKind::cache_l3, t_l3, 3);
        sb->close(s, now + lat, cacheSpanFlags(r3.hit, lt, r3.victim));
    }
    if (r3.victim.valid && r3.victim.dirty)
        writeback(core, r3.victim, 3, now + lat);
    if (!r3.hit) {
        const Cycles dlat = dramAccess(hpa, now + lat);
        lat += dlat;
        if (bd)
            bd->add(obs::CpiComponent::dataDram,
                    static_cast<double>(dlat));
        l3_crit_->recordDramLatency(dlat);
    }
    l2_crit_->recordDramLatency(lat - beyond_l2_base);
    data_hist_[core].record(lat);
    return lat;
}

Cycles
MemorySystem::translationAccess(unsigned core, Addr hpa, Cycles now)
{
    const LineType lt = map_.classify(hpa);
    if (lt != LineType::translation)
        panic(msgOf("translationAccess to data address ", hpa));
    obs::SpanBuilder *sb = obs::spanBuilder();

    Cycles lat = l2_[core]->latency();
    l2_ctl_[core]->onAccess(now);
    const auto r2 = l2_[core]->access(hpa, AccessType::read, lt);
    if (sb) {
        const int s = sb->open(obs::SpanKind::cache_l2, now, 2);
        sb->close(s, now + lat, cacheSpanFlags(r2.hit, lt, r2.victim));
    }
    if (r2.victim.valid && r2.victim.dirty)
        writeback(core, r2.victim, 2, now + lat);
    if (r2.hit)
        return lat;
    const Cycles beyond_l2_base = lat;

    const Cycles t_l3 = now + lat;
    lat += l3_->latency();
    l3_ctl_->onAccess(now);
    const auto r3 = l3_->access(hpa, AccessType::read, lt);
    if (sb) {
        const int s = sb->open(obs::SpanKind::cache_l3, t_l3, 3);
        sb->close(s, now + lat, cacheSpanFlags(r3.hit, lt, r3.victim));
    }
    if (r3.victim.valid && r3.victim.dirty)
        writeback(core, r3.victim, 3, now + lat);
    if (!r3.hit) {
        const Cycles dlat = dramAccess(hpa, now + lat);
        lat += dlat;
        l3_crit_->recordPomLatency(dlat);
    }
    l2_crit_->recordPomLatency(lat - beyond_l2_base);
    trans_hist_[core].record(lat);
    return lat;
}

MemorySystem::PomResult
MemorySystem::pomLookup(unsigned core, Asid asid, Addr gva,
                        PageSizePredictor &predictor, Cycles now)
{
    CSALT_PROFILE_SCOPE(pom_access);
    PomResult res;
    ++pom_stats_.lookups;
    obs::SpanBuilder *sb = obs::spanBuilder();
    const int sp =
        sb ? sb->open(obs::SpanKind::pom_lookup, now) : -1;
    bool second_probe = false;

    const PageSize first = predictor.predict(gva);
    const auto p1 = pom_->probe(asid, gva, first);
    res.latency += translationAccess(core, p1.line_addr, now);
    if (p1.hit) {
        res.hit = true;
        res.mapping = p1.mapping;
    } else {
        // Mispredicted size or genuine miss: probe the other set.
        const PageSize second = first == PageSize::size4K
                                    ? PageSize::size2M
                                    : PageSize::size4K;
        ++pom_stats_.second_probes;
        second_probe = true;
        const auto p2 = pom_->probe(asid, gva, second);
        res.latency +=
            translationAccess(core, p2.line_addr, now + res.latency);
        if (p2.hit) {
            res.hit = true;
            res.mapping = p2.mapping;
        }
    }

    if (res.hit) {
        ++pom_stats_.hits;
        predictor.update(gva, res.mapping.ps);
    }
    if (sb) {
        sb->close(sp, now + res.latency,
                  (res.hit ? obs::kSpanFlagHit : 0) |
                      (second_probe ? obs::kSpanFlagSecondProbe
                                    : 0));
    }
    pom_lat_hist_.record(res.latency);
    l2_crit_->recordPomOutcome(res.hit);
    l3_crit_->recordPomOutcome(res.hit);
    return res;
}

void
MemorySystem::pomInsert(Asid asid, Addr gva, const Mapping &mapping)
{
    pom_->insert(asid, gva, mapping);
}

MemorySystem::TsbResult
MemorySystem::tsbLookup(unsigned core, VmContext &ctx, Addr gva,
                        Cycles now)
{
    TsbResult res;
    obs::SpanBuilder *sb = obs::spanBuilder();
    const int st =
        sb ? sb->open(obs::SpanKind::tsb_lookup, now) : -1;
    const auto plan = tsb_->lookup(ctx, gva);
    for (unsigned i = 0; i < plan.num_probes; ++i) {
        res.latency += translationAccess(core, plan.probe_addrs[i],
                                         now + res.latency);
    }
    res.hit = plan.hit;
    res.mapping = plan.mapping;
    if (sb) {
        sb->close(st, now + res.latency,
                  res.hit ? obs::kSpanFlagHit : 0);
    }
    l2_crit_->recordPomOutcome(res.hit);
    l3_crit_->recordPomOutcome(res.hit);
    return res;
}

void
MemorySystem::tsbInsert(VmContext &ctx, Addr gva, const Mapping &mapping)
{
    tsb_->insert(ctx, gva, mapping);
}

Cycles
MemorySystem::touchTranslationLine(unsigned core, Addr hpa,
                                   Cycles now, bool &resident)
{
    Cycles lat = l2_[core]->latency();
    l2_ctl_[core]->onAccess(now);
    if (l2_[core]->touch(hpa, LineType::translation)) {
        resident = true;
        return lat;
    }
    lat += l3_->latency();
    l3_ctl_->onAccess(now);
    resident = l3_->touch(hpa, LineType::translation);
    return lat;
}

MemorySystem::VictimaResult
MemorySystem::victimaLookup(unsigned core, Asid asid, Addr gva,
                            PageSizePredictor &predictor, Cycles now)
{
    CSALT_PROFILE_SCOPE(pom_access);
    VictimaResult res;
    ++victima_stats_.lookups;
    obs::SpanBuilder *sb = obs::spanBuilder();
    const int sv =
        sb ? sb->open(obs::SpanKind::victima_lookup, now) : -1;
    bool second_probe = false;

    const auto probe_once = [&](PageSize ps) {
        const auto p = victima_->probe(asid, gva, ps);
        bool resident = false;
        res.latency += touchTranslationLine(
            core, p.line_addr, now + res.latency, resident);
        if (p.hit && resident) {
            res.hit = true;
            res.mapping = p.mapping;
        } else if (p.hit) {
            // The entry survives functionally but its line was
            // evicted from both arrays: Victima's defining miss.
            ++victima_stats_.evicted_entries;
        }
        return res.hit;
    };

    const PageSize first = predictor.predict(gva);
    if (!probe_once(first)) {
        second_probe = true;
        ++victima_stats_.second_probes;
        probe_once(first == PageSize::size4K ? PageSize::size2M
                                             : PageSize::size4K);
    }

    if (res.hit) {
        ++victima_stats_.hits;
        predictor.update(gva, res.mapping.ps);
    }
    if (sb) {
        sb->close(sv, now + res.latency,
                  (res.hit ? obs::kSpanFlagHit : 0) |
                      (second_probe ? obs::kSpanFlagSecondProbe
                                    : 0));
    }
    victima_lat_hist_.record(res.latency);
    l2_crit_->recordPomOutcome(res.hit);
    l3_crit_->recordPomOutcome(res.hit);
    return res;
}

void
MemorySystem::victimaInsert(unsigned core, Asid asid, Addr gva,
                            const Mapping &mapping, Cycles now)
{
    // Underutilization gate: only steal blocks while translation
    // lines stay under the configured share of either target array.
    const double gate = params_.victima.max_translation_occupancy;
    if (l2_[core]->occupancyOf(LineType::translation) > gate ||
        l3_->occupancyOf(LineType::translation) > gate) {
        ++victima_stats_.inserts_gated;
        return;
    }
    ++victima_stats_.inserts;
    victima_->insert(asid, gva, mapping);

    // Fill the entry line into both arrays off the critical path:
    // the walk that produced the mapping has already completed, so
    // like a writeback this charges nobody and records no spans.
    obs::SpanSuppressScope no_spans;
    const Addr line = victima_->lineAddrOf(asid, gva, mapping.ps);
    const auto r2 =
        l2_[core]->access(line, AccessType::read,
                          LineType::translation);
    if (r2.victim.valid && r2.victim.dirty)
        writeback(core, r2.victim, 2, now);
    const auto r3 =
        l3_->access(line, AccessType::read, LineType::translation);
    if (r3.victim.valid && r3.victim.dirty)
        writeback(core, r3.victim, 3, now);
}

void
MemorySystem::recordWalk(Cycles latency)
{
    walk_hist_.record(latency);
    l2_crit_->recordWalkLatency(latency);
    l3_crit_->recordWalkLatency(latency);
}

void
MemorySystem::clearAllStats()
{
    for (unsigned c = 0; c < numCores(); ++c) {
        l1d_[c]->clearStats();
        l2_[c]->clearStats();
        l2_occ_[c]->reset();
        l2_ctl_[c]->clearTrace();
        data_hist_[c].clear();
        trans_hist_[c].clear();
    }
    pom_lat_hist_.clear();
    victima_lat_hist_.clear();
    walk_hist_.clear();
    l3_->clearStats();
    l3_occ_->reset();
    l3_ctl_->clearTrace();
    ddr_->clearStats();
    stacked_->clearStats();
    pom_->clearStats();
    victima_->clearStats();
    tsb_->clearStats();
    pom_stats_ = PomLookupStats{};
    victima_stats_ = VictimaLookupStats{};
}

void
MemorySystem::sampleOccupancy(double time)
{
    for (auto &occ : l2_occ_)
        occ->sample(time);
    l3_occ_->sample(time);
}

void
MemorySystem::registerStats(obs::StatRegistry &reg) const
{
    for (unsigned c = 0; c < numCores(); ++c) {
        const std::string core = "core" + std::to_string(c);
        l1d_[c]->registerStats(reg, core + ".l1d");
        l2_[c]->registerStats(reg, core + ".l2");
        l2_ctl_[c]->registerStats(reg);
        reg.addHistogram(core + ".mem.data_lat", &data_hist_[c]);
        reg.addHistogram(core + ".mem.trans_lat", &trans_hist_[c]);
    }
    l3_->registerStats(reg, "l3");
    l3_ctl_->registerStats(reg);

    ddr_->registerStats(reg, "dram.ddr");
    stacked_->registerStats(reg, "dram.stacked");

    pom_->registerStats(reg, "pom");
    reg.addCounter("pom.lookup.lookups", &pom_stats_.lookups);
    reg.addCounter("pom.lookup.hits", &pom_stats_.hits);
    reg.addCounter("pom.lookup.second_probes",
                   &pom_stats_.second_probes);
    reg.addGauge("pom.lookup.hit_rate",
                 [this] { return pom_stats_.hitRate(); });
    reg.addHistogram("pom.lookup.lat", &pom_lat_hist_);
    reg.addHistogram("walk.lat", &walk_hist_);

    victima_->registerStats(reg, "victima");
    reg.addCounter("victima.lookup.lookups",
                   &victima_stats_.lookups);
    reg.addCounter("victima.lookup.hits", &victima_stats_.hits);
    reg.addCounter("victima.lookup.second_probes",
                   &victima_stats_.second_probes);
    reg.addCounter("victima.lookup.evicted_entries",
                   &victima_stats_.evicted_entries);
    reg.addCounter("victima.lookup.inserts",
                   &victima_stats_.inserts);
    reg.addCounter("victima.lookup.inserts_gated",
                   &victima_stats_.inserts_gated);
    reg.addGauge("victima.lookup.hit_rate",
                 [this] { return victima_stats_.hitRate(); });
    reg.addHistogram("victima.lookup.lat", &victima_lat_hist_);

    tsb_->registerStats(reg, "tsb");
}


void
MemorySystem::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(l1d_.size());
    data_frames_->saveState(s);
    pt_frames_->saveState(s);
    for (std::size_t c = 0; c < l1d_.size(); ++c) {
        l1d_[c]->saveState(s);
        l2_[c]->saveState(s);
    }
    l3_->saveState(s);
    ddr_->saveState(s);
    stacked_->saveState(s);
    pom_->saveState(s);
    victima_->saveState(s);
    tsb_->saveState(s);

    l2_crit_->saveState(s);
    l3_crit_->saveState(s);
    for (const auto &ctl : l2_ctl_)
        ctl->saveState(s);
    l3_ctl_->saveState(s);
    for (const auto &occ : l2_occ_)
        occ->saveState(s);
    l3_occ_->saveState(s);

    s.putU64(pom_stats_.lookups);
    s.putU64(pom_stats_.hits);
    s.putU64(pom_stats_.second_probes);
    s.putU64(victima_stats_.lookups);
    s.putU64(victima_stats_.hits);
    s.putU64(victima_stats_.second_probes);
    s.putU64(victima_stats_.evicted_entries);
    s.putU64(victima_stats_.inserts);
    s.putU64(victima_stats_.inserts_gated);

    for (const obs::Histogram &h : data_hist_)
        h.saveState(s);
    for (const obs::Histogram &h : trans_hist_)
        h.saveState(s);
    pom_lat_hist_.saveState(s);
    victima_lat_hist_.saveState(s);
    walk_hist_.saveState(s);
}

void
MemorySystem::loadState(snapshot::StateDeserializer &d)
{
    if (d.getU64() != l1d_.size())
        d.fail("memory-system core count mismatch");
    data_frames_->loadState(d);
    pt_frames_->loadState(d);
    for (std::size_t c = 0; c < l1d_.size(); ++c) {
        l1d_[c]->loadState(d);
        l2_[c]->loadState(d);
    }
    l3_->loadState(d);
    ddr_->loadState(d);
    stacked_->loadState(d);
    pom_->loadState(d);
    victima_->loadState(d);
    tsb_->loadState(d);

    l2_crit_->loadState(d);
    l3_crit_->loadState(d);
    for (const auto &ctl : l2_ctl_)
        ctl->loadState(d);
    l3_ctl_->loadState(d);
    for (const auto &occ : l2_occ_)
        occ->loadState(d);
    l3_occ_->loadState(d);

    pom_stats_.lookups = d.getU64();
    pom_stats_.hits = d.getU64();
    pom_stats_.second_probes = d.getU64();
    victima_stats_.lookups = d.getU64();
    victima_stats_.hits = d.getU64();
    victima_stats_.second_probes = d.getU64();
    victima_stats_.evicted_entries = d.getU64();
    victima_stats_.inserts = d.getU64();
    victima_stats_.inserts_gated = d.getU64();

    for (obs::Histogram &h : data_hist_)
        h.loadState(d);
    for (obs::Histogram &h : trans_hist_)
        h.loadState(d);
    pom_lat_hist_.loadState(d);
    victima_lat_hist_.loadState(d);
    walk_hist_.loadState(d);
}

} // namespace csalt
