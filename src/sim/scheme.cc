#include "sim/scheme.h"

#include <sstream>

#include "common/log.h"

namespace csalt
{

void
applyConventional(SystemParams &params)
{
    params.translation = TranslationKind::conventional;
    params.l2_partition.policy = PartitionPolicy::none;
    params.l3_partition.policy = PartitionPolicy::none;
    params.l2.insertion = InsertionKind::mru;
    params.l3.insertion = InsertionKind::mru;
}

void
applyPomTlb(SystemParams &params)
{
    params.translation = TranslationKind::pomTlb;
    params.l2_partition.policy = PartitionPolicy::none;
    params.l3_partition.policy = PartitionPolicy::none;
    params.l2.insertion = InsertionKind::mru;
    params.l3.insertion = InsertionKind::mru;
}

void
applyCsaltD(SystemParams &params)
{
    applyPomTlb(params);
    params.l2_partition.policy = PartitionPolicy::csaltD;
    params.l3_partition.policy = PartitionPolicy::csaltD;
}

void
applyCsaltCD(SystemParams &params)
{
    applyPomTlb(params);
    params.l2_partition.policy = PartitionPolicy::csaltCD;
    params.l3_partition.policy = PartitionPolicy::csaltCD;
}

void
applyTsb(SystemParams &params)
{
    params.translation = TranslationKind::tsb;
    params.l2_partition.policy = PartitionPolicy::none;
    params.l3_partition.policy = PartitionPolicy::none;
    params.l2.insertion = InsertionKind::mru;
    params.l3.insertion = InsertionKind::mru;
}

void
applyDipOverPom(SystemParams &params)
{
    applyPomTlb(params);
    params.l2.insertion = InsertionKind::dip;
    params.l3.insertion = InsertionKind::dip;
}

void
applyVictima(SystemParams &params)
{
    params.translation = TranslationKind::victima;
    params.l2_partition.policy = PartitionPolicy::none;
    params.l3_partition.policy = PartitionPolicy::none;
    params.l2.insertion = InsertionKind::mru;
    params.l3.insertion = InsertionKind::mru;
}

void
applyPcax(SystemParams &params)
{
    params.translation = TranslationKind::pcax;
    params.l2_partition.policy = PartitionPolicy::none;
    params.l3_partition.policy = PartitionPolicy::none;
    params.l2.insertion = InsertionKind::mru;
    params.l3.insertion = InsertionKind::mru;
}

const std::array<SchemeInfo, kNumSchemes> &
allSchemes()
{
    static const std::array<SchemeInfo, kNumSchemes> table = {{
        {SchemeId::conventional, "conventional", "Conventional",
         "L1-L2 TLBs + page walks (baseline)", applyConventional},
        {SchemeId::pom, "pom", "POM-TLB",
         "large in-memory L3 TLB in stacked DRAM", applyPomTlb},
        {SchemeId::csaltD, "csalt-d", "CSALT-D",
         "POM-TLB + dynamic cache partitioning", applyCsaltD},
        {SchemeId::csaltCD, "csalt-cd", "CSALT-CD",
         "POM-TLB + criticality-weighted partitioning", applyCsaltCD},
        {SchemeId::tsb, "tsb", "TSB",
         "software translation storage buffer", applyTsb},
        {SchemeId::dip, "dip", "DIP",
         "DIP cache insertion over POM-TLB", applyDipOverPom},
        {SchemeId::victima, "victima", "Victima",
         "TLB entries in underutilized L2/L3 cache blocks",
         applyVictima},
        {SchemeId::pcax, "pcax", "PCAX",
         "PC-indexed translation prediction beside the L2 TLB",
         applyPcax},
    }};
    return table;
}

const SchemeInfo &
schemeInfo(SchemeId id)
{
    return allSchemes()[static_cast<std::size_t>(id)];
}

Expected<SchemeId>
schemeFromName(std::string_view name)
{
    for (const SchemeInfo &info : allSchemes()) {
        if (name == info.cli || name == info.name)
            return info.id;
    }
    return makeError(ErrorKind::usage,
                     "unknown scheme '" + std::string(name) + "'",
                     "--scheme", "one of: " + schemeCliNames());
}

void
applyScheme(SystemParams &params, SchemeId id)
{
    // Enum dispatch (repl_flat.h pattern): no indirection through the
    // table's function pointers for callers that know their id.
    switch (id) {
      case SchemeId::conventional:
        applyConventional(params);
        return;
      case SchemeId::pom:
        applyPomTlb(params);
        return;
      case SchemeId::csaltD:
        applyCsaltD(params);
        return;
      case SchemeId::csaltCD:
        applyCsaltCD(params);
        return;
      case SchemeId::tsb:
        applyTsb(params);
        return;
      case SchemeId::dip:
        applyDipOverPom(params);
        return;
      case SchemeId::victima:
        applyVictima(params);
        return;
      case SchemeId::pcax:
        applyPcax(params);
        return;
    }
    panic(msgOf("applyScheme: bad SchemeId ",
                static_cast<unsigned>(id)));
}

std::string
schemeCliNames()
{
    std::ostringstream os;
    bool first = true;
    for (const SchemeInfo &info : allSchemes()) {
        os << (first ? "" : " | ") << info.cli;
        first = false;
    }
    return os.str();
}

} // namespace csalt
