/**
 * @file
 * The TranslationScheme registry: the single name <-> enum <->
 * SystemParams mapping for every compared translation scheme.
 *
 * Before this seam existed the scheme concept was smeared across the
 * tree — a string dispatch in tools/csalt_sim.cpp, another in
 * tools/sweep.cpp and tools/tune.cpp, and ad-hoc {name, apply}
 * structs in bench/bench_common.h — a drift bug waiting to happen and
 * the thing blocking new backends. Now every front end resolves a
 * name to a SchemeId here and applies it through one table; the hot
 * path stays enum-dispatched (a switch over SchemeId, following the
 * repl_flat.h devirtualization pattern — no function-pointer or
 * virtual indirection is required by callers that know their id).
 *
 * Registered schemes:
 *  - conventional: L1-L2 TLBs + page walks (baseline)
 *  - pom:          POM-TLB large in-memory L3 TLB [Ryoo et al.]
 *  - csalt-d:      POM-TLB + dynamic cache partitioning (paper §3.1)
 *  - csalt-cd:     + criticality weighting (paper §3.2)
 *  - tsb:          software translation storage buffer [SPARC]
 *  - dip:          DIP insertion over POM-TLB (Fig. 13 baseline)
 *  - victima:      TLB entries resident in underutilized L2/L3
 *                  cache blocks [Kanellopoulos et al., MICRO'23]
 *  - pcax:         PC-indexed translation prediction probed beside
 *                  the L2 TLB
 */

#ifndef CSALT_SIM_SCHEME_H
#define CSALT_SIM_SCHEME_H

#include <array>
#include <string>
#include <string_view>

#include "common/config.h"
#include "common/error.h"

namespace csalt
{

/** Stable identifier of one registered translation scheme. */
enum class SchemeId : std::uint8_t
{
    conventional = 0,
    pom,
    csaltD,
    csaltCD,
    tsb,
    dip,
    victima,
    pcax,
};

inline constexpr std::size_t kNumSchemes = 8;

/** One registry row: names, description and the params mapping. */
struct SchemeInfo
{
    SchemeId id = SchemeId::conventional;
    const char *cli = "";     //!< command-line name ("csalt-cd")
    const char *name = "";    //!< display name ("CSALT-CD")
    const char *summary = ""; //!< one-line description (usage text)
    void (*apply)(SystemParams &) = nullptr;
};

/** Every registered scheme, in SchemeId order. */
const std::array<SchemeInfo, kNumSchemes> &allSchemes();

/** Registry row of @p id. */
const SchemeInfo &schemeInfo(SchemeId id);

/**
 * Resolve a scheme name (either the cli or the display spelling) to
 * its id. Unknown names return a typed kind=usage error listing the
 * registered names — callers decide whether that is fatal.
 */
Expected<SchemeId> schemeFromName(std::string_view name);

/**
 * Configure @p params for @p id — THE name->params mapping; every
 * duplicated applyScheme/Scheme-struct copy collapsed into this.
 */
void applyScheme(SystemParams &params, SchemeId id);

/** " | "-joined cli names for usage strings. */
std::string schemeCliNames();

/**
 * Per-scheme params entry points (single definitions; the registry's
 * apply table points here). Direct calls are fine for code that knows
 * its scheme statically (examples, tests).
 */
void applyConventional(SystemParams &params);
void applyPomTlb(SystemParams &params);
void applyCsaltD(SystemParams &params);
void applyCsaltCD(SystemParams &params);
void applyTsb(SystemParams &params);
void applyDipOverPom(SystemParams &params);
void applyVictima(SystemParams &params);
void applyPcax(SystemParams &params);

} // namespace csalt

#endif // CSALT_SIM_SCHEME_H
