#include "sim/system.h"

#include <algorithm>
#include <fstream>

#include "check/invariants.h"
#include "common/log.h"
#include "common/progress.h"

namespace csalt
{

System::System(const SystemParams &params)
    : params_(params), paranoid_(check::paranoidFromEnv())
{
    mem_ = std::make_unique<MemorySystem>(params_);
    for (unsigned c = 0; c < params_.num_cores; ++c)
        cores_.push_back(std::make_unique<CoreModel>(c, params_, *mem_));
}

System::~System()
{
    closeTrace();
}

VmContext &
System::addVm(std::unique_ptr<VmContext> vm)
{
    vms_.push_back(std::move(vm));
    return *vms_.back();
}

void
System::setCoreContexts(unsigned core,
                        std::vector<std::unique_ptr<SimContext>> contexts)
{
    if (stats_registered_) {
        fatal("setCoreContexts after finalizeStats: per-context "
              "counters would dangle");
    }
    cores_[core]->setContexts(std::move(contexts));
}

void
System::clearAllStats()
{
    for (auto &core : cores_) {
        core->clearStats();
        core->tlbs().clearStats();
        core->walker().clearStats();
    }
    mem_->clearAllStats();
    sampler_.clear();
}

void
System::finalizeStats()
{
    if (stats_registered_)
        return;
    stats_registered_ = true;
    mem_->registerStats(registry_);
    for (unsigned c = 0; c < numCores(); ++c) {
        cores_[c]->registerStats(registry_,
                                 "core" + std::to_string(c));
    }
    // Seal the layout: anything registered from here on would be
    // invisible to already-attached samplers/consumers.
    registry_.freeze();
}

bool
System::openTrace(const std::string &path, unsigned categories)
{
    auto file = std::make_unique<std::ofstream>(path);
    if (!*file)
        return false;
    closeTrace();
    trace_file_ = std::move(file);
    sampler_.setSink(trace_file_.get());
    tracer_.setSink(trace_file_.get());
    tracer_.setCategories(categories);
    obs::setActiveTracer(&tracer_);
    return true;
}

void
System::setTraceSink(std::ostream *out, unsigned categories)
{
    closeTrace();
    if (!out)
        return;
    sampler_.setSink(out);
    tracer_.setSink(out);
    tracer_.setCategories(categories);
    obs::setActiveTracer(&tracer_);
}

void
System::closeTrace()
{
    sampler_.setSink(nullptr);
    tracer_.setSink(nullptr);
    if (obs::activeTracer() == &tracer_)
        obs::setActiveTracer(nullptr);
    trace_file_.reset(); // flushes + closes the file, if any
}

void
System::run(std::uint64_t instructions_per_core)
{
    finalizeStats();

    std::uint64_t next_occ = steps_ + occupancy_interval_;
    std::uint64_t next_stat = steps_ + stat_sample_interval_;

    // The watchdog heartbeat fires every 4096 steps. Resolve the
    // thread's ProgressToken once: the TLS lookup is not free and the
    // token cannot change mid-run (the runner installs it before the
    // job body and clears it after).
    constexpr std::uint64_t kHeartbeatMask = 0xfff;
    ProgressToken *token = progressToken();

    // Slow-path bookkeeping (heartbeat, occupancy epoch, stat sample)
    // is amortized behind one merged comparison: the hot loop does a
    // single `steps_ >= next_event` test, and only on event steps do
    // we sort out which of the three fired and re-arm. All three fire
    // at exact step values (steps_ advances by 1), so firing order
    // and firing steps are identical to testing each per iteration.
    const auto nextEventAfter = [&](std::uint64_t step) {
        std::uint64_t next = (step | kHeartbeatMask) + 1;
        if (occupancy_interval_)
            next = std::min(next, next_occ);
        if (stat_sample_interval_)
            next = std::min(next, next_stat);
        return next;
    };
    std::uint64_t next_event = nextEventAfter(steps_);

    // Single-core runs (every throughput bench) skip the min-clock
    // scan entirely.
    CoreModel *const only =
        cores_.size() == 1 ? cores_.front().get() : nullptr;

    while (true) {
        CoreModel *next = only;
        if (only) {
            if (only->instructions() >= instructions_per_core)
                break;
        } else {
            // Min-clock scheduling: advance the core that is furthest
            // behind in simulated time among those still running.
            next = nullptr;
            for (auto &core : cores_) {
                if (core->instructions() >= instructions_per_core)
                    continue;
                if (!next || core->clock() < next->clock())
                    next = core.get();
            }
            if (!next)
                break;
        }
        next->step();

        if (++steps_ < next_event)
            continue;

        if ((steps_ & kHeartbeatMask) == 0) {
            if (token)
                token->tick(kHeartbeatMask + 1);
            if (token && token->cancelled())
                raiseCancelled();
        }
        if (occupancy_interval_ && steps_ >= next_occ) {
            next_occ += occupancy_interval_;
            mem_->sampleOccupancy(static_cast<double>(next->clock()));
            if (paranoid_) {
                check::raiseIfViolated(
                    check::checkSystem(*this, check::CheckOptions{}),
                    msgOf("epoch boundary (step ", steps_, ")"));
            }
        }
        if (stat_sample_interval_ && steps_ >= next_stat) {
            next_stat += stat_sample_interval_;
            sampler_.sample(static_cast<double>(next->clock()),
                            steps_);
        }
        next_event = nextEventAfter(steps_);
    }

    if (paranoid_) {
        check::CheckOptions full;
        full.full = true;
        check::raiseIfViolated(check::checkSystem(*this, full),
                               "end of run");
    }
}

} // namespace csalt
