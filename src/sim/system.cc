#include "sim/system.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <unistd.h>

#include "check/invariants.h"
#include "common/atomic_io.h"
#include "common/log.h"
#include "common/progress.h"
#include "snapshot/state_io.h"

namespace csalt
{

System::System(const SystemParams &params)
    : params_(params), paranoid_(check::paranoidFromEnv())
{
    mem_ = std::make_unique<MemorySystem>(params_);
    for (unsigned c = 0; c < params_.num_cores; ++c)
        cores_.push_back(std::make_unique<CoreModel>(c, params_, *mem_));
}

System::~System()
{
    if (live_export_) {
        double end_clock = 0.0;
        for (const auto &core : cores_)
            end_clock = std::max(end_clock,
                                 static_cast<double>(core->clock()));
        publishLive(end_clock, /*finished=*/true);
    }
    closeTrace();
}

VmContext &
System::addVm(std::unique_ptr<VmContext> vm)
{
    vms_.push_back(std::move(vm));
    return *vms_.back();
}

void
System::setCoreContexts(unsigned core,
                        std::vector<std::unique_ptr<SimContext>> contexts)
{
    if (stats_registered_) {
        fatal("setCoreContexts after finalizeStats: per-context "
              "counters would dangle");
    }
    cores_[core]->setContexts(std::move(contexts));
}

void
System::clearAllStats()
{
    for (auto &core : cores_) {
        core->clearStats();
        core->tlbs().clearStats();
        core->walker().clearStats();
    }
    mem_->clearAllStats();
    sampler_.clear();
    if (span_trace_)
        span_trace_->clear();
}

void
System::enableSpanTrace(const obs::SpanTraceConfig &cfg)
{
    span_trace_ = std::make_unique<obs::SpanTrace>(numCores(), cfg);
    for (unsigned c = 0; c < numCores(); ++c)
        cores_[c]->setSpanRecorder(&span_trace_->recorder(c));
}

Status
System::writeSpanSidecar(const std::string &path,
                         const std::string &label) const
{
    if (!span_trace_) {
        return makeError(ErrorKind::usage,
                         "span tracing is not enabled",
                         "System::writeSpanSidecar",
                         "call enableSpanTrace() before run()");
    }
    return writeFileAtomic(path, span_trace_->serialize(label));
}

void
System::finalizeStats()
{
    if (stats_registered_)
        return;
    stats_registered_ = true;
    mem_->registerStats(registry_);
    for (unsigned c = 0; c < numCores(); ++c) {
        cores_[c]->registerStats(registry_,
                                 "core" + std::to_string(c));
    }
    // Seal the layout: anything registered from here on would be
    // invisible to already-attached samplers/consumers.
    registry_.freeze();
}

bool
System::openTrace(const std::string &path, unsigned categories)
{
    // Stream into a tmp sibling; closeTrace() commits it onto the
    // real path with one atomic rename, so a killed run never leaves
    // a torn trace where a complete one is expected.
    auto file = std::make_unique<std::ofstream>(atomicTmpPath(path));
    if (!*file)
        return false;
    closeTrace();
    trace_file_ = std::move(file);
    trace_path_ = path;
    sampler_.setSink(trace_file_.get());
    tracer_.setSink(trace_file_.get());
    tracer_.setCategories(categories);
    obs::setActiveTracer(&tracer_);
    return true;
}

void
System::setTraceSink(std::ostream *out, unsigned categories)
{
    closeTrace();
    if (!out)
        return;
    sampler_.setSink(out);
    tracer_.setSink(out);
    tracer_.setCategories(categories);
    obs::setActiveTracer(&tracer_);
}

void
System::closeTrace(bool crash_before_rename)
{
    sampler_.setSink(nullptr);
    tracer_.setSink(nullptr);
    if (obs::activeTracer() == &tracer_)
        obs::setActiveTracer(nullptr);
    trace_file_.reset(); // flushes + closes the file, if any
    if (trace_path_.empty())
        return;
    const std::string path = std::move(trace_path_);
    trace_path_.clear();
    if (crash_before_rename)
        return; // simulated kill: tmp stays, destination untouched
    if (Status st = commitFileAtomic(path); !st.ok())
        warn("trace not committed: " + oneLine(st.error()));
}

void
System::enableLiveExport(std::string path)
{
    live_export_requested_ = true;
    live_export_path_ = std::move(path);
}

void
System::maybeOpenLiveExport()
{
    if (live_export_ || live_export_failed_)
        return;
    std::string path;
    if (live_export_requested_) {
        path = live_export_path_;
    } else if (!obs::threadLiveExportPath().empty()) {
        path = obs::threadLiveExportPath();
    } else if (const char *env = std::getenv("CSALT_LIVE_EXPORT");
               env && *env && std::strcmp(env, "0") != 0) {
        if (std::strcmp(env, "1") != 0)
            path = env;
    } else {
        return;
    }
    if (path.empty())
        path = obs::LiveExport::defaultPathFor(
            static_cast<std::uint64_t>(::getpid()));
    auto live = obs::LiveExport::create(path, registry_);
    if (!live.ok()) {
        // Telemetry must never kill the run it observes.
        warn("live export disabled: " + oneLine(live.error()));
        live_export_failed_ = true;
        return;
    }
    live_export_ = live.take();
}

void
System::publishLive(double t, bool finished)
{
    if (live_export_)
        live_export_->publish(t, steps_, live_epoch_, finished);
}

void
System::run(std::uint64_t instructions_per_core)
{
    finalizeStats();
    maybeOpenLiveExport();

    // A restore mid-run() freezes the pending sample offsets; the
    // resumed call continues them so every occupancy/stat event fires
    // at the same lifetime step as in the uninterrupted run.
    if (!resume_pending_) {
        next_occ_ = steps_ + occupancy_interval_;
        next_stat_ = steps_ + stat_sample_interval_;
    }
    resume_pending_ = false;

    // The watchdog heartbeat fires every 4096 steps. Resolve the
    // thread's ProgressToken once: the TLS lookup is not free and the
    // token cannot change mid-run (the runner installs it before the
    // job body and clears it after).
    constexpr std::uint64_t kHeartbeatMask = 0xfff;
    ProgressToken *token = progressToken();

    // Slow-path bookkeeping (heartbeat, occupancy epoch, stat sample)
    // is amortized behind one merged comparison: the hot loop does a
    // single `steps_ >= next_event` test, and only on event steps do
    // we sort out which of the three fired and re-arm. All three fire
    // at exact step values (steps_ advances by 1), so firing order
    // and firing steps are identical to testing each per iteration.
    const auto nextEventAfter = [&](std::uint64_t step) {
        std::uint64_t next = (step | kHeartbeatMask) + 1;
        if (occupancy_interval_)
            next = std::min(next, next_occ_);
        if (stat_sample_interval_)
            next = std::min(next, next_stat_);
        return next;
    };
    std::uint64_t next_event = nextEventAfter(steps_);

    // Single-core runs (every throughput bench) skip the min-clock
    // scan entirely.
    CoreModel *const only =
        cores_.size() == 1 ? cores_.front().get() : nullptr;

    while (true) {
        CoreModel *next = only;
        if (only) {
            if (only->instructions() >= instructions_per_core)
                break;
        } else {
            // Min-clock scheduling: advance the core that is furthest
            // behind in simulated time among those still running.
            next = nullptr;
            for (auto &core : cores_) {
                if (core->instructions() >= instructions_per_core)
                    continue;
                if (!next || core->clock() < next->clock())
                    next = core.get();
            }
            if (!next)
                break;
        }
        next->step();

        if (++steps_ < next_event)
            continue;

        if ((steps_ & kHeartbeatMask) == 0) {
            if (token)
                token->tick(kHeartbeatMask + 1);
            if (token && token->cancelled())
                raiseCancelled();
            // Liveness between epochs: attached readers see the
            // heartbeat advance even when sampling is sparse.
            publishLive(static_cast<double>(next->clock()));
        }
        if (occupancy_interval_ && steps_ >= next_occ_) {
            next_occ_ += occupancy_interval_;
            mem_->sampleOccupancy(static_cast<double>(next->clock()));
            ++live_epoch_;
            if (span_trace_)
                span_trace_->setEpoch(live_epoch_);
            publishLive(static_cast<double>(next->clock()));
            if (paranoid_) {
                check::raiseIfViolated(
                    check::checkSystem(*this, check::CheckOptions{}),
                    msgOf("epoch boundary (step ", steps_, ")"));
            }
        }
        if (stat_sample_interval_ && steps_ >= next_stat_) {
            next_stat_ += stat_sample_interval_;
            sampler_.sample(static_cast<double>(next->clock()),
                            steps_);
            // Same (t, step) and registry state as the sample just
            // written: an attached snapshot for this instant is
            // field-identical to the post-hoc stream.
            publishLive(static_cast<double>(next->clock()));
        }
        // Checkpoint/signal polling LAST: every due sample above has
        // been taken and all pending offsets are strictly future, so
        // a snapshot written here resumes without skipping or
        // replaying an event. May raise kind=cancelled.
        if (checkpoint_hook_)
            checkpoint_hook_();
        next_event = nextEventAfter(steps_);
    }

    // Final values for this run() call; `finished` stays false so a
    // follower attached during warmup survives into the measured run.
    // The destructor publishes the finished marker.
    double end_clock = 0.0;
    for (const auto &core : cores_)
        end_clock = std::max(end_clock,
                             static_cast<double>(core->clock()));
    publishLive(end_clock);

    if (paranoid_) {
        check::CheckOptions full;
        full.full = true;
        check::raiseIfViolated(check::checkSystem(*this, full),
                               "end of run");
    }
}


void
System::saveRunState(snapshot::StateSerializer &s) const
{
    s.putU64(steps_);
    s.putU64(live_epoch_);
    s.putU64(occupancy_interval_);
    s.putU64(stat_sample_interval_);
    s.putU64(next_occ_);
    s.putU64(next_stat_);
}

void
System::loadRunState(snapshot::StateDeserializer &d)
{
    const std::uint64_t steps = d.getU64();
    const std::uint64_t epoch = d.getU64();
    if (d.getU64() != occupancy_interval_)
        d.fail("occupancy-sample interval mismatch");
    if (d.getU64() != stat_sample_interval_)
        d.fail("stat-sample interval mismatch");
    const std::uint64_t next_occ = d.getU64();
    const std::uint64_t next_stat = d.getU64();
    // A disabled interval's pending offset is never consulted (and
    // freezes at a stale value), so only enabled samplers must have
    // a strictly-future offset.
    if ((occupancy_interval_ != 0 && next_occ <= steps) ||
        (stat_sample_interval_ != 0 && next_stat <= steps))
        d.fail("pending sample offset not in the future");
    steps_ = steps;
    live_epoch_ = epoch;
    next_occ_ = next_occ;
    next_stat_ = next_stat;
    if (span_trace_)
        span_trace_->setEpoch(live_epoch_);
    resume_pending_ = true;
}

} // namespace csalt
