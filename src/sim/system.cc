#include "sim/system.h"

#include <algorithm>

#include "common/log.h"

namespace csalt
{

System::System(const SystemParams &params) : params_(params)
{
    mem_ = std::make_unique<MemorySystem>(params_);
    for (unsigned c = 0; c < params_.num_cores; ++c)
        cores_.push_back(std::make_unique<CoreModel>(c, params_, *mem_));
}

System::~System() = default;

VmContext &
System::addVm(std::unique_ptr<VmContext> vm)
{
    vms_.push_back(std::move(vm));
    return *vms_.back();
}

void
System::setCoreContexts(unsigned core,
                        std::vector<std::unique_ptr<SimContext>> contexts)
{
    cores_[core]->setContexts(std::move(contexts));
}

void
System::clearAllStats()
{
    for (auto &core : cores_) {
        core->clearStats();
        core->tlbs().clearStats();
        core->walker().clearStats();
    }
    mem_->clearAllStats();
}

void
System::run(std::uint64_t instructions_per_core)
{
    std::uint64_t steps = 0;
    std::uint64_t next_sample = occupancy_interval_;

    while (true) {
        // Min-clock scheduling: advance the core that is furthest
        // behind in simulated time among those still running.
        CoreModel *next = nullptr;
        for (auto &core : cores_) {
            if (core->instructions() >= instructions_per_core)
                continue;
            if (!next || core->clock() < next->clock())
                next = core.get();
        }
        if (!next)
            break;
        next->step();

        ++steps;
        if (occupancy_interval_ && steps >= next_sample) {
            next_sample += occupancy_interval_;
            mem_->sampleOccupancy(static_cast<double>(next->clock()));
        }
    }
}

} // namespace csalt
