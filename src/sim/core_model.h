/**
 * @file
 * Trace-driven core timing model with the full translation datapath.
 *
 * Per reference (paper §4.2 semantics):
 *  - non-memory work advances the clock by base_cpi * icount;
 *  - the translation path (L1/L2 TLB, then POM-TLB / TSB / page walk
 *    per the configured scheme) is *blocking* — its latency is
 *    charged in full, because an address translation stalls the
 *    pipeline while data misses overlap via MLP;
 *  - the data access is charged latency / mlp to model that overlap.
 *
 * The core rotates between its contexts every cs_interval cycles
 * (VM context switch), paying a fixed direct switch cost; TLB/cache
 * contents survive (ASID tags), so the remaining cost is the capacity
 * contention the paper studies.
 */

#ifndef CSALT_SIM_CORE_MODEL_H
#define CSALT_SIM_CORE_MODEL_H

#include <memory>
#include <vector>

#include "common/config.h"
#include "obs/cpi_stack.h"
#include "obs/span_trace.h"
#include "sim/context.h"
#include "sim/memory_system.h"
#include "tlb/pcax.h"
#include "tlb/tlb_hierarchy.h"
#include "vm/mmu_cache.h"
#include "vm/page_walker.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

/** Per-core execution counters. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t memrefs = 0;
    std::uint64_t context_switches = 0;
    std::uint64_t translation_cycles = 0;
    std::uint64_t data_cycles = 0; //!< post-overlap charged cycles
    std::uint64_t walks = 0;       //!< page walks performed
    std::uint64_t walk_cycles = 0;
};

/** Counters attributed to one context slot (one VM's thread). */
struct ContextStats
{
    std::uint64_t instructions = 0;
    std::uint64_t memrefs = 0;
    std::uint64_t l2_tlb_misses = 0;
};

/** One simulated core. */
class CoreModel
{
  public:
    CoreModel(unsigned id, const SystemParams &params,
              MemorySystem &mem);
    ~CoreModel();

    CoreModel(const CoreModel &) = delete;
    CoreModel &operator=(const CoreModel &) = delete;

    /** Hand the core its context rotation (>=1 entries). */
    void setContexts(std::vector<std::unique_ptr<SimContext>> contexts);

    /** Execute one trace record (advances the local clock). */
    void step();

    /** Local clock in cycles. */
    Cycles clock() const { return static_cast<Cycles>(cycles_); }

    /** Cycles elapsed since the last clearStats() (for IPC). */
    Cycles
    cyclesSinceClear() const
    {
        return static_cast<Cycles>(cycles_ - cycle_baseline_);
    }

    /**
     * Same span, unrounded — the CPI stack's ground truth: every
     * cycle charged since clearStats() lands in exactly one
     * cpiStack() component, so cpiStack().total() equals this to
     * within accumulation-order rounding.
     */
    double
    cyclesSinceClearExact() const
    {
        return cycles_ - cycle_baseline_;
    }

    /** Retired instructions. */
    std::uint64_t instructions() const { return stats_.instructions; }

    /**
     * Zero the execution counters and mark the cycle baseline; the
     * clock itself keeps running (warmup support).
     */
    void
    clearStats()
    {
        stats_ = CoreStats{};
        for (auto &cs : ctx_stats_)
            cs = ContextStats{};
        if (pcax_)
            pcax_->clearStats();
        cpi_.clear();
        for (auto &stack : ctx_cpi_)
            stack.clear();
        cycle_baseline_ = cycles_;
    }

    const CoreStats &stats() const { return stats_; }

    /** Per-context attribution (index = rotation slot = VM index). */
    const std::vector<ContextStats> &contextStats() const
    {
        return ctx_stats_;
    }

    /** Where every cycle since clearStats() went (CPI stack). */
    const obs::CpiStack &cpiStack() const { return cpi_; }

    /** Per-context CPI stacks; they sum to cpiStack() componentwise. */
    const std::vector<obs::CpiStack> &contextCpiStacks() const
    {
        return ctx_cpi_;
    }

    /**
     * Fault-injection hook: charge phantom cycles into the core
     * ledger only, breaking both CPI-accounting invariants (stack
     * total vs elapsed cycles, context sum vs core stack).
     */
    void
    corruptCpiForTest(double cycles = 1000.0)
    {
        cpi_.add(obs::CpiComponent::compute, cycles);
    }
    TlbHierarchy &tlbs() { return tlbs_; }
    const TlbHierarchy &tlbs() const { return tlbs_; }
    PageWalker &walker() { return *walker_; }
    const PageWalker &walker() const { return *walker_; }
    MmuCaches &mmu() { return mmu_; }
    unsigned id() const { return id_; }
    unsigned numContexts() const
    {
        return static_cast<unsigned>(contexts_.size());
    }
    SimContext &currentContext() { return *contexts_[current_]; }

    /**
     * Register this core's counters (plus its TLBs, walker and
     * per-context attribution) under "<prefix>.*". Call after
     * setContexts() — the per-context entries point into the sized
     * ctx_stats_ array.
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Attach (or detach, nullptr) the span recorder for this core.
     * When attached, step() samples journeys by the recorder's
     * deterministic hash of the per-core memref ordinal; when null
     * the cost is one branch per access.
     */
    void setSpanRecorder(obs::SpanRecorder *rec) { span_rec_ = rec; }

    /**
     * Checkpoint: scheduler slot + clock, the whole translation
     * datapath (TLBs, MMU caches, walker, predictors), per-context
     * counters/CPI ledgers, and each context's trace stream. Call
     * loadState only after setContexts() — the snapshot is validated
     * against the built rotation.
     */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    /**
     * Resolve the translation of @p gva (@p pc = issuing site, used
     * by the PCAX predictor); returns blocking latency. Stamps every
     * returned cycle into @p bd (tlb_probe, pom_access, tsb_access,
     * and the walker's walk_* components).
     */
    Cycles translate(SimContext &ctx, Addr gva, Addr pc, Mapping &out,
                     obs::LatencyBreakdown &bd);

    /** Rotate to the next context when the interval expires. */
    void maybeContextSwitch();

    unsigned id_;
    const SystemParams &params_;
    MemorySystem &mem_;
    TlbHierarchy tlbs_;
    MmuCaches mmu_;
    std::unique_ptr<PageWalker> walker_;
    PageSizePredictor size_predictor_;
    /** PC-indexed predictor; built only for the pcax scheme. */
    std::unique_ptr<PcaxPredictor> pcax_;

    std::vector<std::unique_ptr<SimContext>> contexts_;
    std::size_t current_ = 0;
    double cycles_ = 0.0;
    double cycle_baseline_ = 0.0;
    Cycles next_switch_;
    CoreStats stats_;
    obs::SpanRecorder *span_rec_ = nullptr;
    std::vector<ContextStats> ctx_stats_;
    obs::CpiStack cpi_;                 //!< whole-core cycle ledger
    std::vector<obs::CpiStack> ctx_cpi_; //!< per-slot cycle ledgers
};

} // namespace csalt

#endif // CSALT_SIM_CORE_MODEL_H
