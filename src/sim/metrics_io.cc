#include "sim/metrics_io.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace csalt
{

namespace
{

/** One CPI stack as {"compute": 1.2, ...} (all components, in order). */
void
writeStackObject(std::ostream &os, const obs::CpiStack &stack)
{
    os << "{";
    for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
        const auto comp = static_cast<obs::CpiComponent>(i);
        os << (i ? ", " : "") << "\""
           << obs::cpiComponentName(comp) << "\": ";
        obs::writeJsonNumber(os, stack.of(comp));
    }
    os << "}";
}

/** "cpi_stack": {"total": {...}, "cores": [...], "vms": [...]} */
void
writeCpiStackJson(std::ostream &os, const std::string &indent,
                  const RunMetrics &m)
{
    os << indent << "\"cpi_stack\": {\n";
    os << indent << "  \"total\": ";
    writeStackObject(os, m.cpi_total);
    os << ",\n" << indent << "  \"cores\": [";
    for (std::size_t i = 0; i < m.core_cpi.size(); ++i) {
        os << (i ? ", " : "");
        writeStackObject(os, m.core_cpi[i]);
    }
    os << "],\n" << indent << "  \"vms\": [";
    for (std::size_t i = 0; i < m.vm_cpi.size(); ++i) {
        os << (i ? ", " : "");
        writeStackObject(os, m.vm_cpi[i]);
    }
    os << "]\n" << indent << "}";
}

/** "histograms": {"walk.lat": {"count": ..., "p50": ...}, ...} */
void
writeHistogramsJson(std::ostream &os, const std::string &indent,
                    const RunMetrics &m)
{
    os << indent << "\"histograms\": {";
    for (std::size_t i = 0; i < m.histograms.size(); ++i) {
        const auto &h = m.histograms[i];
        const auto &d = h.digest;
        os << (i ? ",\n" : "\n") << indent << "  \""
           << obs::escapeJson(h.name) << "\": {\"count\": " << d.count
           << ", \"sum\": ";
        obs::writeJsonNumber(os, d.sum);
        os << ", \"mean\": ";
        obs::writeJsonNumber(os, d.mean);
        os << ", \"min\": " << d.min << ", \"max\": " << d.max
           << ", \"p50\": " << d.p50 << ", \"p90\": " << d.p90
           << ", \"p99\": " << d.p99 << ", \"p999\": " << d.p999
           << "}";
    }
    if (!m.histograms.empty())
        os << "\n" << indent;
    os << "}";
}

/**
 * "span_summary": sampled critical-path attribution. Only kinds that
 * occurred are emitted; per-ASID and per-epoch maps are ordered, so
 * the section is deterministic for a given simulated history.
 */
void
writeSpanSummaryJson(std::ostream &os, const std::string &indent,
                     const obs::SpanSummary &s)
{
    os << indent << "\"span_summary\": {\n";
    os << indent << "  \"rate\": " << s.rate
       << ", \"sampled\": " << s.sampled
       << ", \"dropped\": " << s.dropped
       << ", \"translation_evictions\": " << s.translation_evictions
       << ",\n";
    os << indent << "  \"kinds\": {";
    bool first = true;
    for (std::size_t k = 0; k < obs::kNumSpanKinds; ++k) {
        const obs::SpanKindAgg &agg = s.kinds[k];
        if (!agg.count)
            continue;
        os << (first ? "\n" : ",\n") << indent << "    \""
           << obs::spanKindName(static_cast<obs::SpanKind>(k))
           << "\": {\"count\": " << agg.count
           << ", \"cycles\": " << agg.cycles
           << ", \"self_cycles\": " << agg.self_cycles << "}";
        first = false;
    }
    os << "\n" << indent << "  },\n";

    os << indent << "  \"per_asid\": {";
    first = true;
    for (const auto &[asid, agg] : s.per_asid) {
        os << (first ? "\n" : ",\n") << indent << "    \""
           << static_cast<unsigned>(asid)
           << "\": {\"journeys\": " << agg.journeys
           << ", \"cycles\": " << agg.cycles << ", \"self\": {";
        bool kfirst = true;
        for (std::size_t k = 0; k < obs::kNumSpanKinds; ++k) {
            if (!agg.self[k])
                continue;
            os << (kfirst ? "" : ", ") << "\""
               << obs::spanKindName(static_cast<obs::SpanKind>(k))
               << "\": " << agg.self[k];
            kfirst = false;
        }
        os << "}}";
        first = false;
    }
    os << "\n" << indent << "  },\n";

    os << indent << "  \"per_epoch\": [";
    first = true;
    for (const auto &[epoch, agg] : s.per_epoch) {
        os << (first ? "\n" : ",\n") << indent << "    {\"epoch\": "
           << epoch << ", \"journeys\": " << agg.journeys
           << ", \"cycles\": " << agg.cycles
           << ", \"translation_self\": " << agg.translation_self
           << "}";
        first = false;
    }
    os << "\n" << indent << "  ]\n" << indent << "}";
}

} // namespace

std::string
metricsCsvHeader()
{
    return "label,ipc_geomean,total_instructions,total_memrefs,"
           "l1_tlb_mpki,l2_tlb_mpki,l2_mpki_total,l2_mpki_data,"
           "l3_mpki_total,l3_mpki_data,l2_tlb_misses,walks,"
           "walks_eliminated,avg_walk_cycles,"
           "l2_translation_occupancy,l3_translation_occupancy,"
           "pom_hit_rate";
}

std::string
metricsCsvRow(const std::string &label, const RunMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(6);
    os << label << ',' << m.ipc_geomean << ',' << m.total_instructions
       << ',' << m.total_memrefs << ',' << m.l1_tlb_mpki << ','
       << m.l2_tlb_mpki << ',' << m.l2_mpki_total << ','
       << m.l2_mpki_data << ',' << m.l3_mpki_total << ','
       << m.l3_mpki_data << ',' << m.l2_tlb_misses << ',' << m.walks
       << ',' << m.walks_eliminated << ',' << m.avg_walk_cycles << ','
       << m.l2_translation_occupancy << ','
       << m.l3_translation_occupancy << ',' << m.pom_hit_rate;
    return os.str();
}

namespace
{

void
writeStackArray(std::ostream &os, const obs::CpiStack &stack)
{
    os << "[";
    for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
        os << (i ? "," : "");
        obs::writeJsonNumber(os, stack.values()[i]);
    }
    os << "]";
}

obs::CpiStack
readStackArray(const obs::JsonValue &v)
{
    obs::CpiStack stack;
    for (std::size_t i = 0;
         i < v.arr.size() && i < obs::kNumCpiComponents; ++i)
        stack.add(static_cast<obs::CpiComponent>(i),
                  v.arr[i].num_v);
    return stack;
}

std::uint64_t
u64Of(const obs::JsonValue &obj, std::string_view key)
{
    return static_cast<std::uint64_t>(obj.numberOr(key, 0.0));
}

} // namespace

std::string
metricsJournalJson(const RunMetrics &m)
{
    std::ostringstream os;
    const auto num = [&os](const char *key, double v, bool first =
                                                          false) {
        os << (first ? "\"" : ",\"") << key << "\":";
        obs::writeJsonNumber(os, v);
    };
    os << "{";
    num("ipc_geomean", m.ipc_geomean, true);
    num("total_instructions",
        static_cast<double>(m.total_instructions));
    num("total_memrefs", static_cast<double>(m.total_memrefs));
    num("total_cycles", m.total_cycles);
    num("l1_tlb_mpki", m.l1_tlb_mpki);
    num("l2_tlb_mpki", m.l2_tlb_mpki);
    num("l2_mpki_total", m.l2_mpki_total);
    num("l2_mpki_data", m.l2_mpki_data);
    num("l3_mpki_total", m.l3_mpki_total);
    num("l3_mpki_data", m.l3_mpki_data);
    num("l2_tlb_misses", static_cast<double>(m.l2_tlb_misses));
    num("walks", static_cast<double>(m.walks));
    num("walks_eliminated", m.walks_eliminated);
    num("avg_walk_cycles", m.avg_walk_cycles);
    num("l2_translation_occupancy", m.l2_translation_occupancy);
    num("l3_translation_occupancy", m.l3_translation_occupancy);
    num("pom_hit_rate", m.pom_hit_rate);

    os << ",\"cores\":[";
    for (std::size_t i = 0; i < m.cores.size(); ++i) {
        const auto &c = m.cores[i];
        os << (i ? "," : "") << "{";
        os << "\"instructions\":" << c.instructions;
        os << ",\"cycles\":" << c.cycles;
        os << ",\"ipc\":";
        obs::writeJsonNumber(os, c.ipc);
        os << ",\"memrefs\":" << c.memrefs;
        os << ",\"l1_tlb_misses\":" << c.l1_tlb_misses;
        os << ",\"l2_tlb_misses\":" << c.l2_tlb_misses;
        os << ",\"walks\":" << c.walks << "}";
    }
    os << "],\"vms\":[";
    for (std::size_t i = 0; i < m.vms.size(); ++i) {
        const auto &vm = m.vms[i];
        os << (i ? "," : "") << "{";
        os << "\"instructions\":" << vm.instructions;
        os << ",\"l2_tlb_misses\":" << vm.l2_tlb_misses;
        os << ",\"l2_tlb_mpki\":";
        obs::writeJsonNumber(os, vm.l2_tlb_mpki);
        os << "}";
    }
    os << "],\"core_cpi\":[";
    for (std::size_t i = 0; i < m.core_cpi.size(); ++i) {
        os << (i ? "," : "");
        writeStackArray(os, m.core_cpi[i]);
    }
    os << "],\"vm_cpi\":[";
    for (std::size_t i = 0; i < m.vm_cpi.size(); ++i) {
        os << (i ? "," : "");
        writeStackArray(os, m.vm_cpi[i]);
    }
    os << "],\"cpi_total\":";
    writeStackArray(os, m.cpi_total);

    os << ",\"histograms\":[";
    for (std::size_t i = 0; i < m.histograms.size(); ++i) {
        const auto &h = m.histograms[i];
        const auto &d = h.digest;
        os << (i ? "," : "") << "{\"name\":\""
           << obs::escapeJson(h.name) << "\"";
        os << ",\"count\":" << d.count;
        os << ",\"sum\":";
        obs::writeJsonNumber(os, d.sum);
        os << ",\"mean\":";
        obs::writeJsonNumber(os, d.mean);
        os << ",\"min\":" << d.min << ",\"max\":" << d.max
           << ",\"p50\":" << d.p50 << ",\"p90\":" << d.p90
           << ",\"p99\":" << d.p99 << ",\"p999\":" << d.p999 << "}";
    }
    os << "]}";
    return os.str();
}

Expected<RunMetrics>
metricsFromJournal(std::string_view json)
{
    std::string parse_error;
    const auto doc = obs::parseJson(json, &parse_error);
    if (!doc || !doc->isObject())
        return makeError(ErrorKind::parse,
                         "bad journal metrics: " + parse_error,
                         "metricsFromJournal",
                         "rerun with --fresh to rebuild the journal");
    RunMetrics m;
    m.ipc_geomean = doc->numberOr("ipc_geomean", 0.0);
    m.total_instructions = u64Of(*doc, "total_instructions");
    m.total_memrefs = u64Of(*doc, "total_memrefs");
    m.total_cycles = doc->numberOr("total_cycles", 0.0);
    m.l1_tlb_mpki = doc->numberOr("l1_tlb_mpki", 0.0);
    m.l2_tlb_mpki = doc->numberOr("l2_tlb_mpki", 0.0);
    m.l2_mpki_total = doc->numberOr("l2_mpki_total", 0.0);
    m.l2_mpki_data = doc->numberOr("l2_mpki_data", 0.0);
    m.l3_mpki_total = doc->numberOr("l3_mpki_total", 0.0);
    m.l3_mpki_data = doc->numberOr("l3_mpki_data", 0.0);
    m.l2_tlb_misses = u64Of(*doc, "l2_tlb_misses");
    m.walks = u64Of(*doc, "walks");
    m.walks_eliminated = doc->numberOr("walks_eliminated", 0.0);
    m.avg_walk_cycles = doc->numberOr("avg_walk_cycles", 0.0);
    m.l2_translation_occupancy =
        doc->numberOr("l2_translation_occupancy", 0.0);
    m.l3_translation_occupancy =
        doc->numberOr("l3_translation_occupancy", 0.0);
    m.pom_hit_rate = doc->numberOr("pom_hit_rate", 0.0);

    const obs::JsonValue *cores = doc->find("cores");
    const obs::JsonValue *vms = doc->find("vms");
    const obs::JsonValue *core_cpi = doc->find("core_cpi");
    const obs::JsonValue *vm_cpi = doc->find("vm_cpi");
    const obs::JsonValue *cpi_total = doc->find("cpi_total");
    const obs::JsonValue *hists = doc->find("histograms");
    if (!cores || !cores->isArray() || !vms || !vms->isArray() ||
        !core_cpi || !core_cpi->isArray() || !vm_cpi ||
        !vm_cpi->isArray() || !cpi_total || !cpi_total->isArray() ||
        !hists || !hists->isArray())
        return makeError(ErrorKind::parse,
                         "journal metrics object is incomplete",
                         "metricsFromJournal",
                         "rerun with --fresh to rebuild the journal");

    for (const auto &v : cores->arr) {
        CoreMetrics c;
        c.instructions = u64Of(v, "instructions");
        c.cycles = static_cast<Cycles>(v.numberOr("cycles", 0.0));
        c.ipc = v.numberOr("ipc", 0.0);
        c.memrefs = u64Of(v, "memrefs");
        c.l1_tlb_misses = u64Of(v, "l1_tlb_misses");
        c.l2_tlb_misses = u64Of(v, "l2_tlb_misses");
        c.walks = u64Of(v, "walks");
        m.cores.push_back(c);
    }
    for (const auto &v : vms->arr) {
        VmMetrics vm;
        vm.instructions = u64Of(v, "instructions");
        vm.l2_tlb_misses = u64Of(v, "l2_tlb_misses");
        vm.l2_tlb_mpki = v.numberOr("l2_tlb_mpki", 0.0);
        m.vms.push_back(vm);
    }
    for (const auto &v : core_cpi->arr)
        m.core_cpi.push_back(readStackArray(v));
    for (const auto &v : vm_cpi->arr)
        m.vm_cpi.push_back(readStackArray(v));
    m.cpi_total = readStackArray(*cpi_total);
    for (const auto &v : hists->arr) {
        HistogramMetrics h;
        h.name = v.stringOr("name", "");
        h.digest.count = u64Of(v, "count");
        h.digest.sum = v.numberOr("sum", 0.0);
        h.digest.mean = v.numberOr("mean", 0.0);
        h.digest.min = u64Of(v, "min");
        h.digest.max = u64Of(v, "max");
        h.digest.p50 = u64Of(v, "p50");
        h.digest.p90 = u64Of(v, "p90");
        h.digest.p99 = u64Of(v, "p99");
        h.digest.p999 = u64Of(v, "p999");
        m.histograms.push_back(std::move(h));
    }
    return m;
}

std::string
metricsJson(const std::string &label, const RunMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(6);
    os << "{\n";
    os << "  \"schema_version\": " << kMetricsSchemaVersion << ",\n";
    os << "  \"label\": \"" << label << "\",\n";
    os << "  \"ipc_geomean\": " << m.ipc_geomean << ",\n";
    os << "  \"total_instructions\": " << m.total_instructions
       << ",\n";
    os << "  \"l1_tlb_mpki\": " << m.l1_tlb_mpki << ",\n";
    os << "  \"l2_tlb_mpki\": " << m.l2_tlb_mpki << ",\n";
    os << "  \"l2_mpki_total\": " << m.l2_mpki_total << ",\n";
    os << "  \"l3_mpki_total\": " << m.l3_mpki_total << ",\n";
    os << "  \"walks\": " << m.walks << ",\n";
    os << "  \"walks_eliminated\": " << m.walks_eliminated << ",\n";
    os << "  \"avg_walk_cycles\": " << m.avg_walk_cycles << ",\n";
    os << "  \"l2_translation_occupancy\": "
       << m.l2_translation_occupancy << ",\n";
    os << "  \"l3_translation_occupancy\": "
       << m.l3_translation_occupancy << ",\n";
    os << "  \"pom_hit_rate\": " << m.pom_hit_rate << ",\n";
    os << "  \"total_cycles\": ";
    obs::writeJsonNumber(os, m.total_cycles);
    os << ",\n";

    os << "  \"cores\": [";
    for (std::size_t i = 0; i < m.cores.size(); ++i) {
        const auto &c = m.cores[i];
        os << (i ? ", " : "") << "{\"ipc\": " << c.ipc
           << ", \"instructions\": " << c.instructions
           << ", \"l2_tlb_misses\": " << c.l2_tlb_misses << "}";
    }
    os << "],\n";

    os << "  \"vms\": [";
    for (std::size_t i = 0; i < m.vms.size(); ++i) {
        const auto &vm = m.vms[i];
        os << (i ? ", " : "")
           << "{\"instructions\": " << vm.instructions
           << ", \"l2_tlb_mpki\": " << vm.l2_tlb_mpki << "}";
    }
    os << "],\n";

    writeCpiStackJson(os, "  ", m);
    os << ",\n";
    writeHistogramsJson(os, "  ", m);
    // Host-time self-profile (obs::PhaseProfiler), present only when
    // profiling was enabled: host-dependent, so golden comparisons
    // strip it and the resume journal never carries it.
    if (!m.self_profile.empty()) {
        os << ",\n  \"self_profile\": {";
        for (std::size_t i = 0; i < m.self_profile.size(); ++i) {
            const auto &p = m.self_profile[i];
            const auto &d = p.digest;
            os << (i ? ",\n" : "\n") << "    \""
               << obs::escapeJson(p.name)
               << "\": {\"count\": " << d.count << ", \"sum_ns\": ";
            obs::writeJsonNumber(os, d.sum);
            os << ", \"mean_ns\": ";
            obs::writeJsonNumber(os, d.mean);
            os << ", \"p50\": " << d.p50 << ", \"p99\": " << d.p99
               << ", \"max\": " << d.max << "}";
        }
        os << "\n  }";
    }
    // Sampled span-trace critical-path summary, present only when
    // span tracing ran. Like self_profile, the resume journal and
    // golden comparisons exclude it (spans observe, never perturb).
    if (m.span_summary) {
        os << ",\n";
        writeSpanSummaryJson(os, "  ", *m.span_summary);
    }
    os << "\n}";
    return os.str();
}

} // namespace csalt
