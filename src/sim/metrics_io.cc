#include "sim/metrics_io.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace csalt
{

namespace
{

/** One CPI stack as {"compute": 1.2, ...} (all components, in order). */
void
writeStackObject(std::ostream &os, const obs::CpiStack &stack)
{
    os << "{";
    for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
        const auto comp = static_cast<obs::CpiComponent>(i);
        os << (i ? ", " : "") << "\""
           << obs::cpiComponentName(comp) << "\": ";
        obs::writeJsonNumber(os, stack.of(comp));
    }
    os << "}";
}

/** "cpi_stack": {"total": {...}, "cores": [...], "vms": [...]} */
void
writeCpiStackJson(std::ostream &os, const std::string &indent,
                  const RunMetrics &m)
{
    os << indent << "\"cpi_stack\": {\n";
    os << indent << "  \"total\": ";
    writeStackObject(os, m.cpi_total);
    os << ",\n" << indent << "  \"cores\": [";
    for (std::size_t i = 0; i < m.core_cpi.size(); ++i) {
        os << (i ? ", " : "");
        writeStackObject(os, m.core_cpi[i]);
    }
    os << "],\n" << indent << "  \"vms\": [";
    for (std::size_t i = 0; i < m.vm_cpi.size(); ++i) {
        os << (i ? ", " : "");
        writeStackObject(os, m.vm_cpi[i]);
    }
    os << "]\n" << indent << "}";
}

/** "histograms": {"walk.lat": {"count": ..., "p50": ...}, ...} */
void
writeHistogramsJson(std::ostream &os, const std::string &indent,
                    const RunMetrics &m)
{
    os << indent << "\"histograms\": {";
    for (std::size_t i = 0; i < m.histograms.size(); ++i) {
        const auto &h = m.histograms[i];
        const auto &d = h.digest;
        os << (i ? ",\n" : "\n") << indent << "  \""
           << obs::escapeJson(h.name) << "\": {\"count\": " << d.count
           << ", \"sum\": ";
        obs::writeJsonNumber(os, d.sum);
        os << ", \"mean\": ";
        obs::writeJsonNumber(os, d.mean);
        os << ", \"min\": " << d.min << ", \"max\": " << d.max
           << ", \"p50\": " << d.p50 << ", \"p90\": " << d.p90
           << ", \"p99\": " << d.p99 << ", \"p999\": " << d.p999
           << "}";
    }
    if (!m.histograms.empty())
        os << "\n" << indent;
    os << "}";
}

} // namespace

std::string
metricsCsvHeader()
{
    return "label,ipc_geomean,total_instructions,total_memrefs,"
           "l1_tlb_mpki,l2_tlb_mpki,l2_mpki_total,l2_mpki_data,"
           "l3_mpki_total,l3_mpki_data,l2_tlb_misses,walks,"
           "walks_eliminated,avg_walk_cycles,"
           "l2_translation_occupancy,l3_translation_occupancy,"
           "pom_hit_rate";
}

std::string
metricsCsvRow(const std::string &label, const RunMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(6);
    os << label << ',' << m.ipc_geomean << ',' << m.total_instructions
       << ',' << m.total_memrefs << ',' << m.l1_tlb_mpki << ','
       << m.l2_tlb_mpki << ',' << m.l2_mpki_total << ','
       << m.l2_mpki_data << ',' << m.l3_mpki_total << ','
       << m.l3_mpki_data << ',' << m.l2_tlb_misses << ',' << m.walks
       << ',' << m.walks_eliminated << ',' << m.avg_walk_cycles << ','
       << m.l2_translation_occupancy << ','
       << m.l3_translation_occupancy << ',' << m.pom_hit_rate;
    return os.str();
}

std::string
metricsJson(const std::string &label, const RunMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(6);
    os << "{\n";
    os << "  \"label\": \"" << label << "\",\n";
    os << "  \"ipc_geomean\": " << m.ipc_geomean << ",\n";
    os << "  \"total_instructions\": " << m.total_instructions
       << ",\n";
    os << "  \"l1_tlb_mpki\": " << m.l1_tlb_mpki << ",\n";
    os << "  \"l2_tlb_mpki\": " << m.l2_tlb_mpki << ",\n";
    os << "  \"l2_mpki_total\": " << m.l2_mpki_total << ",\n";
    os << "  \"l3_mpki_total\": " << m.l3_mpki_total << ",\n";
    os << "  \"walks\": " << m.walks << ",\n";
    os << "  \"walks_eliminated\": " << m.walks_eliminated << ",\n";
    os << "  \"avg_walk_cycles\": " << m.avg_walk_cycles << ",\n";
    os << "  \"l2_translation_occupancy\": "
       << m.l2_translation_occupancy << ",\n";
    os << "  \"l3_translation_occupancy\": "
       << m.l3_translation_occupancy << ",\n";
    os << "  \"pom_hit_rate\": " << m.pom_hit_rate << ",\n";
    os << "  \"total_cycles\": ";
    obs::writeJsonNumber(os, m.total_cycles);
    os << ",\n";

    os << "  \"cores\": [";
    for (std::size_t i = 0; i < m.cores.size(); ++i) {
        const auto &c = m.cores[i];
        os << (i ? ", " : "") << "{\"ipc\": " << c.ipc
           << ", \"instructions\": " << c.instructions
           << ", \"l2_tlb_misses\": " << c.l2_tlb_misses << "}";
    }
    os << "],\n";

    os << "  \"vms\": [";
    for (std::size_t i = 0; i < m.vms.size(); ++i) {
        const auto &vm = m.vms[i];
        os << (i ? ", " : "")
           << "{\"instructions\": " << vm.instructions
           << ", \"l2_tlb_mpki\": " << vm.l2_tlb_mpki << "}";
    }
    os << "],\n";

    writeCpiStackJson(os, "  ", m);
    os << ",\n";
    writeHistogramsJson(os, "  ", m);
    os << "\n}";
    return os.str();
}

} // namespace csalt
