#include "sim/metrics_io.h"

#include <iomanip>
#include <sstream>

namespace csalt
{

std::string
metricsCsvHeader()
{
    return "label,ipc_geomean,total_instructions,total_memrefs,"
           "l1_tlb_mpki,l2_tlb_mpki,l2_mpki_total,l2_mpki_data,"
           "l3_mpki_total,l3_mpki_data,l2_tlb_misses,walks,"
           "walks_eliminated,avg_walk_cycles,"
           "l2_translation_occupancy,l3_translation_occupancy,"
           "pom_hit_rate";
}

std::string
metricsCsvRow(const std::string &label, const RunMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(6);
    os << label << ',' << m.ipc_geomean << ',' << m.total_instructions
       << ',' << m.total_memrefs << ',' << m.l1_tlb_mpki << ','
       << m.l2_tlb_mpki << ',' << m.l2_mpki_total << ','
       << m.l2_mpki_data << ',' << m.l3_mpki_total << ','
       << m.l3_mpki_data << ',' << m.l2_tlb_misses << ',' << m.walks
       << ',' << m.walks_eliminated << ',' << m.avg_walk_cycles << ','
       << m.l2_translation_occupancy << ','
       << m.l3_translation_occupancy << ',' << m.pom_hit_rate;
    return os.str();
}

std::string
metricsJson(const std::string &label, const RunMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(6);
    os << "{\n";
    os << "  \"label\": \"" << label << "\",\n";
    os << "  \"ipc_geomean\": " << m.ipc_geomean << ",\n";
    os << "  \"total_instructions\": " << m.total_instructions
       << ",\n";
    os << "  \"l1_tlb_mpki\": " << m.l1_tlb_mpki << ",\n";
    os << "  \"l2_tlb_mpki\": " << m.l2_tlb_mpki << ",\n";
    os << "  \"l2_mpki_total\": " << m.l2_mpki_total << ",\n";
    os << "  \"l3_mpki_total\": " << m.l3_mpki_total << ",\n";
    os << "  \"walks\": " << m.walks << ",\n";
    os << "  \"walks_eliminated\": " << m.walks_eliminated << ",\n";
    os << "  \"avg_walk_cycles\": " << m.avg_walk_cycles << ",\n";
    os << "  \"l2_translation_occupancy\": "
       << m.l2_translation_occupancy << ",\n";
    os << "  \"l3_translation_occupancy\": "
       << m.l3_translation_occupancy << ",\n";
    os << "  \"pom_hit_rate\": " << m.pom_hit_rate << ",\n";

    os << "  \"cores\": [";
    for (std::size_t i = 0; i < m.cores.size(); ++i) {
        const auto &c = m.cores[i];
        os << (i ? ", " : "") << "{\"ipc\": " << c.ipc
           << ", \"instructions\": " << c.instructions
           << ", \"l2_tlb_misses\": " << c.l2_tlb_misses << "}";
    }
    os << "],\n";

    os << "  \"vms\": [";
    for (std::size_t i = 0; i < m.vms.size(); ++i) {
        const auto &vm = m.vms[i];
        os << (i ? ", " : "")
           << "{\"instructions\": " << vm.instructions
           << ", \"l2_tlb_mpki\": " << vm.l2_tlb_mpki << "}";
    }
    os << "]\n}";
    return os.str();
}

} // namespace csalt
