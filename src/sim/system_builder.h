/**
 * @file
 * One-call construction of a ready-to-run simulated machine from a
 * SystemParams plus a list of VM workloads — the entry point every
 * example and benchmark uses.
 */

#ifndef CSALT_SIM_SYSTEM_BUILDER_H
#define CSALT_SIM_SYSTEM_BUILDER_H

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "sim/scheme.h"
#include "sim/system.h"

namespace csalt
{

/** Everything needed to stand up one experiment run. */
struct BuildSpec
{
    SystemParams params = defaultParams();

    /**
     * One workload name per VM; each core rotates through one thread
     * of every VM. Size overrides params.contexts_per_core.
     */
    std::vector<std::string> vm_workloads;

    /** Footprint multiplier forwarded to the generators. */
    double workload_scale = 1.0;

    /**
     * Steps between telemetry stat-registry samples (0 = off). The
     * front end additionally attaches a JSONL sink via
     * System::openTrace() to stream them.
     */
    std::uint64_t stat_sample_interval = 0;
};

/** Build the system, VMs and per-core context rotations. */
std::unique_ptr<System> buildSystem(const BuildSpec &spec);

// The per-scheme apply* entry points live in the TranslationScheme
// registry (sim/scheme.h, included above for existing callers).

} // namespace csalt

#endif // CSALT_SIM_SYSTEM_BUILDER_H
