#include "core/marginal_utility.h"

#include "common/log.h"

namespace csalt
{

double
marginalUtility(const StackDistProfiler &data,
                const StackDistProfiler &tlb, unsigned data_ways,
                unsigned total_ways, const CriticalityWeights &weights)
{
    if (data_ways > total_ways)
        panic("marginalUtility: data_ways > total_ways");
    const unsigned tlb_ways = total_ways - data_ways;
    return weights.s_dat * static_cast<double>(data.hitsUpTo(data_ways)) +
           weights.s_tr * static_cast<double>(tlb.hitsUpTo(tlb_ways));
}

PartitionChoice
bestPartition(const StackDistProfiler &data, const StackDistProfiler &tlb,
              unsigned total_ways, unsigned min_ways,
              const CriticalityWeights &weights)
{
    if (min_ways == 0 || 2 * min_ways > total_ways)
        panic("bestPartition: bad min_ways");

    PartitionChoice best;
    for (unsigned n = min_ways; n <= total_ways - min_ways; ++n) {
        const double mu =
            marginalUtility(data, tlb, n, total_ways, weights);
        if (best.data_ways == 0 || mu >= best.utility) {
            best.data_ways = n;
            best.utility = mu;
        }
    }
    return best;
}

} // namespace csalt
