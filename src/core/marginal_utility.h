/**
 * @file
 * Marginal-utility computation over data/TLB stack-distance profiles
 * — paper Algorithms 1 & 2 (Eq. 1) and their criticality-weighted
 * variant, Algorithm 3 (Eq. 2).
 *
 * For a K-way cache and a candidate split giving N ways to data,
 *   MU(N)   =        sum_{i<N} D_LRU(i) +        sum_{j<K-N} T_LRU(j)
 *   CWMU(N) = S_dat * sum_{i<N} D_LRU(i) + S_tr * sum_{j<K-N} T_LRU(j)
 * and the controller picks argmax over N in [min, K-min].
 */

#ifndef CSALT_CORE_MARGINAL_UTILITY_H
#define CSALT_CORE_MARGINAL_UTILITY_H

#include "cache/stack_dist.h"

namespace csalt
{

/** Relative benefit of a hit, per entry type (paper §3.2). */
struct CriticalityWeights
{
    double s_dat = 1.0;
    double s_tr = 1.0;
};

/**
 * Weighted marginal utility of giving @p data_ways of @p total_ways
 * to data (Algorithm 2 / Algorithm 3).
 */
double marginalUtility(const StackDistProfiler &data,
                       const StackDistProfiler &tlb, unsigned data_ways,
                       unsigned total_ways,
                       const CriticalityWeights &weights = {});

/** Result of the argmax over candidate partitions (Algorithm 1). */
struct PartitionChoice
{
    unsigned data_ways = 0;
    double utility = 0.0;
};

/**
 * Evaluate every split N in [min_ways, total-min_ways] and return the
 * best (ties break toward more data ways, matching a scan from Nmin
 * upward that keeps strictly better candidates).
 */
PartitionChoice bestPartition(const StackDistProfiler &data,
                              const StackDistProfiler &tlb,
                              unsigned total_ways, unsigned min_ways,
                              const CriticalityWeights &weights = {});

} // namespace csalt

#endif // CSALT_CORE_MARGINAL_UTILITY_H
