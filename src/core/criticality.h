/**
 * @file
 * Runtime estimator of the criticality weights used by CSALT-CD
 * (paper §3.2).
 *
 * The paper computes, from performance counters, the expected cycles
 * an entry's L3 miss costs, relative to an L3 hit:
 *   S_dat = avg_offchip_DRAM_latency / L3_latency
 *   S_tr  = expected_translation_miss_cost / L3_latency, where the
 *           expected cost is the POM-TLB (stacked-DRAM) access plus
 *           the page-walk cost weighted by the measured POM-TLB miss
 *           rate — the generalisation of the paper's "(TLB latency +
 *           DRAM latency)" example using the same counters it names.
 *
 * Latencies are measured averages, accumulated with per-epoch decay
 * so the weights track phase changes.
 */

#ifndef CSALT_CORE_CRITICALITY_H
#define CSALT_CORE_CRITICALITY_H

#include <cstdint>

#include "common/types.h"
#include "core/marginal_utility.h"

namespace csalt
{

/** Sliding estimator fed by the memory system. */
class CriticalityEstimator
{
  public:
    /**
     * @param l3_latency hit latency the gains are normalised to
     * @param data_overlap divisor on the data weight: data misses
     *        overlap via MSHRs while translations block the pipeline
     *        (paper §2.2), so a data miss's *effective* stall is its
     *        latency over the memory-level parallelism
     */
    explicit CriticalityEstimator(Cycles l3_latency,
                                  double data_overlap = 1.0);

    /** Record one off-chip DRAM access latency (data miss path). */
    void recordDramLatency(Cycles lat);

    /** Record one POM-TLB (stacked DRAM) access latency. */
    void recordPomLatency(Cycles lat);

    /** Record one full page-walk latency. */
    void recordWalkLatency(Cycles lat);

    /** Record a POM-TLB lookup outcome (for the miss-rate term). */
    void recordPomOutcome(bool hit);

    /** Current weights; {1,1} until enough samples accumulate. */
    CriticalityWeights weights() const;

    /** Halve history at epoch boundaries (phase tracking). */
    void decay();

    /** Checkpoint support (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        for (const DecayingAvg *a : {&dram_, &pom_, &walk_}) {
            s.putDouble(a->sum);
            s.putDouble(a->count);
        }
        s.putDouble(pom_hits_);
        s.putDouble(pom_lookups_);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        for (DecayingAvg *a : {&dram_, &pom_, &walk_}) {
            a->sum = d.getDouble();
            a->count = d.getDouble();
        }
        pom_hits_ = d.getDouble();
        pom_lookups_ = d.getDouble();
    }

  private:
    struct DecayingAvg
    {
        double sum = 0.0;
        double count = 0.0;

        void
        add(double v)
        {
            sum += v;
            count += 1.0;
        }
        void
        decay()
        {
            sum *= 0.5;
            count *= 0.5;
        }
        double
        avg() const
        {
            return count > 0.0 ? sum / count : 0.0;
        }
    };

    Cycles l3_latency_;
    double data_overlap_;
    DecayingAvg dram_;
    DecayingAvg pom_;
    DecayingAvg walk_;
    double pom_hits_ = 0.0;
    double pom_lookups_ = 0.0;
};

} // namespace csalt

#endif // CSALT_CORE_CRITICALITY_H
