/**
 * @file
 * The per-cache CSALT partition controller (paper §3.1-§3.2, Fig. 6).
 *
 * One controller governs one cache. Every access ticks the epoch
 * counter; at each epoch boundary the controller evaluates the
 * marginal utility of every candidate split over the cache's data
 * and TLB stack-distance profilers — optionally scaled by the
 * criticality weights — applies the argmax, and resets the profilers
 * for the next epoch.
 */

#ifndef CSALT_CORE_CSALT_CONTROLLER_H
#define CSALT_CORE_CSALT_CONTROLLER_H

#include <cstdint>
#include <string>

#include "cache/cache.h"
#include "common/config.h"
#include "common/stats.h"
#include "core/criticality.h"
#include "core/marginal_utility.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

/** Epoch-driven dynamic way-partition controller for one cache. */
class PartitionController
{
  public:
    /**
     * @param cache governed cache (profiling + partitioning enabled
     *        here when the policy requires them)
     * @param params policy / epoch length / minimum ways
     * @param criticality weight source for CSALT-CD; may be nullptr
     *        for CSALT-D and static policies
     * @param label telemetry identity of this controller ("ctrl.l3",
     *        "ctrl.core0.l2"); defaults to the cache's name
     */
    PartitionController(Cache &cache, const PartitionParams &params,
                        const CriticalityEstimator *criticality,
                        std::string label = "");

    /**
     * Tick on each access to the governed cache; triggers the
     * repartition at epoch boundaries.
     * @param now current time (timestamps the Fig. 9 trace)
     */
    void onAccess(Cycles now = 0);

    /** Force an immediate repartition (epoch boundary). */
    void repartition(Cycles now = 0);

    PartitionPolicy policy() const { return params_.policy; }
    std::uint64_t epochsCompleted() const { return epochs_; }

    /** data-way count chosen at each epoch (paper Fig. 9 trace). */
    const TimeSeries &partitionTrace() const { return trace_; }

    /** Drop the recorded trace (end of warmup). */
    void clearTrace() { trace_ = TimeSeries{}; }

    /** Weights used at the most recent epoch (CSALT-CD diagnostics). */
    CriticalityWeights lastWeights() const { return last_weights_; }

    /** Telemetry identity ("ctrl.l3" etc.). */
    const std::string &label() const { return label_; }

    /**
     * Register "<label>.epochs" and "<label>.data_ways" (telemetry;
     * see docs/observability.md).
     */
    void registerStats(obs::StatRegistry &reg) const;

    /**
     * Checkpoint: epoch position, decision trace and last weights.
     * The governed cache's partition/profilers are saved by the Cache
     * itself; the criticality estimator by its owner.
     */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU64(accesses_in_epoch_);
        s.putU64(epochs_);
        trace_.saveState(s);
        s.putDouble(last_weights_.s_dat);
        s.putDouble(last_weights_.s_tr);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        accesses_in_epoch_ = d.getU64();
        epochs_ = d.getU64();
        trace_.loadState(d);
        last_weights_.s_dat = d.getDouble();
        last_weights_.s_tr = d.getDouble();
    }

  private:
    Cache &cache_;
    PartitionParams params_;
    const CriticalityEstimator *criticality_;
    std::string label_;
    std::uint64_t accesses_in_epoch_ = 0;
    std::uint64_t epochs_ = 0;
    TimeSeries trace_;
    CriticalityWeights last_weights_;
};

} // namespace csalt

#endif // CSALT_CORE_CSALT_CONTROLLER_H
