#include "core/csalt_controller.h"

#include <utility>

#include "common/log.h"
#include "obs/stat_registry.h"
#include "obs/trace_event.h"

namespace csalt
{

PartitionController::PartitionController(
    Cache &cache, const PartitionParams &params,
    const CriticalityEstimator *criticality, std::string label)
    : cache_(cache), params_(params), criticality_(criticality),
      label_(label.empty() ? cache.name() : std::move(label))
{
    switch (params_.policy) {
      case PartitionPolicy::none:
        break;
      case PartitionPolicy::staticHalf:
        cache_.enablePartitioning(params_.static_data_ways
                                      ? params_.static_data_ways
                                      : cache_.ways() / 2);
        break;
      case PartitionPolicy::csaltD:
      case PartitionPolicy::csaltCD:
        // Start from an even split; the first epoch corrects it.
        cache_.enablePartitioning(cache_.ways() / 2);
        if (!cache_.profiling())
            cache_.enableProfiling();
        break;
    }
    if (params_.policy == PartitionPolicy::csaltCD && !criticality_)
        fatal("CSALT-CD requires a criticality estimator");
}

void
PartitionController::onAccess(Cycles now)
{
    if (params_.policy != PartitionPolicy::csaltD &&
        params_.policy != PartitionPolicy::csaltCD) {
        return;
    }
    if (++accesses_in_epoch_ >= params_.epoch_accesses) {
        accesses_in_epoch_ = 0;
        repartition(now);
    }
}

namespace
{
/** Below this share of epoch traffic a class gets only min ways. */
constexpr double kNegligibleTraffic = 0.02;
} // namespace

void
PartitionController::repartition(Cycles now)
{
    if (params_.policy != PartitionPolicy::csaltD &&
        params_.policy != PartitionPolicy::csaltCD) {
        return;
    }

    const unsigned before_ways = cache_.dataWays();

    last_weights_ = CriticalityWeights{};
    if (params_.policy == PartitionPolicy::csaltCD)
        last_weights_ = criticality_->weights();

    // Guard: when one traffic class is negligible this epoch, give
    // it the minimum reservation outright — the marginal-utility
    // comparison over near-zero counters would otherwise wander on
    // noise and tax the dominant class for nothing.
    const StackDistProfiler &data = cache_.dataProfiler();
    const StackDistProfiler &tlb = cache_.tlbProfiler();
    const std::uint64_t total = data.total() + tlb.total();
    const double tlb_frac =
        total ? static_cast<double>(tlb.total()) / total : 0.0;

    unsigned data_ways;
    if (tlb_frac < kNegligibleTraffic) {
        data_ways = cache_.ways() - params_.min_ways_per_type;
    } else if (tlb_frac > 1.0 - kNegligibleTraffic) {
        data_ways = params_.min_ways_per_type;
    } else {
        data_ways = bestPartition(data, tlb, cache_.ways(),
                                  params_.min_ways_per_type,
                                  last_weights_)
                        .data_ways;
    }
    cache_.setDataWays(data_ways);

    ++epochs_;
    const double t = now ? static_cast<double>(now)
                         : static_cast<double>(epochs_);
    trace_.push(t, static_cast<double>(data_ways));

    CSALT_TRACE_INSTANT(
        obs::kCatEpoch, "repartition", 0, t,
        obs::EventArgs()
            .add("label", label_)
            .add("epoch", epochs_)
            .add("before_data_ways", before_ways)
            .add("data_ways", data_ways)
            .add("total_ways", cache_.ways())
            .add("w_data", last_weights_.s_dat)
            .add("w_tlb", last_weights_.s_tr));

    // Fresh profile for the next epoch (phase tracking).
    cache_.dataProfiler().reset();
    cache_.tlbProfiler().reset();
}

void
PartitionController::registerStats(obs::StatRegistry &reg) const
{
    reg.addCounter(label_ + ".epochs", &epochs_);
    reg.addGauge(label_ + ".data_ways", [this] {
        return static_cast<double>(cache_.dataWays());
    });
}

} // namespace csalt
