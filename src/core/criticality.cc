#include "core/criticality.h"

#include <algorithm>

namespace csalt
{

CriticalityEstimator::CriticalityEstimator(Cycles l3_latency,
                                           double data_overlap)
    : l3_latency_(l3_latency), data_overlap_(data_overlap)
{
}

void
CriticalityEstimator::recordDramLatency(Cycles lat)
{
    dram_.add(static_cast<double>(lat));
}

void
CriticalityEstimator::recordPomLatency(Cycles lat)
{
    pom_.add(static_cast<double>(lat));
}

void
CriticalityEstimator::recordWalkLatency(Cycles lat)
{
    walk_.add(static_cast<double>(lat));
}

void
CriticalityEstimator::recordPomOutcome(bool hit)
{
    pom_lookups_ += 1.0;
    if (hit)
        pom_hits_ += 1.0;
}

CriticalityWeights
CriticalityEstimator::weights() const
{
    CriticalityWeights w;
    const double l3 = static_cast<double>(l3_latency_);
    if (dram_.count >= 1.0)
        w.s_dat = std::max(1.0, dram_.avg() / l3 / data_overlap_);
    if (pom_.count >= 1.0) {
        const double miss_rate =
            pom_lookups_ > 0.0 ? 1.0 - pom_hits_ / pom_lookups_ : 0.0;
        const double walk_cost =
            walk_.count >= 1.0 ? walk_.avg() : 0.0;
        w.s_tr =
            std::max(1.0, (pom_.avg() + miss_rate * walk_cost) / l3);
    }
    return w;
}

void
CriticalityEstimator::decay()
{
    dram_.decay();
    pom_.decay();
    walk_.decay();
    pom_hits_ *= 0.5;
    pom_lookups_ *= 0.5;
}

} // namespace csalt
