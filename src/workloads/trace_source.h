/**
 * @file
 * Abstract memory-reference trace source.
 *
 * The paper plays Pin traces of real workloads through its simulator;
 * we substitute deterministic generators with matched memory-system
 * signatures (see DESIGN.md §2). A trace source yields an endless
 * stream of records; the simulator imposes instruction quotas.
 */

#ifndef CSALT_WORKLOADS_TRACE_SOURCE_H
#define CSALT_WORKLOADS_TRACE_SOURCE_H

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"

namespace csalt
{

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/** One memory reference plus the instructions retired with it. */
struct TraceRecord
{
    Addr vaddr = 0;
    AccessType type = AccessType::read;
    /** Instructions this record retires (>=1, includes the memop). */
    std::uint32_t icount = 1;
    /**
     * Pseudo-PC of the issuing memory instruction. The synthetic
     * generators tag each emission site with a distinct constant so
     * PC-indexed predictors (PCAX) see a realistic static-site
     * distribution; file traces carry 0 (no PC column).
     */
    Addr pc = 0;
};

/** Endless deterministic reference stream of one workload thread. */
class TraceSource
{
  public:
    explicit TraceSource(std::string name) : name_(std::move(name)) {}
    virtual ~TraceSource() = default;

    TraceSource(const TraceSource &) = delete;
    TraceSource &operator=(const TraceSource &) = delete;

    /** Produce the next reference. */
    virtual TraceRecord next() = 0;

    /** Approximate distinct 4KB pages the thread will touch. */
    virtual std::uint64_t footprintPages() const = 0;

    /**
     * Checkpoint the generator's position in its endless stream.
     * Pure virtual: a source without these cannot participate in
     * checkpoint/restore, and every source must participate.
     */
    virtual void saveState(snapshot::StateSerializer &s) const = 0;
    virtual void loadState(snapshot::StateDeserializer &d) = 0;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace csalt

#endif // CSALT_WORKLOADS_TRACE_SOURCE_H
