/**
 * @file
 * connected component (GraphChi-style): per-iteration active-vertex
 * lists whose pages scatter widely across the VA space.
 *
 * The generator reproduces the paper's most translation-hostile
 * profile (Table 1: 1158-cycle virtualized walks; Fig. 3: ~80%
 * translation occupancy; Fig. 7: 2.2X CSALT gain) with three
 * interleaved streams during the expansion phase:
 *
 *  - cold frontier scans: single touches of pages scattered over a
 *    huge VA span — every touch is an L2 TLB miss whose POM-TLB set
 *    line and page-table lines flood the data caches with
 *    translation entries that have almost no reuse;
 *  - hot vertex visits: short line-bursts over an L2-TLB-reach-sized
 *    window — the reuse that context switching destroys (Fig. 1);
 *  - union-find lookups: random lines of a few-MB component array
 *    with steep cache reuse — the data whose hits an unpartitioned
 *    cache sacrifices to the translation flood and CSALT recovers.
 *
 * Compaction phases alternate in (sequential sweeps + parent chases
 * over the union arrays), driving the phase-varying TLB demand of
 * Fig. 9.
 */

#include "workloads/generators.h"

#include <vector>

#include "common/rng.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

class CcompTrace final : public TraceSource
{
  public:
    CcompTrace(std::uint64_t seed, unsigned thread, double scale)
        : TraceSource("ccomp"), rng_(seed * 7919u + thread * 613)
    {
        window_pages_ = static_cast<std::uint64_t>(32768 * scale);
        if (window_pages_ < 32)
            window_pages_ = 32;
        hot_pages_ = static_cast<std::uint64_t>(49152 * scale);
        if (hot_pages_ < 16)
            hot_pages_ = 16;
        union_pages_ = static_cast<std::uint64_t>(1024 * scale);
        if (union_pages_ < 16)
            union_pages_ = 16;
        sweep_pages_ = static_cast<std::uint64_t>(4096 * scale);
        if (sweep_pages_ < 16)
            sweep_pages_ = 16;

        // Pre-generate the scattered window pool and the scattered
        // active-vertex map deterministically from the *workload*
        // seed only, so all threads share them. Scattering the active
        // array over a huge VA span is what makes ccomp's page-table
        // lines unshareable: every walk's leaf reference is a fresh
        // line (paper Table 1's 1158-cycle walks).
        Rng pool_rng(seed * 0x51ed2701u);
        windows_.resize(kPoolWindows);
        for (auto &window : windows_) {
            window.reserve(window_pages_);
            for (std::uint64_t i = 0; i < window_pages_; ++i)
                window.push_back(pool_rng.below(kVaSpanPages));
        }
        hot_map_.reserve(hot_pages_);
        for (std::uint64_t i = 0; i < hot_pages_; ++i)
            hot_map_.push_back(pool_rng.below(kVaSpanPages));
        hot_zipf_ = ZipfDist(hot_pages_, 0.7);
        sweep_addr_ = kSweepBase;
    }

    TraceRecord
    next() override
    {
        ++refs_;
        // Expansion dominates an iteration (~75% of references);
        // compaction is the shorter alternating phase.
        const std::uint64_t until =
            expansion_ ? 3 * kPhaseLen : kPhaseLen;
        if (refs_ - phase_start_ >= until) {
            phase_start_ = refs_;
            expansion_ = !expansion_;
            if (expansion_) {
                window_idx_ = (window_idx_ + 1) % kPoolWindows;
                hot_base_ = (hot_base_ + hot_pages_ / 8) % hot_pages_;
            }
        }

        if (expansion_)
            return expansionStep();
        return compactionStep();
    }

    std::uint64_t footprintPages() const override
    {
        return kPoolWindows * window_pages_ + hot_pages_ +
               union_pages_ + sweep_pages_;
    }

    void
    saveState(snapshot::StateSerializer &s) const override
    {
        rng_.saveState(s);
        s.putU32(window_idx_);
        s.putU64(hot_base_);
        s.putU64(refs_);
        s.putU64(phase_start_);
        s.putBool(expansion_);
        s.putU32(burst_left_);
        s.putU64(burst_addr_);
        s.putU64(sweep_addr_);
    }

    void
    loadState(snapshot::StateDeserializer &d) override
    {
        rng_.loadState(d);
        window_idx_ = d.getU32();
        if (window_idx_ >= kPoolWindows)
            d.fail("ccomp window index out of range");
        hot_base_ = d.getU64();
        refs_ = d.getU64();
        phase_start_ = d.getU64();
        expansion_ = d.getBool();
        burst_left_ = d.getU32();
        burst_addr_ = d.getU64();
        sweep_addr_ = d.getU64();
    }

  private:
    TraceRecord
    expansionStep()
    {
        if (burst_left_ > 0) {
            --burst_left_;
            const bool write = rng_.chance(0.3);
            return {burst_addr_ + rng_.below(64) / 8 * 8,
                    write ? AccessType::write : AccessType::read, 2,
                    kPcBurst};
        }

        const double roll = rng_.uniform();
        if (roll < 0.12) {
            // Union-find lookup: steep-reuse data line.
            const Addr addr =
                kUnionBase +
                (rng_.below(union_pages_ * kPageSize) & ~63ull);
            burst_addr_ = addr;
            burst_left_ = 1; // two touches of the record
            return {addr, AccessType::read, 2, kPcUnionFind};
        }
        if (roll < 0.94) {
            // Active vertex visit: a 6-reference record burst over
            // two lines of one page of the far-beyond-TLB-reach
            // active set. Popularity is Zipf-skewed (real graphs have
            // power-law degree), so the translation working set has a
            // smooth stack-distance gradient: every extra protected
            // way earns hits, and the flood-heavy unpartitioned cache
            // keeps losing the warm core across context switches.
            const std::uint64_t rank =
                (hot_base_ + hot_zipf_(rng_)) % hot_pages_;
            const std::uint64_t page = hot_map_[rank];
            burst_addr_ = kHotBase + page * kPageSize +
                          (rng_.below(kPageSize - 64) & ~63ull);
            burst_left_ = 3;
            return {burst_addr_, AccessType::read, 2, kPcVisit};
        }
        // Cold frontier scan: one touch of a scattered page; its
        // translation costs more cache space than its data earns.
        const auto &window = windows_[window_idx_];
        const std::uint64_t page = window[rng_.below(window.size())];
        const Addr addr = kActiveBase + page * kPageSize +
                          rng_.below(kPageSize) / 8 * 8;
        const bool write = rng_.chance(0.3); // label updates
        return {addr, write ? AccessType::write : AccessType::read, 2,
                kPcFrontier};
    }

    TraceRecord
    compactionStep()
    {
        if (rng_.chance(0.15)) {
            // Short random parent chase.
            const Addr addr = kUnionBase +
                              rng_.below(union_pages_ * kPageSize);
            return {addr & ~7ull, AccessType::read, 3, kPcChase};
        }
        // Cyclic sweep over edge shards (~16MB): reuse distance
        // beyond L3 capacity, so LRU earns nothing from these lines
        // while they evict everything else — the pathology CSALT's
        // partition contains.
        sweep_addr_ += 8;
        if (sweep_addr_ >= kSweepBase + sweep_pages_ * kPageSize)
            sweep_addr_ = kSweepBase;
        const bool write = rng_.chance(0.25);
        return {sweep_addr_,
                write ? AccessType::write : AccessType::read, 3,
                kPcSweep};
    }

    /** Scatter span: windows draw pages from a 32M-page VA range. */
    static constexpr std::uint64_t kVaSpanPages = 1ull << 25;
    static constexpr Addr kActiveBase = Addr{1} << 40;
    static constexpr Addr kHotBase = Addr{1} << 42;
    static constexpr Addr kUnionBase = Addr{1} << 43;
    static constexpr Addr kSweepBase = Addr{1} << 44;
    static constexpr unsigned kPoolWindows = 8;
    static constexpr std::uint64_t kPhaseLen = 40000;
    // Pseudo-PCs, one per emission site (PCAX predictor input).
    static constexpr Addr kPcBurst = 0x405000;
    static constexpr Addr kPcUnionFind = 0x405010;
    static constexpr Addr kPcVisit = 0x405020;
    static constexpr Addr kPcFrontier = 0x405030;
    static constexpr Addr kPcChase = 0x405040;
    static constexpr Addr kPcSweep = 0x405050;

    Rng rng_;
    std::uint64_t window_pages_;
    std::uint64_t hot_pages_;
    std::uint64_t union_pages_;
    std::uint64_t sweep_pages_;
    std::vector<std::vector<std::uint64_t>> windows_;
    std::vector<std::uint64_t> hot_map_; //!< rank -> scattered page
    ZipfDist hot_zipf_;
    unsigned window_idx_ = 0;
    std::uint64_t hot_base_ = 0;
    std::uint64_t refs_ = 0;
    std::uint64_t phase_start_ = 0;
    bool expansion_ = true;
    unsigned burst_left_ = 0;
    Addr burst_addr_ = 0;
    Addr sweep_addr_;
};

} // namespace

std::unique_ptr<TraceSource>
makeCcomp(std::uint64_t seed, unsigned thread, unsigned /*nthreads*/,
          double scale)
{
    return std::make_unique<CcompTrace>(seed, thread, scale);
}

} // namespace csalt
