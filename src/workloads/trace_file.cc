#include "workloads/trace_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_set>

#include "common/error.h"
#include "common/log.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

/**
 * Raise a parse diagnostic that pinpoints the record: traces come
 * from external converters, so "which byte is wrong" matters more
 * than for hand-written configs.
 */
[[noreturn]] void
raiseRecord(const std::string &name, std::size_t line_no,
            std::size_t record_index, std::size_t byte_offset,
            std::string_view line, const std::string &why)
{
    std::string shown(line.substr(0, 60));
    if (line.size() > 60)
        shown += "...";
    raise(makeError(
        ErrorKind::parse,
        msgOf("line ", line_no, " (record ", record_index,
              ", byte offset ", byte_offset, "): ", why, " in '",
              shown, "'"),
        name,
        "expected 'R|W <hex-vaddr> <icount>' per line; the trace is "
        "truncated or corrupt — re-record or re-convert it"));
}

/** Clip a possibly garbage field so diagnostics stay one line. */
std::string
clip(std::string_view field)
{
    if (field.size() <= 40)
        return std::string(field);
    return std::string(field.substr(0, 40)) + "...";
}

/** Split off the next whitespace-separated field of @p line. */
std::string_view
nextField(std::string_view &line)
{
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string_view::npos) {
        line = {};
        return {};
    }
    const auto end = line.find_first_of(" \t\r", start);
    const std::string_view field = line.substr(
        start, end == std::string_view::npos ? line.size() - start
                                             : end - start);
    line.remove_prefix(end == std::string_view::npos ? line.size()
                                                     : end);
    return field;
}

} // namespace

std::shared_ptr<const TraceFile>
TraceFile::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        raise(makeError(ErrorKind::io,
                        msgOf("cannot open trace file: ",
                              std::strerror(errno)),
                        path, "check the file:<path> workload spec"));
    }
    // Block reads into one pre-sized string: rdbuf() streaming costs
    // a virtual call per chunk plus repeated stringbuf growth; a
    // seek-to-end size probe lets us reserve once and read() straight
    // into the buffer.
    std::string buffer;
    in.seekg(0, std::ios::end);
    const auto end_pos = in.tellg();
    in.seekg(0, std::ios::beg);
    if (end_pos > 0)
        buffer.reserve(static_cast<std::size_t>(end_pos));
    char block[1 << 16];
    while (in.read(block, sizeof(block)) || in.gcount() > 0)
        buffer.append(block, static_cast<std::size_t>(in.gcount()));
    if (in.bad()) {
        raise(makeError(ErrorKind::io, "read failed mid-file", path,
                        "the file may be truncated or on failing "
                        "storage"));
    }
    return parse(buffer, path);
}

std::shared_ptr<const TraceFile>
TraceFile::parse(const std::string &text, const std::string &name)
{
    auto file = std::make_shared<TraceFile>();
    file->name_ = name;

    const std::string_view all(text);
    // One line is at most one record; reserving on the newline count
    // avoids reallocation during the parse loop.
    file->records_.reserve(
        static_cast<std::size_t>(
            std::count(all.begin(), all.end(), '\n')) +
        1);
    std::size_t offset = 0;
    std::size_t line_no = 0;
    while (offset < all.size()) {
        ++line_no;
        const std::size_t line_start = offset;
        std::size_t eol = all.find('\n', offset);
        const bool unterminated = eol == std::string_view::npos;
        if (unterminated)
            eol = all.size();
        std::string_view line = all.substr(line_start, eol - line_start);
        offset = eol + 1;

        std::string_view rest = line;
        const std::string_view op = nextField(rest);
        if (op.empty() || op[0] == '#')
            continue;

        const std::size_t record_index = file->records_.size();
        if (op != "R" && op != "W") {
            raiseRecord(name, line_no, record_index, line_start, line,
                        msgOf("bad op '", op, "'"));
        }

        const std::string_view addr_hex = nextField(rest);
        if (addr_hex.empty()) {
            raiseRecord(name, line_no, record_index, line_start, line,
                        unterminated
                            ? "record truncated (no address, missing "
                              "final newline)"
                            : "missing address field");
        }
        TraceRecord rec;
        rec.vaddr = 0;
        std::string_view digits = addr_hex;
        if (digits.size() > 2 &&
            (digits.substr(0, 2) == "0x" || digits.substr(0, 2) == "0X"))
            digits.remove_prefix(2);
        if (digits.empty() || digits.size() > 16) {
            raiseRecord(name, line_no, record_index, line_start, line,
                        msgOf("bad hex address '", clip(addr_hex),
                              "'"));
        }
        for (const char c : digits) {
            const int v = c >= '0' && c <= '9'   ? c - '0'
                          : c >= 'a' && c <= 'f' ? c - 'a' + 10
                          : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                                 : -1;
            if (v < 0) {
                raiseRecord(name, line_no, record_index, line_start,
                            line,
                            msgOf("bad hex address '", clip(addr_hex),
                                  "'"));
            }
            rec.vaddr = (rec.vaddr << 4) | static_cast<Addr>(v);
        }

        const std::string_view icount_str = nextField(rest);
        if (icount_str.empty()) {
            raiseRecord(name, line_no, record_index, line_start, line,
                        unterminated
                            ? "record truncated (no icount, missing "
                              "final newline)"
                            : "missing icount field");
        }
        std::uint64_t icount = 0;
        for (const char c : icount_str) {
            if (c < '0' || c > '9' || icount > 0xffffffffull) {
                raiseRecord(name, line_no, record_index, line_start,
                            line,
                            msgOf("bad icount '", clip(icount_str),
                                  "'"));
            }
            icount = icount * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (icount == 0 || icount > 0xffffffffull) {
            raiseRecord(name, line_no, record_index, line_start, line,
                        msgOf("icount out of range '", icount_str,
                              "'"));
        }

        if (!nextField(rest).empty()) {
            raiseRecord(name, line_no, record_index, line_start, line,
                        "trailing fields after icount");
        }

        rec.type = op == "W" ? AccessType::write : AccessType::read;
        rec.icount = static_cast<std::uint32_t>(icount);
        file->records_.push_back(rec);
    }
    if (file->records_.empty()) {
        raise(makeError(ErrorKind::parse, "empty trace (no records)",
                        name,
                        "the file holds only comments or nothing — "
                        "likely a truncated recording"));
    }
    return file;
}

std::string
TraceFile::format(const std::vector<TraceRecord> &records)
{
    std::ostringstream out;
    out << "# csalt trace: R|W <hex-vaddr> <icount>\n";
    out << std::hex;
    for (const auto &rec : records) {
        out << (rec.type == AccessType::write ? "W " : "R ")
            << rec.vaddr << ' ' << std::dec << rec.icount << std::hex
            << '\n';
    }
    return out.str();
}

TraceFileSource::TraceFileSource(
    std::shared_ptr<const TraceFile> file, unsigned thread)
    : TraceSource("file:" + file->name()), file_(std::move(file)),
      pos_((thread * 0x9e3779b97f4a7c15ull) %
           file_->records().size())
{
}

TraceRecord
TraceFileSource::next()
{
    const TraceRecord rec = file_->records()[pos_];
    if (++pos_ == file_->records().size())
        pos_ = 0;
    return rec;
}

std::uint64_t
TraceFileSource::footprintPages() const
{
    std::unordered_set<Vpn> pages;
    for (const auto &rec : file_->records())
        pages.insert(rec.vaddr >> kPageShift);
    return pages.size();
}


void
TraceFileSource::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(pos_);
}

void
TraceFileSource::loadState(snapshot::StateDeserializer &d)
{
    const std::uint64_t pos = d.getU64();
    if (pos >= file_->records().size())
        d.fail("trace-file replay cursor beyond the record count");
    pos_ = static_cast<std::size_t>(pos);
}

} // namespace csalt
