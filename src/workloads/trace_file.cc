#include "workloads/trace_file.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/log.h"

namespace csalt
{

std::shared_ptr<const TraceFile>
TraceFile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal(msgOf("cannot open trace file '", path, "'"));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str(), path);
}

std::shared_ptr<const TraceFile>
TraceFile::parse(const std::string &text, const std::string &name)
{
    auto file = std::make_shared<TraceFile>();
    file->name_ = name;

    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string op;
        std::string addr_hex;
        std::uint32_t icount = 0;
        if (!(fields >> op >> addr_hex >> icount) ||
            (op != "R" && op != "W") || icount == 0) {
            fatal(msgOf(name, ":", line_no, ": bad trace record '",
                        line, "'"));
        }
        TraceRecord rec;
        rec.vaddr = std::strtoull(addr_hex.c_str(), nullptr, 16);
        rec.type = op == "W" ? AccessType::write : AccessType::read;
        rec.icount = icount;
        file->records_.push_back(rec);
    }
    if (file->records_.empty())
        fatal(msgOf(name, ": empty trace"));
    return file;
}

std::string
TraceFile::format(const std::vector<TraceRecord> &records)
{
    std::ostringstream out;
    out << "# csalt trace: R|W <hex-vaddr> <icount>\n";
    out << std::hex;
    for (const auto &rec : records) {
        out << (rec.type == AccessType::write ? "W " : "R ")
            << rec.vaddr << ' ' << std::dec << rec.icount << std::hex
            << '\n';
    }
    return out.str();
}

TraceFileSource::TraceFileSource(
    std::shared_ptr<const TraceFile> file, unsigned thread)
    : TraceSource("file:" + file->name()), file_(std::move(file)),
      pos_((thread * 0x9e3779b97f4a7c15ull) %
           file_->records().size())
{
}

TraceRecord
TraceFileSource::next()
{
    const TraceRecord rec = file_->records()[pos_];
    pos_ = (pos_ + 1) % file_->records().size();
    return rec;
}

std::uint64_t
TraceFileSource::footprintPages() const
{
    std::unordered_set<Vpn> pages;
    for (const auto &rec : file_->records())
        pages.insert(rec.vaddr >> kPageShift);
    return pages.size();
}

} // namespace csalt
