/**
 * @file
 * File-backed trace source: replay a recorded memory trace (e.g.
 * converted from a Pin tool, the paper's own methodology) instead of
 * a synthetic generator.
 *
 * Format: plain text, one record per line —
 *     R <hex-vaddr> <icount>
 *     W <hex-vaddr> <icount>
 * Lines starting with '#' are comments. The trace loops endlessly
 * (the simulator imposes instruction quotas); each thread starts at
 * a different offset so an SMP run doesn't march in lockstep.
 *
 * The registry accepts "file:<path>" anywhere a workload name is
 * expected, so recorded traces drop straight into BuildSpec.
 */

#ifndef CSALT_WORKLOADS_TRACE_FILE_H
#define CSALT_WORKLOADS_TRACE_FILE_H

#include <memory>
#include <string>
#include <vector>

#include "workloads/trace_source.h"

namespace csalt
{

/** Parsed, shareable contents of one trace file. */
class TraceFile
{
  public:
    /**
     * Parse @p path. Raises a CsaltError — kind=io when the file
     * cannot be read, kind=parse for malformed content; parse errors
     * name the line, the record index and the byte offset of the
     * offending record, so a truncated or corrupted trace is rejected
     * with a pinpointed diagnostic instead of silently mis-replaying.
     */
    static std::shared_ptr<const TraceFile> load(
        const std::string &path);

    /** Parse records from an in-memory string (tests); raises too. */
    static std::shared_ptr<const TraceFile> parse(
        const std::string &text, const std::string &name = "inline");

    const std::vector<TraceRecord> &records() const
    {
        return records_;
    }
    const std::string &name() const { return name_; }

    /** Serialise records in the file format (round-trip helper). */
    static std::string format(const std::vector<TraceRecord> &records);

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
};

/** Endless replay of a TraceFile, one instance per thread. */
class TraceFileSource final : public TraceSource
{
  public:
    /**
     * @param file shared parsed trace
     * @param thread staggers this thread's start offset
     */
    TraceFileSource(std::shared_ptr<const TraceFile> file,
                    unsigned thread);

    TraceRecord next() override;
    std::uint64_t footprintPages() const override;

    /** Checkpoint: replay cursor only (the file itself is config). */
    void saveState(snapshot::StateSerializer &s) const override;
    void loadState(snapshot::StateDeserializer &d) override;

  private:
    std::shared_ptr<const TraceFile> file_;
    std::size_t pos_;
};

} // namespace csalt

#endif // CSALT_WORKLOADS_TRACE_FILE_H
