/**
 * @file
 * GUPS (giant updates per second): uniform random read-modify-write
 * over a table far larger than any TLB's reach. Every access touches
 * a fresh random page, so L2 TLB MPKI is saturated with or without
 * context switching (paper Fig. 1 shows GUPS with one of the *lower*
 * ratios) and a large L3 TLB captures nearly all reuse (Fig. 8).
 */

#include "workloads/generators.h"

#include "common/rng.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

class GupsTrace final : public TraceSource
{
  public:
    GupsTrace(std::uint64_t seed, unsigned thread, double scale)
        : TraceSource("gups"), rng_(seed * 1315423911u + thread)
    {
        table_pages_ = static_cast<std::uint64_t>(262144 * scale);
        if (table_pages_ < 16)
            table_pages_ = 16;
    }

    TraceRecord
    next() override
    {
        if (pending_write_) {
            pending_write_ = false;
            // The update half of the read-modify-write.
            return {pending_addr_, AccessType::write, 1, kPcUpdate};
        }
        const Addr offset = rng_.below(table_pages_ * kPageSize) & ~7ull;
        pending_addr_ = kTableBase + offset;
        pending_write_ = true;
        return {pending_addr_, AccessType::read, 2, kPcGather};
    }

    std::uint64_t footprintPages() const override
    {
        return table_pages_;
    }

    void
    saveState(snapshot::StateSerializer &s) const override
    {
        rng_.saveState(s);
        s.putBool(pending_write_);
        s.putU64(pending_addr_);
    }

    void
    loadState(snapshot::StateDeserializer &d) override
    {
        rng_.loadState(d);
        pending_write_ = d.getBool();
        pending_addr_ = d.getU64();
    }

  private:
    static constexpr Addr kTableBase = Addr{1} << 40;
    // Pseudo-PCs, one per emission site (PCAX predictor input).
    static constexpr Addr kPcGather = 0x401000;
    static constexpr Addr kPcUpdate = 0x401010;

    Rng rng_;
    std::uint64_t table_pages_;
    bool pending_write_ = false;
    Addr pending_addr_ = 0;
};

} // namespace

std::unique_ptr<TraceSource>
makeGups(std::uint64_t seed, unsigned thread, unsigned /*nthreads*/,
         double scale)
{
    return std::make_unique<GupsTrace>(seed, thread, scale);
}

} // namespace csalt
