/**
 * @file
 * canneal (PARSEC): simulated-annealing element swaps. Accesses come
 * in short spatial bursts around randomly chosen elements, most of
 * which fall in a slowly drifting hot set roughly the size of the L2
 * TLB's reach — so the workload runs near the TLB capacity cliff and
 * context switches push it over (high Fig. 1 ratio).
 */

#include "workloads/generators.h"

#include <vector>

#include "common/rng.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

class CannealTrace final : public TraceSource
{
  public:
    CannealTrace(std::uint64_t seed, unsigned thread, double scale)
        : TraceSource("canneal"), rng_(seed * 2654435761u + thread * 97)
    {
        total_pages_ = static_cast<std::uint64_t>(24576 * scale);
        hot_pages_ = static_cast<std::uint64_t>(1152 * scale);
        if (total_pages_ < 64)
            total_pages_ = 64;
        if (hot_pages_ < 8)
            hot_pages_ = 8;

        // Netlist elements come from a fragmented allocator: page
        // permutation shared by the VM's threads (same seed).
        Rng map_rng(seed * 0x51ed2705u);
        page_map_.reserve(total_pages_);
        for (std::uint64_t i = 0; i < total_pages_; ++i)
            page_map_.push_back(map_rng.below(kVaSpanPages));
    }

    TraceRecord
    next() override
    {
        ++refs_;
        // The hot set drifts slowly, as accepted moves shift the
        // active elements (per-thread drift keeps threads overlapped
        // but not identical).
        if (refs_ % kDriftPeriod == 0)
            hot_base_ = (hot_base_ + hot_pages_ / 4) % total_pages_;

        if (burst_left_ == 0) {
            // Start a new swap: pick an element, mostly in the hot
            // set, and touch its neighbourhood.
            std::uint64_t rank;
            if (rng_.chance(0.95)) {
                rank = (hot_base_ + rng_.below(hot_pages_)) %
                       total_pages_;
            } else {
                rank = rng_.below(total_pages_);
            }
            const std::uint64_t page = page_map_[rank];
            burst_addr_ = kElementsBase + page * kPageSize +
                          (rng_.below(kPageSize - 512) & ~7ull);
            burst_left_ = 4 + static_cast<unsigned>(rng_.below(5));
        }

        --burst_left_;
        const Addr addr = burst_addr_ + rng_.below(512) / 8 * 8;
        const bool write = rng_.chance(0.3);
        return {addr, write ? AccessType::write : AccessType::read, 3,
                kPcElement};
    }

    std::uint64_t footprintPages() const override
    {
        return total_pages_;
    }

    void
    saveState(snapshot::StateSerializer &s) const override
    {
        rng_.saveState(s);
        s.putU64(hot_base_);
        s.putU64(refs_);
        s.putU32(burst_left_);
        s.putU64(burst_addr_);
    }

    void
    loadState(snapshot::StateDeserializer &d) override
    {
        rng_.loadState(d);
        hot_base_ = d.getU64();
        refs_ = d.getU64();
        burst_left_ = d.getU32();
        burst_addr_ = d.getU64();
    }

  private:
    static constexpr Addr kElementsBase = Addr{1} << 40;
    static constexpr std::uint64_t kVaSpanPages = 1ull << 23;
    static constexpr std::uint64_t kDriftPeriod = 400000;
    // Pseudo-PC of the single emission site (PCAX predictor input).
    static constexpr Addr kPcElement = 0x403000;

    Rng rng_;
    std::uint64_t total_pages_;
    std::uint64_t hot_pages_;
    std::vector<std::uint64_t> page_map_; //!< rank -> VA page
    std::uint64_t hot_base_ = 0;
    std::uint64_t refs_ = 0;
    unsigned burst_left_ = 0;
    Addr burst_addr_ = 0;
};

} // namespace

std::unique_ptr<TraceSource>
makeCanneal(std::uint64_t seed, unsigned thread, unsigned /*nthreads*/,
            double scale)
{
    return std::make_unique<CannealTrace>(seed, thread, scale);
}

} // namespace csalt
