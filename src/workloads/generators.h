/**
 * @file
 * Factory functions for the six synthetic benchmark trace generators.
 *
 * Each generator stands in for the paper's Pin trace of the same-named
 * workload (PARSEC / graph suites), reproducing its memory-system
 * signature: footprint, page-level locality, reuse profile and phase
 * behaviour (DESIGN.md §2 documents each substitution).
 *
 * All threads of one VM share the workload's virtual-address layout
 * (they share an address space); @p thread selects the thread-private
 * phase/seed so streams differ but overlap on the shared structures.
 * @p scale multiplies footprints (1.0 = default experiment size).
 */

#ifndef CSALT_WORKLOADS_GENERATORS_H
#define CSALT_WORKLOADS_GENERATORS_H

#include <cstdint>
#include <memory>

#include "workloads/trace_source.h"

namespace csalt
{

/** Uniform-random read-modify-write over a giant table. */
std::unique_ptr<TraceSource> makeGups(std::uint64_t seed, unsigned thread,
                                      unsigned nthreads, double scale);

/** Annealing swaps: bursty random-element accesses + netlist stream. */
std::unique_ptr<TraceSource> makeCanneal(std::uint64_t seed,
                                         unsigned thread,
                                         unsigned nthreads, double scale);

/** BFS: sequential frontier scans + random neighbour probes. */
std::unique_ptr<TraceSource> makeGraph500(std::uint64_t seed,
                                          unsigned thread,
                                          unsigned nthreads,
                                          double scale);

/** Power-law vertex popularity + streaming edge list. */
std::unique_ptr<TraceSource> makePagerank(std::uint64_t seed,
                                          unsigned thread,
                                          unsigned nthreads,
                                          double scale);

/**
 * Connected components: phase-alternating sparse frontier expansion
 * and compaction sweeps over a widely scattered VA range — the
 * paper's most translation-hostile workload (Table 1: 1158-cycle
 * virtualized walks; Fig. 3: 80% translation occupancy).
 */
std::unique_ptr<TraceSource> makeCcomp(std::uint64_t seed,
                                       unsigned thread,
                                       unsigned nthreads, double scale);

/** Streaming passes over a modest array (TLB-friendly, huge pages). */
std::unique_ptr<TraceSource> makeStreamcluster(std::uint64_t seed,
                                               unsigned thread,
                                               unsigned nthreads,
                                               double scale);

} // namespace csalt

#endif // CSALT_WORKLOADS_GENERATORS_H
