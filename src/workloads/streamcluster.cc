/**
 * @file
 * streamcluster (PARSEC): repeated sequential passes over a modest
 * point array plus a tiny hot centres region. Page-level locality is
 * excellent and the footprint is THP-friendly (the builder backs this
 * VM mostly with 2MB pages), so TLB misses are rare — matching the
 * paper's near-equal native/virtualized walk costs (Table 1).
 */

#include "workloads/generators.h"

#include "common/rng.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

class StreamclusterTrace final : public TraceSource
{
  public:
    StreamclusterTrace(std::uint64_t seed, unsigned thread, double scale)
        : TraceSource("streamcluster"),
          rng_(seed * 104729u + thread * 17)
    {
        point_pages_ = static_cast<std::uint64_t>(6144 * scale);
        if (point_pages_ < 64)
            point_pages_ = 64;
        // Stagger threads across the array.
        scan_addr_ = kPointsBase +
                     (thread * 1315423911ull) %
                         (point_pages_ * kPageSize) /
                         8 * 8;
    }

    TraceRecord
    next() override
    {
        if (rng_.chance(0.025)) {
            // Membership/assignment lookups: a light random stream
            // over a moderate table. This is the workload's only
            // recurring TLB-miss source (the sequential passes are
            // THP-covered), matching the small-but-nonzero walk
            // activity the paper measures for streamcluster.
            const Addr addr =
                kAssignBase +
                (rng_.below(kAssignPages * kPageSize) & ~7ull);
            return {addr, AccessType::read, 4, kPcAssign};
        }
        if (rng_.chance(0.05)) {
            // Distance-to-centre updates in the hot centres block.
            const Addr addr =
                kCentersBase + rng_.below(kCenterPages * kPageSize);
            const bool write = rng_.chance(0.5);
            return {addr & ~7ull,
                    write ? AccessType::write : AccessType::read, 4,
                    kPcCenters};
        }
        scan_addr_ += 8;
        if (scan_addr_ >= kPointsBase + point_pages_ * kPageSize)
            scan_addr_ = kPointsBase;
        return {scan_addr_, AccessType::read, 4, kPcPoints};
    }

    std::uint64_t footprintPages() const override
    {
        return point_pages_ + kCenterPages + kAssignPages;
    }

    void
    saveState(snapshot::StateSerializer &s) const override
    {
        rng_.saveState(s);
        s.putU64(scan_addr_);
    }

    void
    loadState(snapshot::StateDeserializer &d) override
    {
        rng_.loadState(d);
        scan_addr_ = d.getU64();
    }

  private:
    static constexpr Addr kPointsBase = Addr{1} << 40;
    static constexpr Addr kCentersBase = Addr{1} << 41;
    static constexpr Addr kAssignBase = Addr{3} << 41;
    static constexpr std::uint64_t kCenterPages = 64;
    static constexpr std::uint64_t kAssignPages = 16384;
    // Pseudo-PCs, one per emission site (PCAX predictor input).
    static constexpr Addr kPcAssign = 0x406000;
    static constexpr Addr kPcCenters = 0x406010;
    static constexpr Addr kPcPoints = 0x406020;

    Rng rng_;
    std::uint64_t point_pages_;
    Addr scan_addr_;
};

} // namespace

std::unique_ptr<TraceSource>
makeStreamcluster(std::uint64_t seed, unsigned thread,
                  unsigned /*nthreads*/, double scale)
{
    return std::make_unique<StreamclusterTrace>(seed, thread, scale);
}

} // namespace csalt
