/**
 * @file
 * pagerank: streaming edge list plus power-law-popular vertex
 * accesses. The hot vertex mass concentrates on a TLB-reach-sized
 * set of pages — strong reuse when running alone, badly disrupted by
 * a context-switching co-runner (one of the highest Fig. 1 ratios).
 */

#include "workloads/generators.h"

#include <vector>

#include "common/rng.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

class PagerankTrace final : public TraceSource
{
  public:
    PagerankTrace(std::uint64_t seed, unsigned thread, double scale)
        : TraceSource("pagerank"), rng_(seed * 69069u + thread * 31)
    {
        vertex_pages_ = static_cast<std::uint64_t>(32768 * scale);
        edge_pages_ = static_cast<std::uint64_t>(24576 * scale);
        if (vertex_pages_ < 64)
            vertex_pages_ = 64;
        if (edge_pages_ < 64)
            edge_pages_ = 64;
        edge_addr_ = kEdgeBase;

        // Heap fragmentation: vertex pages scatter over a wide VA
        // span (shared by all threads of the VM), so PTE lines are
        // not artificially dense the way a contiguous array's are.
        Rng map_rng(seed * 0x2545f491u);
        vertex_map_.reserve(vertex_pages_);
        for (std::uint64_t i = 0; i < vertex_pages_; ++i)
            vertex_map_.push_back(map_rng.below(kVaSpanPages));
        hot_zipf_ = ZipfDist(kHotPages, 0.4);
        tail_zipf_ = ZipfDist(vertex_pages_, 0.6);
    }

    TraceRecord
    next() override
    {
        if (vertex_left_ > 0) {
            // Second field of the vertex record (same line).
            --vertex_left_;
            const bool write = rng_.chance(0.25); // rank update
            return {vertex_addr_ + 8 + rng_.below(48) / 8 * 8,
                    write ? AccessType::write : AccessType::read, 3,
                    kPcRank};
        }
        if (rng_.chance(0.55)) {
            // Stream the edge list.
            edge_addr_ += 8;
            if (edge_addr_ >= kEdgeBase + edge_pages_ * kPageSize)
                edge_addr_ = kEdgeBase;
            return {edge_addr_, AccessType::read, 3, kPcEdges};
        }
        // Vertex accesses: iterations process a drifting active set
        // near the L2 TLB's reach (low MPKI standalone, heavy refill
        // cost when a co-runner evicts it — paper Fig. 1), plus a
        // heavy tail over the whole fragmented array.
        ++vrefs_;
        if (vrefs_ % kDriftPeriod == 0)
            hot_base_ = (hot_base_ + kHotPages / 8) % vertex_pages_;
        std::uint64_t rank;
        if (rng_.chance(0.93)) {
            rank = (hot_base_ + hot_zipf_(rng_)) % vertex_pages_;
        } else {
            rank = tail_zipf_(rng_);
        }
        const std::uint64_t page = vertex_map_[rank];
        vertex_addr_ = kVertexBase + page * kPageSize +
                       rng_.below(64) * 64;
        vertex_left_ = 1;
        return {vertex_addr_, AccessType::read, 3, kPcVertex};
    }

    std::uint64_t footprintPages() const override
    {
        return vertex_pages_ + edge_pages_;
    }

    void
    saveState(snapshot::StateSerializer &s) const override
    {
        rng_.saveState(s);
        s.putU64(hot_base_);
        s.putU64(vrefs_);
        s.putU64(edge_addr_);
        s.putU64(vertex_addr_);
        s.putU32(vertex_left_);
    }

    void
    loadState(snapshot::StateDeserializer &d) override
    {
        rng_.loadState(d);
        hot_base_ = d.getU64();
        vrefs_ = d.getU64();
        edge_addr_ = d.getU64();
        vertex_addr_ = d.getU64();
        vertex_left_ = d.getU32();
    }

  private:
    static constexpr Addr kVertexBase = Addr{1} << 40;
    static constexpr Addr kEdgeBase = Addr{1} << 43;
    static constexpr std::uint64_t kVaSpanPages = 1ull << 23;
    static constexpr std::uint64_t kHotPages = 1280;
    static constexpr std::uint64_t kDriftPeriod = 300000;
    // Pseudo-PCs, one per emission site (PCAX predictor input).
    static constexpr Addr kPcRank = 0x402000;
    static constexpr Addr kPcEdges = 0x402010;
    static constexpr Addr kPcVertex = 0x402020;

    Rng rng_;
    std::uint64_t vertex_pages_;
    std::uint64_t edge_pages_;
    std::vector<std::uint64_t> vertex_map_; //!< rank page -> VA page
    ZipfDist hot_zipf_;
    ZipfDist tail_zipf_;
    std::uint64_t hot_base_ = 0;
    std::uint64_t vrefs_ = 0;
    Addr edge_addr_;
    Addr vertex_addr_ = 0;
    unsigned vertex_left_ = 0;
};

} // namespace

std::unique_ptr<TraceSource>
makePagerank(std::uint64_t seed, unsigned thread, unsigned /*nthreads*/,
             double scale)
{
    return std::make_unique<PagerankTrace>(seed, thread, scale);
}

} // namespace csalt
