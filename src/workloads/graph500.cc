/**
 * @file
 * graph500 BFS: alternating sequential frontier scans and random
 * neighbour probes over a large vertex array. The frontier region
 * rotates level by level; neighbour probes dominate TLB pressure.
 */

#include "workloads/generators.h"

#include <vector>

#include "common/rng.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

class Graph500Trace final : public TraceSource
{
  public:
    Graph500Trace(std::uint64_t seed, unsigned thread, double scale)
        : TraceSource("graph500"), rng_(seed * 40503u + thread * 131)
    {
        vertex_pages_ = static_cast<std::uint64_t>(32768 * scale);
        frontier_pages_ = static_cast<std::uint64_t>(1024 * scale);
        if (vertex_pages_ < 64)
            vertex_pages_ = 64;
        if (frontier_pages_ < 8)
            frontier_pages_ = 8;
        scan_addr_ = frontierBase();

        // Fragmented allocation of the vertex pool (see pagerank).
        Rng map_rng(seed * 0x9e3779b9u);
        vertex_map_.reserve(vertex_pages_);
        for (std::uint64_t i = 0; i < vertex_pages_; ++i)
            vertex_map_.push_back(map_rng.below(kVaSpanPages));
    }

    TraceRecord
    next() override
    {
        ++refs_;
        // A new BFS level rotates the frontier window.
        if (refs_ % kLevelPeriod == 0) {
            frontier_idx_ =
                (frontier_idx_ + frontier_pages_) % vertex_pages_;
            scan_addr_ = frontierBase();
        }

        if (probe_left_ > 0 || rng_.chance(0.25)) {
            // Random neighbour probe: read a vertex record (3 fields
            // on one line) anywhere in the vertex array.
            if (probe_left_ == 0) {
                // Degree-skewed target popularity: hubs live on a
                // TLB-capturable set of pages when running alone.
                // Most targets are in the current BFS level's
                // neighbourhood (TLB-reach-sized, rotating with the
                // frontier); the rest spray across the graph.
                std::uint64_t rank;
                if (rng_.chance(0.92)) {
                    rank = (frontier_idx_ +
                            rng_.below(kNeighborhoodPages)) %
                           vertex_pages_;
                } else {
                    rank = rng_.below(vertex_pages_);
                }
                const std::uint64_t page = vertex_map_[rank];
                probe_addr_ = kVertexBase + page * kPageSize +
                              rng_.below(64) * 64;
                probe_left_ = 3;
            }
            --probe_left_;
            const bool write =
                probe_left_ == 0 && rng_.chance(0.5); // visited mark
            return {probe_addr_ + rng_.below(64) / 8 * 8,
                    write ? AccessType::write : AccessType::read, 3,
                    kPcProbe};
        }

        // Sequential frontier scan.
        scan_addr_ += 8;
        if (scan_addr_ >=
            frontierBase() + frontier_pages_ * kPageSize) {
            scan_addr_ = frontierBase();
        }
        return {scan_addr_, AccessType::read, 3, kPcScan};
    }

    std::uint64_t footprintPages() const override
    {
        // Frontier arrays are a separate allocation from the
        // (scattered) vertex pool.
        return vertex_pages_ + frontier_pages_;
    }

    void
    saveState(snapshot::StateSerializer &s) const override
    {
        rng_.saveState(s);
        s.putU64(frontier_idx_);
        s.putU64(refs_);
        s.putU32(probe_left_);
        s.putU64(probe_addr_);
        s.putU64(scan_addr_);
    }

    void
    loadState(snapshot::StateDeserializer &d) override
    {
        rng_.loadState(d);
        frontier_idx_ = d.getU64();
        refs_ = d.getU64();
        probe_left_ = d.getU32();
        probe_addr_ = d.getU64();
        scan_addr_ = d.getU64();
    }

  private:
    static constexpr Addr kVertexBase = Addr{1} << 40;
    static constexpr Addr kFrontierBase = Addr{1} << 43;
    static constexpr std::uint64_t kVaSpanPages = 1ull << 23;
    static constexpr std::uint64_t kNeighborhoodPages = 1408;
    static constexpr std::uint64_t kLevelPeriod = 250000;
    // Pseudo-PCs, one per emission site (PCAX predictor input).
    static constexpr Addr kPcProbe = 0x404000;
    static constexpr Addr kPcScan = 0x404010;

    Addr
    frontierBase() const
    {
        // The frontier arrays are separate dense allocations.
        return kFrontierBase + frontier_idx_ * kPageSize;
    }

    Rng rng_;
    std::uint64_t vertex_pages_;
    std::uint64_t frontier_pages_;
    std::vector<std::uint64_t> vertex_map_; //!< idx -> VA page
    std::uint64_t frontier_idx_ = 0;
    std::uint64_t refs_ = 0;
    unsigned probe_left_ = 0;
    Addr probe_addr_ = 0;
    Addr scan_addr_;
};

} // namespace

std::unique_ptr<TraceSource>
makeGraph500(std::uint64_t seed, unsigned thread, unsigned /*nthreads*/,
             double scale)
{
    return std::make_unique<Graph500Trace>(seed, thread, scale);
}

} // namespace csalt
