/**
 * @file
 * Workload registry: name -> generator factory + per-VM attributes,
 * plus the paper's Table 3 / figure pairings of two VMs.
 */

#ifndef CSALT_WORKLOADS_REGISTRY_H
#define CSALT_WORKLOADS_REGISTRY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/trace_source.h"

namespace csalt
{

/** Everything the system builder needs to instantiate one VM. */
struct WorkloadDesc
{
    std::string name;
    /** Fraction of this VM's pages backed by 2MB pages (THP). */
    double huge_fraction = 0.1;
    /** Factory: (seed, thread, nthreads, scale) -> trace. */
    std::function<std::unique_ptr<TraceSource>(
        std::uint64_t, unsigned, unsigned, double)>
        make;
};

/** Descriptor for @p name; fatal() on unknown names. */
const WorkloadDesc &workloadDesc(const std::string &name);

/** All single-benchmark names. */
std::vector<std::string> workloadNames();

/** A two-VM pairing (paper Table 3). */
struct PairSpec
{
    std::string label;
    std::string vm1;
    std::string vm2;
};

/**
 * Resolve a figure label ("can_ccomp", "gups", ...) into its VM pair;
 * single-benchmark labels mean two instances of that benchmark
 * (paper footnote 7).
 */
PairSpec resolvePair(const std::string &label);

/** The ten workload labels of Figs. 1/7/8/10-16, in paper order. */
std::vector<std::string> paperPairLabels();

} // namespace csalt

#endif // CSALT_WORKLOADS_REGISTRY_H
