#include "workloads/registry.h"

#include <array>
#include <map>
#include <mutex>

#include "common/error.h"
#include "common/log.h"
#include "workloads/generators.h"
#include "workloads/trace_file.h"

namespace csalt
{

namespace
{

const std::array<WorkloadDesc, 6> &
allWorkloads()
{
    static const std::array<WorkloadDesc, 6> table = {{
        {"canneal", 0.02, makeCanneal},
        {"ccomp", 0.0, makeCcomp},
        {"graph500", 0.02, makeGraph500},
        {"gups", 0.05, makeGups},
        {"pagerank", 0.02, makePagerank},
        {"streamcluster", 0.55, makeStreamcluster},
    }};
    return table;
}

} // namespace

const WorkloadDesc &
workloadDesc(const std::string &name)
{
    for (const auto &desc : allWorkloads())
        if (desc.name == name)
            return desc;

    // "file:<path>": replay a recorded trace. The parsed file is
    // cached so the per-thread sources share one copy. Guarded:
    // parallel runner jobs resolve workloads concurrently, and node
    // references into the map stay valid across later insertions.
    if (name.rfind("file:", 0) == 0) {
        static std::mutex file_mutex;
        static std::map<std::string, WorkloadDesc> file_descs;
        std::lock_guard<std::mutex> lock(file_mutex);
        auto it = file_descs.find(name);
        if (it == file_descs.end()) {
            auto file = TraceFile::load(name.substr(5));
            WorkloadDesc desc;
            desc.name = name;
            desc.huge_fraction = 0.1;
            desc.make = [file](std::uint64_t /*seed*/, unsigned thread,
                               unsigned /*nthreads*/,
                               double /*scale*/) {
                return std::make_unique<TraceFileSource>(file, thread);
            };
            it = file_descs.emplace(name, std::move(desc)).first;
        }
        return it->second;
    }

    std::string names;
    for (const auto &desc : allWorkloads()) {
        if (!names.empty())
            names += ", ";
        names += desc.name;
    }
    raise(makeError(ErrorKind::config,
                    msgOf("unknown workload '", name, "'"), "workload",
                    "valid: " + names + ", or file:<path>"));
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &desc : allWorkloads())
        names.push_back(desc.name);
    return names;
}

PairSpec
resolvePair(const std::string &label)
{
    // Heterogeneous pairs (paper Table 3 + figure x-axes).
    if (label == "can_ccomp")
        return {label, "canneal", "ccomp"};
    if (label == "can_stream" || label == "can_strcls")
        return {label, "canneal", "streamcluster"};
    if (label == "graph500_gups")
        return {label, "graph500", "gups"};
    if (label == "page_stream" || label == "pagerank_strcls")
        return {label, "pagerank", "streamcluster"};

    // Homogeneous: two instances of the benchmark (footnote 7).
    const auto &desc = workloadDesc(label);
    return {label, desc.name, desc.name};
}

std::vector<std::string>
paperPairLabels()
{
    return {"canneal",  "can_ccomp", "can_stream",    "ccomp",
            "graph500", "graph500_gups", "gups",      "pagerank",
            "page_stream", "streamcluster"};
}

} // namespace csalt
