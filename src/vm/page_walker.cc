#include "vm/page_walker.h"

#include "common/log.h"

namespace csalt
{

PageWalker::PageWalker(unsigned core_id, MmuCaches &mmu,
                       TranslationMemIf &mem)
    : core_id_(core_id), mmu_(mmu), mem_(mem)
{
}

PageWalker::Outcome
PageWalker::walk(VmContext &ctx, Addr gva, Cycles now)
{
    Outcome out = ctx.virtualized() ? nestedWalk(ctx, gva, now)
                                    : nativeWalk(ctx, gva, now);
    ++stats_.walks;
    stats_.refs += out.refs;
    stats_.cycles += out.latency;
    return out;
}

PageWalker::Outcome
PageWalker::nativeWalk(VmContext &ctx, Addr gva, Cycles now)
{
    Outcome out;
    ctx.guestPt().walkPath(gva, path_);

    // Consult the paging-structure caches once per walk.
    out.latency += mmu_.latency();
    const auto skip = mmu_.skipFor(ctx.asid(), gva, /*host=*/false);
    const int start_level =
        skip ? skip->next_level : ctx.guestPt().topLevel();

    for (const PteRef &ref : path_) {
        if (ref.level > start_level)
            continue; // shortcut provided by the PSC
        out.latency +=
            mem_.translationAccess(core_id_, ref.pte_addr,
                                   now + out.latency);
        ++out.refs;
        if (!ref.leaf)
            mmu_.fill(ctx.asid(), gva, ref.level, /*host=*/false,
                      ref.next);
    }

    out.mapping = ctx.mappingOf(gva);
    return out;
}

Addr
PageWalker::nestedTranslate(VmContext &ctx, Addr gpa, Cycles now,
                            Cycles &lat, unsigned &refs)
{
    lat += mmu_.latency();
    if (auto hpa_page = mmu_.nestedLookup(ctx.asid(), gpa)) {
        ++stats_.nested_hits;
        return *hpa_page + (gpa & (kPageSize - 1));
    }

    ++stats_.nested_walks;
    ctx.hostPt().walkPath(gpa, host_path_);
    const auto skip = mmu_.skipFor(ctx.asid(), gpa, /*host=*/true);
    const int start_level =
        skip ? skip->next_level : ctx.hostPt().topLevel();

    Addr hpa_byte = kInvalidAddr;
    for (const PteRef &ref : host_path_) {
        if (ref.level > start_level)
            continue;
        lat += mem_.translationAccess(core_id_, ref.pte_addr, now + lat);
        ++refs;
        if (!ref.leaf) {
            mmu_.fill(ctx.asid(), gpa, ref.level, /*host=*/true,
                      ref.next);
        } else {
            hpa_byte = ref.next + (gpa & (pageBytes(ref.ps) - 1));
        }
    }
    if (hpa_byte == kInvalidAddr) {
        // The leaf was above the PSC shortcut level; resolve it
        // functionally (the shortcut already priced the skipped refs).
        hpa_byte = ctx.hostTranslate(gpa);
    }

    mmu_.nestedFill(ctx.asid(), gpa, hpa_byte & ~(kPageSize - 1));
    return hpa_byte;
}

PageWalker::Outcome
PageWalker::nestedWalk(VmContext &ctx, Addr gva, Cycles now)
{
    Outcome out;
    ctx.guestPt().walkPath(gva, path_);

    out.latency += mmu_.latency();
    const auto skip = mmu_.skipFor(ctx.asid(), gva, /*host=*/false);
    const int start_level =
        skip ? skip->next_level : ctx.guestPt().topLevel();

    Addr leaf_gpa = kInvalidAddr;
    PageSize leaf_ps = PageSize::size4K;
    for (const PteRef &ref : path_) {
        if (ref.leaf) {
            leaf_gpa = ref.next;
            leaf_ps = ref.ps;
        }
        if (ref.level > start_level)
            continue;

        // The guest PTE lives in guest-physical memory: translate its
        // address through the host dimension, then read it.
        const Addr hpa_pte = nestedTranslate(ctx, ref.pte_addr, now,
                                             out.latency, out.refs);
        out.latency +=
            mem_.translationAccess(core_id_, hpa_pte, now + out.latency);
        ++out.refs;

        if (!ref.leaf)
            mmu_.fill(ctx.asid(), gva, ref.level, /*host=*/false,
                      ref.next);
    }

    if (leaf_gpa == kInvalidAddr)
        panic("nestedWalk: guest walk produced no leaf");

    // Final host walk: translate the data page's guest-physical
    // address (paper Fig. 2b, the bottom-row walk).
    const Addr page_gpa = leaf_gpa + (gva & (pageBytes(leaf_ps) - 1));
    nestedTranslate(ctx, page_gpa, now, out.latency, out.refs);

    out.mapping = ctx.mappingOf(gva);
    return out;
}

} // namespace csalt
