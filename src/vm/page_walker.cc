#include "vm/page_walker.h"

#include "snapshot/state_io.h"

#include "common/log.h"
#include "obs/phase_profiler.h"
#include "obs/span_trace.h"
#include "obs/stat_registry.h"
#include "obs/trace_event.h"

namespace csalt
{

namespace
{

/** Stamp @p cycles onto @p comp when a breakdown is attached. */
inline void
stamp(obs::LatencyBreakdown *bd, obs::CpiComponent comp, Cycles cycles)
{
    if (bd)
        bd->add(comp, static_cast<double>(cycles));
}

} // namespace

PageWalker::PageWalker(unsigned core_id, MmuCaches &mmu,
                       TranslationMemIf &mem)
    : core_id_(core_id), mmu_(mmu), mem_(mem)
{
}

PageWalker::Outcome
PageWalker::walk(VmContext &ctx, Addr gva, Cycles now,
                 obs::LatencyBreakdown *bd)
{
    CSALT_PROFILE_SCOPE(page_walk);
    tracing_refs_ = CSALT_TRACE_ACTIVE(obs::kCatWalk);
    if (tracing_refs_)
        ref_cycles_.clear();

    obs::SpanBuilder *sb = obs::spanBuilder();
    const int sw = sb ? sb->open(obs::SpanKind::walk, now) : -1;
    Outcome out = ctx.virtualized() ? nestedWalk(ctx, gva, now, bd)
                                    : nativeWalk(ctx, gva, now, bd);
    if (sb) {
        sb->close(sw, now + out.latency,
                  ctx.virtualized() ? obs::kSpanFlagVirtualized : 0);
    }
    ++stats_.walks;
    stats_.refs += out.refs;
    stats_.cycles += out.latency;
    walk_hist_.record(out.latency);

    if (tracing_refs_) {
        CSALT_TRACE_COMPLETE(
            obs::kCatWalk,
            ctx.virtualized() ? "walk_2d" : "walk_1d", core_id_,
            static_cast<double>(now),
            static_cast<double>(out.latency),
            obs::EventArgs()
                .add("asid", static_cast<unsigned>(ctx.asid()))
                .add("refs", out.refs)
                .addSeries("ref_cycles", ref_cycles_));
        tracing_refs_ = false;
    }
    return out;
}

PageWalker::Outcome
PageWalker::nativeWalk(VmContext &ctx, Addr gva, Cycles now,
                       obs::LatencyBreakdown *bd)
{
    Outcome out;
    ctx.guestPt().walkPath(gva, path_);
    obs::SpanBuilder *sb = obs::spanBuilder();

    // Consult the paging-structure caches once per walk.
    out.latency += mmu_.latency();
    stamp(bd, obs::CpiComponent::walkMmu, mmu_.latency());
    const auto skip = mmu_.skipFor(ctx.asid(), gva, /*host=*/false);
    const int start_level =
        skip ? skip->next_level : ctx.guestPt().topLevel();
    if (sb) {
        const int sm = sb->open(obs::SpanKind::mmu_cache, now);
        sb->close(sm, now + mmu_.latency(),
                  skip ? obs::kSpanFlagHit : 0);
    }

    for (const PteRef &ref : path_) {
        if (ref.level > start_level)
            continue; // shortcut provided by the PSC
        const Cycles t_ref = now + out.latency;
        const int sr =
            sb ? sb->open(obs::SpanKind::walk_guest_ref, t_ref,
                          static_cast<std::uint8_t>(ref.level))
               : -1;
        const Cycles ref_lat = mem_.translationAccess(
            core_id_, ref.pte_addr, now + out.latency);
        out.latency += ref_lat;
        if (sb)
            sb->close(sr, t_ref + ref_lat);
        stamp(bd, obs::walkComponent(/*host=*/false, ref.level),
              ref_lat);
        noteRef(ref_lat);
        ++out.refs;
        if (!ref.leaf)
            mmu_.fill(ctx.asid(), gva, ref.level, /*host=*/false,
                      ref.next);
    }

    out.mapping = ctx.mappingOf(gva);
    return out;
}

Addr
PageWalker::nestedTranslate(VmContext &ctx, Addr gpa, Cycles now,
                            Cycles &lat, unsigned &refs,
                            obs::LatencyBreakdown *bd)
{
    obs::SpanBuilder *sb = obs::spanBuilder();
    const Cycles t_mmu = now + lat;
    lat += mmu_.latency();
    stamp(bd, obs::CpiComponent::walkMmu, mmu_.latency());
    if (auto hpa_page = mmu_.nestedLookup(ctx.asid(), gpa)) {
        ++stats_.nested_hits;
        if (sb) {
            const int sm = sb->open(obs::SpanKind::mmu_cache, t_mmu);
            sb->close(sm, t_mmu + mmu_.latency(), obs::kSpanFlagHit);
        }
        return *hpa_page + (gpa & (kPageSize - 1));
    }

    ++stats_.nested_walks;
    ctx.hostPt().walkPath(gpa, host_path_);
    const auto skip = mmu_.skipFor(ctx.asid(), gpa, /*host=*/true);
    const int start_level =
        skip ? skip->next_level : ctx.hostPt().topLevel();
    if (sb) {
        const int sm = sb->open(obs::SpanKind::mmu_cache, t_mmu);
        sb->close(sm, t_mmu + mmu_.latency(),
                  skip ? obs::kSpanFlagHit : 0);
    }

    Addr hpa_byte = kInvalidAddr;
    for (const PteRef &ref : host_path_) {
        if (ref.level > start_level)
            continue;
        const Cycles t_ref = now + lat;
        const int sr =
            sb ? sb->open(obs::SpanKind::walk_host_ref, t_ref,
                          static_cast<std::uint8_t>(ref.level))
               : -1;
        const Cycles ref_lat =
            mem_.translationAccess(core_id_, ref.pte_addr, now + lat);
        lat += ref_lat;
        if (sb)
            sb->close(sr, t_ref + ref_lat);
        stamp(bd, obs::walkComponent(/*host=*/true, ref.level),
              ref_lat);
        noteRef(ref_lat);
        ++refs;
        if (!ref.leaf) {
            mmu_.fill(ctx.asid(), gpa, ref.level, /*host=*/true,
                      ref.next);
        } else {
            hpa_byte = ref.next + (gpa & (pageBytes(ref.ps) - 1));
        }
    }
    if (hpa_byte == kInvalidAddr) {
        // The leaf was above the PSC shortcut level; resolve it
        // functionally (the shortcut already priced the skipped refs).
        hpa_byte = ctx.hostTranslate(gpa);
    }

    mmu_.nestedFill(ctx.asid(), gpa, hpa_byte & ~(kPageSize - 1));
    return hpa_byte;
}

void
PageWalker::registerStats(obs::StatRegistry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(prefix + ".walk.walks", &stats_.walks);
    reg.addCounter(prefix + ".walk.refs", &stats_.refs);
    reg.addCounter(prefix + ".walk.cycles", &stats_.cycles);
    reg.addCounter(prefix + ".walk.nested_hits", &stats_.nested_hits);
    reg.addCounter(prefix + ".walk.nested_walks",
                   &stats_.nested_walks);
    reg.addHistogram(prefix + ".walk.lat", &walk_hist_);
    reg.addHistogram(prefix + ".walk.ref_lat", &ref_hist_);
}

PageWalker::Outcome
PageWalker::nestedWalk(VmContext &ctx, Addr gva, Cycles now,
                       obs::LatencyBreakdown *bd)
{
    Outcome out;
    ctx.guestPt().walkPath(gva, path_);
    obs::SpanBuilder *sb = obs::spanBuilder();

    out.latency += mmu_.latency();
    stamp(bd, obs::CpiComponent::walkMmu, mmu_.latency());
    const auto skip = mmu_.skipFor(ctx.asid(), gva, /*host=*/false);
    const int start_level =
        skip ? skip->next_level : ctx.guestPt().topLevel();
    if (sb) {
        const int sm = sb->open(obs::SpanKind::mmu_cache, now);
        sb->close(sm, now + mmu_.latency(),
                  skip ? obs::kSpanFlagHit : 0);
    }

    Addr leaf_gpa = kInvalidAddr;
    PageSize leaf_ps = PageSize::size4K;
    for (const PteRef &ref : path_) {
        if (ref.leaf) {
            leaf_gpa = ref.next;
            leaf_ps = ref.ps;
        }
        if (ref.level > start_level)
            continue;

        // The guest PTE lives in guest-physical memory: translate its
        // address through the host dimension, then read it. The span
        // covers both, so the host-dimension refs nest under the
        // guest level that caused them (paper Fig. 2b rows).
        const Cycles t_ref = now + out.latency;
        const int sr =
            sb ? sb->open(obs::SpanKind::walk_guest_ref, t_ref,
                          static_cast<std::uint8_t>(ref.level))
               : -1;
        const Addr hpa_pte = nestedTranslate(ctx, ref.pte_addr, now,
                                             out.latency, out.refs,
                                             bd);
        const Cycles ref_lat = mem_.translationAccess(
            core_id_, hpa_pte, now + out.latency);
        out.latency += ref_lat;
        if (sb)
            sb->close(sr, now + out.latency);
        stamp(bd, obs::walkComponent(/*host=*/false, ref.level),
              ref_lat);
        noteRef(ref_lat);
        ++out.refs;

        if (!ref.leaf)
            mmu_.fill(ctx.asid(), gva, ref.level, /*host=*/false,
                      ref.next);
    }

    if (leaf_gpa == kInvalidAddr)
        panic("nestedWalk: guest walk produced no leaf");

    // Final host walk: translate the data page's guest-physical
    // address (paper Fig. 2b, the bottom-row walk).
    const Addr page_gpa = leaf_gpa + (gva & (pageBytes(leaf_ps) - 1));
    nestedTranslate(ctx, page_gpa, now, out.latency, out.refs, bd);

    out.mapping = ctx.mappingOf(gva);
    return out;
}


void
PageWalker::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(stats_.walks);
    s.putU64(stats_.refs);
    s.putU64(stats_.cycles);
    s.putU64(stats_.nested_hits);
    s.putU64(stats_.nested_walks);
    walk_hist_.saveState(s);
    ref_hist_.saveState(s);
}

void
PageWalker::loadState(snapshot::StateDeserializer &d)
{
    stats_.walks = d.getU64();
    stats_.refs = d.getU64();
    stats_.cycles = d.getU64();
    stats_.nested_hits = d.getU64();
    stats_.nested_walks = d.getU64();
    walk_hist_.loadState(d);
    ref_hist_.loadState(d);
    // Per-walk scratch never spans a checkpoint boundary.
    path_.clear();
    host_path_.clear();
    ref_cycles_.clear();
    tracing_refs_ = false;
}

} // namespace csalt
