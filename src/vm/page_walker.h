/**
 * @file
 * Hardware page-table walker: 1-D for native mode, 2-D (nested) for
 * virtualized mode (paper Fig. 2).
 *
 * Every PTE read is a real cacheable access issued through a
 * TranslationMemIf (implemented by the memory system), so walk
 * traffic competes with data for L2/L3 capacity — the congestion
 * CSALT's partitioning manages. MMU caches (PSC + nested cache)
 * shorten walks exactly as on real hardware: the worst case is
 * 4 references native and 24 references virtualized.
 */

#ifndef CSALT_VM_PAGE_WALKER_H
#define CSALT_VM_PAGE_WALKER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/cpi_stack.h"
#include "obs/histogram.h"
#include "vm/address_space.h"
#include "vm/mmu_cache.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

/** Memory-system hook for cacheable page-walk references. */
class TranslationMemIf
{
  public:
    virtual ~TranslationMemIf() = default;

    /**
     * Issue one dependent 8-byte PTE read at host-physical @p hpa.
     * @param core issuing core (selects the private L2)
     * @param now issue time
     * @return load-to-use latency in cycles
     */
    virtual Cycles translationAccess(unsigned core, Addr hpa,
                                     Cycles now) = 0;
};

/** Aggregate walker counters. */
struct WalkStats
{
    std::uint64_t walks = 0;
    std::uint64_t refs = 0;         //!< PTE reads issued
    std::uint64_t cycles = 0;       //!< total walk latency
    std::uint64_t nested_hits = 0;  //!< host walks avoided
    std::uint64_t nested_walks = 0; //!< host walks performed

    double
    avgRefs() const
    {
        return walks ? static_cast<double>(refs) / walks : 0.0;
    }
    double
    avgCycles() const
    {
        return walks ? static_cast<double>(cycles) / walks : 0.0;
    }
};

/** Per-core page-table walker. */
class PageWalker
{
  public:
    /**
     * @param core_id issuing core
     * @param mmu this core's MMU caches
     * @param mem cacheable access interface
     */
    PageWalker(unsigned core_id, MmuCaches &mmu, TranslationMemIf &mem);

    /** Result of one complete walk. */
    struct Outcome
    {
        Cycles latency = 0;
        unsigned refs = 0;
        Mapping mapping;
    };

    /**
     * Walk @p gva in @p ctx (1-D or 2-D per ctx.virtualized()).
     * The page must already be demand-mapped.
     * @param bd when non-null, receives the walk's cycle attribution:
     *        walk_mmu for PSC consults, walk_guest_lN / walk_host_lN
     *        per PTE read (level N, guest vs host dimension). The
     *        stamped cycles sum to the returned latency exactly.
     */
    Outcome walk(VmContext &ctx, Addr gva, Cycles now,
                 obs::LatencyBreakdown *bd = nullptr);

    const WalkStats &stats() const { return stats_; }

    void
    clearStats()
    {
        stats_ = WalkStats{};
        walk_hist_.clear();
        ref_hist_.clear();
    }

    /** Distribution of whole-walk latencies (count == stats().walks). */
    const obs::Histogram &walkHist() const { return walk_hist_; }

    /** Distribution of per-PTE-read latencies (count == refs). */
    const obs::Histogram &refHist() const { return ref_hist_; }

    /**
     * Register walker counters under "<prefix>.walk.*" plus the
     * latency histograms "<prefix>.walk.lat" / ".walk.ref_lat".
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint: counters + histograms; scratch is cleared. */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    Outcome nativeWalk(VmContext &ctx, Addr gva, Cycles now,
                       obs::LatencyBreakdown *bd);
    Outcome nestedWalk(VmContext &ctx, Addr gva, Cycles now,
                       obs::LatencyBreakdown *bd);

    /** Record one PTE-read latency (histogram + optional span). */
    void
    noteRef(Cycles latency)
    {
        ref_hist_.record(latency);
        if (tracing_refs_)
            ref_cycles_.push_back(static_cast<double>(latency));
    }

    /**
     * Translate one guest-physical address via the nested cache or a
     * host-dimension walk; accumulates into @p lat and @p refs and
     * stamps host-dimension cycles into @p bd when non-null.
     * @return host-physical byte address of @p gpa
     */
    Addr nestedTranslate(VmContext &ctx, Addr gpa, Cycles now,
                         Cycles &lat, unsigned &refs,
                         obs::LatencyBreakdown *bd);

    unsigned core_id_;
    MmuCaches &mmu_;
    TranslationMemIf &mem_;
    WalkStats stats_;
    obs::Histogram walk_hist_; //!< whole-walk latency distribution
    obs::Histogram ref_hist_;  //!< per-PTE-read latency distribution
    std::vector<PteRef> path_;      //!< scratch, reused across walks
    std::vector<PteRef> host_path_; //!< scratch for the host dimension
    bool tracing_refs_ = false;     //!< current walk feeds a span event
    std::vector<double> ref_cycles_; //!< per-PTE-read latencies (trace)
};

} // namespace csalt

#endif // CSALT_VM_PAGE_WALKER_H
