#include "vm/page_table.h"

#include "common/log.h"

namespace csalt
{

PageTable::PageTable(NodeAlloc alloc, int top_level)
    : alloc_(std::move(alloc)), top_level_(top_level)
{
    if (top_level != kTopLevel && top_level != kTopLevel5)
        panic(msgOf("unsupported paging depth ", top_level));
    root_ = std::make_unique<Node>();
    root_->base = alloc_();
    node_count_ = 1;
}

PageTable::~PageTable() = default;

PageTable::Node *
PageTable::ensureChild(Node *node, unsigned idx)
{
    Slot &slot = node->slots[idx];
    if (slot.is_leaf)
        panic("page table: descending through a leaf PTE");
    if (!slot.child) {
        slot.child = std::make_unique<Node>();
        slot.child->base = alloc_();
        ++node_count_;
        ++node->used;
        ++used_slots_;
    }
    return slot.child.get();
}

void
PageTable::map(Addr va, Addr pa, PageSize ps)
{
    const int leaf_level =
        ps == PageSize::size4K ? kLeafLevel4K : kLeafLevel2M;
    if (va & (pageBytes(ps) - 1))
        panic(msgOf("map: unaligned va ", va));
    if (pa & (pageBytes(ps) - 1))
        panic(msgOf("map: unaligned pa ", pa));

    Node *node = root_.get();
    for (int level = top_level_; level > leaf_level; --level)
        node = ensureChild(node, radixIndex(va, level));

    Slot &slot = node->slots[radixIndex(va, leaf_level)];
    if (!slot.empty())
        panic(msgOf("map: page already mapped, va=", va));
    slot.is_leaf = true;
    slot.leaf_pa = pa;
    slot.ps = ps;
    ++node->used;
    ++used_slots_;
}

void
PageTable::walkPath(Addr va, std::vector<PteRef> &out) const
{
    out.clear();
    const Node *node = root_.get();
    for (int level = top_level_; level >= kLeafLevel4K; --level) {
        const unsigned idx = radixIndex(va, level);
        const Slot &slot = node->slots[idx];
        if (slot.empty())
            panic(msgOf("walkPath: unmapped va ", va));
        PteRef ref;
        ref.level = level;
        ref.pte_addr = node->base + idx * kPteBytes;
        if (slot.is_leaf) {
            ref.leaf = true;
            ref.next = slot.leaf_pa;
            ref.ps = slot.ps;
            out.push_back(ref);
            return;
        }
        if (!slot.child)
            panic(msgOf("walkPath: unmapped va ", va));
        ref.next = slot.child->base;
        out.push_back(ref);
        node = slot.child.get();
    }
    panic("walkPath: descended past leaf level");
}

std::optional<PteRef>
PageTable::leafOf(Addr va) const
{
    const Node *node = root_.get();
    for (int level = top_level_; level >= kLeafLevel4K; --level) {
        const unsigned idx = radixIndex(va, level);
        const Slot &slot = node->slots[idx];
        if (slot.empty())
            return std::nullopt;
        if (slot.is_leaf) {
            PteRef ref;
            ref.level = level;
            ref.pte_addr = node->base + idx * kPteBytes;
            ref.leaf = true;
            ref.next = slot.leaf_pa;
            ref.ps = slot.ps;
            return ref;
        }
        node = slot.child.get();
    }
    return std::nullopt;
}

Addr
PageTable::root() const
{
    return root_->base;
}

} // namespace csalt
