#include "vm/page_table.h"

#include "common/log.h"
#include "snapshot/state_io.h"

namespace csalt
{

PageTable::PageTable(NodeAlloc alloc, int top_level)
    : alloc_(std::move(alloc)), top_level_(top_level)
{
    if (top_level != kTopLevel && top_level != kTopLevel5)
        panic(msgOf("unsupported paging depth ", top_level));
    root_ = std::make_unique<Node>();
    root_->base = alloc_();
    node_count_ = 1;
}

PageTable::~PageTable() = default;

PageTable::Node *
PageTable::ensureChild(Node *node, unsigned idx)
{
    Slot &slot = node->slots[idx];
    if (slot.is_leaf)
        panic("page table: descending through a leaf PTE");
    if (!slot.child) {
        slot.child = std::make_unique<Node>();
        slot.child->base = alloc_();
        ++node_count_;
        ++node->used;
        ++used_slots_;
    }
    return slot.child.get();
}

void
PageTable::map(Addr va, Addr pa, PageSize ps)
{
    const int leaf_level =
        ps == PageSize::size4K ? kLeafLevel4K : kLeafLevel2M;
    if (va & (pageBytes(ps) - 1))
        panic(msgOf("map: unaligned va ", va));
    if (pa & (pageBytes(ps) - 1))
        panic(msgOf("map: unaligned pa ", pa));

    Node *node = root_.get();
    for (int level = top_level_; level > leaf_level; --level)
        node = ensureChild(node, radixIndex(va, level));

    Slot &slot = node->slots[radixIndex(va, leaf_level)];
    if (!slot.empty())
        panic(msgOf("map: page already mapped, va=", va));
    slot.is_leaf = true;
    slot.leaf_pa = pa;
    slot.ps = ps;
    ++node->used;
    ++used_slots_;
}

void
PageTable::walkPath(Addr va, std::vector<PteRef> &out) const
{
    out.clear();
    const Node *node = root_.get();
    for (int level = top_level_; level >= kLeafLevel4K; --level) {
        const unsigned idx = radixIndex(va, level);
        const Slot &slot = node->slots[idx];
        if (slot.empty())
            panic(msgOf("walkPath: unmapped va ", va));
        PteRef ref;
        ref.level = level;
        ref.pte_addr = node->base + idx * kPteBytes;
        if (slot.is_leaf) {
            ref.leaf = true;
            ref.next = slot.leaf_pa;
            ref.ps = slot.ps;
            out.push_back(ref);
            return;
        }
        if (!slot.child)
            panic(msgOf("walkPath: unmapped va ", va));
        ref.next = slot.child->base;
        out.push_back(ref);
        node = slot.child.get();
    }
    panic("walkPath: descended past leaf level");
}

std::optional<PteRef>
PageTable::leafOf(Addr va) const
{
    const Node *node = root_.get();
    for (int level = top_level_; level >= kLeafLevel4K; --level) {
        const unsigned idx = radixIndex(va, level);
        const Slot &slot = node->slots[idx];
        if (slot.empty())
            return std::nullopt;
        if (slot.is_leaf) {
            PteRef ref;
            ref.level = level;
            ref.pte_addr = node->base + idx * kPteBytes;
            ref.leaf = true;
            ref.next = slot.leaf_pa;
            ref.ps = slot.ps;
            return ref;
        }
        node = slot.child.get();
    }
    return std::nullopt;
}

Addr
PageTable::root() const
{
    return root_->base;
}


void
PageTable::saveNode(const Node &node,
                    snapshot::StateSerializer &s) const
{
    s.putU64(node.base);
    for (const Slot &slot : node.slots) {
        if (slot.empty()) {
            s.putU8(0);
        } else if (slot.is_leaf) {
            s.putU8(1);
            s.putU64(slot.leaf_pa);
            s.putU8(static_cast<std::uint8_t>(slot.ps));
        } else {
            s.putU8(2);
            saveNode(*slot.child, s);
        }
    }
}

void
PageTable::loadNode(Node &node, snapshot::StateDeserializer &d,
                    int level)
{
    node.base = d.getU64();
    ++node_count_;
    for (Slot &slot : node.slots) {
        const std::uint8_t tag = d.getU8();
        if (tag == 0)
            continue;
        ++node.used;
        ++used_slots_;
        if (tag == 1) {
            slot.leaf_pa = d.getU64();
            const std::uint8_t ps = d.getU8();
            if (ps > 1)
                d.fail("page-table leaf has invalid page-size code");
            slot.is_leaf = true;
            slot.ps = static_cast<PageSize>(ps);
            if (level > kLeafLevel2M)
                d.fail("page-table leaf PTE above the 2MB level");
            if (level == kLeafLevel2M &&
                slot.ps != PageSize::size2M)
                d.fail("page-table 4K leaf at the 2MB level");
        } else if (tag == 2) {
            if (level <= kLeafLevel4K)
                d.fail("page-table interior node below the leaf level");
            slot.child = std::make_unique<Node>();
            loadNode(*slot.child, d, level - 1);
        } else {
            d.fail("page-table slot has invalid tag byte");
        }
    }
}

void
PageTable::saveState(snapshot::StateSerializer &s) const
{
    s.putU8(static_cast<std::uint8_t>(top_level_));
    s.putU64(node_count_);
    s.putU64(used_slots_);
    saveNode(*root_, s);
}

void
PageTable::loadState(snapshot::StateDeserializer &d)
{
    if (d.getU8() != top_level_)
        d.fail("page-table paging-depth mismatch");
    const std::uint64_t want_nodes = d.getU64();
    const std::uint64_t want_used = d.getU64();
    root_ = std::make_unique<Node>();
    node_count_ = 0;
    used_slots_ = 0;
    loadNode(*root_, d, top_level_);
    if (node_count_ != want_nodes)
        d.fail("page-table node count mismatch after rebuild");
    if (used_slots_ != want_used)
        d.fail("page-table used-slot count mismatch after rebuild");
}

} // namespace csalt
