#include "vm/mmu_cache.h"

#include <algorithm>

#include "common/log.h"
#include "vm/page_table.h"

namespace csalt
{

SmallLruCache::SmallLruCache(unsigned capacity) : capacity_(capacity)
{
    entries_.reserve(capacity);
}

std::optional<std::uint64_t>
SmallLruCache::lookup(std::uint64_t key)
{
    for (std::size_t i = entries_.size(); i-- > 0;) {
        if (entries_[i].key == key) {
            const Entry hit = entries_[i];
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            entries_.push_back(hit);
            ++hits_;
            return hit.value;
        }
    }
    ++misses_;
    return std::nullopt;
}

void
SmallLruCache::insert(std::uint64_t key, std::uint64_t value)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].key == key) {
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    if (entries_.size() >= capacity_)
        entries_.erase(entries_.begin()); // LRU is at the front
    entries_.push_back({key, value});
}

void
SmallLruCache::clear()
{
    entries_.clear();
}

MmuCaches::MmuCaches(const MmuCacheParams &params)
    : pml4e_(params.pml4e_entries), pdpe_(params.pdpe_entries),
      pde_(params.pde_entries), nested_(params.nested_entries),
      latency_(params.latency)
{
}

std::uint64_t
MmuCaches::pscKey(Asid asid, Addr va, int level, bool host)
{
    const unsigned shift = kPageShift + kIndexBits * (level - 1);
    const std::uint64_t prefix = va >> shift;
    return (prefix << 18) | (std::uint64_t{asid} << 2) |
           (host ? 2u : 0u) | static_cast<unsigned>(level & 1);
}

std::uint64_t
MmuCaches::nestedKey(Asid asid, Addr gpa)
{
    return ((gpa >> kPageShift) << 16) | asid;
}

std::optional<MmuCaches::Skip>
MmuCaches::skipFor(Asid asid, Addr va, bool host)
{
    if (auto v = pde_.lookup(pscKey(asid, va, 2, host)))
        return Skip{1, *v};
    if (auto v = pdpe_.lookup(pscKey(asid, va, 3, host)))
        return Skip{2, *v};
    if (auto v = pml4e_.lookup(pscKey(asid, va, 4, host)))
        return Skip{3, *v};
    return std::nullopt;
}

void
MmuCaches::fill(Asid asid, Addr va, int level, bool host,
                std::uint64_t node_addr)
{
    switch (level) {
      case 5:
        // No PML5E cache on current hardware (LA57 walks always read
        // the root level); drop the fill.
        break;
      case 4:
        pml4e_.insert(pscKey(asid, va, 4, host), node_addr);
        break;
      case 3:
        pdpe_.insert(pscKey(asid, va, 3, host), node_addr);
        break;
      case 2:
        pde_.insert(pscKey(asid, va, 2, host), node_addr);
        break;
      default:
        panic(msgOf("MmuCaches::fill: bad level ", level));
    }
}

std::optional<Addr>
MmuCaches::nestedLookup(Asid asid, Addr gpa)
{
    if (auto v = nested_.lookup(nestedKey(asid, gpa)))
        return *v;
    return std::nullopt;
}

void
MmuCaches::nestedFill(Asid asid, Addr gpa, Addr hpa_page)
{
    nested_.insert(nestedKey(asid, gpa), hpa_page);
}

} // namespace csalt
