/**
 * @file
 * MMU paging-structure caches (Intel PSC / AMD PWC analogues) plus
 * the nested-translation cache used during 2-D walks.
 *
 * Each core owns one MmuCaches instance. The PML4E/PDPE/PDE caches
 * let the walker skip upper levels of a walk; the nested cache maps
 * recently translated guest-physical pages straight to host-physical,
 * collapsing an entire 4-step host walk into a hit. Entries are
 * ASID-tagged so VM context switches do not flush them.
 */

#ifndef CSALT_VM_MMU_CACHE_H
#define CSALT_VM_MMU_CACHE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace csalt
{

/** Tiny fully-associative LRU key/value cache. */
class SmallLruCache
{
  public:
    explicit SmallLruCache(unsigned capacity);

    /** Look up @p key; promotes to MRU on hit. */
    std::optional<std::uint64_t> lookup(std::uint64_t key);

    /** Insert or update @p key (promoted to MRU; LRU evicted). */
    void insert(std::uint64_t key, std::uint64_t value);

    void clear();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    unsigned capacity() const { return capacity_; }
    unsigned size() const
    {
        return static_cast<unsigned>(entries_.size());
    }

  private:
    struct Entry
    {
        std::uint64_t key;
        std::uint64_t value;
    };

    unsigned capacity_;
    /** MRU at the back; linear scan is fine at these sizes (<=64). */
    std::vector<Entry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** The per-core set of walker-assist caches. */
class MmuCaches
{
  public:
    explicit MmuCaches(const MmuCacheParams &params);

    /**
     * Tag for a paging-structure entry: ASID + VA prefix down to
     * @p level's region, with @p host distinguishing the host
     * dimension of a nested walk from the guest dimension.
     */
    static std::uint64_t pscKey(Asid asid, Addr va, int level, bool host);

    /** Tag for a nested (gPA page -> hPA page) entry. */
    static std::uint64_t nestedKey(Asid asid, Addr gpa);

    /**
     * Deepest level whose node address is cached for @p va.
     *
     * Checks PDE (skip to level 1), then PDPE (level 2), then PML4E
     * (level 3). @return the level of the *next node to read* and its
     * address, or nullopt when the walk must start at the root.
     */
    struct Skip
    {
        int next_level;         //!< level of the first PTE to read
        std::uint64_t node_addr; //!< base of the node holding it
    };
    std::optional<Skip> skipFor(Asid asid, Addr va, bool host);

    /** Record the node discovered at @p level for @p va. */
    void fill(Asid asid, Addr va, int level, bool host,
              std::uint64_t node_addr);

    /** Nested cache: gPA page -> hPA page base (page size 4K). */
    std::optional<Addr> nestedLookup(Asid asid, Addr gpa);
    void nestedFill(Asid asid, Addr gpa, Addr hpa_page);

    Cycles latency() const { return latency_; }

    SmallLruCache &pml4e() { return pml4e_; }
    SmallLruCache &pdpe() { return pdpe_; }
    SmallLruCache &pde() { return pde_; }
    SmallLruCache &nested() { return nested_; }

  private:
    SmallLruCache pml4e_;
    SmallLruCache pdpe_;
    SmallLruCache pde_;
    SmallLruCache nested_;
    Cycles latency_;
};

} // namespace csalt

#endif // CSALT_VM_MMU_CACHE_H
