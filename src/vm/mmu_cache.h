/**
 * @file
 * MMU paging-structure caches (Intel PSC / AMD PWC analogues) plus
 * the nested-translation cache used during 2-D walks.
 *
 * Each core owns one MmuCaches instance. The PML4E/PDPE/PDE caches
 * let the walker skip upper levels of a walk; the nested cache maps
 * recently translated guest-physical pages straight to host-physical,
 * collapsing an entire 4-step host walk into a hit. Entries are
 * ASID-tagged so VM context switches do not flush them.
 */

#ifndef CSALT_VM_MMU_CACHE_H
#define CSALT_VM_MMU_CACHE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace csalt
{

/** Tiny fully-associative LRU key/value cache. */
class SmallLruCache
{
  public:
    explicit SmallLruCache(unsigned capacity);

    /** Look up @p key; promotes to MRU on hit. */
    std::optional<std::uint64_t> lookup(std::uint64_t key);

    /** Insert or update @p key (promoted to MRU; LRU evicted). */
    void insert(std::uint64_t key, std::uint64_t value);

    void clear();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    unsigned capacity() const { return capacity_; }
    unsigned size() const
    {
        return static_cast<unsigned>(entries_.size());
    }

    /** Checkpoint: entry order (MRU at back) travels verbatim. */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU64(entries_.size());
        for (const Entry &e : entries_) {
            s.putU64(e.key);
            s.putU64(e.value);
        }
        s.putU64(hits_);
        s.putU64(misses_);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        const std::uint64_t n = d.getU64();
        if (n > capacity_)
            d.fail("SmallLruCache entry count exceeds capacity");
        entries_.clear();
        entries_.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t key = d.getU64();
            const std::uint64_t value = d.getU64();
            entries_.push_back(Entry{key, value});
        }
        hits_ = d.getU64();
        misses_ = d.getU64();
    }

  private:
    struct Entry
    {
        std::uint64_t key;
        std::uint64_t value;
    };

    unsigned capacity_;
    /** MRU at the back; linear scan is fine at these sizes (<=64). */
    std::vector<Entry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** The per-core set of walker-assist caches. */
class MmuCaches
{
  public:
    explicit MmuCaches(const MmuCacheParams &params);

    /**
     * Tag for a paging-structure entry: ASID + VA prefix down to
     * @p level's region, with @p host distinguishing the host
     * dimension of a nested walk from the guest dimension.
     */
    static std::uint64_t pscKey(Asid asid, Addr va, int level, bool host);

    /** Tag for a nested (gPA page -> hPA page) entry. */
    static std::uint64_t nestedKey(Asid asid, Addr gpa);

    /**
     * Deepest level whose node address is cached for @p va.
     *
     * Checks PDE (skip to level 1), then PDPE (level 2), then PML4E
     * (level 3). @return the level of the *next node to read* and its
     * address, or nullopt when the walk must start at the root.
     */
    struct Skip
    {
        int next_level;         //!< level of the first PTE to read
        std::uint64_t node_addr; //!< base of the node holding it
    };
    std::optional<Skip> skipFor(Asid asid, Addr va, bool host);

    /** Record the node discovered at @p level for @p va. */
    void fill(Asid asid, Addr va, int level, bool host,
              std::uint64_t node_addr);

    /** Nested cache: gPA page -> hPA page base (page size 4K). */
    std::optional<Addr> nestedLookup(Asid asid, Addr gpa);
    void nestedFill(Asid asid, Addr gpa, Addr hpa_page);

    Cycles latency() const { return latency_; }

    SmallLruCache &pml4e() { return pml4e_; }
    SmallLruCache &pdpe() { return pdpe_; }
    SmallLruCache &pde() { return pde_; }
    SmallLruCache &nested() { return nested_; }

    /** Checkpoint support (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        pml4e_.saveState(s);
        pdpe_.saveState(s);
        pde_.saveState(s);
        nested_.saveState(s);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        pml4e_.loadState(d);
        pdpe_.loadState(d);
        pde_.loadState(d);
        nested_.loadState(d);
    }

  private:
    SmallLruCache pml4e_;
    SmallLruCache pdpe_;
    SmallLruCache pde_;
    SmallLruCache nested_;
    Cycles latency_;
};

} // namespace csalt

#endif // CSALT_VM_MMU_CACHE_H
