/**
 * @file
 * Per-VM address spaces with demand paging.
 *
 * In virtualized mode a VmContext owns two page tables:
 *  - the guest table (gVA -> gPA) whose *nodes live at guest-physical
 *    addresses* and are therefore themselves host-mapped, and
 *  - the host/EPT table (gPA -> hPA) whose nodes live directly at
 *    host-physical addresses in the page-table range.
 *
 * In native mode a single table maps VA -> hPA.
 *
 * Pages are mapped on first touch. A 2MB-aligned virtual region is
 * backed by one huge page with probability huge_fraction (THP-style),
 * decided deterministically from the seed so traces are reproducible.
 */

#ifndef CSALT_VM_ADDRESS_SPACE_H
#define CSALT_VM_ADDRESS_SPACE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"
#include "mem/phys_alloc.h"
#include "vm/page_table.h"

namespace csalt
{

/** Final translation of a page: host frame + page size. */
struct Mapping
{
    Addr frame = kInvalidAddr; //!< host-physical base of the page
    PageSize ps = PageSize::size4K;
};

/** Demand-paged guest address space (one per VM). */
class VmContext
{
  public:
    struct Params
    {
        Asid asid = 0;
        bool virtualized = true;
        double huge_fraction = 0.1;
        std::uint64_t seed = 1;
        /** Radix depth of both page tables: 4, or 5 (LA57). */
        int page_levels = kTopLevel;
    };

    /**
     * @param data_frames allocator for application page frames
     * @param pt_frames allocator for page-table node frames
     */
    VmContext(const Params &params, FrameAllocator &data_frames,
              FrameAllocator &pt_frames);
    ~VmContext();

    VmContext(const VmContext &) = delete;
    VmContext &operator=(const VmContext &) = delete;

    /**
     * Translate a guest-virtual byte address to host-physical,
     * mapping the page on first touch.
     */
    Addr translate(Addr gva);

    /**
     * Page geometry backing @p gva (maps on demand). Inline memo
     * fast path: one array probe on the hottest call in the
     * simulator (every access of every core lands here first).
     */
    Mapping
    mappingOf(Addr gva)
    {
        const Vpn vpn = gva >> kPageShift;
        MemoEntry &e = memo_[vpn & (kMemoSize - 1)];
        if (e.vpn == vpn)
            return e.m;
        const Mapping m = mappingOfSlow(gva);
        e.vpn = vpn;
        e.m = m;
        return m;
    }

    /**
     * Read-only lookup of an existing mapping by VPN — never maps on
     * demand, so invariant checkers can consult the functional state
     * without perturbing it. @return nullopt when @p vpn was never
     * touched at @p ps.
     */
    std::optional<Mapping> peek(Vpn vpn, PageSize ps) const;

    /**
     * Host-physical address of a guest-physical byte address.
     * Used by the 2-D walker to locate guest PTEs and final frames.
     * Panics when @p gpa was never mapped (walks follow demand paging).
     */
    Addr hostTranslate(Addr gpa) const;

    /**
     * Guest-physical byte address backing @p gva (maps on demand).
     * In native mode this is the host-physical address.
     */
    Addr guestPhysOf(Addr gva);

    /** Guest page table (native mode: the only table, VA -> hPA). */
    PageTable &guestPt() { return *guest_pt_; }

    /** Host/EPT page table; only valid in virtualized mode. */
    PageTable &hostPt();

    Asid asid() const { return params_.asid; }
    bool virtualized() const { return params_.virtualized; }

    std::uint64_t mapped4K() const { return mapped_4k_; }
    std::uint64_t mapped2M() const { return mapped_2m_; }

    /**
     * Checkpoint: page tables, functional maps (verbatim FlatMap64
     * slot layout so probe sequences replay identically), and the
     * guest-physical bump allocators. The memo is a pure host-side
     * cache and is cleared on restore instead of travelling.
     */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    /** Decide (deterministically) if gva's 2MB region is huge. */
    bool regionIsHuge(Addr gva) const;

    /** mappingOf behind the memo: map probes + demand mapping. */
    Mapping mappingOfSlow(Addr gva);

    /** Map the page containing @p gva; returns its Mapping. */
    Mapping demandMap(Addr gva);

    /** Allocate a guest-physical page and host-map it to @p hpa. */
    Addr allocGuestPhys(Addr hpa, PageSize ps);

    Params params_;
    FrameAllocator &data_frames_;
    FrameAllocator &pt_frames_;

    std::unique_ptr<PageTable> guest_pt_;
    std::unique_ptr<PageTable> host_pt_;

    /** Fast functional maps (vpn -> Mapping), one per page size. */
    FlatMap64<Mapping> fast_4k_;
    FlatMap64<Mapping> fast_2m_;

    /** Host-side functional maps for gPA pages. */
    FlatMap64<Addr> host_4k_;
    FlatMap64<Addr> host_2m_;

    /**
     * Direct-mapped memo in front of mappingOf, keyed by 4K VPN
     * (a VPN inside a huge region memoizes the huge Mapping).
     * Mappings are append-only and immutable once created, so
     * entries never go stale. Purely host-side: a memo hit returns
     * exactly what the maps would.
     */
    struct MemoEntry
    {
        Vpn vpn = ~Vpn{0}; //!< unreachable: real VPNs are < 2^52
        Mapping m;
    };
    static constexpr std::size_t kMemoSize = 65536;
    std::vector<MemoEntry> memo_;

    /** Guest-physical bump allocators (separate 4K / 2M arenas). */
    Addr gpa_next_4k_;
    Addr gpa_next_2m_;

    std::uint64_t mapped_4k_ = 0;
    std::uint64_t mapped_2m_ = 0;
};

} // namespace csalt

#endif // CSALT_VM_ADDRESS_SPACE_H
