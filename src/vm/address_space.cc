#include "vm/address_space.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"
#include "snapshot/state_io.h"

namespace csalt
{

namespace
{

/** Stateless 64-bit mix for the per-region huge-page decision. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Guest-physical arena bases (disjoint by construction). */
constexpr Addr kGpa4kBase = Addr{1} << 32;
constexpr Addr kGpa2mBase = Addr{1} << 40;

} // namespace

VmContext::VmContext(const Params &params, FrameAllocator &data_frames,
                     FrameAllocator &pt_frames)
    : params_(params), data_frames_(data_frames), pt_frames_(pt_frames),
      memo_(kMemoSize), gpa_next_4k_(kGpa4kBase),
      gpa_next_2m_(kGpa2mBase)
{
    if (params_.virtualized) {
        // Host table first: guest-table nodes are host-mapped as they
        // are created (their storage is guest-physical memory).
        host_pt_ = std::make_unique<PageTable>(
            [this] { return pt_frames_.alloc4K(); },
            params_.page_levels);
        guest_pt_ = std::make_unique<PageTable>([this] {
            const Addr gpa = gpa_next_4k_;
            gpa_next_4k_ += kPageSize;
            const Addr hpa = pt_frames_.alloc4K();
            host_pt_->map(gpa, hpa, PageSize::size4K);
            host_4k_[gpa >> kPageShift] = hpa;
            return gpa;
        }, params_.page_levels);
    } else {
        guest_pt_ = std::make_unique<PageTable>(
            [this] { return pt_frames_.alloc4K(); },
            params_.page_levels);
    }
}

VmContext::~VmContext() = default;

PageTable &
VmContext::hostPt()
{
    if (!host_pt_)
        panic("hostPt() in native mode");
    return *host_pt_;
}

bool
VmContext::regionIsHuge(Addr gva) const
{
    const std::uint64_t h =
        mix64((gva >> kHugePageShift) ^ (params_.seed * 0x9e37u) ^
              (std::uint64_t{params_.asid} << 56));
    return static_cast<double>(h >> 11) * 0x1.0p-53 <
           params_.huge_fraction;
}

Addr
VmContext::allocGuestPhys(Addr hpa, PageSize ps)
{
    Addr gpa;
    if (ps == PageSize::size4K) {
        gpa = gpa_next_4k_;
        gpa_next_4k_ += kPageSize;
        host_4k_[gpa >> kPageShift] = hpa;
    } else {
        gpa = gpa_next_2m_;
        gpa_next_2m_ += kHugePageSize;
        host_2m_[gpa >> kHugePageShift] = hpa;
    }
    host_pt_->map(gpa, hpa, ps);
    return gpa;
}

Mapping
VmContext::demandMap(Addr gva)
{
    const bool huge = regionIsHuge(gva);
    const PageSize ps = huge ? PageSize::size2M : PageSize::size4K;
    const Addr page_va = gva & ~(pageBytes(ps) - 1);

    const Addr hpa = huge ? data_frames_.alloc2M() : data_frames_.alloc4K();

    if (params_.virtualized) {
        const Addr gpa = allocGuestPhys(hpa, ps);
        guest_pt_->map(page_va, gpa, ps);
    } else {
        guest_pt_->map(page_va, hpa, ps);
    }

    const Mapping m{hpa, ps};
    if (huge) {
        fast_2m_[gva >> kHugePageShift] = m;
        ++mapped_2m_;
    } else {
        fast_4k_[gva >> kPageShift] = m;
        ++mapped_4k_;
    }
    return m;
}

Mapping
VmContext::mappingOfSlow(Addr gva)
{
    if (const Mapping *m = fast_2m_.find(gva >> kHugePageShift))
        return *m;
    if (const Mapping *m = fast_4k_.find(gva >> kPageShift))
        return *m;
    return demandMap(gva);
}

std::optional<Mapping>
VmContext::peek(Vpn vpn, PageSize ps) const
{
    const auto &fast =
        ps == PageSize::size2M ? fast_2m_ : fast_4k_;
    if (const Mapping *m = fast.find(vpn))
        return *m;
    return std::nullopt;
}

Addr
VmContext::translate(Addr gva)
{
    const Mapping m = mappingOf(gva);
    return m.frame + (gva & (pageBytes(m.ps) - 1));
}

Addr
VmContext::guestPhysOf(Addr gva)
{
    mappingOf(gva); // ensure mapped
    const auto leaf = guest_pt_->leafOf(gva);
    if (!leaf)
        panic(msgOf("guestPhysOf: unmapped gva ", gva));
    return leaf->next + (gva & (pageBytes(leaf->ps) - 1));
}

Addr
VmContext::hostTranslate(Addr gpa) const
{
    if (const Addr *hpa = host_2m_.find(gpa >> kHugePageShift))
        return *hpa + (gpa & (kHugePageSize - 1));
    if (const Addr *hpa = host_4k_.find(gpa >> kPageShift))
        return *hpa + (gpa & (kPageSize - 1));
    panic(msgOf("hostTranslate: unmapped gpa ", gpa));
}


void
VmContext::saveState(snapshot::StateSerializer &s) const
{
    guest_pt_->saveState(s);
    s.putBool(params_.virtualized);
    if (params_.virtualized)
        host_pt_->saveState(s);

    fast_4k_.saveState(s, [](snapshot::StateSerializer &sink,
                             const Mapping &m) {
        sink.putU64(m.frame);
        sink.putU8(static_cast<std::uint8_t>(m.ps));
    });
    fast_2m_.saveState(s, [](snapshot::StateSerializer &sink,
                             const Mapping &m) {
        sink.putU64(m.frame);
        sink.putU8(static_cast<std::uint8_t>(m.ps));
    });
    host_4k_.saveState(
        s, [](snapshot::StateSerializer &sink, const Addr &a) {
            sink.putU64(a);
        });
    host_2m_.saveState(
        s, [](snapshot::StateSerializer &sink, const Addr &a) {
            sink.putU64(a);
        });

    s.putU64(gpa_next_4k_);
    s.putU64(gpa_next_2m_);
    s.putU64(mapped_4k_);
    s.putU64(mapped_2m_);
}

void
VmContext::loadState(snapshot::StateDeserializer &d)
{
    guest_pt_->loadState(d);
    if (d.getBool() != params_.virtualized)
        d.fail("VmContext virtualization-mode mismatch");
    if (params_.virtualized)
        host_pt_->loadState(d);

    const auto getMapping = [](snapshot::StateDeserializer &src) {
        Mapping m;
        m.frame = src.getU64();
        const std::uint8_t ps = src.getU8();
        if (ps > 1)
            src.fail("mapping has invalid page-size code");
        m.ps = static_cast<PageSize>(ps);
        return m;
    };
    fast_4k_.loadState(d, getMapping);
    fast_2m_.loadState(d, getMapping);
    const auto getAddr = [](snapshot::StateDeserializer &src) {
        return src.getU64();
    };
    host_4k_.loadState(d, getAddr);
    host_2m_.loadState(d, getAddr);

    gpa_next_4k_ = d.getU64();
    gpa_next_2m_ = d.getU64();
    mapped_4k_ = d.getU64();
    mapped_2m_ = d.getU64();

    // The memo fronting mappingOf() is a pure cache over the maps
    // just restored; stale host entries would alias new VPNs.
    std::fill(memo_.begin(), memo_.end(), MemoEntry{});
}

} // namespace csalt
