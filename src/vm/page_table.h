/**
 * @file
 * Four-level x86-64 radix page table materialised in a simulated
 * address space.
 *
 * Unlike a functional map, every table node occupies a real 4KB page
 * at an address provided by a node allocator, so page-walk references
 * have concrete physical addresses that travel through (and contend
 * for) the data caches — the effect CSALT exists to manage.
 *
 * A guest page table's nodes live at guest-physical addresses; the
 * host page table's nodes live at host-physical addresses. The walker
 * composes the two for the 2-D nested walk.
 */

#ifndef CSALT_VM_PAGE_TABLE_H
#define CSALT_VM_PAGE_TABLE_H

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"

namespace csalt
{

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/**
 * x86-64 paging: level 4 = PML4 down to level 1 = PT. Five-level
 * paging (Intel LA57, the paper's "emerging architectures" note)
 * adds a PML5 on top; PageTable takes the top level as a parameter.
 */
inline constexpr int kTopLevel = 4;
inline constexpr int kTopLevel5 = 5;
inline constexpr int kLeafLevel4K = 1;
inline constexpr int kLeafLevel2M = 2;
inline constexpr unsigned kPteBytes = 8;
inline constexpr unsigned kIndexBits = 9;
inline constexpr unsigned kSlotsPerNode = 1u << kIndexBits;

/** Radix index of @p va at @p level (level 4..1). */
constexpr unsigned
radixIndex(Addr va, int level)
{
    const unsigned shift = kPageShift + kIndexBits * (level - 1);
    return static_cast<unsigned>((va >> shift) & (kSlotsPerNode - 1));
}

/** One step of a root-to-leaf walk. */
struct PteRef
{
    int level = 0;       //!< 4..1
    Addr pte_addr = kInvalidAddr; //!< address of the PTE itself
    bool leaf = false;
    Addr next = kInvalidAddr; //!< child node base, or leaf frame base
    PageSize ps = PageSize::size4K; //!< meaningful when leaf
};

/**
 * A radix page table whose nodes are allocated via a callback, so the
 * owner decides which address space the nodes live in.
 */
class PageTable
{
  public:
    /** Returns the base address of a fresh, zeroed 4KB table node. */
    using NodeAlloc = std::function<Addr()>;

    /**
     * @param alloc node allocator
     * @param top_level 4 (default) or 5 (LA57-style) paging depth
     */
    explicit PageTable(NodeAlloc alloc, int top_level = kTopLevel);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Install a mapping. @p va and @p pa must be aligned to @p ps.
     * Re-mapping an already-mapped page is a simulator bug (panic).
     */
    void map(Addr va, Addr pa, PageSize ps);

    /**
     * Collect the root-to-leaf PTE chain for @p va into @p out
     * (cleared first). Walking an unmapped address panics: demand
     * mapping must happen before any simulated walk.
     */
    void walkPath(Addr va, std::vector<PteRef> &out) const;

    /** Leaf entry for @p va, or nullopt when unmapped. */
    std::optional<PteRef> leafOf(Addr va) const;

    /** Base address of the root (CR3 analogue). */
    Addr root() const;

    /** Paging depth (4 or 5 levels). */
    int topLevel() const { return top_level_; }

    /** Number of table nodes allocated so far. */
    std::uint64_t nodeCount() const { return node_count_; }

    /** Bytes of table storage (nodeCount * 4KB). */
    std::uint64_t nodeBytes() const { return node_count_ * kPageSize; }

    /** Total populated slots across all nodes (stats/teardown). */
    std::uint64_t usedSlotCount() const { return used_slots_; }

    /**
     * Checkpoint: the radix tree travels with its node base
     * addresses verbatim (nodes are NOT re-allocated on restore —
     * the FrameAllocator that fed NodeAlloc is restored separately,
     * so re-allocating would double-consume frames and panic map()).
     */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    struct Node;

    struct Slot
    {
        std::unique_ptr<Node> child;
        Addr leaf_pa = kInvalidAddr;
        PageSize ps = PageSize::size4K;
        bool is_leaf = false;

        bool empty() const { return !child && !is_leaf; }
    };

    struct Node
    {
        Addr base = kInvalidAddr;
        unsigned used = 0; //!< populated slots (stats/teardown)
        /**
         * Dense slot storage: a walk indexes the radix slot directly
         * — no hashing on the per-access path. A node is ~12KB of
         * host memory against the 4KB of simulated memory it models,
         * a fine trade even for sparse big-footprint workloads.
         */
        std::array<Slot, kSlotsPerNode> slots;
    };

    Node *ensureChild(Node *node, unsigned idx);

    void saveNode(const Node &node, snapshot::StateSerializer &s) const;
    void loadNode(Node &node, snapshot::StateDeserializer &d, int level);

    NodeAlloc alloc_;
    int top_level_;
    std::unique_ptr<Node> root_;
    std::uint64_t node_count_ = 0;
    std::uint64_t used_slots_ = 0;
};

} // namespace csalt

#endif // CSALT_VM_PAGE_TABLE_H
