#include "harness/results.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "sim/metrics_io.h"

namespace csalt::harness
{

std::string
jobsJson(const std::vector<JobOutcome<RunMetrics>> &outcomes,
         bool include_wall)
{
    std::ostringstream os;
    os << "{\"jobs\": [";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto &o = outcomes[i];
        os << (i ? ",\n" : "\n") << "{\"key\": \""
           << obs::escapeJson(o.key) << "\", \"ok\": "
           << (o.ok ? "true" : "false");
        if (include_wall) {
            os << ", \"wall_s\": ";
            obs::writeJsonNumber(os, o.wall_s);
        }
        if (o.ok)
            os << ", \"metrics\": " << metricsJson(o.key, *o.value);
        else
            os << ", \"error\": \"" << obs::escapeJson(o.error)
               << "\"";
        os << "}";
    }
    if (!outcomes.empty())
        os << "\n";
    os << "]}";
    return os.str();
}

bool
writeJobsJson(const std::string &path,
              const std::vector<JobOutcome<RunMetrics>> &outcomes,
              bool include_wall)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << jobsJson(outcomes, include_wall) << "\n";
    return static_cast<bool>(out);
}

} // namespace csalt::harness
