#include "harness/results.h"

#include <sstream>

#include "common/atomic_io.h"
#include "common/log.h"
#include "obs/json.h"
#include "sim/metrics_io.h"

namespace csalt::harness
{

std::string
jobsJson(const std::vector<JobOutcome<RunMetrics>> &outcomes,
         bool include_wall)
{
    std::ostringstream os;
    os << "{\"failed_jobs\": " << countFailures(outcomes)
       << ", \"jobs\": [";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto &o = outcomes[i];
        os << (i ? ",\n" : "\n") << "{\"key\": \""
           << obs::escapeJson(o.key) << "\", \"ok\": "
           << (o.ok ? "true" : "false");
        if (include_wall) {
            os << ", \"wall_s\": ";
            obs::writeJsonNumber(os, o.wall_s);
        }
        if (o.ok)
            os << ", \"metrics\": " << metricsJson(o.key, *o.value);
        else
            os << ", \"error\": \"" << obs::escapeJson(o.error)
               << "\"";
        os << "}";
    }
    if (!outcomes.empty())
        os << "\n";
    os << "]}";
    return os.str();
}

bool
writeJobsJson(const std::string &path,
              const std::vector<JobOutcome<RunMetrics>> &outcomes,
              bool include_wall)
{
    Status status =
        writeFileAtomic(path, jobsJson(outcomes, include_wall) + "\n");
    if (!status.ok()) {
        warn(oneLine(status.error()));
        return false;
    }
    return true;
}

JournalCodec<RunMetrics>
metricsJournalCodec()
{
    JournalCodec<RunMetrics> codec;
    codec.encode = [](const RunMetrics &m) {
        return metricsJournalJson(m);
    };
    codec.decode = [](std::string_view json) {
        return metricsFromJournal(json);
    };
    return codec;
}

} // namespace csalt::harness
