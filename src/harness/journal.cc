#include "harness/journal.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_io.h"
#include "common/log.h"
#include "obs/json.h"
#include "obs/phase_profiler.h"

namespace csalt::harness
{

namespace
{

// Line layout: {"crc":"XXXXXXXX","body":<body>}
//              |-- 8 --|8 hex|--- 9 ----|     |1|
constexpr std::string_view kCrcPrefix = "{\"crc\":\"";
constexpr std::string_view kBodyPrefix = "\",\"body\":";
constexpr std::size_t kBodyStart =
    kCrcPrefix.size() + 8 + kBodyPrefix.size();

constexpr std::string_view kHeaderMagic = "csalt-job-journal";
constexpr int kJournalVersion = 1;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

Error
parseError(std::string message, std::string context = {})
{
    return makeError(ErrorKind::parse, std::move(message),
                     std::move(context),
                     "delete the journal or rerun with --fresh");
}

} // namespace

std::uint32_t
crc32(std::string_view data)
{
    static const auto table = makeCrcTable();
    std::uint32_t c = 0xffffffffu;
    for (const char ch : data)
        c = table[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^
            (c >> 8);
    return c ^ 0xffffffffu;
}

std::string
journalEncodeLine(std::string_view body)
{
    char crc_hex[9];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x", crc32(body));
    std::string line;
    line.reserve(kBodyStart + body.size() + 1);
    line += kCrcPrefix;
    line += crc_hex;
    line += kBodyPrefix;
    line += body;
    line += '}';
    return line;
}

Expected<std::string>
journalDecodeLine(std::string_view line)
{
    if (line.size() < kBodyStart + 1 ||
        line.substr(0, kCrcPrefix.size()) != kCrcPrefix ||
        line.substr(kCrcPrefix.size() + 8, kBodyPrefix.size()) !=
            kBodyPrefix ||
        line.back() != '}')
        return parseError("malformed journal line");

    const std::string_view crc_hex =
        line.substr(kCrcPrefix.size(), 8);
    std::uint32_t want = 0;
    for (const char c : crc_hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return parseError("malformed journal crc");
        want = want << 4 | static_cast<std::uint32_t>(digit);
    }

    const std::string_view body =
        line.substr(kBodyStart, line.size() - kBodyStart - 1);
    if (crc32(body) != want)
        return parseError("journal line crc mismatch (torn or "
                          "corrupted record)");
    return std::string(body);
}

Expected<std::unique_ptr<Journal>>
Journal::open(std::string path, std::string signature, bool fresh)
{
    std::unique_ptr<Journal> journal(new Journal);
    journal->path_ = std::move(path);
    journal->signature_ = std::move(signature);

    if (fresh) {
        std::remove(journal->path_.c_str());
        return journal;
    }

    std::ifstream in(journal->path_);
    if (!in)
        return journal; // nothing to resume from

    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        auto body = journalDecodeLine(line);
        if (!body) {
            // A bad line is either the torn tail of a killed run
            // (expected, drop silently beyond a warning) or real
            // corruption; either way nothing after it is trusted.
            warn("journal '" + journal->path_ + "' line " +
                 std::to_string(line_no) + ": " +
                 body.error().message + "; dropping the tail");
            break;
        }
        auto doc = obs::parseJson(body.value());
        if (!doc || !doc->isObject()) {
            warn("journal '" + journal->path_ + "' line " +
                 std::to_string(line_no) +
                 ": unparseable body; dropping the tail");
            break;
        }
        if (line_no == 1) {
            if (doc->stringOr("journal", "") != kHeaderMagic)
                return parseError("missing journal header",
                                  journal->path_);
            const std::string sig = doc->stringOr("signature", "");
            if (sig != journal->signature_)
                return makeError(
                    ErrorKind::config,
                    "journal was written for a different grid "
                    "(signature '" +
                        sig + "', expected '" + journal->signature_ +
                        "')",
                    journal->path_,
                    "rerun with --fresh to discard it, or restore "
                    "the original grid parameters");
            saw_header = true;
            continue;
        }
        JournalRecord rec;
        rec.key = doc->stringOr("key", "");
        if (rec.key.empty()) {
            warn("journal '" + journal->path_ + "' line " +
                 std::to_string(line_no) +
                 ": record without key; dropping the tail");
            break;
        }
        const obs::JsonValue *ok = doc->find("ok");
        rec.ok = ok && ok->kind == obs::JsonValue::Kind::boolean &&
                 ok->bool_v;
        rec.error = doc->stringOr("error", "");
        rec.error_kind = doc->stringOr("kind", "");
        rec.wall_s = doc->numberOr("wall_s", 0.0);
        if (doc->find("value")) {
            // Re-slice the exact value bytes out of the body so the
            // typed decoder sees precisely what the encoder wrote.
            // The value is always the last member; the `,"value":`
            // marker cannot occur inside an escaped string (quotes
            // are always written as \"), so the first hit is it.
            const std::string marker = ",\"value\":";
            const auto pos = body.value().find(marker);
            if (pos != std::string::npos)
                rec.value_json = body.value().substr(
                    pos + marker.size(),
                    body.value().size() - (pos + marker.size()) - 1);
        }
        journal->records_[rec.key] = std::move(rec);
    }
    in.close();
    journal->header_on_disk_ = saw_header;
    if (!saw_header) {
        // Unusable file (empty, or corrupt from line 1): discard so
        // appends start from a clean header.
        std::remove(journal->path_.c_str());
    }
    journal->loaded_count_ = journal->records_.size();
    return journal;
}

const JournalRecord *
Journal::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = records_.find(key);
    return it == records_.end() ? nullptr : &it->second;
}

std::string
Journal::headerLine() const
{
    std::ostringstream os;
    os << "{\"journal\":\"" << kHeaderMagic
       << "\",\"version\":" << kJournalVersion << ",\"signature\":\""
       << obs::escapeJson(signature_) << "\"}";
    return journalEncodeLine(os.str());
}

std::string
Journal::encodeRecord(const JournalRecord &record) const
{
    std::ostringstream os;
    os << "{\"key\":\"" << obs::escapeJson(record.key)
       << "\",\"ok\":" << (record.ok ? "true" : "false");
    os << ",\"wall_s\":";
    obs::writeJsonNumber(os, record.wall_s);
    if (!record.error.empty())
        os << ",\"error\":\"" << obs::escapeJson(record.error)
           << "\"";
    if (!record.error_kind.empty())
        os << ",\"kind\":\"" << obs::escapeJson(record.error_kind)
           << "\"";
    if (record.ok && !record.value_json.empty())
        os << ",\"value\":" << record.value_json;
    os << "}";
    return journalEncodeLine(os.str());
}

Status
Journal::append(const JournalRecord &record)
{
    CSALT_PROFILE_SCOPE(journal_io);
    std::lock_guard<std::mutex> lock(mu_);
    if (record.value_json.find('\n') != std::string::npos)
        return makeError(ErrorKind::internal,
                         "journal value encoding must be single-line",
                         record.key);
    std::ofstream out(path_, std::ios::app);
    if (!out)
        return makeError(ErrorKind::io,
                         "cannot append to job journal", path_,
                         "check directory permissions, or drop "
                         "--journal/--json");
    if (!header_on_disk_)
        out << headerLine() << "\n";
    out << encodeRecord(record) << "\n";
    out.flush();
    if (!out)
        return makeError(ErrorKind::io, "short journal append",
                         path_, "check free disk space");
    header_on_disk_ = true;
    records_[record.key] = record;
    return {};
}

Status
Journal::finalize()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string content = headerLine() + "\n";
    for (const auto &[key, rec] : records_)
        content += encodeRecord(rec) + "\n";
    Status status = writeFileAtomic(path_, content);
    if (status.ok())
        header_on_disk_ = true;
    return status;
}

} // namespace csalt::harness
