/**
 * @file
 * Aggregated machine-readable output for a grid of simulation jobs:
 * one JSON document merging every job's RunMetrics (via metricsJson)
 * with its key, status and wall-clock, in submission order. Failed
 * jobs keep their slot with ok=false and the error message, so a
 * partially failed sweep is still diffable.
 */

#ifndef CSALT_HARNESS_RESULTS_H
#define CSALT_HARNESS_RESULTS_H

#include <string>
#include <vector>

#include "harness/job_runner.h"
#include "sim/metrics.h"

namespace csalt::harness
{

/**
 * Serialize @p outcomes as
 *   {"failed_jobs": 0, "jobs": [{"key": ..., "ok": true,
 *              "wall_s": ..., "metrics": {...}}, ...]}
 * with per-job metrics from metricsJson(). @p include_wall drops the
 * wall_s field when false, making the document bit-stable across
 * --jobs values (used by the determinism tests).
 */
std::string
jobsJson(const std::vector<JobOutcome<RunMetrics>> &outcomes,
         bool include_wall = true);

/**
 * Write jobsJson() to @p path atomically (tmp + rename), so a killed
 * run never leaves a torn results file. @return false if unwritable.
 */
bool
writeJobsJson(const std::string &path,
              const std::vector<JobOutcome<RunMetrics>> &outcomes,
              bool include_wall = true);

/** Resume-journal codec for RunMetrics grids (sweep, benches). */
JournalCodec<RunMetrics> metricsJournalCodec();

} // namespace csalt::harness

#endif // CSALT_HARNESS_RESULTS_H
