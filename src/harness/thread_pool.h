/**
 * @file
 * Fixed-size worker pool for the experiment job runner.
 *
 * Deliberately minimal: tasks are posted as type-erased closures and
 * executed FIFO by a fixed set of workers. There is no resizing, no
 * priorities and no futures — JobRunner layers result collection and
 * ordering on top. Tasks must not throw (JobRunner wraps every job in
 * a catch-all before posting).
 */

#ifndef CSALT_HARNESS_THREAD_POOL_H
#define CSALT_HARNESS_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csalt::harness
{

/** Fixed set of workers draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** Start @p threads workers (at least 1). */
    explicit ThreadPool(unsigned threads);

    /** Waits for all posted tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; runs on some worker in FIFO dispatch order. */
    void post(std::function<void()> task);

    /** Block until every posted task has finished executing. */
    void drain();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;    //!< workers: queue or stop
    std::condition_variable drained_; //!< drain(): in_flight == 0
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0; //!< queued + currently executing
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace csalt::harness

#endif // CSALT_HARNESS_THREAD_POOL_H
