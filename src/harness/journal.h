/**
 * @file
 * Crash-safe job journal: the checkpoint/resume backbone of the
 * experiment pipeline.
 *
 * One journal per results file (`<out>.journal.jsonl`), one JSONL
 * record per finished grid cell, appended and flushed as each job
 * completes. Every line is CRC-guarded:
 *
 *   {"crc":"9a6b1c44","body":{...}}
 *
 * where the 8-hex-digit crc32 covers the exact bytes of `body`. The
 * fixed-width prefix lets the loader slice the body back out without
 * re-serialising, so verification is byte-exact. The first record is
 * a header carrying a caller-supplied grid *signature*; resuming
 * against a journal written for a different grid/config is a typed
 * error (pass --fresh to discard it).
 *
 * Crash model: a SIGKILL can only tear the final line (appends are
 * sequential and flushed per record). The loader accepts such a torn
 * tail — and any line whose CRC does not match — by dropping the bad
 * line and everything after it. finalize() then compacts the journal
 * through an atomic tmp+rename rewrite, so a journal that survived a
 * crash becomes clean again after the resumed run.
 *
 * Resume identity is the stable job key (the same key that seeds
 * per-job RNG), never submission order. Only ok records are skipped
 * on resume; failed cells run again. See docs/robustness.md.
 */

#ifndef CSALT_HARNESS_JOURNAL_H
#define CSALT_HARNESS_JOURNAL_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/error.h"

namespace csalt::harness
{

/** CRC-32 (IEEE, reflected) over @p data. */
std::uint32_t crc32(std::string_view data);

/** Wrap @p body (a complete JSON value) as one guarded journal line
 *  (no trailing newline). */
std::string journalEncodeLine(std::string_view body);

/**
 * Validate one guarded line and slice out the body bytes.
 * Fails (kind=parse) on format or CRC mismatch.
 */
Expected<std::string> journalDecodeLine(std::string_view line);

/** One journaled job outcome. */
struct JournalRecord
{
    std::string key;
    bool ok = false;
    std::string error;      //!< failure message; empty when ok
    std::string error_kind; //!< errorKindName() of the failure
    double wall_s = 0.0;    //!< wall clock of the original execution
    std::string value_json; //!< encoded job value; empty unless ok
};

/**
 * Append-only journal of completed jobs, keyed by stable job key.
 * Thread-safe: append() serialises internally.
 */
class Journal
{
  public:
    /**
     * Open @p path. With @p fresh, any existing journal is discarded;
     * otherwise existing records load for resume (torn tails are
     * dropped, a header signature mismatch is a typed config error).
     */
    static Expected<std::unique_ptr<Journal>>
    open(std::string path, std::string signature, bool fresh);

    /** Most recent loaded/appended record for @p key, or nullptr. */
    const JournalRecord *lookup(const std::string &key) const;

    /** Records recovered from disk at open() (before any append). */
    std::size_t loadedCount() const { return loaded_count_; }

    /** Append one record and flush it to disk. */
    Status append(const JournalRecord &record);

    /**
     * Compact to a clean journal (header + every live record) via
     * atomic tmp+rename, clearing any torn tail for good.
     */
    Status finalize();

    const std::string &path() const { return path_; }

  private:
    Journal() = default;

    std::string encodeRecord(const JournalRecord &record) const;
    std::string headerLine() const;

    std::string path_;
    std::string signature_;
    std::size_t loaded_count_ = 0;
    bool header_on_disk_ = false;
    // Ordered map: finalize() output is stable across resume orders.
    std::map<std::string, JournalRecord> records_;
    mutable std::mutex mu_;
};

} // namespace csalt::harness

#endif // CSALT_HARNESS_JOURNAL_H
