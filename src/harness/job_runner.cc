#include "harness/job_runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace csalt::harness
{

namespace
{

/** SplitMix64 finalizer (same mixing constants as Rng seeding). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

unsigned
parseJobsValue(const char *s, const char *origin)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || v == 0 || v > 4096)
        fatal(msgOf(origin, ": bad job count '", s,
                    "' (want an integer in [1, 4096])"));
    return static_cast<unsigned>(v);
}

unsigned
parseCountValue(const char *s, const char *origin)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || v > 1000)
        fatal(msgOf(origin, ": bad count '", s,
                    "' (want an integer in [0, 1000])"));
    return static_cast<unsigned>(v);
}

double
parseSecondsValue(const char *s, const char *origin)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || !(v >= 0) || v > 1e9)
        fatal(msgOf(origin, ": bad duration '", s,
                    "' (want seconds >= 0)"));
    return v;
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t base_seed, std::string_view job_key)
{
    // Two rounds of SplitMix64 over (key hash, base) decorrelate
    // nearby keys and base seeds; the result depends only on the
    // stable key, never on submission order.
    return mix64(mix64(fnv1a(job_key)) ^ base_seed);
}

unsigned
jobsFromEnv(unsigned fallback)
{
    const char *s = std::getenv("CSALT_JOBS");
    if (!s || !*s)
        return fallback;
    return parseJobsValue(s, "$CSALT_JOBS");
}

std::string
liveDirFromEnv()
{
    const char *s = std::getenv("CSALT_LIVE_DIR");
    return s ? std::string(s) : std::string();
}

std::string
sanitizeJobKey(std::string_view key)
{
    std::string out;
    out.reserve(key.size() + 9);
    for (const char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '_' || c == '-';
        out += safe ? c : '_';
    }
    // The replacement alone is lossy ("a/b" and "a_b" both render as
    // "a_b", so two cells would clobber one live region); a short
    // hash of the RAW key keeps distinct keys on distinct files.
    char hash[10];
    std::snprintf(hash, sizeof hash, "-%08x",
                  static_cast<unsigned>(fnv1a(key) & 0xffffffffu));
    out += hash;
    return out;
}

unsigned
parseJobsFlag(int &argc, char **argv)
{
    unsigned jobs = jobsFromEnv(1);
    int w = 1;
    for (int r = 1; r < argc; ++r) {
        if (std::strcmp(argv[r], "--jobs") == 0) {
            if (r + 1 >= argc)
                fatal("--jobs needs a value");
            jobs = parseJobsValue(argv[++r], "--jobs");
        } else if (std::strncmp(argv[r], "--jobs=", 7) == 0) {
            jobs = parseJobsValue(argv[r] + 7, "--jobs");
        } else {
            argv[w++] = argv[r];
        }
    }
    argc = w;
    argv[argc] = nullptr;
    return jobs;
}

RunnerOptions
parseRunnerFlags(int &argc, char **argv)
{
    RunnerOptions opts;
    opts.jobs = parseJobsFlag(argc, argv);

    const auto valueOf = [&](int &r, const char *flag) -> const char * {
        if (r + 1 >= argc)
            fatal(msgOf(flag, " needs a value"));
        return argv[++r];
    };

    int w = 1;
    for (int r = 1; r < argc; ++r) {
        if (std::strcmp(argv[r], "--retries") == 0) {
            opts.retries =
                parseCountValue(valueOf(r, "--retries"), "--retries");
        } else if (std::strcmp(argv[r], "--retry-backoff") == 0) {
            opts.retry_backoff_s = parseSecondsValue(
                valueOf(r, "--retry-backoff"), "--retry-backoff");
        } else if (std::strcmp(argv[r], "--job-timeout") == 0) {
            opts.job_timeout_s = parseSecondsValue(
                valueOf(r, "--job-timeout"), "--job-timeout");
        } else if (std::strcmp(argv[r], "--stall-timeout") == 0) {
            opts.stall_timeout_s = parseSecondsValue(
                valueOf(r, "--stall-timeout"), "--stall-timeout");
        } else if (std::strcmp(argv[r], "--resume") == 0) {
            opts.resume = true;
        } else if (std::strcmp(argv[r], "--fresh") == 0) {
            opts.fresh = true;
        } else {
            argv[w++] = argv[r];
        }
    }
    argc = w;
    argv[argc] = nullptr;
    if (opts.resume && opts.fresh)
        fatal("--resume and --fresh are mutually exclusive");
    return opts;
}

ProgressFn
stderrProgress()
{
    return [](const JobStatus &s) {
        // Single formatted write so parallel jobs never interleave
        // within a line.
        if (s.from_journal) {
            std::fprintf(stderr, "  [%zu/%zu] %s  (journal)\n",
                         s.done, s.total, s.key.c_str());
        } else if (s.ok) {
            std::fprintf(stderr, "  [%zu/%zu] %s  (%.1fs)\n", s.done,
                         s.total, s.key.c_str(), s.wall_s);
        } else {
            std::fprintf(stderr, "  [%zu/%zu] %s  FAILED: %s\n",
                         s.done, s.total, s.key.c_str(),
                         s.error.c_str());
        }
    };
}

Watchdog::Watchdog(double job_timeout_s, double stall_timeout_s)
    : job_timeout_s_(job_timeout_s), stall_timeout_s_(stall_timeout_s)
{
    if (enabled())
        thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog()
{
    if (thread_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }
}

bool
Watchdog::enabled() const
{
    return job_timeout_s_ > 0 || stall_timeout_s_ > 0;
}

void
Watchdog::attach(std::size_t index, ProgressToken *token)
{
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    entries_[index] = Entry{token, now, token->ticks(), now};
}

void
Watchdog::detach(std::size_t index)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(index);
}

void
Watchdog::loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        cv_.wait_for(lock, std::chrono::milliseconds(20));
        if (stop_)
            break;
        const auto now = std::chrono::steady_clock::now();
        for (auto &[index, e] : entries_) {
            if (e.token->cancelled())
                continue;
            const double age =
                std::chrono::duration<double>(now - e.start).count();
            if (job_timeout_s_ > 0 && age > job_timeout_s_) {
                e.token->requestCancel(
                    "job exceeded --job-timeout " +
                    std::to_string(job_timeout_s_) + "s");
                continue;
            }
            const std::uint64_t ticks = e.token->ticks();
            if (ticks != e.last_ticks) {
                e.last_ticks = ticks;
                e.last_change = now;
                continue;
            }
            const double stalled =
                std::chrono::duration<double>(now - e.last_change)
                    .count();
            if (stall_timeout_s_ > 0 && stalled > stall_timeout_s_)
                e.token->requestCancel(
                    "no forward progress for " +
                    std::to_string(stall_timeout_s_) +
                    "s (--stall-timeout)");
        }
    }
}

} // namespace csalt::harness
