#include "harness/job_runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace csalt::harness
{

namespace
{

/** SplitMix64 finalizer (same mixing constants as Rng seeding). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

unsigned
parseJobsValue(const char *s, const char *origin)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || v == 0 || v > 4096)
        fatal(msgOf(origin, ": bad job count '", s,
                    "' (want an integer in [1, 4096])"));
    return static_cast<unsigned>(v);
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t base_seed, std::string_view job_key)
{
    // Two rounds of SplitMix64 over (key hash, base) decorrelate
    // nearby keys and base seeds; the result depends only on the
    // stable key, never on submission order.
    return mix64(mix64(fnv1a(job_key)) ^ base_seed);
}

unsigned
jobsFromEnv(unsigned fallback)
{
    const char *s = std::getenv("CSALT_JOBS");
    if (!s || !*s)
        return fallback;
    return parseJobsValue(s, "$CSALT_JOBS");
}

unsigned
parseJobsFlag(int &argc, char **argv)
{
    unsigned jobs = jobsFromEnv(1);
    int w = 1;
    for (int r = 1; r < argc; ++r) {
        if (std::strcmp(argv[r], "--jobs") == 0) {
            if (r + 1 >= argc)
                fatal("--jobs needs a value");
            jobs = parseJobsValue(argv[++r], "--jobs");
        } else if (std::strncmp(argv[r], "--jobs=", 7) == 0) {
            jobs = parseJobsValue(argv[r] + 7, "--jobs");
        } else {
            argv[w++] = argv[r];
        }
    }
    argc = w;
    argv[argc] = nullptr;
    return jobs;
}

ProgressFn
stderrProgress()
{
    return [](const JobStatus &s) {
        // Single formatted write so parallel jobs never interleave
        // within a line.
        if (s.ok) {
            std::fprintf(stderr, "  [%zu/%zu] %s  (%.1fs)\n", s.done,
                         s.total, s.key.c_str(), s.wall_s);
        } else {
            std::fprintf(stderr, "  [%zu/%zu] %s  FAILED: %s\n",
                         s.done, s.total, s.key.c_str(),
                         s.error.c_str());
        }
    };
}

} // namespace csalt::harness
