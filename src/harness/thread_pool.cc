#include "harness/thread_pool.h"

#include <utility>

namespace csalt::harness
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    wake_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and no work left
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0)
                drained_.notify_all();
        }
    }
}

} // namespace csalt::harness
