/**
 * @file
 * Parallel experiment job runner.
 *
 * Every CSALT figure/sweep is a grid of independent simulations; the
 * runner executes that grid on a fixed-size thread pool. The contract
 * that makes this safe and reproducible:
 *
 *  - jobs are shared-nothing: each job builds its own System (via
 *    BuildSpec) inside the job function and tears it down before
 *    returning. StatRegistry, Rng and the workload generators are all
 *    per-System state, so nothing is shared between jobs (see
 *    docs/harness.md for the full invariant list);
 *  - any per-job randomness is seeded by deriveSeed() over a *stable
 *    job key*, never by submission or completion order, so the same
 *    grid gives the same numbers at any --jobs value;
 *  - results are collected in submission order, and the optional
 *    ordered callback streams them in that order as soon as the
 *    completed prefix allows — with jobs=1 this reduces exactly to
 *    the historical sequential loop.
 *
 * Failures are isolated: a job that throws is reported in its
 * JobOutcome (ok=false, error message) and every other job still
 * runs to completion.
 */

#ifndef CSALT_HARNESS_JOB_RUNNER_H
#define CSALT_HARNESS_JOB_RUNNER_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/thread_pool.h"

namespace csalt::harness
{

/**
 * Deterministic per-job seed: SplitMix64 finalization over an FNV-1a
 * hash of the stable @p job_key mixed with @p base_seed. Independent
 * of submission order, thread count and platform.
 */
std::uint64_t deriveSeed(std::uint64_t base_seed,
                         std::string_view job_key);

/** Worker count from $CSALT_JOBS; @p fallback when unset/invalid. */
unsigned jobsFromEnv(unsigned fallback = 1);

/**
 * Consume a `--jobs N` / `--jobs=N` flag from argv (compacting the
 * array and decrementing @p argc). Returns the requested worker
 * count; without the flag, falls back to $CSALT_JOBS, then 1.
 * fatal() on a malformed or zero value.
 */
unsigned parseJobsFlag(int &argc, char **argv);

/** Progress snapshot passed to the progress callback. */
struct JobStatus
{
    std::size_t index; //!< submission index of the finished job
    std::size_t done;  //!< jobs finished so far (including this one)
    std::size_t total;
    const std::string &key;
    double wall_s;
    bool ok;
    const std::string &error; //!< empty when ok
};

using ProgressFn = std::function<void(const JobStatus &)>;

/** Default progress reporter: one stderr line per finished job. */
ProgressFn stderrProgress();

/** Result slot for one job, in submission order. */
template <typename T>
struct JobOutcome
{
    std::string key;
    bool ok = false;
    std::string error; //!< what() of the escaped exception
    double wall_s = 0.0;
    std::optional<T> value; //!< engaged iff ok
};

/**
 * Shared-nothing job grid executor. Typical use:
 *
 *   JobRunner<RunMetrics> runner(jobs);
 *   for (cell : grid)
 *       runner.add(cell.key(), [cell] { return simulate(cell); });
 *   auto outcomes = runner.run(stderrProgress());
 *
 * With jobs==1 everything executes inline on the calling thread in
 * submission order (the exact historical sequential behaviour);
 * otherwise a ThreadPool dispatches jobs FIFO and the results are
 * still returned in submission order.
 */
template <typename T>
class JobRunner
{
  public:
    /** @p jobs worker threads; 1 = sequential inline execution. */
    explicit JobRunner(unsigned jobs = 1) : jobs_(jobs ? jobs : 1) {}

    /** Queue a job. @p key must be stable and unique per job. */
    std::size_t
    add(std::string key, std::function<T()> fn)
    {
        entries_.push_back({std::move(key), std::move(fn)});
        return entries_.size() - 1;
    }

    std::size_t size() const { return entries_.size(); }
    unsigned workerCount() const { return jobs_; }

    /**
     * Stream outcomes in submission order: invoked for job i only
     * once jobs 0..i-1 have all been emitted. Under jobs=1 this fires
     * immediately after each job, interleaving exactly like the old
     * sequential harness loops.
     */
    void
    setOrderedCallback(
        std::function<void(std::size_t, const JobOutcome<T> &)> cb)
    {
        ordered_ = std::move(cb);
    }

    /**
     * Execute every queued job; outcomes indexed by submission order.
     * The queue is consumed: run() may be called only once.
     */
    std::vector<JobOutcome<T>>
    run(ProgressFn progress = {})
    {
        const std::size_t n = entries_.size();
        std::vector<JobOutcome<T>> outcomes(n);

        if (jobs_ == 1 || n <= 1) {
            for (std::size_t i = 0; i < n; ++i) {
                outcomes[i] = execute(i);
                if (progress)
                    progress(statusOf(outcomes[i], i, i + 1, n));
                if (ordered_)
                    ordered_(i, outcomes[i]);
            }
            entries_.clear();
            return outcomes;
        }

        std::mutex mutex;
        std::size_t done = 0;
        std::size_t next_emit = 0;
        std::vector<char> ready(n, 0);
        {
            ThreadPool pool(
                static_cast<unsigned>(std::min<std::size_t>(jobs_, n)));
            for (std::size_t i = 0; i < n; ++i) {
                pool.post([&, i] {
                    JobOutcome<T> outcome = execute(i);
                    std::lock_guard<std::mutex> lock(mutex);
                    outcomes[i] = std::move(outcome);
                    ready[i] = 1;
                    ++done;
                    if (progress)
                        progress(statusOf(outcomes[i], i, done, n));
                    while (ordered_ && next_emit < n &&
                           ready[next_emit]) {
                        ordered_(next_emit, outcomes[next_emit]);
                        ++next_emit;
                    }
                });
            }
            pool.drain();
        }
        entries_.clear();
        return outcomes;
    }

  private:
    struct Entry
    {
        std::string key;
        std::function<T()> fn;
    };

    JobOutcome<T>
    execute(std::size_t i)
    {
        JobOutcome<T> outcome;
        outcome.key = entries_[i].key;
        const auto start = std::chrono::steady_clock::now();
        try {
            outcome.value.emplace(entries_[i].fn());
            outcome.ok = true;
        } catch (const std::exception &e) {
            outcome.error = e.what();
        } catch (...) {
            outcome.error = "unknown exception";
        }
        outcome.wall_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        return outcome;
    }

    static JobStatus
    statusOf(const JobOutcome<T> &o, std::size_t index,
             std::size_t done, std::size_t total)
    {
        return {index, done, total, o.key, o.wall_s, o.ok, o.error};
    }

    unsigned jobs_;
    std::vector<Entry> entries_;
    std::function<void(std::size_t, const JobOutcome<T> &)> ordered_;
};

} // namespace csalt::harness

#endif // CSALT_HARNESS_JOB_RUNNER_H
