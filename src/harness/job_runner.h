/**
 * @file
 * Parallel experiment job runner.
 *
 * Every CSALT figure/sweep is a grid of independent simulations; the
 * runner executes that grid on a fixed-size thread pool. The contract
 * that makes this safe and reproducible:
 *
 *  - jobs are shared-nothing: each job builds its own System (via
 *    BuildSpec) inside the job function and tears it down before
 *    returning. StatRegistry, Rng and the workload generators are all
 *    per-System state, so nothing is shared between jobs (see
 *    docs/harness.md for the full invariant list);
 *  - any per-job randomness is seeded by deriveSeed() over a *stable
 *    job key*, never by submission or completion order, so the same
 *    grid gives the same numbers at any --jobs value;
 *  - results are collected in submission order, and the optional
 *    ordered callback streams them in that order as soon as the
 *    completed prefix allows — with jobs=1 this reduces exactly to
 *    the historical sequential loop.
 *
 * Failures are isolated: a job that throws is reported in its
 * JobOutcome (ok=false, typed error kind + message) and every other
 * job still runs to completion. Robustness layers on top
 * (docs/robustness.md):
 *
 *  - checkpoint/resume: attachJournal() records every finished job in
 *    a crc-guarded journal; with RunnerOptions::resume, jobs whose
 *    key already has an ok record replay from the journal instead of
 *    re-simulating — flowing through the same ordered callback, so
 *    stdout stays byte-identical to an uninterrupted run;
 *  - watchdog: --job-timeout / --stall-timeout cancel a runaway job
 *    cooperatively (the simulation loop heartbeats via progressTick()
 *    and polls for cancellation), marking the cell failed with
 *    kind=timeout instead of wedging the pool;
 *  - retry: --retries re-runs a failed cell with exponential backoff.
 *    Timeouts are not retried — the simulator is deterministic, so a
 *    cell that timed out once will time out again.
 */

#ifndef CSALT_HARNESS_JOB_RUNNER_H
#define CSALT_HARNESS_JOB_RUNNER_H

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "common/progress.h"
#include "harness/journal.h"
#include "harness/thread_pool.h"
#include "obs/live_export.h"

namespace csalt::harness
{

/**
 * Deterministic per-job seed: SplitMix64 finalization over an FNV-1a
 * hash of the stable @p job_key mixed with @p base_seed. Independent
 * of submission order, thread count and platform.
 */
std::uint64_t deriveSeed(std::uint64_t base_seed,
                         std::string_view job_key);

/** Worker count from $CSALT_JOBS; @p fallback when unset/invalid. */
unsigned jobsFromEnv(unsigned fallback = 1);

/**
 * $CSALT_LIVE_DIR, or empty when per-job live export is off. When
 * set, the runner installs a per-thread live-region path
 * ($CSALT_LIVE_DIR/<sanitized job key>.live) around every job so each
 * grid cell's System publishes its own attachable region.
 */
std::string liveDirFromEnv();

/**
 * Filename-safe rendering of a job key: [^A-Za-z0-9._-] -> '_', plus
 * "-<8 hex>" of the raw key so keys that only differ in replaced
 * characters ("a/b" vs "a_b") still map to distinct file names.
 */
std::string sanitizeJobKey(std::string_view key);

/**
 * Consume a `--jobs N` / `--jobs=N` flag from argv (compacting the
 * array and decrementing @p argc). Returns the requested worker
 * count; without the flag, falls back to $CSALT_JOBS, then 1.
 * fatal() on a malformed or zero value.
 */
unsigned parseJobsFlag(int &argc, char **argv);

/** Execution knobs shared by every grid tool/bench. */
struct RunnerOptions
{
    unsigned jobs = 1;             //!< worker threads
    unsigned retries = 0;          //!< extra attempts per failed job
    double retry_backoff_s = 0.25; //!< first backoff; doubles per retry
    double job_timeout_s = 0.0;    //!< hard per-job wall clock; 0 = off
    double stall_timeout_s = 0.0;  //!< max time without progress; 0 = off
    bool resume = false;           //!< replay ok cells from the journal
    bool fresh = false;            //!< discard any existing journal
};

/**
 * Consume every runner flag from argv: --jobs N, --retries N,
 * --retry-backoff S, --job-timeout S, --stall-timeout S, --resume,
 * --fresh. fatal() on malformed values or --resume with --fresh.
 */
RunnerOptions parseRunnerFlags(int &argc, char **argv);

/** Progress snapshot passed to the progress callback. */
struct JobStatus
{
    std::size_t index; //!< submission index of the finished job
    std::size_t done;  //!< jobs finished so far (including this one)
    std::size_t total;
    const std::string &key;
    double wall_s;
    bool ok;
    const std::string &error; //!< empty when ok
    bool from_journal;        //!< replayed from a resume journal
};

using ProgressFn = std::function<void(const JobStatus &)>;

/** Default progress reporter: one stderr line per finished job. */
ProgressFn stderrProgress();

/** Result slot for one job, in submission order. */
template <typename T>
struct JobOutcome
{
    std::string key;
    bool ok = false;
    std::string error;      //!< what() of the escaped exception
    std::string error_kind; //!< errorKindName(), or "exception"
    double wall_s = 0.0;
    unsigned attempts = 0;    //!< executions (0 when replayed)
    bool from_journal = false;
    std::optional<T> value; //!< engaged iff ok
};

/** Number of failed outcomes (the tools' exit-code source). */
template <typename T>
std::size_t
countFailures(const std::vector<JobOutcome<T>> &outcomes)
{
    std::size_t failed = 0;
    for (const auto &o : outcomes)
        failed += !o.ok;
    return failed;
}

/**
 * Print one row per failed job (key, error kind, message) to @p out.
 * No output when everything succeeded.
 */
template <typename T>
void
printFailureTable(const std::vector<JobOutcome<T>> &outcomes,
                  std::FILE *out = stderr)
{
    const std::size_t failed = countFailures(outcomes);
    if (!failed)
        return;
    std::fprintf(out, "\n%zu of %zu jobs failed:\n", failed,
                 outcomes.size());
    std::fprintf(out, "  %-36s %-10s %s\n", "key", "kind", "error");
    for (const auto &o : outcomes) {
        if (o.ok)
            continue;
        std::fprintf(out, "  %-36s %-10s %s\n", o.key.c_str(),
                     o.error_kind.empty() ? "exception"
                                          : o.error_kind.c_str(),
                     o.error.c_str());
    }
}

/**
 * Value (de)serialisation for the resume journal. encode() must emit
 * a *single-line* JSON value that decode() restores exactly — the
 * resumed numbers must be bit-identical to the originals (use
 * obs::writeJsonNumber, which round-trips doubles faithfully).
 */
template <typename T>
struct JournalCodec
{
    std::function<std::string(const T &)> encode;
    std::function<Expected<T>(std::string_view)> decode;
};

/**
 * Cooperative per-job watchdog. Workers attach their ProgressToken
 * while executing; a monitor thread cancels any job that exceeds the
 * hard timeout or stops ticking for the stall window. Cancellation
 * is cooperative: the job observes it at its next progress poll and
 * raises a typed timeout error.
 */
class Watchdog
{
  public:
    Watchdog(double job_timeout_s, double stall_timeout_s);
    ~Watchdog();

    bool enabled() const;

    void attach(std::size_t index, ProgressToken *token);
    void detach(std::size_t index);

  private:
    struct Entry
    {
        ProgressToken *token;
        std::chrono::steady_clock::time_point start;
        std::uint64_t last_ticks;
        std::chrono::steady_clock::time_point last_change;
    };

    void loop();

    double job_timeout_s_;
    double stall_timeout_s_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::map<std::size_t, Entry> entries_;
    std::thread thread_;
};

/**
 * Shared-nothing job grid executor. Typical use:
 *
 *   JobRunner<RunMetrics> runner(options);
 *   for (cell : grid)
 *       runner.add(cell.key(), [cell] { return simulate(cell); });
 *   auto outcomes = runner.run(stderrProgress());
 *
 * With jobs==1 everything executes inline on the calling thread in
 * submission order (the exact historical sequential behaviour);
 * otherwise a ThreadPool dispatches jobs FIFO and the results are
 * still returned in submission order.
 */
template <typename T>
class JobRunner
{
  public:
    /** @p jobs worker threads; 1 = sequential inline execution. */
    explicit JobRunner(unsigned jobs = 1) { opts_.jobs = jobs ? jobs : 1; }

    explicit JobRunner(const RunnerOptions &opts) : opts_(opts)
    {
        if (!opts_.jobs)
            opts_.jobs = 1;
    }

    /** Queue a job. @p key must be stable and unique per job. */
    std::size_t
    add(std::string key, std::function<T()> fn)
    {
        entries_.push_back({std::move(key), std::move(fn)});
        return entries_.size() - 1;
    }

    std::size_t size() const { return entries_.size(); }
    unsigned workerCount() const { return opts_.jobs; }
    const RunnerOptions &options() const { return opts_; }

    /**
     * Record every finished job in @p journal (not owned) and, with
     * RunnerOptions::resume, replay ok-journaled keys instead of
     * executing them. Failed journal records always re-run.
     */
    void
    attachJournal(Journal *journal, JournalCodec<T> codec)
    {
        journal_ = journal;
        codec_ = std::move(codec);
    }

    /**
     * Stream outcomes in submission order: invoked for job i only
     * once jobs 0..i-1 have all been emitted. Under jobs=1 this fires
     * immediately after each job, interleaving exactly like the old
     * sequential harness loops.
     */
    void
    setOrderedCallback(
        std::function<void(std::size_t, const JobOutcome<T> &)> cb)
    {
        ordered_ = std::move(cb);
    }

    /**
     * Execute every queued job; outcomes indexed by submission order.
     * The queue is consumed: run() may be called only once.
     */
    std::vector<JobOutcome<T>>
    run(ProgressFn progress = {})
    {
        const std::size_t n = entries_.size();
        std::vector<JobOutcome<T>> outcomes(n);
        std::vector<char> prefilled(n, 0);
        std::size_t n_prefilled = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (replayFromJournal(i, outcomes[i])) {
                prefilled[i] = 1;
                ++n_prefilled;
            }
        }

        Watchdog watchdog(opts_.job_timeout_s, opts_.stall_timeout_s);
        watchdog_ = &watchdog;

        if (opts_.jobs == 1 || n - n_prefilled <= 1) {
            for (std::size_t i = 0; i < n; ++i) {
                if (!prefilled[i]) {
                    outcomes[i] = execute(i);
                    record(outcomes[i]);
                }
                if (progress)
                    progress(statusOf(outcomes[i], i, i + 1, n));
                if (ordered_)
                    ordered_(i, outcomes[i]);
            }
            finish();
            return outcomes;
        }

        std::mutex mutex;
        std::size_t done = n_prefilled;
        std::size_t next_emit = 0;
        std::vector<char> ready = prefilled;
        // Journal replays emit before the pool starts: their ordered
        // prefix (and any later replayed cell, once the prefix
        // completes) interleaves exactly as an uninterrupted run.
        if (progress) {
            std::size_t seen = 0;
            for (std::size_t i = 0; i < n; ++i)
                if (prefilled[i])
                    progress(statusOf(outcomes[i], i, ++seen, n));
        }
        while (ordered_ && next_emit < n && ready[next_emit]) {
            ordered_(next_emit, outcomes[next_emit]);
            ++next_emit;
        }
        {
            ThreadPool pool(static_cast<unsigned>(
                std::min<std::size_t>(opts_.jobs, n - n_prefilled)));
            for (std::size_t i = 0; i < n; ++i) {
                if (prefilled[i])
                    continue;
                pool.post([&, i] {
                    JobOutcome<T> outcome = execute(i);
                    record(outcome);
                    std::lock_guard<std::mutex> lock(mutex);
                    outcomes[i] = std::move(outcome);
                    ready[i] = 1;
                    ++done;
                    if (progress)
                        progress(statusOf(outcomes[i], i, done, n));
                    while (ordered_ && next_emit < n &&
                           ready[next_emit]) {
                        ordered_(next_emit, outcomes[next_emit]);
                        ++next_emit;
                    }
                });
            }
            pool.drain();
        }
        finish();
        return outcomes;
    }

  private:
    struct Entry
    {
        std::string key;
        std::function<T()> fn;
    };

    /** Load outcome @p i from the resume journal; false = execute. */
    bool
    replayFromJournal(std::size_t i, JobOutcome<T> &outcome)
    {
        if (!journal_ || !opts_.resume || !codec_.decode)
            return false;
        const JournalRecord *rec = journal_->lookup(entries_[i].key);
        if (!rec || !rec->ok || rec->value_json.empty())
            return false;
        Expected<T> decoded = codec_.decode(rec->value_json);
        if (!decoded) {
            warn("journal record for '" + entries_[i].key +
                 "' does not decode (" + decoded.error().message +
                 "); re-running the cell");
            return false;
        }
        outcome.key = entries_[i].key;
        outcome.ok = true;
        outcome.wall_s = rec->wall_s;
        outcome.from_journal = true;
        outcome.value.emplace(std::move(decoded).take());
        return true;
    }

    /** Journal one freshly executed outcome. */
    void
    record(const JobOutcome<T> &outcome)
    {
        if (!journal_ || !journal_ok_)
            return;
        JournalRecord rec;
        rec.key = outcome.key;
        rec.ok = outcome.ok;
        rec.error = outcome.error;
        rec.error_kind = outcome.error_kind;
        rec.wall_s = outcome.wall_s;
        if (outcome.ok && codec_.encode)
            rec.value_json = codec_.encode(*outcome.value);
        Status status = journal_->append(rec);
        if (!status.ok()) {
            warn("disabling job journal: " +
                 oneLine(status.error()));
            journal_ok_ = false;
        }
    }

    void
    finish()
    {
        entries_.clear();
        watchdog_ = nullptr;
        if (journal_ && journal_ok_) {
            Status status = journal_->finalize();
            if (!status.ok())
                warn("journal finalize failed: " +
                     oneLine(status.error()));
        }
    }

    JobOutcome<T>
    execute(std::size_t i)
    {
        JobOutcome<T> outcome;
        outcome.key = entries_[i].key;
        const auto start = std::chrono::steady_clock::now();
        double backoff = opts_.retry_backoff_s;
        for (unsigned attempt = 0;; ++attempt) {
            outcome.attempts = attempt + 1;
            ProgressToken token;
            if (watchdog_ && watchdog_->enabled())
                watchdog_->attach(i, &token);
            const std::string live_dir = liveDirFromEnv();
            if (!live_dir.empty())
                obs::setThreadLiveExportPath(
                    live_dir + "/" + sanitizeJobKey(outcome.key) +
                    ".live");
            setProgressToken(&token);
            bool failed = false;
            bool retryable = true;
            try {
                outcome.value.emplace(entries_[i].fn());
                outcome.ok = true;
                outcome.error.clear();
                outcome.error_kind.clear();
            } catch (const CsaltError &e) {
                failed = true;
                outcome.error = e.what();
                outcome.error_kind = errorKindName(e.error().kind);
                // Timeouts are deterministic here; retrying would
                // just burn another --job-timeout window.
                retryable = e.error().kind != ErrorKind::timeout &&
                            e.error().kind != ErrorKind::cancelled;
            } catch (const std::exception &e) {
                failed = true;
                outcome.error = e.what();
                outcome.error_kind = "exception";
            } catch (...) {
                failed = true;
                outcome.error = "unknown exception";
                outcome.error_kind = "exception";
            }
            setProgressToken(nullptr);
            if (!live_dir.empty())
                obs::setThreadLiveExportPath({});
            if (watchdog_ && watchdog_->enabled())
                watchdog_->detach(i);
            if (!failed || !retryable || attempt >= opts_.retries)
                break;
            if (backoff > 0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
            backoff *= 2;
        }
        outcome.wall_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        return outcome;
    }

    static JobStatus
    statusOf(const JobOutcome<T> &o, std::size_t index,
             std::size_t done, std::size_t total)
    {
        return {index,    done, total,   o.key,
                o.wall_s, o.ok, o.error, o.from_journal};
    }

    RunnerOptions opts_;
    std::vector<Entry> entries_;
    std::function<void(std::size_t, const JobOutcome<T> &)> ordered_;
    Journal *journal_ = nullptr;
    JournalCodec<T> codec_;
    bool journal_ok_ = true;
    Watchdog *watchdog_ = nullptr;
};

} // namespace csalt::harness

#endif // CSALT_HARNESS_JOB_RUNNER_H
