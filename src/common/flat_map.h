/**
 * @file
 * Open-addressing hash map for the functional-translation hot path.
 *
 * std::unordered_map costs two dependent pointer loads per find
 * (bucket array, then node) plus a modulo by a prime; on the
 * per-access mappingOf/hostTranslate path that is the single largest
 * host-side overhead in the simulator (see docs/performance.md).
 * FlatMap64 stores key/value slots in one contiguous power-of-two
 * array probed linearly from a Fibonacci-hashed start index: a find
 * is one multiply, one shift and (almost always) one cache-line
 * touch.
 *
 * Deliberately minimal — exactly what the address-space maps need:
 *  - keys are uint64 and must never equal kEmptyKey (~0); VPNs and
 *    page numbers are < 2^52, so the sentinel is unreachable
 *  - no erase (demand paging only ever adds mappings)
 *  - values are trivially copyable
 */

#ifndef CSALT_COMMON_FLAT_MAP_H
#define CSALT_COMMON_FLAT_MAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.h"

namespace csalt
{

/** Append-only open-addressing map keyed by uint64 (no erase). */
template <typename Value>
class FlatMap64
{
  public:
    /** Reserved key marking an empty slot. */
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    explicit FlatMap64(std::size_t initial_capacity = 1024)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.assign(cap, Slot{});
        mask_ = cap - 1;
    }

    /** @return the value for @p key, or nullptr when absent. */
    const Value *
    find(std::uint64_t key) const
    {
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask_) {
            const Slot &s = slots_[i];
            if (s.key == key)
                return &s.value;
            if (s.key == kEmptyKey)
                return nullptr;
        }
    }

    /**
     * Value slot for @p key, inserted default-constructed when
     * absent. The reference is invalidated by the next insert.
     */
    Value &
    operator[](std::uint64_t key)
    {
        if (key == kEmptyKey)
            panic("FlatMap64: reserved key");
        if ((count_ + 1) * 4 > slots_.size() * 3)
            grow();
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (s.key == key)
                return s.value;
            if (s.key == kEmptyKey) {
                s.key = key;
                ++count_;
                return s.value;
            }
        }
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /**
     * Checkpoint the table verbatim — capacity and slot placement
     * included — so a restored map is byte-identical in layout (probe
     * sequences, growth points) to the saved one. @p put/@p get
     * serialize one Value (values are POD aggregates the caller
     * knows how to encode field-wise).
     */
    template <class Sink, class PutValue>
    void
    saveState(Sink &s, PutValue &&put) const
    {
        s.putU64(slots_.size());
        s.putU64(count_);
        for (const Slot &slot : slots_) {
            s.putU64(slot.key);
            if (slot.key != kEmptyKey)
                put(s, slot.value);
        }
    }

    template <class Src, class GetValue>
    void
    loadState(Src &d, GetValue &&get)
    {
        const std::uint64_t cap = d.getU64();
        if (cap < 16 || (cap & (cap - 1)) != 0)
            d.fail("FlatMap64 capacity must be a power of two >= 16");
        const std::uint64_t count = d.getU64();
        slots_.assign(cap, Slot{});
        mask_ = cap - 1;
        count_ = 0;
        for (auto &slot : slots_) {
            slot.key = d.getU64();
            if (slot.key != kEmptyKey) {
                slot.value = get(d);
                ++count_;
            }
        }
        if (count_ != count)
            d.fail("FlatMap64 occupied-slot count mismatch");
    }

  private:
    struct Slot
    {
        std::uint64_t key = kEmptyKey;
        Value value{};
    };

    /** Fibonacci hash: spreads sequential VPNs across the table. */
    std::size_t
    indexOf(std::uint64_t key) const
    {
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ULL) >> 32) &
               mask_;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        mask_ = slots_.size() - 1;
        for (const Slot &s : old) {
            if (s.key == kEmptyKey)
                continue;
            for (std::size_t i = indexOf(s.key);;
                 i = (i + 1) & mask_) {
                if (slots_[i].key == kEmptyKey) {
                    slots_[i] = s;
                    break;
                }
            }
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t count_ = 0;
};

} // namespace csalt

#endif // CSALT_COMMON_FLAT_MAP_H
