#include "common/atomic_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <unistd.h>

namespace csalt
{

namespace
{

Error
ioError(std::string message, const std::string &path)
{
    return makeError(ErrorKind::io,
                     message + ": " + std::strerror(errno), path,
                     "check free space and directory permissions");
}

} // namespace

std::string
atomicTmpPath(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid());
}

Status
commitFileAtomic(const std::string &path)
{
    const std::string tmp = atomicTmpPath(path);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return ioError("rename failed", path);
    return {};
}

Status
writeFileAtomic(const std::string &path, const std::string &content,
                bool crash_before_rename)
{
    const std::string tmp = atomicTmpPath(path);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return ioError("cannot open tmp file for writing", tmp);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return ioError("short write to tmp file", tmp);
        }
    }
    if (crash_before_rename) {
        // Simulated kill between write and rename: the destination
        // must still hold its previous (complete) contents.
        return {};
    }
    if (Status st = commitFileAtomic(path); !st.ok()) {
        std::remove(tmp.c_str());
        return st;
    }
    return {};
}

} // namespace csalt
