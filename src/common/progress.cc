#include "common/progress.h"

#include "common/error.h"

namespace csalt
{

namespace
{

thread_local ProgressToken *tls_token = nullptr;

} // namespace

void
setProgressToken(ProgressToken *token)
{
    tls_token = token;
}

ProgressToken *
progressToken()
{
    return tls_token;
}

void
raiseCancelled()
{
    std::string reason = "job cancelled";
    if (ProgressToken *t = progressToken()) {
        std::string r = t->cancelReason();
        if (!r.empty())
            reason = std::move(r);
    }
    raise(makeError(ErrorKind::timeout, std::move(reason), "watchdog",
                    "raise --job-timeout / --stall-timeout, or retry "
                    "with --retries"));
}

} // namespace csalt
