/**
 * @file
 * Cooperative progress heartbeat + cancellation for watchdogged jobs.
 *
 * Threads cannot be killed safely, so the watchdog works
 * cooperatively: the job runner installs a ProgressToken for the
 * worker thread, the simulation loop calls progressTick() once per
 * retired instruction batch and polls progressCancelled() cheaply;
 * the monitor thread watches the tick counter from outside and flips
 * the cancel flag when the job exceeds its hard timeout or stops
 * making progress. The loop then raises a typed timeout error, which
 * the runner catches like any other per-job failure.
 */

#ifndef CSALT_COMMON_PROGRESS_H
#define CSALT_COMMON_PROGRESS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace csalt
{

/** Shared state between one worker thread and the watchdog. */
class ProgressToken
{
  public:
    /** Record forward progress (relaxed; hot path). */
    void
    tick(std::uint64_t n = 1)
    {
        ticks_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    ticks() const
    {
        return ticks_.load(std::memory_order_relaxed);
    }

    /** Ask the worker to stop at its next poll point. */
    void
    requestCancel(std::string reason)
    {
        // Publish the reason before the flag so the worker always
        // sees a complete reason once it observes cancelled().
        {
            std::lock_guard<std::mutex> lock(mu_);
            reason_ = std::move(reason);
        }
        cancelled_.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

    std::string
    cancelReason() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return reason_;
    }

  private:
    std::atomic<std::uint64_t> ticks_{0};
    std::atomic<bool> cancelled_{false};
    mutable std::mutex mu_;
    std::string reason_;
};

/**
 * Install @p token as the calling thread's progress token (nullptr to
 * clear). The runner installs before the job body and clears after.
 */
void setProgressToken(ProgressToken *token);

/** The calling thread's token, or nullptr outside a watchdogged job. */
ProgressToken *progressToken();

/** Record progress on the calling thread's token, if any. */
inline void
progressTick(std::uint64_t n = 1)
{
    if (ProgressToken *t = progressToken())
        t->tick(n);
}

/** Has the watchdog asked the calling thread to stop? */
inline bool
progressCancelled()
{
    ProgressToken *t = progressToken();
    return t && t->cancelled();
}

/**
 * Throw the calling thread's cancellation as a typed timeout error.
 * Call only when progressCancelled() is true.
 */
[[noreturn]] void raiseCancelled();

} // namespace csalt

#endif // CSALT_COMMON_PROGRESS_H
