/**
 * @file
 * Central configuration structures with the paper's Table 2 defaults.
 *
 * Every experiment builds a SystemParams, tweaks the fields under
 * study (translation scheme, partition policy, context count, epoch
 * length, context-switch interval) and hands it to SystemBuilder.
 *
 * Time scaling: the paper switches contexts every 10 ms at 4 GHz
 * (40 M cycles) over 10 B instructions. We preserve the *ratios* of
 * all time parameters while scaling absolute durations down by
 * kTimeScale so a full sweep runs in seconds (see DESIGN.md §2).
 */

#ifndef CSALT_COMMON_CONFIG_H
#define CSALT_COMMON_CONFIG_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace csalt
{

/**
 * Time-scale factor: all durations (and access-count-based epochs)
 * shrink by this factor relative to the paper so full sweeps run in
 * seconds while every ratio between intervals is preserved.
 */
inline constexpr std::uint64_t kTimeScale = 100;

/** Cycles per "paper millisecond" after time scaling (real: 4 M/ms). */
inline constexpr Cycles kCyclesPerPaperMs = 4'000'000 / kTimeScale;

/** Scaled equivalent of a paper epoch length in cache accesses. */
constexpr std::uint64_t
scaledEpoch(std::uint64_t paper_accesses)
{
    return paper_accesses / kTimeScale;
}

/** Cache replacement policy (paper §3.4; rrip: related work §6). */
enum class ReplacementKind : std::uint8_t
{
    trueLru, //!< exact LRU recency stack
    nru,     //!< not-recently-used single bit
    btPlru,  //!< binary-tree pseudo-LRU
    rrip,    //!< DRRIP (set-dueling SRRIP/BRRIP, Jaleel et al.)
};

/** Cache insertion policy; DIP is the prior-work baseline (Fig. 13). */
enum class InsertionKind : std::uint8_t
{
    mru, //!< conventional insert at MRU
    dip, //!< dynamic insertion (set-dueling LRU vs BIP)
};

/** Which translation machinery services L2 TLB misses. */
enum class TranslationKind : std::uint8_t
{
    conventional, //!< L1-L2 TLBs + page walk (baseline)
    pomTlb,       //!< adds the 16MB in-memory L3 TLB [Ryoo et al.]
    tsb,          //!< software translation storage buffer [SPARC]
    victima,      //!< TLB entries in L2/L3 data blocks [MICRO'23]
    pcax,         //!< PC-indexed translation prediction
};

/** Cache partitioning policy between data and translation lines. */
enum class PartitionPolicy : std::uint8_t
{
    none,       //!< unpartitioned (POM-TLB baseline behaviour)
    staticHalf, //!< fixed 50/50 split (static baseline, §5.1 fn. 6)
    csaltD,     //!< dynamic marginal-utility partitioning (§3.1)
    csaltCD,    //!< criticality-weighted dynamic partitioning (§3.2)
};

/** Human-readable name for a PartitionPolicy. */
const char *partitionPolicyName(PartitionPolicy p);

/** Human-readable name for a TranslationKind. */
const char *translationKindName(TranslationKind t);

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size_bytes = 0;
    unsigned ways = 1;
    Cycles latency = 1; //!< total load-to-use hit latency
    ReplacementKind repl = ReplacementKind::trueLru;
    InsertionKind insertion = InsertionKind::mru;

    std::uint64_t numLines() const { return size_bytes / kLineSize; }
    std::uint64_t numSets() const { return numLines() / ways; }
};

/** Geometry and timing of one TLB level. */
struct TlbParams
{
    unsigned entries = 0;
    unsigned ways = 1;
    Cycles latency = 1;
};

/** MMU paging-structure caches (Intel PSC; paper Table 2). */
struct MmuCacheParams
{
    unsigned pml4e_entries = 2;
    unsigned pdpe_entries = 4;
    unsigned pde_entries = 32;
    Cycles latency = 2;
    /** Nested (gPA->hPA) walk cache used during 2-D walks. */
    unsigned nested_entries = 16;
};

/**
 * DRAM channel timing, pre-converted to core cycles.
 *
 * A single-rank, multi-bank open-page model: per-bank row buffer with
 * hit (tCAS), miss (tRP+tRCD+tCAS) and cold (tRCD+tCAS) latencies,
 * plus per-access data-burst occupancy of the shared channel.
 */
struct DramParams
{
    std::string name = "dram";
    unsigned banks = 16;
    std::uint64_t row_bytes = 2048;
    Cycles tcas = 53;  //!< column access
    Cycles trcd = 53;  //!< row activate
    Cycles trp = 53;   //!< precharge
    Cycles burst = 15; //!< channel occupancy per 64B line
    /**
     * Controller pipeline + bus turnaround latency added to every
     * access (pure latency, not occupancy).
     */
    Cycles overhead = 80;
};

/** The memory-mapped large L3 TLB (POM-TLB). */
struct PomTlbParams
{
    std::uint64_t size_bytes = 16ull << 20;
    unsigned ways = 4;           //!< entries per 64B line-set
    std::uint64_t entry_bytes = 16;
};

/** Software translation storage buffer baseline (Fig. 13). */
struct TsbParams
{
    std::uint64_t entries_per_context = 128 * 1024;
    unsigned lookups = 2; //!< dependent cacheable probes per miss
};

/**
 * Victima-style cache-resident TLB entries [Kanellopoulos et al.,
 * MICRO'23]: L2 TLB victims are re-inserted as translation lines in
 * the L2/L3 data arrays, reusing blocks the occupancy machinery shows
 * as underutilized. The functional store is a set-associative array
 * of packed entries whose sets alias onto cache lines in a dedicated
 * physical range, so residency and timing come from the ordinary
 * cache model.
 */
struct VictimaParams
{
    std::uint64_t size_bytes = 4ull << 20;
    unsigned ways = 4;    //!< entries per 64B line-set
    std::uint64_t entry_bytes = 16;
    /**
     * Victims are only cached while translation lines occupy at most
     * this fraction of the L2/L3 (the underutilization gate).
     */
    double max_translation_occupancy = 0.5;
};

/**
 * PC-indexed translation predictor (PCAX-style): a direct-mapped
 * table of recent {frame, page size} results indexed by a hash of the
 * access PC, probed alongside the L2 TLB so a correct prediction
 * bypasses the L2-miss translation machinery.
 */
struct PcaxParams
{
    unsigned entries = 4096; //!< direct-mapped, power of two
    Cycles latency = 2;      //!< probe cost charged on prediction
};

/** CSALT partition controller configuration (one per cache). */
struct PartitionParams
{
    PartitionPolicy policy = PartitionPolicy::none;
    /** Paper default: 256K accesses, divided by the time scale. */
    std::uint64_t epoch_accesses = scaledEpoch(256 * 1024);
    unsigned min_ways_per_type = 1;
    /** staticHalf only: data-way count; 0 means an even split. */
    unsigned static_data_ways = 0;
};

/** Sizes of the simulated physical address ranges. */
struct MemRangeParams
{
    std::uint64_t data_bytes = 8ull << 30; //!< application frames
    std::uint64_t pt_bytes = 1ull << 30;   //!< page tables + TSBs
};

/** Core timing model. */
struct CoreParams
{
    double base_cpi = 0.5;  //!< CPI of non-memory work (wide OoO)
    double mlp = 4.0;       //!< overlap divisor for data-miss latency
    Cycles cs_penalty = 2000; //!< direct context-switch cost (regs, OS)
};

/** Full system configuration. */
struct SystemParams
{
    unsigned num_cores = 8;
    unsigned contexts_per_core = 2;
    /** Context-switch interval in cycles (10 paper-ms by default). */
    Cycles cs_interval = 10 * kCyclesPerPaperMs;
    bool virtualized = true;
    TranslationKind translation = TranslationKind::pomTlb;

    CacheParams l1d;
    CacheParams l2; //!< private per-core
    CacheParams l3; //!< shared
    TlbParams l1tlb_4k;
    TlbParams l1tlb_2m;
    TlbParams l2tlb;
    MmuCacheParams psc;
    DramParams ddr;     //!< off-chip DDR4-2133
    DramParams stacked; //!< die-stacked DRAM holding the POM-TLB
    PomTlbParams pom;
    TsbParams tsb;
    VictimaParams victima;
    PcaxParams pcax;
    PartitionParams l2_partition;
    PartitionParams l3_partition;
    CoreParams core;
    MemRangeParams ranges;

    /** Address spaces with reserved TSB arrays. */
    unsigned max_asids = 16;

    /** Fraction of pages the guest OS backs with 2MB pages (THP). */
    double huge_page_fraction = 0.25;

    /**
     * Page-table depth: 4 (default x86-64) or 5 (LA57; the paper
     * notes 5-level paging "will only strengthen the motivation").
     */
    int page_table_levels = 4;

    std::uint64_t seed = 1;
};

/** Paper Table 2 configuration (8-core Skylake-like host). */
SystemParams defaultParams();

/**
 * Check structural invariants (power-of-two geometry, nonzero sizes).
 * Raises a CsaltError (kind=config) describing the first violation,
 * so a parallel sweep isolates a bad grid cell instead of exiting.
 */
void validate(const SystemParams &params);

} // namespace csalt

#endif // CSALT_COMMON_CONFIG_H
