/**
 * @file
 * Crash-safe file output: write to a sibling tmp file, then rename.
 *
 * rename(2) within one directory is atomic on POSIX, so readers (and
 * a resumed run) either see the complete previous file or the
 * complete new one — never a torn half-write from a killed process.
 */

#ifndef CSALT_COMMON_ATOMIC_IO_H
#define CSALT_COMMON_ATOMIC_IO_H

#include <string>

#include "common/error.h"

namespace csalt
{

/**
 * Atomically replace @p path with @p content via `<path>.tmp.<pid>` +
 * rename. On failure the tmp file is removed and the original file
 * (if any) is left untouched.
 *
 * Test hook: @p crash_before_rename aborts after the tmp write but
 * before the rename, simulating a kill at the worst moment.
 */
Status writeFileAtomic(const std::string &path,
                       const std::string &content,
                       bool crash_before_rename = false);

/**
 * The sibling tmp path (`<path>.tmp.<pid>`) writeFileAtomic writes
 * through. Streaming writers (the telemetry trace) open this path
 * directly and commit with commitFileAtomic() when done, so a killed
 * process never leaves a torn file at @p path.
 */
std::string atomicTmpPath(const std::string &path);

/**
 * Final commit for a file streamed into atomicTmpPath(@p path):
 * renames the tmp sibling onto @p path. Typed io error when the tmp
 * file is missing or the rename fails (the tmp file is left behind
 * for diagnosis in that case).
 */
Status commitFileAtomic(const std::string &path);

} // namespace csalt

#endif // CSALT_COMMON_ATOMIC_IO_H
