/**
 * @file
 * Crash-safe file output: write to a sibling tmp file, then rename.
 *
 * rename(2) within one directory is atomic on POSIX, so readers (and
 * a resumed run) either see the complete previous file or the
 * complete new one — never a torn half-write from a killed process.
 */

#ifndef CSALT_COMMON_ATOMIC_IO_H
#define CSALT_COMMON_ATOMIC_IO_H

#include <string>

#include "common/error.h"

namespace csalt
{

/**
 * Atomically replace @p path with @p content via `<path>.tmp.<pid>` +
 * rename. On failure the tmp file is removed and the original file
 * (if any) is left untouched.
 *
 * Test hook: @p crash_before_rename aborts after the tmp write but
 * before the rename, simulating a kill at the worst moment.
 */
Status writeFileAtomic(const std::string &path,
                       const std::string &content,
                       bool crash_before_rename = false);

} // namespace csalt

#endif // CSALT_COMMON_ATOMIC_IO_H
