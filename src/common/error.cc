#include "common/error.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace csalt
{

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::config:
        return "config";
    case ErrorKind::usage:
        return "usage";
    case ErrorKind::io:
        return "io";
    case ErrorKind::parse:
        return "parse";
    case ErrorKind::build:
        return "build";
    case ErrorKind::timeout:
        return "timeout";
    case ErrorKind::cancelled:
        return "cancelled";
    case ErrorKind::invariant:
        return "invariant";
    case ErrorKind::internal:
        return "internal";
    }
    return "unknown";
}

Error
makeError(ErrorKind kind, std::string message, std::string context,
          std::string hint, std::source_location where)
{
    Error err;
    err.kind = kind;
    err.message = std::move(message);
    err.context = std::move(context);
    err.hint = std::move(hint);
    err.where = where;
    return err;
}

std::string
oneLine(const Error &err)
{
    std::ostringstream os;
    os << "error[" << errorKindName(err.kind) << "]";
    if (!err.context.empty())
        os << " " << err.context << ":";
    os << " " << err.message;
    if (!err.hint.empty())
        os << " (hint: " << err.hint << ")";
    return os.str();
}

std::string
describe(const Error &err)
{
    std::ostringstream os;
    os << "error[" << errorKindName(err.kind) << "]: ";
    if (!err.context.empty())
        os << err.context << ": ";
    os << err.message << "\n";
    os << "  where: " << err.where.file_name() << ":"
       << err.where.line() << "\n";
    if (!err.hint.empty())
        os << "  hint:  " << err.hint << "\n";
    return os.str();
}

void
fatal(const Error &err)
{
    const std::string text = describe(err);
    // Single write so parallel-runner output never interleaves.
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
    std::exit(1);
}

} // namespace csalt
