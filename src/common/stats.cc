#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace csalt
{

double
mpki(std::uint64_t misses, std::uint64_t instructions)
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(misses) /
           static_cast<double>(instructions);
}

double
hitRate(std::uint64_t hits, std::uint64_t misses)
{
    const auto total = hits + misses;
    if (total == 0)
        return 0.0;
    return static_cast<double>(hits) / static_cast<double>(total);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

void
Accumulator::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void
TimeSeries::push(double time, double value)
{
    points_.push_back({time, value});
}

double
TimeSeries::meanValue() const
{
    if (points_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : points_)
        sum += p.value;
    return sum / static_cast<double>(points_.size());
}

TimeSeries
TimeSeries::downsampled(std::size_t n) const
{
    TimeSeries out;
    if (points_.empty() || n == 0)
        return out;
    if (points_.size() <= n)
        return *this;
    const std::size_t bucket = (points_.size() + n - 1) / n;
    for (std::size_t i = 0; i < points_.size(); i += bucket) {
        const std::size_t end = std::min(i + bucket, points_.size());
        double t = 0.0;
        double v = 0.0;
        for (std::size_t j = i; j < end; ++j) {
            t += points_[j].time;
            v += points_[j].value;
        }
        const auto w = static_cast<double>(end - i);
        out.push(t / w, v / w);
    }
    return out;
}

} // namespace csalt
