/**
 * @file
 * Small deterministic random number generator.
 *
 * Workload generators must be reproducible across runs and platforms,
 * so we avoid std::mt19937's implementation-defined distributions and
 * provide explicit integer/real helpers on top of SplitMix64 /
 * xoshiro256**. All benchmarks seed their generators explicitly.
 */

#ifndef CSALT_COMMON_RNG_H
#define CSALT_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace csalt
{

/**
 * xoshiro256** generator with SplitMix64 seeding.
 *
 * Passes BigCrush; tiny state; fully deterministic given a seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's method. bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        const auto x = next();
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Checkpoint the full generator state (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        for (const auto &word : state_)
            s.putU64(word);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        for (auto &word : state_)
            word = d.getU64();
    }

    /**
     * Approximate Zipf-distributed index in [0, n) with exponent s.
     *
     * Uses the rejection-inversion free approximation
     * floor(n^(u^(1/(1-s)))) clamped to range; adequate for shaping
     * skewed page popularity in workload generators (we need the
     * qualitative skew, not an exact Zipf law).
     *
     * Exponents s <= 0 clamp to 0 (uniform over [0, n)): a negative
     * skew is meaningless for rank popularity, and before the clamp
     * the s < 0 case fell through the epsilon branch into an
     * anti-skewed distribution.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        if (n <= 1)
            return 0;
        if (s < 0.0)
            s = 0.0;
        const double u = uniform();
        // Inverse-CDF approximation of a truncated Pareto, which has
        // the same heavy-tail shape as Zipf over item ranks.
        const double one_minus_s = 1.0 - s;
        double v;
        if (one_minus_s > 1e-9 || one_minus_s < -1e-9) {
            const double nn = static_cast<double>(n);
            const double h = (std::pow(nn, one_minus_s) - 1.0) * u + 1.0;
            v = std::pow(h, 1.0 / one_minus_s) - 1.0;
        } else {
            v = std::pow(static_cast<double>(n), u) - 1.0;
        }
        auto idx = static_cast<std::uint64_t>(v);
        return idx >= n ? n - 1 : idx;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipf sampler with the per-(n, s) constants precomputed.
 *
 * Produces bit-identical draws to Rng::zipf(n, s) — same clamping,
 * same consumption of generator state — but hoists the two constants
 * (n^(1-s) - 1 and 1/(1-s)) out of the per-draw path, leaving one
 * std::pow per draw instead of two. Workload generators draw from a
 * fixed (n, s) millions of times, so the saving is material (see
 * docs/performance.md).
 */
class ZipfDist
{
  public:
    ZipfDist() = default;

    ZipfDist(std::uint64_t n, double s) : n_(n)
    {
        if (n <= 1)
            return; // draws return 0 without touching the generator
        if (s < 0.0)
            s = 0.0;
        const double one_minus_s = 1.0 - s;
        near_one_ =
            !(one_minus_s > 1e-9 || one_minus_s < -1e-9);
        if (!near_one_) {
            scale_ = std::pow(static_cast<double>(n), one_minus_s) -
                     1.0;
            inv_exp_ = 1.0 / one_minus_s;
        }
    }

    /** Next Zipf-distributed index in [0, n). */
    std::uint64_t
    operator()(Rng &rng) const
    {
        if (n_ <= 1)
            return 0;
        const double u = rng.uniform();
        double v;
        if (!near_one_)
            v = std::pow(scale_ * u + 1.0, inv_exp_) - 1.0;
        else
            v = std::pow(static_cast<double>(n_), u) - 1.0;
        auto idx = static_cast<std::uint64_t>(v);
        return idx >= n_ ? n_ - 1 : idx;
    }

  private:
    std::uint64_t n_ = 0;
    double scale_ = 0.0;
    double inv_exp_ = 0.0;
    bool near_one_ = false;
};

} // namespace csalt

#endif // CSALT_COMMON_RNG_H
