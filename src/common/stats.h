/**
 * @file
 * Statistics primitives used across the simulator.
 *
 * Modules expose raw counters; these helpers aggregate them into the
 * derived metrics the paper reports (MPKI, hit rates, geometric-mean
 * speedups, time series of partition fractions).
 */

#ifndef CSALT_COMMON_STATS_H
#define CSALT_COMMON_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace csalt
{

/** Misses-per-kilo-instruction; 0 when no instructions retired. */
double mpki(std::uint64_t misses, std::uint64_t instructions);

/** hits / (hits + misses); 0 when no accesses. */
double hitRate(std::uint64_t hits, std::uint64_t misses);

/** Geometric mean of strictly positive values; 0 on empty input. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 on empty input. */
double mean(const std::vector<double> &values);

/**
 * Running scalar summary (count/sum/min/max/mean).
 *
 * Used for distributions we only need coarse shape from, e.g. page
 * walk cycles per L2 TLB miss (Table 1).
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void add(double v);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Checkpoint support (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU64(count_);
        s.putDouble(sum_);
        s.putDouble(min_);
        s.putDouble(max_);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        count_ = d.getU64();
        sum_ = d.getDouble();
        min_ = d.getDouble();
        max_ = d.getDouble();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A sampled time series, e.g. the fraction of cache ways allocated to
 * translation entries over execution time (paper Figure 9).
 */
class TimeSeries
{
  public:
    struct Point
    {
        double time; //!< normalised or absolute time stamp
        double value;
    };

    /** Append one sample. */
    void push(double time, double value);

    const std::vector<Point> &points() const { return points_; }
    bool empty() const { return points_.empty(); }

    /** Mean of the sampled values; 0 when empty. */
    double meanValue() const;

    /**
     * Downsample to at most n points by averaging fixed-width buckets
     * (used when printing long traces in benches).
     */
    TimeSeries downsampled(std::size_t n) const;

    /** Checkpoint support (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        s.putU64(points_.size());
        for (const Point &p : points_) {
            s.putDouble(p.time);
            s.putDouble(p.value);
        }
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        const std::uint64_t n = d.getU64();
        points_.clear();
        points_.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const double time = d.getDouble();
            const double value = d.getDouble();
            points_.push_back(Point{time, value});
        }
    }

  private:
    std::vector<Point> points_;
};

} // namespace csalt

#endif // CSALT_COMMON_STATS_H
