/**
 * @file
 * Fundamental simulator types shared by every CSALT module.
 *
 * The simulator models two address spaces per virtual-machine context
 * (guest-virtual and guest-physical/host-virtual) plus a single
 * host-physical space in which caches, DRAM, page tables and the
 * POM-TLB live. All addresses are byte addresses in 64-bit space.
 */

#ifndef CSALT_COMMON_TYPES_H
#define CSALT_COMMON_TYPES_H

#include <cstdint>

namespace csalt
{

/** Byte address (virtual or physical depending on context). */
using Addr = std::uint64_t;

/** Virtual page number (address >> page shift). */
using Vpn = std::uint64_t;

/** Physical frame number. */
using Pfn = std::uint64_t;

/** Simulated clock cycles (core clock, 4 GHz by default). */
using Cycles = std::uint64_t;

/** Address-space identifier tagging TLB entries across contexts. */
using Asid = std::uint16_t;

/** An invalid / "no address" marker. */
inline constexpr Addr kInvalidAddr = ~Addr{0};

/** Base-page geometry (x86-64 4KB pages). */
inline constexpr unsigned kPageShift = 12;
inline constexpr Addr kPageSize = Addr{1} << kPageShift;

/** Huge-page geometry (x86-64 2MB pages). */
inline constexpr unsigned kHugePageShift = 21;
inline constexpr Addr kHugePageSize = Addr{1} << kHugePageShift;

/** Cache line geometry (64B lines throughout). */
inline constexpr unsigned kLineShift = 6;
inline constexpr Addr kLineSize = Addr{1} << kLineShift;

/** Page sizes supported by the TLBs and page tables. */
enum class PageSize : std::uint8_t
{
    size4K,
    size2M,
};

/** Shift amount for a PageSize. */
constexpr unsigned
pageShift(PageSize ps)
{
    return ps == PageSize::size4K ? kPageShift : kHugePageShift;
}

/** Byte size for a PageSize. */
constexpr Addr
pageBytes(PageSize ps)
{
    return Addr{1} << pageShift(ps);
}

/** Read/write flavour of a memory reference. */
enum class AccessType : std::uint8_t
{
    read,
    write,
};

/**
 * Classification of a cache line's contents.
 *
 * CSALT partitions caches between ordinary data lines and
 * "translation" lines (POM-TLB sets and page-table nodes). The
 * classification is derived from the physical address range
 * (see MemoryMap), mirroring the paper's implementation choice of
 * reading tag bits rather than storing per-line metadata.
 */
enum class LineType : std::uint8_t
{
    data,
    translation,
};

/** Name string for a LineType (for stats / debug output). */
constexpr const char *
lineTypeName(LineType t)
{
    return t == LineType::data ? "data" : "translation";
}

} // namespace csalt

#endif // CSALT_COMMON_TYPES_H
