/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration), panic() is for internal invariant violations.
 * Both print a message and terminate; neither returns.
 *
 * All entry points are thread-safe: the level is atomic, warnOnce's
 * call-site set is mutex-guarded, and every message is emitted as one
 * write so output from parallel runner jobs never interleaves within
 * a message.
 */

#ifndef CSALT_COMMON_LOG_H
#define CSALT_COMMON_LOG_H

#include <source_location>
#include <sstream>
#include <string>

namespace csalt
{

/** Verbosity levels for inform(). */
enum class LogLevel
{
    quiet,
    info,
    debug,
};

/** Global log level (default: quiet so benches print clean tables). */
LogLevel logLevel();

/** Set the global log level. */
void setLogLevel(LogLevel level);

/** Print an informational message when level <= global level. */
void inform(LogLevel level, const std::string &msg);

/** Print a warning (always shown) to stderr. */
void warn(const std::string &msg);

/**
 * Print a warning at most once per call site (keyed by file:line of
 * the caller). Use on per-access paths — e.g. per-sample telemetry
 * anomalies — where a repeated warn() would flood stderr.
 * @return true when the warning was actually printed
 */
bool warnOnce(const std::string &msg,
              std::source_location loc =
                  std::source_location::current());

/**
 * Terminate due to a user/configuration error (exit(1)).
 * @param msg description of the misconfiguration.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate due to an internal simulator bug (abort()).
 * @param msg description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Build a message from stream-formattable pieces.
 * Usage: fatal(msgOf("bad ways: ", ways));
 */
template <typename... Args>
std::string
msgOf(Args &&...args)
{
    std::ostringstream os;
    // void-cast: with an empty pack the fold is just `os`, which
    // -Werror=unused-value rejects as a no-effect statement.
    static_cast<void>((os << ... << args));
    return os.str();
}

} // namespace csalt

#endif // CSALT_COMMON_LOG_H
