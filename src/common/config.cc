#include "common/config.h"

#include "common/error.h"
#include "common/log.h"

namespace csalt
{

const char *
partitionPolicyName(PartitionPolicy p)
{
    switch (p) {
      case PartitionPolicy::none:
        return "none";
      case PartitionPolicy::staticHalf:
        return "static";
      case PartitionPolicy::csaltD:
        return "CSALT-D";
      case PartitionPolicy::csaltCD:
        return "CSALT-CD";
    }
    return "?";
}

const char *
translationKindName(TranslationKind t)
{
    switch (t) {
      case TranslationKind::conventional:
        return "conventional";
      case TranslationKind::pomTlb:
        return "POM-TLB";
      case TranslationKind::tsb:
        return "TSB";
      case TranslationKind::victima:
        return "Victima";
      case TranslationKind::pcax:
        return "PCAX";
    }
    return "?";
}

SystemParams
defaultParams()
{
    SystemParams p;

    p.l1d = {"L1D", 32ull << 10, 8, 4, ReplacementKind::trueLru,
             InsertionKind::mru};
    p.l2 = {"L2", 256ull << 10, 4, 12, ReplacementKind::trueLru,
            InsertionKind::mru};
    p.l3 = {"L3", 8ull << 20, 16, 42, ReplacementKind::trueLru,
            InsertionKind::mru};

    p.l1tlb_4k = {64, 4, 1};
    p.l1tlb_2m = {32, 4, 1};
    // Paper charges 9 cycles on the L1 TLB path and 17 on L2; we model
    // the L1 hit as pipelined (folded into base CPI) and charge the
    // paper's latencies on the miss paths.
    p.l2tlb = {1536, 12, 17};

    p.psc = MmuCacheParams{};

    // DDR4-2133: 1066 MHz bus -> 3.75 core cycles per DRAM cycle at
    // 4 GHz. 14-14-14 => ~53 core cycles each; 64B over a 64-bit DDR
    // bus = 4 bus cycles => 15 core cycles of channel occupancy;
    // ~25ns controller/queue pipeline => 100 cycles.
    p.ddr = {"DDR4", 16, 2048, 53, 53, 53, 15, 100};

    // Die-stacked DRAM: 1 GHz bus (2 GHz DDR) -> 4 core cycles per bus
    // cycle. 11-11-11 => 44 core cycles each; 64B over a 128-bit DDR
    // bus = 2 bus cycles => 8 core cycles of occupancy; a leaner
    // on-package controller => 60 cycles.
    p.stacked = {"StackedDRAM", 16, 2048, 44, 44, 44, 8, 60};

    p.pom = PomTlbParams{};
    p.tsb = TsbParams{};

    p.l2_partition = PartitionParams{};
    p.l3_partition = PartitionParams{};

    p.core = CoreParams{};
    return p;
}

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

[[noreturn]] void
raiseConfig(std::string context, std::string message,
            std::string hint = {})
{
    raise(makeError(ErrorKind::config, std::move(message),
                    std::move(context), std::move(hint)));
}

void
validateCache(const CacheParams &c)
{
    if (c.size_bytes == 0 || c.ways == 0)
        raiseConfig(c.name, "zero size or ways");
    if (c.size_bytes % (kLineSize * c.ways) != 0) {
        raiseConfig(c.name, "size not divisible by ways*line",
                    "pick a way count that divides size/64");
    }
    if (!isPow2(c.numSets())) {
        raiseConfig(c.name, "set count must be a power of two",
                    msgOf("size/(ways*64) is ", c.numSets(),
                          "; adjust size or ways"));
    }
}

void
validateTlb(const char *name, const TlbParams &t)
{
    if (t.entries == 0 || t.ways == 0 || t.entries % t.ways != 0)
        raiseConfig(name, "bad TLB geometry",
                    "entries and ways must be nonzero with "
                    "ways dividing entries");
    if (!isPow2(t.entries / t.ways))
        raiseConfig(name, "TLB set count must be a power of two",
                    msgOf("entries/ways is ", t.entries / t.ways,
                          "; adjust entries or ways"));
}

} // namespace

void
validate(const SystemParams &params)
{
    if (params.num_cores == 0)
        raiseConfig("num_cores", "must be > 0");
    if (params.contexts_per_core == 0)
        raiseConfig("contexts_per_core", "must be > 0");
    if (params.cs_interval == 0)
        raiseConfig("cs_interval", "must be > 0");

    validateCache(params.l1d);
    validateCache(params.l2);
    validateCache(params.l3);
    validateTlb("L1TLB(4K)", params.l1tlb_4k);
    validateTlb("L1TLB(2M)", params.l1tlb_2m);
    validateTlb("L2TLB", params.l2tlb);

    if (!isPow2(params.pom.size_bytes) || params.pom.ways == 0)
        raiseConfig("POM-TLB", "bad geometry",
                    "size must be a power of two with nonzero ways");
    if (params.pom.entry_bytes * params.pom.ways != kLineSize)
        raiseConfig("POM-TLB",
                    "one set must fill exactly one cache line",
                    msgOf("entry_bytes*ways must be ", kLineSize));

    if (!isPow2(params.victima.size_bytes) || params.victima.ways == 0)
        raiseConfig("Victima", "bad geometry",
                    "size must be a power of two with nonzero ways");
    if (params.victima.entry_bytes * params.victima.ways != kLineSize)
        raiseConfig("Victima",
                    "one set must fill exactly one cache line",
                    msgOf("entry_bytes*ways must be ", kLineSize));
    if (params.victima.max_translation_occupancy < 0.0 ||
        params.victima.max_translation_occupancy > 1.0)
        raiseConfig("Victima",
                    "max_translation_occupancy out of [0,1]");
    if (!isPow2(params.pcax.entries))
        raiseConfig("PCAX", "entries must be a power of two");

    if (params.huge_page_fraction < 0.0 || params.huge_page_fraction > 1.0)
        raiseConfig("huge_page_fraction", "out of [0,1]");
    if (params.page_table_levels != 4 && params.page_table_levels != 5)
        raiseConfig("page_table_levels", "must be 4 or 5");

    const auto check_part = [](const char *name, const PartitionParams &pp,
                               unsigned ways) {
        if (pp.policy == PartitionPolicy::none)
            return;
        if (pp.epoch_accesses == 0)
            raiseConfig(name, "epoch_accesses must be > 0");
        if (2 * pp.min_ways_per_type > ways)
            raiseConfig(name, "min ways exceed associativity",
                        msgOf("need 2*min_ways_per_type <= ", ways));
    };
    check_part("L2 partition", params.l2_partition, params.l2.ways);
    check_part("L3 partition", params.l3_partition, params.l3.ways);
}

} // namespace csalt
