/**
 * @file
 * Typed error reporting for recoverable failures.
 *
 * The simulator distinguishes three failure classes:
 *
 *  - csalt::Error / CsaltError: *recoverable, user-reportable*
 *    failures (bad configuration, malformed trace files, I/O
 *    problems, watchdog timeouts, invariant violations). These carry
 *    a kind, a source location and a remediation hint, and are thrown
 *    as CsaltError so the parallel job runner can isolate one failed
 *    grid cell while the tools print a structured diagnostic instead
 *    of dying mid-grid;
 *  - fatal() (common/log.h): command-line usage errors in code with
 *    no caller that could recover (prints and exits 1);
 *  - panic() (common/log.h): internal simulator bugs (aborts).
 *
 * Expected<T> is the non-throwing flavour for leaf parsing helpers:
 * either a value or an Error, checked at the call site.
 */

#ifndef CSALT_COMMON_ERROR_H
#define CSALT_COMMON_ERROR_H

#include <optional>
#include <source_location>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace csalt
{

/** What failed — selects the remediation class of a diagnostic. */
enum class ErrorKind : std::uint8_t
{
    config,    //!< invalid SystemParams / experiment configuration
    usage,     //!< bad command-line argument
    io,        //!< filesystem failure (open/read/write/rename)
    parse,     //!< malformed input data (trace file, journal, JSON)
    build,     //!< system construction failure
    timeout,   //!< watchdog-cancelled job (hard or no-progress)
    cancelled, //!< cooperatively cancelled for another reason
    invariant, //!< runtime self-check violation (paranoid mode)
    internal,  //!< unexpected internal failure
};

/** Stable lowercase name ("config", "timeout", ...). */
const char *errorKindName(ErrorKind kind);

/** One structured diagnostic. Build with makeError(). */
struct Error
{
    ErrorKind kind = ErrorKind::internal;
    std::string message; //!< what went wrong
    std::string context; //!< offending object (path, flag, key); may be empty
    std::string hint;    //!< how to fix it; may be empty
    std::source_location where = std::source_location::current();
};

/**
 * Build an Error capturing the *call site* as the source location.
 * (A plain aggregate default would capture this header instead.)
 */
Error makeError(ErrorKind kind, std::string message,
                std::string context = {}, std::string hint = {},
                std::source_location where =
                    std::source_location::current());

/** One-line rendering: "error[parse] ctx: message (hint: ...)". */
std::string oneLine(const Error &err);

/**
 * Multi-line structured rendering for tool-level reporting:
 *
 *   error[config]: l2: size not divisible by ways*line
 *     where: src/common/config.cc:96
 *     hint:  pick a power-of-two way count that divides the size
 */
std::string describe(const Error &err);

/** Exception wrapper; what() is the oneLine() rendering. */
class CsaltError : public std::runtime_error
{
  public:
    explicit CsaltError(Error err)
        : std::runtime_error(oneLine(err)), err_(std::move(err))
    {
    }

    const Error &error() const { return err_; }

  private:
    Error err_;
};

/** Throw @p err as a CsaltError. */
[[noreturn]] inline void
raise(Error err)
{
    throw CsaltError(std::move(err));
}

/**
 * Print the structured diagnostic to stderr and exit(1). For tools'
 * outermost error boundary only; library code should raise() so the
 * job runner can isolate the failure.
 */
[[noreturn]] void fatal(const Error &err);

/**
 * A value or a typed Error. Non-throwing result type for leaf
 * helpers (flag parsing, journal loading); call sites either handle
 * the error or escalate with valueOrRaise().
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {}
    Expected(Error err) : v_(std::move(err)) {}

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    const T &value() const & { return std::get<T>(v_); }
    T &value() & { return std::get<T>(v_); }
    T &&take() { return std::move(std::get<T>(v_)); }

    const Error &error() const { return std::get<Error>(v_); }

    /** The value, or throw the carried error as a CsaltError. */
    T
    valueOrRaise() &&
    {
        if (!ok())
            raise(std::move(std::get<Error>(v_)));
        return std::move(std::get<T>(v_));
    }

  private:
    std::variant<T, Error> v_;
};

/** Success-or-Error for operations without a payload. */
class [[nodiscard]] Status
{
  public:
    Status() = default;
    Status(Error err) : err_(std::move(err)) {}

    bool ok() const { return !err_.has_value(); }
    explicit operator bool() const { return ok(); }

    const Error &error() const { return *err_; }

    /** No-op on success; throws the carried error otherwise. */
    void
    okOrRaise() &&
    {
        if (err_)
            raise(std::move(*err_));
    }

  private:
    std::optional<Error> err_;
};

} // namespace csalt

#endif // CSALT_COMMON_ERROR_H
