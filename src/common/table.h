/**
 * @file
 * Aligned text-table printer used by the benchmark harnesses.
 *
 * Every bench binary prints rows in the same layout as the paper's
 * tables/figures so EXPERIMENTS.md can diff paper-vs-measured.
 */

#ifndef CSALT_COMMON_TABLE_H
#define CSALT_COMMON_TABLE_H

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace csalt
{

/**
 * A simple column-aligned table.
 *
 * Cells are strings; helpers format doubles with fixed precision.
 * Output goes to std::cout via print().
 */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    /** Begin a new row. Subsequent add() calls fill it left to right. */
    TextTable &
    row()
    {
        rows_.emplace_back();
        return *this;
    }

    /** Append a string cell to the current row. */
    TextTable &
    add(const std::string &cell)
    {
        rows_.back().push_back(cell);
        return *this;
    }

    /** Append a fixed-precision numeric cell to the current row. */
    TextTable &
    add(double value, int precision = 3)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        return add(os.str());
    }

    /** Append an integer cell to the current row. */
    TextTable &
    add(std::uint64_t value)
    {
        return add(std::to_string(value));
    }

    /** Render the table to an output stream. */
    void
    print(std::ostream &os = std::cout) const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto emit = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < width.size(); ++c) {
                const std::string &s = c < cells.size() ? cells[c] : "";
                os << std::left << std::setw(static_cast<int>(width[c]) + 2)
                   << s;
            }
            os << '\n';
        };
        emit(headers_);
        std::string rule;
        for (std::size_t c = 0; c < width.size(); ++c)
            rule += std::string(width[c], '-') + "  ";
        os << rule << '\n';
        for (const auto &r : rows_)
            emit(r);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace csalt

#endif // CSALT_COMMON_TABLE_H
