#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <utility>

namespace csalt
{

namespace
{

// The log level is read on hot paths from every job-runner worker;
// relaxed atomics keep that race-free without a lock.
std::atomic<LogLevel> g_level{LogLevel::quiet};

/**
 * Emit one message as a single write so concurrent jobs never
 * interleave within (or between the lines of) a message. fprintf of
 * one buffer is atomic per call on POSIX streams; the lock also
 * orders whole messages across threads.
 */
std::mutex g_stderr_mutex;

void
emit(const std::string &text)
{
    std::lock_guard<std::mutex> lock(g_stderr_mutex);
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
inform(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <= static_cast<int>(logLevel()))
        emit("info: " + msg + "\n");
}

void
warn(const std::string &msg)
{
    emit("warn: " + msg + "\n");
}

bool
warnOnce(const std::string &msg, std::source_location loc)
{
    // Keyed by call site, not message text: a per-access warning with
    // a varying payload ("bad addr 0x1234…") still prints only once.
    // Guarded: warnOnce is reachable from every job-runner worker.
    static std::mutex mutex;
    static std::set<std::pair<std::string, unsigned>> seen;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!seen.emplace(loc.file_name(), loc.line()).second)
            return false;
    }
    emit(msgOf("warn: ", msg, " (further warnings from ",
               loc.file_name(), ":", loc.line(), " suppressed)\n"));
    return true;
}

void
fatal(const std::string &msg)
{
    emit("fatal: " + msg + "\n");
    std::exit(1);
}

void
panic(const std::string &msg)
{
    emit("panic: " + msg + "\n");
    std::abort();
}

} // namespace csalt
