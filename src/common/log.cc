#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace csalt
{

namespace
{
LogLevel g_level = LogLevel::quiet;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
inform(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <= static_cast<int>(g_level))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace csalt
