#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

namespace csalt
{

namespace
{
LogLevel g_level = LogLevel::quiet;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
inform(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <= static_cast<int>(g_level))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

bool
warnOnce(const std::string &msg, std::source_location loc)
{
    // Keyed by call site, not message text: a per-access warning with
    // a varying payload ("bad addr 0x1234…") still prints only once.
    static std::set<std::pair<std::string, unsigned>> seen;
    const auto [it, inserted] =
        seen.emplace(loc.file_name(), loc.line());
    if (!inserted)
        return false;
    std::fprintf(stderr, "warn: %s (further warnings from %s:%u "
                 "suppressed)\n",
                 msg.c_str(), loc.file_name(), loc.line());
    return true;
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace csalt
