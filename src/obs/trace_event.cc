#include "obs/trace_event.h"

#include <atomic>
#include <ostream>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"

namespace csalt::obs
{

namespace
{
// Atomic: the CSALT_TRACE_* macros load this on simulation hot paths
// from every job-runner worker. Tracing itself stays single-System
// (see docs/harness.md); the atomic only makes the off-state check
// race-free.
std::atomic<EventTracer *> g_active{nullptr};
} // namespace

EventTracer *
activeTracer()
{
    return g_active.load(std::memory_order_acquire);
}

void
setActiveTracer(EventTracer *tracer)
{
    g_active.store(tracer, std::memory_order_release);
}

const char *
eventCatName(EventCat cat)
{
    switch (cat) {
      case kCatContextSwitch:
        return "cs";
      case kCatEpoch:
        return "epoch";
      case kCatWalk:
        return "walk";
      default:
        return "?";
    }
}

unsigned
parseEventCats(const std::string &list)
{
    if (list == "all")
        return kCatAll;
    if (list == "none")
        return 0;
    unsigned mask = 0;
    std::istringstream is(list);
    std::string token;
    while (std::getline(is, token, ',')) {
        if (token == "cs")
            mask |= kCatContextSwitch;
        else if (token == "epoch")
            mask |= kCatEpoch;
        else if (token == "walk")
            mask |= kCatWalk;
        else if (!token.empty())
            fatal("unknown trace-event category '" + token +
                  "' (want cs, epoch, walk, all or none)");
    }
    return mask;
}

EventArgs &
EventArgs::add(std::string key, double v)
{
    items_.push_back(Item{std::move(key), Kind::number, v, {}, {}});
    return *this;
}

EventArgs &
EventArgs::add(std::string key, std::uint64_t v)
{
    return add(std::move(key), static_cast<double>(v));
}

EventArgs &
EventArgs::add(std::string key, unsigned v)
{
    return add(std::move(key), static_cast<double>(v));
}

EventArgs &
EventArgs::add(std::string key, int v)
{
    return add(std::move(key), static_cast<double>(v));
}

EventArgs &
EventArgs::add(std::string key, std::string v)
{
    items_.push_back(
        Item{std::move(key), Kind::string, 0.0, std::move(v), {}});
    return *this;
}

EventArgs &
EventArgs::addSeries(std::string key, std::vector<double> v)
{
    items_.push_back(
        Item{std::move(key), Kind::series, 0.0, {}, std::move(v)});
    return *this;
}

void
EventArgs::writeJson(std::ostream &os) const
{
    os << '{';
    for (std::size_t i = 0; i < items_.size(); ++i) {
        const Item &item = items_[i];
        os << (i ? ",\"" : "\"") << escapeJson(item.key) << "\":";
        switch (item.kind) {
          case Kind::number:
            writeJsonNumber(os, item.num);
            break;
          case Kind::string:
            os << '"' << escapeJson(item.str) << '"';
            break;
          case Kind::series:
            os << '[';
            for (std::size_t j = 0; j < item.series.size(); ++j) {
                if (j)
                    os << ',';
                writeJsonNumber(os, item.series[j]);
            }
            os << ']';
            break;
        }
    }
    os << '}';
}

void
EventTracer::writeCommon(std::ostream &os, EventCat cat,
                         const char *name, unsigned tid, double ts,
                         char ph)
{
    os << "{\"type\":\"event\",\"name\":\"" << escapeJson(name)
       << "\",\"cat\":\"" << eventCatName(cat) << "\",\"ph\":\"" << ph
       << "\",\"ts\":";
    writeJsonNumber(os, ts);
    os << ",\"pid\":0,\"tid\":" << tid;
}

void
EventTracer::instant(EventCat cat, const char *name, unsigned tid,
                     double ts, const EventArgs &args)
{
    if (!enabledFor(cat))
        return;
    std::ostream &os = *sink_;
    writeCommon(os, cat, name, tid, ts, 'i');
    os << ",\"s\":\"t\"";
    if (!args.empty()) {
        os << ",\"args\":";
        args.writeJson(os);
    }
    os << "}\n";
    ++emitted_;
}

void
EventTracer::complete(EventCat cat, const char *name, unsigned tid,
                      double ts, double dur, const EventArgs &args)
{
    if (!enabledFor(cat))
        return;
    std::ostream &os = *sink_;
    writeCommon(os, cat, name, tid, ts, 'X');
    os << ",\"dur\":";
    writeJsonNumber(os, dur);
    if (!args.empty()) {
        os << ",\"args\":";
        args.writeJson(os);
    }
    os << "}\n";
    ++emitted_;
}

} // namespace csalt::obs
