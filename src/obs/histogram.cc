#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace csalt::obs
{

std::size_t
Histogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    // value in [2^m, 2^(m+1)); its top kSubBucketBits+1 bits select
    // the octave block and the linear sub-bucket inside it.
    const unsigned m = std::bit_width(value) - 1;
    const unsigned shift = m - kSubBucketBits;
    const std::uint64_t sub = (value >> shift) - kSubBuckets;
    const std::size_t block = m - kSubBucketBits + 1;
    return block * kSubBuckets + static_cast<std::size_t>(sub);
}

std::uint64_t
Histogram::bucketLowerBound(std::size_t i)
{
    if (i < kSubBuckets)
        return i;
    const std::size_t block = i / kSubBuckets;
    const std::uint64_t sub = i % kSubBuckets;
    return (kSubBuckets + sub) << (block - 1);
}

std::uint64_t
Histogram::bucketWidth(std::size_t i)
{
    if (i < kSubBuckets)
        return 1;
    return std::uint64_t{1} << (i / kSubBuckets - 1);
}

void
Histogram::record(std::uint64_t value, std::uint64_t weight)
{
    if (!weight)
        return;
    buckets_[bucketIndex(value)] += weight;
    sum_ += static_cast<double>(value) * static_cast<double>(weight);
    if (!count_ || value < min_)
        min_ = value;
    if (!count_ || value > max_)
        max_ = value;
    count_ += weight;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    sum_ += other.sum_;
    if (!count_ || other.min_ < min_)
        min_ = other.min_;
    if (!count_ || other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
}

void
Histogram::clear()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0;
    max_ = 0;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (!count_)
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    const double want = p / 100.0 * static_cast<double>(count_);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(want)));

    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            // Highest value equivalent to this bucket, clamped to the
            // recorded max so p100 never exceeds it.
            const std::uint64_t hi =
                bucketLowerBound(i) + bucketWidth(i) - 1;
            return std::min(hi, max_);
        }
    }
    return max_;
}

Histogram::Summary
Histogram::percentileSummary() const
{
    Summary s;
    s.count = count_;
    s.sum = sum_;
    s.mean = mean();
    s.min = min();
    s.max = max();
    s.p50 = percentile(50.0);
    s.p90 = percentile(90.0);
    s.p99 = percentile(99.0);
    s.p999 = percentile(99.9);
    return s;
}

} // namespace csalt::obs
