/**
 * @file
 * Registry of named simulator statistics.
 *
 * Components register their counters and gauges once (at system
 * construction); the epoch Sampler then snapshots every registered
 * value by name without knowing anything about the components. Names
 * are dot-separated paths ("core0.l2.miss_data", "ctrl.l3.data_ways";
 * see docs/observability.md for the full convention).
 *
 * Two stat kinds:
 *  - counter: monotone uint64 read through a stable pointer (every
 *    component keeps its counters in a long-lived stats struct);
 *  - gauge: instantaneous value computed by a callback (occupancy
 *    fractions, hit rates, current way splits).
 */

#ifndef CSALT_OBS_STAT_REGISTRY_H
#define CSALT_OBS_STAT_REGISTRY_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace csalt::obs
{

/** Named view over every statistic the system exposes. */
class StatRegistry
{
  public:
    enum class Kind : std::uint8_t
    {
        counter,
        gauge,
    };

    using Getter = std::function<double()>;

    struct Entry
    {
        std::string name;
        Kind kind;
        Getter get;
    };

    /**
     * Register a monotone counter read through @p value. The pointee
     * must outlive the registry (true for all component stats
     * structs, which live as long as the System).
     * Duplicate names are a wiring bug: fatal().
     */
    void addCounter(const std::string &name,
                    const std::uint64_t *value);

    /** Register a computed gauge. Duplicate names fatal(). */
    void addGauge(const std::string &name, Getter get);

    /** Registration order, which is also the sampler column order. */
    const std::vector<Entry> &entries() const { return entries_; }

    std::size_t size() const { return entries_.size(); }
    bool has(const std::string &name) const;

    /** Current value of @p name; fatal() when unknown (test helper). */
    double valueOf(const std::string &name) const;

  private:
    void add(std::string name, Kind kind, Getter get);

    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace csalt::obs

#endif // CSALT_OBS_STAT_REGISTRY_H
