/**
 * @file
 * Registry of named simulator statistics.
 *
 * Components register their counters, gauges and histograms once (at
 * system construction); the epoch Sampler then snapshots every
 * registered value by name without knowing anything about the
 * components. Names are dot-separated paths ("core0.l2.miss_data",
 * "ctrl.l3.data_ways", "core0.walk.lat"; see docs/observability.md
 * for the full convention).
 *
 * Three stat kinds:
 *  - counter: monotone uint64 read through a stable pointer (every
 *    component keeps its counters in a long-lived stats struct);
 *  - gauge: instantaneous value computed by a callback (occupancy
 *    fractions, hit rates, current way splits);
 *  - histogram: a latency distribution read through a stable pointer
 *    (obs::Histogram), sampled as a percentile digest.
 *
 * After System::finalizeStats() the registry is frozen: registering a
 * stat later is a wiring bug (the Sampler column set and any attached
 * consumers have already seen the layout). freeze() makes late
 * registration panic in debug builds and warnOnce-and-drop in release
 * builds instead of being silently inconsistent.
 */

#ifndef CSALT_OBS_STAT_REGISTRY_H
#define CSALT_OBS_STAT_REGISTRY_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/histogram.h"

namespace csalt::obs
{

/** Named view over every statistic the system exposes. */
class StatRegistry
{
  public:
    enum class Kind : std::uint8_t
    {
        counter,
        gauge,
    };

    using Getter = std::function<double()>;

    struct Entry
    {
        std::string name;
        Kind kind;
        Getter get;
    };

    /** A registered histogram, read through a stable pointer. */
    struct HistEntry
    {
        std::string name;
        const Histogram *hist;
    };

    /**
     * Register a monotone counter read through @p value. The pointee
     * must outlive the registry (true for all component stats
     * structs, which live as long as the System).
     * Duplicate names are a wiring bug: fatal().
     */
    void addCounter(const std::string &name,
                    const std::uint64_t *value);

    /** Register a computed gauge. Duplicate names fatal(). */
    void addGauge(const std::string &name, Getter get);

    /**
     * Register a latency histogram read through @p hist (must outlive
     * the registry). Shares the scalar namespace: duplicates fatal().
     */
    void addHistogram(const std::string &name, const Histogram *hist);

    /** Registration order, which is also the sampler column order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Registered histograms, in registration order. */
    const std::vector<HistEntry> &histograms() const
    {
        return hists_;
    }

    std::size_t size() const { return entries_.size(); }
    bool has(const std::string &name) const;

    /** Current value of @p name; fatal() when unknown (test helper). */
    double valueOf(const std::string &name) const;

    /** Histogram named @p name; fatal() when unknown. */
    const Histogram &histogramOf(const std::string &name) const;

    /**
     * Seal the registry (System::finalizeStats()). Later add*() calls
     * panic in debug builds and warnOnce-and-drop in release builds.
     */
    void freeze() { frozen_ = true; }
    bool frozen() const { return frozen_; }

  private:
    void add(std::string name, Kind kind, Getter get);

    /** Duplicate-name check across scalars and histograms; fatal(). */
    void checkName(const std::string &name) const;

    /**
     * Handle an add*() after freeze(). @return true when the caller
     * must drop the registration (release builds; debug panics).
     */
    bool rejectLate(const std::string &name) const;

    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
    std::vector<HistEntry> hists_;
    std::unordered_map<std::string, std::size_t> hist_index_;
    bool frozen_ = false;
};

} // namespace csalt::obs

#endif // CSALT_OBS_STAT_REGISTRY_H
