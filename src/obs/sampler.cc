#include "obs/sampler.h"

#include <ostream>

#include "obs/json.h"

namespace csalt::obs
{

void
Sampler::setRingCapacity(std::size_t n)
{
    capacity_ = n ? n : 1;
    while (ring_.size() > capacity_)
        ring_.pop_front();
}

void
Sampler::sample(double t, std::uint64_t step)
{
    Snapshot snap;
    snap.t = t;
    snap.step = step;
    snap.values.reserve(registry_.size());
    for (const auto &entry : registry_.entries())
        snap.values.push_back(entry.get());

    if (sink_)
        writeJsonl(snap);

    ring_.push_back(std::move(snap));
    while (ring_.size() > capacity_)
        ring_.pop_front();
    ++taken_;
}

void
Sampler::clear()
{
    ring_.clear();
    taken_ = 0;
}

void
Sampler::writeJsonl(const Snapshot &snap)
{
    std::ostream &os = *sink_;
    os << "{\"type\":\"sample\",\"t\":";
    writeJsonNumber(os, snap.t);
    os << ",\"step\":";
    writeJsonNumber(os, static_cast<double>(snap.step));
    os << ",\"values\":{";
    const auto &entries = registry_.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        os << (i ? ",\"" : "\"") << escapeJson(entries[i].name)
           << "\":";
        writeJsonNumber(os, snap.values[i]);
    }
    os << "}}\n";
}

} // namespace csalt::obs
