#include "obs/sampler.h"

#include <ostream>

#include "obs/json.h"

namespace csalt::obs
{

void
Sampler::setRingCapacity(std::size_t n)
{
    capacity_ = n ? n : 1;
    while (ring_.size() > capacity_)
        ring_.pop_front();
}

void
Sampler::sample(double t, std::uint64_t step)
{
    Snapshot snap;
    snap.t = t;
    snap.step = step;
    snap.values.reserve(registry_.size());
    for (const auto &entry : registry_.entries())
        snap.values.push_back(entry.get());
    snap.hists.reserve(registry_.histograms().size());
    for (const auto &he : registry_.histograms())
        snap.hists.push_back(he.hist->percentileSummary());

    if (sink_)
        writeJsonl(snap);

    ring_.push_back(std::move(snap));
    while (ring_.size() > capacity_)
        ring_.pop_front();
    ++taken_;
}

void
Sampler::clear()
{
    ring_.clear();
    taken_ = 0;
}

void
Sampler::writeJsonl(const Snapshot &snap)
{
    std::ostream &os = *sink_;
    os << "{\"type\":\"sample\",\"t\":";
    writeJsonNumber(os, snap.t);
    os << ",\"step\":";
    writeJsonNumber(os, static_cast<double>(snap.step));
    os << ",\"values\":{";
    const auto &entries = registry_.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        os << (i ? ",\"" : "\"") << escapeJson(entries[i].name)
           << "\":";
        writeJsonNumber(os, snap.values[i]);
    }
    os << "}";

    const auto &hists = registry_.histograms();
    if (!hists.empty()) {
        os << ",\"hists\":{";
        for (std::size_t i = 0; i < hists.size(); ++i) {
            const Histogram::Summary &s = snap.hists[i];
            os << (i ? ",\"" : "\"") << escapeJson(hists[i].name)
               << "\":{\"count\":";
            writeJsonNumber(os, static_cast<double>(s.count));
            os << ",\"sum\":";
            writeJsonNumber(os, s.sum);
            os << ",\"mean\":";
            writeJsonNumber(os, s.mean);
            os << ",\"min\":";
            writeJsonNumber(os, static_cast<double>(s.min));
            os << ",\"max\":";
            writeJsonNumber(os, static_cast<double>(s.max));
            os << ",\"p50\":";
            writeJsonNumber(os, static_cast<double>(s.p50));
            os << ",\"p90\":";
            writeJsonNumber(os, static_cast<double>(s.p90));
            os << ",\"p99\":";
            writeJsonNumber(os, static_cast<double>(s.p99));
            os << ",\"p999\":";
            writeJsonNumber(os, static_cast<double>(s.p999));
            os << "}";
        }
        os << "}";
    }
    os << "}\n";
    // Line-buffered semantics: a consumer tailing the trace (or a
    // pipe) sees each complete sample immediately, and a crashed run
    // leaves at most the line being written — never a page of
    // buffered, already-sampled history.
    os.flush();
}

} // namespace csalt::obs
