/**
 * @file
 * Epoch-aligned time-series sampler over a StatRegistry.
 *
 * Every sample() snapshots all registered stats into an in-memory
 * ring (bounded, oldest dropped) and, when a sink stream is attached,
 * appends one JSONL record:
 *
 *   {"type":"sample","t":<cycles>,"step":<accesses>,
 *    "values":{"core0.instructions":123, ...},
 *    "hists":{"core0.walk.lat":{"count":9,"p50":210,...}, ...}}
 *
 * Counters are cumulative since the last stats clear; consumers
 * (trace_inspect, plots) difference consecutive samples to get
 * per-interval rates such as interval MPKI. Histogram digests are
 * likewise cumulative (count/sum/min/max and p50/p90/p99/p99.9 of
 * everything recorded so far); the "hists" member is omitted when no
 * histograms are registered.
 */

#ifndef CSALT_OBS_SAMPLER_H
#define CSALT_OBS_SAMPLER_H

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <vector>

#include "obs/histogram.h"
#include "obs/stat_registry.h"

namespace csalt::obs
{

/** Snapshots a StatRegistry into a ring and an optional JSONL sink. */
class Sampler
{
  public:
    /** One snapshot; values align with registry entries() order. */
    struct Snapshot
    {
        double t = 0.0;          //!< sample timestamp (cycles)
        std::uint64_t step = 0;  //!< scheduler steps at sample time
        std::vector<double> values;
        /** Digest per registered histogram (histograms() order). */
        std::vector<Histogram::Summary> hists;
    };

    explicit Sampler(const StatRegistry &registry)
        : registry_(registry)
    {
    }

    /** Bound the in-memory ring (default 4096 snapshots). */
    void setRingCapacity(std::size_t n);

    /** Attach/detach the JSONL sink (not owned; null detaches). */
    void setSink(std::ostream *out) { sink_ = out; }
    bool hasSink() const { return sink_ != nullptr; }

    /** Snapshot every registered stat now. */
    void sample(double t, std::uint64_t step);

    const std::deque<Snapshot> &ring() const { return ring_; }

    /** Samples taken since construction or the last clear(). */
    std::uint64_t samplesTaken() const { return taken_; }

    /** Drop ring contents and the sample count (end of warmup). */
    void clear();

  private:
    void writeJsonl(const Snapshot &snap);

    const StatRegistry &registry_;
    std::ostream *sink_ = nullptr;
    std::deque<Snapshot> ring_;
    std::size_t capacity_ = 4096;
    std::uint64_t taken_ = 0;
};

} // namespace csalt::obs

#endif // CSALT_OBS_SAMPLER_H
