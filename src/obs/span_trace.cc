#include "obs/span_trace.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <type_traits>

namespace csalt::obs
{

namespace
{

thread_local SpanBuilder *tls_builder = nullptr;

/** SplitMix64 finalizer (same mixing constants as common/rng.h). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr char kMagic[8] = {'C', 'S', 'A', 'L', 'T', 'S', 'P', 'N'};
constexpr std::uint32_t kSpanFileVersion = 1;

template <typename T>
void
put(std::string &out, T v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

/** Bounds-checked POD reader over a serialized image. */
class Cursor
{
  public:
    explicit Cursor(std::string_view buf) : buf_(buf) {}

    template <typename T>
    bool
    read(T &out)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (buf_.size() - pos_ < sizeof(T))
            return false;
        std::memcpy(&out, buf_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }

    bool
    readBytes(void *out, std::size_t n)
    {
        if (buf_.size() - pos_ < n)
            return false;
        std::memcpy(out, buf_.data() + pos_, n);
        pos_ += n;
        return true;
    }

    std::size_t remaining() const { return buf_.size() - pos_; }

  private:
    std::string_view buf_;
    std::size_t pos_ = 0;
};

Error
formatError(const std::string &what)
{
    return makeError(ErrorKind::parse, "bad span sidecar: " + what,
                     "parseSpanFile",
                     "re-run csalt-sim --span-trace to regenerate");
}

} // namespace

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::access: return "access";
      case SpanKind::tlb_l1: return "tlb_l1";
      case SpanKind::tlb_l2: return "tlb_l2";
      case SpanKind::pom_lookup: return "pom_lookup";
      case SpanKind::tsb_lookup: return "tsb_lookup";
      case SpanKind::mmu_cache: return "mmu_cache";
      case SpanKind::walk: return "walk";
      case SpanKind::walk_guest_ref: return "walk_guest_ref";
      case SpanKind::walk_host_ref: return "walk_host_ref";
      case SpanKind::cache_l1d: return "cache_l1d";
      case SpanKind::cache_l2: return "cache_l2";
      case SpanKind::cache_l3: return "cache_l3";
      case SpanKind::dram: return "dram";
      case SpanKind::dram_queue: return "dram_queue";
      case SpanKind::dram_service: return "dram_service";
      case SpanKind::victima_lookup: return "victima_lookup";
      case SpanKind::pcax_lookup: return "pcax_lookup";
    }
    return "unknown";
}

SpanBuilder *
spanBuilder()
{
    return tls_builder;
}

bool
spanIsTranslation(const Span &s)
{
    if (s.flags & kSpanFlagTranslation)
        return true;
    switch (s.kindOf()) {
      case SpanKind::tlb_l1:
      case SpanKind::tlb_l2:
      case SpanKind::pom_lookup:
      case SpanKind::tsb_lookup:
      case SpanKind::mmu_cache:
      case SpanKind::walk:
      case SpanKind::walk_guest_ref:
      case SpanKind::walk_host_ref:
      case SpanKind::victima_lookup:
      case SpanKind::pcax_lookup:
        return true;
      default:
        return false;
    }
}

std::vector<std::uint64_t>
spanSelfCycles(const SpanJourney &j)
{
    std::vector<std::uint64_t> self(j.spans.size());
    for (std::size_t i = 0; i < j.spans.size(); ++i)
        self[i] = j.spans[i].dur;
    // Children always follow their parent, so one reverse pass
    // subtracts every child exactly once.
    for (std::size_t i = j.spans.size(); i-- > 1;) {
        const Span &s = j.spans[i];
        if (s.parent < 0)
            continue;
        auto &parent_self = self[static_cast<std::size_t>(s.parent)];
        parent_self -= std::min<std::uint64_t>(parent_self, s.dur);
    }
    return self;
}

void
SpanSummary::merge(const SpanSummary &other)
{
    rate = other.rate ? other.rate : rate;
    sampled += other.sampled;
    dropped += other.dropped;
    translation_evictions += other.translation_evictions;
    for (std::size_t k = 0; k < kNumSpanKinds; ++k) {
        kinds[k].count += other.kinds[k].count;
        kinds[k].cycles += other.kinds[k].cycles;
        kinds[k].self_cycles += other.kinds[k].self_cycles;
    }
    for (const auto &[asid, agg] : other.per_asid) {
        SpanAsidAgg &mine = per_asid[asid];
        mine.journeys += agg.journeys;
        mine.cycles += agg.cycles;
        for (std::size_t k = 0; k < kNumSpanKinds; ++k)
            mine.self[k] += agg.self[k];
    }
    for (const auto &[epoch, agg] : other.per_epoch) {
        SpanEpochAgg &mine = per_epoch[epoch];
        mine.journeys += agg.journeys;
        mine.cycles += agg.cycles;
        mine.translation_self += agg.translation_self;
    }
}

SpanRecorder::SpanRecorder(std::uint16_t core,
                           const SpanTraceConfig &cfg,
                           const std::uint64_t *epoch)
    : core_(core), cfg_(cfg), epoch_(epoch)
{
    summary_.rate = cfg_.rate;
    ring_.reserve(std::min<std::size_t>(cfg_.ring_capacity, 4096));
}

SpanRecorder::~SpanRecorder()
{
    if (tls_builder == &builder_)
        tls_builder = nullptr;
}

std::uint64_t
SpanRecorder::hashOf(std::uint64_t access_index) const
{
    return mix64(mix64(cfg_.seed ^ (std::uint64_t{core_} << 48)) ^
                 access_index);
}

void
SpanRecorder::begin(std::uint64_t access_index, Addr vaddr, Asid asid,
                    Cycles now)
{
    pending_ = SpanJourney{};
    pending_.access_index = access_index;
    pending_.vaddr = vaddr;
    pending_.start_cycle = now;
    pending_.epoch = static_cast<std::uint32_t>(*epoch_);
    pending_.core = core_;
    pending_.asid = asid;
    builder_.reset(now);
    builder_.open(SpanKind::access, now);
    in_flight_ = true;
    tls_builder = &builder_;
}

void
SpanRecorder::end(Cycles now, std::uint32_t charged)
{
    tls_builder = nullptr;
    if (!in_flight_)
        return;
    in_flight_ = false;

    pending_.spans = builder_.spans_;
    pending_.charged = charged;
    if (pending_.spans.empty())
        return; // cannot happen; defensive
    // Root duration: the journey's causal latency. The core charges
    // only data_latency/mlp, so the charged end can precede the data
    // path's raw end — take the max so every child stays nested.
    std::uint32_t end_rel = builder_.rel(now);
    for (std::size_t i = 1; i < pending_.spans.size(); ++i)
        end_rel = std::max(end_rel, pending_.spans[i].end());
    Span &root = pending_.spans.front();
    root.dur = end_rel;
    pending_.total = end_rel;

    // Fold into the summary (covers every sampled journey, even ones
    // the ring later drops).
    ++summary_.sampled;
    const std::vector<std::uint64_t> self = spanSelfCycles(pending_);
    std::uint64_t translation_self = 0;
    for (std::size_t i = 0; i < pending_.spans.size(); ++i) {
        const Span &s = pending_.spans[i];
        SpanKindAgg &agg =
            summary_.kinds[static_cast<std::size_t>(s.kind)];
        ++agg.count;
        agg.cycles += s.dur;
        agg.self_cycles += self[i];
        if (s.flags & kSpanFlagEvictedData)
            ++summary_.translation_evictions;
        if (spanIsTranslation(s))
            translation_self += self[i];
    }
    SpanAsidAgg &by_asid = summary_.per_asid[pending_.asid];
    ++by_asid.journeys;
    by_asid.cycles += pending_.total;
    for (std::size_t i = 0; i < pending_.spans.size(); ++i) {
        by_asid.self[static_cast<std::size_t>(
            pending_.spans[i].kind)] += self[i];
    }
    SpanEpochAgg &by_epoch = summary_.per_epoch[pending_.epoch];
    ++by_epoch.journeys;
    by_epoch.cycles += pending_.total;
    by_epoch.translation_self += translation_self;

    // Ring: keep the most recent cfg_.ring_capacity journeys; count
    // (never crash on) overflow.
    if (ring_.size() < cfg_.ring_capacity) {
        ring_.push_back(std::move(pending_));
    } else if (cfg_.ring_capacity > 0) {
        ring_[ring_head_] = std::move(pending_);
        ring_head_ = (ring_head_ + 1) % cfg_.ring_capacity;
        ++summary_.dropped;
    } else {
        ++summary_.dropped;
    }
}

std::vector<const SpanJourney *>
SpanRecorder::journeys() const
{
    std::vector<const SpanJourney *> out;
    out.reserve(ring_.size());
    // ring_head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(&ring_[(ring_head_ + i) % ring_.size()]);
    return out;
}

void
SpanRecorder::clear()
{
    ring_.clear();
    ring_head_ = 0;
    summary_ = SpanSummary{};
    summary_.rate = cfg_.rate;
    // An in-flight journey (begin() during warmup, end() after the
    // clear) completes normally and is counted in the fresh summary.
}

SpanTrace::SpanTrace(unsigned num_cores, const SpanTraceConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.rate == 0)
        cfg_.rate = 1;
    for (unsigned c = 0; c < num_cores; ++c) {
        recorders_.push_back(std::make_unique<SpanRecorder>(
            static_cast<std::uint16_t>(c), cfg_, &epoch_));
    }
}

SpanSummary
SpanTrace::summary() const
{
    SpanSummary merged;
    merged.rate = cfg_.rate;
    for (const auto &rec : recorders_)
        merged.merge(rec->summary());
    return merged;
}

void
SpanTrace::clear()
{
    for (auto &rec : recorders_)
        rec->clear();
}

std::string
SpanTrace::serialize(const std::string &label) const
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    put(out, kSpanFileVersion);
    put(out, static_cast<std::uint32_t>(recorders_.size()));
    put(out, cfg_.rate);
    put(out, cfg_.seed);
    std::uint64_t sampled = 0;
    std::uint64_t dropped = 0;
    for (const auto &rec : recorders_) {
        sampled += rec->sampled();
        dropped += rec->dropped();
    }
    put(out, sampled);
    put(out, dropped);
    put(out, static_cast<std::uint32_t>(label.size()));
    out.append(label);

    std::uint64_t count = 0;
    for (const auto &rec : recorders_)
        count += rec->journeys().size();
    put(out, count);
    for (const auto &rec : recorders_) {
        for (const SpanJourney *j : rec->journeys()) {
            put(out, j->access_index);
            put(out, j->vaddr);
            put(out, j->start_cycle);
            put(out, j->total);
            put(out, j->charged);
            put(out, j->epoch);
            put(out, j->core);
            put(out, j->asid);
            put(out, static_cast<std::uint32_t>(j->spans.size()));
            out.append(
                reinterpret_cast<const char *>(j->spans.data()),
                j->spans.size() * sizeof(Span));
        }
    }
    return out;
}

Expected<SpanFile>
parseSpanFile(std::string_view buf)
{
    Cursor cur(buf);
    char magic[8];
    if (!cur.readBytes(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0)
        return formatError("missing CSALTSPN magic");
    std::uint32_t version = 0;
    if (!cur.read(version) || version != kSpanFileVersion)
        return formatError("unsupported version");

    SpanFile file;
    std::uint32_t label_len = 0;
    if (!cur.read(file.num_cores) || !cur.read(file.rate) ||
        !cur.read(file.seed) || !cur.read(file.sampled) ||
        !cur.read(file.dropped) || !cur.read(label_len))
        return formatError("truncated header");
    if (label_len > cur.remaining())
        return formatError("label overruns file");
    file.label.resize(label_len);
    if (label_len && !cur.readBytes(file.label.data(), label_len))
        return formatError("truncated label");

    std::uint64_t count = 0;
    if (!cur.read(count))
        return formatError("truncated journey count");
    for (std::uint64_t i = 0; i < count; ++i) {
        SpanJourney j;
        std::uint32_t nspans = 0;
        if (!cur.read(j.access_index) || !cur.read(j.vaddr) ||
            !cur.read(j.start_cycle) || !cur.read(j.total) ||
            !cur.read(j.charged) || !cur.read(j.epoch) ||
            !cur.read(j.core) || !cur.read(j.asid) ||
            !cur.read(nspans))
            return formatError("truncated journey header");
        if (static_cast<std::size_t>(nspans) * sizeof(Span) >
            cur.remaining())
            return formatError("journey spans overrun file");
        j.spans.resize(nspans);
        if (nspans &&
            !cur.readBytes(j.spans.data(), nspans * sizeof(Span)))
            return formatError("truncated spans");
        file.journeys.push_back(std::move(j));
    }
    return file;
}

Expected<SpanFile>
readSpanFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return makeError(ErrorKind::io,
                         "cannot open span sidecar: " + path,
                         "readSpanFile",
                         "run csalt-sim --span-trace " + path);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string buf = ss.str();
    return parseSpanFile(buf);
}

} // namespace csalt::obs
