#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace csalt::obs
{

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::object)
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::numberOr(std::string_view key, double dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->num_v : dflt;
}

std::string
JsonValue::stringOr(std::string_view key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str_v : dflt;
}

namespace
{

/** Recursive-descent parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    parse(std::string *error)
    {
        JsonValue v;
        if (!value(v) || (skipWs(), pos_ != text_.size())) {
            if (error)
                *error = error_.empty() ? "trailing garbage" : error_;
            return std::nullopt;
        }
        return v;
    }

  private:
    bool
    fail(const char *what)
    {
        if (error_.empty()) {
            error_ = std::string(what) + " at offset " +
                     std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.kind = JsonValue::Kind::string;
            return string(out.str_v);
          case 't':
            out.kind = JsonValue::Kind::boolean;
            out.bool_v = true;
            return literal("true") || fail("bad literal");
          case 'f':
            out.kind = JsonValue::Kind::boolean;
            out.bool_v = false;
            return literal("false") || fail("bad literal");
          case 'n':
            out.kind = JsonValue::Kind::null;
            return literal("null") || fail("bad literal");
          default:
            return number(out);
        }
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            return fail("bad number");
        }
        // JSON forbids leading zeros like "01".
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
            return fail("leading zero");
        }
        auto digits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        };
        digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad fraction");
            }
            digits();
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !std::isdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad exponent");
            }
            digits();
        }
        out.kind = JsonValue::Kind::number;
        out.num_v = std::strtod(
            std::string(text_.substr(start, pos_ - start)).c_str(),
            nullptr);
        return true;
    }

    bool
    string(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (++pos_ >= text_.size())
                    return fail("bad escape");
                switch (text_[pos_]) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    if (pos_ + 4 >= text_.size())
                        return fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + 1 + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                    // Telemetry strings are ASCII; wider code points
                    // degrade to '?' rather than UTF-8 machinery.
                    out.push_back(code < 0x80
                                      ? static_cast<char>(code)
                                      : '?');
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
                ++pos_;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            out.push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!value(elem))
                return false;
            out.arr.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            JsonValue member;
            if (!value(member))
                return false;
            out.obj.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return Parser(text).parse(error);
}

std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    constexpr double kExactInt = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && std::fabs(v) < kExactInt) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace csalt::obs
