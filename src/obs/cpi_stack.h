/**
 * @file
 * Cycle-accounting taxonomy: every core cycle is attributed to exactly
 * one CpiComponent, and every completed memory reference carries a
 * LatencyBreakdown that the components along the request path stamp
 * their contribution into.
 *
 * Attribution rules (who stamps what — see docs/observability.md for
 * the double-counting invariants):
 *  - core_model:      compute, cs_switch, tlb_probe, pom_access,
 *                     tsb_access (from the backend latencies it is
 *                     charged), and the MLP-scaled data components
 *  - memory_system:   the raw per-level split of a data access
 *                     (data_l1d/data_l2/data_l3/data_dram)
 *  - page_walker:     walk_mmu plus one component per PTE read, split
 *                     by radix level and by walk dimension
 *                     (walk_guest_lN / walk_host_lN)
 *  - repartition:     reserved; the controllers repartition off the
 *                     critical path today, so this stays 0 until a
 *                     future PR models flush/migration cost
 *
 * The per-core CpiStack (an aggregated LatencyBreakdown) sums to the
 * core's elapsed cycles; the per-context stacks sum to the per-core
 * stack. Both invariants are enforced by tests/test_cpi_stack.cpp.
 */

#ifndef CSALT_OBS_CPI_STACK_H
#define CSALT_OBS_CPI_STACK_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace csalt::obs
{

/** Where a cycle went. One tag per cycle — tags never overlap. */
enum class CpiComponent : std::uint8_t
{
    compute,     //!< base-CPI non-memory work
    csSwitch,    //!< direct context-switch penalty
    dataL1d,     //!< data path: L1D access latency
    dataL2,      //!< data path: added L2 latency
    dataL3,      //!< data path: added L3 latency
    dataDram,    //!< data path: added DRAM latency
    tlbProbe,    //!< L1/L2 TLB lookup latency on the translate path
    pomAccess,   //!< POM-TLB set probes (cacheable accesses)
    tsbAccess,   //!< TSB probes (TSB scheme only)
    walkMmu,     //!< MMU paging-structure-cache consult latency
    walkGuestL1, //!< guest-dimension PTE read, radix level 1 (leaf)
    walkGuestL2,
    walkGuestL3,
    walkGuestL4,
    walkGuestL5,
    walkHostL1, //!< host/nested-dimension PTE read, level 1 (leaf)
    walkHostL2,
    walkHostL3,
    walkHostL4,
    walkHostL5,
    repartition, //!< reserved: repartition overhead (0 today)
    count
};

inline constexpr std::size_t kNumCpiComponents =
    static_cast<std::size_t>(CpiComponent::count);

/** Stable snake_case name ("walk_guest_l4", "cs_switch", ...). */
const char *cpiComponentName(CpiComponent c);

/**
 * Component for one PTE read: @p host selects the walk dimension,
 * @p level the radix level (clamped to [1, 5]).
 */
CpiComponent walkComponent(bool host, int level);

/**
 * Per-request (or aggregated) cycle attribution. Components along the
 * request path add their share; totals stay consistent because every
 * charged cycle is stamped exactly once.
 */
class LatencyBreakdown
{
  public:
    void
    add(CpiComponent c, double cycles)
    {
        v_[static_cast<std::size_t>(c)] += cycles;
    }

    double
    of(CpiComponent c) const
    {
        return v_[static_cast<std::size_t>(c)];
    }

    /** Sum over all components. */
    double total() const;

    /** Sum of the walk components (mmu + both dimensions). */
    double walkTotal() const;

    void clear() { v_.fill(0.0); }

    LatencyBreakdown &operator+=(const LatencyBreakdown &other);

    /**
     * Add @p src rescaled so the amounts added sum to exactly
     * @p target_total (the last nonzero component absorbs the
     * floating-point remainder). Used to fold the raw data-path split
     * into the MLP-scaled cycles the core actually charged.
     * No-op when either total is <= 0.
     */
    void addScaled(const LatencyBreakdown &src, double target_total);

    const std::array<double, kNumCpiComponents> &
    values() const
    {
        return v_;
    }

    /** Checkpoint support (snapshot/state_io.h). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        for (const double v : v_)
            s.putDouble(v);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        for (auto &v : v_)
            v = d.getDouble();
    }

  private:
    std::array<double, kNumCpiComponents> v_{};
};

/** An aggregated breakdown (per core, per context, per run). */
using CpiStack = LatencyBreakdown;

} // namespace csalt::obs

#endif // CSALT_OBS_CPI_STACK_H
