/**
 * @file
 * Fixed-footprint latency histogram with percentile queries.
 *
 * HdrHistogram-style bucketing: values below 2^kSubBucketBits land in
 * unit-width buckets; above that, every power-of-two range ("octave")
 * is split into kSubBuckets linear sub-buckets, so relative error is
 * bounded by 1/kSubBuckets at every magnitude. The bucket array is a
 * compile-time-sized std::array (~4KB), making histograms cheap enough
 * to embed one per component (per-core walk latency, POM lookup
 * latency, DRAM access latency, ...) and safe to register in the
 * StatRegistry by stable pointer, exactly like counters.
 *
 * Histograms are mergeable (bucket-wise addition, used to aggregate
 * per-core distributions) and support p50/p90/p99/p99.9 queries via a
 * single cumulative walk, so percentiles are monotone by construction.
 */

#ifndef CSALT_OBS_HISTOGRAM_H
#define CSALT_OBS_HISTOGRAM_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace csalt::obs
{

/** Log2-bucketed latency histogram (values are cycle counts). */
class Histogram
{
  public:
    /** Sub-bucket resolution: 2^3 = 8 linear buckets per octave. */
    static constexpr unsigned kSubBucketBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;

    /** Unit buckets for [0, kSubBuckets) plus 8 per octave above. */
    static constexpr std::size_t kNumBuckets =
        (64 - kSubBucketBits) * kSubBuckets + kSubBuckets;

    /** Scalar + percentile digest of the distribution. */
    struct Summary
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double mean = 0.0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::uint64_t p50 = 0;
        std::uint64_t p90 = 0;
        std::uint64_t p99 = 0;
        std::uint64_t p999 = 0;
    };

    /** Record @p weight occurrences of @p value. */
    void record(std::uint64_t value, std::uint64_t weight = 1);

    /** Bucket-wise merge of @p other into this histogram. */
    void merge(const Histogram &other);

    /** Reset to empty. */
    void clear();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    bool empty() const { return count_ == 0; }

    /**
     * Value at percentile @p p (0..100): the highest value equivalent
     * to the bucket where the cumulative count first reaches
     * ceil(p/100 * count), clamped to the recorded max. 0 when empty.
     */
    std::uint64_t percentile(double p) const;

    /** The full digest (count/sum/mean/min/max/p50/p90/p99/p99.9). */
    Summary percentileSummary() const;

    // ------------------------------------------ bucket introspection

    /** Bucket index a value lands in. */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Smallest value mapping to bucket @p i. */
    static std::uint64_t bucketLowerBound(std::size_t i);

    /** Width in values of bucket @p i (1 below the first octave). */
    static std::uint64_t bucketWidth(std::size_t i);

    /** Raw count of bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const
    {
        return buckets_[i];
    }

    /** Checkpoint: only nonzero buckets travel (sparse encoding). */
    template <class Sink>
    void
    saveState(Sink &s) const
    {
        std::uint64_t nonzero = 0;
        for (const std::uint64_t b : buckets_)
            nonzero += b != 0;
        s.putU64(nonzero);
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            if (buckets_[i]) {
                s.putU64(i);
                s.putU64(buckets_[i]);
            }
        }
        s.putU64(count_);
        s.putDouble(sum_);
        s.putU64(min_);
        s.putU64(max_);
    }

    template <class Src>
    void
    loadState(Src &d)
    {
        buckets_.fill(0);
        const std::uint64_t nonzero = d.getU64();
        for (std::uint64_t i = 0; i < nonzero; ++i) {
            const std::uint64_t idx = d.getU64();
            if (idx >= buckets_.size())
                d.fail("histogram bucket index out of range");
            buckets_[idx] = d.getU64();
        }
        count_ = d.getU64();
        sum_ = d.getDouble();
        min_ = d.getU64();
        max_ = d.getU64();
    }

  private:
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace csalt::obs

#endif // CSALT_OBS_HISTOGRAM_H
