/**
 * @file
 * Structured event tracing in Chrome trace_event form.
 *
 * Events carry the standard Chrome fields (name, cat, ph, ts, pid,
 * tid, args) and are written as JSONL records tagged
 * {"type":"event",...}; `trace_inspect --chrome out.json` converts a
 * trace into the JSON-array form chrome://tracing and Perfetto load
 * directly.
 *
 * Hot-path cost when tracing is off: the CSALT_TRACE_* macros expand
 * to a load of the active-tracer pointer plus one branch; the
 * EventArgs expression is never evaluated. Compiling with
 * -DCSALT_TRACING=0 removes even that branch.
 *
 * Event categories (selected with --trace-events):
 *  - cs:    VM context switches on a core (instant)
 *  - epoch: partition-controller repartitions with before/after way
 *           counts (instant)
 *  - walk:  page-walk spans with per-reference latencies (complete)
 */

#ifndef CSALT_OBS_TRACE_EVENT_H
#define CSALT_OBS_TRACE_EVENT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace csalt::obs
{

/** Bitmask of traceable event categories. */
enum EventCat : unsigned
{
    kCatContextSwitch = 1u << 0, //!< "cs"
    kCatEpoch = 1u << 1,         //!< "epoch"
    kCatWalk = 1u << 2,          //!< "walk"
    kCatAll = (1u << 3) - 1,
};

/** Chrome "cat" string for one category bit. */
const char *eventCatName(EventCat cat);

/**
 * Parse a --trace-events list ("cs,epoch", "all", "none") into a
 * category mask; fatal() on an unknown token.
 */
unsigned parseEventCats(const std::string &list);

/**
 * Argument payload of one event: ordered key/value pairs where a
 * value is a number, a string, or a numeric series (per-level walk
 * latencies). Built only when the event actually fires.
 */
class EventArgs
{
  public:
    EventArgs &add(std::string key, double v);
    EventArgs &add(std::string key, std::uint64_t v);
    EventArgs &add(std::string key, unsigned v);
    EventArgs &add(std::string key, int v);
    EventArgs &add(std::string key, std::string v);
    EventArgs &addSeries(std::string key, std::vector<double> v);

    /** Render as a JSON object ("{...}"). */
    void writeJson(std::ostream &os) const;

    bool empty() const { return items_.empty(); }

  private:
    enum class Kind : std::uint8_t
    {
        number,
        string,
        series,
    };

    struct Item
    {
        std::string key;
        Kind kind;
        double num;
        std::string str;
        std::vector<double> series;
    };

    std::vector<Item> items_;
};

/** Writes trace events to a JSONL sink, filtered by category. */
class EventTracer
{
  public:
    /** Attach/detach the JSONL sink (not owned; null disables). */
    void setSink(std::ostream *out) { sink_ = out; }

    /** Restrict emission to the categories in @p mask. */
    void setCategories(unsigned mask) { mask_ = mask; }
    unsigned categories() const { return mask_; }

    bool
    enabledFor(EventCat cat) const
    {
        return sink_ != nullptr && (mask_ & cat) != 0;
    }

    /** Instant event (Chrome ph "i", thread scope). */
    void instant(EventCat cat, const char *name, unsigned tid,
                 double ts, const EventArgs &args = EventArgs{});

    /** Complete event (Chrome ph "X") spanning [ts, ts+dur]. */
    void complete(EventCat cat, const char *name, unsigned tid,
                  double ts, double dur,
                  const EventArgs &args = EventArgs{});

    std::uint64_t emitted() const { return emitted_; }

  private:
    void writeCommon(std::ostream &os, EventCat cat, const char *name,
                     unsigned tid, double ts, char ph);

    std::ostream *sink_ = nullptr;
    unsigned mask_ = kCatAll;
    std::uint64_t emitted_ = 0;
};

/**
 * The process-wide active tracer, consulted by the CSALT_TRACE_*
 * macros. Null (the default) means tracing is off everywhere; the
 * owning System installs its tracer while a trace sink is open.
 */
EventTracer *activeTracer();
void setActiveTracer(EventTracer *tracer);

} // namespace csalt::obs

#ifndef CSALT_TRACING
#define CSALT_TRACING 1
#endif

#if CSALT_TRACING

/** True when an active tracer wants category @p cat. */
#define CSALT_TRACE_ACTIVE(cat)                                        \
    (::csalt::obs::activeTracer() != nullptr &&                        \
     ::csalt::obs::activeTracer()->enabledFor(cat))

/** Emit an instant event; @p __VA_ARGS__ is the EventArgs expression,
 * evaluated only when the category is live. */
#define CSALT_TRACE_INSTANT(cat, name, tid, ts, ...)                   \
    do {                                                               \
        ::csalt::obs::EventTracer *trc_ = ::csalt::obs::activeTracer();\
        if (trc_ && trc_->enabledFor(cat))                             \
            trc_->instant((cat), (name), (tid), (ts), __VA_ARGS__);    \
    } while (0)

/** Emit a complete (span) event; args evaluated only when live. */
#define CSALT_TRACE_COMPLETE(cat, name, tid, ts, dur, ...)             \
    do {                                                               \
        ::csalt::obs::EventTracer *trc_ = ::csalt::obs::activeTracer();\
        if (trc_ && trc_->enabledFor(cat))                             \
            trc_->complete((cat), (name), (tid), (ts), (dur),          \
                           __VA_ARGS__);                               \
    } while (0)

#else // !CSALT_TRACING

#define CSALT_TRACE_ACTIVE(cat) false
#define CSALT_TRACE_INSTANT(cat, name, tid, ts, ...) ((void)0)
#define CSALT_TRACE_COMPLETE(cat, name, tid, ts, dur, ...) ((void)0)

#endif // CSALT_TRACING

#endif // CSALT_OBS_TRACE_EVENT_H
