/**
 * @file
 * Causal access-span tracing: sampled per-access journey trees.
 *
 * Aggregates (CPI stacks, histograms, the phase profiler) say where
 * cycles went on average; they cannot show one access's path through
 * the context-switch cascade the paper argues about — L2 TLB miss,
 * POM-TLB probe, nested 2-D walk fanning out into up to 24 PTE
 * references, each rippling through L2/L3 and DRAM. Span tracing
 * records exactly that: a deterministic 1-in-N sample of memory
 * accesses (hash of the stable per-core access index + seed, so no
 * RNG stream is perturbed and the sample set is bit-exact across
 * --jobs), each captured as a compact tree of timed spans.
 *
 * Structure per sampled access ("journey"):
 *  - root span (kind=access) opened at core_model dispatch;
 *  - children for L1/L2 TLB probes, POM-TLB / TSB lookups, MMU-cache
 *    consults, the page walk with one span per guest/host PTE
 *    reference, L2/L3 cache probes tagged data-vs-translation, and
 *    DRAM access split into queue + service.
 *
 * Recording follows the PhaseProfiler pattern: components check one
 *  thread-local pointer (null unless a sampled journey is in flight
 * on this thread), so the disarmed cost is a single load + branch and
 * simulated behavior never changes — the golden-stats gate pins that.
 * Finished journeys land in per-core rings (overflow drops the oldest
 * and is counted, never fatal) and feed a binary sidecar file plus
 * the "span_summary" metrics section; tools/trace_inspect --spans
 * renders trees, folded stacks (flamegraphs) and critical-path
 * tables from the sidecar.
 */

#ifndef CSALT_OBS_SPAN_TRACE_H
#define CSALT_OBS_SPAN_TRACE_H

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace csalt::obs
{

/** What one span measures (tree node type). */
enum class SpanKind : std::uint8_t
{
    access = 0,     //!< journey root: whole reference at the core
    tlb_l1,         //!< split L1 TLB probe (pipelined: 0 cycles)
    tlb_l2,         //!< unified L2 TLB probe
    pom_lookup,     //!< POM-TLB lookup (may cover two set probes)
    tsb_lookup,     //!< TSB probe sequence
    mmu_cache,      //!< paging-structure / nested-agawa cache consult
    walk,           //!< whole page walk (1-D or 2-D)
    walk_guest_ref, //!< one guest-dimension PTE reference
    walk_host_ref,  //!< one host-dimension PTE reference
    cache_l1d,      //!< L1D probe (data path only)
    cache_l2,       //!< L2 probe
    cache_l3,       //!< L3 probe
    dram,           //!< DRAM channel access (queue + service + bus)
    dram_queue,     //!< time waiting behind bank/channel backlog
    dram_service,   //!< row access + burst + overhead
    victima_lookup, //!< Victima cache-resident TLB entry lookup
    pcax_lookup,    //!< PCAX PC-indexed prediction probe
};

constexpr std::size_t kNumSpanKinds = 17;

/** Stable lowercase kind name ("access", "walk_host_ref", ...). */
const char *spanKindName(SpanKind kind);

// Span flags (bitmask).
constexpr std::uint16_t kSpanFlagHit = 1u << 0;         //!< probe hit
constexpr std::uint16_t kSpanFlagTranslation = 1u << 1; //!< trans. line
constexpr std::uint16_t kSpanFlagEvictedData = 1u << 2; //!< fill evicted a data line
constexpr std::uint16_t kSpanFlagVirtualized = 1u << 3; //!< 2-D walk
constexpr std::uint16_t kSpanFlagSecondProbe = 1u << 4; //!< POM size mispredict

/**
 * One timed node of a journey tree. 16 bytes, trivially copyable —
 * the sidecar stores these verbatim. Times are cycles relative to
 * the journey origin (u32 spans ~4G cycles, far beyond any single
 * access).
 */
struct Span
{
    std::uint32_t start = 0; //!< offset from journey origin
    std::uint32_t dur = 0;   //!< duration in cycles
    std::int16_t parent = -1; //!< index into the journey, -1 = root
    std::uint8_t kind = 0;    //!< SpanKind
    std::uint8_t level = 0;   //!< PTE level / DRAM channel (kind-dep.)
    std::uint16_t flags = 0;  //!< kSpanFlag* bits
    std::uint16_t reserved = 0;

    SpanKind kindOf() const { return static_cast<SpanKind>(kind); }
    std::uint32_t end() const { return start + dur; }
};

static_assert(sizeof(Span) == 16, "sidecar format relies on layout");

/** One sampled access: the root span plus its whole tree. */
struct SpanJourney
{
    std::uint64_t access_index = 0; //!< per-core memref ordinal
    Addr vaddr = 0;                 //!< guest-virtual address
    Cycles start_cycle = 0;         //!< core clock at dispatch
    std::uint32_t total = 0;        //!< root duration (causal cycles)
    std::uint32_t charged = 0;      //!< cycles charged to the core
                                    //!< (MLP overlaps the data part)
    std::uint32_t epoch = 0;        //!< occupancy epoch at dispatch
    std::uint16_t core = 0;
    Asid asid = 0;
    std::vector<Span> spans; //!< spans[0] is the root (kind=access)
};

/** Sampling + buffering knobs. */
struct SpanTraceConfig
{
    std::uint64_t rate = 256; //!< sample 1 in N accesses (>=1)
    std::uint64_t seed = 0;   //!< folded into the sampling hash
    std::size_t ring_capacity = 4096; //!< retained journeys per core
};

/**
 * Builds one journey tree. Components obtain the active builder via
 * spanBuilder() (null unless a sampled journey is in flight on this
 * thread) and open/close spans in LIFO order; opens while suppressed
 * (writebacks — off the critical path, at future timestamps) return
 * -1 and close(-1) is a no-op, so call sites never branch on it.
 */
class SpanBuilder
{
  public:
    /** Open a child of the innermost open span. @return span index. */
    int
    open(SpanKind kind, Cycles now, std::uint8_t level = 0)
    {
        if (suppress_ > 0 || spans_.size() >= kMaxSpans)
            return -1;
        Span s;
        s.start = rel(now);
        s.parent = open_.empty() ? std::int16_t{-1} : open_.back();
        s.kind = static_cast<std::uint8_t>(kind);
        s.level = level;
        const auto idx = static_cast<std::int16_t>(spans_.size());
        spans_.push_back(s);
        open_.push_back(idx);
        return idx;
    }

    /** Close span @p idx at time @p end, OR-ing @p flags in. */
    void
    close(int idx, Cycles end, std::uint16_t flags = 0)
    {
        if (idx < 0)
            return;
        Span &s = spans_[static_cast<std::size_t>(idx)];
        const std::uint32_t e = rel(end);
        s.dur = e > s.start ? e - s.start : 0;
        s.flags |= flags;
        if (!open_.empty() && open_.back() == idx)
            open_.pop_back();
    }

    /** OR extra flags into an already-opened span. */
    void
    addFlags(int idx, std::uint16_t flags)
    {
        if (idx >= 0)
            spans_[static_cast<std::size_t>(idx)].flags |= flags;
    }

    void pushSuppress() { ++suppress_; }
    void popSuppress() { --suppress_; }

    const std::vector<Span> &spans() const { return spans_; }

  private:
    friend class SpanRecorder;

    //!< Generous bound: a 2-D walk journey peaks well under 200 spans.
    static constexpr std::size_t kMaxSpans = 1024;

    std::uint32_t
    rel(Cycles now) const
    {
        return now <= origin_
                   ? 0u
                   : static_cast<std::uint32_t>(now - origin_);
    }

    void
    reset(Cycles origin)
    {
        origin_ = origin;
        spans_.clear();
        open_.clear();
        suppress_ = 0;
    }

    Cycles origin_ = 0;
    int suppress_ = 0;
    std::vector<Span> spans_;
    std::vector<std::int16_t> open_; //!< stack of open span indices
};

/**
 * The thread's active builder; null unless a sampled journey is in
 * flight. This single thread-local load is the whole disarmed cost,
 * and thread-locality is what keeps --jobs N bit-exact: each job's
 * journeys are built on its own thread, invisible to the others.
 */
SpanBuilder *spanBuilder();

/** RAII suppression for off-critical-path work (writebacks). */
class SpanSuppressScope
{
  public:
    SpanSuppressScope() : sb_(spanBuilder())
    {
        if (sb_)
            sb_->pushSuppress();
    }
    ~SpanSuppressScope()
    {
        if (sb_)
            sb_->popSuppress();
    }
    SpanSuppressScope(const SpanSuppressScope &) = delete;
    SpanSuppressScope &operator=(const SpanSuppressScope &) = delete;

  private:
    SpanBuilder *sb_;
};

/** Per-kind critical-path aggregate. */
struct SpanKindAgg
{
    std::uint64_t count = 0;
    std::uint64_t cycles = 0;      //!< inclusive (span durations)
    std::uint64_t self_cycles = 0; //!< exclusive (minus children)
};

/** Per-ASID critical-path aggregate. */
struct SpanAsidAgg
{
    std::uint64_t journeys = 0;
    std::uint64_t cycles = 0; //!< sum of journey totals
    std::array<std::uint64_t, kNumSpanKinds> self{}; //!< per-kind
};

/** Per-occupancy-epoch aggregate. */
struct SpanEpochAgg
{
    std::uint64_t journeys = 0;
    std::uint64_t cycles = 0;
    std::uint64_t translation_self = 0; //!< translation-path share
};

/**
 * The "span_summary" metrics section. Accumulated at journey
 * completion over *every* sampled journey (ring overflow drops a
 * journey's tree from the sidecar, never from this summary).
 */
struct SpanSummary
{
    std::uint64_t rate = 0;
    std::uint64_t sampled = 0;
    std::uint64_t dropped = 0;
    std::uint64_t translation_evictions = 0;
    std::array<SpanKindAgg, kNumSpanKinds> kinds{};
    std::map<Asid, SpanAsidAgg> per_asid;
    std::map<std::uint32_t, SpanEpochAgg> per_epoch;

    void merge(const SpanSummary &other);
};

/** True for kinds/flags on the translation (not data) path. */
bool spanIsTranslation(const Span &s);

/** Exclusive self-cycles per span of one journey (dur − children). */
std::vector<std::uint64_t> spanSelfCycles(const SpanJourney &j);

/**
 * Per-core journey recorder: decides sampling, owns the builder and
 * the retained-journey ring, and accumulates the summary.
 */
class SpanRecorder
{
  public:
    SpanRecorder(std::uint16_t core, const SpanTraceConfig &cfg,
                 const std::uint64_t *epoch);
    ~SpanRecorder();

    SpanRecorder(const SpanRecorder &) = delete;
    SpanRecorder &operator=(const SpanRecorder &) = delete;

    /**
     * Deterministic 1-in-rate decision from (core, index, seed)
     * only — pure, so identical at --jobs 1 and --jobs 8.
     */
    bool
    shouldSample(std::uint64_t access_index) const
    {
        if (cfg_.rate <= 1)
            return true;
        return hashOf(access_index) % cfg_.rate == 0;
    }

    /** Start a journey: installs the thread's builder, opens root. */
    void begin(std::uint64_t access_index, Addr vaddr, Asid asid,
               Cycles now);

    /**
     * Finish the journey: closes the root (duration = max of the
     * charged end and the deepest child end, so MLP-overlapped data
     * latency still nests), pushes it into the ring, folds it into
     * the summary, clears the thread-local builder.
     */
    void end(Cycles now, std::uint32_t charged);

    /** Retained journeys, oldest first. */
    std::vector<const SpanJourney *> journeys() const;

    std::uint64_t sampled() const { return summary_.sampled; }
    std::uint64_t dropped() const { return summary_.dropped; }
    const SpanSummary &summary() const { return summary_; }

    /** Drop journeys + summary (warmup discard). */
    void clear();

  private:
    std::uint64_t hashOf(std::uint64_t access_index) const;

    std::uint16_t core_;
    SpanTraceConfig cfg_;
    const std::uint64_t *epoch_; //!< owner-updated occupancy epoch
    SpanBuilder builder_;
    SpanJourney pending_; //!< journey being built (begin()..end())
    bool in_flight_ = false;

    std::vector<SpanJourney> ring_; //!< capacity cfg_.ring_capacity
    std::size_t ring_head_ = 0;     //!< next slot when saturated
    SpanSummary summary_;
};

/** Parsed sidecar file (header + journeys). */
struct SpanFile
{
    std::uint32_t num_cores = 0;
    std::uint64_t rate = 0;
    std::uint64_t seed = 0;
    std::uint64_t sampled = 0;
    std::uint64_t dropped = 0;
    std::string label;
    std::vector<SpanJourney> journeys;
};

/**
 * Whole-system span trace: one recorder per core plus the shared
 * occupancy-epoch counter System::run() advances.
 */
class SpanTrace
{
  public:
    SpanTrace(unsigned num_cores, const SpanTraceConfig &cfg);

    SpanRecorder &recorder(unsigned core) { return *recorders_[core]; }
    const SpanRecorder &recorder(unsigned core) const
    {
        return *recorders_[core];
    }
    unsigned numCores() const
    {
        return static_cast<unsigned>(recorders_.size());
    }

    void setEpoch(std::uint64_t epoch) { epoch_ = epoch; }
    const SpanTraceConfig &config() const { return cfg_; }

    /** Merged summary across every core. */
    SpanSummary summary() const;

    /** Binary sidecar image (all cores' retained journeys). */
    std::string serialize(const std::string &label) const;

    void clear();

  private:
    SpanTraceConfig cfg_;
    std::uint64_t epoch_ = 0;
    std::vector<std::unique_ptr<SpanRecorder>> recorders_;
};

/** Parse a sidecar image (inverse of SpanTrace::serialize). */
Expected<SpanFile> parseSpanFile(std::string_view buf);

/** Read + parse a sidecar file from disk. */
Expected<SpanFile> readSpanFile(const std::string &path);

} // namespace csalt::obs

#endif // CSALT_OBS_SPAN_TRACE_H
