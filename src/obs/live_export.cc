#include "obs/live_export.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "harness/journal.h" // crc32 (shared with the results journal)

namespace csalt::obs
{

namespace
{

constexpr char kMagic[8] = {'C', 'S', 'A', 'L', 'T', 'L', 'I', 'V'};

/**
 * Fixed-size region header. All fields are written once at create()
 * except seq (the seqlock word) and payload_crc (restamped per
 * publish, inside the seqlock critical section).
 */
struct LiveHeader
{
    char magic[8];
    std::uint32_t version;        //!< kLiveLayoutVersion
    std::uint32_t total_size;     //!< whole file, bytes
    std::uint32_t names_offset;   //!< from file start
    std::uint32_t names_size;     //!< bytes, '\n'-separated
    std::uint32_t payload_offset; //!< from file start
    std::uint32_t payload_size;   //!< bytes
    std::uint32_t num_values;
    std::uint32_t reserved;
    alignas(8) std::uint64_t seq; //!< seqlock: odd = write in flight
    std::uint32_t payload_crc;    //!< crc32 over the payload bytes
    std::uint32_t reserved2;
};
static_assert(sizeof(LiveHeader) % 8 == 0, "payload stays aligned");

/** Fixed prefix of the payload, followed by num_values doubles. */
struct LivePayloadHead
{
    double t;
    std::uint64_t step;
    std::uint64_t epoch;
    std::uint64_t publish_count;
    double wall_unix;
    std::uint32_t pid;
    std::uint32_t finished;
};
static_assert(sizeof(LivePayloadHead) % 8 == 0, "values stay aligned");

std::uint64_t
loadSeq(const LiveHeader *header)
{
    return __atomic_load_n(&header->seq, __ATOMIC_ACQUIRE);
}

void
storeSeq(LiveHeader *header, std::uint64_t value)
{
    __atomic_store_n(&header->seq, value, __ATOMIC_RELEASE);
}

double
wallUnixNow()
{
    timespec ts{};
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

Error
ioError(std::string message, const std::string &path)
{
    return makeError(ErrorKind::io,
                     message + ": " + std::strerror(errno), path,
                     "check the live-region path and permissions");
}

} // namespace

std::string
LiveExport::defaultDir()
{
    struct stat st{};
    if (::stat("/dev/shm", &st) == 0 && S_ISDIR(st.st_mode) &&
        ::access("/dev/shm", W_OK) == 0)
        return "/dev/shm";
    if (const char *tmp = std::getenv("TMPDIR"); tmp && *tmp)
        return tmp;
    return "/tmp";
}

std::string
LiveExport::defaultPathFor(std::uint64_t pid)
{
    return defaultDir() + "/csalt-live." + std::to_string(pid);
}

Expected<std::unique_ptr<LiveExport>>
LiveExport::create(const std::string &path,
                   const StatRegistry &registry)
{
    std::string names;
    for (const auto &entry : registry.entries()) {
        names += entry.name;
        names += '\n';
    }
    const std::uint32_t num_values =
        static_cast<std::uint32_t>(registry.size());

    // 8-align the payload after the names block.
    const std::size_t names_offset = sizeof(LiveHeader);
    const std::size_t payload_offset =
        (names_offset + names.size() + 7) & ~std::size_t{7};
    const std::size_t payload_size =
        sizeof(LivePayloadHead) + num_values * sizeof(double);
    const std::size_t total = payload_offset + payload_size;

    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        return ioError("cannot create live region", path);
    if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
        Error err = ioError("cannot size live region", path);
        ::close(fd);
        return err;
    }
    void *map = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps the file open
    if (map == MAP_FAILED)
        return ioError("cannot map live region", path);

    auto live = std::unique_ptr<LiveExport>(new LiveExport);
    live->registry_ = &registry;
    live->path_ = path;
    live->map_ = static_cast<unsigned char *>(map);
    live->map_size_ = total;

    auto *header = reinterpret_cast<LiveHeader *>(live->map_);
    std::memset(header, 0, sizeof(*header));
    std::memcpy(header->magic, kMagic, sizeof(kMagic));
    header->version = kLiveLayoutVersion;
    header->total_size = static_cast<std::uint32_t>(total);
    header->names_offset =
        static_cast<std::uint32_t>(names_offset);
    header->names_size = static_cast<std::uint32_t>(names.size());
    header->payload_offset =
        static_cast<std::uint32_t>(payload_offset);
    header->payload_size =
        static_cast<std::uint32_t>(payload_size);
    header->num_values = num_values;
    std::memcpy(live->map_ + names_offset, names.data(),
                names.size());
    storeSeq(header, 0);
    return live;
}

LiveExport::~LiveExport()
{
    if (map_)
        ::munmap(map_, map_size_);
}

void
LiveExport::publish(double t, std::uint64_t step,
                    std::uint64_t epoch, bool finished)
{
    auto *header = reinterpret_cast<LiveHeader *>(map_);
    unsigned char *payload = map_ + header->payload_offset;

    // Seqlock write: readers see either the previous complete
    // payload or this one, never a mix.
    storeSeq(header, loadSeq(header) + 1); // odd: write in flight

    auto *head = reinterpret_cast<LivePayloadHead *>(payload);
    head->t = t;
    head->step = step;
    head->epoch = epoch;
    head->publish_count = ++publish_count_;
    head->wall_unix = wallUnixNow();
    head->pid = static_cast<std::uint32_t>(::getpid());
    head->finished = finished ? 1 : 0;

    auto *values = reinterpret_cast<double *>(
        payload + sizeof(LivePayloadHead));
    const auto &entries = registry_->entries();
    for (std::size_t i = 0; i < entries.size(); ++i)
        values[i] = entries[i].get();

    __atomic_store_n(&header->payload_crc,
                     harness::crc32(std::string_view(
                         reinterpret_cast<const char *>(payload),
                         header->payload_size)),
                     __ATOMIC_RELEASE);

    storeSeq(header, loadSeq(header) + 1); // even: consistent
}

// ------------------------------------------------------------ reader

Expected<LiveReader>
LiveReader::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return ioError("cannot open live region", path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        Error err = ioError("cannot stat live region", path);
        ::close(fd);
        return err;
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size < sizeof(LiveHeader)) {
        ::close(fd);
        return makeError(ErrorKind::parse,
                         "live region shorter than its header", path,
                         "the writer may still be creating it");
    }
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return ioError("cannot map live region", path);

    LiveReader reader;
    reader.path_ = path;
    reader.map_ = static_cast<const unsigned char *>(map);
    reader.map_size_ = size;

    const auto *header =
        reinterpret_cast<const LiveHeader *>(reader.map_);
    if (std::memcmp(header->magic, kMagic, sizeof(kMagic)) != 0)
        return makeError(ErrorKind::parse,
                         "not a csalt live region (bad magic)", path,
                         "pass the path printed by the running sim");
    if (header->version != kLiveLayoutVersion)
        return makeError(
            ErrorKind::parse,
            "live region layout version " +
                std::to_string(header->version) + " (reader speaks " +
                std::to_string(kLiveLayoutVersion) + ")",
            path, "rebuild reader and writer from the same tree");
    if (header->total_size != size ||
        header->payload_offset + header->payload_size != size ||
        header->names_offset + header->names_size >
            header->payload_offset ||
        header->payload_size <
            sizeof(LivePayloadHead) +
                header->num_values * sizeof(double))
        return makeError(ErrorKind::parse,
                         "live region header is inconsistent with "
                         "its file size",
                         path, "region truncated or corrupt");

    const char *names_begin = reinterpret_cast<const char *>(
        reader.map_ + header->names_offset);
    std::string_view names(names_begin, header->names_size);
    while (!names.empty()) {
        const std::size_t nl = names.find('\n');
        if (nl == std::string_view::npos)
            break;
        reader.names_.emplace_back(names.substr(0, nl));
        names.remove_prefix(nl + 1);
    }
    if (reader.names_.size() != header->num_values)
        return makeError(ErrorKind::parse,
                         "live region names block does not match "
                         "its value count",
                         path, "region truncated or corrupt");
    reader.num_values_ = header->num_values;
    reader.payload_offset_ = header->payload_offset;
    reader.payload_size_ = header->payload_size;
    return reader;
}

LiveReader::LiveReader(LiveReader &&other) noexcept
    : path_(std::move(other.path_)), map_(other.map_),
      map_size_(other.map_size_), num_values_(other.num_values_),
      payload_offset_(other.payload_offset_),
      payload_size_(other.payload_size_),
      names_(std::move(other.names_))
{
    other.map_ = nullptr;
    other.map_size_ = 0;
}

LiveReader &
LiveReader::operator=(LiveReader &&other) noexcept
{
    if (this == &other)
        return *this;
    if (map_)
        ::munmap(const_cast<unsigned char *>(map_), map_size_);
    path_ = std::move(other.path_);
    map_ = other.map_;
    map_size_ = other.map_size_;
    num_values_ = other.num_values_;
    payload_offset_ = other.payload_offset_;
    payload_size_ = other.payload_size_;
    names_ = std::move(other.names_);
    other.map_ = nullptr;
    other.map_size_ = 0;
    return *this;
}

LiveReader::~LiveReader()
{
    if (map_)
        ::munmap(const_cast<unsigned char *>(map_), map_size_);
}

Expected<LiveSnapshot>
LiveReader::read() const
{
    const auto *header =
        reinterpret_cast<const LiveHeader *>(map_);
    std::vector<unsigned char> copy(payload_size_);
    std::uint32_t crc_copy = 0;

    // Bounded seqlock retry: a healthy writer holds the lock for the
    // duration of one memcpy+crc, so a handful of spins suffices; a
    // writer that died mid-publish leaves seq odd forever and we
    // report that instead of spinning.
    constexpr int kMaxAttempts = 1000;
    bool consistent = false;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
        const std::uint64_t s1 = loadSeq(header);
        if (s1 & 1) {
            ::usleep(100);
            continue;
        }
        std::memcpy(copy.data(), map_ + payload_offset_,
                    payload_size_);
        crc_copy = __atomic_load_n(&header->payload_crc,
                                   __ATOMIC_ACQUIRE);
        __atomic_thread_fence(__ATOMIC_ACQUIRE);
        const std::uint64_t s2 = loadSeq(header);
        if (s1 == s2) {
            consistent = true;
            break;
        }
    }
    if (!consistent)
        return makeError(ErrorKind::cancelled,
                         "live region busy: seqlock never settled "
                         "(writer died mid-publish?)",
                         path_, "re-attach or inspect post-hoc");

    const std::uint32_t crc = harness::crc32(std::string_view(
        reinterpret_cast<const char *>(copy.data()), copy.size()));
    if (crc != crc_copy)
        return makeError(ErrorKind::parse,
                         "live region payload CRC mismatch", path_,
                         "region corrupt; restart the writer");

    const auto *head =
        reinterpret_cast<const LivePayloadHead *>(copy.data());
    LiveSnapshot snap;
    snap.t = head->t;
    snap.step = head->step;
    snap.epoch = head->epoch;
    snap.publish_count = head->publish_count;
    snap.wall_unix = head->wall_unix;
    snap.pid = head->pid;
    snap.finished = head->finished != 0;
    const auto *values = reinterpret_cast<const double *>(
        copy.data() + sizeof(LivePayloadHead));
    snap.values.assign(values, values + num_values_);
    return snap;
}

// ------------------------------------------- per-thread path override

namespace
{
thread_local std::string t_live_path;
} // namespace

void
setThreadLiveExportPath(std::string path)
{
    t_live_path = std::move(path);
}

const std::string &
threadLiveExportPath()
{
    return t_live_path;
}

} // namespace csalt::obs
