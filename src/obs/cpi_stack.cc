#include "obs/cpi_stack.h"

#include <algorithm>

namespace csalt::obs
{

const char *
cpiComponentName(CpiComponent c)
{
    switch (c) {
      case CpiComponent::compute:
        return "compute";
      case CpiComponent::csSwitch:
        return "cs_switch";
      case CpiComponent::dataL1d:
        return "data_l1d";
      case CpiComponent::dataL2:
        return "data_l2";
      case CpiComponent::dataL3:
        return "data_l3";
      case CpiComponent::dataDram:
        return "data_dram";
      case CpiComponent::tlbProbe:
        return "tlb_probe";
      case CpiComponent::pomAccess:
        return "pom_access";
      case CpiComponent::tsbAccess:
        return "tsb_access";
      case CpiComponent::walkMmu:
        return "walk_mmu";
      case CpiComponent::walkGuestL1:
        return "walk_guest_l1";
      case CpiComponent::walkGuestL2:
        return "walk_guest_l2";
      case CpiComponent::walkGuestL3:
        return "walk_guest_l3";
      case CpiComponent::walkGuestL4:
        return "walk_guest_l4";
      case CpiComponent::walkGuestL5:
        return "walk_guest_l5";
      case CpiComponent::walkHostL1:
        return "walk_host_l1";
      case CpiComponent::walkHostL2:
        return "walk_host_l2";
      case CpiComponent::walkHostL3:
        return "walk_host_l3";
      case CpiComponent::walkHostL4:
        return "walk_host_l4";
      case CpiComponent::walkHostL5:
        return "walk_host_l5";
      case CpiComponent::repartition:
        return "repartition";
      case CpiComponent::count:
        break;
    }
    return "?";
}

CpiComponent
walkComponent(bool host, int level)
{
    const int lv = std::clamp(level, 1, 5);
    const auto base = static_cast<std::size_t>(
        host ? CpiComponent::walkHostL1 : CpiComponent::walkGuestL1);
    return static_cast<CpiComponent>(base +
                                     static_cast<std::size_t>(lv - 1));
}

double
LatencyBreakdown::total() const
{
    double t = 0.0;
    for (const double v : v_)
        t += v;
    return t;
}

double
LatencyBreakdown::walkTotal() const
{
    double t = of(CpiComponent::walkMmu);
    for (std::size_t i =
             static_cast<std::size_t>(CpiComponent::walkGuestL1);
         i <= static_cast<std::size_t>(CpiComponent::walkHostL5); ++i)
        t += v_[i];
    return t;
}

LatencyBreakdown &
LatencyBreakdown::operator+=(const LatencyBreakdown &other)
{
    for (std::size_t i = 0; i < kNumCpiComponents; ++i)
        v_[i] += other.v_[i];
    return *this;
}

void
LatencyBreakdown::addScaled(const LatencyBreakdown &src,
                            double target_total)
{
    const double src_total = src.total();
    if (src_total <= 0.0 || target_total <= 0.0)
        return;

    std::size_t last = kNumCpiComponents;
    for (std::size_t i = 0; i < kNumCpiComponents; ++i)
        if (src.v_[i] > 0.0)
            last = i;

    double added = 0.0;
    for (std::size_t i = 0; i < kNumCpiComponents; ++i) {
        if (src.v_[i] <= 0.0 || i == last)
            continue;
        const double share = src.v_[i] / src_total * target_total;
        v_[i] += share;
        added += share;
    }
    // The last nonzero component absorbs the rounding remainder, so
    // the amounts added sum to target_total exactly.
    v_[last] += target_total - added;
}

} // namespace csalt::obs
