/**
 * @file
 * In-simulator self-profiler: where does the *host* wall clock go?
 *
 * Scoped RAII timers (CSALT_PROFILE_SCOPE) wrap the simulator's own
 * hot phases — TLB probe, POM access, page walk, cache access, DRAM,
 * journal I/O, invariant checking — and aggregate the elapsed
 * nanoseconds per phase into log2-bucketed obs::Histograms. This is
 * host time, not simulated time: the CPI stack (obs/cpi_stack.h)
 * attributes *simulated* cycles; the PhaseProfiler attributes the
 * simulator's execution time, so "why is this sweep slow" can be
 * answered before attempting throughput work (ROADMAP "next 10x").
 *
 * Aggregation is per-thread (each JobRunner worker accumulates its
 * own state, so a job's profile covers exactly that job's work) with
 * an optional global merge across every thread that ever recorded.
 * Disabled by default: a disarmed scope costs one relaxed atomic load
 * and a branch, and never touches simulated behavior either way.
 *
 * Enabled via PhaseProfiler::setEnabled(true), csalt-sim --profile,
 * or CSALT_SELF_PROFILE=1. Results surface as the "self_profile"
 * section of the metrics JSON and the --profile summary table.
 */

#ifndef CSALT_OBS_PHASE_PROFILER_H
#define CSALT_OBS_PHASE_PROFILER_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/histogram.h"

namespace csalt::obs
{

/** The instrumented simulator phases (host-time attribution). */
enum class Phase : std::uint8_t
{
    tlb_probe,    //!< TlbHierarchy::lookup
    pom_access,   //!< MemorySystem::pomLookup
    page_walk,    //!< PageWalker::walk (native or nested)
    cache_access, //!< MemorySystem::dataAccess (includes dram)
    dram,         //!< DramChannel::access
    journal_io,   //!< harness::Journal::append
    checker,      //!< check::checkSystem (paranoid mode)
};

constexpr std::size_t kNumPhases = 7;

/** Stable lowercase phase name ("tlb_probe", ...). */
const char *phaseName(Phase phase);

/** Per-thread (or merged) profile: one ns-histogram per phase. */
struct PhaseReport
{
    struct Entry
    {
        Histogram::Summary digest; //!< per-scope ns distribution
    };
    std::array<Entry, kNumPhases> phases{};

    /** Sum of every phase's total ns (phases nest; inclusive). */
    double totalNs() const
    {
        double total = 0.0;
        for (const auto &p : phases)
            total += p.digest.sum;
        return total;
    }
};

/**
 * Global profiler switch + per-thread accumulators. All methods are
 * static: the profiler is process-wide infrastructure, like the
 * active EventTracer.
 */
class PhaseProfiler
{
  public:
    /** Arm/disarm every CSALT_PROFILE_SCOPE in the process. */
    static void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    static bool enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Honour CSALT_SELF_PROFILE=1 (read once, idempotent). */
    static void enableFromEnv();

    /** Record one completed scope (called by ScopedPhase). */
    static void record(Phase phase, std::uint64_t ns);

    /** The calling thread's accumulated profile. */
    static PhaseReport threadReport();

    /** Merge across every thread that ever recorded. */
    static PhaseReport globalReport();

    /** Drop all accumulated state (every thread). */
    static void reset();

  private:
    static std::atomic<bool> enabled_;
};

/**
 * RAII phase scope. Armed state is latched at construction, so
 * toggling the profiler mid-scope never produces a torn sample.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase phase)
        : phase_(phase), armed_(PhaseProfiler::enabled())
    {
        if (armed_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedPhase()
    {
        if (!armed_)
            return;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        PhaseProfiler::record(phase_,
                              ns > 0 ? static_cast<std::uint64_t>(ns)
                                     : 0);
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Phase phase_;
    bool armed_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace csalt::obs

/** Time the rest of the enclosing scope as @p phase. */
#define CSALT_PROFILE_SCOPE(phase)                                    \
    ::csalt::obs::ScopedPhase csalt_profile_scope_##phase(            \
        ::csalt::obs::Phase::phase)

#endif // CSALT_OBS_PHASE_PROFILER_H
