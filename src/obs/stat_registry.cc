#include "obs/stat_registry.h"

#include "common/log.h"

namespace csalt::obs
{

void
StatRegistry::add(std::string name, Kind kind, Getter get)
{
    if (index_.count(name))
        fatal("StatRegistry: duplicate stat '" + name + "'");
    index_.emplace(name, entries_.size());
    entries_.push_back(Entry{std::move(name), kind, std::move(get)});
}

void
StatRegistry::addCounter(const std::string &name,
                         const std::uint64_t *value)
{
    if (!value)
        fatal("StatRegistry: null counter '" + name + "'");
    add(name, Kind::counter,
        [value] { return static_cast<double>(*value); });
}

void
StatRegistry::addGauge(const std::string &name, Getter get)
{
    if (!get)
        fatal("StatRegistry: null gauge '" + name + "'");
    add(name, Kind::gauge, std::move(get));
}

bool
StatRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

double
StatRegistry::valueOf(const std::string &name) const
{
    const auto it = index_.find(name);
    if (it == index_.end())
        fatal("StatRegistry: unknown stat '" + name + "'");
    return entries_[it->second].get();
}

} // namespace csalt::obs
