#include "obs/stat_registry.h"

#include "common/log.h"

namespace csalt::obs
{

void
StatRegistry::checkName(const std::string &name) const
{
    if (index_.count(name) || hist_index_.count(name))
        fatal("StatRegistry: duplicate stat '" + name + "'");
}

bool
StatRegistry::rejectLate(const std::string &name) const
{
    if (!frozen_)
        return false;
#ifndef NDEBUG
    panic("StatRegistry: stat '" + name +
          "' registered after freeze(); it would be missing from "
          "every attached sampler/consumer");
#else
    warnOnce("StatRegistry: stat '" + name +
             "' registered after freeze(); dropped");
    return true;
#endif
}

void
StatRegistry::add(std::string name, Kind kind, Getter get)
{
    if (rejectLate(name))
        return;
    checkName(name);
    index_.emplace(name, entries_.size());
    entries_.push_back(Entry{std::move(name), kind, std::move(get)});
}

void
StatRegistry::addCounter(const std::string &name,
                         const std::uint64_t *value)
{
    if (!value)
        fatal("StatRegistry: null counter '" + name + "'");
    add(name, Kind::counter,
        [value] { return static_cast<double>(*value); });
}

void
StatRegistry::addGauge(const std::string &name, Getter get)
{
    if (!get)
        fatal("StatRegistry: null gauge '" + name + "'");
    add(name, Kind::gauge, std::move(get));
}

void
StatRegistry::addHistogram(const std::string &name,
                           const Histogram *hist)
{
    if (!hist)
        fatal("StatRegistry: null histogram '" + name + "'");
    if (rejectLate(name))
        return;
    checkName(name);
    hist_index_.emplace(name, hists_.size());
    hists_.push_back(HistEntry{name, hist});
}

bool
StatRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0 || hist_index_.count(name) != 0;
}

double
StatRegistry::valueOf(const std::string &name) const
{
    const auto it = index_.find(name);
    if (it == index_.end())
        fatal("StatRegistry: unknown stat '" + name + "'");
    return entries_[it->second].get();
}

const Histogram &
StatRegistry::histogramOf(const std::string &name) const
{
    const auto it = hist_index_.find(name);
    if (it == hist_index_.end())
        fatal("StatRegistry: unknown histogram '" + name + "'");
    return *hists_[it->second].hist;
}

} // namespace csalt::obs
