/**
 * @file
 * Live telemetry export: a versioned shared-memory snapshot region a
 * *running* simulation publishes into, and an external reader maps
 * read-only — the attach path behind `trace_inspect --attach`.
 *
 * The region is a plain file (by default under /dev/shm, so publishes
 * never touch a disk) with a fixed layout:
 *
 *   [ LiveHeader | names block | payload ]
 *
 * The names block ('\n'-separated StatRegistry names, written once at
 * create) fixes the value order; the payload (timestamp, step, epoch,
 * heartbeat, finished flag, then one double per registered stat) is
 * republished at every epoch/sample boundary under a seqlock:
 *
 *   writer:  seq++ (odd)  -> write payload -> crc -> seq++ (even)
 *   reader:  s1 = seq; if odd retry; copy payload+crc; s2 = seq;
 *            consistent iff s1 == s2 (then the CRC must also match —
 *            a mismatch with a stable seq means external corruption).
 *
 * The CRC32 (same polynomial as the PR 4 results journal) stamps the
 * payload bytes so a reader never trusts a region torn by a writer
 * that died mid-publish (seq stuck odd) or corrupted on disk.
 *
 * Writers: System::run() publishes automatically when live export is
 * enabled (explicitly, via $CSALT_LIVE_EXPORT, or through the
 * per-thread path the JobRunner installs under $CSALT_LIVE_DIR).
 * Readers: LiveReader::open() + read(), used by trace_inspect and the
 * tests. Both sides are wait-free except the reader's bounded retry.
 */

#ifndef CSALT_OBS_LIVE_EXPORT_H
#define CSALT_OBS_LIVE_EXPORT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/stat_registry.h"

namespace csalt::obs
{

/** Layout version stamped into the region header. */
constexpr std::uint32_t kLiveLayoutVersion = 1;

/** One consistent read of a live region. */
struct LiveSnapshot
{
    double t = 0.0;                  //!< simulated cycles
    std::uint64_t step = 0;          //!< scheduler steps
    std::uint64_t epoch = 0;         //!< occupancy epochs published
    std::uint64_t publish_count = 0; //!< heartbeat (monotone)
    double wall_unix = 0.0;          //!< writer's CLOCK_REALTIME (s)
    std::uint32_t pid = 0;           //!< writer process
    bool finished = false;           //!< writer closed the region
    /** Values aligned with names(); registry entries() order. */
    std::vector<double> values;
};

/**
 * Writer side. Created against a *frozen* StatRegistry (the layout —
 * names and value count — must not change after create).
 */
class LiveExport
{
  public:
    /** /dev/shm when usable, else $TMPDIR, else /tmp. */
    static std::string defaultDir();

    /** The conventional region path for process @p pid. */
    static std::string defaultPathFor(std::uint64_t pid);

    /**
     * Create (truncate) the region file for @p registry and map it.
     * Typed io error when the file cannot be created or mapped.
     */
    static Expected<std::unique_ptr<LiveExport>>
    create(const std::string &path, const StatRegistry &registry);

    /** Unmaps; the file stays behind for post-mortem attach. */
    ~LiveExport();

    LiveExport(const LiveExport &) = delete;
    LiveExport &operator=(const LiveExport &) = delete;

    /**
     * Publish the registry's current values under the seqlock.
     * @p finished marks the final publish (readers detach on it).
     */
    void publish(double t, std::uint64_t step, std::uint64_t epoch,
                 bool finished = false);

    /** Publishes so far (the region heartbeat). */
    std::uint64_t publishCount() const { return publish_count_; }

    const std::string &path() const { return path_; }

  private:
    LiveExport() = default;

    const StatRegistry *registry_ = nullptr;
    std::string path_;
    unsigned char *map_ = nullptr;
    std::size_t map_size_ = 0;
    std::uint64_t publish_count_ = 0;
};

/** Reader side: maps an existing region read-only. */
class LiveReader
{
  public:
    /**
     * Map @p path read-only. Typed errors: io (missing/unmappable),
     * parse (bad magic, wrong layout version, or a size that does
     * not match its own header).
     */
    static Expected<LiveReader> open(const std::string &path);

    LiveReader(LiveReader &&other) noexcept;
    LiveReader &operator=(LiveReader &&other) noexcept;
    ~LiveReader();

    LiveReader(const LiveReader &) = delete;
    LiveReader &operator=(const LiveReader &) = delete;

    /** Stat names, in payload value order (parsed at open). */
    const std::vector<std::string> &names() const { return names_; }

    /**
     * One consistent snapshot. Spins on the seqlock for a bounded
     * number of attempts; typed errors: cancelled (writer busy or
     * died mid-publish — seq stayed odd/unstable), parse (CRC
     * mismatch on a stable payload: the region is corrupt).
     */
    Expected<LiveSnapshot> read() const;

    const std::string &path() const { return path_; }

  private:
    LiveReader() = default;

    std::string path_;
    const unsigned char *map_ = nullptr;
    std::size_t map_size_ = 0;
    std::uint32_t num_values_ = 0;
    std::size_t payload_offset_ = 0;
    std::size_t payload_size_ = 0;
    std::vector<std::string> names_;
};

/**
 * Per-thread live-region path override, installed by the harness
 * JobRunner around each job ($CSALT_LIVE_DIR/<job key>.live) and
 * consumed by System::run() when no explicit path was set. Empty
 * string clears the override.
 */
void setThreadLiveExportPath(std::string path);
const std::string &threadLiveExportPath();

} // namespace csalt::obs

#endif // CSALT_OBS_LIVE_EXPORT_H
