#include "obs/phase_profiler.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace csalt::obs
{

namespace
{

/** One thread's accumulators; kept alive after thread exit so a
 *  global merge never reads freed memory. */
struct ThreadState
{
    std::array<Histogram, kNumPhases> hists;
    std::mutex mu; //!< record vs. cross-thread merge
};

std::mutex g_registry_mu;
std::vector<std::shared_ptr<ThreadState>> &
registry()
{
    static std::vector<std::shared_ptr<ThreadState>> states;
    return states;
}

ThreadState &
threadState()
{
    thread_local std::shared_ptr<ThreadState> state = [] {
        auto s = std::make_shared<ThreadState>();
        std::lock_guard<std::mutex> lock(g_registry_mu);
        registry().push_back(s);
        return s;
    }();
    return *state;
}

PhaseReport
reportOf(const std::array<Histogram, kNumPhases> &hists)
{
    PhaseReport report;
    for (std::size_t i = 0; i < kNumPhases; ++i)
        report.phases[i].digest = hists[i].percentileSummary();
    return report;
}

} // namespace

std::atomic<bool> PhaseProfiler::enabled_{false};

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::tlb_probe:
        return "tlb_probe";
      case Phase::pom_access:
        return "pom_access";
      case Phase::page_walk:
        return "page_walk";
      case Phase::cache_access:
        return "cache_access";
      case Phase::dram:
        return "dram";
      case Phase::journal_io:
        return "journal_io";
      case Phase::checker:
        return "checker";
    }
    return "?";
}

void
PhaseProfiler::enableFromEnv()
{
    const char *env = std::getenv("CSALT_SELF_PROFILE");
    if (env && *env && *env != '0')
        setEnabled(true);
}

void
PhaseProfiler::record(Phase phase, std::uint64_t ns)
{
    ThreadState &state = threadState();
    std::lock_guard<std::mutex> lock(state.mu);
    state.hists[static_cast<std::size_t>(phase)].record(ns);
}

PhaseReport
PhaseProfiler::threadReport()
{
    ThreadState &state = threadState();
    std::lock_guard<std::mutex> lock(state.mu);
    return reportOf(state.hists);
}

PhaseReport
PhaseProfiler::globalReport()
{
    std::array<Histogram, kNumPhases> merged;
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (const auto &state : registry()) {
        std::lock_guard<std::mutex> slock(state->mu);
        for (std::size_t i = 0; i < kNumPhases; ++i)
            merged[i].merge(state->hists[i]);
    }
    return reportOf(merged);
}

void
PhaseProfiler::reset()
{
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (const auto &state : registry()) {
        std::lock_guard<std::mutex> slock(state->mu);
        for (auto &hist : state->hists)
            hist.clear();
    }
}

} // namespace csalt::obs
