/**
 * @file
 * Minimal JSON support for the telemetry layer: a recursive-descent
 * parser producing a DOM-style JsonValue (used by trace_inspect and
 * the round-trip tests) and the writer helpers the emitters share
 * (string escaping, shortest-faithful number formatting).
 *
 * Deliberately tiny: no external dependency, no streaming API, no
 * UTF-16 surrogate handling beyond pass-through — telemetry output is
 * ASCII identifiers and numbers.
 */

#ifndef CSALT_OBS_JSON_H
#define CSALT_OBS_JSON_H

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csalt::obs
{

/** One parsed JSON value (tagged union over the seven JSON kinds). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    Kind kind = Kind::null;
    bool bool_v = false;
    double num_v = 0.0;
    std::string str_v;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isNull() const { return kind == Kind::null; }
    bool isNumber() const { return kind == Kind::number; }
    bool isString() const { return kind == Kind::string; }
    bool isArray() const { return kind == Kind::array; }
    bool isObject() const { return kind == Kind::object; }

    /** Member lookup on an object; nullptr when absent or not one. */
    const JsonValue *find(std::string_view key) const;

    /** Number value of member @p key, or @p dflt when absent. */
    double numberOr(std::string_view key, double dflt) const;

    /** String value of member @p key, or @p dflt when absent. */
    std::string stringOr(std::string_view key,
                         const std::string &dflt) const;
};

/**
 * Parse one complete JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 * @param error when non-null, receives a description on failure
 * @return the value, or nullopt on malformed input
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

/** Escape @p s for inclusion inside a double-quoted JSON string. */
std::string escapeJson(std::string_view s);

/**
 * Write @p v as a JSON number: integral values within 2^53 print
 * without a decimal point (counters stay grep-able), the rest with
 * enough digits to round-trip; non-finite values degrade to 0.
 */
void writeJsonNumber(std::ostream &os, double v);

} // namespace csalt::obs

#endif // CSALT_OBS_JSON_H
