/**
 * @file
 * Host-physical address-space layout.
 *
 * Disjoint ranges:
 *   [0, data)                ordinary data pages, off-chip DDR4
 *   [data, data+pt)          page-table pages, off-chip DDR4
 *   [data+pt, data+pt+pom)   the POM-TLB, die-stacked DRAM
 *   [pomLimit, +victima)     Victima cache-resident TLB entry lines
 *                            (zero-sized unless the scheme is active)
 *
 * The cache controller classifies a line as data vs translation by
 * address range (paper §3.1, "Classifying Addresses as Data or TLB"
 * — the tag-inspection option that needs no extra metadata).
 */

#ifndef CSALT_MEM_MEMORY_MAP_H
#define CSALT_MEM_MEMORY_MAP_H

#include <cstdint>

#include "common/types.h"

namespace csalt
{

/** Which DRAM device backs an address. */
enum class Backing : std::uint8_t
{
    offChip, //!< DDR4-2133
    stacked, //!< die-stacked DRAM (holds the POM-TLB)
};

/** Immutable description of the physical address space. */
class MemoryMap
{
  public:
    /**
     * @param data_bytes size of the ordinary-data range
     * @param pt_bytes size of the page-table range
     * @param pom_bytes size of the POM-TLB range
     * @param victima_bytes size of the Victima entry-line range
     */
    MemoryMap(std::uint64_t data_bytes, std::uint64_t pt_bytes,
              std::uint64_t pom_bytes,
              std::uint64_t victima_bytes = 0);

    Addr dataBase() const { return 0; }
    Addr dataLimit() const { return data_bytes_; }
    Addr ptBase() const { return data_bytes_; }
    Addr ptLimit() const { return data_bytes_ + pt_bytes_; }
    Addr pomBase() const { return data_bytes_ + pt_bytes_; }
    Addr pomLimit() const { return data_bytes_ + pt_bytes_ + pom_bytes_; }
    Addr victimaBase() const { return pomLimit(); }
    Addr victimaLimit() const { return pomLimit() + victima_bytes_; }

    bool inData(Addr a) const { return a < dataLimit(); }
    bool inPageTable(Addr a) const
    {
        return a >= ptBase() && a < ptLimit();
    }
    bool inPom(Addr a) const { return a >= pomBase() && a < pomLimit(); }
    bool inVictima(Addr a) const
    {
        return a >= victimaBase() && a < victimaLimit();
    }

    /** Data vs translation classification for cache partitioning. */
    LineType classify(Addr a) const
    {
        return inData(a) ? LineType::data : LineType::translation;
    }

    /** Which DRAM device services a physical address. */
    Backing backingOf(Addr a) const
    {
        return inPom(a) ? Backing::stacked : Backing::offChip;
    }

  private:
    std::uint64_t data_bytes_;
    std::uint64_t pt_bytes_;
    std::uint64_t pom_bytes_;
    std::uint64_t victima_bytes_;
};

} // namespace csalt

#endif // CSALT_MEM_MEMORY_MAP_H
