#include "mem/memory_map.h"

#include "common/log.h"

namespace csalt
{

MemoryMap::MemoryMap(std::uint64_t data_bytes, std::uint64_t pt_bytes,
                     std::uint64_t pom_bytes,
                     std::uint64_t victima_bytes)
    : data_bytes_(data_bytes), pt_bytes_(pt_bytes),
      pom_bytes_(pom_bytes), victima_bytes_(victima_bytes)
{
    if (data_bytes % kPageSize || pt_bytes % kPageSize ||
        pom_bytes % kPageSize || victima_bytes % kPageSize) {
        fatal("MemoryMap ranges must be page aligned");
    }
    if (data_bytes == 0 || pt_bytes == 0)
        fatal("MemoryMap: data and page-table ranges must be nonzero");
}

} // namespace csalt
