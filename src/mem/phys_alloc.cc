#include "mem/phys_alloc.h"

#include "common/log.h"

namespace csalt
{

FrameAllocator::FrameAllocator(Addr base, Addr limit,
                               std::uint64_t seed, double huge_share)
    : base_(base), limit_(limit), rng_(seed)
{
    if (base % kPageSize || limit % kPageSize || limit <= base)
        fatal("FrameAllocator: bad range");
    if (huge_share < 0.0 || huge_share > 1.0)
        fatal("FrameAllocator: huge_share out of [0,1]");

    // Reserve the top of the range (rounded to 2MB) for huge frames.
    const Addr span = limit - base;
    Addr huge_bytes =
        static_cast<Addr>(static_cast<double>(span) * huge_share);
    huge_bytes &= ~(kHugePageSize - 1);
    const Addr small_limit = limit - huge_bytes;

    small_frames_ = (small_limit - base) >> kPageShift;
    small_used_.assign(small_frames_, false);
    huge_next_ = limit & ~(kHugePageSize - 1);
}

Addr
FrameAllocator::alloc4K()
{
    if (small_count_ >= small_frames_)
        fatal("FrameAllocator: out of 4KB frames");
    std::uint64_t idx = rng_.below(small_frames_);
    while (small_used_[idx])
        idx = (idx + 1) % small_frames_;
    small_used_[idx] = true;
    ++small_count_;
    allocated_bytes_ += kPageSize;
    return base_ + (idx << kPageShift);
}

Addr
FrameAllocator::alloc2M()
{
    const Addr small_limit =
        base_ + (small_frames_ << kPageShift);
    if (huge_next_ < small_limit + kHugePageSize)
        fatal("FrameAllocator: out of 2MB frames");
    huge_next_ -= kHugePageSize;
    allocated_bytes_ += kHugePageSize;
    return huge_next_;
}

} // namespace csalt
