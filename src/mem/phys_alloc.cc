#include "mem/phys_alloc.h"

#include "common/log.h"
#include "snapshot/state_io.h"

namespace csalt
{

FrameAllocator::FrameAllocator(Addr base, Addr limit,
                               std::uint64_t seed, double huge_share)
    : base_(base), limit_(limit), rng_(seed)
{
    if (base % kPageSize || limit % kPageSize || limit <= base)
        fatal("FrameAllocator: bad range");
    if (huge_share < 0.0 || huge_share > 1.0)
        fatal("FrameAllocator: huge_share out of [0,1]");

    // Reserve the top of the range (rounded to 2MB) for huge frames.
    const Addr span = limit - base;
    Addr huge_bytes =
        static_cast<Addr>(static_cast<double>(span) * huge_share);
    huge_bytes &= ~(kHugePageSize - 1);
    const Addr small_limit = limit - huge_bytes;

    small_frames_ = (small_limit - base) >> kPageShift;
    small_used_.assign(small_frames_, false);
    huge_next_ = limit & ~(kHugePageSize - 1);
}

Addr
FrameAllocator::alloc4K()
{
    if (small_count_ >= small_frames_)
        fatal("FrameAllocator: out of 4KB frames");
    std::uint64_t idx = rng_.below(small_frames_);
    while (small_used_[idx])
        idx = (idx + 1) % small_frames_;
    small_used_[idx] = true;
    ++small_count_;
    allocated_bytes_ += kPageSize;
    return base_ + (idx << kPageShift);
}

Addr
FrameAllocator::alloc2M()
{
    const Addr small_limit =
        base_ + (small_frames_ << kPageShift);
    if (huge_next_ < small_limit + kHugePageSize)
        fatal("FrameAllocator: out of 2MB frames");
    huge_next_ -= kHugePageSize;
    allocated_bytes_ += kHugePageSize;
    return huge_next_;
}


void
FrameAllocator::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(base_);
    s.putU64(limit_);
    rng_.saveState(s);
    s.putU64(small_frames_);
    // Bit-packed bitmap: slot i -> byte i/8, bit i%8.
    std::uint8_t byte = 0;
    for (std::uint64_t i = 0; i < small_frames_; ++i) {
        if (small_used_[i])
            byte |= static_cast<std::uint8_t>(1u << (i % 8));
        if ((i % 8) == 7 || i + 1 == small_frames_) {
            s.putU8(byte);
            byte = 0;
        }
    }
    s.putU64(small_count_);
    s.putU64(huge_next_);
    s.putU64(allocated_bytes_);
}

void
FrameAllocator::loadState(snapshot::StateDeserializer &d)
{
    if (d.getU64() != base_ || d.getU64() != limit_)
        d.fail("frame-allocator range mismatch");
    rng_.loadState(d);
    if (d.getU64() != small_frames_)
        d.fail("frame-allocator 4KB-slot count mismatch");
    std::uint64_t used = 0;
    std::uint8_t byte = 0;
    for (std::uint64_t i = 0; i < small_frames_; ++i) {
        if (i % 8 == 0)
            byte = d.getU8();
        const bool bit = (byte >> (i % 8)) & 1u;
        small_used_[i] = bit;
        used += bit;
    }
    small_count_ = d.getU64();
    if (small_count_ != used)
        d.fail("frame-allocator bitmap population mismatch");
    huge_next_ = d.getU64();
    if (huge_next_ > limit_ || huge_next_ < base_)
        d.fail("frame-allocator huge bump pointer out of range");
    allocated_bytes_ = d.getU64();
}

} // namespace csalt
