#include "mem/dram.h"

#include <algorithm>

#include "obs/phase_profiler.h"
#include "obs/stat_registry.h"
#include "snapshot/state_io.h"

namespace csalt
{

DramChannel::DramChannel(const DramParams &params)
    : params_(params), banks_(params.banks)
{
}

void
DramChannel::drainTo(Cycles now)
{
    if (now <= drain_time_)
        return; // out-of-order arrival: see the current backlog
    const auto elapsed = static_cast<double>(now - drain_time_);
    drain_time_ = now;
    channel_backlog_ = std::max(0.0, channel_backlog_ - elapsed);
    for (auto &bank : banks_)
        bank.backlog = std::max(0.0, bank.backlog - elapsed);
}

Cycles
DramChannel::access(Addr addr, Cycles now, DramAccessDetail *detail)
{
    CSALT_PROFILE_SCOPE(dram);
    // Row-interleaved mapping: consecutive rows rotate across banks.
    const std::uint64_t row_global = addr / params_.row_bytes;
    const std::uint64_t bank_idx = row_global % params_.banks;
    const std::uint64_t row = row_global / params_.banks;

    drainTo(now);
    Bank &bank = banks_[bank_idx];

    Cycles row_latency;
    bool row_hit = false;
    if (bank.any_open && bank.open_row == row) {
        row_latency = params_.tcas;
        row_hit = true;
        ++stats_.row_hits;
    } else if (bank.any_open) {
        row_latency = params_.trp + params_.trcd + params_.tcas;
        ++stats_.row_conflicts;
    } else {
        row_latency = params_.trcd + params_.tcas;
        ++stats_.row_cold;
    }
    bank.open_row = row;
    bank.any_open = true;

    // Wait behind outstanding work: the bank must finish its queue
    // and the channel must have a free burst slot.
    const double queue =
        std::max(bank.backlog, channel_backlog_);
    const Cycles service = row_latency + params_.burst;
    bank.backlog = queue + static_cast<double>(service);
    channel_backlog_ += static_cast<double>(params_.burst);

    ++stats_.accesses;
    stats_.queue_wait_cycles += static_cast<Cycles>(queue);
    stats_.service_cycles += service + params_.overhead;
    const Cycles total =
        static_cast<Cycles>(queue) + service + params_.overhead;
    if (detail) {
        detail->queue = static_cast<Cycles>(queue);
        detail->service = service + params_.overhead;
        detail->row_hit = row_hit;
    }
    lat_hist_.record(total);
    return total;
}

void
DramChannel::registerStats(obs::StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.addCounter(prefix + ".accesses", &stats_.accesses);
    reg.addCounter(prefix + ".row_hits", &stats_.row_hits);
    reg.addCounter(prefix + ".row_conflicts", &stats_.row_conflicts);
    reg.addCounter(prefix + ".row_cold", &stats_.row_cold);
    reg.addCounter(prefix + ".queue_wait_cycles",
                   &stats_.queue_wait_cycles);
    reg.addCounter(prefix + ".service_cycles", &stats_.service_cycles);
    reg.addGauge(prefix + ".row_hit_rate",
                 [this] { return stats_.rowHitRate(); });
    reg.addHistogram(prefix + ".lat", &lat_hist_);
}


void
DramChannel::saveState(snapshot::StateSerializer &s) const
{
    s.putU64(banks_.size());
    for (const Bank &bank : banks_) {
        s.putU64(bank.open_row);
        s.putBool(bank.any_open);
        s.putDouble(bank.backlog);
    }
    s.putDouble(channel_backlog_);
    s.putU64(drain_time_);
    s.putU64(stats_.accesses);
    s.putU64(stats_.row_hits);
    s.putU64(stats_.row_conflicts);
    s.putU64(stats_.row_cold);
    s.putU64(stats_.queue_wait_cycles);
    s.putU64(stats_.service_cycles);
    lat_hist_.saveState(s);
}

void
DramChannel::loadState(snapshot::StateDeserializer &d)
{
    if (d.getU64() != banks_.size())
        d.fail("DRAM bank count mismatch");
    for (Bank &bank : banks_) {
        bank.open_row = d.getU64();
        bank.any_open = d.getBool();
        bank.backlog = d.getDouble();
    }
    channel_backlog_ = d.getDouble();
    drain_time_ = d.getU64();
    stats_.accesses = d.getU64();
    stats_.row_hits = d.getU64();
    stats_.row_conflicts = d.getU64();
    stats_.row_cold = d.getU64();
    stats_.queue_wait_cycles = d.getU64();
    stats_.service_cycles = d.getU64();
    lat_hist_.loadState(d);
}

} // namespace csalt
