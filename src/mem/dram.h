/**
 * @file
 * Open-page DRAM channel timing model.
 *
 * One instance per device (off-chip DDR4-2133 and the die-stacked
 * DRAM holding the POM-TLB; paper Table 2). The model captures what
 * the evaluation depends on: row-buffer locality (hit = tCAS only),
 * precharge+activate penalties on row conflicts, and serialisation of
 * bursts on the shared channel, which makes concurrent cores and the
 * translation stream contend realistically.
 */

#ifndef CSALT_MEM_DRAM_H
#define CSALT_MEM_DRAM_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "obs/histogram.h"

namespace csalt
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/** Counters for one DRAM channel. */
struct DramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_conflicts = 0;
    std::uint64_t row_cold = 0;
    std::uint64_t queue_wait_cycles = 0;
    std::uint64_t service_cycles = 0;

    double
    rowHitRate() const
    {
        return accesses ? static_cast<double>(row_hits) / accesses : 0.0;
    }
    double
    avgLatency() const
    {
        return accesses ? static_cast<double>(queue_wait_cycles +
                                              service_cycles) /
                              accesses
                        : 0.0;
    }
};

/**
 * Per-access latency split (span tracing). Queue + service sum to
 * the value access() returns.
 */
struct DramAccessDetail
{
    Cycles queue = 0;   //!< wait behind bank/channel backlog
    Cycles service = 0; //!< row access + burst + bus overhead
    bool row_hit = false;
};

/** A single-rank multi-bank DRAM channel. */
class DramChannel
{
  public:
    explicit DramChannel(const DramParams &params);

    /**
     * Service one 64B line access.
     *
     * @param addr physical byte address
     * @param now requestor's current time
     * @param detail when non-null, receives the queue/service split
     * @return total latency in core cycles (queueing + service)
     */
    Cycles access(Addr addr, Cycles now,
                  DramAccessDetail *detail = nullptr);

    const DramStats &stats() const { return stats_; }

    void
    clearStats()
    {
        stats_ = DramStats{};
        lat_hist_.clear();
    }

    const std::string &name() const { return params_.name; }

    /** Distribution of total access latencies (count == accesses). */
    const obs::Histogram &latHist() const { return lat_hist_; }

    /**
     * Register counters + row-hit-rate gauge under "<prefix>.*" and
     * the access-latency histogram as "<prefix>.lat".
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint: bank rows/backlogs, drain clock, counters. */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    /**
     * Contention is modelled with leaky-bucket backlogs rather than
     * absolute busy-until reservations: cores in a trace-driven
     * min-clock simulation present accesses slightly out of time
     * order (one core can simulate a 2000-cycle walk before a peer's
     * earlier access), and future-time reservations would charge
     * phantom queueing. Backlog drains one cycle of work per elapsed
     * cycle of the latest observed time and new work queues behind
     * whatever is outstanding — stable under saturation, zero-cost
     * when idle, and order-tolerant.
     */
    struct Bank
    {
        std::uint64_t open_row = ~std::uint64_t{0};
        bool any_open = false;
        double backlog = 0.0; //!< outstanding bank work, cycles
    };

    void drainTo(Cycles now);

    DramParams params_;
    std::vector<Bank> banks_;
    double channel_backlog_ = 0.0;
    Cycles drain_time_ = 0; //!< latest time backlogs were drained to
    DramStats stats_;
    obs::Histogram lat_hist_; //!< total access-latency distribution
};

} // namespace csalt

#endif // CSALT_MEM_DRAM_H
