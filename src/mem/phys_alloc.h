/**
 * @file
 * Deterministic pseudo-random physical frame allocator.
 *
 * Real OS allocators hand out frames with little spatial correlation
 * to virtual order, which is what spreads cache/DRAM-bank indices.
 * We reproduce that by hashing an allocation counter into the frame
 * space and linear-probing a free bitmap. 2MB (huge) frames come from
 * the top of the range, 4KB frames from the bottom, so both stay
 * aligned without fragmentation bookkeeping.
 */

#ifndef CSALT_MEM_PHYS_ALLOC_H
#define CSALT_MEM_PHYS_ALLOC_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace csalt
{

namespace snapshot
{
class StateSerializer;
class StateDeserializer;
} // namespace snapshot

/** Allocator over [base, limit) handing out 4KB and 2MB frames. */
class FrameAllocator
{
  public:
    /**
     * @param base start of the managed range (page aligned)
     * @param limit end of the managed range (page aligned)
     * @param seed determinism seed
     * @param huge_share fraction of the range reserved for 2MB
     *        frames (0 for pools that only ever serve 4KB frames,
     *        e.g. page-table nodes)
     */
    FrameAllocator(Addr base, Addr limit, std::uint64_t seed,
                   double huge_share = 0.5);

    /** Allocate one 4KB frame; fatal() when exhausted. */
    Addr alloc4K();

    /** Allocate one 2MB-aligned huge frame; fatal() when exhausted. */
    Addr alloc2M();

    /** Bytes handed out so far. */
    std::uint64_t allocatedBytes() const { return allocated_bytes_; }

    /** Total manageable bytes. */
    std::uint64_t capacityBytes() const { return limit_ - base_; }

    /**
     * Checkpoint: RNG stream, bit-packed 4KB bitmap, huge bump
     * pointer. Geometry (base/limit) is verified, not restored —
     * it is config-derived.
     */
    void saveState(snapshot::StateSerializer &s) const;
    void loadState(snapshot::StateDeserializer &d);

  private:
    Addr base_;
    Addr limit_;
    Rng rng_;
    std::uint64_t small_frames_;    //!< number of 4KB slots
    std::vector<bool> small_used_;  //!< bitmap over 4KB slots
    std::uint64_t small_count_ = 0; //!< 4KB slots in use
    Addr huge_next_;                //!< bump pointer, top-down, 2MB step
    std::uint64_t allocated_bytes_ = 0;
};

} // namespace csalt

#endif // CSALT_MEM_PHYS_ALLOC_H
