#include "common/flat_map.h"

#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace csalt
{
namespace
{

TEST(FlatMap, EmptyFindsNothing)
{
    FlatMap64<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(0), nullptr);
    EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatMap, InsertThenFind)
{
    FlatMap64<std::uint64_t> map;
    map[7] = 70;
    map[0] = 1; // key 0 is a valid key (only ~0 is reserved)
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 70u);
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 1u);
    EXPECT_EQ(map.find(8), nullptr);
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, OverwriteKeepsSize)
{
    FlatMap64<int> map;
    map[5] = 1;
    map[5] = 2;
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.find(5), 2);
}

TEST(FlatMap, ReservedKeyPanics)
{
    FlatMap64<int> map;
    EXPECT_DEATH(map[FlatMap64<int>::kEmptyKey] = 1, "reserved key");
}

TEST(FlatMap, GrowthPreservesContents)
{
    // Start tiny so many doublings happen.
    FlatMap64<std::uint64_t> map(16);
    for (std::uint64_t k = 0; k < 10000; ++k)
        map[k * 3 + 1] = k;
    EXPECT_EQ(map.size(), 10000u);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        ASSERT_NE(map.find(k * 3 + 1), nullptr) << k;
        EXPECT_EQ(*map.find(k * 3 + 1), k);
    }
    EXPECT_EQ(map.find(0), nullptr);
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomOps)
{
    FlatMap64<std::uint64_t> flat(16);
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(1234);
    for (int i = 0; i < 50000; ++i) {
        // Mix dense (VPN-like sequential) and sparse keys.
        const std::uint64_t key = (i % 3 == 0)
                                      ? rng.below(256)
                                      : rng.next() >> 12;
        if (key == FlatMap64<std::uint64_t>::kEmptyKey)
            continue;
        if (rng.below(2) == 0) {
            flat[key] = i;
            ref[key] = static_cast<std::uint64_t>(i);
        } else {
            const auto *got = flat.find(key);
            const auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(got, nullptr) << key;
            } else {
                ASSERT_NE(got, nullptr) << key;
                EXPECT_EQ(*got, it->second) << key;
            }
        }
    }
    EXPECT_EQ(flat.size(), ref.size());
}

} // namespace
} // namespace csalt
