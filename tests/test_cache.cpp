/**
 * @file
 * Tests for the cache model: lookup/fill/evict, dirty writeback
 * bookkeeping, per-type occupancy, and — the CSALT-specific part —
 * way-partition enforcement on the replacement path with lazy drain
 * of stranded lines (paper §3.1, cases (a) and (b)).
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "common/rng.h"

using namespace csalt;

namespace
{

CacheParams
smallCache(unsigned ways = 4, std::uint64_t sets = 8)
{
    CacheParams p;
    p.name = "test";
    p.ways = ways;
    p.size_bytes = sets * ways * kLineSize;
    p.latency = 10;
    return p;
}

Addr
lineAddr(std::uint64_t set, std::uint64_t tag, std::uint64_t sets = 8)
{
    return ((tag * sets + set) << kLineShift);
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache cache(smallCache());
    const Addr a = lineAddr(0, 1);
    EXPECT_FALSE(cache.access(a, AccessType::read, LineType::data).hit);
    EXPECT_TRUE(cache.access(a, AccessType::read, LineType::data).hit);
    EXPECT_EQ(cache.stats().totalHits(), 1u);
    EXPECT_EQ(cache.stats().totalMisses(), 1u);
}

TEST(Cache, SubLineAddressesShareALine)
{
    Cache cache(smallCache());
    cache.access(0x1000, AccessType::read, LineType::data);
    EXPECT_TRUE(
        cache.access(0x1038, AccessType::read, LineType::data).hit);
}

TEST(Cache, EvictionReturnsVictim)
{
    Cache cache(smallCache(2, 4));
    const Addr a = lineAddr(1, 1, 4);
    const Addr b = lineAddr(1, 2, 4);
    const Addr c = lineAddr(1, 3, 4);
    cache.access(a, AccessType::write, LineType::data);
    cache.access(b, AccessType::read, LineType::data);
    const auto r = cache.access(c, AccessType::read, LineType::data);
    ASSERT_TRUE(r.victim.valid);
    EXPECT_EQ(r.victim.line_addr, a); // LRU victim
    EXPECT_TRUE(r.victim.dirty);      // was written
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache cache(smallCache());
    const Addr a = lineAddr(2, 5);
    EXPECT_FALSE(cache.probe(a));
    cache.access(a, AccessType::read, LineType::data);
    EXPECT_TRUE(cache.probe(a));
    EXPECT_EQ(cache.stats().accesses(), 1u); // probe not counted
}

TEST(Cache, MarkDirtyIfPresent)
{
    Cache cache(smallCache());
    const Addr a = lineAddr(3, 7);
    EXPECT_FALSE(cache.markDirtyIfPresent(a));
    cache.access(a, AccessType::read, LineType::data);
    EXPECT_TRUE(cache.markDirtyIfPresent(a));

    // Evicting it must now report dirty.
    Victim victim;
    for (std::uint64_t t = 8; t < 16; ++t) {
        const auto r = cache.access(lineAddr(3, t), AccessType::read,
                                    LineType::data);
        if (r.victim.valid && r.victim.line_addr == a)
            victim = r.victim;
    }
    EXPECT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache(smallCache());
    const Addr a = lineAddr(0, 9);
    cache.access(a, AccessType::read, LineType::data);
    EXPECT_TRUE(cache.invalidate(a));
    EXPECT_FALSE(cache.probe(a));
    EXPECT_FALSE(cache.invalidate(a));
}

TEST(Cache, OccupancyCountersMatchScan)
{
    Cache cache(smallCache(4, 16));
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const LineType t =
            rng.chance(0.3) ? LineType::translation : LineType::data;
        cache.access(rng.below(1 << 16) << kLineShift,
                     AccessType::read, t);
    }
    const double total = 4.0 * 16.0;
    EXPECT_DOUBLE_EQ(cache.occupancyOf(LineType::data),
                     cache.scanCountOf(LineType::data) / total);
    EXPECT_DOUBLE_EQ(cache.occupancyOf(LineType::translation),
                     cache.scanCountOf(LineType::translation) / total);
}

TEST(Cache, InvalidateAllClears)
{
    Cache cache(smallCache());
    cache.access(lineAddr(0, 1), AccessType::read, LineType::data);
    cache.access(lineAddr(1, 1), AccessType::read,
                 LineType::translation);
    cache.invalidateAll();
    EXPECT_DOUBLE_EQ(cache.occupancyOf(LineType::data), 0.0);
    EXPECT_DOUBLE_EQ(cache.occupancyOf(LineType::translation), 0.0);
    EXPECT_FALSE(cache.probe(lineAddr(0, 1)));
}

// ------------------------------------------------------- partitioning

TEST(CachePartition, FillsConfinedToTypeWays)
{
    Cache cache(smallCache(4, 4));
    cache.enablePartitioning(2); // data ways {0,1}, tlb ways {2,3}

    // Fill set 0 with 8 alternating lines; at most 2 of each type can
    // survive.
    for (std::uint64_t t = 0; t < 4; ++t) {
        cache.access(lineAddr(0, 2 * t, 4), AccessType::read,
                     LineType::data);
        cache.access(lineAddr(0, 2 * t + 1, 4), AccessType::read,
                     LineType::translation);
    }
    EXPECT_EQ(cache.scanCountOf(LineType::data), 2u);
    EXPECT_EQ(cache.scanCountOf(LineType::translation), 2u);
}

TEST(CachePartition, DataNeverEvictsTranslationWays)
{
    Cache cache(smallCache(4, 4));
    cache.enablePartitioning(2);

    const Addr tr1 = lineAddr(0, 100, 4);
    const Addr tr2 = lineAddr(0, 101, 4);
    cache.access(tr1, AccessType::read, LineType::translation);
    cache.access(tr2, AccessType::read, LineType::translation);

    // A storm of data fills must leave both translation lines alone.
    for (std::uint64_t t = 0; t < 32; ++t) {
        cache.access(lineAddr(0, t, 4), AccessType::read,
                     LineType::data);
    }
    EXPECT_TRUE(cache.probe(tr1));
    EXPECT_TRUE(cache.probe(tr2));
}

TEST(CachePartition, LookupStillFindsStrandedLines)
{
    // Paper §3.1 case (b): shrinking the data allocation leaves data
    // lines stranded in translation ways; lookups must still hit.
    Cache cache(smallCache(4, 4));
    cache.enablePartitioning(3); // data {0,1,2}

    const Addr d0 = lineAddr(0, 10, 4);
    const Addr d1 = lineAddr(0, 11, 4);
    const Addr d2 = lineAddr(0, 12, 4);
    cache.access(d0, AccessType::read, LineType::data);
    cache.access(d1, AccessType::read, LineType::data);
    cache.access(d2, AccessType::read, LineType::data);

    cache.setDataWays(1); // ways 1,2 now belong to translation
    EXPECT_TRUE(cache.access(d1, AccessType::read, LineType::data).hit);
    EXPECT_TRUE(cache.access(d2, AccessType::read, LineType::data).hit);
}

TEST(CachePartition, StrandedLinesDrainLazily)
{
    Cache cache(smallCache(4, 4));
    cache.enablePartitioning(3);
    const Addr d1 = lineAddr(0, 11, 4);
    cache.access(lineAddr(0, 10, 4), AccessType::read, LineType::data);
    cache.access(d1, AccessType::read, LineType::data);
    cache.access(lineAddr(0, 12, 4), AccessType::read, LineType::data);

    cache.setDataWays(1);
    // Translation fills take over ways 1..3, displacing stranded data.
    for (std::uint64_t t = 0; t < 3; ++t) {
        cache.access(lineAddr(0, 50 + t, 4), AccessType::read,
                     LineType::translation);
    }
    EXPECT_FALSE(cache.probe(d1));
    EXPECT_EQ(cache.scanCountOf(LineType::translation), 3u);
}

TEST(CachePartition, SetDataWaysBoundsChecked)
{
    Cache cache(smallCache(4, 4));
    cache.enablePartitioning(2);
    EXPECT_DEATH(cache.setDataWays(0), "way");
    EXPECT_DEATH(cache.setDataWays(4), "way");
}

TEST(CachePartition, DataWaysWithoutPartitioningIsFullWays)
{
    Cache cache(smallCache(4, 4));
    EXPECT_FALSE(cache.partitioned());
    EXPECT_EQ(cache.dataWays(), 4u);
    cache.enablePartitioning(1);
    EXPECT_TRUE(cache.partitioned());
    EXPECT_EQ(cache.dataWays(), 1u);
}

TEST(CacheProfiling, ProfilersObserveBothTypes)
{
    Cache cache(smallCache(4, 8));
    cache.enableProfiling(/*sample_shift=*/0);
    ASSERT_TRUE(cache.profiling());

    cache.access(lineAddr(0, 1), AccessType::read, LineType::data);
    cache.access(lineAddr(0, 1), AccessType::read, LineType::data);
    cache.access(lineAddr(0, 2), AccessType::read,
                 LineType::translation);

    EXPECT_EQ(cache.dataProfiler().total(), 2u);
    EXPECT_EQ(cache.dataProfiler().hitsUpTo(4), 1u);
    EXPECT_EQ(cache.tlbProfiler().total(), 1u);
}

TEST(CacheProfiling, PanicsWhenDisabled)
{
    Cache cache(smallCache());
    EXPECT_DEATH(cache.dataProfiler(), "profiling");
}
