/**
 * @file
 * Tests for RRIP replacement and the DRRIP set-dueling controller.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/rrip.h"
#include "common/rng.h"

using namespace csalt;

TEST(Rrip, HitPromotesToNearImminent)
{
    RripSet set(4);
    set.insertAt(0, false); // RRPV 2
    set.touch(0);           // RRPV 0
    EXPECT_EQ(set.stackPosOf(0), 0u);
}

TEST(Rrip, VictimIsFarReReference)
{
    RripSet set(4);
    set.insertAt(0, false); // 2
    set.insertAt(1, true);  // 3
    set.insertAt(2, false); // 2
    set.touch(3);           // 0
    EXPECT_EQ(set.victimIn(0, 3), 1u);
}

TEST(Rrip, AgingFindsAVictimWhenNoneAtMax)
{
    RripSet set(4);
    for (unsigned w = 0; w < 4; ++w)
        set.touch(w); // all RRPV 0
    const unsigned v = set.victimIn(0, 3);
    EXPECT_LT(v, 4u);
    // Aging raised everyone; positions moved off MRU.
    EXPECT_GT(set.stackPosOf(0), 0u);
}

TEST(Rrip, VictimRespectsRange)
{
    RripSet set(8);
    set.insertAt(0, true); // RRPV 3 but outside range
    for (unsigned w = 4; w < 8; ++w)
        set.touch(w);
    const unsigned v = set.victimIn(4, 7);
    EXPECT_GE(v, 4u);
    EXPECT_LE(v, 7u);
}

TEST(Rrip, StackPositionsWithinBounds)
{
    RripSet set(16);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto w = static_cast<unsigned>(rng.below(16));
        if (rng.chance(0.5))
            set.touch(w);
        else
            set.insertAt(w, rng.chance(0.5));
        for (unsigned x = 0; x < 16; ++x)
            ASSERT_LT(set.stackPosOf(x), 16u);
    }
}

TEST(Drrip, LeadersAndPsel)
{
    DrripController ctl(1024);
    EXPECT_FALSE(ctl.insertLong(0)); // SRRIP leader: distant
    const auto start = ctl.psel();
    ctl.onMiss(0);
    EXPECT_EQ(ctl.psel(), start + 1);
    ctl.onMiss(32);
    ctl.onMiss(32);
    EXPECT_EQ(ctl.psel(), start - 1);
}

TEST(Drrip, BrripLeaderMostlyFar)
{
    DrripController ctl(1024);
    int far = 0;
    for (int i = 0; i < 3200; ++i)
        if (ctl.insertLong(32))
            ++far;
    EXPECT_GT(far, 2900); // epsilon = 1/32 near insertions
}

TEST(RripCache, EndToEndScanResistance)
{
    // SRRIP's claim to fame: a one-pass scan cannot flush the
    // re-referenced working set the way LRU does.
    CacheParams lru_p;
    lru_p.name = "lru";
    lru_p.ways = 4;
    lru_p.size_bytes = 16 * 4 * kLineSize;
    CacheParams rrip_p = lru_p;
    rrip_p.name = "rrip";
    rrip_p.repl = ReplacementKind::rrip;

    Cache lru(lru_p);
    Cache rrip(rrip_p);
    Rng rng(3);

    auto drive = [&](Cache &cache) {
        cache.clearStats();
        for (int round = 0; round < 200; ++round) {
            // Hot set: 32 lines, re-referenced every round.
            for (std::uint64_t l = 0; l < 32; ++l)
                cache.access(l << kLineShift, AccessType::read,
                             LineType::data);
            // Scan: 512 one-shot lines.
            for (std::uint64_t l = 0; l < 512; ++l)
                cache.access((4096 + round * 512 + l) << kLineShift,
                             AccessType::read, LineType::data);
        }
        return cache.stats().totalHits();
    };

    const auto lru_hits = drive(lru);
    const auto rrip_hits = drive(rrip);
    EXPECT_GT(rrip_hits, lru_hits);
}

TEST(RripCache, WorksUnderPartitioning)
{
    CacheParams p;
    p.name = "rrip-part";
    p.ways = 8;
    p.size_bytes = 16 * 8 * kLineSize;
    p.repl = ReplacementKind::rrip;
    Cache cache(p);
    cache.enablePartitioning(4);

    Rng rng(9);
    for (int i = 0; i < 20000; ++i) {
        const LineType t =
            rng.chance(0.5) ? LineType::data : LineType::translation;
        cache.access(rng.below(1 << 14) << kLineShift,
                     AccessType::read, t);
    }
    // Partition enforcement holds under RRIP victim selection.
    EXPECT_LE(cache.scanCountOf(LineType::data), 16u * 4u);
    EXPECT_LE(cache.scanCountOf(LineType::translation), 16u * 4u);
}
