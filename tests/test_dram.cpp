/**
 * @file
 * Tests for the DRAM channel timing model: row-buffer behaviour,
 * bank mapping, backlog queueing and its drain, and tolerance to the
 * out-of-order arrival times a trace-driven simulation produces.
 */

#include <gtest/gtest.h>

#include "mem/dram.h"

using namespace csalt;

namespace
{

DramParams
testParams()
{
    DramParams p;
    p.name = "test-dram";
    p.banks = 4;
    p.row_bytes = 2048;
    p.tcas = 10;
    p.trcd = 20;
    p.trp = 30;
    p.burst = 5;
    p.overhead = 7;
    return p;
}

} // namespace

TEST(Dram, ColdAccessChargesActivate)
{
    DramChannel dram(testParams());
    // Cold bank: tRCD + tCAS + burst + overhead.
    EXPECT_EQ(dram.access(0, 0), 20u + 10u + 5u + 7u);
    EXPECT_EQ(dram.stats().row_cold, 1u);
}

TEST(Dram, RowHitChargesCasOnly)
{
    DramChannel dram(testParams());
    dram.access(0, 0);
    // Same row, long after the backlog drained.
    EXPECT_EQ(dram.access(64, 10000), 10u + 5u + 7u);
    EXPECT_EQ(dram.stats().row_hits, 1u);
}

TEST(Dram, RowConflictChargesPrechargeActivate)
{
    DramChannel dram(testParams());
    dram.access(0, 0);
    // Same bank (stride = banks*row_bytes), different row.
    const Addr conflict = 4 * 2048;
    EXPECT_EQ(dram.access(conflict, 10000),
              30u + 20u + 10u + 5u + 7u);
    EXPECT_EQ(dram.stats().row_conflicts, 1u);
}

TEST(Dram, AdjacentRowsMapToDifferentBanks)
{
    DramChannel dram(testParams());
    dram.access(0, 0);
    // Next row is on the next bank: cold, not a conflict.
    dram.access(2048, 10000);
    EXPECT_EQ(dram.stats().row_cold, 2u);
    EXPECT_EQ(dram.stats().row_conflicts, 0u);
}

TEST(Dram, BackPressureQueuesSameCycleBursts)
{
    DramChannel dram(testParams());
    const Cycles first = dram.access(0, 0);
    // A second access at the same instant to another bank must queue
    // behind the first burst on the shared channel.
    const Cycles second = dram.access(2048, 0);
    EXPECT_GT(second, first - 7); // waited at least one burst
    EXPECT_GT(dram.stats().queue_wait_cycles, 0u);
}

TEST(Dram, BacklogDrainsOverTime)
{
    DramChannel dram(testParams());
    for (int i = 0; i < 10; ++i)
        dram.access(static_cast<Addr>(i) * 2048, 0);
    const auto queued = dram.stats().queue_wait_cycles;
    EXPECT_GT(queued, 0u);

    // Far in the future the backlog is gone: a row hit on the last
    // row opened in its bank costs bare service (addr 8*2048 was the
    // final access bank 0 saw above).
    EXPECT_EQ(dram.access(8 * 2048, 1'000'000), 10u + 5u + 7u);
}

TEST(Dram, OutOfOrderArrivalsDoNotExplode)
{
    DramChannel dram(testParams());
    // A core far ahead in time issues a burst of accesses...
    for (int i = 0; i < 24; ++i)
        dram.access(static_cast<Addr>(i) * 64, 100000 + i * 200);
    // ...then a core at an *earlier* local time accesses. It must see
    // at most the genuine outstanding backlog, never thousands of
    // cycles of phantom reservation.
    const Cycles lat = dram.access(999 * 2048, 50);
    EXPECT_LT(lat, 500u);
}

TEST(Dram, SaturationGrowsLatency)
{
    DramChannel dram(testParams());
    // Offered load far above channel capacity at a single instant.
    Cycles last = 0;
    for (int i = 0; i < 100; ++i)
        last = dram.access(static_cast<Addr>(i) * 2048, 0);
    EXPECT_GT(last, 100u * 5u / 2u); // at least burst serialization
}

TEST(Dram, StatsAccumulate)
{
    DramChannel dram(testParams());
    dram.access(0, 0);
    dram.access(64, 10000);
    EXPECT_EQ(dram.stats().accesses, 2u);
    EXPECT_GT(dram.stats().avgLatency(), 0.0);
    dram.clearStats();
    EXPECT_EQ(dram.stats().accesses, 0u);
}
