/**
 * @file
 * TranslationScheme registry contract (sim/scheme.h): the name <->
 * enum <-> params mapping every front end (csalt-sim, sweep, tune,
 * the bench binaries, the examples) dispatches through.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/config.h"
#include "sim/scheme.h"

namespace csalt
{
namespace
{

TEST(SchemeRegistry, TableIsCompleteAndIdOrdered)
{
    const auto &schemes = allSchemes();
    ASSERT_EQ(schemes.size(), kNumSchemes);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        EXPECT_EQ(static_cast<std::size_t>(schemes[i].id), i)
            << "row " << i << " out of SchemeId order";
        EXPECT_NE(schemes[i].cli, std::string())
            << "row " << i << " has no cli name";
        EXPECT_NE(schemes[i].name, std::string())
            << "row " << i << " has no display name";
        EXPECT_NE(schemes[i].apply, nullptr)
            << schemes[i].cli << " has no apply fn";
    }
}

TEST(SchemeRegistry, NamesAreUnique)
{
    std::set<std::string> seen;
    for (const SchemeInfo &info : allSchemes()) {
        EXPECT_TRUE(seen.insert(info.cli).second)
            << "duplicate name: " << info.cli;
        // The display spelling also resolves via schemeFromName, so
        // it must not collide with any other scheme's names either.
        if (info.name != std::string(info.cli)) {
            EXPECT_TRUE(seen.insert(info.name).second)
                << "duplicate name: " << info.name;
        }
    }
}

// The round-trip property: every registered name — cli and display
// spelling — parses back to the scheme that registered it.
TEST(SchemeRegistry, EveryRegisteredNameParsesBackToItself)
{
    for (const SchemeInfo &info : allSchemes()) {
        const Expected<SchemeId> by_cli = schemeFromName(info.cli);
        ASSERT_TRUE(by_cli.ok()) << info.cli;
        EXPECT_EQ(by_cli.value(), info.id) << info.cli;

        const Expected<SchemeId> by_name = schemeFromName(info.name);
        ASSERT_TRUE(by_name.ok()) << info.name;
        EXPECT_EQ(by_name.value(), info.id) << info.name;

        EXPECT_EQ(schemeInfo(info.id).cli, std::string(info.cli));
    }
}

// Unknown names must come back as a typed usage error a caller can
// render (csalt-sim turns it into a structured fatal) — never as a
// fatal() inside the registry itself.
TEST(SchemeRegistry, UnknownNameYieldsTypedUsageError)
{
    const Expected<SchemeId> r = schemeFromName("no-such-scheme");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::usage);
    // The hint lists the registered names, so the error is actionable
    // without grepping the source.
    EXPECT_NE(r.error().hint.find("csalt-cd"), std::string::npos)
        << r.error().hint;
    EXPECT_NE(r.error().hint.find("victima"), std::string::npos)
        << r.error().hint;

    EXPECT_FALSE(schemeFromName("").ok());
    EXPECT_FALSE(schemeFromName("CSALT").ok());
}

// Every registered mapping must produce a buildable configuration:
// applyScheme over defaults passes the same validation buildSystem
// runs.
TEST(SchemeRegistry, EveryApplyYieldsValidParams)
{
    for (const SchemeInfo &info : allSchemes()) {
        SystemParams params = defaultParams();
        applyScheme(params, info.id);
        EXPECT_NO_THROW(validate(params)) << info.cli;
    }
}

// The enum dispatch and the table's function pointer are the same
// mapping — a registry row pointing at the wrong apply* would make
// bench binaries (table) and tools (enum switch) silently diverge.
TEST(SchemeRegistry, EnumDispatchMatchesTableApply)
{
    for (const SchemeInfo &info : allSchemes()) {
        SystemParams via_switch;
        applyScheme(via_switch, info.id);
        SystemParams via_table;
        info.apply(via_table);
        EXPECT_EQ(via_switch.translation, via_table.translation)
            << info.cli;
        EXPECT_EQ(via_switch.l2_partition.policy,
                  via_table.l2_partition.policy)
            << info.cli;
        EXPECT_EQ(via_switch.l3_partition.policy,
                  via_table.l3_partition.policy)
            << info.cli;
    }
}

TEST(SchemeRegistry, CliNamesListsEveryScheme)
{
    const std::string names = schemeCliNames();
    for (const SchemeInfo &info : allSchemes())
        EXPECT_NE(names.find(info.cli), std::string::npos)
            << names;
}

} // namespace
} // namespace csalt
