/**
 * @file
 * Tests for the crash-safe job journal (src/harness/journal):
 * CRC-guarded line format, torn-tail recovery, signature checking,
 * atomic finalize, and the atomic-write primitive underneath it.
 * Labelled `robustness` with the resume round-trip suite.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <unistd.h>

#include "common/atomic_io.h"
#include "common/error.h"
#include "harness/journal.h"

using namespace csalt;
using namespace csalt::harness;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

std::unique_ptr<Journal>
openOrDie(const std::string &path, const std::string &sig, bool fresh)
{
    auto journal = Journal::open(path, sig, fresh);
    EXPECT_TRUE(journal.ok())
        << (journal.ok() ? "" : oneLine(journal.error()));
    return std::move(journal).take();
}

JournalRecord
okRecord(const std::string &key, const std::string &value_json)
{
    JournalRecord rec;
    rec.key = key;
    rec.ok = true;
    rec.wall_s = 1.5;
    rec.value_json = value_json;
    return rec;
}

} // namespace

TEST(Crc32, MatchesKnownVectors)
{
    // IEEE reflected CRC-32 check value ("123456789" -> cbf43926).
    EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(crc32(""), 0x00000000u);
    EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(JournalLine, EncodeDecodeRoundTrips)
{
    const std::string body = "{\"key\":\"a/b\",\"ok\":true}";
    const std::string line = journalEncodeLine(body);
    auto decoded = journalDecodeLine(line);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), body);
}

TEST(JournalLine, RejectsCorruption)
{
    const std::string line =
        journalEncodeLine("{\"key\":\"a\",\"ok\":true}");

    // Flip one body byte: CRC must catch it.
    std::string flipped = line;
    flipped[flipped.size() - 3] ^= 0x20;
    EXPECT_FALSE(journalDecodeLine(flipped).ok());

    // Truncate (the torn-tail shape a SIGKILL leaves).
    EXPECT_FALSE(
        journalDecodeLine(line.substr(0, line.size() / 2)).ok());
    EXPECT_FALSE(journalDecodeLine("").ok());
    EXPECT_FALSE(journalDecodeLine("not a journal line").ok());

    const Error err =
        journalDecodeLine("garbage").ok()
            ? Error{}
            : journalDecodeLine("garbage").error();
    EXPECT_EQ(err.kind, ErrorKind::parse);
}

TEST(Journal, AppendThenResumeRecoversRecords)
{
    const std::string path = tmpPath("journal_roundtrip.jsonl");
    {
        auto journal = openOrDie(path, "grid-v1", /*fresh=*/true);
        ASSERT_TRUE(journal->append(okRecord("cell/a", "{\"x\":1}"))
                        .ok());
        JournalRecord failed;
        failed.key = "cell/b";
        failed.ok = false;
        failed.error = "boom";
        failed.error_kind = "build";
        ASSERT_TRUE(journal->append(failed).ok());
    }
    auto journal = openOrDie(path, "grid-v1", /*fresh=*/false);
    EXPECT_EQ(journal->loadedCount(), 2u);

    const JournalRecord *a = journal->lookup("cell/a");
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->ok);
    EXPECT_EQ(a->value_json, "{\"x\":1}");
    EXPECT_DOUBLE_EQ(a->wall_s, 1.5);

    const JournalRecord *b = journal->lookup("cell/b");
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->ok);
    EXPECT_EQ(b->error, "boom");
    EXPECT_EQ(b->error_kind, "build");
    EXPECT_EQ(journal->lookup("cell/nope"), nullptr);
    std::remove(path.c_str());
}

TEST(Journal, TornTailIsDroppedOnResume)
{
    const std::string path = tmpPath("journal_torn.jsonl");
    {
        auto journal = openOrDie(path, "sig", /*fresh=*/true);
        ASSERT_TRUE(
            journal->append(okRecord("good", "{\"x\":1}")).ok());
    }
    {
        // Simulate a SIGKILL mid-append: half a record at the end.
        std::ofstream out(path, std::ios::app);
        out << "{\"crc\":\"00000000\",\"body\":{\"key\":\"torn";
    }
    auto journal = openOrDie(path, "sig", /*fresh=*/false);
    EXPECT_EQ(journal->loadedCount(), 1u);
    EXPECT_NE(journal->lookup("good"), nullptr);
    EXPECT_EQ(journal->lookup("torn"), nullptr);

    // finalize() compacts the journal back to clean lines.
    ASSERT_TRUE(journal->finalize().ok());
    const std::string text = slurp(path);
    EXPECT_EQ(text.find("torn"), std::string::npos);
    for (std::size_t pos = 0; pos < text.size();) {
        const auto eol = text.find('\n', pos);
        ASSERT_NE(eol, std::string::npos) << "unterminated line";
        EXPECT_TRUE(
            journalDecodeLine(text.substr(pos, eol - pos)).ok());
        pos = eol + 1;
    }
    std::remove(path.c_str());
}

TEST(Journal, CorruptMiddleLineDropsEverythingAfter)
{
    const std::string path = tmpPath("journal_midcorrupt.jsonl");
    {
        auto journal = openOrDie(path, "sig", /*fresh=*/true);
        ASSERT_TRUE(journal->append(okRecord("a", "{}")).ok());
        ASSERT_TRUE(journal->append(okRecord("b", "{}")).ok());
    }
    // Corrupt record "a" (line 2): "b" comes after it and must not
    // be trusted either — appends are sequential, so bytes after the
    // first bad line have unknown provenance.
    std::string text = slurp(path);
    const auto line2 = text.find('\n') + 1;
    text[line2 + 10] ^= 0x01;
    {
        std::ofstream out(path, std::ios::trunc);
        out << text;
    }
    auto journal = openOrDie(path, "sig", /*fresh=*/false);
    EXPECT_EQ(journal->loadedCount(), 0u);
    std::remove(path.c_str());
}

TEST(Journal, SignatureMismatchIsTypedConfigError)
{
    const std::string path = tmpPath("journal_sig.jsonl");
    {
        auto journal =
            openOrDie(path, "sweep:quota=1000", /*fresh=*/true);
        ASSERT_TRUE(journal->append(okRecord("a", "{}")).ok());
    }
    auto mismatched = Journal::open(path, "sweep:quota=2000",
                                    /*fresh=*/false);
    ASSERT_FALSE(mismatched.ok());
    EXPECT_EQ(mismatched.error().kind, ErrorKind::config);
    EXPECT_NE(mismatched.error().message.find("different grid"),
              std::string::npos);
    EXPECT_NE(mismatched.error().hint.find("--fresh"),
              std::string::npos);

    // --fresh discards it regardless of the old signature.
    auto fresh = openOrDie(path, "sweep:quota=2000", /*fresh=*/true);
    EXPECT_EQ(fresh->loadedCount(), 0u);
    std::remove(path.c_str());
}

TEST(Journal, FreshDiscardsExistingRecords)
{
    const std::string path = tmpPath("journal_fresh.jsonl");
    {
        auto journal = openOrDie(path, "sig", /*fresh=*/true);
        ASSERT_TRUE(journal->append(okRecord("a", "{}")).ok());
    }
    auto journal = openOrDie(path, "sig", /*fresh=*/true);
    EXPECT_EQ(journal->loadedCount(), 0u);
    EXPECT_EQ(journal->lookup("a"), nullptr);
    std::remove(path.c_str());
}

TEST(Journal, MissingFileResumesEmpty)
{
    auto journal = openOrDie(tmpPath("journal_nonexistent.jsonl"),
                             "sig", /*fresh=*/false);
    EXPECT_EQ(journal->loadedCount(), 0u);
}

TEST(Journal, MultiLineValueIsRejected)
{
    const std::string path = tmpPath("journal_multiline.jsonl");
    auto journal = openOrDie(path, "sig", /*fresh=*/true);
    Status status = journal->append(okRecord("a", "{\n}"));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().kind, ErrorKind::internal);
    std::remove(path.c_str());
}

TEST(Journal, LatestAppendWinsOnDuplicateKey)
{
    const std::string path = tmpPath("journal_dup.jsonl");
    {
        auto journal = openOrDie(path, "sig", /*fresh=*/true);
        ASSERT_TRUE(journal->append(okRecord("a", "{\"v\":1}")).ok());
        ASSERT_TRUE(journal->append(okRecord("a", "{\"v\":2}")).ok());
    }
    auto journal = openOrDie(path, "sig", /*fresh=*/false);
    EXPECT_EQ(journal->loadedCount(), 1u);
    ASSERT_NE(journal->lookup("a"), nullptr);
    EXPECT_EQ(journal->lookup("a")->value_json, "{\"v\":2}");
    std::remove(path.c_str());
}

TEST(AtomicIo, WriteFileAtomicReplacesContent)
{
    const std::string path = tmpPath("atomic_out.json");
    ASSERT_TRUE(writeFileAtomic(path, "first\n").ok());
    EXPECT_EQ(slurp(path), "first\n");
    ASSERT_TRUE(writeFileAtomic(path, "second\n").ok());
    EXPECT_EQ(slurp(path), "second\n");
    std::remove(path.c_str());
}

TEST(AtomicIo, WriteFileAtomicFailsTyped)
{
    Status status =
        writeFileAtomic("/nonexistent-dir/x/y.json", "data");
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().kind, ErrorKind::io);
}

TEST(AtomicIo, CrashBeforeRenameLeavesOldContentIntact)
{
    // A kill between the tmp write and the rename must never expose
    // a torn or half-new results file.
    const std::string path = tmpPath("atomic_crash.json");
    ASSERT_TRUE(writeFileAtomic(path, "complete-old\n").ok());
    ASSERT_TRUE(writeFileAtomic(path, "never-visible\n",
                                /*crash_before_rename=*/true)
                    .ok());
    EXPECT_EQ(slurp(path), "complete-old\n");
    // The interrupted run's tmp file is what a resumed run finds;
    // rerunning the write completes the replacement.
    ASSERT_TRUE(writeFileAtomic(path, "complete-new\n").ok());
    EXPECT_EQ(slurp(path), "complete-new\n");
    std::remove(path.c_str());
    std::remove(
        (path + ".tmp." + std::to_string(::getpid())).c_str());
}
