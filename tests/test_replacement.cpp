/**
 * @file
 * Unit + parameterized property tests for the per-set replacement
 * policies (true LRU, NRU, BT-PLRU), including the way-range victim
 * selection CSALT's partitioning relies on and the stack-position
 * estimates feeding the Mattson profilers (paper §3.4).
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.h"
#include "common/rng.h"

using namespace csalt;

// ----------------------------------------------------------- TrueLru

TEST(TrueLru, InitialRanksAreAPermutation)
{
    TrueLruSet lru(8);
    std::set<unsigned> seen;
    for (unsigned w = 0; w < 8; ++w)
        seen.insert(lru.stackPosOf(w));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(TrueLru, TouchMovesToMru)
{
    TrueLruSet lru(4);
    lru.touch(2);
    EXPECT_EQ(lru.stackPosOf(2), 0u);
    lru.touch(0);
    EXPECT_EQ(lru.stackPosOf(0), 0u);
    EXPECT_EQ(lru.stackPosOf(2), 1u);
}

TEST(TrueLru, VictimIsLeastRecent)
{
    TrueLruSet lru(4);
    // Touch in order 0,1,2,3 -> 0 is LRU.
    for (unsigned w = 0; w < 4; ++w)
        lru.touch(w);
    EXPECT_EQ(lru.victimIn(0, 3), 0u);
    lru.touch(0);
    EXPECT_EQ(lru.victimIn(0, 3), 1u);
}

TEST(TrueLru, VictimRespectsRange)
{
    TrueLruSet lru(8);
    for (unsigned w = 0; w < 8; ++w)
        lru.touch(w); // LRU order: 0 oldest
    // Restricted to ways [4,7], way 4 is oldest inside the range.
    EXPECT_EQ(lru.victimIn(4, 7), 4u);
    EXPECT_EQ(lru.victimIn(2, 2), 2u);
}

TEST(TrueLru, StackPositionsStayAPermutationUnderRandomTouches)
{
    TrueLruSet lru(16);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        lru.touch(static_cast<unsigned>(rng.below(16)));
        std::set<unsigned> seen;
        for (unsigned w = 0; w < 16; ++w)
            seen.insert(lru.stackPosOf(w));
        ASSERT_EQ(seen.size(), 16u);
    }
}

// --------------------------------------------------------------- NRU

TEST(Nru, VictimPrefersUnreferenced)
{
    NruSet nru(4);
    nru.touch(0);
    nru.touch(1);
    const unsigned v = nru.victimIn(0, 3);
    EXPECT_TRUE(v == 2 || v == 3);
}

TEST(Nru, AllReferencedResetsOthers)
{
    NruSet nru(4);
    for (unsigned w = 0; w < 4; ++w)
        nru.touch(w);
    // After saturation only way 3 (last touched) keeps its bit; the
    // victim must be one of the cleared ways.
    const unsigned v = nru.victimIn(0, 3);
    EXPECT_NE(v, 3u);
}

TEST(Nru, VictimRespectsRange)
{
    NruSet nru(8);
    for (unsigned w = 4; w < 8; ++w)
        nru.touch(w);
    const unsigned v = nru.victimIn(4, 7);
    EXPECT_GE(v, 4u);
    EXPECT_LE(v, 7u);
}

TEST(Nru, StackPosEstimateSeparatesReferenced)
{
    NruSet nru(8);
    nru.touch(3);
    EXPECT_LT(nru.stackPosOf(3), nru.stackPosOf(5));
}

// ----------------------------------------------------------- BT-PLRU

TEST(BtPlru, TouchedWayIsNotVictim)
{
    BtPlruSet plru(8);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const auto way = static_cast<unsigned>(rng.below(8));
        plru.touch(way);
        EXPECT_NE(plru.victimIn(0, 7), way);
    }
}

TEST(BtPlru, StackPosZeroAfterTouch)
{
    BtPlruSet plru(8);
    plru.touch(5);
    EXPECT_EQ(plru.stackPosOf(5), 0u);
}

TEST(BtPlru, VictimHasMaxEstimatedPosition)
{
    BtPlruSet plru(8);
    for (unsigned w = 0; w < 8; ++w)
        plru.touch(w);
    const unsigned victim = plru.victimIn(0, 7);
    EXPECT_EQ(plru.stackPosOf(victim), 7u);
}

TEST(BtPlru, VictimRespectsRange)
{
    BtPlruSet plru(8);
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        plru.touch(static_cast<unsigned>(rng.below(8)));
        const unsigned lo = static_cast<unsigned>(rng.below(8));
        const unsigned hi =
            lo + static_cast<unsigned>(rng.below(8 - lo));
        const unsigned v = plru.victimIn(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
    }
}

TEST(BtPlru, RequiresPowerOfTwoWays)
{
    EXPECT_DEATH(BtPlruSet(6), "power-of-two");
}

// ------------------------------------------- parameterized properties

struct PolicyCase
{
    ReplacementKind kind;
    unsigned ways;
};

class AllPolicies : public ::testing::TestWithParam<PolicyCase>
{
};

TEST_P(AllPolicies, VictimAlwaysInRange)
{
    const auto param = GetParam();
    auto repl = makeSetReplacement(param.kind, param.ways);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        repl->touch(static_cast<unsigned>(rng.below(param.ways)));
        const unsigned lo =
            static_cast<unsigned>(rng.below(param.ways));
        const unsigned hi =
            lo + static_cast<unsigned>(rng.below(param.ways - lo));
        const unsigned v = repl->victimIn(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
    }
}

TEST_P(AllPolicies, StackPosWithinBounds)
{
    const auto param = GetParam();
    auto repl = makeSetReplacement(param.kind, param.ways);
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        repl->touch(static_cast<unsigned>(rng.below(param.ways)));
        for (unsigned w = 0; w < param.ways; ++w)
            ASSERT_LT(repl->stackPosOf(w), param.ways);
    }
}

TEST_P(AllPolicies, ReportsWays)
{
    const auto param = GetParam();
    auto repl = makeSetReplacement(param.kind, param.ways);
    EXPECT_EQ(repl->ways(), param.ways);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllPolicies,
    ::testing::Values(PolicyCase{ReplacementKind::trueLru, 4},
                      PolicyCase{ReplacementKind::trueLru, 8},
                      PolicyCase{ReplacementKind::trueLru, 16},
                      PolicyCase{ReplacementKind::nru, 4},
                      PolicyCase{ReplacementKind::nru, 8},
                      PolicyCase{ReplacementKind::nru, 16},
                      PolicyCase{ReplacementKind::btPlru, 4},
                      PolicyCase{ReplacementKind::btPlru, 8},
                      PolicyCase{ReplacementKind::btPlru, 16}));
