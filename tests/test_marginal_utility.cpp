/**
 * @file
 * Tests for the marginal-utility computation (paper Eq. 1/2,
 * Algorithms 1-3), including the Figure 5 worked example.
 *
 * Note on Figure 5: the paper's prose lists MU values (34, 30, 40,
 * 50) that are not reproducible from the stack contents it draws —
 * the arithmetic in the example is internally inconsistent. We encode
 * Eq. (1) exactly as defined and test against algebraically correct
 * expectations computed from the same stacks.
 */

#include <gtest/gtest.h>

#include "core/marginal_utility.h"

using namespace csalt;

namespace
{

/** The Figure 5 stacks (K = 8; 9th counter is the miss counter). */
StackDistProfiler
figure5Data()
{
    StackDistProfiler p(8);
    p.setCounters({3, 11, 12, 8, 9, 2, 1, 4, 10});
    return p;
}

StackDistProfiler
figure5Tlb()
{
    StackDistProfiler p(8);
    p.setCounters({7, 10, 12, 5, 1, 0, 8, 15, 1});
    return p;
}

} // namespace

TEST(MarginalUtility, Figure5Values)
{
    const auto d = figure5Data();
    const auto t = figure5Tlb();

    // MU(N) = sum D[0..N-1] + sum T[0..8-N-1]  (Eq. 1)
    EXPECT_DOUBLE_EQ(marginalUtility(d, t, 4, 8), 34.0 + 34.0);
    EXPECT_DOUBLE_EQ(marginalUtility(d, t, 5, 8), 43.0 + 29.0);
    EXPECT_DOUBLE_EQ(marginalUtility(d, t, 6, 8), 45.0 + 17.0);
    EXPECT_DOUBLE_EQ(marginalUtility(d, t, 7, 8), 46.0 + 7.0);
    EXPECT_DOUBLE_EQ(marginalUtility(d, t, 1, 8),
                     3.0 + (7 + 10 + 12 + 5 + 1 + 0 + 8));
}

TEST(MarginalUtility, BestPartitionIsArgmax)
{
    const auto d = figure5Data();
    const auto t = figure5Tlb();
    const auto best = bestPartition(d, t, 8, 1);
    // Exhaustively: MU(1..7) = {46,49,61,68,72,62,53} -> N = 5.
    EXPECT_EQ(best.data_ways, 5u);
    EXPECT_DOUBLE_EQ(best.utility, 72.0);
}

TEST(MarginalUtility, RespectsMinWays)
{
    const auto d = figure5Data();
    const auto t = figure5Tlb();
    const auto best = bestPartition(d, t, 8, 3);
    EXPECT_GE(best.data_ways, 3u);
    EXPECT_LE(best.data_ways, 5u);
}

TEST(MarginalUtility, AllDataWhenTlbStackEmpty)
{
    StackDistProfiler d(8);
    d.setCounters({10, 10, 10, 10, 10, 10, 10, 10, 0});
    StackDistProfiler t(8);
    const auto best = bestPartition(d, t, 8, 1);
    EXPECT_EQ(best.data_ways, 7u);
}

TEST(MarginalUtility, AllTlbWhenDataStackEmpty)
{
    StackDistProfiler d(8);
    StackDistProfiler t(8);
    t.setCounters({10, 10, 10, 10, 10, 10, 10, 10, 0});
    const auto best = bestPartition(d, t, 8, 1);
    EXPECT_EQ(best.data_ways, 1u);
}

TEST(MarginalUtility, CriticalityWeightsShiftTheSplit)
{
    // Symmetric stacks: unweighted MU is flat, ties go to data.
    StackDistProfiler d(8);
    d.setCounters({5, 5, 5, 5, 5, 5, 5, 5, 0});
    StackDistProfiler t(8);
    t.setCounters({5, 5, 5, 5, 5, 5, 5, 5, 0});

    const auto unweighted = bestPartition(d, t, 8, 1);
    EXPECT_EQ(unweighted.data_ways, 7u); // tie-break toward data

    CriticalityWeights w;
    w.s_dat = 1.0;
    w.s_tr = 3.0; // translation hits worth 3x (Eq. 2)
    const auto weighted = bestPartition(d, t, 8, 1, w);
    EXPECT_EQ(weighted.data_ways, 1u);
}

TEST(MarginalUtility, WeightedMatchesHandComputation)
{
    const auto d = figure5Data();
    const auto t = figure5Tlb();
    CriticalityWeights w{2.0, 0.5};
    EXPECT_DOUBLE_EQ(marginalUtility(d, t, 4, 8, w),
                     2.0 * 34.0 + 0.5 * 34.0);
}

TEST(MarginalUtility, BadArgumentsPanic)
{
    const auto d = figure5Data();
    const auto t = figure5Tlb();
    EXPECT_DEATH(marginalUtility(d, t, 9, 8), "data_ways");
    EXPECT_DEATH(bestPartition(d, t, 8, 0), "min_ways");
    EXPECT_DEATH(bestPartition(d, t, 8, 5), "min_ways");
}
