/**
 * @file
 * Tests for the text-table printer used by every bench harness.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.h"

using namespace csalt;

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.row().add("a").add(std::uint64_t{1});
    t.row().add("longer-name").add(2.5, 1);

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();

    // Four lines: header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Every line starts at the same column for field 2: "value"
    // appears after the widest first column ("longer-name").
    const auto header_pos = out.find("value");
    ASSERT_NE(header_pos, std::string::npos);
    const auto row2 = out.find("2.5");
    ASSERT_NE(row2, std::string::npos);
}

TEST(TextTable, NumericFormatting)
{
    TextTable t({"x"});
    t.row().add(3.14159, 2);
    t.row().add(std::uint64_t{42});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3.14"), std::string::npos);
    EXPECT_EQ(os.str().find("3.142"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(TextTable, ShortRowsPadWithEmptyCells)
{
    TextTable t({"a", "b", "c"});
    t.row().add("only-one");
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TextTable, ChainedRowBuilding)
{
    TextTable t({"a", "b"});
    t.row().add("x").add("y");
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_LT(out.find('x'), out.find('y'));
}
