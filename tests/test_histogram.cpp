/**
 * @file
 * obs::Histogram: bucket layout, percentile digests, and property
 * tests (merge associativity, percentile monotonicity, count
 * conservation) over randomized integer latencies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "obs/histogram.h"

using csalt::Rng;
using csalt::obs::Histogram;

namespace
{

/** Percentile of the raw sample via nearest-rank (ground truth). */
std::uint64_t
exactPercentile(std::vector<std::uint64_t> sorted, double p)
{
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 *
                         static_cast<double>(sorted.size()))));
    return sorted[rank - 1];
}

} // namespace

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0u);
    const auto s = h.percentileSummary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p999, 0u);
}

TEST(Histogram, UnitBucketsAreExactBelowFirstOctave)
{
    // Values below 2^kSubBucketBits land in width-1 buckets, so the
    // histogram is lossless there.
    Histogram h;
    for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v),
                  static_cast<std::size_t>(v));
        EXPECT_EQ(Histogram::bucketLowerBound(v), v);
        EXPECT_EQ(Histogram::bucketWidth(v), 1u);
        h.record(v);
    }
    EXPECT_EQ(h.count(), Histogram::kSubBuckets);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), Histogram::kSubBuckets - 1);
}

TEST(Histogram, BucketBoundsRoundTrip)
{
    // Every bucket's lower bound maps back to that bucket, as does
    // its last value (lower bound + width - 1).
    for (std::size_t i = 0; i < 400; ++i) {
        const std::uint64_t lo = Histogram::bucketLowerBound(i);
        const std::uint64_t w = Histogram::bucketWidth(i);
        EXPECT_EQ(Histogram::bucketIndex(lo), i) << "bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(lo + w - 1), i)
            << "bucket " << i;
        if (i > 0) {
            EXPECT_GT(lo, Histogram::bucketLowerBound(i - 1));
        }
    }
}

TEST(Histogram, BucketIndexIsMonotone)
{
    Rng rng(7);
    std::uint64_t prev_value = 0;
    std::size_t prev_bucket = Histogram::bucketIndex(0);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = prev_value + 1 + rng.below(1u << 20);
        const std::size_t b = Histogram::bucketIndex(v);
        EXPECT_GE(b, prev_bucket) << "value " << v;
        prev_value = v;
        prev_bucket = b;
    }
}

TEST(Histogram, RelativeErrorBoundedBySubBucketWidth)
{
    // The bucket containing v is at most one sub-bucket wide:
    // width <= max(1, v / kSubBuckets) once v is past the first
    // octave, i.e. relative quantization error <= 1/kSubBuckets.
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.below(1ull << 40) + 1;
        const std::size_t b = Histogram::bucketIndex(v);
        const std::uint64_t w = Histogram::bucketWidth(b);
        EXPECT_LE(w, std::max<std::uint64_t>(
                         1, v / Histogram::kSubBuckets))
            << "value " << v;
    }
}

TEST(Histogram, PercentileSummaryOnKnownData)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);

    const auto s = h.percentileSummary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.sum, 5050.0);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    EXPECT_EQ(s.min, 1u);
    EXPECT_EQ(s.max, 100u);
    // Buckets above the first octave quantize: allow one sub-bucket
    // of slack against the exact nearest-rank percentile.
    EXPECT_GE(s.p50, 50u);
    EXPECT_LE(s.p50, 50u + 50u / Histogram::kSubBuckets);
    EXPECT_GE(s.p90, 90u);
    EXPECT_LE(s.p90, 90u + 90u / Histogram::kSubBuckets);
    EXPECT_GE(s.p99, 99u);
    EXPECT_LE(s.p99, 100u);
    EXPECT_EQ(s.p999, 100u);
}

TEST(Histogram, WeightedRecordMatchesRepeatedRecord)
{
    Histogram weighted, repeated;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t v = rng.below(100000);
        const std::uint64_t w = 1 + rng.below(7);
        weighted.record(v, w);
        for (std::uint64_t k = 0; k < w; ++k)
            repeated.record(v);
    }
    EXPECT_EQ(weighted.count(), repeated.count());
    EXPECT_DOUBLE_EQ(weighted.sum(), repeated.sum());
    EXPECT_EQ(weighted.max(), repeated.max());
    for (double p : {10.0, 50.0, 90.0, 99.0, 99.9})
        EXPECT_EQ(weighted.percentile(p), repeated.percentile(p));
}

TEST(HistogramProperty, PercentileIsMonotoneInP)
{
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        Histogram h;
        const int n = 1 + static_cast<int>(rng.below(2000));
        for (int i = 0; i < n; ++i)
            h.record(rng.below(1ull << (1 + rng.below(32))));
        std::uint64_t prev = 0;
        for (double p = 1.0; p <= 100.0; p += 0.5) {
            const std::uint64_t v = h.percentile(p);
            EXPECT_GE(v, prev) << "trial " << trial << " p " << p;
            prev = v;
        }
        EXPECT_EQ(h.percentile(100.0), h.max());
    }
}

TEST(HistogramProperty, PercentileBracketsExactValue)
{
    // The digest percentile must be >= the exact nearest-rank sample
    // percentile and within one bucket width above it.
    Rng rng(1234);
    for (int trial = 0; trial < 10; ++trial) {
        Histogram h;
        std::vector<std::uint64_t> raw;
        const int n = 100 + static_cast<int>(rng.below(3000));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t v = rng.below(1ull << 20);
            h.record(v);
            raw.push_back(v);
        }
        std::sort(raw.begin(), raw.end());
        for (double p : {50.0, 90.0, 99.0}) {
            const std::uint64_t exact = exactPercentile(raw, p);
            const std::uint64_t est = h.percentile(p);
            EXPECT_GE(est, exact) << "trial " << trial << " p " << p;
            const std::size_t b = Histogram::bucketIndex(exact);
            EXPECT_LE(est, Histogram::bucketLowerBound(b) +
                               Histogram::bucketWidth(b) - 1)
                << "trial " << trial << " p " << p;
        }
    }
}

TEST(HistogramProperty, MergeIsAssociativeAndConservesCounts)
{
    // Merge = bucket-wise addition, so (a+b)+c == a+(b+c) exactly —
    // integer values keep even the double sum exact.
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        Histogram a, b, c, all;
        for (Histogram *h : {&a, &b, &c}) {
            const int n = static_cast<int>(rng.below(1000));
            for (int i = 0; i < n; ++i) {
                const std::uint64_t v = rng.below(1ull << 24);
                h->record(v);
                all.record(v);
            }
        }

        Histogram left_first = a; // (a + b) + c
        left_first.merge(b);
        left_first.merge(c);

        Histogram right_first = b; // a + (b + c)
        right_first.merge(c);
        Histogram right = a;
        right.merge(right_first);

        EXPECT_EQ(left_first.count(), right.count());
        EXPECT_EQ(left_first.count(), all.count());
        EXPECT_DOUBLE_EQ(left_first.sum(), right.sum());
        EXPECT_DOUBLE_EQ(left_first.sum(), all.sum());
        EXPECT_EQ(left_first.min(), all.min());
        EXPECT_EQ(left_first.max(), all.max());
        for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            ASSERT_EQ(left_first.bucketCount(i), right.bucketCount(i));
            ASSERT_EQ(left_first.bucketCount(i), all.bucketCount(i));
        }
        for (double p : {50.0, 90.0, 99.0, 99.9}) {
            EXPECT_EQ(left_first.percentile(p), right.percentile(p));
            EXPECT_EQ(left_first.percentile(p), all.percentile(p));
        }
    }
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram h, empty;
    h.record(42);
    h.record(1000);
    const auto before = h.percentileSummary();
    h.merge(empty);
    const auto after = h.percentileSummary();
    EXPECT_EQ(before.count, after.count);
    EXPECT_EQ(before.min, after.min);
    EXPECT_EQ(before.max, after.max);
    EXPECT_EQ(before.p50, after.p50);

    empty.merge(h);
    EXPECT_EQ(empty.count(), h.count());
    EXPECT_EQ(empty.min(), h.min());
    EXPECT_EQ(empty.max(), h.max());
}

TEST(Histogram, ClearResetsEverything)
{
    Histogram h;
    h.record(7, 3);
    h.record(1 << 20);
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.percentile(99.0), 0u);
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i)
        ASSERT_EQ(h.bucketCount(i), 0u);
}

TEST(Histogram, HandlesHugeValues)
{
    Histogram h;
    const std::uint64_t huge = ~std::uint64_t{0};
    h.record(huge);
    h.record(0);
    EXPECT_EQ(h.max(), huge);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.percentile(100.0), huge);
    EXPECT_LT(Histogram::bucketIndex(huge), Histogram::kNumBuckets);
}
