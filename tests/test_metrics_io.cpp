/**
 * @file
 * Tests for the CSV/JSON metrics serialisation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.h"
#include "sim/metrics_io.h"

using namespace csalt;

namespace
{

RunMetrics
sample()
{
    RunMetrics m;
    m.ipc_geomean = 0.125;
    m.total_instructions = 8'000'000;
    m.total_memrefs = 3'000'000;
    m.l1_tlb_mpki = 40.5;
    m.l2_tlb_mpki = 22.25;
    m.l2_mpki_total = 30.0;
    m.l2_mpki_data = 20.0;
    m.l3_mpki_total = 10.0;
    m.l3_mpki_data = 8.0;
    m.l2_tlb_misses = 178'000;
    m.walks = 9'000;
    m.walks_eliminated = 0.949;
    m.avg_walk_cycles = 301.0;
    m.l2_translation_occupancy = 0.41;
    m.l3_translation_occupancy = 0.33;
    m.pom_hit_rate = 0.97;
    m.cores.push_back({4'000'000, 32'000'000, 0.125, 1'500'000,
                       80'000, 89'000, 4'500});
    m.cores.push_back({4'000'000, 32'000'000, 0.125, 1'500'000,
                       80'000, 89'000, 4'500});
    m.vms.push_back({6'000'000, 100'000, 16.67});
    m.vms.push_back({2'000'000, 78'000, 39.0});

    using obs::CpiComponent;
    obs::CpiStack core_stack;
    core_stack.add(CpiComponent::compute, 16'000'000.0);
    core_stack.add(CpiComponent::dataDram, 12'000'000.0);
    core_stack.add(CpiComponent::walkGuestL1, 4'000'000.0);
    m.core_cpi = {core_stack, core_stack};
    m.vm_cpi = {core_stack, core_stack};
    m.cpi_total = core_stack;
    m.cpi_total += core_stack;
    m.total_cycles = m.cpi_total.total();

    obs::Histogram walk_hist;
    for (std::uint64_t v = 100; v <= 1000; v += 100)
        walk_hist.record(v);
    m.histograms.push_back({"walk.lat",
                            walk_hist.percentileSummary()});
    return m;
}

} // namespace

TEST(MetricsIo, CsvHeaderAndRowAgreeOnColumnCount)
{
    const std::string header = metricsCsvHeader();
    const std::string row = metricsCsvRow("test", sample());
    const auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
}

TEST(MetricsIo, CsvRowCarriesLabelAndValues)
{
    const std::string row = metricsCsvRow("pagerank:csalt-cd",
                                          sample());
    EXPECT_EQ(row.rfind("pagerank:csalt-cd,", 0), 0u);
    EXPECT_NE(row.find("0.125"), std::string::npos);
    EXPECT_NE(row.find("0.949"), std::string::npos);
    EXPECT_NE(row.find("8000000"), std::string::npos);
}

TEST(MetricsIo, JsonContainsSections)
{
    const std::string json = metricsJson("run1", sample());
    EXPECT_NE(json.find("\"label\": \"run1\""), std::string::npos);
    EXPECT_NE(json.find("\"cores\": ["), std::string::npos);
    EXPECT_NE(json.find("\"vms\": ["), std::string::npos);
    EXPECT_NE(json.find("\"cpi_stack\": {"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\": {"), std::string::npos);
    EXPECT_NE(json.find("\"l2_tlb_mpki\": 22.25"), std::string::npos);
}

TEST(MetricsIo, JsonBalancedBrackets)
{
    const std::string json = metricsJson("x", sample());
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(MetricsIo, JsonParsesAsValidJson)
{
    std::string error;
    const auto doc = obs::parseJson(metricsJson("run1", sample()),
                                    &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->stringOr("label", ""), "run1");
    EXPECT_DOUBLE_EQ(doc->numberOr("l2_tlb_mpki", 0.0), 22.25);
    const obs::JsonValue *cores = doc->find("cores");
    ASSERT_NE(cores, nullptr);
    ASSERT_TRUE(cores->isArray());
    EXPECT_EQ(cores->arr.size(), 2u);
    const obs::JsonValue *vms = doc->find("vms");
    ASSERT_NE(vms, nullptr);
    ASSERT_TRUE(vms->isArray());
    EXPECT_EQ(vms->arr.size(), 2u);
}

TEST(MetricsIo, JsonCarriesCpiStacks)
{
    const RunMetrics m = sample();
    std::string error;
    const auto doc = obs::parseJson(metricsJson("run1", m), &error);
    ASSERT_TRUE(doc.has_value()) << error;

    EXPECT_DOUBLE_EQ(doc->numberOr("total_cycles", 0.0),
                     m.total_cycles);
    const obs::JsonValue *stack = doc->find("cpi_stack");
    ASSERT_NE(stack, nullptr);
    ASSERT_TRUE(stack->isObject());

    const obs::JsonValue *total = stack->find("total");
    ASSERT_NE(total, nullptr);
    double sum = 0.0;
    for (const auto &[name, v] : total->obj) {
        (void)name;
        sum += v.num_v;
    }
    EXPECT_DOUBLE_EQ(sum, m.cpi_total.total());
    EXPECT_DOUBLE_EQ(total->numberOr("compute", 0.0), 32'000'000.0);
    EXPECT_DOUBLE_EQ(total->numberOr("walk_guest_l1", -1.0),
                     8'000'000.0);

    const obs::JsonValue *cores = stack->find("cores");
    ASSERT_NE(cores, nullptr);
    ASSERT_TRUE(cores->isArray());
    ASSERT_EQ(cores->arr.size(), 2u);
    EXPECT_DOUBLE_EQ(cores->arr[0].numberOr("data_dram", 0.0),
                     12'000'000.0);
    const obs::JsonValue *vms = stack->find("vms");
    ASSERT_NE(vms, nullptr);
    EXPECT_EQ(vms->arr.size(), 2u);
}

TEST(MetricsIo, JsonCarriesHistogramDigests)
{
    std::string error;
    const auto doc = obs::parseJson(metricsJson("run1", sample()),
                                    &error);
    ASSERT_TRUE(doc.has_value()) << error;

    const obs::JsonValue *hists = doc->find("histograms");
    ASSERT_NE(hists, nullptr);
    ASSERT_TRUE(hists->isObject());
    const obs::JsonValue *walk = hists->find("walk.lat");
    ASSERT_NE(walk, nullptr);
    EXPECT_DOUBLE_EQ(walk->numberOr("count", 0.0), 10.0);
    EXPECT_DOUBLE_EQ(walk->numberOr("sum", 0.0), 5500.0);
    EXPECT_DOUBLE_EQ(walk->numberOr("min", 0.0), 100.0);
    EXPECT_DOUBLE_EQ(walk->numberOr("max", 0.0), 1000.0);
    // Digest percentiles are bucket upper-bound estimates: at least
    // the exact value, within one sub-bucket above it.
    EXPECT_GE(walk->numberOr("p50", 0.0), 500.0);
    EXPECT_LE(walk->numberOr("p50", 0.0),
              500.0 * (1.0 + 1.0 / obs::Histogram::kSubBuckets));
    EXPECT_DOUBLE_EQ(walk->numberOr("p999", 0.0), 1000.0);
}
