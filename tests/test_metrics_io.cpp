/**
 * @file
 * Tests for the CSV/JSON metrics serialisation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.h"
#include "sim/metrics_io.h"

using namespace csalt;

namespace
{

RunMetrics
sample()
{
    RunMetrics m;
    m.ipc_geomean = 0.125;
    m.total_instructions = 8'000'000;
    m.total_memrefs = 3'000'000;
    m.l1_tlb_mpki = 40.5;
    m.l2_tlb_mpki = 22.25;
    m.l2_mpki_total = 30.0;
    m.l2_mpki_data = 20.0;
    m.l3_mpki_total = 10.0;
    m.l3_mpki_data = 8.0;
    m.l2_tlb_misses = 178'000;
    m.walks = 9'000;
    m.walks_eliminated = 0.949;
    m.avg_walk_cycles = 301.0;
    m.l2_translation_occupancy = 0.41;
    m.l3_translation_occupancy = 0.33;
    m.pom_hit_rate = 0.97;
    m.cores.push_back({4'000'000, 32'000'000, 0.125, 1'500'000,
                       80'000, 89'000, 4'500});
    m.cores.push_back({4'000'000, 32'000'000, 0.125, 1'500'000,
                       80'000, 89'000, 4'500});
    m.vms.push_back({6'000'000, 100'000, 16.67});
    m.vms.push_back({2'000'000, 78'000, 39.0});
    return m;
}

} // namespace

TEST(MetricsIo, CsvHeaderAndRowAgreeOnColumnCount)
{
    const std::string header = metricsCsvHeader();
    const std::string row = metricsCsvRow("test", sample());
    const auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
}

TEST(MetricsIo, CsvRowCarriesLabelAndValues)
{
    const std::string row = metricsCsvRow("pagerank:csalt-cd",
                                          sample());
    EXPECT_EQ(row.rfind("pagerank:csalt-cd,", 0), 0u);
    EXPECT_NE(row.find("0.125"), std::string::npos);
    EXPECT_NE(row.find("0.949"), std::string::npos);
    EXPECT_NE(row.find("8000000"), std::string::npos);
}

TEST(MetricsIo, JsonContainsSections)
{
    const std::string json = metricsJson("run1", sample());
    EXPECT_NE(json.find("\"label\": \"run1\""), std::string::npos);
    EXPECT_NE(json.find("\"cores\": ["), std::string::npos);
    EXPECT_NE(json.find("\"vms\": ["), std::string::npos);
    EXPECT_NE(json.find("\"l2_tlb_mpki\": 22.25"), std::string::npos);
    // Two core entries, two VM entries.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 5);
    EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 5);
}

TEST(MetricsIo, JsonBalancedBrackets)
{
    const std::string json = metricsJson("x", sample());
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(MetricsIo, JsonParsesAsValidJson)
{
    std::string error;
    const auto doc = obs::parseJson(metricsJson("run1", sample()),
                                    &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->stringOr("label", ""), "run1");
    EXPECT_DOUBLE_EQ(doc->numberOr("l2_tlb_mpki", 0.0), 22.25);
    const obs::JsonValue *cores = doc->find("cores");
    ASSERT_NE(cores, nullptr);
    ASSERT_TRUE(cores->isArray());
    EXPECT_EQ(cores->arr.size(), 2u);
    const obs::JsonValue *vms = doc->find("vms");
    ASSERT_NE(vms, nullptr);
    ASSERT_TRUE(vms->isArray());
    EXPECT_EQ(vms->arr.size(), 2u);
}
