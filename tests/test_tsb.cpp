/**
 * @file
 * Tests for the TSB (software translation storage buffer) baseline.
 */

#include <gtest/gtest.h>

#include "mem/phys_alloc.h"
#include "tlb/tsb.h"

using namespace csalt;

namespace
{

struct Fixture
{
    Fixture()
        : data_frames(0, 1ull << 30, 11),
          pt_frames(1ull << 30, (1ull << 30) + (256ull << 20), 13)
    {
    }

    VmContext
    makeVm(bool virtualized, Asid asid = 1)
    {
        VmContext::Params p;
        p.asid = asid;
        p.virtualized = virtualized;
        p.huge_fraction = 0.0;
        p.seed = 5;
        return VmContext(p, data_frames, pt_frames);
    }

    TsbParams
    params()
    {
        TsbParams t;
        t.entries_per_context = 1024;
        return t;
    }

    FrameAllocator data_frames;
    FrameAllocator pt_frames;
};

constexpr Addr kTsbBase = 0x200000000;

} // namespace

TEST(Tsb, BytesPerAsid)
{
    TsbParams t;
    t.entries_per_context = 1024;
    EXPECT_EQ(Tsb::bytesPerAsid(t), 2u * 1024u * 16u);
}

TEST(Tsb, VirtualizedMissIsSingleProbe)
{
    Fixture f;
    auto vm = f.makeVm(true);
    Tsb tsb(f.params(), kTsbBase, 4);

    const auto plan = tsb.lookup(vm, 0x12345678);
    EXPECT_FALSE(plan.hit);
    EXPECT_EQ(plan.num_probes, 1u);
    EXPECT_GE(plan.probe_addrs[0], kTsbBase);
}

TEST(Tsb, VirtualizedHitIsTwoDependentProbes)
{
    Fixture f;
    auto vm = f.makeVm(true);
    Tsb tsb(f.params(), kTsbBase, 4);

    const Addr gva = 0x5000;
    const Mapping m = vm.mappingOf(gva);
    tsb.insert(vm, gva, m);

    const auto plan = tsb.lookup(vm, gva);
    EXPECT_TRUE(plan.hit);
    EXPECT_EQ(plan.num_probes, 2u);
    EXPECT_EQ(plan.mapping.frame, m.frame);
    EXPECT_NE(plan.probe_addrs[0], plan.probe_addrs[1]);
}

TEST(Tsb, NativeHitIsOneProbe)
{
    Fixture f;
    auto vm = f.makeVm(false);
    Tsb tsb(f.params(), kTsbBase, 4);

    const Addr gva = 0x7000;
    const Mapping m = vm.mappingOf(gva);
    tsb.insert(vm, gva, m);

    const auto plan = tsb.lookup(vm, gva);
    EXPECT_TRUE(plan.hit);
    EXPECT_EQ(plan.num_probes, 1u);
    EXPECT_EQ(plan.mapping.frame, m.frame);
}

TEST(Tsb, DirectMappedConflictEvicts)
{
    Fixture f;
    auto vm = f.makeVm(true);
    Tsb tsb(f.params(), kTsbBase, 4);

    const Addr a = 0x1000;
    // Same index: vpn differs by exactly the table size.
    const Addr b = a + (1024ull << kPageShift);
    tsb.insert(vm, a, vm.mappingOf(a));
    EXPECT_TRUE(tsb.lookup(vm, a).hit);
    tsb.insert(vm, b, vm.mappingOf(b));
    EXPECT_TRUE(tsb.lookup(vm, b).hit);
    EXPECT_FALSE(tsb.lookup(vm, a).hit); // evicted by conflict
}

TEST(Tsb, ContextsHaveSeparateArrays)
{
    Fixture f;
    auto vm1 = f.makeVm(true, 1);
    auto vm2 = f.makeVm(true, 2);
    Tsb tsb(f.params(), kTsbBase, 4);

    tsb.insert(vm1, 0x3000, vm1.mappingOf(0x3000));
    EXPECT_TRUE(tsb.lookup(vm1, 0x3000).hit);
    EXPECT_FALSE(tsb.lookup(vm2, 0x3000).hit);

    // Probe addresses are disjoint per ASID.
    const auto p1 = tsb.lookup(vm1, 0x3000);
    const auto p2 = tsb.lookup(vm2, 0x3000);
    EXPECT_NE(p1.probe_addrs[0], p2.probe_addrs[0]);
}

TEST(Tsb, StatsCount)
{
    Fixture f;
    auto vm = f.makeVm(true);
    Tsb tsb(f.params(), kTsbBase, 4);
    tsb.lookup(vm, 0x1000);
    tsb.insert(vm, 0x1000, vm.mappingOf(0x1000));
    tsb.lookup(vm, 0x1000);
    EXPECT_EQ(tsb.stats().misses, 1u);
    EXPECT_EQ(tsb.stats().hits, 1u);
    EXPECT_EQ(tsb.stats().probes, 3u);
}

TEST(Tsb, AsidBeyondReservationPanics)
{
    Fixture f;
    auto vm = f.makeVm(true, 9);
    Tsb tsb(f.params(), kTsbBase, 4);
    EXPECT_DEATH(tsb.lookup(vm, 0x1000), "beyond");
}

TEST(Tsb, BadCapacityIsFatal)
{
    TsbParams t;
    t.entries_per_context = 1000;
    EXPECT_EXIT(Tsb(t, kTsbBase, 4), ::testing::ExitedWithCode(1),
                "power of two");
}
