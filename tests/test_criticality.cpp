/**
 * @file
 * Tests for the CSALT-CD criticality weight estimator (paper §3.2).
 */

#include <gtest/gtest.h>

#include "core/criticality.h"

using namespace csalt;

TEST(Criticality, DefaultsToUnityWithoutSamples)
{
    CriticalityEstimator est(42);
    const auto w = est.weights();
    EXPECT_DOUBLE_EQ(w.s_dat, 1.0);
    EXPECT_DOUBLE_EQ(w.s_tr, 1.0);
}

TEST(Criticality, DataWeightIsDramOverL3)
{
    CriticalityEstimator est(42);
    est.recordDramLatency(210);
    est.recordDramLatency(210);
    const auto w = est.weights();
    EXPECT_DOUBLE_EQ(w.s_dat, 210.0 / 42.0);
}

TEST(Criticality, TranslationWeightAddsExpectedWalkCost)
{
    CriticalityEstimator est(42);
    est.recordPomLatency(126); // POM access = 3x L3
    // 50% POM hit rate, walks cost 840 cycles.
    est.recordPomOutcome(true);
    est.recordPomOutcome(false);
    est.recordWalkLatency(840);

    const auto w = est.weights();
    // (126 + 0.5 * 840) / 42 = 13.0
    EXPECT_NEAR(w.s_tr, 13.0, 1e-9);
}

TEST(Criticality, WeightsNeverBelowOne)
{
    CriticalityEstimator est(100);
    est.recordDramLatency(10); // cheaper than an L3 hit
    est.recordPomLatency(5);
    est.recordPomOutcome(true);
    const auto w = est.weights();
    EXPECT_DOUBLE_EQ(w.s_dat, 1.0);
    EXPECT_DOUBLE_EQ(w.s_tr, 1.0);
}

TEST(Criticality, DecayForgetsHistory)
{
    CriticalityEstimator est(42);
    for (int i = 0; i < 100; ++i)
        est.recordDramLatency(420);
    const double before = est.weights().s_dat;

    // After decay, new cheaper samples dominate faster.
    for (int i = 0; i < 8; ++i)
        est.decay();
    for (int i = 0; i < 100; ++i)
        est.recordDramLatency(42);
    const double after = est.weights().s_dat;
    EXPECT_LT(after, before);
    EXPECT_NEAR(after, 1.1, 0.4);
}

TEST(Criticality, DataOverlapDiscountsDataWeight)
{
    // With MLP = 4, a data miss's effective stall is a quarter of its
    // latency; the translation weight is untouched (it blocks).
    CriticalityEstimator est(42, /*data_overlap=*/4.0);
    est.recordDramLatency(840);
    est.recordPomLatency(840);
    est.recordPomOutcome(true);
    const auto w = est.weights();
    EXPECT_DOUBLE_EQ(w.s_dat, 840.0 / 42.0 / 4.0);
    EXPECT_DOUBLE_EQ(w.s_tr, 840.0 / 42.0);
}

TEST(Criticality, AveragesTrackMixtures)
{
    CriticalityEstimator est(10);
    est.recordDramLatency(100);
    est.recordDramLatency(300);
    EXPECT_DOUBLE_EQ(est.weights().s_dat, 20.0); // avg 200 / 10
}
