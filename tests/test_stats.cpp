/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "common/stats.h"

using namespace csalt;

TEST(Stats, Mpki)
{
    EXPECT_DOUBLE_EQ(mpki(0, 1000), 0.0);
    EXPECT_DOUBLE_EQ(mpki(5, 1000), 5.0);
    EXPECT_DOUBLE_EQ(mpki(5, 2000), 2.5);
    EXPECT_DOUBLE_EQ(mpki(5, 0), 0.0);
}

TEST(Stats, HitRate)
{
    EXPECT_DOUBLE_EQ(hitRate(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(hitRate(3, 1), 0.75);
    EXPECT_DOUBLE_EQ(hitRate(0, 5), 0.0);
    EXPECT_DOUBLE_EQ(hitRate(5, 0), 1.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 8.0}), 2.0, 1e-12);
}

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, AccumulatorBasics)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);

    acc.add(2.0);
    acc.add(4.0);
    acc.add(9.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.sum(), 15.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, AccumulatorMerge)
{
    Accumulator a;
    Accumulator b;
    a.add(1.0);
    a.add(3.0);
    b.add(10.0);

    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);

    Accumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);

    Accumulator fresh;
    fresh.merge(a);
    EXPECT_EQ(fresh.count(), 3u);
    EXPECT_DOUBLE_EQ(fresh.sum(), 14.0);
}

TEST(Stats, TimeSeriesPushAndMean)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_DOUBLE_EQ(ts.meanValue(), 0.0);

    ts.push(0.0, 1.0);
    ts.push(1.0, 3.0);
    EXPECT_EQ(ts.points().size(), 2u);
    EXPECT_DOUBLE_EQ(ts.meanValue(), 2.0);
}

TEST(Stats, TimeSeriesDownsample)
{
    TimeSeries ts;
    for (int i = 0; i < 100; ++i)
        ts.push(i, i % 2 ? 1.0 : 0.0);

    const TimeSeries small = ts.downsampled(10);
    EXPECT_LE(small.points().size(), 10u);
    EXPECT_NEAR(small.meanValue(), 0.5, 0.01);

    // Downsampling to more points than exist is the identity.
    const TimeSeries same = ts.downsampled(1000);
    EXPECT_EQ(same.points().size(), 100u);

    EXPECT_TRUE(ts.downsampled(0).empty());
}
