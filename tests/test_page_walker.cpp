/**
 * @file
 * Tests for the 1-D and 2-D page walkers using a mock memory
 * interface that counts references and charges a fixed latency —
 * verifying the paper's reference counts (up to 4 native, up to 24
 * virtualized; Fig. 2) and the MMU-cache shortcuts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/phys_alloc.h"
#include "vm/page_walker.h"

using namespace csalt;

namespace
{

class CountingMem : public TranslationMemIf
{
  public:
    Cycles
    translationAccess(unsigned /*core*/, Addr hpa, Cycles now) override
    {
        addrs.push_back(hpa);
        times.push_back(now);
        return kLatency;
    }

    static constexpr Cycles kLatency = 50;
    std::vector<Addr> addrs;
    std::vector<Cycles> times;
};

struct Fixture
{
    Fixture()
        : data_frames(0, 1ull << 30, 11),
          pt_frames(1ull << 30, (1ull << 30) + (256ull << 20), 13),
          mmu(MmuCacheParams{}), walker(0, mmu, mem)
    {
    }

    VmContext
    makeVm(bool virtualized, double huge = 0.0)
    {
        VmContext::Params p;
        p.asid = 1;
        p.virtualized = virtualized;
        p.huge_fraction = huge;
        p.seed = 3;
        return VmContext(p, data_frames, pt_frames);
    }

    FrameAllocator data_frames;
    FrameAllocator pt_frames;
    CountingMem mem;
    MmuCaches mmu;
    PageWalker walker;
};

} // namespace

TEST(PageWalker, NativeColdWalkIsFourRefs)
{
    Fixture f;
    auto vm = f.makeVm(false);
    vm.translate(0x123456789000); // demand-map

    const auto out = f.walker.walk(vm, 0x123456789000, 0);
    EXPECT_EQ(out.refs, 4u);
    // PSC probe + 4 dependent PTE reads.
    EXPECT_EQ(out.latency, 2u + 4u * CountingMem::kLatency);
    EXPECT_EQ(out.mapping.frame,
              vm.translate(0x123456789000) & ~(kPageSize - 1));
}

TEST(PageWalker, NativeWarmWalkUsesPde)
{
    Fixture f;
    auto vm = f.makeVm(false);
    vm.translate(0x40000000);
    vm.translate(0x40001000);

    f.walker.walk(vm, 0x40000000, 0); // fills PSC
    f.mem.addrs.clear();
    const auto out = f.walker.walk(vm, 0x40001000, 0);
    // Same 2MB region: the PDE entry skips straight to the leaf PTE.
    EXPECT_EQ(out.refs, 1u);
}

TEST(PageWalker, Native2MWalkIsThreeRefs)
{
    Fixture f;
    auto vm = f.makeVm(false, 1.0);
    vm.translate(0x40000000);
    const auto out = f.walker.walk(vm, 0x40000000, 0);
    EXPECT_EQ(out.refs, 3u);
    EXPECT_EQ(out.mapping.ps, PageSize::size2M);
}

TEST(PageWalker, NestedColdWalkIsTwentyFourRefs)
{
    Fixture f;
    auto vm = f.makeVm(true);
    vm.translate(0x123456789000);

    const auto out = f.walker.walk(vm, 0x123456789000, 0);
    // 4 guest levels x (4-step host walk + PTE read) + final 4-step
    // host walk = 24 references (paper Fig. 2b)... minus any host
    // PSC/nested shortcuts earned *within* this walk. The first walk
    // of a fresh system can shortcut host upper levels it already
    // visited for earlier guest levels, so allow [12, 24].
    EXPECT_LE(out.refs, 24u);
    EXPECT_GE(out.refs, 12u);
    EXPECT_EQ(out.mapping.frame,
              vm.translate(0x123456789000) & ~(kPageSize - 1));
}

TEST(PageWalker, NestedWarmWalkIsMuchShorter)
{
    Fixture f;
    auto vm = f.makeVm(true);
    vm.translate(0x40000000);
    vm.translate(0x40001000);

    const auto cold = f.walker.walk(vm, 0x40000000, 0);
    const auto warm = f.walker.walk(vm, 0x40001000, 0);
    EXPECT_LT(warm.refs, cold.refs);
    // PDE + nested caches reduce the neighbour walk to a handful.
    EXPECT_LE(warm.refs, 6u);
}

TEST(PageWalker, LatencyAccumulatesSerially)
{
    Fixture f;
    auto vm = f.makeVm(true);
    vm.translate(0x999000);
    const auto out = f.walker.walk(vm, 0x999000, 1000);
    // Each reference is issued at a strictly later time.
    for (std::size_t i = 1; i < f.mem.times.size(); ++i)
        EXPECT_GT(f.mem.times[i], f.mem.times[i - 1]);
    EXPECT_GE(out.latency, out.refs * CountingMem::kLatency);
}

TEST(PageWalker, StatsAccumulate)
{
    Fixture f;
    auto vm = f.makeVm(true);
    vm.translate(0x1000);
    vm.translate(0x40000000);
    f.walker.walk(vm, 0x1000, 0);
    f.walker.walk(vm, 0x40000000, 0);
    EXPECT_EQ(f.walker.stats().walks, 2u);
    EXPECT_GT(f.walker.stats().refs, 0u);
    EXPECT_GT(f.walker.stats().avgCycles(), 0.0);
    f.walker.clearStats();
    EXPECT_EQ(f.walker.stats().walks, 0u);
}

TEST(PageWalker, NestedCacheCutsHostWalks)
{
    Fixture f;
    auto vm = f.makeVm(true);
    vm.translate(0x777000);
    f.walker.walk(vm, 0x777000, 0);
    const auto hits_before = f.walker.stats().nested_hits;
    // Walking the same address again: all host translations should
    // come from the nested cache.
    f.walker.walk(vm, 0x777000, 0);
    EXPECT_GT(f.walker.stats().nested_hits, hits_before);
}

TEST(PageWalker, FiveLevelWalksAreLonger)
{
    Fixture f4;
    Fixture f5;
    VmContext::Params p;
    p.asid = 1;
    p.virtualized = true;
    p.seed = 3;
    VmContext vm4(p, f4.data_frames, f4.pt_frames);
    p.page_levels = kTopLevel5;
    VmContext vm5(p, f5.data_frames, f5.pt_frames);

    const Addr gva = 0x123456789000;
    vm4.translate(gva);
    vm5.translate(gva);

    const auto out4 = f4.walker.walk(vm4, gva, 0);
    const auto out5 = f5.walker.walk(vm5, gva, 0);
    // 2-D five-level worst case is (5+1)*5+5 = 35 references.
    EXPECT_GT(out5.refs, out4.refs);
    EXPECT_LE(out5.refs, 35u);
}

TEST(PageWalker, GuestPteAddressesResolveToPtRange)
{
    Fixture f;
    auto vm = f.makeVm(true);
    vm.translate(0x5000);
    f.walker.walk(vm, 0x5000, 0);
    for (Addr a : f.mem.addrs) {
        EXPECT_GE(a, 1ull << 30) << "walk ref outside the PT range";
    }
}
