/**
 * @file
 * Tests for the set-associative ASID-tagged TLBs and the per-core
 * L1/L2 hierarchy, including the no-flush-on-context-switch property
 * the paper's Fig. 1 analysis rests on.
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "tlb/tlb_hierarchy.h"

using namespace csalt;

namespace
{

TlbEntry
entry(Asid asid, Vpn vpn, Addr frame,
      PageSize ps = PageSize::size4K)
{
    TlbEntry e;
    e.asid = asid;
    e.vpn = vpn;
    e.frame = frame;
    e.ps = ps;
    e.valid = true;
    return e;
}

} // namespace

TEST(Tlb, InsertLookupRoundTrip)
{
    Tlb tlb("t", {64, 4, 9});
    tlb.insert(entry(1, 0x42, 0x9000));
    const auto hit = tlb.lookup(1, 0x42, PageSize::size4K);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->frame, 0x9000u);
    EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST(Tlb, AsidIsolation)
{
    Tlb tlb("t", {64, 4, 9});
    tlb.insert(entry(1, 0x42, 0x9000));
    EXPECT_FALSE(tlb.lookup(2, 0x42, PageSize::size4K).has_value());
}

TEST(Tlb, PageSizeIsPartOfTheTag)
{
    Tlb tlb("t", {64, 4, 9});
    tlb.insert(entry(1, 0x42, 0x9000, PageSize::size2M));
    EXPECT_FALSE(tlb.lookup(1, 0x42, PageSize::size4K).has_value());
    EXPECT_TRUE(tlb.lookup(1, 0x42, PageSize::size2M).has_value());
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb("t", {4, 4, 9}); // one set
    for (Vpn v = 0; v < 4; ++v)
        tlb.insert(entry(1, v, v << kPageShift));
    tlb.lookup(1, 0, PageSize::size4K); // protect vpn 0
    tlb.insert(entry(1, 99, 0x99000));  // evicts vpn 1 (LRU)
    EXPECT_TRUE(tlb.contains(1, 0, PageSize::size4K));
    EXPECT_FALSE(tlb.contains(1, 1, PageSize::size4K));
}

TEST(Tlb, InsertUpdatesInPlace)
{
    Tlb tlb("t", {4, 4, 9});
    tlb.insert(entry(1, 7, 0x1000));
    tlb.insert(entry(1, 7, 0x2000));
    EXPECT_EQ(tlb.lookup(1, 7, PageSize::size4K)->frame, 0x2000u);
}

TEST(Tlb, FlushAsidDropsOnlyThatSpace)
{
    Tlb tlb("t", {64, 4, 9});
    tlb.insert(entry(1, 1, 0x1000));
    tlb.insert(entry(2, 1, 0x2000));
    tlb.flushAsid(1);
    EXPECT_FALSE(tlb.contains(1, 1, PageSize::size4K));
    EXPECT_TRUE(tlb.contains(2, 1, PageSize::size4K));
    tlb.flushAll();
    EXPECT_FALSE(tlb.contains(2, 1, PageSize::size4K));
}

TEST(Tlb, CountMissAccounting)
{
    Tlb tlb("t", {64, 4, 9});
    tlb.countMiss();
    EXPECT_EQ(tlb.stats().misses, 1u);
    tlb.clearStats();
    EXPECT_EQ(tlb.stats().accesses(), 0u);
}

TEST(Tlb, BadGeometryIsFatal)
{
    EXPECT_EXIT(Tlb("bad", {60, 4, 9}),
                ::testing::ExitedWithCode(1), "power of two");
}

// ---------------------------------------------------------- hierarchy

namespace
{

SystemParams
hierarchyParams()
{
    return defaultParams();
}

} // namespace

TEST(TlbHierarchy, MissThenFillThenL1Hit)
{
    TlbHierarchy tlbs(hierarchyParams());
    const Addr gva = 0x1234567000;

    auto res = tlbs.lookup(1, gva);
    EXPECT_FALSE(res.l1_hit);
    EXPECT_FALSE(res.l2_hit);
    EXPECT_EQ(res.latency, 17u); // L2 TLB probe
    EXPECT_EQ(tlbs.l2().stats().misses, 1u);

    tlbs.fill(1, gva, {0xabc000, PageSize::size4K});
    res = tlbs.lookup(1, gva);
    EXPECT_TRUE(res.l1_hit);
    EXPECT_EQ(res.latency, 0u); // pipelined L1 hit
    EXPECT_EQ(res.mapping.frame, 0xabc000u);
}

TEST(TlbHierarchy, L2HitRefillsL1)
{
    SystemParams p = hierarchyParams();
    p.l1tlb_4k = {4, 4, 1}; // tiny L1 so we can evict it
    TlbHierarchy tlbs(p);

    // Fill 5 translations: the first falls out of the 4-entry L1.
    for (Vpn v = 0; v < 5; ++v) {
        tlbs.fill(1, v << kPageShift,
                  {(0x100 + v) << kPageShift, PageSize::size4K});
    }
    const auto res = tlbs.lookup(1, 0);
    EXPECT_TRUE(res.l2_hit);
    EXPECT_FALSE(res.l1_hit);
    EXPECT_EQ(res.latency, 17u);
    // Now resident in L1 again.
    EXPECT_TRUE(tlbs.lookup(1, 0).l1_hit);
}

TEST(TlbHierarchy, HugePagesUseThe2MPath)
{
    TlbHierarchy tlbs(hierarchyParams());
    const Addr gva = Addr{3} << kHugePageShift;
    tlbs.fill(1, gva + 0x1234, {Addr{9} << kHugePageShift,
                                PageSize::size2M});

    // Any address inside the 2MB page hits.
    const auto res = tlbs.lookup(1, gva + 0x100000);
    EXPECT_TRUE(res.l1_hit);
    EXPECT_EQ(res.mapping.ps, PageSize::size2M);
}

TEST(TlbHierarchy, ExactlyOneMissPerMissingAccess)
{
    TlbHierarchy tlbs(hierarchyParams());
    tlbs.lookup(1, 0x1000);
    tlbs.lookup(1, 0x2000);
    EXPECT_EQ(tlbs.l1Stats().misses, 2u);
    EXPECT_EQ(tlbs.l2().stats().misses, 2u);
    EXPECT_EQ(tlbs.l2().stats().hits, 0u);
}

TEST(TlbHierarchy, EntriesSurviveContextSwitches)
{
    TlbHierarchy tlbs(hierarchyParams());
    tlbs.fill(1, 0x5000, {0xaaa000, PageSize::size4K});
    tlbs.fill(2, 0x5000, {0xbbb000, PageSize::size4K});

    // Both ASIDs coexist; switching contexts flushes nothing.
    EXPECT_EQ(tlbs.lookup(1, 0x5000).mapping.frame, 0xaaa000u);
    EXPECT_EQ(tlbs.lookup(2, 0x5000).mapping.frame, 0xbbb000u);
}

TEST(TlbHierarchy, ClearStats)
{
    TlbHierarchy tlbs(hierarchyParams());
    tlbs.lookup(1, 0x1000);
    tlbs.clearStats();
    EXPECT_EQ(tlbs.l1Stats().accesses(), 0u);
    EXPECT_EQ(tlbs.l2().stats().accesses(), 0u);
}
