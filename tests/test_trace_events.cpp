/**
 * @file
 * Tests for the structured event tracer: Chrome trace_event emission,
 * category gating, the CSALT_TRACE_* macros, and the end-to-end
 * contract that a traced run can be reconstructed exactly — the
 * repartition events reproduce the controllers' partition trace and
 * the context-switch events match the core counters.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace_event.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

/** Parse every line of a JSONL blob into documents. */
std::vector<obs::JsonValue>
parseLines(const std::string &text)
{
    std::vector<obs::JsonValue> docs;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string error;
        auto doc = obs::parseJson(line, &error);
        EXPECT_TRUE(doc.has_value())
            << error << " in line: " << line;
        if (doc)
            docs.push_back(std::move(*doc));
    }
    return docs;
}

} // namespace

// ------------------------------------------------------------- tracer

TEST(EventTracer, InstantCarriesChromeFields)
{
    std::ostringstream out;
    obs::EventTracer tracer;
    tracer.setSink(&out);
    tracer.instant(obs::kCatContextSwitch, "context_switch", 3, 42.0,
                   obs::EventArgs().add("core", 3u).add("asid", 7u));

    const auto docs = parseLines(out.str());
    ASSERT_EQ(docs.size(), 1u);
    const obs::JsonValue &ev = docs[0];
    EXPECT_EQ(ev.stringOr("type", ""), "event");
    EXPECT_EQ(ev.stringOr("name", ""), "context_switch");
    EXPECT_EQ(ev.stringOr("cat", ""), "cs");
    EXPECT_EQ(ev.stringOr("ph", ""), "i");
    EXPECT_EQ(ev.stringOr("s", ""), "t");
    EXPECT_DOUBLE_EQ(ev.numberOr("ts", 0.0), 42.0);
    EXPECT_DOUBLE_EQ(ev.numberOr("tid", -1.0), 3.0);
    const obs::JsonValue *args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->numberOr("asid", 0.0), 7.0);
    EXPECT_EQ(tracer.emitted(), 1u);
}

TEST(EventTracer, CompleteCarriesDurationAndSeries)
{
    std::ostringstream out;
    obs::EventTracer tracer;
    tracer.setSink(&out);
    tracer.complete(obs::kCatWalk, "walk_2d", 1, 100.0, 30.0,
                    obs::EventArgs().addSeries("ref_cycles",
                                               {12.0, 18.0}));

    const auto docs = parseLines(out.str());
    ASSERT_EQ(docs.size(), 1u);
    EXPECT_EQ(docs[0].stringOr("ph", ""), "X");
    EXPECT_DOUBLE_EQ(docs[0].numberOr("dur", 0.0), 30.0);
    const obs::JsonValue *args = docs[0].find("args");
    ASSERT_NE(args, nullptr);
    const obs::JsonValue *series = args->find("ref_cycles");
    ASSERT_NE(series, nullptr);
    ASSERT_TRUE(series->isArray());
    ASSERT_EQ(series->arr.size(), 2u);
    EXPECT_DOUBLE_EQ(series->arr[1].num_v, 18.0);
}

TEST(EventTracer, CategoryMaskFiltersEmission)
{
    std::ostringstream out;
    obs::EventTracer tracer;
    tracer.setSink(&out);
    tracer.setCategories(obs::kCatEpoch);
    EXPECT_TRUE(tracer.enabledFor(obs::kCatEpoch));
    EXPECT_FALSE(tracer.enabledFor(obs::kCatWalk));

    tracer.instant(obs::kCatWalk, "dropped", 0, 1.0);
    tracer.instant(obs::kCatEpoch, "kept", 0, 2.0);
    const auto docs = parseLines(out.str());
    ASSERT_EQ(docs.size(), 1u);
    EXPECT_EQ(docs[0].stringOr("name", ""), "kept");
}

TEST(EventTracer, NoSinkMeansDisabled)
{
    obs::EventTracer tracer;
    EXPECT_FALSE(tracer.enabledFor(obs::kCatEpoch));
}

TEST(EventTracer, ParseEventCats)
{
    EXPECT_EQ(obs::parseEventCats("all"), obs::kCatAll);
    EXPECT_EQ(obs::parseEventCats("none"), 0u);
    EXPECT_EQ(obs::parseEventCats("cs"), obs::kCatContextSwitch);
    EXPECT_EQ(obs::parseEventCats("cs,walk"),
              obs::kCatContextSwitch | obs::kCatWalk);
    EXPECT_EQ(obs::parseEventCats("epoch,cs,walk"), obs::kCatAll);
    EXPECT_EXIT(obs::parseEventCats("cs,bogus"),
                ::testing::ExitedWithCode(1), "bogus");
}

TEST(EventTracer, MacrosAreInertWithoutActiveTracer)
{
    ASSERT_EQ(obs::activeTracer(), nullptr);
    EXPECT_FALSE(CSALT_TRACE_ACTIVE(obs::kCatWalk));
    int evaluated = 0;
    // The args expression must not be evaluated while tracing is off.
    CSALT_TRACE_INSTANT(obs::kCatWalk, "x", 0, 1.0,
                        obs::EventArgs().add("n", ++evaluated));
    EXPECT_EQ(evaluated, 0);
}

TEST(EventTracer, MacrosEmitThroughActiveTracer)
{
    std::ostringstream out;
    obs::EventTracer tracer;
    tracer.setSink(&out);
    obs::setActiveTracer(&tracer);
    EXPECT_TRUE(CSALT_TRACE_ACTIVE(obs::kCatEpoch));
    CSALT_TRACE_INSTANT(obs::kCatEpoch, "e", 0, 5.0,
                        obs::EventArgs().add("k", 1u));
    CSALT_TRACE_COMPLETE(obs::kCatWalk, "w", 1, 5.0, 2.0,
                         obs::EventArgs());
    obs::setActiveTracer(nullptr);
    EXPECT_EQ(parseLines(out.str()).size(), 2u);
}

// -------------------------------------------------------- integration

namespace
{

BuildSpec
tinySpec()
{
    BuildSpec spec;
    applyCsaltCD(spec.params);
    spec.params.num_cores = 2;
    spec.params.cs_interval = 20'000;
    spec.params.seed = 5;
    spec.vm_workloads = {"gups", "ccomp"};
    spec.workload_scale = 0.01;
    return spec;
}

} // namespace

TEST(TraceIntegration, EpochEventsReproducePartitionTraceExactly)
{
    auto system = buildSystem(tinySpec());
    system->run(30'000); // warmup
    system->clearAllStats();

    std::ostringstream out;
    system->setTraceSink(&out, obs::kCatAll);
    system->run(60'000);
    system->closeTrace();

    // Reconstruct the ctrl.l3 data-way timeline from the events.
    std::vector<std::pair<double, double>> reconstructed;
    std::uint64_t cs_events = 0, walk_events = 0;
    for (const obs::JsonValue &ev : parseLines(out.str())) {
        if (ev.stringOr("type", "") != "event")
            continue;
        const std::string cat = ev.stringOr("cat", "");
        if (cat == "cs") {
            ++cs_events;
        } else if (cat == "walk") {
            ++walk_events;
            const obs::JsonValue *args = ev.find("args");
            ASSERT_NE(args, nullptr);
            const obs::JsonValue *series = args->find("ref_cycles");
            ASSERT_NE(series, nullptr);
            // Per-reference latencies must agree with the ref count.
            EXPECT_DOUBLE_EQ(args->numberOr("refs", -1.0),
                             static_cast<double>(series->arr.size()));
        } else if (cat == "epoch") {
            const obs::JsonValue *args = ev.find("args");
            ASSERT_NE(args, nullptr);
            if (args->stringOr("label", "") != "ctrl.l3")
                continue;
            reconstructed.emplace_back(
                ev.numberOr("ts", -1.0),
                args->numberOr("data_ways", -1.0));
        }
    }

    const auto &points =
        system->mem().l3Controller().partitionTrace().points();
    ASSERT_FALSE(points.empty());
    ASSERT_EQ(reconstructed.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_DOUBLE_EQ(reconstructed[i].first, points[i].time);
        EXPECT_DOUBLE_EQ(reconstructed[i].second, points[i].value);
    }

    // Every context switch and page walk produced exactly one event.
    std::uint64_t cs_stats = 0, walk_stats = 0;
    for (unsigned c = 0; c < system->numCores(); ++c) {
        cs_stats += system->core(c).stats().context_switches;
        walk_stats += system->core(c).walker().stats().walks;
    }
    EXPECT_GT(cs_events, 0u);
    EXPECT_EQ(cs_events, cs_stats);
    EXPECT_EQ(walk_events, walk_stats);
}

TEST(TraceIntegration, CategorySelectionDropsOtherEvents)
{
    auto system = buildSystem(tinySpec());
    std::ostringstream out;
    system->setTraceSink(&out, obs::kCatEpoch);
    system->run(40'000);
    system->closeTrace();

    std::uint64_t epoch = 0, other = 0;
    for (const obs::JsonValue &ev : parseLines(out.str())) {
        if (ev.stringOr("type", "") != "event")
            continue;
        (ev.stringOr("cat", "") == "epoch" ? epoch : other)++;
    }
    EXPECT_GT(epoch, 0u);
    EXPECT_EQ(other, 0u);
}

TEST(TraceIntegration, TracedRunMatchesUntracedRun)
{
    // Telemetry must be an observer: identical simulation outcomes
    // with and without a trace sink attached.
    auto traced = buildSystem(tinySpec());
    auto plain = buildSystem(tinySpec());
    std::ostringstream out;
    traced->setTraceSink(&out, obs::kCatAll);
    traced->run(50'000);
    traced->closeTrace();
    plain->run(50'000);
    for (unsigned c = 0; c < plain->numCores(); ++c) {
        EXPECT_EQ(traced->core(c).clock(), plain->core(c).clock());
        EXPECT_EQ(traced->core(c).stats().instructions,
                  plain->core(c).stats().instructions);
        EXPECT_EQ(traced->core(c).walker().stats().walks,
                  plain->core(c).walker().stats().walks);
    }
}
