/**
 * @file
 * Tests for the scheme-configuration helpers and BuildSpec plumbing.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/error.h"
#include "sim/system_builder.h"

using namespace csalt;

TEST(SchemeHelpers, Conventional)
{
    SystemParams p = defaultParams();
    applyConventional(p);
    EXPECT_EQ(p.translation, TranslationKind::conventional);
    EXPECT_EQ(p.l2_partition.policy, PartitionPolicy::none);
    EXPECT_EQ(p.l3_partition.policy, PartitionPolicy::none);
}

TEST(SchemeHelpers, CsaltVariantsPartitionBothLevels)
{
    SystemParams p = defaultParams();
    applyCsaltD(p);
    EXPECT_EQ(p.translation, TranslationKind::pomTlb);
    EXPECT_EQ(p.l2_partition.policy, PartitionPolicy::csaltD);
    EXPECT_EQ(p.l3_partition.policy, PartitionPolicy::csaltD);

    applyCsaltCD(p);
    EXPECT_EQ(p.l2_partition.policy, PartitionPolicy::csaltCD);
    EXPECT_EQ(p.l3_partition.policy, PartitionPolicy::csaltCD);
}

TEST(SchemeHelpers, DipKeepsPomWithDuelingInsertion)
{
    SystemParams p = defaultParams();
    applyDipOverPom(p);
    EXPECT_EQ(p.translation, TranslationKind::pomTlb);
    EXPECT_EQ(p.l2.insertion, InsertionKind::dip);
    EXPECT_EQ(p.l3.insertion, InsertionKind::dip);
    EXPECT_EQ(p.l3_partition.policy, PartitionPolicy::none);

    // Re-applying a partitioning scheme resets the insertion policy.
    applyCsaltCD(p);
    EXPECT_EQ(p.l2.insertion, InsertionKind::mru);
}

TEST(SchemeHelpers, Tsb)
{
    SystemParams p = defaultParams();
    applyTsb(p);
    EXPECT_EQ(p.translation, TranslationKind::tsb);
}

TEST(Builder, ContextsPerCoreFollowsWorkloadList)
{
    BuildSpec spec;
    applyPomTlb(spec.params);
    spec.params.num_cores = 2;
    spec.vm_workloads = {"gups", "canneal", "gups"};
    spec.workload_scale = 0.02;
    auto system = buildSystem(spec);
    EXPECT_EQ(system->core(0).numContexts(), 3u);
    EXPECT_EQ(system->params().contexts_per_core, 3u);
}

TEST(Builder, VmsGetDistinctAsids)
{
    BuildSpec spec;
    applyPomTlb(spec.params);
    spec.params.num_cores = 1;
    spec.vm_workloads = {"gups", "gups"};
    spec.workload_scale = 0.02;
    auto system = buildSystem(spec);
    auto &core = system->core(0);
    // Rotation slot 0 and 1 belong to different address spaces.
    EXPECT_NE(core.currentContext().asid(), 0);
    EXPECT_EQ(core.numContexts(), 2u);
}

TEST(Builder, TooManyVmsIsTypedBuildError)
{
    BuildSpec spec;
    applyPomTlb(spec.params);
    spec.params.max_asids = 2;
    spec.vm_workloads = {"gups", "gups", "gups"};
    try {
        buildSystem(spec);
        FAIL() << "expected a build error";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::build);
        EXPECT_NE(std::string(e.what()).find("ASID"),
                  std::string::npos)
            << e.what();
        EXPECT_FALSE(e.error().hint.empty());
    }
}

TEST(Builder, FileWorkloadsPlugIn)
{
    const std::string path =
        ::testing::TempDir() + "builder_trace.txt";
    {
        std::ofstream out(path);
        out << "R 1000 2\nW 2000 3\nR 3000 2\n";
    }

    BuildSpec spec;
    applyPomTlb(spec.params);
    spec.params.num_cores = 1;
    spec.vm_workloads = {"file:" + path};
    auto system = buildSystem(spec);
    system->run(1000);
    EXPECT_GE(system->core(0).instructions(), 1000u);
    std::remove(path.c_str());
}
