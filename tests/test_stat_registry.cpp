/**
 * @file
 * Tests for the telemetry stat registry, the epoch-aligned sampler,
 * and the JSON helpers they emit/parse with.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/sampler.h"
#include "obs/stat_registry.h"
#include "sim/system_builder.h"

using namespace csalt;

// ----------------------------------------------------------- registry

TEST(StatRegistry, CountersAndGaugesKeepRegistrationOrder)
{
    obs::StatRegistry reg;
    std::uint64_t hits = 3, misses = 7;
    reg.addCounter("l2.hits", &hits);
    reg.addGauge("l2.hit_rate", [&] {
        return static_cast<double>(hits) /
               static_cast<double>(hits + misses);
    });
    reg.addCounter("l2.misses", &misses);

    ASSERT_EQ(reg.entries().size(), 3u);
    EXPECT_EQ(reg.entries()[0].name, "l2.hits");
    EXPECT_EQ(reg.entries()[1].name, "l2.hit_rate");
    EXPECT_EQ(reg.entries()[2].name, "l2.misses");

    EXPECT_TRUE(reg.has("l2.hits"));
    EXPECT_FALSE(reg.has("l3.hits"));
    EXPECT_DOUBLE_EQ(reg.valueOf("l2.hits"), 3.0);
    EXPECT_DOUBLE_EQ(reg.valueOf("l2.hit_rate"), 0.3);

    hits = 17; // counters read through the pointer: live updates
    EXPECT_DOUBLE_EQ(reg.valueOf("l2.hits"), 17.0);
}

TEST(StatRegistry, DuplicateNameIsFatal)
{
    obs::StatRegistry reg;
    std::uint64_t v = 0;
    reg.addCounter("x", &v);
    EXPECT_EXIT(reg.addCounter("x", &v),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(StatRegistry, NullCounterIsFatal)
{
    obs::StatRegistry reg;
    EXPECT_EXIT(reg.addCounter("x", nullptr),
                ::testing::ExitedWithCode(1), "null");
}

TEST(StatRegistry, UnknownValueOfIsFatal)
{
    obs::StatRegistry reg;
    EXPECT_EXIT(reg.valueOf("nope"), ::testing::ExitedWithCode(1),
                "nope");
}

TEST(StatRegistry, HistogramsRegisterAndResolve)
{
    obs::StatRegistry reg;
    obs::Histogram h;
    h.record(10);
    h.record(1000);
    reg.addHistogram("walk.lat", &h);

    ASSERT_EQ(reg.histograms().size(), 1u);
    EXPECT_EQ(reg.histograms()[0].name, "walk.lat");
    EXPECT_TRUE(reg.has("walk.lat"));
    EXPECT_EQ(reg.histogramOf("walk.lat").count(), 2u);
    h.record(7); // read through the pointer: live updates
    EXPECT_EQ(reg.histogramOf("walk.lat").count(), 3u);
    // Scalars and histograms share one namespace.
    std::uint64_t v = 0;
    EXPECT_EXIT(reg.addCounter("walk.lat", &v),
                ::testing::ExitedWithCode(1), "duplicate");
    obs::Histogram other;
    EXPECT_EXIT(reg.addHistogram("walk.lat", &other),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(StatRegistry, FreezeRejectsLateRegistration)
{
    obs::StatRegistry reg;
    std::uint64_t early = 0;
    reg.addCounter("early", &early);
    EXPECT_FALSE(reg.frozen());
    reg.freeze();
    EXPECT_TRUE(reg.frozen());

    std::uint64_t late = 0;
    obs::Histogram late_hist;
#ifdef NDEBUG
    // Release builds: warnOnce and drop — the registry layout the
    // sampler captured stays intact.
    reg.addCounter("late.ctr", &late);
    reg.addGauge("late.gauge", [] { return 1.0; });
    reg.addHistogram("late.hist", &late_hist);
    EXPECT_FALSE(reg.has("late.ctr"));
    EXPECT_FALSE(reg.has("late.gauge"));
    EXPECT_FALSE(reg.has("late.hist"));
    EXPECT_EQ(reg.entries().size(), 1u);
    EXPECT_TRUE(reg.histograms().empty());
#else
    // Debug builds: a hard wiring error (panic aborts).
    EXPECT_DEATH(reg.addCounter("late.ctr", &late), "after freeze");
    EXPECT_DEATH(reg.addGauge("late.gauge", [] { return 1.0; }),
                 "after freeze");
    EXPECT_DEATH(reg.addHistogram("late.hist", &late_hist),
                 "after freeze");
#endif
}

// ------------------------------------------------------------ sampler

TEST(Sampler, SnapshotsAllEntriesIntoTheRing)
{
    obs::StatRegistry reg;
    std::uint64_t ctr = 0;
    reg.addCounter("ctr", &ctr);
    reg.addGauge("twice", [&] { return 2.0 * ctr; });

    obs::Sampler sampler(reg);
    ctr = 5;
    sampler.sample(100.0, 1);
    ctr = 9;
    sampler.sample(200.0, 2);

    ASSERT_EQ(sampler.ring().size(), 2u);
    EXPECT_DOUBLE_EQ(sampler.ring()[0].t, 100.0);
    EXPECT_EQ(sampler.ring()[0].step, 1u);
    EXPECT_DOUBLE_EQ(sampler.ring()[0].values[0], 5.0);
    EXPECT_DOUBLE_EQ(sampler.ring()[0].values[1], 10.0);
    EXPECT_DOUBLE_EQ(sampler.ring()[1].values[0], 9.0);
    EXPECT_EQ(sampler.samplesTaken(), 2u);
}

TEST(Sampler, RingEvictsOldestAtCapacity)
{
    obs::StatRegistry reg;
    std::uint64_t ctr = 0;
    reg.addCounter("ctr", &ctr);

    obs::Sampler sampler(reg);
    sampler.setRingCapacity(2);
    for (std::uint64_t i = 1; i <= 5; ++i) {
        ctr = i;
        sampler.sample(static_cast<double>(10 * i), i);
    }
    ASSERT_EQ(sampler.ring().size(), 2u);
    EXPECT_EQ(sampler.ring()[0].step, 4u);
    EXPECT_EQ(sampler.ring()[1].step, 5u);
    EXPECT_EQ(sampler.samplesTaken(), 5u); // lifetime, not ring size
}

TEST(Sampler, EmitsParseableJsonlWithAllValues)
{
    obs::StatRegistry reg;
    std::uint64_t ctr = 41;
    reg.addCounter("a.ctr", &ctr);
    reg.addGauge("a.rate", [] { return 0.25; });

    std::ostringstream out;
    obs::Sampler sampler(reg);
    sampler.setSink(&out);
    sampler.sample(123.0, 7);

    std::string error;
    const auto doc = obs::parseJson(out.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->stringOr("type", ""), "sample");
    EXPECT_DOUBLE_EQ(doc->numberOr("t", 0.0), 123.0);
    EXPECT_DOUBLE_EQ(doc->numberOr("step", 0.0), 7.0);
    const obs::JsonValue *values = doc->find("values");
    ASSERT_NE(values, nullptr);
    ASSERT_TRUE(values->isObject());
    EXPECT_DOUBLE_EQ(values->numberOr("a.ctr", 0.0), 41.0);
    EXPECT_DOUBLE_EQ(values->numberOr("a.rate", 0.0), 0.25);
}

// --------------------------------------------------------------- json

TEST(Json, ParsesScalarsArraysAndObjects)
{
    const auto doc = obs::parseJson(
        R"({"a":1,"b":-2.5e2,"c":"x\ny","d":[true,false,null],"e":{}})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->numberOr("a", 0.0), 1.0);
    EXPECT_DOUBLE_EQ(doc->numberOr("b", 0.0), -250.0);
    EXPECT_EQ(doc->stringOr("c", ""), "x\ny");
    const obs::JsonValue *d = doc->find("d");
    ASSERT_NE(d, nullptr);
    ASSERT_EQ(d->arr.size(), 3u);
    EXPECT_EQ(d->arr[0].kind, obs::JsonValue::Kind::boolean);
    EXPECT_TRUE(d->arr[2].isNull());
    ASSERT_NE(doc->find("e"), nullptr);
    EXPECT_TRUE(doc->find("e")->isObject());
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "01", "1 2", "{\"a\" 1}",
          "\"unterminated", "nulll"}) {
        std::string error;
        EXPECT_FALSE(obs::parseJson(bad, &error).has_value())
            << "accepted: " << bad;
        EXPECT_FALSE(error.empty());
    }
}

TEST(Json, NumberWriterKeepsCountersIntegral)
{
    const auto render = [](double v) {
        std::ostringstream os;
        obs::writeJsonNumber(os, v);
        return os.str();
    };
    EXPECT_EQ(render(42.0), "42");
    EXPECT_EQ(render(-3.0), "-3");
    EXPECT_EQ(render(0.5), "0.5");
    // Huge values keep enough digits to round-trip.
    EXPECT_DOUBLE_EQ(std::stod(render(1e300)), 1e300);
}

TEST(Json, EscapeHandlesControlAndQuotes)
{
    EXPECT_EQ(obs::escapeJson("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::escapeJson(std::string("\x01", 1)), "\\u0001");
}

// -------------------------------------------------- system registration

TEST(SystemStats, RegistryCoversEveryLayerAfterFinalize)
{
    BuildSpec spec;
    applyCsaltCD(spec.params);
    spec.params.num_cores = 2;
    spec.vm_workloads = {"gups", "ccomp"};
    spec.workload_scale = 0.01;
    auto system = buildSystem(spec);
    system->finalizeStats();

    const obs::StatRegistry &reg = system->statRegistry();
    for (const char *name :
         {"core0.instructions", "core0.ipc", "core1.l1d.miss_data",
          "core0.l2.hit_xlat", "core0.l1tlb_4k.misses",
          "core0.l2tlb.misses", "core0.walk.walks",
          "core0.vm0.instructions", "core1.vm1.l2_tlb_misses",
          "l3.evictions", "ctrl.core0.l2.data_ways", "ctrl.l3.epochs",
          "ctrl.l3.data_ways", "dram.ddr.accesses",
          "dram.stacked.row_hit_rate", "pom.hits",
          "pom.lookup.hit_rate"}) {
        EXPECT_TRUE(reg.has(name)) << "missing stat: " << name;
    }
}

TEST(SystemStats, CountersTrackComponentStatsAfterARun)
{
    BuildSpec spec;
    applyCsaltCD(spec.params);
    spec.params.num_cores = 1;
    spec.vm_workloads = {"gups"};
    spec.workload_scale = 0.01;
    auto system = buildSystem(spec);
    system->run(30'000);

    const obs::StatRegistry &reg = system->statRegistry();
    EXPECT_DOUBLE_EQ(
        reg.valueOf("core0.instructions"),
        static_cast<double>(system->core(0).stats().instructions));
    EXPECT_DOUBLE_EQ(
        reg.valueOf("core0.l2tlb.misses"),
        static_cast<double>(
            system->core(0).tlbs().l2().stats().misses));
    EXPECT_DOUBLE_EQ(
        reg.valueOf("ctrl.l3.data_ways"),
        static_cast<double>(system->mem().l3().dataWays()));
}

TEST(SystemStats, LateContextInstallIsFatal)
{
    BuildSpec spec;
    applyPomTlb(spec.params);
    spec.params.num_cores = 1;
    spec.vm_workloads = {"gups"};
    spec.workload_scale = 0.01;
    auto system = buildSystem(spec);
    system->finalizeStats();
    EXPECT_EXIT(system->setCoreContexts(0, {}),
                ::testing::ExitedWithCode(1), "dangle");
}

TEST(SystemStats, FinalizeFreezesTheRegistry)
{
    BuildSpec spec;
    applyPomTlb(spec.params);
    spec.params.num_cores = 1;
    spec.vm_workloads = {"gups"};
    spec.workload_scale = 0.01;
    auto system = buildSystem(spec);
    EXPECT_FALSE(system->statRegistry().frozen());
    system->finalizeStats();
    EXPECT_TRUE(system->statRegistry().frozen());
}

TEST(SystemStats, SamplerRunsOnTheConfiguredInterval)
{
    BuildSpec spec;
    applyPomTlb(spec.params);
    spec.params.num_cores = 1;
    spec.vm_workloads = {"gups"};
    spec.workload_scale = 0.01;
    spec.stat_sample_interval = 1000;
    auto system = buildSystem(spec);
    system->run(20'000);

    const auto &ring = system->sampler().ring();
    ASSERT_GT(ring.size(), 2u);
    // Steps are monotone and spaced by exactly the interval.
    for (std::size_t i = 1; i < ring.size(); ++i)
        EXPECT_EQ(ring[i].step - ring[i - 1].step, 1000u);
    // Samples carry one value per registry entry.
    EXPECT_EQ(ring.back().values.size(),
              system->statRegistry().entries().size());
    // clearAllStats drops buffered samples (warmup discipline).
    system->clearAllStats();
    EXPECT_TRUE(system->sampler().ring().empty());
}
